module sdbp

go 1.22
