// Command quickstart is the smallest useful sdbp program: it runs one
// benchmark through the paper's hierarchy twice — once with the baseline
// LRU last-level cache and once with the sampling dead block predictor
// driving replacement and bypass — and prints the miss and performance
// deltas.
package main

import (
	"fmt"

	"sdbp"
)

func main() {
	bench := "456.hmmer"

	base := sdbp.Run(bench, sdbp.LRU(), sdbp.Options{})
	samp := sdbp.Run(bench, sdbp.SamplerDBRB(), sdbp.Options{})

	fmt.Printf("benchmark: %s\n", bench)
	fmt.Printf("%-24s %10s %10s %10s\n", "policy", "MPKI", "IPC", "efficiency")
	for _, r := range []sdbp.Result{base, samp} {
		fmt.Printf("%-24s %10.3f %10.3f %9.1f%%\n",
			r.Policy, r.MPKI, r.IPC, r.Efficiency*100)
	}
	fmt.Printf("\nmiss reduction: %.1f%%   speedup: %.2fx\n",
		(1-samp.MPKI/base.MPKI)*100, samp.IPC/base.IPC)
}
