// Command policy-shootout compares every LLC management technique the
// paper evaluates on a few representative benchmarks of the
// memory-intensive subset, printing misses and speedups normalized to
// the LRU baseline — a compact version of the paper's Figures 4 and 5.
package main

import (
	"flag"
	"fmt"
	"math"
	"strings"

	"sdbp"
)

func main() {
	scale := flag.Float64("scale", 0.25, "stream length multiplier")
	benchList := flag.String("bench", "456.hmmer,429.mcf,462.libquantum,482.sphinx3,473.astar",
		"comma-separated benchmarks ('subset' for all 19)")
	flag.Parse()

	var benches []string
	if *benchList == "subset" {
		benches = sdbp.SubsetBenchmarks()
	} else {
		benches = strings.Split(*benchList, ",")
	}

	policies := []sdbp.Policy{
		sdbp.TDBP(), sdbp.CDBP(), sdbp.DIP(), sdbp.RRIP(), sdbp.SamplerDBRB(),
	}

	fmt.Printf("%-16s", "benchmark")
	for _, p := range policies {
		fmt.Printf("  %8s", p.Name())
	}
	fmt.Printf("  %8s\n", "Optimal")

	geo := make([]float64, len(policies))
	for i := range geo {
		geo[i] = 1
	}
	for _, b := range benches {
		base := sdbp.Run(b, sdbp.LRU(), sdbp.Options{Scale: *scale})
		fmt.Printf("%-16s", b)
		for i, p := range policies {
			r := sdbp.Run(b, p, sdbp.Options{Scale: *scale})
			norm := r.MPKI / base.MPKI
			geo[i] *= r.IPC / base.IPC
			fmt.Printf("  %8.3f", norm)
		}
		opt := sdbp.RunOptimal(b, sdbp.Options{Scale: *scale})
		fmt.Printf("  %8.3f\n", opt.MPKI/base.MPKI)
	}

	fmt.Printf("\n%-16s", "gmean speedup")
	n := float64(len(benches))
	for i := range policies {
		fmt.Printf("  %7.2f%%", (math.Pow(geo[i], 1/n)-1)*100)
	}
	fmt.Println()
	fmt.Println("\n(normalized MPKI per benchmark; < 1.000 beats LRU)")
}
