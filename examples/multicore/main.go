// Command multicore reproduces a slice of the paper's Figure 10: four
// benchmarks share an 8MB LLC, and the shared-cache management
// techniques are compared by weighted speedup normalized to LRU.
package main

import (
	"flag"
	"fmt"

	"sdbp"
)

func main() {
	mix := flag.String("mix", "mix1", "workload mix (mix1..mix10)")
	scale := flag.Float64("scale", 0.25, "stream length multiplier")
	flag.Parse()

	policies := []sdbp.Policy{
		sdbp.LRU(), sdbp.TDBP(), sdbp.CDBP(), sdbp.TADIP(), sdbp.RRIP(), sdbp.SamplerDBRB(),
	}

	var baseline float64
	fmt.Printf("mix %s, 8MB shared LLC, quad core\n\n", *mix)
	fmt.Printf("%-10s %10s %10s   %s\n", "policy", "wspeedup", "vs LRU", "per-core IPC")
	for _, p := range policies {
		r := sdbp.RunMix(*mix, p, sdbp.Options{Scale: *scale})
		if p.Name() == "LRU" {
			baseline = r.WeightedSpeedup
		}
		fmt.Printf("%-10s %10.4f %9.1f%%   %.3f %.3f %.3f %.3f\n",
			r.Policy, r.WeightedSpeedup, (r.WeightedSpeedup/baseline-1)*100,
			r.IPC[0], r.IPC[1], r.IPC[2], r.IPC[3])
	}

	r := sdbp.RunMix(*mix, sdbp.LRU(), sdbp.Options{Scale: *scale})
	fmt.Printf("\nco-runners: %v\n", r.Benchmarks)
}
