// Command prefetch demonstrates dead-block-directed prefetching — the
// application that introduced dead block prediction. It compares a
// degree-4 sequential LLC prefetcher under two placement rules:
// polluting (prefetches displace the LRU block) and dead-block-directed
// (prefetches may only displace predicted-dead blocks).
package main

import (
	"flag"
	"fmt"

	"sdbp"
)

func main() {
	bench := flag.String("bench", "473.astar", "benchmark (astar shows the pollution contrast best)")
	degree := flag.Int("degree", 4, "prefetch degree")
	scale := flag.Float64("scale", 0.25, "stream length multiplier")
	flag.Parse()

	opts := sdbp.Options{Scale: *scale}

	fmt.Printf("%s, degree-%d sequential LLC prefetcher\n\n", *bench, *degree)
	fmt.Printf("%-28s %10s %8s %10s %10s\n", "configuration", "MPKI", "IPC", "placed", "accuracy")

	show := func(name string, r sdbp.PrefetchResult) {
		fmt.Printf("%-28s %10.2f %8.3f %10d %9.1f%%\n",
			name, r.DemandMPKI, r.IPC, r.Placed, r.Accuracy()*100)
	}
	show("LRU, no prefetch", sdbp.RunPrefetch(*bench, sdbp.LRU(), 0, opts))
	show("LRU, polluting placement", sdbp.RunPrefetch(*bench, sdbp.LRU(), *degree, opts))
	show("sampler, no prefetch", sdbp.RunPrefetch(*bench, sdbp.SamplerDBRB(), 0, opts))
	show("sampler, dead-block placed", sdbp.RunPrefetch(*bench, sdbp.SamplerDBRB(), *degree, opts))

	fmt.Println("\nDead-block placement admits a prefetch only when a set holds a")
	fmt.Println("predicted-dead frame, so useless prefetches cannot displace live data.")
}
