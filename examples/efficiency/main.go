// Command efficiency reproduces the paper's Figure 1: it renders a
// cache's per-line live-time ratios as an ASCII greyscale map, under
// LRU and under sampler-driven dead block replacement and bypass.
// Darker characters are lines that spent more of their residency dead.
package main

import (
	"flag"
	"fmt"
	"strings"

	"sdbp"
)

func main() {
	bench := flag.String("bench", "456.hmmer", "benchmark to visualize")
	llcMB := flag.Int("llc", 1, "LLC capacity in MB (the paper's Figure 1 uses 1MB)")
	scale := flag.Float64("scale", 0.25, "stream length multiplier")
	flag.Parse()

	opts := sdbp.Options{Scale: *scale, LLCMegabytes: *llcMB, KeepLineEfficiencies: true}
	lru := sdbp.Run(*bench, sdbp.LRU(), opts)
	smp := sdbp.Run(*bench, sdbp.SamplerDBRB(), opts)

	fmt.Printf("%s, %dMB 16-way LLC\n\n", *bench, *llcMB)
	fmt.Printf("(a) LRU: efficiency %.0f%%\n", lru.Efficiency*100)
	fmt.Println(render(lru.LineEfficiencies))
	fmt.Printf("(b) sampler dead block replacement & bypass: efficiency %.0f%%\n", smp.Efficiency*100)
	fmt.Println(render(smp.LineEfficiencies))
	fmt.Println("darker = dead longer; each column is a cache way, rows are set groups")
}

// render downsamples the sets x ways efficiency matrix to 16 rows of
// greyscale characters.
func render(m [][]float64) string {
	if len(m) == 0 {
		return ""
	}
	shades := []byte(" .:-=+*%#")
	const rows = 16
	group := (len(m) + rows - 1) / rows
	ways := len(m[0])
	var sb strings.Builder
	for r := 0; r < rows; r++ {
		sb.WriteString("    ")
		for w := 0; w < ways; w++ {
			sum, n := 0.0, 0
			for s := r * group; s < (r+1)*group && s < len(m); s++ {
				sum += m[s][w]
				n++
			}
			eff := 0.0
			if n > 0 {
				eff = sum / float64(n)
			}
			idx := int((1 - eff) * float64(len(shades)-1))
			if idx < 0 {
				idx = 0
			}
			if idx >= len(shades) {
				idx = len(shades) - 1
			}
			sb.WriteByte(shades[idx])
		}
		sb.WriteByte('\n')
	}
	return sb.String()
}
