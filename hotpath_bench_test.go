// Hot-path benchmarks and allocation pins for the per-access
// simulation path — the wall-clock of the whole evaluation suite.
//
//	go test -bench 'LLCAccess|SingleCoreCampaign' -benchmem -run '^$'
//
// CI runs these and publishes the parsed results as
// BENCH_hotpath.json (see cmd/benchjson); the committed copy at the
// repo root records the before/after numbers of the hot-path
// optimization PR.
package sdbp

import (
	"testing"

	"sdbp/internal/cache"
	"sdbp/internal/dbrb"
	"sdbp/internal/hier"
	"sdbp/internal/mem"
	"sdbp/internal/policy"
	"sdbp/internal/predictor"
	"sdbp/internal/sim"
	"sdbp/internal/workloads"
)

// llcStream captures a benchmark's LLC-level reference stream (the
// post-L1/L2 traffic an LLC policy actually sees) once per process.
func llcStream(tb testing.TB, bench string) []mem.Access {
	tb.Helper()
	w, err := workloads.ByName(bench)
	if err != nil {
		tb.Fatal(err)
	}
	r := sim.RunSingle(w, policy.NewLRU(), sim.SingleOptions{Scale: 0.1, CaptureStream: true})
	if len(r.Stream) == 0 {
		tb.Fatalf("no LLC traffic captured for %s", bench)
	}
	return r.Stream
}

// samplerLLC builds the paper's LLC configuration under the full
// sampling dead-block replacement-and-bypass stack.
func samplerLLC() *cache.Cache {
	pol := dbrb.New(policy.NewLRU(), predictor.NewSampler(predictor.DefaultSamplerConfig()))
	return cache.New(hier.LLCConfig(1), pol)
}

// BenchmarkLLCAccess measures the steady-state per-access cost of the
// LLC under the sampling dead-block policy — lookup, predictor,
// replacement and efficiency accounting, with no generator or private
// caches in the loop. The steady state must be allocation free.
func BenchmarkLLCAccess(b *testing.B) {
	stream := llcStream(b, "456.hmmer")
	llc := samplerLLC()
	// Warm up: first pass populates the cache and predictor tables.
	for _, a := range stream {
		llc.Access(a)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		llc.Access(stream[i%len(stream)])
	}
}

// BenchmarkLLCAccessAttribution is the same loop with per-PC death
// attribution enabled (experiments -interval). The delta against
// BenchmarkLLCAccess is the introspection tax a probed run pays; the
// disabled path's zero-cost contract is pinned separately by
// TestLLCAccessSteadyStateAllocs.
func BenchmarkLLCAccessAttribution(b *testing.B) {
	stream := llcStream(b, "456.hmmer")
	pol := dbrb.New(policy.NewLRU(), predictor.NewSampler(predictor.DefaultSamplerConfig()))
	pol.EnableAttribution()
	llc := cache.New(hier.LLCConfig(1), pol)
	for _, a := range stream {
		llc.Access(a)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		llc.Access(stream[i%len(stream)])
	}
}

// BenchmarkLLCAccessLRU is the same loop under plain LRU — the floor
// any policy-side overhead is judged against.
func BenchmarkLLCAccessLRU(b *testing.B) {
	stream := llcStream(b, "456.hmmer")
	llc := cache.New(hier.LLCConfig(1), policy.NewLRU())
	for _, a := range stream {
		llc.Access(a)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		llc.Access(stream[i%len(stream)])
	}
}

// BenchmarkLLCAccessBatch measures the steady-state per-access cost of
// the same sampling-policy LLC driven through the block-granular
// AccessBatch entry point in drive-loop-sized chunks. The delta against
// BenchmarkLLCAccess is what batching the dispatch is worth at the LLC
// alone (the private-level filter loops show up only in the campaign
// benchmarks).
func BenchmarkLLCAccessBatch(b *testing.B) {
	stream := llcStream(b, "456.hmmer")
	llc := samplerLLC()
	llc.AccessBatch(stream, nil) // warm up
	const chunk = 256
	rs := make([]cache.Result, chunk)
	b.ReportAllocs()
	b.ResetTimer()
	for done := 0; done < b.N; {
		lo := done % len(stream)
		n := chunk
		if lo+n > len(stream) {
			n = len(stream) - lo
		}
		if n > b.N-done {
			n = b.N - done
		}
		llc.AccessBatch(stream[lo:lo+n], rs[:n])
		done += n
	}
}

// BenchmarkSingleCoreCampaign measures one full single-core simulation
// — synthetic trace generation through L1/L2/LLC with the sampling
// policy and the core timing model — per iteration. This is the unit
// the evaluation suite runs hundreds of times, so its ns/op is the
// campaign's wall-clock.
func BenchmarkSingleCoreCampaign(b *testing.B) {
	w, err := workloads.ByName("456.hmmer")
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		pol := dbrb.New(policy.NewLRU(), predictor.NewSampler(predictor.DefaultSamplerConfig()))
		r := sim.RunSingle(w, pol, sim.SingleOptions{Scale: 0.1})
		if r.LLC.Accesses == 0 {
			b.Fatal("simulation saw no LLC traffic")
		}
	}
}

// BenchmarkMulticoreCampaign measures one quad-core shared-LLC run —
// four goroutine-parallel generate+private-filter producers feeding the
// timestamp-ordered LLC merge — per iteration, at the figure campaigns'
// multicore scale.
func BenchmarkMulticoreCampaign(b *testing.B) {
	mixes := workloads.Mixes()
	if len(mixes) == 0 {
		b.Fatal("no mixes registered")
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		pol := dbrb.New(policy.NewLRU(), predictor.NewSampler(predictor.DefaultSamplerConfig()))
		r, err := sim.RunMulticore(mixes[0], pol, sim.MulticoreOptions{Scale: 0.02})
		if err != nil {
			b.Fatal(err)
		}
		if r.LLC.Accesses == 0 {
			b.Fatal("simulation saw no LLC traffic")
		}
	}
}

// TestLLCAccessSteadyStateAllocs pins the zero-allocation contract of
// the steady-state LLC access path, for both the baseline LRU cache
// and the full sampling dead-block stack: once warm, Access must not
// allocate. testing.AllocsPerRun fails this test the moment a
// per-access closure, boxed interface value or table reallocation
// sneaks back in.
func TestLLCAccessSteadyStateAllocs(t *testing.T) {
	stream := llcStream(t, "456.hmmer")
	attrPol := dbrb.New(policy.NewLRU(), predictor.NewSampler(predictor.DefaultSamplerConfig()))
	attrPol.EnableAttribution()
	caches := map[string]*cache.Cache{
		"LRU":         cache.New(hier.LLCConfig(1), policy.NewLRU()),
		"Sampler":     samplerLLC(),
		"SamplerAttr": cache.New(hier.LLCConfig(1), attrPol),
	}
	for name, llc := range caches {
		for _, a := range stream {
			llc.Access(a)
		}
		i := 0
		avg := testing.AllocsPerRun(1000, func() {
			llc.Access(stream[i%len(stream)])
			i++
		})
		if avg != 0 {
			t.Errorf("%s: steady-state Access allocates %.2f allocs/op, want 0", name, avg)
		}
	}
}
