// Package sdbp is a library reproduction of "Sampling Dead Block
// Prediction for Last-Level Caches" (Khan, Tian, Jiménez, MICRO-43,
// 2010).
//
// It bundles a three-level cache hierarchy simulator with an
// out-of-order core timing model, the paper's synthetic benchmark
// suite, and every cache management technique the paper evaluates: the
// sampling dead block predictor (the contribution), the reftrace and
// counting predictors it is compared against, DIP/TADIP, RRIP, random
// and LRU replacement, and Belady's MIN with optimal bypass.
//
// The simplest use runs one benchmark under two policies:
//
//	base := sdbp.Run("456.hmmer", sdbp.LRU(), sdbp.Options{})
//	samp := sdbp.Run("456.hmmer", sdbp.SamplerDBRB(), sdbp.Options{})
//	fmt.Println(base.MPKI, samp.MPKI)
//
// Deeper access — custom cache geometries, predictor ablations, raw
// kernels — lives in the internal packages and is exercised through the
// experiment harness (cmd/experiments) and the benchmarks in
// bench_test.go.
package sdbp

import (
	"fmt"
	"math"

	"sdbp/internal/cache"
	"sdbp/internal/exp"
	"sdbp/internal/hier"
	"sdbp/internal/optimal"
	"sdbp/internal/sim"
	"sdbp/internal/workloads"
)

// Policy is an LLC management technique. Construct one with LRU,
// Random, DIP, RRIP, TADIP, SamplerDBRB, TDBP, CDBP, their
// random-baseline variants, or any registry expression via PolicyExpr;
// pass it to Run or RunMix.
type Policy struct {
	name string
	make func(threads int) cache.Policy
}

// Name returns the technique's display name.
func (p Policy) Name() string { return p.name }

// fromExp wraps a component-registry policy (the library's single
// construction path; see internal/exp) in the facade type.
func fromExp(nameOrExpr string) Policy {
	p := exp.MustResolvePolicy(nameOrExpr)
	return Policy{p.Name, p.Make}
}

// PolicyExpr resolves a registry preset name ("Sampler", "Random CDBP")
// or component expression ("dbrb(base=random,pred=counting)") into a
// runnable policy. PolicyNames lists the presets.
func PolicyExpr(nameOrExpr string) (Policy, error) {
	p, err := exp.ResolvePolicy(nameOrExpr)
	if err != nil {
		return Policy{}, fmt.Errorf("sdbp: %w", err)
	}
	return Policy{p.Name, p.Make}, nil
}

// PolicyNames lists the registry's preset policy names in presentation
// order.
func PolicyNames() []string { return exp.PresetNames() }

// LRU returns the baseline true-LRU replacement policy.
func LRU() Policy { return fromExp("LRU") }

// Random returns the random replacement policy.
func Random() Policy { return fromExp("Random") }

// DIP returns the Dynamic Insertion Policy.
func DIP() Policy { return fromExp("DIP") }

// TADIP returns the Thread-Aware Dynamic Insertion Policy.
func TADIP() Policy { return fromExp("TADIP") }

// RRIP returns dynamic re-reference interval prediction (DRRIP).
func RRIP() Policy { return fromExp("RRIP") }

// SamplerDBRB returns dead-block replacement and bypass driven by the
// paper's sampling predictor over a default LRU cache.
func SamplerDBRB() Policy { return fromExp("Sampler") }

// SamplerDBRBRandom returns the sampling predictor over a default
// random-replacement cache ("Random Sampler" in the paper).
func SamplerDBRBRandom() Policy { return fromExp("Random Sampler") }

// TDBP returns dead-block replacement and bypass driven by the
// reference-trace predictor over a default LRU cache.
func TDBP() Policy { return fromExp("TDBP") }

// CDBP returns dead-block replacement and bypass driven by the counting
// (LvP) predictor over a default LRU cache.
func CDBP() Policy { return fromExp("CDBP") }

// CDBPRandom returns the counting predictor over a default
// random-replacement cache ("Random CDBP" in the paper).
func CDBPRandom() Policy { return fromExp("Random CDBP") }

// SamplerVariant returns one of the paper's Figure 6 ablation variants
// by name ("DBRB alone", "DBRB+sampler+12-way", ...); see
// SamplerVariantNames.
func SamplerVariant(name string) (Policy, error) {
	for _, n := range exp.AblationVariantNames() {
		if n == name {
			return fromExp(name), nil
		}
	}
	return Policy{}, fmt.Errorf("sdbp: unknown sampler variant %q", name)
}

// SamplerVariantNames lists the Figure 6 ablation variant names.
func SamplerVariantNames() []string { return exp.AblationVariantNames() }

// Options tunes a run.
type Options struct {
	// Scale multiplies the benchmark's default reference-stream length;
	// 0 means 1.0.
	Scale float64
	// LLCMegabytes overrides the LLC capacity (default: 2MB per core).
	LLCMegabytes int
	// KeepLineEfficiencies records the per-line efficiency map (the
	// Figure 1 greyscale data) into the result.
	KeepLineEfficiencies bool
}

func (o Options) llc(cores int) cache.Config {
	if o.LLCMegabytes > 0 {
		return exp.MustGeometry(fmt.Sprintf("llc(mb=%d)", o.LLCMegabytes))
	}
	return hier.LLCConfig(cores)
}

// Result reports a single-core run.
type Result struct {
	// Benchmark and Policy identify the run.
	Benchmark, Policy string
	// Instructions is the simulated instruction count.
	Instructions uint64
	// IPC is instructions per cycle under the core timing model.
	IPC float64
	// MPKI is LLC misses per thousand instructions.
	MPKI float64
	// Efficiency is the LLC's live-time ratio in [0,1].
	Efficiency float64
	// Accesses, Misses and Bypasses are LLC event counts.
	Accesses, Misses, Bypasses uint64
	// Coverage and FalsePositiveRate report predictor accuracy for
	// dead-block policies; they are NaN otherwise.
	Coverage, FalsePositiveRate float64
	// LineEfficiencies is the per-line efficiency map when requested.
	LineEfficiencies [][]float64
}

// Benchmarks returns every benchmark name in the suite.
func Benchmarks() []string { return workloads.Names() }

// SubsetBenchmarks returns the paper's memory-intensive subset.
func SubsetBenchmarks() []string {
	var out []string
	for _, w := range workloads.Subset() {
		out = append(out, w.Name)
	}
	return out
}

// Mixes returns the names of the quad-core workload mixes.
func Mixes() []string {
	var out []string
	for _, m := range workloads.Mixes() {
		out = append(out, m.Name)
	}
	return out
}

// Run simulates one benchmark on one core under the given LLC policy.
// It panics on an unknown benchmark name (use Benchmarks for the list).
func Run(benchmark string, p Policy, o Options) Result {
	w, err := workloads.ByName(benchmark)
	if err != nil {
		panic(err)
	}
	r := sim.RunSingle(w, p.make(1), sim.SingleOptions{
		Scale:                o.Scale,
		LLC:                  o.llc(1),
		KeepLineEfficiencies: o.KeepLineEfficiencies,
	})
	out := Result{
		Benchmark:         r.Benchmark,
		Policy:            p.name,
		Instructions:      r.Instructions,
		IPC:               r.IPC,
		MPKI:              r.MPKI,
		Efficiency:        r.Efficiency,
		Accesses:          r.LLC.Accesses,
		Misses:            r.LLC.Misses,
		Bypasses:          r.LLC.Bypasses,
		Coverage:          math.NaN(),
		FalsePositiveRate: math.NaN(),
		LineEfficiencies:  r.LineEfficiencies,
	}
	if r.Accuracy != nil {
		out.Coverage = r.Accuracy.Coverage()
		out.FalsePositiveRate = r.Accuracy.FalsePositiveRate()
	}
	return out
}

// RunOptimal simulates one benchmark under Belady's MIN replacement
// with optimal bypass. Only miss-count metrics are meaningful (the
// paper likewise reports optimal numbers for misses only).
func RunOptimal(benchmark string, o Options) Result {
	w, err := workloads.ByName(benchmark)
	if err != nil {
		panic(err)
	}
	llcCfg := o.llc(1)
	capture := sim.RunSingle(w, LRU().make(1), sim.SingleOptions{
		Scale: o.Scale, LLC: llcCfg, CaptureStream: true,
	})
	min := optimal.Simulate(capture.Stream, llcCfg.Sets(), llcCfg.Ways)
	mpki := 0.0
	if capture.Instructions > 0 {
		mpki = float64(min.Misses) / (float64(capture.Instructions) / 1000)
	}
	return Result{
		Benchmark:         benchmark,
		Policy:            "Optimal",
		Instructions:      capture.Instructions,
		MPKI:              mpki,
		Accesses:          min.Accesses,
		Misses:            min.Misses,
		Bypasses:          min.Bypasses,
		Coverage:          math.NaN(),
		FalsePositiveRate: math.NaN(),
	}
}

// MixResult reports a quad-core shared-LLC run.
type MixResult struct {
	// Mix and Policy identify the run.
	Mix, Policy string
	// Benchmarks are the four co-running benchmark names.
	Benchmarks [4]string
	// IPC is each core's IPC over its first full pass.
	IPC [4]float64
	// MPKI is shared-LLC misses per thousand instructions (all cores).
	MPKI float64
	// WeightedSpeedup is sum over cores of IPC_i/SingleIPC_i, where
	// SingleIPC_i is the benchmark's IPC running alone under LRU with
	// the same LLC. Normalize against the LRU policy's value to get the
	// paper's normalized weighted speedup.
	WeightedSpeedup float64
}

// RunMix simulates a quad-core workload mix sharing an 8MB LLC under
// the given policy. It panics on an unknown mix name.
func RunMix(mixName string, p Policy, o Options) MixResult {
	var mix workloads.Mix
	found := false
	for _, m := range workloads.Mixes() {
		if m.Name == mixName {
			mix, found = m, true
			break
		}
	}
	if !found {
		panic(fmt.Errorf("sdbp: unknown mix %q", mixName))
	}
	llcCfg := o.llc(4)
	r, err := sim.RunMulticore(mix, p.make(4), sim.MulticoreOptions{Scale: o.Scale, LLC: llcCfg})
	if err != nil {
		panic(fmt.Errorf("sdbp: %w", err))
	}

	out := MixResult{Mix: mixName, Policy: p.name, Benchmarks: mix.Members, IPC: r.IPC, MPKI: r.MPKI}
	lru := LRU()
	for i, name := range mix.Members {
		single, err := sim.SingleIPC(name, llcCfg, orOne(o.Scale), func() cache.Policy { return lru.make(1) })
		if err != nil {
			panic(fmt.Errorf("sdbp: %w", err))
		}
		if single > 0 {
			out.WeightedSpeedup += r.IPC[i] / single
		}
	}
	return out
}

func orOne(x float64) float64 {
	if x == 0 {
		return 1
	}
	return x
}
