package sdbp

import (
	"sdbp/internal/exp"
	"sdbp/internal/prefetch"
	"sdbp/internal/sim"
	"sdbp/internal/victim"
	"sdbp/internal/workloads"
)

// This file exposes the library's extensions beyond the paper's core
// evaluation: the related-work predictors the paper discusses (cache
// bursts, the access interval predictor), its stated future work (a
// sampling counting predictor), and the cheap replacement policies real
// LLCs use (tree pseudo-LRU, NRU) with sampler-driven dead block
// replacement layered on top of them.

// PLRU returns tree-based pseudo-LRU replacement — the hardware-cheap
// approximation real high-associativity LLCs implement instead of the
// true LRU the paper's baseline models.
func PLRU() Policy { return fromExp("PLRU") }

// NRU returns not-recently-used replacement (one use bit per line).
func NRU() Policy { return fromExp("NRU") }

// SamplerDBRBPLRU returns the sampling predictor driving replacement
// and bypass over a pseudo-LRU cache. The paper argues the sampler is
// decoupled from the cache's own policy; this configuration tests that
// claim against the policy real LLCs use.
func SamplerDBRBPLRU() Policy { return fromExp("PLRU Sampler") }

// SamplerDBRBNRU returns the sampling predictor over an NRU cache.
func SamplerDBRBNRU() Policy { return fromExp("NRU Sampler") }

// BurstsDBRB returns dead-block replacement and bypass driven by the
// cache-bursts predictor of Liu et al. (MICRO 2008). The paper predicts
// bursts offer little at the LLC because the L1 filters them; this
// policy lets that claim be measured.
func BurstsDBRB() Policy { return fromExp("Bursts") }

// AIPDBRB returns dead-block replacement and bypass driven by Kharbutli
// and Solihin's access interval predictor — the companion of the
// counting predictor that the paper sets aside in LvP's favor.
func AIPDBRB() Policy { return fromExp("AIP") }

// SamplingCountingDBRB returns the paper's Section VIII future work
// made concrete: a counting (live-time) predictor trained exclusively
// through a decoupled sampler.
func SamplingCountingDBRB() Policy { return fromExp("SamplingCounting") }

// TimeBasedDBRB returns dead-block replacement and bypass driven by the
// time-based predictor of Hu et al. (ISCA 2002), adapted to the LLC's
// per-set access clock — completing the paper's Section II-A related
// work set.
func TimeBasedDBRB() Policy { return fromExp("TimeBased") }

// DuelingSamplerDBRB returns the sampling predictor under a DIP-style
// set duel against plain LRU: on workloads where dead block prediction
// misfires, the duel converges to LRU and caps the damage (an extension
// beyond the paper).
func DuelingSamplerDBRB() Policy { return fromExp("Dueling Sampler") }

// SHiP returns signature-based hit prediction (Wu et al., MICRO 2011):
// RRIP insertion steered by a per-PC-signature hit counter table, the
// strongest published successor to the paper's comparison set.
func SHiP() Policy { return fromExp("SHiP") }

// SkewedDBRB returns dead-block replacement and bypass driven by the
// skewed multi-table predictor: each table indexed by its own hash of
// the PC signature with a partial tag per entry, so one signature's
// counters collide in at most one table.
func SkewedDBRB() Policy { return fromExp("Skewed DBP") }

// ImprovedDBRB returns the reuse-counter dead-block predictor under a
// set duel against plain LRU — "improved DBP": eviction-time training
// on whether a block was ever reused, with the duel as a safety net on
// workloads where the prediction misfires.
func ImprovedDBRB() Policy { return fromExp("Improved DBP") }

// PrefetchResult reports a dead-block-directed prefetching run.
type PrefetchResult struct {
	// Benchmark and Policy identify the run.
	Benchmark, Policy string
	// IPC is instructions per cycle with the prefetcher active.
	IPC float64
	// DemandMPKI is demand misses per kilo-instruction.
	DemandMPKI float64
	// Issued, Placed and Useful count prefetch candidates, admitted
	// placements, and placements demanded before eviction.
	Issued, Placed, Useful uint64
}

// Accuracy returns Useful/Placed.
func (r PrefetchResult) Accuracy() float64 {
	if r.Placed == 0 {
		return 0
	}
	return float64(r.Useful) / float64(r.Placed)
}

// RunPrefetch simulates a benchmark with a degree-N sequential LLC
// prefetcher over the given policy. Dead-block policies (SamplerDBRB
// and friends) admit prefetches only into predicted-dead frames; plain
// LRU admits them pollutingly; other policies drop them when the set is
// full. It panics on an unknown benchmark.
func RunPrefetch(benchmark string, p Policy, degree int, o Options) PrefetchResult {
	w, err := workloads.ByName(benchmark)
	if err != nil {
		panic(err)
	}
	r := prefetch.Run(w, p.make(1), prefetch.Config{Degree: degree}, orOne(o.Scale))
	return PrefetchResult{
		Benchmark:  r.Benchmark,
		Policy:     p.name,
		IPC:        r.IPC,
		DemandMPKI: r.DemandMPKI,
		Issued:     r.Issued,
		Placed:     r.Placed,
		Useful:     r.Useful,
	}
}

// DiffResult classifies every LLC access of a benchmark by its outcome
// under two policies run in lockstep on the identical reference stream.
type DiffResult struct {
	// Benchmark, PolicyA and PolicyB identify the comparison.
	Benchmark, PolicyA, PolicyB string
	// BothHit..BothMiss partition the LLC accesses.
	BothHit, OnlyAHit, OnlyBHit, BothMiss uint64
}

// DamageRate returns the fraction of LLC accesses where B missed but A
// hit — the misses B introduced relative to A.
func (d DiffResult) DamageRate() float64 {
	n := d.BothHit + d.OnlyAHit + d.OnlyBHit + d.BothMiss
	if n == 0 {
		return 0
	}
	return float64(d.OnlyAHit) / float64(n)
}

// GainRate returns the fraction of LLC accesses where B hit but A
// missed.
func (d DiffResult) GainRate() float64 {
	n := d.BothHit + d.OnlyAHit + d.OnlyBHit + d.BothMiss
	if n == 0 {
		return 0
	}
	return float64(d.OnlyBHit) / float64(n)
}

// Compare runs one benchmark against two policies in lockstep over the
// identical LLC reference stream and classifies every access. It panics
// on an unknown benchmark.
func Compare(benchmark string, a, b Policy, o Options) DiffResult {
	w, err := workloads.ByName(benchmark)
	if err != nil {
		panic(err)
	}
	d := sim.CompareLLC(w, a.make(1), b.make(1), sim.SingleOptions{Scale: o.Scale, LLC: o.llc(1)})
	return DiffResult{
		Benchmark: d.Benchmark, PolicyA: a.name, PolicyB: b.name,
		BothHit: d.BothHit, OnlyAHit: d.OnlyAHit, OnlyBHit: d.OnlyBHit, BothMiss: d.BothMiss,
	}
}

// VictimCacheResult reports a victim-cache run.
type VictimCacheResult struct {
	// Benchmark and Config identify the run ("unfiltered" or
	// "dead-filtered").
	Benchmark, Config string
	// IPC is instructions per cycle.
	IPC float64
	// MPKI counts misses past both the LLC and the victim buffer.
	MPKI float64
	// Hits and Inserts are the victim buffer's counters.
	Hits, Inserts uint64
}

// RunVictimCache simulates a benchmark with a small fully-associative
// victim buffer beside a sampler-managed LLC. With filtered set, only
// victims the predictor considers live enter the buffer. It panics on
// an unknown benchmark.
func RunVictimCache(benchmark string, entries int, filtered bool, o Options) VictimCacheResult {
	w, err := workloads.ByName(benchmark)
	if err != nil {
		panic(err)
	}
	mk := exp.MustDBRBFactory("Sampler")
	r := victim.Run(w, mk, entries, filtered, orOne(o.Scale))
	return VictimCacheResult{
		Benchmark: r.Benchmark,
		Config:    r.Config,
		IPC:       r.IPC,
		MPKI:      r.MPKI,
		Hits:      r.VCHits,
		Inserts:   r.VCInserts,
	}
}
