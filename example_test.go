package sdbp_test

import (
	"fmt"

	"sdbp"
)

// The simplest use: run one benchmark under two policies and compare.
func ExampleRun() {
	base := sdbp.Run("456.hmmer", sdbp.LRU(), sdbp.Options{Scale: 0.25})
	samp := sdbp.Run("456.hmmer", sdbp.SamplerDBRB(), sdbp.Options{Scale: 0.25})
	fmt.Printf("sampler reduces misses: %v\n", samp.MPKI < base.MPKI)
	fmt.Printf("sampler improves IPC:   %v\n", samp.IPC > base.IPC)
	// Output:
	// sampler reduces misses: true
	// sampler improves IPC:   true
}

// Belady's MIN with optimal bypass bounds every realizable policy.
func ExampleRunOptimal() {
	lru := sdbp.Run("462.libquantum", sdbp.LRU(), sdbp.Options{Scale: 0.05})
	opt := sdbp.RunOptimal("462.libquantum", sdbp.Options{Scale: 0.05})
	fmt.Printf("optimal is a lower bound: %v\n", opt.MPKI <= lru.MPKI)
	// Output:
	// optimal is a lower bound: true
}

// Quad-core mixes share an 8MB LLC; weighted speedup is normalized by
// each benchmark's solo IPC.
func ExampleRunMix() {
	r := sdbp.RunMix("mix1", sdbp.SamplerDBRB(), sdbp.Options{Scale: 0.02})
	fmt.Printf("mix: %s, co-runners: %d\n", r.Mix, len(r.Benchmarks))
	fmt.Printf("weighted speedup is positive: %v\n", r.WeightedSpeedup > 0)
	// Output:
	// mix: mix1, co-runners: 4
	// weighted speedup is positive: true
}

// Compare classifies every LLC access under two policies in lockstep.
func ExampleCompare() {
	d := sdbp.Compare("456.hmmer", sdbp.LRU(), sdbp.SamplerDBRB(), sdbp.Options{Scale: 0.25})
	fmt.Printf("%s vs %s\n", d.PolicyA, d.PolicyB)
	fmt.Printf("sampler gains more than it damages: %v\n", d.GainRate() > d.DamageRate())
	// Output:
	// LRU vs Sampler
	// sampler gains more than it damages: true
}

// SamplerVariant exposes the paper's Figure 6 ablation configurations.
func ExampleSamplerVariant() {
	p, err := sdbp.SamplerVariant("DBRB alone")
	fmt.Println(p.Name(), err)
	// Output:
	// DBRB alone <nil>
}
