#!/bin/sh
# check_construction.sh — enforce the single-construction-path invariant.
#
# Every policy, predictor, and DBRB wrapper must be built through the
# component registry (internal/exp) so that experiment specs, CLI
# expressions, and the paper's figure sweeps all share one construction
# path with the paper-default seeds and configs. This guard fails if a
# direct constructor call (policy.New*, predictor.New*) or a raw config
# source (predictor.DefaultSamplerConfig, predictor.AblationConfigs)
# appears anywhere outside:
#
#   internal/exp/        the registry itself
#   internal/policy/     the package's own code
#   internal/predictor/  the package's own code
#   internal/hier/hier.go  documented exception: the private L1/L2
#                          levels are architecturally fixed at plain
#                          LRU and keep PlainLRU devirtualization
#   *_test.go            tests may hand-build to cross-check the registry
#
# policy.NewDuel is excluded from the pattern: it constructs the
# set-dueling monitor (a mechanism inside dbrb/dueling and DIP-style
# policies), not a replacement policy.
set -eu
cd "$(dirname "$0")/.."

violations=$(grep -rnE '\b(policy|predictor)\.(New[A-Z][A-Za-z0-9_]*|DefaultSamplerConfig|AblationConfigs)\b' \
    --include='*.go' . \
  | grep -v '_test\.go:' \
  | grep -vE '^\./(internal/exp|internal/policy|internal/predictor)/' \
  | grep -v '^\./internal/hier/hier\.go:' \
  | grep -v 'policy\.NewDuel' \
  || true)

if [ -n "$violations" ]; then
    echo "construction guard: direct constructor calls outside internal/exp:" >&2
    echo "$violations" >&2
    echo "route these through the internal/exp registry (or add a documented exception here)" >&2
    exit 1
fi
echo "construction guard: ok"
