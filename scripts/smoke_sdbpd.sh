#!/bin/sh
# smoke_sdbpd.sh — end-to-end crash-safety smoke of the sdbpd service.
#
# Builds the real binaries and drives them the way an operator would:
#
#   1. start sdbpd with a disk store and a checkpoint journal;
#   2. submit a small spec twice through sdbpctl and prove the second
#      submission is answered from the result cache (via /metrics);
#   3. check the observability surface: the job's trace reconciles
#      (sdbpctl trace -check), its SSE lifecycle replays in order
#      (sdbpctl watch), and /metrics serves lint-clean Prometheus text;
#   4. submit a long job, SIGTERM the daemon mid-run, and let the
#      drain checkpoint whatever finished;
#   5. restart with -resume and verify the resumed manifest is
#      byte-identical to an uninterrupted run of the same spec.
#
# Exits non-zero on the first broken promise. Needs only a Go
# toolchain and a POSIX shell.
set -eu
cd "$(dirname "$0")/.."

workdir=$(mktemp -d)
daemon_pid=""
cleanup() {
    [ -n "$daemon_pid" ] && kill "$daemon_pid" 2>/dev/null || true
    rm -rf "$workdir"
}
trap cleanup EXIT INT TERM

fail() { echo "smoke_sdbpd: FAIL: $*" >&2; exit 1; }

echo "== build"
go build -o "$workdir/sdbpd" ./cmd/sdbpd
go build -o "$workdir/sdbpctl" ./cmd/sdbpctl

# start_daemon FLAGS... — boots sdbpd on a free port, sets $base and
# $daemon_pid, waits for the listening contract line.
start_daemon() {
    : > "$workdir/daemon.log"
    "$workdir/sdbpd" -addr 127.0.0.1:0 \
        -store disk -store-dir "$workdir/store" \
        -checkpoint "$workdir/sdbpd.ckpt" "$@" 2>"$workdir/daemon.log" &
    daemon_pid=$!
    base=""
    for _ in $(seq 1 100); do
        base=$(sed -n 's/.*listening on \(http:\/\/[^ ]*\).*/\1/p' "$workdir/daemon.log" | head -1)
        [ -n "$base" ] && break
        kill -0 "$daemon_pid" 2>/dev/null || fail "daemon died during startup: $(cat "$workdir/daemon.log")"
        sleep 0.1
    done
    [ -n "$base" ] || fail "daemon never announced its address"
}

# counter NAME — reads one counter from the /metrics snapshot without
# needing a JSON tool: the snapshot is one "name": value pair per line.
counter() {
    "$workdir/sdbpctl" metrics -server "$base" \
        | sed -n "s/^[[:space:]]*\"$1\": \([0-9][0-9]*\),*\$/\1/p" | head -1
}

small='{"policy":"LRU","workloads":["456.hmmer"],"scale":0.05}'
big='{"policy":"Sampler","workloads":["all"],"scale":1}'
echo "$small" > "$workdir/small.json"
echo "$big"   > "$workdir/big.json"

echo "== start sdbpd"
start_daemon

echo "== submit small spec twice: second must be a cache hit"
"$workdir/sdbpctl" submit -server "$base" -spec "$workdir/small.json" > "$workdir/small1.json" 2>/dev/null
"$workdir/sdbpctl" submit -server "$base" -spec "$workdir/small.json" > "$workdir/small2.json" 2>/dev/null
cmp -s "$workdir/small1.json" "$workdir/small2.json" || fail "resubmitted manifest differs"
hits=$(counter serve_cache_hits)
[ "${hits:-0}" -ge 1 ] || fail "serve_cache_hits = ${hits:-unset}, want >= 1"

echo "== trace must be complete and reconcile"
addr=$("$workdir/sdbpctl" addr -spec "$workdir/small.json")
"$workdir/sdbpctl" trace -server "$base" -check "$addr" > "$workdir/trace.json" \
    || fail "job trace does not reconcile"
"$workdir/sdbpctl" trace -server "$base" -format chrome "$addr" > "$workdir/trace-chrome.json" \
    || fail "chrome trace export failed"
grep -q traceEvents "$workdir/trace-chrome.json" || fail "chrome export has no traceEvents"

echo "== SSE lifecycle must replay in order"
# The second submission was a cache hit, so the job's current feed
# holds the short cached lifecycle, in its deterministic order.
"$workdir/sdbpctl" watch -server "$base" "$addr" > "$workdir/watch.out" \
    || fail "watch did not end with the job done"
[ "$(cat "$workdir/watch.out")" = "submitted
cached
done" ] || fail "SSE lifecycle out of order: $(cat "$workdir/watch.out")"

echo "== /metrics Prometheus exposition must lint clean"
"$workdir/sdbpctl" metrics -server "$base" -format prom -lint > "$workdir/metrics.prom" \
    || fail "Prometheus exposition fails the grammar lint"
grep -q '^serve_submits_total ' "$workdir/metrics.prom" || fail "exposition missing serve_submits_total"

echo "== SIGTERM mid-job, then resume"
# The big spec runs for seconds; the submit will be cut off by the
# daemon's death, which is the point.
"$workdir/sdbpctl" submit -server "$base" -spec "$workdir/big.json" >/dev/null 2>&1 &
submit_pid=$!
sleep 1
kill -TERM "$daemon_pid"
wait "$daemon_pid" 2>/dev/null || true
daemon_pid=""
wait "$submit_pid" 2>/dev/null || true

echo "== restart with -resume; small spec must come back from the journal"
# Destroy the result cache: resume must come from the checkpoint
# journal alone, not the surviving disk store.
rm -rf "$workdir/store"
start_daemon -resume
grep -q "resume:" "$workdir/daemon.log" || fail "daemon did not report a resume"
"$workdir/sdbpctl" submit -server "$base" -spec "$workdir/small.json" > "$workdir/small3.json" 2>/dev/null
cmp -s "$workdir/small1.json" "$workdir/small3.json" || fail "resumed manifest differs from the original"
resumed=$(counter runner_jobs_from_checkpoint)
[ "${resumed:-0}" -ge 1 ] || fail "runner_jobs_from_checkpoint = ${resumed:-unset}, want >= 1: the resume re-simulated"

echo "== graceful stop"
kill -TERM "$daemon_pid"
wait "$daemon_pid" || fail "daemon exited non-zero on graceful stop"
daemon_pid=""

echo "smoke_sdbpd: ok"
