#!/bin/sh
# check_policy_zoo.sh — enforce the registry/harness coverage invariant.
#
# The cross-policy conformance harness (internal/policy/policytest)
# derives its coverage from the registry's own name lists: PolicyNames,
# PredictorNames, PresetNames, and AblationVariantNames. A builder case
# added to buildPolicy or buildPredictor without the matching entry in
# its name list would construct fine but silently escape the harness.
# This guard fails the build when the two drift: every `case "x"` in
# the registry switches must appear in the corresponding name-list
# literal, and every listed name must have a builder case.
#
# It also pins the harness wiring itself: policytest must keep deriving
# Expressions() from the registry lists rather than a private copy.
set -eu
cd "$(dirname "$0")/.."

registry=internal/exp/registry.go
harness=internal/policy/policytest/policytest.go

# cases FUNC — the case-clause name tokens of one top-level function's
# switch, first case block per line, aliases like `case "dbrb",
# "dueling":` split onto separate lines.
cases() {
    awk -v fn="$1" '
        $0 ~ "^func " fn "\\(" { inside = 1; next }
        inside && /^}/ { inside = 0 }
        # Builder switches dispatch on e.Name at one indent level;
        # deeper case clauses belong to knob validation, not dispatch.
        inside && /^\tcase "/ {
            line = $0
            while (match(line, /"[a-z]+"/)) {
                print substr(line, RSTART + 1, RLENGTH - 2)
                line = substr(line, RSTART + RLENGTH)
            }
        }
    ' "$registry" | sort
}

# listed FUNC — the string literals of a name-list function.
listed() {
    awk -v fn="$1" '
        $0 ~ "^func " fn "\\(" { inside = 1 }
        inside && /return \[\]string\{/ {
            line = $0
            while (match(line, /"[a-z]+"/)) {
                print substr(line, RSTART + 1, RLENGTH - 2)
                line = substr(line, RSTART + RLENGTH)
            }
            exit
        }
    ' "$registry" | sort
}

fail=0
check() {
    kind="$1"; built="$2"; names="$3"
    if [ "$built" != "$names" ]; then
        echo "policy zoo guard: $kind builder cases and name list drifted:" >&2
        echo "  builder cases: $(echo $built)" >&2
        echo "  name list:     $(echo $names)" >&2
        echo "add the name to both the switch and the list (the conformance harness derives coverage from the list)" >&2
        fail=1
    fi
}

check "policy" "$(cases buildPolicy)" "$(listed PolicyNames)"
check "predictor" "$(cases buildPredictor)" "$(listed PredictorNames)"

for src in PresetNames AblationVariantNames PolicyNames; do
    if ! grep -q "exp\.$src()" "$harness"; then
        echo "policy zoo guard: policytest.Expressions no longer derives from exp.$src()" >&2
        echo "the harness must enumerate coverage from the registry, not a private list" >&2
        fail=1
    fi
done

[ "$fail" -eq 0 ] || exit 1
echo "policy zoo guard: ok"
