#!/bin/sh
# check_batch.sh — enforce the block-granular hot-path invariant.
#
# The campaign drive loops dispatch at block granularity: RunSingle
# drives hier.Core.AccessBlock, RunSampledTrace replays windows through
# cache.AccessBatch, and RunMulticore filters each core's stream with
# hier.Core.FilterBlock before the ordered LLC merge. This guard fails
# when (a) one of those wiring points disappears, or (b) a new
# per-access dispatch site (.Access( on a core or cache) shows up on the
# simulation path without being added to the documented allowlist below.
#
# Allowlisted per-access sites — each is per-access by necessity:
#
#   sim.go       core.Access(a)      probed runs (an interval sampler
#                                    reads state between accesses) and
#                                    the non-batch generator fallback
#   sampled.go   filter.Access(a)    stream materialization captures
#                                    per-access via a generator observer
#   multicore.go llc.Access(f.LLC)   the shared-LLC merge is inherently
#                                    one record at a time (timestamp
#                                    ordering across cores)
#   diff.go      (whole file)        the stream-differential harness
#                                    compares per-access on purpose
#   *_test.go                        tests cross-check batch vs scalar
set -eu
cd "$(dirname "$0")/.."

missing=""
require() { # file pattern description
    if ! grep -q "$2" "$1"; then
        missing="${missing}
  $1: expected \`$2\` ($3)"
    fi
}
require internal/sim/sim.go 'core\.AccessBlock(' \
    "RunSingle's block-granular drive loop"
require internal/sim/sampled.go 'llc\.AccessBatch(' \
    "RunSampledTrace's batched window replay"
require internal/sim/multicore.go '\.FilterBlock(' \
    "RunMulticore's per-core private-level prefilter"

if [ -n "$missing" ]; then
    echo "batch guard: block-granular wiring missing:$missing" >&2
    exit 1
fi

violations=$(grep -rn '\.Access(' internal/sim internal/figures \
    --include='*.go' \
  | grep -v '_test\.go:' \
  | grep -v '^internal/sim/diff\.go:' \
  | grep -v 'core\.Access(a)' \
  | grep -v 'filter\.Access(a)' \
  | grep -v 'llc\.Access(f\.LLC)' \
  || true)

if [ -n "$violations" ]; then
    echo "batch guard: per-access dispatch on the simulation path:" >&2
    echo "$violations" >&2
    echo "route bulk traffic through AccessBlock/AccessBatch (or add a documented exception here)" >&2
    exit 1
fi
echo "batch guard: ok"
