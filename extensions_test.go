package sdbp

import "testing"

func TestExtensionPolicyNames(t *testing.T) {
	for _, c := range []struct {
		p    Policy
		want string
	}{
		{PLRU(), "PLRU"}, {NRU(), "NRU"},
		{SamplerDBRBPLRU(), "PLRU Sampler"}, {SamplerDBRBNRU(), "NRU Sampler"},
		{BurstsDBRB(), "Bursts"}, {AIPDBRB(), "AIP"},
		{SamplingCountingDBRB(), "SamplingCounting"},
	} {
		if c.p.Name() != c.want {
			t.Errorf("name = %q, want %q", c.p.Name(), c.want)
		}
	}
}

func TestExtensionPoliciesRun(t *testing.T) {
	for _, p := range []Policy{
		PLRU(), NRU(), SamplerDBRBPLRU(), BurstsDBRB(), AIPDBRB(), SamplingCountingDBRB(),
	} {
		r := Run("456.hmmer", p, Options{Scale: 0.01})
		if r.MPKI <= 0 || r.IPC <= 0 {
			t.Errorf("%s: result = %+v", p.Name(), r)
		}
	}
}

func TestSamplerOverPLRUMatchesOverLRU(t *testing.T) {
	if testing.Short() {
		t.Skip("heavy")
	}
	// The paper's decoupling argument: the sampler's gains do not
	// depend on the LLC's own replacement policy.
	lru := Run("456.hmmer", SamplerDBRB(), Options{Scale: 0.1})
	plru := Run("456.hmmer", SamplerDBRBPLRU(), Options{Scale: 0.1})
	if plru.MPKI > lru.MPKI*1.05 {
		t.Errorf("sampler over PLRU MPKI %.2f far above over-LRU %.2f", plru.MPKI, lru.MPKI)
	}
}

func TestRunPrefetchFacade(t *testing.T) {
	base := RunPrefetch("462.libquantum", SamplerDBRB(), 0, Options{Scale: 0.02})
	pf := RunPrefetch("462.libquantum", SamplerDBRB(), 4, Options{Scale: 0.02})
	if pf.DemandMPKI >= base.DemandMPKI {
		t.Errorf("prefetch MPKI %.2f not below base %.2f", pf.DemandMPKI, base.DemandMPKI)
	}
	if pf.Accuracy() < 0 || pf.Accuracy() > 1 {
		t.Errorf("accuracy = %v", pf.Accuracy())
	}
	if base.Issued != 0 {
		t.Error("degree 0 issued prefetches")
	}
}

func TestRunVictimCacheFacade(t *testing.T) {
	r := RunVictimCache("437.leslie3d", 64, true, Options{Scale: 0.05})
	if r.Config != "dead-filtered" {
		t.Errorf("config = %q", r.Config)
	}
	if r.MPKI <= 0 || r.IPC <= 0 {
		t.Errorf("result = %+v", r)
	}
	unf := RunVictimCache("437.leslie3d", 64, false, Options{Scale: 0.05})
	if unf.Inserts < r.Inserts {
		t.Error("filtering increased insertions")
	}
}
