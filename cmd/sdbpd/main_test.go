package main

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"path/filepath"
	"regexp"
	"strings"
	"sync"
	"testing"
	"time"
)

const tinySpec = `{"policy":"LRU","workloads":["456.hmmer"],"scale":0.01}`

var listenRe = regexp.MustCompile(`listening on (http://\S+)`)

// lineWatcher collects the daemon's stderr and signals once the
// "listening on" contract line names the bound address.
type lineWatcher struct {
	mu    sync.Mutex
	buf   bytes.Buffer
	url   string
	ready chan struct{}
}

func (w *lineWatcher) Write(p []byte) (int, error) {
	w.mu.Lock()
	defer w.mu.Unlock()
	w.buf.Write(p)
	if w.url == "" {
		if m := listenRe.FindSubmatch(w.buf.Bytes()); m != nil {
			w.url = string(m[1])
			close(w.ready)
		}
	}
	return len(p), nil
}

func (w *lineWatcher) String() string {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.buf.String()
}

// startDaemon runs the daemon in-process on a free port and returns
// its base URL plus a stop function that cancels the parent context —
// the same drain path a SIGTERM takes — and reports the exit code.
func startDaemon(t *testing.T, args ...string) (base string, stop func() int) {
	t.Helper()
	ctx, cancel := context.WithCancel(context.Background())
	w := &lineWatcher{ready: make(chan struct{})}
	done := make(chan int, 1)
	go func() { done <- run(ctx, append([]string{"-addr", "127.0.0.1:0"}, args...), io.Discard, w) }()
	select {
	case <-w.ready:
	case <-time.After(15 * time.Second):
		cancel()
		t.Fatalf("daemon never announced its address; stderr so far:\n%s", w.String())
	}
	stopped := false
	stop = func() int {
		stopped = true
		cancel()
		select {
		case code := <-done:
			return code
		case <-time.After(60 * time.Second):
			t.Fatalf("daemon did not exit after cancel; stderr:\n%s", w.String())
			return -1
		}
	}
	t.Cleanup(func() {
		if !stopped {
			stop()
		}
	})
	return w.url, stop
}

func postJob(t *testing.T, base, body string) (*http.Response, []byte) {
	t.Helper()
	resp, err := http.Post(base+"/v1/jobs", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	data, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	return resp, data
}

func counterValue(t *testing.T, base, name string) uint64 {
	t.Helper()
	resp, err := http.Get(base + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var snap struct {
		Counters map[string]uint64 `json:"counters"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&snap); err != nil {
		t.Fatal(err)
	}
	return snap.Counters[name]
}

// TestDaemonCacheHitThenCrashResume is the daemon-level end-to-end:
// a resubmitted spec is a cache hit, and after a restart with -resume
// the checkpoint — not a re-simulation — reproduces the byte-identical
// manifest.
func TestDaemonCacheHitThenCrashResume(t *testing.T) {
	ckpt := filepath.Join(t.TempDir(), "sdbpd.ckpt")

	base, stop := startDaemon(t, "-checkpoint", ckpt)
	resp1, body1 := postJob(t, base, tinySpec)
	if resp1.StatusCode != http.StatusOK {
		t.Fatalf("first submit: HTTP %d: %s", resp1.StatusCode, body1)
	}
	resp2, body2 := postJob(t, base, tinySpec)
	if resp2.StatusCode != http.StatusOK || !bytes.Equal(body1, body2) {
		t.Fatalf("resubmit: HTTP %d, identical=%t", resp2.StatusCode, bytes.Equal(body1, body2))
	}
	if src := resp2.Header.Get("X-Sdbpd-Cache"); src != "hit" {
		t.Errorf("resubmit source = %q, want hit", src)
	}
	if hits := counterValue(t, base, "serve_cache_hits"); hits < 1 {
		t.Errorf("serve_cache_hits = %d, want >= 1", hits)
	}
	if code := stop(); code != 0 {
		t.Fatalf("first daemon exit code = %d", code)
	}

	base2, stop2 := startDaemon(t, "-checkpoint", ckpt, "-resume")
	resp3, body3 := postJob(t, base2, tinySpec)
	if resp3.StatusCode != http.StatusOK {
		t.Fatalf("post-restart submit: HTTP %d: %s", resp3.StatusCode, body3)
	}
	if !bytes.Equal(body1, body3) {
		t.Errorf("post-restart manifest differs from the original:\n%s\nvs\n%s", body1, body3)
	}
	if got := counterValue(t, base2, "runner_jobs_from_checkpoint"); got != 1 {
		t.Errorf("runner_jobs_from_checkpoint = %d, want 1", got)
	}
	if got := counterValue(t, base2, "runner_jobs_succeeded"); got != 0 {
		t.Errorf("runner_jobs_succeeded = %d, want 0 (resume must not re-simulate)", got)
	}
	if code := stop2(); code != 0 {
		t.Fatalf("second daemon exit code = %d", code)
	}
}

func TestDaemonRejectsBadFlags(t *testing.T) {
	var errBuf bytes.Buffer
	if code := run(context.Background(), []string{"-store", "bogus"}, io.Discard, &errBuf); code != 2 {
		t.Errorf("-store bogus: exit %d, want 2; stderr: %s", code, errBuf.String())
	}
	if !strings.Contains(errBuf.String(), "unknown -store") {
		t.Errorf("stderr does not explain the bad flag: %s", errBuf.String())
	}
}

func TestDaemonDiskStoreServesResultsEndpoint(t *testing.T) {
	dir := t.TempDir()
	base, _ := startDaemon(t, "-store", "disk", "-store-dir", filepath.Join(dir, "store"))
	resp, body := postJob(t, base, tinySpec)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("submit: HTTP %d", resp.StatusCode)
	}
	addr := resp.Header.Get("X-Sdbpd-Addr")
	if addr == "" {
		t.Fatal("submit response missing X-Sdbpd-Addr")
	}
	got, err := http.Get(fmt.Sprintf("%s/v1/results/%s", base, addr))
	if err != nil {
		t.Fatal(err)
	}
	defer got.Body.Close()
	data, _ := io.ReadAll(got.Body)
	if got.StatusCode != http.StatusOK || !bytes.Equal(data, body) {
		t.Errorf("results endpoint: HTTP %d, identical=%t", got.StatusCode, bytes.Equal(data, body))
	}
}
