// Command sdbpd is the simulation service: a long-running HTTP server
// that accepts declarative exp.Spec experiments as JSON jobs, executes
// them through the fault-tolerant runner pool, and answers with
// deterministic, content-addressed result manifests.
//
//	sdbpd -addr :8344 -checkpoint sdbpd.ckpt -resume -store disk
//
// Robustness is the point, not an afterthought (see internal/serve):
// a full admission queue answers 429 + Retry-After, identical
// concurrent submissions cost one simulation, results are cached by
// the canonical spec's content address, and SIGINT/SIGTERM drain
// in-flight jobs into the JSONL checkpoint so a restarted server
// resumes byte-identically.
//
//	POST /v1/jobs               submit an exp.Spec JSON body; returns the manifest
//	GET  /v1/results/ADDR       fetch a cached manifest by content address
//	GET  /v1/traces/ADDR        a job's pipeline trace (?format=chrome for chrome://tracing)
//	GET  /v1/jobs/ADDR/events   live job lifecycle + progress as server-sent events
//	GET  /healthz               liveness
//	GET  /readyz                readiness (503 while draining)
//	GET  /metrics               obs.Snapshot JSON; Prometheus text with
//	                            ?format=prom or a text/plain Accept header
//
// See cmd/sdbpctl for the matching submit/poll client.
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"log"
	"net"
	"net/http"
	"os"
	"time"

	"sdbp/internal/obs"
	"sdbp/internal/runner"
	"sdbp/internal/serve"
)

func main() {
	os.Exit(run(context.Background(), os.Args[1:], os.Stdout, os.Stderr))
}

// run is the whole daemon with its context and streams made explicit:
// tests drive it in-process and stop it by canceling parent, which
// takes the same drain path as a delivered SIGTERM.
func run(parent context.Context, args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("sdbpd", flag.ContinueOnError)
	fs.SetOutput(stderr)
	addr := fs.String("addr", "127.0.0.1:8344", "listen address (host:port; port 0 picks a free one)")
	queue := fs.Int("queue", 64, "admission queue capacity; a full queue answers 429")
	batchWait := fs.Duration("batch-wait", 10*time.Millisecond, "coalescing window measured from a batch's first job")
	batchMax := fs.Int("batch-max", 16, "max jobs per coalesced batch")
	batches := fs.Int("batches", 2, "max concurrently executing batches")
	workers := fs.Int("workers", 0, "runner workers per batch (0 = NumCPU)")
	timeout := fs.Duration("timeout", 10*time.Minute, "per-job timeout (0 = none)")
	retries := fs.Int("retries", 0, "per-job retry budget for transient failures")
	checkpoint := fs.String("checkpoint", "", "journal completed jobs to this JSONL file for crash-safe resume")
	resume := fs.Bool("resume", false, "load the checkpoint so finished jobs are not re-simulated")
	storeKind := fs.String("store", "mem", "result cache backend: mem or disk")
	storeDir := fs.String("store-dir", "sdbpd-store", "directory for -store disk")
	grace := fs.Duration("grace", 30*time.Second, "shutdown drain deadline after SIGINT/SIGTERM")
	logLevel := fs.String("log-level", "info", "minimum structured log level: debug, info, warn, or error")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	level, err := obs.ParseLevel(*logLevel)
	if err != nil {
		fmt.Fprintln(stderr, "sdbpd:", err)
		return 2
	}
	obs.SetDefault(obs.NewLogger(stderr, level))
	logger := log.New(stderr, "sdbpd: ", log.LstdFlags)

	var store serve.Store
	switch *storeKind {
	case "mem":
		store = serve.NewMemStore()
	case "disk":
		ds, err := serve.NewDiskStore(*storeDir)
		if err != nil {
			fmt.Fprintln(stderr, "sdbpd:", err)
			return 1
		}
		store = ds
	default:
		fmt.Fprintf(stderr, "sdbpd: unknown -store %q (valid: mem, disk)\n", *storeKind)
		return 2
	}

	var ck *runner.Checkpoint
	if *resume && *checkpoint == "" {
		*checkpoint = "sdbpd.ckpt"
	}
	if *checkpoint != "" {
		c, err := runner.OpenCheckpoint(*checkpoint, *resume)
		if err != nil {
			fmt.Fprintln(stderr, "sdbpd:", err)
			return 1
		}
		ck = c
		defer ck.Close()
		if *resume {
			logger.Printf("resume: %d checkpointed jobs loaded from %s", ck.Len(), *checkpoint)
		}
	}

	// SIGINT/SIGTERM start the drain (shared helper with
	// cmd/experiments), so containerized stops checkpoint cleanly.
	ctx, stop := runner.SignalContext(parent)
	defer stop()

	srv := serve.New(serve.Config{
		Queue:      *queue,
		MaxBatch:   *batchMax,
		BatchWait:  *batchWait,
		Batches:    *batches,
		Workers:    *workers,
		JobTimeout: *timeout,
		Retries:    *retries,
		Store:      store,
		Checkpoint: ck,
		Log:        logger,
	})

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		fmt.Fprintln(stderr, "sdbpd:", err)
		return 1
	}
	// The listening line is the contract with tests and the smoke
	// script: it names the bound address (with the resolved port).
	fmt.Fprintf(stderr, "sdbpd: listening on http://%s\n", ln.Addr())

	hs := &http.Server{Handler: srv.Handler()}
	serveErr := make(chan error, 1)
	go func() { serveErr <- hs.Serve(ln) }()

	select {
	case err := <-serveErr:
		fmt.Fprintln(stderr, "sdbpd:", err)
		return 1
	case <-ctx.Done():
	}

	logger.Printf("draining: in-flight jobs finish and checkpoint; queued work answers 503 (grace %s)", *grace)
	shCtx, cancel := context.WithTimeout(context.Background(), *grace)
	defer cancel()
	code := 0
	if err := srv.Shutdown(shCtx); err != nil {
		logger.Printf("drain incomplete: %v", err)
		code = 1
	}
	if err := hs.Shutdown(shCtx); err != nil {
		logger.Printf("http shutdown: %v", err)
		code = 1
	}
	logger.Printf("drained and stopped")
	return code
}
