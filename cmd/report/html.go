package main

// HTML rendering for the telemetry report. Everything is inline —
// one <style> block and per-metric SVG sparklines — so the file opens
// anywhere with no network access and no scripts. Rendering is
// deterministic: fixed-precision number formatting, slice-ordered
// iteration, no timestamps.

import (
	"bytes"
	"fmt"
	"html/template"
	"io"
	"strings"

	"sdbp/internal/probe"
)

// readSeries decodes the interval JSONL stream.
func readSeries(r io.Reader) ([]probe.Series, error) {
	return probe.ReadJSONL(r)
}

// Sparkline viewport in CSS pixels.
const (
	sparkW   = 260
	sparkH   = 44
	sparkPad = 3
)

// sparkSVG renders vals as an inline SVG polyline scaled to the
// series' own [min, max] range (a flat series draws a midline). The
// markup contains only numbers we format ourselves, so it is safe to
// emit as template.HTML.
func sparkSVG(vals []float64) template.HTML {
	var b strings.Builder
	fmt.Fprintf(&b, `<svg class="spark" width="%d" height="%d" viewBox="0 0 %d %d" role="img">`,
		sparkW, sparkH, sparkW, sparkH)
	if len(vals) > 0 {
		min, max := vals[0], vals[0]
		for _, v := range vals {
			if v < min {
				min = v
			}
			if v > max {
				max = v
			}
		}
		span := max - min
		b.WriteString(`<polyline fill="none" stroke="#2563eb" stroke-width="1.5" points="`)
		for i, v := range vals {
			x := float64(sparkPad)
			if len(vals) > 1 {
				x += float64(i) / float64(len(vals)-1) * float64(sparkW-2*sparkPad)
			}
			y := float64(sparkH) / 2
			if span > 0 {
				y = float64(sparkH-sparkPad) - (v-min)/span*float64(sparkH-2*sparkPad)
			}
			if i > 0 {
				b.WriteByte(' ')
			}
			fmt.Fprintf(&b, "%.1f,%.1f", x, y)
		}
		b.WriteString(`"/>`)
	}
	b.WriteString(`</svg>`)
	return template.HTML(b.String())
}

// spark is one rendered metric strip: title, SVG and range labels.
type spark struct {
	Title    string
	SVG      template.HTML
	Min, Max string
}

func newSpark(title string, vals []float64) spark {
	min, max := 0.0, 0.0
	if len(vals) > 0 {
		min, max = vals[0], vals[0]
		for _, v := range vals {
			if v < min {
				min = v
			}
			if v > max {
				max = v
			}
		}
	}
	return spark{Title: title, SVG: sparkSVG(vals), Min: rate(min), Max: rate(max)}
}

// rate formats the report's derived ratios with fixed precision so
// output is deterministic and columns align.
func rate(v float64) string { return fmt.Sprintf("%.4f", v) }

// pcView is one attribution table row plus its derived rates.
type pcView struct {
	probe.PCRow
	DeadRate string
	FPRate   string
}

// seriesView is one benchmark's fully formatted section.
type seriesView struct {
	Run       probe.Run
	IPC       string
	MissRate  string
	DeadRate  string
	FPRate    string
	NInterval int
	Sparks    []spark
	PCs       []pcView
	// Totals over the (possibly re-truncated) PC table, and whether
	// they reconcile with the Run aggregates.
	TotPred, TotPos, TotFP, TotEvict uint64
	Reconciles                       bool
}

// truncatePCs bounds the table to k named rows, folding the remainder
// (including any existing rollup) into one "other" row so the column
// sums still reconcile with the run aggregates. k <= 0 keeps the table
// as exported.
func truncatePCs(rows []probe.PCRow, k int) []probe.PCRow {
	if k <= 0 {
		return rows
	}
	var named, folded []probe.PCRow
	for _, r := range rows {
		if !r.Other && len(named) < k {
			named = append(named, r)
		} else {
			folded = append(folded, r)
		}
	}
	if len(folded) == 0 {
		return named
	}
	roll := probe.PCRow{PC: "(other)", Other: true}
	for _, r := range folded {
		roll.Predictions += r.Predictions
		roll.Positives += r.Positives
		roll.FalsePositives += r.FalsePositives
		roll.Evictions += r.Evictions
	}
	return append(named, roll)
}

func newSeriesView(s *probe.Series, topk int) seriesView {
	miss, ipc, dead, fp := make([]float64, len(s.Intervals)), make([]float64, len(s.Intervals)), make([]float64, len(s.Intervals)), make([]float64, len(s.Intervals))
	for i, iv := range s.Intervals {
		miss[i], ipc[i], dead[i], fp[i] = iv.MissRate, iv.IPC, iv.DeadRate, iv.FPRate
	}
	v := seriesView{
		Run:       s.Run,
		IPC:       rate(s.Run.IPC),
		MissRate:  rate(ratio(s.Run.Misses, s.Run.Accesses)),
		DeadRate:  rate(ratio(s.Run.Positives, s.Run.Predictions)),
		FPRate:    rate(ratio(s.Run.FalsePositives, s.Run.Predictions)),
		NInterval: len(s.Intervals),
		Sparks: []spark{
			newSpark("LLC miss rate", miss),
			newSpark("IPC", ipc),
			newSpark("dead prediction rate", dead),
			newSpark("false positive rate", fp),
		},
	}
	for _, r := range truncatePCs(s.PCs, topk) {
		v.PCs = append(v.PCs, pcView{
			PCRow:    r,
			DeadRate: rate(ratio(r.Positives, r.Predictions)),
			FPRate:   rate(ratio(r.FalsePositives, r.Predictions)),
		})
		v.TotPred += r.Predictions
		v.TotPos += r.Positives
		v.TotFP += r.FalsePositives
		v.TotEvict += r.Evictions
	}
	v.Reconciles = v.TotPred == s.Run.Predictions &&
		v.TotPos == s.Run.Positives &&
		v.TotFP == s.Run.FalsePositives
	return v
}

func ratio(num, den uint64) float64 {
	if den == 0 {
		return 0
	}
	return float64(num) / float64(den)
}

// renderHTML produces the complete self-contained report.
func renderHTML(series []probe.Series, topk int) ([]byte, error) {
	data := struct {
		Interval uint64
		Series   []seriesView
	}{Series: make([]seriesView, 0, len(series))}
	if len(series) > 0 {
		data.Interval = series[0].Run.Interval
	}
	for i := range series {
		data.Series = append(data.Series, newSeriesView(&series[i], topk))
	}
	var buf bytes.Buffer
	if err := reportTmpl.Execute(&buf, data); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

var reportTmpl = template.Must(template.New("report").Parse(`<!DOCTYPE html>
<html lang="en">
<head>
<meta charset="utf-8">
<title>SDBP telemetry report</title>
<style>
body { font: 14px/1.45 system-ui, sans-serif; margin: 2rem auto; max-width: 72rem; padding: 0 1rem; color: #111; }
h1 { font-size: 1.4rem; }
h2 { font-size: 1.1rem; border-top: 1px solid #ddd; padding-top: 1rem; margin-top: 2rem; }
table { border-collapse: collapse; margin: 0.5rem 0 1rem; }
th, td { padding: 0.2rem 0.7rem; text-align: right; border-bottom: 1px solid #eee; }
th { background: #f6f6f6; }
td:first-child, th:first-child { text-align: left; font-family: ui-monospace, monospace; }
.sparks { display: flex; flex-wrap: wrap; gap: 1.2rem; margin: 0.6rem 0; }
.spark-box { font-size: 12px; color: #555; }
.spark { display: block; background: #f8fafc; border: 1px solid #e5e7eb; }
.ok { color: #15803d; }
.bad { color: #b91c1c; font-weight: bold; }
.other td { color: #777; font-style: italic; }
.tot td { border-top: 2px solid #999; font-weight: bold; }
.meta { color: #555; font-size: 0.9em; }
</style>
</head>
<body>
<h1>SDBP microarchitectural telemetry</h1>
<p class="meta">Interval granularity: {{.Interval}} retired instructions.
Sparklines plot per-interval deltas over each run; each strip is scaled
to its own min&#8211;max range. The per-PC tables attribute dead-block
predictions, dead verdicts, false positives and evictions to the
program counters that caused them; column sums reconcile exactly with
the run&#8217;s aggregate counters.</p>

<h2 id="overview">Overview</h2>
<table>
<tr><th>benchmark</th><th>policy</th><th>instructions</th><th>IPC</th><th>LLC miss rate</th><th>dead rate</th><th>FP rate</th><th>intervals</th></tr>
{{range .Series}}<tr><td><a href="#b-{{.Run.Benchmark}}">{{.Run.Benchmark}}</a></td><td>{{.Run.Policy}}</td><td>{{.Run.Instructions}}</td><td>{{.IPC}}</td><td>{{.MissRate}}</td><td>{{.DeadRate}}</td><td>{{.FPRate}}</td><td>{{.NInterval}}</td></tr>
{{end}}</table>
{{range .Series}}
<h2 id="b-{{.Run.Benchmark}}">{{.Run.Benchmark}}</h2>
<p class="meta">{{.Run.Policy}} &#8212; {{.Run.Instructions}} instructions,
{{.Run.Cycles}} cycles, IPC {{.IPC}}; LLC: {{.Run.Accesses}} accesses,
{{.Run.Misses}} misses (rate {{.MissRate}}), {{.Run.Evictions}} evictions;
predictor: {{.Run.Predictions}} predictions, {{.Run.Positives}} dead
verdicts, {{.Run.FalsePositives}} false positives.</p>
<div class="sparks">
{{range .Sparks}}<div class="spark-box">{{.Title}}<br>{{.SVG}}<span>min {{.Min}} &#183; max {{.Max}}</span></div>
{{end}}</div>
{{if .PCs}}<table>
<tr><th>PC</th><th>predictions</th><th>dead</th><th>false pos</th><th>evictions</th><th>dead rate</th><th>FP rate</th></tr>
{{range .PCs}}<tr{{if .Other}} class="other"{{end}}><td>{{.PC}}</td><td>{{.Predictions}}</td><td>{{.Positives}}</td><td>{{.FalsePositives}}</td><td>{{.Evictions}}</td><td>{{.DeadRate}}</td><td>{{.FPRate}}</td></tr>
{{end}}<tr class="tot"><td>total</td><td>{{.TotPred}}</td><td>{{.TotPos}}</td><td>{{.TotFP}}</td><td>{{.TotEvict}}</td><td></td><td></td></tr>
</table>
<p class="meta">{{if .Reconciles}}<span class="ok">&#10003; totals reconcile with the run&#8217;s aggregate accuracy counters.</span>{{else}}<span class="bad">&#10007; totals do NOT reconcile with the run aggregates.</span>{{end}}</p>
{{else}}<p class="meta">No per-PC attribution (non-DBRB policy).</p>
{{end}}{{end}}
</body>
</html>
`))
