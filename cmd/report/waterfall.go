package main

// Waterfall rendering for job traces (report -spans FILE). The input
// is the JSON body of GET /v1/traces/ADDR — or just its spans array —
// and the output is one self-contained HTML page: each span a bar
// positioned by its offset from the trace start and scaled to the
// end-to-end duration, indented by its depth in the span tree, with
// attributes inline. Like the telemetry report it embeds everything
// (one <style> block, no scripts) and renders deterministically.

import (
	"bytes"
	"encoding/json"
	"fmt"
	"html/template"
	"sort"
	"time"

	"sdbp/internal/obs"
)

// traceDoc is the shape /v1/traces/ADDR answers with.
type traceDoc struct {
	Trace string           `json:"trace"`
	Addr  string           `json:"addr"`
	Spans []obs.SpanRecord `json:"spans"`
}

// readSpans accepts either a full trace body or a bare spans array.
func readSpans(data []byte) (traceDoc, error) {
	var doc traceDoc
	if err := json.Unmarshal(data, &doc); err == nil && len(doc.Spans) > 0 {
		return doc, nil
	}
	var spans []obs.SpanRecord
	if err := json.Unmarshal(data, &spans); err != nil || len(spans) == 0 {
		return traceDoc{}, fmt.Errorf("input is neither a trace body nor a span array")
	}
	return traceDoc{Spans: spans}, nil
}

// waterfallRow is one rendered bar.
type waterfallRow struct {
	Name     string
	Depth    int
	LeftPct  string // bar offset as % of the trace window
	WidthPct string // bar width as % of the trace window
	Duration string
	Attrs    string
}

// buildWaterfall lays spans out against the trace window
// [min start, max end]. Children follow their parents (depth-first in
// start order), so the visual nesting matches the span tree even when
// siblings overlap in time.
func buildWaterfall(spans []obs.SpanRecord) []waterfallRow {
	byParent := map[string][]obs.SpanRecord{}
	ids := map[string]bool{}
	for _, sp := range spans {
		ids[sp.ID] = true
	}
	var t0, t1 time.Time
	for i, sp := range spans {
		parent := sp.Parent
		if !ids[parent] {
			parent = "" // orphans render as roots rather than vanish
		}
		byParent[parent] = append(byParent[parent], sp)
		end := sp.Start.Add(sp.Duration)
		if i == 0 || sp.Start.Before(t0) {
			t0 = sp.Start
		}
		if i == 0 || end.After(t1) {
			t1 = end
		}
	}
	window := t1.Sub(t0)
	if window <= 0 {
		window = time.Nanosecond
	}
	for _, kids := range byParent {
		kids := kids
		sort.Slice(kids, func(i, j int) bool {
			if !kids[i].Start.Equal(kids[j].Start) {
				return kids[i].Start.Before(kids[j].Start)
			}
			if kids[i].Name != kids[j].Name {
				return kids[i].Name < kids[j].Name
			}
			return kids[i].ID < kids[j].ID
		})
	}

	var rows []waterfallRow
	var walk func(parent string, depth int)
	walk = func(parent string, depth int) {
		for _, sp := range byParent[parent] {
			left := float64(sp.Start.Sub(t0)) / float64(window) * 100
			width := float64(sp.Duration) / float64(window) * 100
			if width < 0.2 {
				width = 0.2 // keep microsecond spans visible
			}
			var attrs bytes.Buffer
			for _, k := range obs.SortedAttrKeys(sp.Attrs) {
				fmt.Fprintf(&attrs, " %s=%s", k, sp.Attrs[k])
			}
			rows = append(rows, waterfallRow{
				Name:     sp.Name,
				Depth:    depth,
				LeftPct:  fmt.Sprintf("%.2f", left),
				WidthPct: fmt.Sprintf("%.2f", width),
				Duration: sp.Duration.Round(time.Microsecond).String(),
				Attrs:    attrs.String(),
			})
			if sp.ID != "" && sp.ID != parent {
				walk(sp.ID, depth+1)
			}
		}
	}
	walk("", 0)
	return rows
}

var waterfallTmpl = template.Must(template.New("waterfall").Parse(`<!DOCTYPE html>
<html lang="en">
<head>
<meta charset="utf-8">
<title>job trace {{.Addr}}</title>
<style>
body { font: 13px/1.5 system-ui, sans-serif; margin: 2rem; color: #111; }
h1 { font-size: 1.1rem; } code { background: #f3f4f6; padding: 0 .25em; }
.row { display: flex; align-items: center; margin: 2px 0; }
.label { flex: 0 0 22rem; white-space: nowrap; overflow: hidden; text-overflow: ellipsis; }
.lane { position: relative; flex: 1; height: 16px; background: #f8fafc; border-left: 1px solid #e5e7eb; }
.bar { position: absolute; top: 2px; height: 12px; background: #2563eb; border-radius: 2px; min-width: 1px; }
.depth1 .bar { background: #059669; } .depth2 .bar { background: #d97706; }
.depth3 .bar { background: #dc2626; } .dur { color: #6b7280; margin-left: .5em; }
.attrs { color: #6b7280; }
</style>
</head>
<body>
<h1>job trace{{if .Addr}} <code>{{.Addr}}</code>{{end}}{{if .Trace}} ({{.Trace}}){{end}}</h1>
{{range .Rows}}<div class="row depth{{.Depth}}">
<div class="label" style="padding-left: {{.Depth}}rem">{{.Name}}<span class="dur">{{.Duration}}</span><span class="attrs">{{.Attrs}}</span></div>
<div class="lane"><div class="bar" style="left: {{.LeftPct}}%; width: {{.WidthPct}}%"></div></div>
</div>
{{end}}</body>
</html>
`))

// renderWaterfall renders a trace body into the waterfall page.
func renderWaterfall(data []byte) ([]byte, error) {
	doc, err := readSpans(data)
	if err != nil {
		return nil, err
	}
	var buf bytes.Buffer
	err = waterfallTmpl.Execute(&buf, struct {
		Addr  string
		Trace string
		Rows  []waterfallRow
	}{doc.Addr, doc.Trace, buildWaterfall(doc.Spans)})
	if err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}
