// Command report renders interval-telemetry JSONL (written by
// experiments -interval N -trace-out FILE) into a self-contained HTML
// report: per-benchmark sparklines of LLC miss rate, IPC,
// dead-prediction rate and false-positive rate over the run, plus the
// per-PC death-attribution tables with reconciliation against the run
// aggregates.
//
//	report -in probe.jsonl -out report.html
//	report -in probe.jsonl -out - > report.html   # stdout
//	report -in probe.jsonl -topk 10               # tighter PC tables
//	report -spans trace.json -out waterfall.html  # job-trace waterfall
//
// -spans renders the other telemetry artifact: a job trace fetched
// with 'sdbpctl trace ADDR', as a per-stage waterfall of the sdbpd
// pipeline (decode → cache lookup → queue wait → coalesce → run →
// store).
//
// The output embeds everything inline (CSS and SVG, no scripts, no
// external references) and is a pure function of the input bytes, so
// re-rendering the same JSONL is byte-identical.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// run is the whole command with streams and arguments explicit so
// tests drive it in-process.
func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("report", flag.ContinueOnError)
	fs.SetOutput(stderr)
	in := fs.String("in", "", "interval telemetry JSONL (from experiments -trace-out)")
	spans := fs.String("spans", "", "render a job-trace waterfall from this trace JSON (from 'sdbpctl trace')")
	out := fs.String("out", "report.html", `output HTML path ("-" = stdout)`)
	topk := fs.Int("topk", 0, "bound each per-PC table to this many named rows (0 = all rows in the file)")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if (*in == "") == (*spans == "") {
		fmt.Fprintln(stderr, "report: exactly one of -in FILE (telemetry JSONL) or -spans FILE (trace JSON) is required")
		return 2
	}
	if *spans != "" {
		data, err := os.ReadFile(*spans)
		if err != nil {
			fmt.Fprintf(stderr, "report: %v\n", err)
			return 1
		}
		html, err := renderWaterfall(data)
		if err != nil {
			fmt.Fprintf(stderr, "report: rendering %s: %v\n", *spans, err)
			return 1
		}
		return writeOut(html, *out, fmt.Sprintf("trace waterfall rendered to %s", *out), stdout, stderr)
	}

	f, err := os.Open(*in)
	if err != nil {
		fmt.Fprintf(stderr, "report: %v\n", err)
		return 1
	}
	series, err := readSeries(f)
	f.Close()
	if err != nil {
		fmt.Fprintf(stderr, "report: reading %s: %v\n", *in, err)
		return 1
	}
	if len(series) == 0 {
		fmt.Fprintf(stderr, "report: %s holds no telemetry series\n", *in)
		return 1
	}

	html, err := renderHTML(series, *topk)
	if err != nil {
		fmt.Fprintf(stderr, "report: rendering: %v\n", err)
		return 1
	}

	return writeOut(html, *out, fmt.Sprintf("%d benchmark(s) rendered to %s", len(series), *out), stdout, stderr)
}

// writeOut delivers a rendered page to -out (or stdout for "-").
func writeOut(html []byte, out, note string, stdout, stderr io.Writer) int {
	if out == "-" {
		if _, err := stdout.Write(html); err != nil {
			fmt.Fprintf(stderr, "report: %v\n", err)
			return 1
		}
		return 0
	}
	if err := os.WriteFile(out, html, 0o644); err != nil {
		fmt.Fprintf(stderr, "report: %v\n", err)
		return 1
	}
	fmt.Fprintf(stderr, "report: %s\n", note)
	return 0
}
