// Command report renders interval-telemetry JSONL (written by
// experiments -interval N -trace-out FILE) into a self-contained HTML
// report: per-benchmark sparklines of LLC miss rate, IPC,
// dead-prediction rate and false-positive rate over the run, plus the
// per-PC death-attribution tables with reconciliation against the run
// aggregates.
//
//	report -in probe.jsonl -out report.html
//	report -in probe.jsonl -out - > report.html   # stdout
//	report -in probe.jsonl -topk 10               # tighter PC tables
//
// The output embeds everything inline (CSS and SVG, no scripts, no
// external references) and is a pure function of the input bytes, so
// re-rendering the same JSONL is byte-identical.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// run is the whole command with streams and arguments explicit so
// tests drive it in-process.
func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("report", flag.ContinueOnError)
	fs.SetOutput(stderr)
	in := fs.String("in", "", "interval telemetry JSONL (from experiments -trace-out)")
	out := fs.String("out", "report.html", `output HTML path ("-" = stdout)`)
	topk := fs.Int("topk", 0, "bound each per-PC table to this many named rows (0 = all rows in the file)")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if *in == "" {
		fmt.Fprintln(stderr, "report: -in FILE is required (the JSONL experiments wrote with -trace-out)")
		return 2
	}

	f, err := os.Open(*in)
	if err != nil {
		fmt.Fprintf(stderr, "report: %v\n", err)
		return 1
	}
	series, err := readSeries(f)
	f.Close()
	if err != nil {
		fmt.Fprintf(stderr, "report: reading %s: %v\n", *in, err)
		return 1
	}
	if len(series) == 0 {
		fmt.Fprintf(stderr, "report: %s holds no telemetry series\n", *in)
		return 1
	}

	html, err := renderHTML(series, *topk)
	if err != nil {
		fmt.Fprintf(stderr, "report: rendering: %v\n", err)
		return 1
	}

	if *out == "-" {
		if _, err := stdout.Write(html); err != nil {
			fmt.Fprintf(stderr, "report: %v\n", err)
			return 1
		}
		return 0
	}
	if err := os.WriteFile(*out, html, 0o644); err != nil {
		fmt.Fprintf(stderr, "report: %v\n", err)
		return 1
	}
	fmt.Fprintf(stderr, "report: %d benchmark(s) rendered to %s\n", len(series), *out)
	return 0
}
