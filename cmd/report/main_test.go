package main

// Report tests: the generated HTML must be self-contained (no external
// references, no scripts), deterministic, and its per-PC tables must
// reconcile with the run aggregates — including after -topk
// re-truncation folds rows into the rollup.

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"sdbp/internal/probe"
)

// fixtureSeries builds two synthetic runs: one with a PC table and a
// rollup row, one without attribution (non-DBRB policy).
func fixtureSeries() []probe.Series {
	iv := func(idx int, instr, dInstr, dCyc, dAcc, dMiss, dPred, dPos, dFP uint64) probe.Interval {
		v := probe.Interval{
			Index: idx, Instructions: instr,
			DInstructions: dInstr, DCycles: dCyc,
			DAccesses: dAcc, DHits: dAcc - dMiss, DMisses: dMiss,
			DPredictions: dPred, DPositives: dPos, DFalsePositives: dFP,
		}
		v.ComputeRates()
		return v
	}
	return []probe.Series{
		{
			Run: probe.Run{
				Benchmark: "429.mcf", Policy: "SDBP", Interval: 1000,
				Instructions: 2500, Cycles: 4000, IPC: 0.625,
				Accesses: 300, Misses: 120, Evictions: 90,
				Predictions: 50, Positives: 30, FalsePositives: 5,
			},
			Intervals: []probe.Interval{
				iv(0, 1000, 1000, 1600, 120, 50, 20, 12, 2),
				iv(1, 2000, 1000, 1500, 100, 40, 20, 12, 2),
				iv(2, 2500, 500, 900, 80, 30, 10, 6, 1),
			},
			PCs: []probe.PCRow{
				{PC: "0x400", Predictions: 30, Positives: 20, FalsePositives: 3, Evictions: 40},
				{PC: "0x8a0", Predictions: 15, Positives: 8, FalsePositives: 1, Evictions: 30},
				{PC: "(other)", Other: true, Predictions: 5, Positives: 2, FalsePositives: 1, Evictions: 20},
			},
		},
		{
			Run: probe.Run{
				Benchmark: "470.lbm", Policy: "LRU", Interval: 1000,
				Instructions: 1000, Cycles: 2000, IPC: 0.5,
				Accesses: 100, Misses: 60, Evictions: 55,
			},
			Intervals: []probe.Interval{iv(0, 1000, 1000, 2000, 100, 60, 0, 0, 0)},
		},
	}
}

// writeFixture marshals the fixture to a JSONL file and returns its
// path.
func writeFixture(t *testing.T) string {
	t.Helper()
	b, err := probe.MarshalJSONL(fixtureSeries())
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "probe.jsonl")
	if err := os.WriteFile(path, b, 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

// render runs the command in-process and returns the HTML bytes.
func render(t *testing.T, args ...string) []byte {
	t.Helper()
	var stdout, stderr bytes.Buffer
	if code := run(append(args, "-out", "-"), &stdout, &stderr); code != 0 {
		t.Fatalf("report %v exited %d\nstderr:\n%s", args, code, stderr.String())
	}
	return stdout.Bytes()
}

func TestReportSelfContained(t *testing.T) {
	html := string(render(t, "-in", writeFixture(t)))
	if !strings.HasPrefix(html, "<!DOCTYPE html>") {
		t.Error("missing doctype")
	}
	for _, banned := range []string{"<script", "http://", "https://", "src=", "@import"} {
		if strings.Contains(html, banned) {
			t.Errorf("output is not self-contained: found %q", banned)
		}
	}
	for _, want := range []string{
		"429.mcf", "470.lbm", "SDBP", "LRU",
		"<svg", "<polyline", "0x400", "0x8a0", "(other)",
		"totals reconcile",
		"No per-PC attribution",
	} {
		if !strings.Contains(html, want) {
			t.Errorf("output missing %q", want)
		}
	}
	// Every series renders the four metric sparklines.
	if got, want := strings.Count(html, "<svg"), 2*4; got != want {
		t.Errorf("%d sparklines, want %d", got, want)
	}
}

// TestReportReconciliation checks the rendered totals row carries the
// run's aggregate accuracy counters — the reconciliation a reader
// checks by eye is asserted here by value.
func TestReportReconciliation(t *testing.T) {
	html := string(render(t, "-in", writeFixture(t)))
	s := fixtureSeries()[0]
	totals := fmt.Sprintf(`<tr class="tot"><td>total</td><td>%d</td><td>%d</td><td>%d</td><td>%d</td>`,
		s.Run.Predictions, s.Run.Positives, s.Run.FalsePositives, s.Run.Evictions)
	if !strings.Contains(html, totals) {
		t.Errorf("totals row %q not found in output", totals)
	}
	if strings.Contains(html, "do NOT reconcile") {
		t.Error("report flags a reconciliation failure on a consistent fixture")
	}
}

// TestReportTopKRefold bounds the table to one named row; the fold
// must preserve the column sums so reconciliation still holds.
func TestReportTopKRefold(t *testing.T) {
	html := string(render(t, "-in", writeFixture(t), "-topk", "1"))
	if strings.Contains(html, "0x8a0") {
		t.Error("-topk 1 left a second named row in the table")
	}
	if !strings.Contains(html, "0x400") || !strings.Contains(html, "(other)") {
		t.Error("-topk 1 lost the top row or the rollup")
	}
	if !strings.Contains(html, "totals reconcile") || strings.Contains(html, "do NOT reconcile") {
		t.Error("re-truncated table no longer reconciles")
	}
}

// TestReportBrokenInputFlagged renders a series whose PC table was
// tampered with; the report must render and call out the mismatch.
func TestReportBrokenInputFlagged(t *testing.T) {
	series := fixtureSeries()
	series[0].PCs[0].Positives += 7
	b, err := probe.MarshalJSONL(series)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "broken.jsonl")
	if err := os.WriteFile(path, b, 0o644); err != nil {
		t.Fatal(err)
	}
	html := string(render(t, "-in", path))
	if !strings.Contains(html, "do NOT reconcile") {
		t.Error("tampered totals not flagged")
	}
}

func TestReportDeterministic(t *testing.T) {
	path := writeFixture(t)
	if !bytes.Equal(render(t, "-in", path), render(t, "-in", path)) {
		t.Error("two renders of the same input differ")
	}
}

func TestReportUsageErrors(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if code := run(nil, &stdout, &stderr); code != 2 {
		t.Errorf("missing -in: exit %d, want 2", code)
	}
	stderr.Reset()
	if code := run([]string{"-in", filepath.Join(t.TempDir(), "absent.jsonl")}, &stdout, &stderr); code != 1 {
		t.Errorf("absent input: exit %d, want 1", code)
	}
	// An empty stream is an error, not an empty report.
	empty := filepath.Join(t.TempDir(), "empty.jsonl")
	if err := os.WriteFile(empty, nil, 0o644); err != nil {
		t.Fatal(err)
	}
	stderr.Reset()
	if code := run([]string{"-in", empty}, &stdout, &stderr); code != 1 {
		t.Errorf("empty input: exit %d, want 1", code)
	}
}
