package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"sdbp/internal/obs"
)

// fixtureTrace is a miniature sdbpd job trace: root → two stages, one
// with nested pipeline children.
func fixtureTrace(t *testing.T) string {
	t.Helper()
	t0 := time.Date(2026, 8, 8, 12, 0, 0, 0, time.UTC)
	doc := struct {
		Trace string           `json:"trace"`
		Addr  string           `json:"addr"`
		Spans []obs.SpanRecord `json:"spans"`
	}{
		Trace: "t1",
		Addr:  "abc123",
		Spans: []obs.SpanRecord{
			{TraceID: "t1", ID: "1", Name: "job", Start: t0, Duration: 100 * time.Millisecond,
				Attrs: map[string]string{"source": "miss"}},
			{TraceID: "t1", ID: "2", Parent: "1", Name: "stage:decode", Start: t0, Duration: 5 * time.Millisecond},
			{TraceID: "t1", ID: "3", Parent: "1", Name: "stage:execute", Start: t0.Add(5 * time.Millisecond), Duration: 95 * time.Millisecond},
			{TraceID: "t1", ID: "4", Parent: "3", Name: "queue_wait", Start: t0.Add(5 * time.Millisecond), Duration: 10 * time.Millisecond},
			{TraceID: "t1", ID: "5", Parent: "3", Name: "run", Start: t0.Add(15 * time.Millisecond), Duration: 80 * time.Millisecond},
		},
	}
	b, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "trace.json")
	if err := os.WriteFile(path, b, 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestWaterfallRenders(t *testing.T) {
	path := fixtureTrace(t)
	html := string(render(t, "-spans", path))
	for _, want := range []string{
		"job", "stage:decode", "stage:execute", "queue_wait", "run",
		"abc123", "source=miss",
	} {
		if !strings.Contains(html, want) {
			t.Errorf("waterfall missing %q", want)
		}
	}
	// The run bar spans 80% of the 100ms window, offset 15%.
	if !strings.Contains(html, `left: 15.00%; width: 80.00%`) {
		t.Error("run bar not positioned against the trace window")
	}
	// Self-contained: no scripts, no external references.
	for _, forbid := range []string{"<script", "http://", "https://"} {
		if strings.Contains(html, forbid) {
			t.Errorf("waterfall contains %q; must be self-contained", forbid)
		}
	}
}

// TestWaterfallDepth: children indent under their parents in tree
// order, not flat file order.
func TestWaterfallDepth(t *testing.T) {
	path := fixtureTrace(t)
	html := string(render(t, "-spans", path))
	if !strings.Contains(html, `class="row depth2"`) {
		t.Error("no depth-2 rows: pipeline children not nested under stage:execute")
	}
	// The root renders before its stages, stages before their children.
	job := strings.Index(html, ">job<")
	exec := strings.Index(html, "stage:execute")
	run := strings.Index(html, ">run<")
	if !(job < exec && exec < run) {
		t.Errorf("rows out of tree order: job@%d execute@%d run@%d", job, exec, run)
	}
}

func TestWaterfallDeterministic(t *testing.T) {
	path := fixtureTrace(t)
	if !bytes.Equal(render(t, "-spans", path), render(t, "-spans", path)) {
		t.Error("two renders of the same trace differ")
	}
}

func TestWaterfallBadInput(t *testing.T) {
	var stdout, stderr bytes.Buffer
	bad := filepath.Join(t.TempDir(), "bad.json")
	os.WriteFile(bad, []byte(`{"nope":true}`), 0o644)
	if code := run([]string{"-spans", bad, "-out", "-"}, &stdout, &stderr); code != 1 {
		t.Errorf("non-trace input: exit %d, want 1", code)
	}
	// -in and -spans are mutually exclusive.
	if code := run([]string{"-in", "a", "-spans", "b"}, &stdout, &stderr); code != 2 {
		t.Errorf("-in with -spans: exit %d, want 2", code)
	}
}
