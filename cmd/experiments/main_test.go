package main

import (
	"strings"
	"testing"
)

func TestParseOnlyAcceptsKnownKeys(t *testing.T) {
	want, err := parseOnly("fig4, fig5 ,table3")
	if err != nil {
		t.Fatal(err)
	}
	for _, k := range []string{"fig4", "fig5", "table3"} {
		if !want[k] {
			t.Errorf("%s not selected", k)
		}
	}
	if len(want) != 3 {
		t.Errorf("selected %d sections", len(want))
	}
}

func TestParseOnlyEmptyMeansEverything(t *testing.T) {
	want, err := parseOnly("")
	if err != nil || len(want) != 0 {
		t.Fatalf("want = %v, err = %v", want, err)
	}
}

func TestParseOnlyRejectsUnknownKey(t *testing.T) {
	for _, bad := range []string{"fig3", "fig 4", "fig4,nope", "Fig4"} {
		_, err := parseOnly(bad)
		if err == nil {
			t.Errorf("%q accepted", bad)
			continue
		}
		if !strings.Contains(err.Error(), "valid sections") {
			t.Errorf("%q error does not list the valid set: %v", bad, err)
		}
	}
}

func TestParseOnlyCoversEverySection(t *testing.T) {
	want, err := parseOnly(strings.Join(sections, ","))
	if err != nil {
		t.Fatal(err)
	}
	if len(want) != len(sections) {
		t.Errorf("selected %d of %d sections", len(want), len(sections))
	}
}
