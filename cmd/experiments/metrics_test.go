package main

// Manifest tests: the -metrics reconciliation and determinism
// acceptance checks for the observability layer. The full-suite cases
// re-run the whole scale-0.01 campaign and are skipped under -short;
// CI runs them in the golden/manifest step.

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"os"
	"path/filepath"
	"regexp"
	"runtime"
	"testing"

	"sdbp/internal/obs"
)

// runManifest drives the command in-process with -metrics and returns
// the decoded manifest plus its raw bytes.
func runManifest(t *testing.T, args ...string) (obs.Manifest, []byte) {
	t.Helper()
	path := filepath.Join(t.TempDir(), "manifest.json")
	var stdout, stderr bytes.Buffer
	code := run(append(args, "-quiet", "-metrics", path), &stdout, &stderr)
	if code != 0 {
		t.Fatalf("experiments %v exited %d\nstderr:\n%s", args, code, stderr.String())
	}
	b, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var m obs.Manifest
	if err := json.Unmarshal(b, &m); err != nil {
		t.Fatalf("manifest does not parse: %v", err)
	}
	return m, b
}

// checkReconciles asserts the manifest's internal invariants: cache
// counters balance at every level, the hierarchy filters correctly,
// and job accounting adds up.
func checkReconciles(t *testing.T, m obs.Manifest) {
	t.Helper()
	c := func(name string) uint64 { return m.Sim.Counters[obs.SimPrefix+name] }
	for _, level := range []string{"l1", "l2", "llc"} {
		hits, misses, acc := c(level+"_hits"), c(level+"_misses"), c(level+"_accesses")
		if hits+misses != acc {
			t.Errorf("%s: hits(%d)+misses(%d) != accesses(%d)", level, hits, misses, acc)
		}
		if acc == 0 {
			t.Errorf("%s recorded no accesses", level)
		}
	}
	// Demand filtering down the hierarchy: each level sees the misses
	// of the level above.
	if c("l2_accesses") != c("l1_misses") {
		t.Errorf("l2 accesses (%d) != l1 misses (%d)", c("l2_accesses"), c("l1_misses"))
	}
	if c("llc_accesses") != c("l2_misses") {
		t.Errorf("llc accesses (%d) != l2 misses (%d)", c("llc_accesses"), c("l2_misses"))
	}
	j := m.Sim.Jobs
	if j.Submitted != j.Succeeded+j.Failed+j.FromCheckpoint {
		t.Errorf("job accounting: %d submitted != %d+%d+%d", j.Submitted, j.Succeeded, j.Failed, j.FromCheckpoint)
	}
	if j.Failed != 0 {
		t.Errorf("%d jobs failed in a healthy run", j.Failed)
	}
	if h, ok := m.Timing.Histograms[obs.HistJobSeconds]; !ok || h.Count != j.Succeeded+j.Failed-j.Drained {
		t.Errorf("job-seconds count = %+v, want %d executed jobs", h, j.Succeeded+j.Failed-j.Drained)
	}
	// sim_runs + sim_multicore_runs live results each observed one
	// duration.
	if h := m.Timing.Histograms[obs.SimPrefix+"run_seconds"]; h.Count != c("runs")+c("multicore_runs") {
		t.Errorf("run_seconds count = %d, want %d runs", h.Count, c("runs")+c("multicore_runs"))
	}
}

// TestManifestSubsetReconciles is the fast path: two light sections,
// full invariant check, schema sanity.
func TestManifestSubsetReconciles(t *testing.T) {
	m, _ := runManifest(t, "-scale", goldenScale, "-only", "fig1,fig9")
	if m.Schema != obs.ManifestSchema || m.Tool != "experiments" {
		t.Errorf("schema/tool = %d/%q", m.Schema, m.Tool)
	}
	if m.Flags["scale"] != goldenScale || m.Flags["only"] != "fig1,fig9" {
		t.Errorf("flags not recorded: %v", m.Flags)
	}
	if m.Sim.Config["sections"] != "fig1,fig9" {
		t.Errorf("sections = %q, want fig1,fig9", m.Sim.Config["sections"])
	}
	checkReconciles(t, m)
	if len(m.Timing.Sections) != 2 {
		t.Errorf("section spans = %+v, want 2", m.Timing.Sections)
	}
	if m.Timing.Gauges[obs.SimPrefix+"accesses_per_sec"] <= 0 {
		t.Error("accesses_per_sec gauge missing")
	}
	if ipc := m.Timing.Gauges[obs.SimPrefix+"aggregate_ipc"]; ipc <= 0 || ipc > 4 {
		t.Errorf("aggregate_ipc = %v", ipc)
	}
}

// rawSim extracts the raw bytes of the manifest's "sim" member — the
// deterministic section — without re-encoding them.
func rawSim(t *testing.T, manifest []byte) []byte {
	t.Helper()
	var top map[string]json.RawMessage
	if err := json.Unmarshal(manifest, &top); err != nil {
		t.Fatal(err)
	}
	sim, ok := top["sim"]
	if !ok {
		t.Fatal("manifest has no sim section")
	}
	return sim
}

// TestManifestFullSuiteDeterministic is the acceptance test: a full
// scale-0.01 run's simulation section must reconcile exactly and be
// byte-identical across runs and across GOMAXPROCS=1 vs the default
// parallelism — worker scheduling must not leak into the deterministic
// counters.
func TestManifestFullSuiteDeterministic(t *testing.T) {
	if testing.Short() {
		t.Skip("two full suite runs take ~30s; run without -short (CI has a dedicated step)")
	}
	prev := runtime.GOMAXPROCS(8)
	m1, b1 := runManifest(t, "-scale", goldenScale)
	checkReconciles(t, m1)
	if m1.Sim.Jobs.FromCheckpoint != 0 {
		t.Errorf("fresh run restored %d jobs from checkpoint", m1.Sim.Jobs.FromCheckpoint)
	}

	runtime.GOMAXPROCS(1)
	m2, b2 := runManifest(t, "-scale", goldenScale)
	runtime.GOMAXPROCS(prev)
	checkReconciles(t, m2)

	s1, s2 := rawSim(t, b1), rawSim(t, b2)
	if !bytes.Equal(s1, s2) {
		t.Errorf("sim sections differ between GOMAXPROCS=8 and GOMAXPROCS=1:\n%s\n---\n%s",
			s1, s2)
	}
}

var pprofLine = regexp.MustCompile(`pprof: serving on (http://[^/]+)/`)

// TestPprofEndpoint starts the suite with -pprof on an ephemeral port
// and fetches the index from the address announced on stderr.
func TestPprofEndpoint(t *testing.T) {
	var stdout, stderr bytes.Buffer
	code := run([]string{"-only", "table1", "-quiet", "-pprof", "127.0.0.1:0"}, &stdout, &stderr)
	if code != 0 {
		t.Fatalf("exited %d\nstderr:\n%s", code, stderr.String())
	}
	m := pprofLine.FindSubmatch(stderr.Bytes())
	if m == nil {
		t.Fatalf("no pprof address announced:\n%s", stderr.String())
	}
	resp, err := http.Get(fmt.Sprintf("%s/debug/pprof/", m[1]))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, _ := io.ReadAll(resp.Body)
	if resp.StatusCode != http.StatusOK || !bytes.Contains(body, []byte("goroutine")) {
		t.Errorf("pprof index: status %d, body %.100s", resp.StatusCode, body)
	}
}
