package main

// Golden-output regression tests. One full run of the experiment suite
// at a small deterministic scale is split into its sections, and each
// section's bytes are compared against testdata/golden/<section>.txt.
// The goldens pin the observable behavior of the whole simulator
// (cache model, policies, predictors, timing model, renderers): any
// refactor or optimization that changes a single byte of any table or
// figure fails here.
//
// Regenerate after an intentional behavior change with
//
//	go test ./cmd/experiments -run TestGolden -update
//
// and review the diff like source code. See EXPERIMENTS.md for when a
// golden may legitimately change.

import (
	"bytes"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"testing"
)

var update = flag.Bool("update", false, "rewrite testdata/golden files from this run")

// goldenScale keeps the full suite to seconds while still driving every
// section through real simulations. Changing it changes every golden.
const goldenScale = "0.01"

// doneLine matches the per-section footer; its duration is the one
// nondeterministic part of the output.
var doneLine = regexp.MustCompile(`^\[([a-z0-9]+) done in [^\]]+\]$`)

// normalizeOutput strips wall-clock durations from section footers so
// the remaining bytes are a pure function of the simulated work.
func normalizeOutput(out string) string {
	lines := strings.Split(out, "\n")
	for i, ln := range lines {
		if m := doneLine.FindStringSubmatch(ln); m != nil {
			lines[i] = "[" + m[1] + " done]"
		}
	}
	return strings.Join(lines, "\n")
}

// splitSections cuts a normalized full-suite output into per-section
// chunks, keyed by section name. Each chunk ends with its "[name done]"
// footer and the blank separator line that follows it.
func splitSections(t *testing.T, out string) map[string]string {
	t.Helper()
	chunks := map[string]string{}
	var cur strings.Builder
	afterFooter := false
	for _, ln := range strings.SplitAfter(out, "\n") {
		if afterFooter {
			afterFooter = false
			if ln == "\n" {
				continue // the separator belongs to the finished chunk
			}
		}
		cur.WriteString(ln)
		trimmed := strings.TrimSuffix(ln, "\n")
		if strings.HasPrefix(trimmed, "[") && strings.HasSuffix(trimmed, " done]") {
			name := strings.TrimSuffix(strings.TrimPrefix(trimmed, "["), " done]")
			if _, dup := chunks[name]; dup {
				t.Fatalf("section %q rendered twice", name)
			}
			chunks[name] = cur.String() + "\n" // reattach the separator
			cur.Reset()
			afterFooter = true
		}
	}
	return chunks
}

func goldenPath(section string) string {
	return filepath.Join("testdata", "golden", section+".txt")
}

// runSuite drives the command in-process and returns its normalized
// stdout.
func runSuite(t *testing.T, args ...string) string {
	t.Helper()
	var stdout, stderr bytes.Buffer
	code := run(append(args, "-quiet"), &stdout, &stderr)
	if code != 0 {
		t.Fatalf("experiments %v exited %d\nstderr:\n%s", args, code, stderr.String())
	}
	return normalizeOutput(stdout.String())
}

// TestGoldenSections runs the whole suite once and byte-compares every
// section against its committed golden.
func TestGoldenSections(t *testing.T) {
	if testing.Short() {
		t.Skip("full golden run takes seconds; run without -short (CI has a dedicated step)")
	}
	out := runSuite(t, "-scale", goldenScale)
	chunks := splitSections(t, out)

	for _, section := range sections {
		section := section
		t.Run(section, func(t *testing.T) {
			got, ok := chunks[section]
			if !ok {
				t.Fatalf("section %q missing from suite output", section)
			}
			path := goldenPath(section)
			if *update {
				if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
					t.Fatal(err)
				}
				if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
					t.Fatal(err)
				}
				return
			}
			want, err := os.ReadFile(path)
			if err != nil {
				t.Fatalf("no golden for %q (run with -update to create): %v", section, err)
			}
			if got != string(want) {
				t.Errorf("section %q differs from %s\n%s", section, path, firstDiff(string(want), got))
			}
		})
	}

	// Nothing unaccounted for: every rendered section must be a known key.
	for name := range chunks {
		found := false
		for _, s := range sections {
			if s == name {
				found = true
				break
			}
		}
		if !found {
			t.Errorf("suite rendered unknown section %q; add it to sections and its golden", name)
		}
	}
}

// TestGoldenOnlySubset pins that -only produces byte-for-byte the same
// section output as the full run (the golden), so subsetting cannot
// drift from the campaign.
func TestGoldenOnlySubset(t *testing.T) {
	if testing.Short() {
		t.Skip("runs simulations; skipped with -short")
	}
	if *update {
		t.Skip("goldens are written by TestGoldenSections")
	}
	for _, section := range []string{"fig1", "table1", "victim"} {
		out := runSuite(t, "-scale", goldenScale, "-only", section)
		want, err := os.ReadFile(goldenPath(section))
		if err != nil {
			t.Fatalf("missing golden (run TestGoldenSections -update first): %v", err)
		}
		if out != string(want) {
			t.Errorf("-only %s differs from full-run golden\n%s", section, firstDiff(string(want), out))
		}
	}
}

// firstDiff renders the first differing line of two texts, with enough
// context to act on without a diff tool.
func firstDiff(want, got string) string {
	w := strings.Split(want, "\n")
	g := strings.Split(got, "\n")
	n := len(w)
	if len(g) < n {
		n = len(g)
	}
	for i := 0; i < n; i++ {
		if w[i] != g[i] {
			return fmt.Sprintf("first difference at line %d:\n golden: %q\n got:    %q", i+1, w[i], g[i])
		}
	}
	return fmt.Sprintf("line counts differ: golden %d lines, got %d lines", len(w), len(g))
}
