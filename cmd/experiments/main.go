// Command experiments regenerates every table and figure in the
// paper's evaluation section and prints them in order. The output is
// the data recorded in EXPERIMENTS.md.
//
//	experiments                       # everything at the default scale
//	experiments -scale 0.5            # faster, shorter streams
//	experiments -only fig4,fig5       # a subset
//	experiments -timeout 10m          # bound each simulation job
//	experiments -checkpoint run.ckpt  # journal finished cells
//	experiments -resume -checkpoint run.ckpt  # skip finished cells
//	experiments -metrics run.json     # write the run manifest + metrics
//	experiments -pprof localhost:6060 # live net/http/pprof endpoint
//	experiments -interval 100000 -trace-out probe.jsonl
//	                                  # interval telemetry + per-PC tables
//	experiments -policy "dbrb(base=random,pred=counting)" -bench 456.hmmer
//	                                  # ad-hoc run of one registry expression
//	experiments -spec myexp.json      # declarative experiment from a spec file
//
// The harness is fault tolerant: a panicking, hung or failed
// simulation job is isolated and reported, its table cell prints as
// ERR, every other cell still renders, and the process exits non-zero
// iff any job failed. With -checkpoint, completed cells are journaled
// as they finish; re-running with -resume recomputes only the missing
// (failed or interrupted) cells.
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"os"
	"sort"
	"strings"
	"sync"
	"time"

	"sdbp/internal/exp"
	"sdbp/internal/figures"
	"sdbp/internal/obs"
	"sdbp/internal/probe"
	"sdbp/internal/runner"
)

// sections is the canonical list of -only keys, in presentation order.
var sections = []string{
	"claim", "fig1", "fig4", "fig5", "fig6", "fig7", "fig8", "fig9", "fig10",
	"table1", "table2", "table3", "table4",
	"extensions", "prefetch", "victim", "sweeps",
}

// parseOnly validates a -only list against the known section keys. An
// unknown key is an error naming the valid set, instead of the old
// behavior of silently running nothing.
func parseOnly(s string) (map[string]bool, error) {
	want := map[string]bool{}
	if s == "" {
		return want, nil
	}
	valid := map[string]bool{}
	for _, k := range sections {
		valid[k] = true
	}
	for _, k := range strings.Split(s, ",") {
		k = strings.TrimSpace(k)
		if k == "" {
			continue
		}
		if !valid[k] {
			sorted := append([]string(nil), sections...)
			sort.Strings(sorted)
			return nil, fmt.Errorf("experiments: unknown section %q; valid sections: %s",
				k, strings.Join(sorted, ", "))
		}
		want[k] = true
	}
	return want, nil
}

// progressLogger returns an Env progress callback that logs job
// completions to stderr: failures immediately, successes throttled to
// one line per second, with a done/total count and ETA.
func progressLogger(stderr io.Writer) func(runner.Event) {
	var mu sync.Mutex
	var last time.Time
	return func(ev runner.Event) {
		mu.Lock()
		defer mu.Unlock()
		final := ev.Done == ev.Total
		if ev.Err == nil && !final && time.Since(last) < time.Second {
			return
		}
		last = time.Now()
		msg := fmt.Sprintf("progress: %d/%d %s", ev.Done, ev.Total, ev.Key)
		switch {
		case ev.Err != nil && ev.Err.TimedOut:
			msg += " TIMED OUT"
		case ev.Err != nil:
			msg += " FAILED: " + ev.Err.Err.Error()
		case ev.FromCheckpoint:
			msg += " (from checkpoint)"
		}
		if !final && ev.ETA > 0 {
			msg += fmt.Sprintf(" (ETA %s)", ev.ETA.Round(time.Second))
		}
		fmt.Fprintln(stderr, msg)
	}
}

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// run is the whole command with its streams and arguments made
// explicit, so tests (notably the golden-output harness) can drive it
// in-process and capture exactly the bytes a user would see.
func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("experiments", flag.ContinueOnError)
	fs.SetOutput(stderr)
	scale := fs.Float64("scale", 1.0, "stream length multiplier")
	only := fs.String("only", "", "comma-separated subset: "+strings.Join(sections, ","))
	timeout := fs.Duration("timeout", 0, "per-job timeout (0 = none)")
	retries := fs.Int("retries", 0, "per-job retry budget for transient failures")
	checkpoint := fs.String("checkpoint", "", "journal completed cells to this file")
	resume := fs.Bool("resume", false, "skip cells already in the checkpoint (default file experiments.ckpt)")
	quiet := fs.Bool("quiet", false, "suppress per-job progress logging")
	metrics := fs.String("metrics", "", "write the run manifest (config, counters, timing) to this JSON file")
	pprofAddr := fs.String("pprof", "", "serve net/http/pprof on this address (e.g. localhost:6060)")
	snapshot := fs.Duration("snapshot", 30*time.Second, "interval between campaign progress snapshots on stderr (0 = off)")
	interval := fs.Uint64("interval", 0, "interval telemetry granularity in retired instructions (0 = off)")
	traceOut := fs.String("trace-out", "", "write interval telemetry JSONL here (and Chrome trace events next to it); requires -interval")
	topk := fs.Int("topk", 0, fmt.Sprintf("per-PC attribution rows exported per run (0 = %d)", probe.DefaultTopK))
	sampled := fs.Bool("sampled", false, "run the sampled-simulation validation: replay the committed interval plans and compare estimates (with error bounds) to the committed full-run goldens")
	specFile := fs.String("spec", "", "ad-hoc mode: run one declarative experiment from this JSON spec file")
	policy := fs.String("policy", "", "ad-hoc mode: run this policy preset or registry expression against LRU")
	bench := fs.String("bench", "", "with -policy: comma-separated benchmarks, 'subset' (the default), or 'all'")
	mix := fs.String("mix", "", "with -policy: comma-separated quad-core mix names or 'all'")
	logLevel := fs.String("log-level", "info", "minimum structured log level: debug, info, warn, or error")
	if err := fs.Parse(args); err != nil {
		return 2
	}

	level, err := obs.ParseLevel(*logLevel)
	if err != nil {
		fmt.Fprintln(stderr, "experiments:", err)
		return 2
	}
	obs.SetDefault(obs.NewLogger(stderr, level))

	want, err := parseOnly(*only)
	if err != nil {
		fmt.Fprintln(stderr, err)
		return 2
	}
	if *sampled {
		// The committed plans pin their own scale and workload set; the
		// mode runs exactly one section.
		switch {
		case *only != "":
			fmt.Fprintln(stderr, "experiments: -sampled cannot be combined with -only")
			return 2
		case *specFile != "" || *policy != "":
			fmt.Fprintln(stderr, "experiments: -sampled cannot be combined with -spec/-policy")
			return 2
		case *interval > 0:
			fmt.Fprintln(stderr, "experiments: -sampled cannot be combined with -interval telemetry")
			return 2
		}
		want = map[string]bool{"sampled": true}
	}
	spec, err := adhocSpec(*specFile, *policy, *bench, *mix, *only, *interval, *scale)
	if err != nil {
		fmt.Fprintln(stderr, err)
		return 2
	}
	var resolved *exp.Resolved
	if spec != nil {
		if resolved, err = spec.Resolve(); err != nil {
			fmt.Fprintln(stderr, "experiments:", err)
			return 2
		}
		// Ad-hoc mode runs exactly one section.
		want = map[string]bool{"adhoc": true}
	}
	if *interval > 0 && *traceOut == "" {
		fmt.Fprintln(stderr, "experiments: -interval requires -trace-out FILE to receive the telemetry")
		return 2
	}
	if *traceOut != "" && *interval == 0 {
		fmt.Fprintln(stderr, "experiments: -trace-out requires -interval N to enable telemetry")
		return 2
	}

	// SIGINT and SIGTERM cancel the campaign cleanly (shared drain
	// helper with cmd/sdbpd): in-flight jobs finish or time out, queued
	// jobs drain, partial tables render, and with -checkpoint every
	// finished cell is already journaled for -resume — so containerized
	// runs stopped with SIGTERM checkpoint as cleanly as a ^C.
	ctx, stop := runner.SignalContext(context.Background())
	defer stop()

	started := time.Now()
	reg := obs.NewRegistry()
	env := figures.DefaultEnv()
	env.Ctx = ctx
	env.Timeout = *timeout
	env.Retries = *retries
	env.Obs = reg
	if !*quiet {
		env.Progress = progressLogger(stderr)
	}
	if *pprofAddr != "" {
		if err := startPprof(*pprofAddr, stderr); err != nil {
			fmt.Fprintln(stderr, err)
			return 1
		}
	}
	if *snapshot > 0 && !*quiet {
		stop := startSnapshots(reg, *snapshot, stderr)
		defer stop()
	}
	if *resume && *checkpoint == "" {
		*checkpoint = "experiments.ckpt"
	}
	if *checkpoint != "" {
		ck, err := runner.OpenCheckpoint(*checkpoint, *resume)
		if err != nil {
			fmt.Fprintln(stderr, err)
			return 1
		}
		defer ck.Close()
		env.Checkpoint = ck
		if *resume {
			fmt.Fprintf(stderr, "resume: %d checkpointed results loaded from %s\n", ck.Len(), *checkpoint)
		}
	}

	run := func(key string) bool { return len(want) == 0 || want[key] }
	var ranSections []string
	section := func(name string, f func()) {
		if !run(name) || ctx.Err() != nil {
			return
		}
		sp := reg.StartSpan("section:" + name)
		start := time.Now()
		f()
		sp.End()
		ranSections = append(ranSections, name)
		fmt.Fprintf(stdout, "[%s done in %v]\n\n", name, time.Since(start).Round(time.Millisecond))
	}

	specEcho := ""
	if resolved != nil {
		specEcho = resolved.String()
		section("adhoc", func() { fmt.Fprint(stdout, figures.RunAdhocEnv(env, resolved).Render()) })
	}

	var sampledVal *figures.SampledValidation
	sampledFailed := false
	if *sampled {
		section("sampled", func() {
			v, ok := runSampled(env, stdout, stderr)
			sampledVal, sampledFailed = v, !ok
		})
	}

	section("table1", func() { fmt.Fprint(stdout, figures.RenderTable1()) })
	section("table2", func() { fmt.Fprint(stdout, figures.RenderTable2()) })

	var sc *figures.SingleCore
	needSC := run("fig4") || run("fig5") || run("fig9") || run("claim")
	if needSC && ctx.Err() == nil {
		sc = figures.RunSingleCoreEnv(env, *scale)
	}
	section("claim", func() { fmt.Fprint(stdout, sc.RenderClaim()) })
	section("fig1", func() { fmt.Fprint(stdout, figures.RunFig1Env(env, *scale).Render()) })
	section("fig4", func() {
		fmt.Fprint(stdout, sc.RenderFig4())
		labels, vals := sc.Fig4Summary()
		fmt.Fprint(stdout, figures.SummaryChart("\nFigure 4 summary: amean misses normalized to LRU ('|' = LRU)", labels, vals))
	})
	section("fig5", func() {
		fmt.Fprint(stdout, sc.RenderFig5())
		labels, vals := sc.Fig5Summary()
		fmt.Fprint(stdout, figures.SummaryChart("\nFigure 5 summary: gmean speedup over LRU ('|' = LRU)", labels, vals))
	})
	section("fig6", func() { fmt.Fprint(stdout, figures.RunAblationEnv(env, *scale).Render()) })

	var rb *figures.RandomBaseline
	if (run("fig7") || run("fig8")) && ctx.Err() == nil {
		rb = figures.RunRandomBaselineEnv(env, *scale)
	}
	section("fig7", func() { fmt.Fprint(stdout, rb.RenderFig7()) })
	section("fig8", func() { fmt.Fprint(stdout, rb.RenderFig8()) })
	section("fig9", func() { fmt.Fprint(stdout, sc.RenderFig9()) })

	section("fig10", func() {
		mc := figures.RunMulticoreFigureEnv(env, figures.MulticorePolicies(), *scale)
		fmt.Fprint(stdout, mc.Render("Figure 10(a): normalized weighted speedup, 8MB shared LLC, LRU default"))
		fmt.Fprintln(stdout)
		mcr := figures.RunMulticoreFigureEnv(env, figures.RandomPolicies(), *scale)
		fmt.Fprint(stdout, mcr.Render("Figure 10(b): normalized weighted speedup, 8MB shared LLC, random default"))
	})

	section("table3", func() { fmt.Fprint(stdout, figures.RunTable3Env(env, *scale).Render()) })
	section("table4", func() { fmt.Fprint(stdout, figures.RunTable4Env(env, *scale).Render()) })

	section("extensions", func() { fmt.Fprint(stdout, figures.RunExtensionsEnv(env, *scale).Render()) })
	section("prefetch", func() { fmt.Fprint(stdout, figures.RunPrefetchStudyEnv(env, *scale).Render()) })
	section("victim", func() { fmt.Fprint(stdout, figures.RunVictimStudyEnv(env, *scale).Render()) })
	section("sweeps", func() {
		sets := []int{8, 16, 32, 64, 128}
		fmt.Fprint(stdout, figures.RenderSweep(
			"Sampler set count sweep (paper SIII-A: 32 is the trade-off point)",
			"sampler sets", figures.SamplerSetsSweepEnv(env, *scale, sets), sets))
		fmt.Fprintln(stdout)
		thrs := []int{2, 4, 6, 8, 9}
		fmt.Fprint(stdout, figures.RenderSweep(
			"Confidence threshold sweep (paper SIII-E: 8 gives the best accuracy)",
			"threshold", figures.ThresholdSweepEnv(env, *scale, thrs), thrs))
	})

	var probeCfg *probe.Config
	probeFailed := false
	if *interval > 0 && ctx.Err() == nil {
		probeCfg = &probe.Config{Interval: *interval, TopK: *topk}
		sp := reg.StartSpan("section:probe")
		if err := runIntrospection(env, reg, *scale, *probeCfg, *traceOut, stderr, *quiet); err != nil {
			fmt.Fprintln(stderr, err)
			probeFailed = true
		}
		sp.End()
	}

	code := summarize(env, ctx, *checkpoint, stderr)
	if (probeFailed || sampledFailed) && code == 0 {
		code = 1
	}
	if *metrics != "" {
		// Written even after failures or an interrupt: a partial
		// manifest is still the run's provenance record.
		if err := writeManifest(*metrics, reg, fs, *scale, *only, specEcho, ranSections, started, probeCfg, sampledVal); err != nil {
			fmt.Fprintf(stderr, "experiments: writing manifest: %v\n", err)
			if code == 0 {
				code = 1
			}
		} else if !*quiet {
			fmt.Fprintf(stderr, "metrics: manifest written to %s\n", *metrics)
		}
	}
	return code
}

// summarize prints the end-of-run failure report and picks the exit
// status: 0 only when every job completed and the run was not
// interrupted.
func summarize(env *figures.Env, ctx context.Context, checkpoint string, stderr io.Writer) int {
	failures := env.Failures()
	if len(failures) == 0 && ctx.Err() == nil {
		return 0
	}
	if ctx.Err() != nil {
		fmt.Fprintln(stderr, "experiments: interrupted; partial tables rendered above")
	}
	if len(failures) > 0 {
		fmt.Fprintf(stderr, "\nexperiments: %d job(s) failed; their cells are marked ERR above\n", len(failures))
		for _, f := range failures {
			fmt.Fprintf(stderr, "  %s: %v (attempt %d, ran %s)\n",
				f.Key, f.Err, f.Attempts, f.Duration.Round(time.Millisecond))
		}
	}
	switch {
	case checkpoint != "":
		fmt.Fprintf(stderr, "re-run with -resume -checkpoint %s to recompute only the missing cells\n", checkpoint)
	default:
		fmt.Fprintln(stderr, "run with -checkpoint FILE to make campaigns resumable with -resume")
	}
	return 1
}
