// Command experiments regenerates every table and figure in the
// paper's evaluation section and prints them in order. The output is
// the data recorded in EXPERIMENTS.md.
//
//	experiments                 # everything at the default scale
//	experiments -scale 0.5      # faster, shorter streams
//	experiments -only fig4,fig5 # a subset
package main

import (
	"flag"
	"fmt"
	"strings"
	"time"

	"sdbp/internal/figures"
)

func main() {
	scale := flag.Float64("scale", 1.0, "stream length multiplier")
	only := flag.String("only", "", "comma-separated subset: claim,fig1,fig4,fig5,fig6,fig7,fig8,fig9,fig10,table1,table2,table3,table4,extensions,prefetch,victim,sweeps")
	flag.Parse()

	want := map[string]bool{}
	if *only != "" {
		for _, k := range strings.Split(*only, ",") {
			want[strings.TrimSpace(k)] = true
		}
	}
	run := func(key string) bool { return len(want) == 0 || want[key] }
	section := func(name string, f func()) {
		if !run(name) {
			return
		}
		start := time.Now()
		f()
		fmt.Printf("[%s done in %v]\n\n", name, time.Since(start).Round(time.Millisecond))
	}

	section("table1", func() { fmt.Print(figures.RenderTable1()) })
	section("table2", func() { fmt.Print(figures.RenderTable2()) })

	var sc *figures.SingleCore
	needSC := run("fig4") || run("fig5") || run("fig9") || run("claim")
	if needSC {
		sc = figures.RunSingleCore(*scale)
	}
	section("claim", func() { fmt.Print(sc.RenderClaim()) })
	section("fig1", func() { fmt.Print(figures.RunFig1(*scale).Render()) })
	section("fig4", func() {
		fmt.Print(sc.RenderFig4())
		labels, vals := sc.Fig4Summary()
		fmt.Print(figures.SummaryChart("\nFigure 4 summary: amean misses normalized to LRU ('|' = LRU)", labels, vals))
	})
	section("fig5", func() {
		fmt.Print(sc.RenderFig5())
		labels, vals := sc.Fig5Summary()
		fmt.Print(figures.SummaryChart("\nFigure 5 summary: gmean speedup over LRU ('|' = LRU)", labels, vals))
	})
	section("fig6", func() { fmt.Print(figures.RunAblation(*scale).Render()) })

	var rb *figures.RandomBaseline
	if run("fig7") || run("fig8") {
		rb = figures.RunRandomBaseline(*scale)
	}
	section("fig7", func() { fmt.Print(rb.RenderFig7()) })
	section("fig8", func() { fmt.Print(rb.RenderFig8()) })
	section("fig9", func() { fmt.Print(sc.RenderFig9()) })

	section("fig10", func() {
		mc := figures.RunMulticoreFigure(figures.MulticorePolicies(), *scale)
		fmt.Print(mc.Render("Figure 10(a): normalized weighted speedup, 8MB shared LLC, LRU default"))
		fmt.Println()
		mcr := figures.RunMulticoreFigure(figures.RandomPolicies(), *scale)
		fmt.Print(mcr.Render("Figure 10(b): normalized weighted speedup, 8MB shared LLC, random default"))
	})

	section("table3", func() { fmt.Print(figures.RunTable3(*scale).Render()) })
	section("table4", func() { fmt.Print(figures.RunTable4(*scale).Render()) })

	section("extensions", func() { fmt.Print(figures.RunExtensions(*scale).Render()) })
	section("prefetch", func() { fmt.Print(figures.RunPrefetchStudy(*scale).Render()) })
	section("victim", func() { fmt.Print(figures.RunVictimStudy(*scale).Render()) })
	section("sweeps", func() {
		sets := []int{8, 16, 32, 64, 128}
		fmt.Print(figures.RenderSweep(
			"Sampler set count sweep (paper SIII-A: 32 is the trade-off point)",
			"sampler sets", figures.SamplerSetsSweep(*scale, sets), sets))
		fmt.Println()
		thrs := []int{2, 4, 6, 8, 9}
		fmt.Print(figures.RenderSweep(
			"Confidence threshold sweep (paper SIII-E: 8 gives the best accuracy)",
			"threshold", figures.ThresholdSweep(*scale, thrs), thrs))
	})
}
