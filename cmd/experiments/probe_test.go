package main

// Telemetry-export tests: the -interval/-trace-out/-topk acceptance
// checks. The determinism case runs the probe pass twice at scale 0.01
// and byte-compares both export files across GOMAXPROCS settings.

import (
	"bytes"
	"os"
	"path/filepath"
	"runtime"
	"strings"
	"testing"

	"sdbp/internal/obs"
	"sdbp/internal/probe"
	"sdbp/internal/workloads"
)

// TestProbeFlagValidation pins the flag contract: -interval and
// -trace-out only make sense together, and half a pair is a usage
// error (exit 2), not a silent no-op.
func TestProbeFlagValidation(t *testing.T) {
	cases := []struct {
		name string
		args []string
		want string
	}{
		{"interval without trace-out", []string{"-only", "table1", "-interval", "1000"}, "-interval requires -trace-out"},
		{"trace-out without interval", []string{"-only", "table1", "-trace-out", "x.jsonl"}, "-trace-out requires -interval"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			var stdout, stderr bytes.Buffer
			if code := run(tc.args, &stdout, &stderr); code != 2 {
				t.Errorf("exit %d, want 2", code)
			}
			if !strings.Contains(stderr.String(), tc.want) {
				t.Errorf("stderr %q does not mention %q", stderr.String(), tc.want)
			}
		})
	}
}

// runProbeExport drives the command with telemetry enabled and returns
// the raw JSONL and trace-event bytes.
func runProbeExport(t *testing.T, extra ...string) (jsonl, trace []byte) {
	t.Helper()
	out := filepath.Join(t.TempDir(), "probe.jsonl")
	args := append([]string{
		"-only", "table1", "-quiet", "-scale", goldenScale,
		"-interval", "20000", "-topk", "5", "-trace-out", out,
	}, extra...)
	var stdout, stderr bytes.Buffer
	if code := run(args, &stdout, &stderr); code != 0 {
		t.Fatalf("experiments %v exited %d\nstderr:\n%s", args, code, stderr.String())
	}
	jsonl, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	trace, err = os.ReadFile(tracePath(out))
	if err != nil {
		t.Fatal(err)
	}
	return jsonl, trace
}

// TestProbeExportDeterministic is the acceptance test: the exported
// interval series must be byte-identical across GOMAXPROCS=8 and
// GOMAXPROCS=1 — job scheduling must not reorder or perturb the
// telemetry.
func TestProbeExportDeterministic(t *testing.T) {
	prev := runtime.GOMAXPROCS(8)
	j1, t1 := runProbeExport(t)
	runtime.GOMAXPROCS(1)
	j2, t2 := runProbeExport(t)
	runtime.GOMAXPROCS(prev)

	if !bytes.Equal(j1, j2) {
		t.Error("interval JSONL differs between GOMAXPROCS=8 and GOMAXPROCS=1")
	}
	if !bytes.Equal(t1, t2) {
		t.Error("trace events differ between GOMAXPROCS=8 and GOMAXPROCS=1")
	}

	// The JSONL must round-trip: one series per subset benchmark, each
	// internally reconciled (PC sums == aggregate accuracy).
	series, err := probe.ReadJSONL(bytes.NewReader(j1))
	if err != nil {
		t.Fatalf("exported JSONL does not parse: %v", err)
	}
	if want := len(workloads.Subset()); len(series) != want {
		t.Fatalf("%d series, want %d (one per subset benchmark)", len(series), want)
	}
	for i := range series {
		s := &series[i]
		pred, pos, fp, _ := s.PCTotals()
		if pred != s.Run.Predictions || pos != s.Run.Positives || fp != s.Run.FalsePositives {
			t.Errorf("%s: per-PC sums (%d,%d,%d) != run accuracy (%d,%d,%d)",
				s.Run.Benchmark, pred, pos, fp, s.Run.Predictions, s.Run.Positives, s.Run.FalsePositives)
		}
	}
}

// TestProbeManifestEntries checks the run manifest records the probe
// pass: its config in the deterministic section and its aggregates as
// sim_probe_* counters.
func TestProbeManifestEntries(t *testing.T) {
	out := filepath.Join(t.TempDir(), "probe.jsonl")
	m, _ := runManifest(t, "-only", "table1", "-scale", goldenScale,
		"-interval", "20000", "-topk", "5", "-trace-out", out)
	if got := m.Sim.Config["probe_interval"]; got != "20000" {
		t.Errorf("probe_interval = %q, want 20000", got)
	}
	if got := m.Sim.Config["probe_topk"]; got != "5" {
		t.Errorf("probe_topk = %q, want 5", got)
	}
	c := func(name string) uint64 { return m.Sim.Counters[obs.SimPrefix+name] }
	if c("probe_runs") != uint64(len(workloads.Subset())) {
		t.Errorf("sim_probe_runs = %d, want %d", c("probe_runs"), len(workloads.Subset()))
	}
	if c("probe_intervals") == 0 || c("probe_pc_rows") == 0 {
		t.Errorf("probe aggregates empty: intervals=%d pc_rows=%d",
			c("probe_intervals"), c("probe_pc_rows"))
	}

	// Without -interval, the manifest must not mention the probe pass.
	m2, _ := runManifest(t, "-only", "table1", "-scale", goldenScale)
	if _, ok := m2.Sim.Config["probe_interval"]; ok {
		t.Error("probe_interval present in a run without -interval")
	}
	if _, ok := m2.Sim.Counters[obs.SimPrefix+"probe_runs"]; ok {
		t.Error("sim_probe_runs present in a run without -interval")
	}
}
