package main

// Sampled-simulation accuracy and cost regression tests. The committed
// plan set and full-run goldens under testdata/sampled/ pin the
// validated configuration; TestSampledValidation replays the plans and
// fails if any estimate misses its own reported error bound, or if a
// baseline-policy estimate drifts more than 5% from the full-run
// truth. Regenerate after an
// intentional selector or simulator change with
//
//	go test ./cmd/experiments -run TestSampledValidation -update-sampled
//
// which re-pilots, re-runs the full-run truth, and refuses to write a
// plan set whose estimates violate their own bounds.

import (
	"bytes"
	"encoding/json"
	"flag"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"sdbp/internal/figures"
)

var updateSampled = flag.Bool("update-sampled", false, "rewrite testdata/sampled/{plans,golden}.json from fresh pilots and full runs")

// relErrBound is the accuracy the committed configuration must deliver
// on IPC and miss rate, estimate vs full run, for every cell of the
// baseline (recency) policies. Feedback-coupled policies — the pilot's
// dead-block predictor and SHiP's signature history table — are exempt
// from the 5% check: their residual state bias under approximate
// warming is workload-specific and can exceed it. They are still
// required to land within their reported pilot-calibrated bounds, so
// their error is measured and surfaced, never hidden.
const relErrBound = 0.05

func sampledDataPath(name string) string {
	return filepath.Join("testdata", "sampled", name)
}

func writeSampledJSON(t *testing.T, name string, v any) {
	t.Helper()
	b, err := json.MarshalIndent(v, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	b = append(b, '\n')
	if err := os.MkdirAll(filepath.Dir(sampledDataPath(name)), 0o755); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(sampledDataPath(name), b, 0o644); err != nil {
		t.Fatal(err)
	}
}

// checkSampled asserts the validated accuracy contract on a completed
// pass: every cell present and inside its own reported
// (pilot-calibrated) bound, and every baseline-policy cell within
// relErrBound of the full-run truth.
func checkSampled(t *testing.T, v *figures.SampledValidation, golden *figures.SampledGolden) {
	t.Helper()
	wantCells := len(v.Plans.Plans) * len(v.Policies)
	if len(v.Cells) != wantCells {
		t.Fatalf("validation completed %d cells, want %d", len(v.Cells), wantCells)
	}
	for _, c := range v.Check(golden) {
		if !c.WithinIPC {
			t.Errorf("%s/%s: IPC %.4f±%.4f misses full-run %.4f",
				c.Bench, c.Policy, c.Estimate.IPC, c.BoundIPC, c.Golden.IPC)
		}
		if !c.WithinMiss {
			t.Errorf("%s/%s: miss rate %.4f±%.4f misses full-run %.4f",
				c.Bench, c.Policy, c.Estimate.MissRate, c.BoundMiss, c.Golden.MissRate)
		}
		if figures.FeedbackCoupled(c.Policy, v.Plans.Pilot) {
			continue
		}
		if c.RelIPC > relErrBound {
			t.Errorf("%s/%s: IPC relative error %.2f%% exceeds %.0f%%",
				c.Bench, c.Policy, 100*c.RelIPC, 100*relErrBound)
		}
		if c.RelMiss > relErrBound {
			t.Errorf("%s/%s: miss-rate relative error %.2f%% exceeds %.0f%%",
				c.Bench, c.Policy, 100*c.RelMiss, 100*relErrBound)
		}
	}
}

// TestSampledValidation replays the committed plans and enforces the
// accuracy contract against the committed goldens. With
// -update-sampled it regenerates both files instead, verifying the
// contract before writing.
func TestSampledValidation(t *testing.T) {
	if testing.Short() {
		t.Skip("runs the pinned validation set; skipped with -short (CI has a dedicated step)")
	}
	env := figures.DefaultEnv()
	if *updateSampled {
		plans := figures.BuildSampledPlansEnv(env,
			figures.SampledValidationBenches, figures.SampledValidationScale,
			figures.SampledValidationInterval, figures.SampledValidationClusters)
		if len(plans.Plans) != len(figures.SampledValidationBenches) {
			t.Fatalf("pilots selected %d plans for %d benches: %v",
				len(plans.Plans), len(figures.SampledValidationBenches), env.Failures())
		}
		golden := figures.RunSampledGoldenEnv(env,
			figures.SampledValidationBenches, figures.SampledValidationPolicies,
			figures.SampledValidationScale)
		v := figures.RunSampledValidationEnv(env, plans, figures.SampledValidationPolicies)
		checkSampled(t, v, golden)
		if t.Failed() {
			t.Fatal("refusing to write sampled testdata that violates the accuracy contract")
		}
		writeSampledJSON(t, "plans.json", plans)
		writeSampledJSON(t, "golden.json", golden)
		return
	}

	plans, golden, err := loadSampledData()
	if err != nil {
		t.Fatalf("%v (run with -update-sampled to create)", err)
	}
	if plans.Scale != figures.SampledValidationScale ||
		plans.Interval != figures.SampledValidationInterval ||
		plans.Clusters != figures.SampledValidationClusters {
		t.Fatalf("committed plans were built with config %g/%d/%d, pinned config is %g/%d/%d; regenerate with -update-sampled",
			plans.Scale, plans.Interval, plans.Clusters,
			figures.SampledValidationScale, figures.SampledValidationInterval, figures.SampledValidationClusters)
	}
	v := figures.RunSampledValidationEnv(env, plans, figures.SampledValidationPolicies)
	checkSampled(t, v, golden)
}

// TestSampledWallTime enforces the cost half of the contract: replaying
// the committed plans across the whole validation set must cost at
// most 25% of the full-run wall time for the same cells. Both passes
// run single-worker, so the ratio compares serial simulation cost and
// does not depend on the host's core count; the sampled pass gets a
// second attempt because the simulated work is deterministic and only
// scheduling noise can push a run over.
func TestSampledWallTime(t *testing.T) {
	if testing.Short() {
		t.Skip("times full runs; skipped with -short (CI has a dedicated step)")
	}
	plans, _, err := loadSampledData()
	if err != nil {
		t.Fatalf("%v (run TestSampledValidation -update-sampled first)", err)
	}

	fullStart := time.Now()
	figures.RunSampledGoldenEnv(&figures.Env{Workers: 1},
		plans.Benches(), figures.SampledValidationPolicies, plans.Scale)
	fullWall := time.Since(fullStart)

	var ratio float64
	for attempt := 0; attempt < 2; attempt++ {
		v := figures.RunSampledValidationEnv(&figures.Env{Workers: 1}, plans, figures.SampledValidationPolicies)
		if len(v.Cells) != len(plans.Plans)*len(figures.SampledValidationPolicies) {
			t.Fatalf("validation pass incomplete: %d cells", len(v.Cells))
		}
		ratio = float64(v.Wall) / float64(fullWall)
		t.Logf("sampled %v vs full %v (%.1f%% of full-run wall, mean sim fraction %.1f%%)",
			v.Wall.Round(time.Millisecond), fullWall.Round(time.Millisecond),
			100*ratio, 100*v.SimFraction())
		if ratio <= 0.25 {
			break
		}
	}
	if ratio > 0.25 {
		t.Errorf("sampled pass took %.1f%% of full-run wall, want <= 25%%", 100*ratio)
	}
}

// TestSampledFlagConflicts pins the CLI contract: -sampled is its own
// mode and cannot combine with section selection, ad-hoc specs or
// interval telemetry.
func TestSampledFlagConflicts(t *testing.T) {
	for _, args := range [][]string{
		{"-sampled", "-only", "fig1"},
		{"-sampled", "-policy", "lru"},
		{"-sampled", "-spec", "x.json"},
		{"-sampled", "-interval", "1000", "-trace-out", "x.jsonl"},
	} {
		var stdout, stderr bytes.Buffer
		if code := run(args, &stdout, &stderr); code != 2 {
			t.Errorf("run(%v) = %d, want 2 (usage error); stderr: %s", args, code, stderr.String())
		}
	}
}

// TestSampledCLI drives the real -sampled mode end to end: exit 0, the
// comparison table on stdout, and the selector configuration, chosen
// intervals with weights, and error bounds recorded in the -metrics
// run manifest.
func TestSampledCLI(t *testing.T) {
	if testing.Short() {
		t.Skip("runs the validation set; skipped with -short")
	}
	manifest := filepath.Join(t.TempDir(), "run.json")
	var stdout, stderr bytes.Buffer
	code := run([]string{"-sampled", "-quiet", "-metrics", manifest}, &stdout, &stderr)
	if code != 0 {
		t.Fatalf("experiments -sampled exited %d\nstderr:\n%s", code, stderr.String())
	}
	out := stdout.String()
	for _, want := range []string{
		"Sampled simulation: estimates vs committed full-run goldens",
		"cells within their reported error bounds",
		"[sampled done in",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("stdout missing %q:\n%s", want, out)
		}
	}
	if strings.Contains(out, "VIOLATION") {
		t.Errorf("validation table reports violations:\n%s", out)
	}

	data, err := os.ReadFile(manifest)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		`"sampled_interval"`, `"sampled_clusters"`, `"sampled_pilot"`,
		`"sampled_plan_429.mcf"`, `\"weight\"`,
		`"sampled_bound_456.hmmer_LRU"`,
	} {
		if !bytes.Contains(data, []byte(want)) {
			t.Errorf("manifest missing %s", want)
		}
	}
}
