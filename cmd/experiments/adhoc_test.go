package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"sdbp/internal/dbrb"
	"sdbp/internal/obs"
	"sdbp/internal/policy"
	"sdbp/internal/predictor"
	"sdbp/internal/sim"
	"sdbp/internal/workloads"
)

// TestAdhocReproducesFigureCell is the acceptance check for the
// registry refactor: an ad-hoc -policy run of the paper's sampler
// expression must print exactly the Figure 4 (norm miss) and Figure 5
// (speedup) cells that hand-built simulations produce. Scale 0.05 is
// the smallest stream where the cells are away from 1.000 on some
// metric while staying fast.
func TestAdhocReproducesFigureCell(t *testing.T) {
	const bench, scale = "456.hmmer", 0.05
	w, err := workloads.ByName(bench)
	if err != nil {
		t.Fatal(err)
	}
	lru := sim.RunSingle(w, policy.NewLRU(), sim.SingleOptions{Scale: scale})
	smp := sim.RunSingle(w,
		dbrb.New(policy.NewLRU(), predictor.NewSampler(predictor.DefaultSamplerConfig())),
		sim.SingleOptions{Scale: scale})

	var stdout, stderr bytes.Buffer
	code := run([]string{
		"-policy", "dbrb(base=lru,pred=sampler)",
		"-bench", bench, "-scale", fmt.Sprintf("%g", scale), "-quiet",
	}, &stdout, &stderr)
	if code != 0 {
		t.Fatalf("exit %d\nstderr: %s", code, stderr.String())
	}
	out := stdout.String()

	var row string
	for _, line := range strings.Split(out, "\n") {
		if strings.HasPrefix(strings.TrimSpace(line), bench) {
			row = line
			break
		}
	}
	if row == "" {
		t.Fatalf("no row for %s in output:\n%s", bench, out)
	}
	for _, cell := range []string{
		fmt.Sprintf("%.3f", lru.MPKI),
		fmt.Sprintf("%.3f", smp.MPKI),
		fmt.Sprintf("%.3f", smp.IPC),
		fmt.Sprintf("%.3f", smp.MPKI/lru.MPKI), // the Figure 4 cell
		fmt.Sprintf("%.3f", smp.IPC/lru.IPC),   // the Figure 5 cell
	} {
		if !strings.Contains(row, cell) {
			t.Errorf("row %q missing cell %s", row, cell)
		}
	}
	wantSpec := "policy=dbrb(base=lru,pred=sampler);workloads=456.hmmer;cores=1;llc=llc(mb=2,ways=16);scale=0.05"
	if !strings.Contains(out, "spec: "+wantSpec) {
		t.Errorf("output missing canonical spec echo %q:\n%s", wantSpec, out)
	}
}

// TestAdhocSpecFileAndManifestEcho runs a JSON spec file and checks
// the resolved spec lands in the manifest's deterministic config.
func TestAdhocSpecFileAndManifestEcho(t *testing.T) {
	dir := t.TempDir()
	specPath := filepath.Join(dir, "spec.json")
	manifestPath := filepath.Join(dir, "manifest.json")
	spec := `{"policy": "Random CDBP", "workloads": ["470.lbm"], "scale": 0.02}`
	if err := os.WriteFile(specPath, []byte(spec), 0o644); err != nil {
		t.Fatal(err)
	}

	var stdout, stderr bytes.Buffer
	code := run([]string{"-spec", specPath, "-quiet", "-metrics", manifestPath}, &stdout, &stderr)
	if code != 0 {
		t.Fatalf("exit %d\nstderr: %s", code, stderr.String())
	}
	wantSpec := "policy=dbrb(base=random,pred=counting);workloads=470.lbm;cores=1;llc=llc(mb=2,ways=16);scale=0.02"
	if !strings.Contains(stdout.String(), "spec: "+wantSpec) {
		t.Errorf("output missing spec echo:\n%s", stdout.String())
	}

	data, err := os.ReadFile(manifestPath)
	if err != nil {
		t.Fatal(err)
	}
	var m obs.Manifest
	if err := json.Unmarshal(data, &m); err != nil {
		t.Fatal(err)
	}
	if got := m.Sim.Config["spec"]; got != wantSpec {
		t.Errorf("manifest spec = %q, want %q", got, wantSpec)
	}
	if got := m.Sim.Config["sections"]; got != "adhoc" {
		t.Errorf("manifest sections = %q, want adhoc", got)
	}
}

// TestAdhocSpecFileScalePrecedence: a file with no scale field takes
// the -scale flag.
func TestAdhocSpecFileScalePrecedence(t *testing.T) {
	dir := t.TempDir()
	specPath := filepath.Join(dir, "spec.json")
	if err := os.WriteFile(specPath, []byte(`{"policy": "lru", "workloads": ["481.wrf"]}`), 0o644); err != nil {
		t.Fatal(err)
	}
	var stdout, stderr bytes.Buffer
	if code := run([]string{"-spec", specPath, "-scale", "0.01", "-quiet"}, &stdout, &stderr); code != 0 {
		t.Fatalf("exit %d\nstderr: %s", code, stderr.String())
	}
	if !strings.Contains(stdout.String(), "scale=0.01") {
		t.Errorf("flag scale not applied:\n%s", stdout.String())
	}
}

func TestAdhocFlagValidation(t *testing.T) {
	cases := [][]string{
		{"-spec", "x.json", "-policy", "lru"},          // mutually exclusive
		{"-policy", "lru", "-only", "fig4"},            // exclusive with -only
		{"-bench", "456.hmmer"},                        // -bench without -policy
		{"-mix", "mix1"},                               // -mix without -policy
		{"-spec", "x.json", "-bench", "456.hmmer"},     // -bench with -spec
		{"-policy", "lru", "-interval", "1000", "-trace-out", "x.jsonl"}, // no telemetry in ad-hoc mode
		{"-policy", "nosuchpolicy"},                    // resolver error
		{"-policy", "lru", "-bench", "999.nope"},       // unknown benchmark
		{"-spec", "/nonexistent/spec.json"},            // unreadable file
	}
	for _, args := range cases {
		var stdout, stderr bytes.Buffer
		if code := run(append(args, "-quiet"), &stdout, &stderr); code != 2 {
			t.Errorf("%v: exit %d, want 2 (stderr: %s)", args, code, stderr.String())
		}
	}
}

// TestAdhocSpecFileRejectsUnknownFields pins DisallowUnknownFields.
func TestAdhocSpecFileRejectsUnknownFields(t *testing.T) {
	dir := t.TempDir()
	specPath := filepath.Join(dir, "spec.json")
	if err := os.WriteFile(specPath, []byte(`{"policy": "lru", "workload": ["456.hmmer"]}`), 0o644); err != nil {
		t.Fatal(err)
	}
	var stdout, stderr bytes.Buffer
	if code := run([]string{"-spec", specPath, "-quiet"}, &stdout, &stderr); code != 2 {
		t.Errorf("misspelled field accepted (exit %d)", code)
	}
}
