package main

// Ad-hoc experiment mode: -spec FILE runs one declarative experiment
// from a JSON exp.Spec; -policy EXPR (with optional -bench/-mix lists)
// builds the same spec from flags. Both resolve through the component
// registry (internal/exp) and run the spec's policy against the LRU
// baseline with the same normalizations as the paper's figures. The
// resolved canonical spec is echoed into the output and, with
// -metrics, into the run manifest's deterministic config section.

import (
	"bytes"
	"encoding/json"
	"fmt"
	"os"
	"strings"

	"sdbp/internal/exp"
)

// adhocSpec validates the ad-hoc flags and assembles the spec, or
// returns nil when neither -spec nor -policy was given. flagScale is
// the -scale value; a spec file's own scale field wins when set.
func adhocSpec(specFile, policyExpr, bench, mix, only string, interval uint64, flagScale float64) (*exp.Spec, error) {
	if specFile == "" && policyExpr == "" {
		if bench != "" || mix != "" {
			return nil, fmt.Errorf("experiments: -bench/-mix require -policy")
		}
		return nil, nil
	}
	if specFile != "" && policyExpr != "" {
		return nil, fmt.Errorf("experiments: -spec and -policy are mutually exclusive")
	}
	if only != "" {
		return nil, fmt.Errorf("experiments: -only cannot be combined with -spec/-policy")
	}
	if interval > 0 {
		return nil, fmt.Errorf("experiments: -interval telemetry is not available in ad-hoc mode")
	}

	var s exp.Spec
	if specFile != "" {
		if bench != "" || mix != "" {
			return nil, fmt.Errorf("experiments: -bench/-mix cannot be combined with -spec (use the file's workloads/mixes fields)")
		}
		data, err := os.ReadFile(specFile)
		if err != nil {
			return nil, fmt.Errorf("experiments: %w", err)
		}
		dec := json.NewDecoder(bytes.NewReader(data))
		dec.DisallowUnknownFields()
		if err := dec.Decode(&s); err != nil {
			return nil, fmt.Errorf("experiments: parsing %s: %w", specFile, err)
		}
	} else {
		s.Policy = policyExpr
		s.Workloads = splitNames(bench)
		s.Mixes = splitNames(mix)
		if len(s.Workloads) == 0 && len(s.Mixes) == 0 {
			// The default target: the paper's memory-intensive subset.
			s.Workloads = []string{"subset"}
		}
	}
	if s.Scale == 0 {
		s.Scale = flagScale
	}
	return &s, nil
}

func splitNames(s string) []string {
	var out []string
	for _, n := range strings.Split(s, ",") {
		if n = strings.TrimSpace(n); n != "" {
			out = append(out, n)
		}
	}
	return out
}
