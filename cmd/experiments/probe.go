package main

// Interval-telemetry wiring for the experiments command: the
// -interval/-trace-out/-topk flags run the introspection pass (the
// paper's memory-intensive subset under the sampling DBRB policy with
// per-PC attribution) and export its series as interval JSONL plus
// Chrome trace-event JSON. cmd/report renders the JSONL into a
// self-contained HTML report; chrome://tracing and Perfetto load the
// trace file directly. See EXPERIMENTS.md for the record schema.

import (
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"

	"sdbp/internal/figures"
	"sdbp/internal/obs"
	"sdbp/internal/probe"
)

// tracePath derives the Chrome trace-event file's path from the JSONL
// path: probe.jsonl -> probe.trace.json.
func tracePath(jsonlPath string) string {
	return strings.TrimSuffix(jsonlPath, ".jsonl") + ".trace.json"
}

// runIntrospection executes the telemetry pass and writes both export
// files. The deterministic aggregates land in the registry as
// sim_probe_* counters so the run manifest records what the pass saw;
// the file paths stay out of the deterministic section (they are
// already in Flags).
func runIntrospection(env *figures.Env, reg *obs.Registry, scale float64, cfg probe.Config, out string, stderr io.Writer, quiet bool) error {
	in := figures.RunIntrospectionEnv(env, scale, cfg)
	reg.Counter(obs.SimPrefix + "probe_runs").Add(uint64(len(in.Series)))
	reg.Counter(obs.SimPrefix + "probe_intervals").Add(uint64(in.Intervals()))
	reg.Counter(obs.SimPrefix + "probe_pc_rows").Add(uint64(in.PCRows()))

	f, err := os.Create(out)
	if err != nil {
		return fmt.Errorf("experiments: -trace-out: %w", err)
	}
	if err := probe.WriteJSONL(f, in.Series); err != nil {
		f.Close()
		return fmt.Errorf("experiments: writing %s: %w", out, err)
	}
	if err := f.Close(); err != nil {
		return fmt.Errorf("experiments: writing %s: %w", out, err)
	}

	tp := tracePath(out)
	tf, err := os.Create(tp)
	if err != nil {
		return fmt.Errorf("experiments: -trace-out: %w", err)
	}
	if err := probe.WriteTraceEvents(tf, in.Series); err != nil {
		tf.Close()
		return fmt.Errorf("experiments: writing %s: %w", tp, err)
	}
	if err := tf.Close(); err != nil {
		return fmt.Errorf("experiments: writing %s: %w", tp, err)
	}
	if !quiet {
		fmt.Fprintf(stderr, "probe: %d series, %d intervals written to %s (trace events: %s)\n",
			len(in.Series), in.Intervals(), out, tp)
	}
	return nil
}

// probeConfigInto records the pass's shape in the manifest's
// deterministic config section.
func probeConfigInto(m *obs.Manifest, cfg probe.Config) {
	m.Sim.Config["probe_interval"] = strconv.FormatUint(cfg.Interval, 10)
	m.Sim.Config["probe_topk"] = strconv.Itoa(cfg.TopKOrDefault())
}
