package main

// Observability plumbing for the experiments command: the -metrics run
// manifest, the -pprof live-profiling endpoint, and the periodic
// progress snapshots that extend the per-job ETA logging with
// campaign-level throughput. All of it reads the obs.Registry the
// runner and simulator populate at experiment boundaries; nothing here
// touches the per-access hot path.

import (
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	_ "net/http/pprof" // registers /debug/pprof on DefaultServeMux
	"strconv"
	"strings"
	"time"

	"sdbp/internal/figures"
	"sdbp/internal/obs"
	"sdbp/internal/probe"
)

// simCounter reads one sim_* counter from the registry without
// creating it.
func simCounter(reg *obs.Registry, name string) uint64 {
	return reg.CounterValue(obs.SimPrefix + name)
}

// writeManifest records the run's provenance — flag values, sections
// run, deterministic aggregate simulator counters, job accounting and
// wall-clock timing — as JSON at path. See EXPERIMENTS.md for the
// schema and how to diff two manifests.
func writeManifest(path string, reg *obs.Registry, fs *flag.FlagSet, scale float64, only, spec string, ran []string, started time.Time, probeCfg *probe.Config, sampled *figures.SampledValidation) error {
	m := obs.NewManifest("experiments")
	m.Flags = map[string]string{}
	fs.VisitAll(func(f *flag.Flag) { m.Flags[f.Name] = f.Value.String() })

	// The deterministic section's config: everything that shapes the
	// simulated work, and nothing (like output paths) that doesn't.
	m.Sim.Config["scale"] = strconv.FormatFloat(scale, 'g', -1, 64)
	m.Sim.Config["only"] = only
	m.Sim.Config["sections"] = strings.Join(ran, ",")
	m.Sim.Config["seed_scheme"] = "per-workload stable index (internal/workloads)"
	if spec != "" {
		// Ad-hoc mode: the fully-expanded canonical spec (every default
		// made explicit), so the manifest alone reproduces the run.
		m.Sim.Config["spec"] = spec
	}
	if probeCfg != nil {
		probeConfigInto(m, *probeCfg)
	}
	if sampled != nil {
		sampledConfigInto(m, sampled)
	}

	// Campaign-level throughput, derived at the run boundary.
	wall := time.Since(started)
	if acc := simCounter(reg, "l1_accesses"); acc > 0 && wall > 0 {
		reg.Gauge(obs.SimPrefix + "accesses_per_sec").Set(float64(acc) / wall.Seconds())
	}
	if cyc := simCounter(reg, "cycles"); cyc > 0 {
		reg.Gauge(obs.SimPrefix + "aggregate_ipc").Set(
			float64(simCounter(reg, "instructions")) / float64(cyc))
	}

	m.FillFromRegistry(reg)
	m.Timing.Started = started.Format(time.RFC3339Nano)
	m.Timing.WallMS = float64(wall) / float64(time.Millisecond)
	return m.WriteFile(path)
}

// startPprof serves net/http/pprof on addr (host:port; port 0 picks a
// free one) for live profiling of long campaigns. The listener stays
// open for the life of the process.
func startPprof(addr string, stderr io.Writer) error {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return fmt.Errorf("experiments: -pprof %s: %w", addr, err)
	}
	fmt.Fprintf(stderr, "pprof: serving on http://%s/debug/pprof/\n", ln.Addr())
	go func() { _ = http.Serve(ln, nil) }()
	return nil
}

// startSnapshots logs a campaign-level progress line every interval:
// jobs settled, accesses simulated, throughput since the last
// snapshot, and aggregate simulated IPC. It complements the per-job
// progress/ETA lines, which say nothing about simulation rate. The
// returned stop function ends the loop.
func startSnapshots(reg *obs.Registry, interval time.Duration, stderr io.Writer) (stop func()) {
	done := make(chan struct{})
	go func() {
		t := time.NewTicker(interval)
		defer t.Stop()
		start := time.Now()
		lastAcc, lastAt := uint64(0), start
		for {
			select {
			case <-done:
				return
			case now := <-t.C:
				acc := simCounter(reg, "l1_accesses")
				rate := float64(acc-lastAcc) / now.Sub(lastAt).Seconds()
				settled := reg.CounterValue(obs.CtrJobsSucceeded) +
					reg.CounterValue(obs.CtrJobsFailed) +
					reg.CounterValue(obs.CtrJobsFromCheckpoint)
				line := fmt.Sprintf("snapshot: %s elapsed, %d/%d jobs settled, %.1fM accesses (%.2fM/s)",
					now.Sub(start).Round(time.Second),
					settled, reg.CounterValue(obs.CtrJobsSubmitted),
					float64(acc)/1e6, rate/1e6)
				if cyc := simCounter(reg, "cycles"); cyc > 0 {
					line += fmt.Sprintf(", sim IPC %.2f",
						float64(simCounter(reg, "instructions"))/float64(cyc))
				}
				fmt.Fprintln(stderr, line)
				lastAcc, lastAt = acc, now
			}
		}
	}()
	return func() { close(done) }
}
