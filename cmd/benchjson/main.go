// Command benchjson converts `go test -bench` output into JSON so CI
// can publish benchmark results as a machine-readable artifact
// (BENCH_hotpath.json) and before/after comparisons can be scripted.
//
//	go test -bench 'LLCAccess|SingleCoreCampaign' -benchmem -run '^$' . |
//	    benchjson -label after > BENCH_hotpath.json
//
// Each "BenchmarkName-P  N  X ns/op  Y B/op  Z allocs/op ..." line
// becomes one record; unrecognized lines are ignored, so the raw test
// output can be piped in unfiltered.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"
)

// Result is one benchmark line in JSON form. Extra is the tail of
// custom metrics (unit -> value) benchmarks report via ReportMetric.
type Result struct {
	Name        string             `json:"name"`
	Label       string             `json:"label,omitempty"`
	Iterations  int64              `json:"iterations"`
	NsPerOp     float64            `json:"ns_per_op"`
	BytesPerOp  *float64           `json:"bytes_per_op,omitempty"`
	AllocsPerOp *float64           `json:"allocs_per_op,omitempty"`
	Extra       map[string]float64 `json:"extra,omitempty"`
}

func main() {
	os.Exit(run(os.Args[1:], os.Stdin, os.Stdout, os.Stderr))
}

func run(args []string, stdin io.Reader, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("benchjson", flag.ContinueOnError)
	fs.SetOutput(stderr)
	label := fs.String("label", "", "label attached to every record (e.g. baseline, after)")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if fs.NArg() != 0 {
		fmt.Fprintln(stderr, "benchjson: reads benchmark output on stdin; no positional arguments")
		return 2
	}

	results, err := Parse(stdin, *label)
	if err != nil {
		fmt.Fprintln(stderr, "benchjson:", err)
		return 1
	}
	if len(results) == 0 {
		fmt.Fprintln(stderr, "benchjson: no benchmark lines found on stdin")
		return 1
	}
	enc := json.NewEncoder(stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(results); err != nil {
		fmt.Fprintln(stderr, "benchjson:", err)
		return 1
	}
	return 0
}

// Parse extracts benchmark records from go test -bench output.
func Parse(r io.Reader, label string) ([]Result, error) {
	var out []Result
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		res, ok := parseLine(sc.Text())
		if !ok {
			continue
		}
		res.Label = label
		out = append(out, res)
	}
	return out, sc.Err()
}

// parseLine parses one "BenchmarkX-8 1000 123 ns/op ..." line. The
// fields after the iteration count come in "<value> <unit>" pairs.
func parseLine(line string) (Result, bool) {
	fields := strings.Fields(line)
	if len(fields) < 4 || !strings.HasPrefix(fields[0], "Benchmark") {
		return Result{}, false
	}
	name := fields[0]
	if i := strings.LastIndex(name, "-"); i > 0 {
		if _, err := strconv.Atoi(name[i+1:]); err == nil {
			name = name[:i] // strip the -GOMAXPROCS suffix
		}
	}
	iters, err := strconv.ParseInt(fields[1], 10, 64)
	if err != nil {
		return Result{}, false
	}
	res := Result{Name: name, Iterations: iters}
	seenNs := false
	for i := 2; i+1 < len(fields); i += 2 {
		v, err := strconv.ParseFloat(fields[i], 64)
		if err != nil {
			return Result{}, false
		}
		// v is declared per iteration, so storing &v is safe.
		switch unit := fields[i+1]; unit {
		case "ns/op":
			res.NsPerOp = v
			seenNs = true
		case "B/op":
			res.BytesPerOp = &v
		case "allocs/op":
			res.AllocsPerOp = &v
		default:
			if res.Extra == nil {
				res.Extra = map[string]float64{}
			}
			res.Extra[unit] = v
		}
	}
	return res, seenNs
}
