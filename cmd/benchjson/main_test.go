package main

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
)

const sampleOutput = `goos: linux
goarch: amd64
pkg: sdbp
cpu: Intel(R) Xeon(R) Processor @ 2.10GHz
BenchmarkLLCAccess-8         	46979772	        55.52 ns/op	       0 B/op	       0 allocs/op
BenchmarkSingleCoreCampaign 	      55	  44406798 ns/op	 2175608 B/op	      58 allocs/op
BenchmarkFig6Ablation-4     	       2	 600000000 ns/op	         1.059 gmean-full
PASS
ok  	sdbp	8.117s
`

func TestParse(t *testing.T) {
	results, err := Parse(strings.NewReader(sampleOutput), "baseline")
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 3 {
		t.Fatalf("parsed %d results, want 3", len(results))
	}

	llc := results[0]
	if llc.Name != "BenchmarkLLCAccess" {
		t.Errorf("name %q: -GOMAXPROCS suffix not stripped", llc.Name)
	}
	if llc.Label != "baseline" || llc.Iterations != 46979772 || llc.NsPerOp != 55.52 {
		t.Errorf("bad record: %+v", llc)
	}
	if llc.AllocsPerOp == nil || *llc.AllocsPerOp != 0 {
		t.Errorf("allocs/op not captured: %+v", llc.AllocsPerOp)
	}

	camp := results[1]
	if camp.Name != "BenchmarkSingleCoreCampaign" || camp.NsPerOp != 44406798 {
		t.Errorf("bad record: %+v", camp)
	}

	abl := results[2]
	if abl.Extra["gmean-full"] != 1.059 {
		t.Errorf("custom metric not captured: %+v", abl.Extra)
	}
}

func TestParseIgnoresNoise(t *testing.T) {
	results, err := Parse(strings.NewReader("PASS\nok sdbp 1s\nBenchmarkBroken abc\n"), "")
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 0 {
		t.Fatalf("parsed %d results from noise, want 0", len(results))
	}
}

func TestRunEmitsValidJSON(t *testing.T) {
	var stdout, stderr bytes.Buffer
	code := run([]string{"-label", "after"}, strings.NewReader(sampleOutput), &stdout, &stderr)
	if code != 0 {
		t.Fatalf("exit %d, stderr: %s", code, stderr.String())
	}
	var decoded []Result
	if err := json.Unmarshal(stdout.Bytes(), &decoded); err != nil {
		t.Fatalf("output is not valid JSON: %v", err)
	}
	if len(decoded) != 3 || decoded[0].Label != "after" {
		t.Fatalf("bad decoded output: %+v", decoded)
	}
}

func TestRunExitCodes(t *testing.T) {
	var out bytes.Buffer
	if code := run([]string{"-nope"}, strings.NewReader(""), &out, &out); code != 2 {
		t.Errorf("unknown flag: exit %d, want 2", code)
	}
	if code := run([]string{"positional"}, strings.NewReader(""), &out, &out); code != 2 {
		t.Errorf("positional arg: exit %d, want 2", code)
	}
	if code := run(nil, strings.NewReader("no benchmarks here\n"), &out, &out); code != 1 {
		t.Errorf("empty input: exit %d, want 1", code)
	}
}
