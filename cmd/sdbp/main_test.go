package main

import (
	"bytes"
	"strings"
	"testing"
)

func TestRunFlagValidation(t *testing.T) {
	cases := []struct {
		name string
		args []string
		want int
	}{
		{"unknown flag", []string{"-nope"}, 2},
		{"positional args", []string{"-list", "extra"}, 2},
		{"no bench or mix", nil, 2},
		{"unknown policy", []string{"-bench", "456.hmmer", "-scale", "0.01", "-policy", "NotAPolicy"}, 2},
		{"optimal in mix", []string{"-mix", "mix1", "-scale", "0.01", "-policy", "Optimal"}, 2},
		{"diff needs two policies", []string{"-bench", "456.hmmer", "-diff", "-policy", "LRU"}, 2},
		{"diff rejects optimal", []string{"-bench", "456.hmmer", "-diff", "-policy", "LRU,Optimal"}, 2},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			var stdout, stderr bytes.Buffer
			if code := run(tc.args, &stdout, &stderr); code != tc.want {
				t.Errorf("run(%v) = %d, want %d (stderr: %s)", tc.args, code, tc.want, stderr.String())
			}
		})
	}
}

func TestRunList(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if code := run([]string{"-list"}, &stdout, &stderr); code != 0 {
		t.Fatalf("exit %d, stderr: %s", code, stderr.String())
	}
	out := stdout.String()
	for _, want := range []string{"benchmarks:", "mixes:", "policies:", "Sampler", "mix1"} {
		if !strings.Contains(out, want) {
			t.Errorf("-list output missing %q:\n%s", want, out)
		}
	}
}

func TestLookupPolicyCoversListedNames(t *testing.T) {
	names := []string{
		"LRU", "Random", "DIP", "TADIP", "RRIP", "Sampler", "TDBP", "CDBP",
		"RandomSampler", "RandomCDBP", "Optimal", "PLRU", "NRU", "PLRUSampler",
		"NRUSampler", "Bursts", "AIP", "SamplingCounting", "TimeBased",
		"DuelingSampler",
	}
	for _, n := range names {
		if _, _, err := lookupPolicy(n); err != nil {
			t.Errorf("listed policy %q does not resolve: %v", n, err)
		}
	}
	if _, isOptimal, _ := lookupPolicy("Optimal"); !isOptimal {
		t.Error("Optimal not flagged as the optimal policy")
	}
	if _, _, err := lookupPolicy("NotAPolicy"); err == nil {
		t.Error("unknown policy resolved without error")
	}
}

// TestRunBenchSmoke runs one tiny single-core simulation end to end
// through the CLI and checks the table shape.
func TestRunBenchSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation smoke test skipped in -short mode")
	}
	var stdout, stderr bytes.Buffer
	code := run([]string{"-bench", "456.hmmer", "-scale", "0.01", "-policy", "LRU"}, &stdout, &stderr)
	if code != 0 {
		t.Fatalf("exit %d, stderr: %s", code, stderr.String())
	}
	lines := strings.Split(strings.TrimRight(stdout.String(), "\n"), "\n")
	if len(lines) != 2 {
		t.Fatalf("expected header + 1 result row, got %d lines:\n%s", len(lines), stdout.String())
	}
	if !strings.Contains(lines[0], "MPKI") || !strings.Contains(lines[1], "456.hmmer") {
		t.Errorf("unexpected table:\n%s", stdout.String())
	}
}
