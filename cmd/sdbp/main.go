// Command sdbp runs individual simulations from the command line: one
// or more benchmarks (or quad-core mixes) against one or more LLC
// management policies, printing MPKI, IPC, predictor accuracy and cache
// efficiency.
//
// Examples:
//
//	sdbp -bench 456.hmmer -policy LRU,Sampler
//	sdbp -bench subset -policy LRU,DIP,RRIP,TDBP,CDBP,Sampler,Optimal
//	sdbp -mix mix1 -policy LRU,TADIP,Sampler
package main

import (
	"flag"
	"fmt"
	"io"
	"math"
	"os"
	"strings"

	"sdbp"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("sdbp", flag.ContinueOnError)
	fs.SetOutput(stderr)
	bench := fs.String("bench", "", "benchmark name, 'subset', or 'all'")
	mix := fs.String("mix", "", "quad-core mix name ('mix1'..'mix10') or 'all'")
	policies := fs.String("policy", "LRU,Sampler", "comma-separated policy list")
	scale := fs.Float64("scale", 1.0, "stream length multiplier")
	llcMB := fs.Int("llc", 0, "LLC capacity in MB (default 2 single-core, 8 mix)")
	list := fs.Bool("list", false, "list benchmarks, mixes and policies")
	diff := fs.Bool("diff", false, "lockstep-compare exactly two policies per benchmark (classifies every LLC access)")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if fs.NArg() != 0 {
		fmt.Fprintln(stderr, "sdbp: unexpected positional arguments:", fs.Args())
		return 2
	}

	if *list {
		fmt.Fprintln(stdout, "benchmarks:", strings.Join(sdbp.Benchmarks(), " "))
		fmt.Fprintln(stdout, "subset:    ", strings.Join(sdbp.SubsetBenchmarks(), " "))
		fmt.Fprintln(stdout, "mixes:     ", strings.Join(sdbp.Mixes(), " "))
		fmt.Fprintln(stdout, "policies:  ", strings.Join(sdbp.PolicyNames(), " "), "Optimal")
		fmt.Fprintln(stdout, "variants:  ", strings.Join(sdbp.SamplerVariantNames(), " | "))
		fmt.Fprintln(stdout, "exprs:      any registry expression also works, e.g. 'dbrb(base=random,pred=counting)'")
		return 0
	}
	if *bench == "" && *mix == "" {
		fmt.Fprintln(stderr, "sdbp: need -bench or -mix (try -list)")
		return 2
	}

	opts := sdbp.Options{Scale: *scale, LLCMegabytes: *llcMB}
	if *diff {
		return runDiff(*bench, splitList(*policies), opts, stdout, stderr)
	}
	if *mix != "" {
		return runMixes(*mix, splitList(*policies), opts, stdout, stderr)
	}
	return runBenches(*bench, splitList(*policies), opts, stdout, stderr)
}

// splitList splits a comma-separated list, ignoring commas nested in
// parentheses so registry expressions like dbrb(base=random,pred=counting)
// stay whole.
func splitList(s string) []string {
	var out []string
	depth, start := 0, 0
	emit := func(p string) {
		if p = strings.TrimSpace(p); p != "" {
			out = append(out, p)
		}
	}
	for i, c := range s {
		switch c {
		case '(':
			depth++
		case ')':
			if depth > 0 {
				depth--
			}
		case ',':
			if depth == 0 {
				emit(s[start:i])
				start = i + 1
			}
		}
	}
	emit(s[start:])
	return out
}

// lookupPolicy maps a CLI policy name — a registry preset, alias,
// Figure 6 ablation variant, or free-form component expression — to a
// facade Policy; the bool distinguishes "Optimal" (which needs
// RunOptimal).
func lookupPolicy(name string) (sdbp.Policy, bool, error) {
	if name == "Optimal" {
		return sdbp.Policy{}, true, nil
	}
	p, err := sdbp.PolicyExpr(name)
	if err != nil {
		return sdbp.Policy{}, false, fmt.Errorf("unknown policy %q (%v)", name, err)
	}
	return p, false, nil
}

func runBenches(bench string, policies []string, opts sdbp.Options, stdout, stderr io.Writer) int {
	var names []string
	switch bench {
	case "all":
		names = sdbp.Benchmarks()
	case "subset":
		names = sdbp.SubsetBenchmarks()
	default:
		names = splitList(bench)
	}

	fmt.Fprintf(stdout, "%-16s %-28s %9s %7s %7s %7s %7s\n",
		"benchmark", "policy", "MPKI", "IPC", "eff%", "cov%", "fp%")
	for _, b := range names {
		for _, pname := range policies {
			p, isOptimal, err := lookupPolicy(pname)
			if err != nil {
				fmt.Fprintln(stderr, "sdbp:", err)
				return 2
			}
			var r sdbp.Result
			if isOptimal {
				r = sdbp.RunOptimal(b, opts)
			} else {
				r = sdbp.Run(b, p, opts)
			}
			fmt.Fprintf(stdout, "%-16s %-28s %9.3f %7.3f %7.1f %7s %7s\n",
				b, r.Policy, r.MPKI, r.IPC, r.Efficiency*100,
				pct(r.Coverage), pct(r.FalsePositiveRate))
		}
	}
	return 0
}

func runMixes(mix string, policies []string, opts sdbp.Options, stdout, stderr io.Writer) int {
	var names []string
	if mix == "all" {
		names = sdbp.Mixes()
	} else {
		names = splitList(mix)
	}

	fmt.Fprintf(stdout, "%-8s %-28s %9s %10s   %s\n", "mix", "policy", "MPKI", "wspeedup", "per-core IPC")
	for _, m := range names {
		for _, pname := range policies {
			p, isOptimal, err := lookupPolicy(pname)
			if err != nil || isOptimal {
				fmt.Fprintf(stderr, "sdbp: policy %q not available for mixes\n", pname)
				return 2
			}
			r := sdbp.RunMix(m, p, opts)
			fmt.Fprintf(stdout, "%-8s %-28s %9.3f %10.4f   %.3f %.3f %.3f %.3f\n",
				m, r.Policy, r.MPKI, r.WeightedSpeedup,
				r.IPC[0], r.IPC[1], r.IPC[2], r.IPC[3])
		}
	}
	return 0
}

func pct(x float64) string {
	if math.IsNaN(x) {
		return "-"
	}
	return fmt.Sprintf("%.1f", x*100)
}

func runDiff(bench string, policies []string, opts sdbp.Options, stdout, stderr io.Writer) int {
	if len(policies) != 2 {
		fmt.Fprintln(stderr, "sdbp: -diff needs exactly two policies")
		return 2
	}
	pa, optA, errA := lookupPolicy(policies[0])
	pb, optB, errB := lookupPolicy(policies[1])
	if errA != nil || errB != nil || optA || optB {
		fmt.Fprintln(stderr, "sdbp: -diff needs two simulatable policies")
		return 2
	}
	var names []string
	switch bench {
	case "all":
		names = sdbp.Benchmarks()
	case "subset":
		names = sdbp.SubsetBenchmarks()
	default:
		names = splitList(bench)
	}
	fmt.Fprintf(stdout, "%-16s %10s %10s %10s %10s %8s %8s\n",
		"benchmark", "bothHit", "only"+policies[0], "only"+policies[1], "bothMiss", "damage%", "gain%")
	for _, b := range names {
		d := sdbp.Compare(b, pa, pb, opts)
		fmt.Fprintf(stdout, "%-16s %10d %10d %10d %10d %8.2f %8.2f\n",
			b, d.BothHit, d.OnlyAHit, d.OnlyBHit, d.BothMiss,
			d.DamageRate()*100, d.GainRate()*100)
	}
	return 0
}
