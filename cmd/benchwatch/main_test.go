package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// results builds a labeled sample set for one benchmark.
func results(name, label string, allocs float64, ns ...float64) []Result {
	var out []Result
	for _, v := range ns {
		a := allocs
		out = append(out, Result{Name: name, Label: label, Iterations: 100, NsPerOp: v, AllocsPerOp: &a})
	}
	return out
}

func writeJSON(t *testing.T, name string, v any) string {
	t.Helper()
	data, err := json.Marshal(v)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), name)
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

// TestCompareFlagsInjectedRegression is the acceptance criterion: a
// synthetic slowdown well past the noise band must be flagged, and the
// command must exit non-zero with a verdict artifact naming it.
func TestCompareFlagsInjectedRegression(t *testing.T) {
	baseline := append(
		results("BenchmarkLLCAccess", "after", 0, 50, 52, 51, 49, 53),
		results("BenchmarkCampaign", "after", 58, 40e6, 41e6, 39e6)...,
	)
	// LLCAccess injected 40% slower; Campaign unchanged.
	current := append(
		results("BenchmarkLLCAccess", "current", 0, 70, 72, 71),
		results("BenchmarkCampaign", "current", 58, 40.5e6, 39.5e6, 40e6)...,
	)
	basePath := writeJSON(t, "base.json", baseline)
	curPath := writeJSON(t, "cur.json", current)
	verdictPath := filepath.Join(t.TempDir(), "verdict.json")

	var stdout, stderr bytes.Buffer
	code := run([]string{"-baseline", basePath, "-current", curPath, "-out", verdictPath}, nil, &stdout, &stderr)
	if code != 1 {
		t.Fatalf("exit %d, want 1 (regression)\nstdout: %s\nstderr: %s", code, stdout.String(), stderr.String())
	}
	if !strings.Contains(stdout.String(), "REGRESSION") {
		t.Errorf("summary does not flag the regression:\n%s", stdout.String())
	}

	data, err := os.ReadFile(verdictPath)
	if err != nil {
		t.Fatal(err)
	}
	var v Verdict
	if err := json.Unmarshal(data, &v); err != nil {
		t.Fatal(err)
	}
	if v.Regressions != 1 {
		t.Errorf("verdict counts %d regressions, want 1", v.Regressions)
	}
	for _, c := range v.Benchmarks {
		switch c.Name {
		case "BenchmarkLLCAccess":
			if !c.Regression {
				t.Error("injected 40% slowdown not flagged")
			}
		case "BenchmarkCampaign":
			if c.Regression {
				t.Errorf("steady benchmark flagged: %s", c.Reason)
			}
		}
	}
}

// TestCompareCleanRunPasses: within-noise jitter exits 0.
func TestCompareCleanRunPasses(t *testing.T) {
	baseline := results("BenchmarkLLCAccess", "after", 0, 50, 52, 51)
	current := results("BenchmarkLLCAccess", "current", 0, 53, 51, 52)
	var stdout, stderr bytes.Buffer
	code := run([]string{
		"-baseline", writeJSON(t, "base.json", baseline),
		"-current", writeJSON(t, "cur.json", current),
	}, nil, &stdout, &stderr)
	if code != 0 {
		t.Fatalf("exit %d, want 0\nstdout: %s\nstderr: %s", code, stdout.String(), stderr.String())
	}
	if !strings.Contains(stdout.String(), "no regressions") {
		t.Errorf("missing all-clear:\n%s", stdout.String())
	}
}

// TestCompareNoiseWidensThreshold: a 15% slowdown trips the default
// 10% floor on a tight baseline but is absorbed by a baseline whose
// own spread covers it.
func TestCompareNoiseWidensThreshold(t *testing.T) {
	tight := results("BenchmarkX", "after", 0, 100, 101, 100, 99, 100)
	noisy := results("BenchmarkX", "after", 0, 80, 100, 120, 95, 105)
	current := results("BenchmarkX", "current", 0, 115, 115, 115)

	v, err := Compare(tight, current, 0.10, 1.5)
	if err != nil {
		t.Fatal(err)
	}
	if !v.Benchmarks[0].Regression {
		t.Errorf("tight baseline: +15%% not flagged (threshold %.3f)", v.Benchmarks[0].Threshold)
	}
	v, err = Compare(noisy, current, 0.10, 1.5)
	if err != nil {
		t.Fatal(err)
	}
	if v.Benchmarks[0].Regression {
		t.Errorf("noisy baseline (spread 40%%): +15%% flagged despite noise-adjusted threshold %.3f", v.Benchmarks[0].Threshold)
	}
}

// TestCompareAllocsExact: allocs/op growth is a regression even when
// ns/op improved — the 0 allocs/op pin is a hard property.
func TestCompareAllocsExact(t *testing.T) {
	baseline := results("BenchmarkLLCAccess", "after", 0, 50, 51)
	current := results("BenchmarkLLCAccess", "current", 1, 45, 46)
	v, err := Compare(baseline, current, 0.10, 1.5)
	if err != nil {
		t.Fatal(err)
	}
	c := v.Benchmarks[0]
	if !c.Regression || !strings.Contains(c.Reason, "allocs/op") {
		t.Errorf("allocs/op 0 -> 1 not flagged: %+v", c)
	}
}

// TestCompareUsesLatestBaselineLabel: with before/after both in the
// artifact (as BENCH_hotpath.json is committed), the comparison runs
// against "after" — a current run matching "after" must pass even
// though it beats "before" by a margin.
func TestCompareUsesLatestBaselineLabel(t *testing.T) {
	artifact := append(
		results("BenchmarkLLCAccessLRU", "before", 0, 75, 69, 69, 67, 64),
		results("BenchmarkLLCAccessLRU", "after", 0, 56, 52, 52, 48, 49)...,
	)
	current := results("BenchmarkLLCAccessLRU", "current", 0, 53, 51, 52)
	v, err := Compare(artifact, current, 0.10, 1.5)
	if err != nil {
		t.Fatal(err)
	}
	if v.BaselineLabel != "after" {
		t.Fatalf("baseline label = %q, want after (the last label in file order)", v.BaselineLabel)
	}
	if v.Benchmarks[0].Regression {
		t.Errorf("current within after-noise flagged: %+v", v.Benchmarks[0])
	}
}

// TestCompareAgainstCommittedArtifact: the real BENCH_hotpath.json
// parses and a current run replaying its own "after" samples passes.
func TestCompareAgainstCommittedArtifact(t *testing.T) {
	data, err := os.ReadFile("../../BENCH_hotpath.json")
	if err != nil {
		t.Fatal(err)
	}
	var artifact []Result
	if err := json.Unmarshal(data, &artifact); err != nil {
		t.Fatalf("committed artifact does not parse: %v", err)
	}
	_, after := latestLabel(artifact)
	if len(after) == 0 {
		t.Fatal("committed artifact has no baseline records")
	}
	v, err := Compare(artifact, after, 0.10, 1.5)
	if err != nil {
		t.Fatal(err)
	}
	if v.Regressions != 0 {
		t.Errorf("artifact regresses against itself: %+v", v.Benchmarks)
	}
}

// TestCompareMissingBenchmark: baseline-only benchmarks are reported
// but do not fail the run on their own.
func TestCompareMissingBenchmark(t *testing.T) {
	baseline := append(
		results("BenchmarkA", "after", 0, 50),
		results("BenchmarkB", "after", 0, 60)...,
	)
	current := results("BenchmarkA", "current", 0, 50)
	v, err := Compare(baseline, current, 0.10, 1.5)
	if err != nil {
		t.Fatal(err)
	}
	if fmt.Sprint(v.Missing) != "[BenchmarkB]" {
		t.Errorf("missing = %v, want [BenchmarkB]", v.Missing)
	}
	if v.Regressions != 0 {
		t.Errorf("missing benchmark counted as regression")
	}
}

func TestWatchUsageErrors(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if code := run(nil, nil, &stdout, &stderr); code != 2 {
		t.Errorf("missing -baseline: exit %d, want 2", code)
	}
	if code := run([]string{"-baseline", filepath.Join(t.TempDir(), "absent.json"), "-current", writeJSON(t, "c.json", results("B", "x", 0, 1))}, nil, &stdout, &stderr); code != 1 {
		t.Errorf("absent baseline: exit %d, want 1", code)
	}
	empty := writeJSON(t, "empty.json", []Result{})
	if code := run([]string{"-baseline", empty, "-current", empty}, nil, &stdout, &stderr); code != 1 {
		t.Errorf("empty baseline: exit %d, want 1", code)
	}
}
