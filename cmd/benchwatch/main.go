// Command benchwatch is the perf-regression watchdog: it compares a
// fresh benchmark run (benchjson output) against the committed
// baseline artifact and exits non-zero when the hot path got slower
// than the baseline's own noise explains.
//
//	go test -bench 'LLCAccess|SingleCoreCampaign' -benchmem -run '^$' -count 5 . |
//	    benchjson -label current |
//	    benchwatch -baseline BENCH_hotpath.json -out verdict.json
//
// Methodology (see DESIGN.md): both sides carry repeated samples per
// benchmark, so the comparison is paired medians — the median is
// robust to the stray slow iteration that plagues shared CI runners.
// The slowdown threshold is noise-aware: a benchmark must regress by
// more than max(-threshold, -noise-k × the baseline's own relative
// spread) before it counts, so tight benchmarks are held tight and
// noisy ones are not flapped on. allocs/op has no noise: the median
// must not grow at all.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"math"
	"os"
	"sort"
)

// Result mirrors benchjson's record (the two commands are separate
// mains, so the shape is pinned here and covered by tests).
type Result struct {
	Name        string   `json:"name"`
	Label       string   `json:"label,omitempty"`
	Iterations  int64    `json:"iterations"`
	NsPerOp     float64  `json:"ns_per_op"`
	BytesPerOp  *float64 `json:"bytes_per_op,omitempty"`
	AllocsPerOp *float64 `json:"allocs_per_op,omitempty"`
}

// Comparison is one benchmark's verdict.
type Comparison struct {
	Name       string  `json:"name"`
	BaselineNs float64 `json:"baseline_ns"` // median
	CurrentNs  float64 `json:"current_ns"`  // median
	Delta      float64 `json:"delta"`       // (current-baseline)/baseline
	Threshold  float64 `json:"threshold"`   // effective, noise-adjusted
	Samples    [2]int  `json:"samples"`     // baseline, current

	BaselineAllocs *float64 `json:"baseline_allocs,omitempty"`
	CurrentAllocs  *float64 `json:"current_allocs,omitempty"`

	Regression bool   `json:"regression"`
	Reason     string `json:"reason,omitempty"`
}

// Verdict is the machine-readable artifact CI uploads.
type Verdict struct {
	BaselineLabel string       `json:"baseline_label"`
	CurrentLabel  string       `json:"current_label,omitempty"`
	Benchmarks    []Comparison `json:"benchmarks"`
	Missing       []string     `json:"missing,omitempty"` // in baseline, absent from current
	Regressions   int          `json:"regressions"`
}

func main() {
	os.Exit(run(os.Args[1:], os.Stdin, os.Stdout, os.Stderr))
}

func run(args []string, stdin io.Reader, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("benchwatch", flag.ContinueOnError)
	fs.SetOutput(stderr)
	baseFile := fs.String("baseline", "", "committed benchjson artifact to compare against (required)")
	curFile := fs.String("current", "-", `fresh benchjson output ("-" = stdin)`)
	outFile := fs.String("out", "", "write the verdict JSON here as well as summarizing on stdout")
	minThreshold := fs.Float64("threshold", 0.10, "minimum relative ns/op slowdown that counts as a regression")
	noiseK := fs.Float64("noise-k", 1.5, "widen the threshold to this multiple of the baseline's relative spread")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if *baseFile == "" {
		fmt.Fprintln(stderr, "benchwatch: -baseline FILE is required (the committed benchjson artifact)")
		return 2
	}

	baseline, err := readResults(*baseFile, stdin)
	if err != nil {
		fmt.Fprintln(stderr, "benchwatch:", err)
		return 1
	}
	current, err := readResults(*curFile, stdin)
	if err != nil {
		fmt.Fprintln(stderr, "benchwatch:", err)
		return 1
	}

	verdict, err := Compare(baseline, current, *minThreshold, *noiseK)
	if err != nil {
		fmt.Fprintln(stderr, "benchwatch:", err)
		return 1
	}

	for _, c := range verdict.Benchmarks {
		status := "ok"
		if c.Regression {
			status = "REGRESSION: " + c.Reason
		}
		fmt.Fprintf(stdout, "%-32s %12.2f -> %12.2f ns/op  (%+.1f%%, threshold %.1f%%)  %s\n",
			c.Name, c.BaselineNs, c.CurrentNs, 100*c.Delta, 100*c.Threshold, status)
	}
	for _, name := range verdict.Missing {
		fmt.Fprintf(stderr, "benchwatch: %s is in the baseline but missing from the current run\n", name)
	}
	if *outFile != "" {
		data, err := json.MarshalIndent(verdict, "", "  ")
		if err != nil {
			fmt.Fprintln(stderr, "benchwatch:", err)
			return 1
		}
		if err := os.WriteFile(*outFile, append(data, '\n'), 0o644); err != nil {
			fmt.Fprintln(stderr, "benchwatch:", err)
			return 1
		}
	}
	if verdict.Regressions > 0 {
		fmt.Fprintf(stderr, "benchwatch: %d regression(s) against %s\n", verdict.Regressions, *baseFile)
		return 1
	}
	fmt.Fprintln(stdout, "benchwatch: no regressions")
	return 0
}

// readResults loads a benchjson array from path, or stdin for "-".
func readResults(path string, stdin io.Reader) ([]Result, error) {
	var data []byte
	var err error
	if path == "-" {
		data, err = io.ReadAll(stdin)
	} else {
		data, err = os.ReadFile(path)
	}
	if err != nil {
		return nil, err
	}
	var out []Result
	if err := json.Unmarshal(data, &out); err != nil {
		return nil, fmt.Errorf("parsing %s: %w", path, err)
	}
	return out, nil
}

// latestLabel picks the records to compare: the artifact accumulates
// labeled runs over time (BENCH_hotpath.json holds before/after
// pairs), and the meaningful baseline is the newest — the last label
// in file order.
func latestLabel(results []Result) (string, []Result) {
	if len(results) == 0 {
		return "", nil
	}
	label := results[len(results)-1].Label
	var out []Result
	for _, r := range results {
		if r.Label == label {
			out = append(out, r)
		}
	}
	return label, out
}

// median of a non-empty sample set.
func median(vals []float64) float64 {
	s := append([]float64(nil), vals...)
	sort.Float64s(s)
	n := len(s)
	if n%2 == 1 {
		return s[n/2]
	}
	return (s[n/2-1] + s[n/2]) / 2
}

// spread is the relative width of a sample set: (max-min)/median.
// Zero for a single sample — one observation carries no noise
// estimate, so only the floor threshold applies.
func spread(vals []float64) float64 {
	if len(vals) < 2 {
		return 0
	}
	min, max := vals[0], vals[0]
	for _, v := range vals {
		min = math.Min(min, v)
		max = math.Max(max, v)
	}
	if m := median(vals); m > 0 {
		return (max - min) / m
	}
	return 0
}

// group collects per-benchmark ns/op and allocs/op samples.
func group(results []Result) (map[string][]float64, map[string][]float64, []string) {
	ns := map[string][]float64{}
	allocs := map[string][]float64{}
	var order []string
	for _, r := range results {
		if _, seen := ns[r.Name]; !seen {
			order = append(order, r.Name)
		}
		ns[r.Name] = append(ns[r.Name], r.NsPerOp)
		if r.AllocsPerOp != nil {
			allocs[r.Name] = append(allocs[r.Name], *r.AllocsPerOp)
		}
	}
	return ns, allocs, order
}

// Compare runs the paired-median comparison of current against
// baseline. Benchmarks only in the current run are ignored (new
// benchmarks have no baseline); benchmarks only in the baseline are
// reported as missing but are not a regression by themselves.
func Compare(baseline, current []Result, minThreshold, noiseK float64) (Verdict, error) {
	baseLabel, base := latestLabel(baseline)
	curLabel, cur := latestLabel(current)
	if len(base) == 0 {
		return Verdict{}, fmt.Errorf("baseline holds no benchmark records")
	}
	if len(cur) == 0 {
		return Verdict{}, fmt.Errorf("current run holds no benchmark records")
	}
	baseNs, baseAllocs, order := group(base)
	curNs, curAllocs, _ := group(cur)

	v := Verdict{BaselineLabel: baseLabel, CurrentLabel: curLabel}
	for _, name := range order {
		curSamples, ok := curNs[name]
		if !ok {
			v.Missing = append(v.Missing, name)
			continue
		}
		c := Comparison{
			Name:       name,
			BaselineNs: median(baseNs[name]),
			CurrentNs:  median(curSamples),
			Samples:    [2]int{len(baseNs[name]), len(curSamples)},
		}
		c.Delta = (c.CurrentNs - c.BaselineNs) / c.BaselineNs
		c.Threshold = math.Max(minThreshold, noiseK*spread(baseNs[name]))
		if c.Delta > c.Threshold {
			c.Regression = true
			c.Reason = fmt.Sprintf("ns/op +%.1f%% exceeds the %.1f%% noise-adjusted threshold", 100*c.Delta, 100*c.Threshold)
		}
		if ba, ok := baseAllocs[name]; ok {
			if ca, ok := curAllocs[name]; ok {
				bm, cm := median(ba), median(ca)
				c.BaselineAllocs, c.CurrentAllocs = &bm, &cm
				// Allocation counts are deterministic; any growth is a
				// real change, not noise.
				if cm > bm {
					c.Regression = true
					if c.Reason != "" {
						c.Reason += "; "
					}
					c.Reason += fmt.Sprintf("allocs/op grew %g -> %g", bm, cm)
				}
			}
		}
		if c.Regression {
			v.Regressions++
		}
		v.Benchmarks = append(v.Benchmarks, c)
	}
	return v, nil
}
