package main

import (
	"bytes"
	"context"
	"encoding/json"
	"io"
	"log"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"sdbp/internal/serve"
)

// newBackend starts a real serve.Server for the client to talk to.
func newBackend(t *testing.T) *httptest.Server {
	t.Helper()
	s := serve.New(serve.Config{Log: log.New(io.Discard, "", 0), BatchWait: time.Millisecond})
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(func() {
		ts.Close()
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		s.Shutdown(ctx)
	})
	return ts
}

func TestCtlSubmitAddrGetMetrics(t *testing.T) {
	ts := newBackend(t)

	var out, errBuf bytes.Buffer
	code := run([]string{"submit", "-server", ts.URL, "-policy", "LRU", "-bench", "456.hmmer", "-scale", "0.01"}, &out, &errBuf)
	if code != 0 {
		t.Fatalf("submit exit %d; stderr: %s", code, errBuf.String())
	}
	var manifest struct {
		Schema int    `json:"schema"`
		Addr   string `json:"addr"`
	}
	if err := json.Unmarshal(out.Bytes(), &manifest); err != nil || manifest.Schema != serve.ResultSchema {
		t.Fatalf("submit output is not a manifest (err=%v): %s", err, out.String())
	}

	// addr is offline: no server flag, same spec, must name the same
	// content address the server reported.
	var addrOut bytes.Buffer
	if code := run([]string{"addr", "-policy", "LRU", "-bench", "456.hmmer", "-scale", "0.01"}, &addrOut, &errBuf); code != 0 {
		t.Fatalf("addr exit %d; stderr: %s", code, errBuf.String())
	}
	addr := strings.TrimSpace(addrOut.String())
	if addr != manifest.Addr {
		t.Fatalf("offline addr %q != server-reported addr %q", addr, manifest.Addr)
	}

	var getOut bytes.Buffer
	if code := run([]string{"get", "-server", ts.URL, addr}, &getOut, &errBuf); code != 0 {
		t.Fatalf("get exit %d; stderr: %s", code, errBuf.String())
	}
	if !bytes.Equal(getOut.Bytes(), out.Bytes()) {
		t.Error("get returned a different manifest than submit")
	}

	var metricsOut bytes.Buffer
	if code := run([]string{"metrics", "-server", ts.URL}, &metricsOut, &errBuf); code != 0 {
		t.Fatalf("metrics exit %d; stderr: %s", code, errBuf.String())
	}
	var snap struct {
		Counters map[string]uint64 `json:"counters"`
	}
	if err := json.Unmarshal(metricsOut.Bytes(), &snap); err != nil || snap.Counters["serve_submits"] == 0 {
		t.Errorf("metrics output unusable (err=%v): %s", err, metricsOut.String())
	}
}

func TestCtlSubmitFromSpecFile(t *testing.T) {
	ts := newBackend(t)
	spec := filepath.Join(t.TempDir(), "exp.json")
	if err := os.WriteFile(spec, []byte(`{"policy":"LRU","workloads":["456.hmmer"],"scale":0.01}`), 0o644); err != nil {
		t.Fatal(err)
	}
	var out, errBuf bytes.Buffer
	if code := run([]string{"submit", "-server", ts.URL, "-spec", spec}, &out, &errBuf); code != 0 {
		t.Fatalf("submit -spec exit %d; stderr: %s", code, errBuf.String())
	}
	// A typo'd field fails locally, naming the file, before any network.
	bad := filepath.Join(t.TempDir(), "bad.json")
	os.WriteFile(bad, []byte(`{"policy":"LRU","wrkloads":["x"]}`), 0o644)
	errBuf.Reset()
	if code := run([]string{"submit", "-server", "http://127.0.0.1:1", "-spec", bad}, &out, &errBuf); code != 2 {
		t.Errorf("typo'd spec file: exit %d, want 2 (local strict parse)", code)
	}
	if !strings.Contains(errBuf.String(), "bad.json") {
		t.Errorf("error does not name the offending file: %s", errBuf.String())
	}
}

// TestCtlSubmitHonorsBackpressure: a 429 with Retry-After is retried
// after the server's hint, not hammered.
func TestCtlSubmitHonorsBackpressure(t *testing.T) {
	var calls int
	var firstRetryAt time.Time
	backend := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		calls++
		if calls == 1 {
			w.Header().Set("Retry-After", "1")
			w.WriteHeader(http.StatusTooManyRequests)
			json.NewEncoder(w).Encode(map[string]string{"error": "queue full"})
			return
		}
		firstRetryAt = time.Now()
		w.Write([]byte(`{"schema":1,"spec":"stub","addr":"x"}`))
	}))
	defer backend.Close()

	start := time.Now()
	var out, errBuf bytes.Buffer
	code := run([]string{"submit", "-server", backend.URL, "-policy", "LRU", "-retry", "2"}, &out, &errBuf)
	if code != 0 {
		t.Fatalf("submit exit %d; stderr: %s", code, errBuf.String())
	}
	if calls != 2 {
		t.Errorf("server saw %d calls, want 2 (one reject, one retry)", calls)
	}
	if wait := firstRetryAt.Sub(start); wait < 900*time.Millisecond {
		t.Errorf("retry arrived after %s, want >= ~1s (the Retry-After hint)", wait)
	}
	if !strings.Contains(errBuf.String(), "retrying") {
		t.Errorf("stderr does not mention the retry: %s", errBuf.String())
	}
}

func TestCtlUsageErrors(t *testing.T) {
	var out, errBuf bytes.Buffer
	if code := run(nil, &out, &errBuf); code != 2 {
		t.Errorf("no args: exit %d, want 2", code)
	}
	if code := run([]string{"bogus"}, &out, &errBuf); code != 2 {
		t.Errorf("unknown command: exit %d, want 2", code)
	}
	if code := run([]string{"submit", "-spec", "a", "-policy", "b"}, &out, &errBuf); code != 2 {
		t.Errorf("-spec and -policy together: exit %d, want 2", code)
	}
	if code := run([]string{"get", "-server", "http://x", "nothex"}, &out, &errBuf); code != 2 {
		t.Errorf("invalid get address: exit %d, want 2", code)
	}
}

// TestCtlWatchTraceMetricsProm drives the observability subcommands
// against a real backend: watch replays a finished job's lifecycle in
// order, trace -check validates the reconciled span tree, and
// metrics -format prom -lint round-trips the Prometheus exposition.
func TestCtlWatchTraceMetricsProm(t *testing.T) {
	ts := newBackend(t)

	var out, errBuf bytes.Buffer
	if code := run([]string{"submit", "-server", ts.URL, "-policy", "LRU", "-bench", "456.hmmer", "-scale", "0.01"}, &out, &errBuf); code != 0 {
		t.Fatalf("submit exit %d; stderr: %s", code, errBuf.String())
	}
	var manifest struct {
		Addr string `json:"addr"`
	}
	if err := json.Unmarshal(out.Bytes(), &manifest); err != nil {
		t.Fatal(err)
	}

	var watchOut bytes.Buffer
	errBuf.Reset()
	if code := run([]string{"watch", "-server", ts.URL, manifest.Addr}, &watchOut, &errBuf); code != 0 {
		t.Fatalf("watch exit %d; stderr: %s", code, errBuf.String())
	}
	lines := strings.Fields(strings.ReplaceAll(watchOut.String(), "\n", " "))
	first, last := lines[0], lines[len(lines)-1]
	if first != "submitted" || last != "done" {
		t.Errorf("watch output bracket = %q...%q, want submitted...done\n%s", first, last, watchOut.String())
	}
	if !strings.Contains(watchOut.String(), "[1/1]") {
		t.Errorf("watch shows no interval progress:\n%s", watchOut.String())
	}

	var traceOut bytes.Buffer
	errBuf.Reset()
	if code := run([]string{"trace", "-server", ts.URL, "-check", manifest.Addr}, &traceOut, &errBuf); code != 0 {
		t.Fatalf("trace -check exit %d; stderr: %s", code, errBuf.String())
	}
	if !strings.Contains(errBuf.String(), "trace ok") {
		t.Errorf("trace -check did not confirm: %s", errBuf.String())
	}
	if !strings.Contains(traceOut.String(), "stage:execute") {
		t.Errorf("trace output missing pipeline stages: %s", traceOut.String())
	}

	var chromeOut bytes.Buffer
	if code := run([]string{"trace", "-server", ts.URL, "-format", "chrome", manifest.Addr}, &chromeOut, &errBuf); code != 0 {
		t.Fatalf("trace -format chrome exit %d; stderr: %s", code, errBuf.String())
	}
	if !strings.Contains(chromeOut.String(), "traceEvents") {
		t.Errorf("chrome export malformed: %s", chromeOut.String())
	}

	var promOut bytes.Buffer
	errBuf.Reset()
	if code := run([]string{"metrics", "-server", ts.URL, "-format", "prom", "-lint"}, &promOut, &errBuf); code != 0 {
		t.Fatalf("metrics -format prom -lint exit %d; stderr: %s", code, errBuf.String())
	}
	if !strings.Contains(promOut.String(), "serve_submits_total") {
		t.Errorf("prom exposition missing serve_submits_total: %s", promOut.String())
	}
	if !strings.Contains(errBuf.String(), "exposition ok") {
		t.Errorf("lint did not confirm: %s", errBuf.String())
	}
}

// TestCtlWatchTraceUsageErrors: flag validation for the new
// subcommands fails fast, before any network traffic.
func TestCtlWatchTraceUsageErrors(t *testing.T) {
	var out, errBuf bytes.Buffer
	if code := run([]string{"watch", "-server", "http://x", "nothex"}, &out, &errBuf); code != 2 {
		t.Errorf("watch bad addr: exit %d, want 2", code)
	}
	if code := run([]string{"trace", "-server", "http://x", "nothex"}, &out, &errBuf); code != 2 {
		t.Errorf("trace bad addr: exit %d, want 2", code)
	}
	addr := strings.Repeat("ab", 32)
	if code := run([]string{"trace", "-server", "http://x", "-format", "chrome", "-check", addr}, &out, &errBuf); code != 2 {
		t.Errorf("trace -check with -format chrome: exit %d, want 2", code)
	}
	if code := run([]string{"metrics", "-server", "http://x", "-lint"}, &out, &errBuf); code != 2 {
		t.Errorf("metrics -lint without -format prom: exit %d, want 2", code)
	}
	if code := run([]string{"metrics", "-server", "http://x", "-format", "bogus"}, &out, &errBuf); code != 2 {
		t.Errorf("metrics bogus format: exit %d, want 2", code)
	}
}
