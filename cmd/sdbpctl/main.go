// Command sdbpctl is the submit/poll client for the sdbpd simulation
// service.
//
//	sdbpctl submit -server URL -spec exp.json          # submit a spec file
//	sdbpctl submit -server URL -policy Sampler -bench 456.hmmer -scale 0.1
//	sdbpctl addr   -spec exp.json                      # print the content address, offline
//	sdbpctl get    -server URL ADDR -wait 30s          # poll a result by address
//	sdbpctl watch  -server URL ADDR                    # stream a job's live progress
//	sdbpctl trace  -server URL ADDR [-check]           # fetch (and validate) a job's trace
//	sdbpctl metrics -server URL [-format prom] [-lint] # dump the metrics snapshot
//
// submit prints the result manifest (JSON) on stdout. Backpressure is
// honored, not retried into: on 429/503 the client sleeps the server's
// Retry-After hint and tries again, up to -retry times, then gives up
// with the server's error.
package main

import (
	"bufio"
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"strconv"
	"strings"
	"time"

	"sdbp/internal/exp"
	"sdbp/internal/obs"
	"sdbp/internal/serve"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func usage(stderr io.Writer) int {
	fmt.Fprintln(stderr, "usage: sdbpctl {submit|get|addr|watch|trace|metrics} [flags]  (run a subcommand with -h for its flags)")
	return 2
}

func run(args []string, stdout, stderr io.Writer) int {
	if len(args) == 0 {
		return usage(stderr)
	}
	cmd, rest := args[0], args[1:]
	switch cmd {
	case "submit":
		return runSubmit(rest, stdout, stderr)
	case "get":
		return runGet(rest, stdout, stderr)
	case "addr":
		return runAddr(rest, stdout, stderr)
	case "watch":
		return runWatch(rest, stdout, stderr)
	case "trace":
		return runTrace(rest, stdout, stderr)
	case "metrics":
		return runMetrics(rest, stdout, stderr)
	default:
		fmt.Fprintf(stderr, "sdbpctl: unknown command %q\n", cmd)
		return usage(stderr)
	}
}

// specFromFlags assembles the submission body from -spec FILE (raw
// pass-through after a strict local parse, so typos fail here with a
// filename instead of at the server) or from -policy/-bench/-mix.
func specFromFlags(specFile, policy, bench, mix string, scale float64) ([]byte, error) {
	if (specFile == "") == (policy == "") {
		return nil, fmt.Errorf("sdbpctl: exactly one of -spec or -policy is required")
	}
	var s exp.Spec
	if specFile != "" {
		data, err := os.ReadFile(specFile)
		if err != nil {
			return nil, fmt.Errorf("sdbpctl: %w", err)
		}
		dec := json.NewDecoder(bytes.NewReader(data))
		dec.DisallowUnknownFields()
		if err := dec.Decode(&s); err != nil {
			return nil, fmt.Errorf("sdbpctl: parsing %s: %w", specFile, err)
		}
	} else {
		s.Policy = policy
		s.Workloads = splitNames(bench)
		s.Mixes = splitNames(mix)
		if len(s.Workloads) == 0 && len(s.Mixes) == 0 {
			s.Workloads = []string{"subset"}
		}
	}
	if s.Scale == 0 && scale != 0 {
		s.Scale = scale
	}
	return json.Marshal(s)
}

func splitNames(s string) []string {
	var out []string
	for _, n := range strings.Split(s, ",") {
		if n = strings.TrimSpace(n); n != "" {
			out = append(out, n)
		}
	}
	return out
}

func runSubmit(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("sdbpctl submit", flag.ContinueOnError)
	fs.SetOutput(stderr)
	server := fs.String("server", "http://127.0.0.1:8344", "sdbpd base URL")
	specFile := fs.String("spec", "", "spec JSON file to submit")
	policy := fs.String("policy", "", "policy preset or registry expression (alternative to -spec)")
	bench := fs.String("bench", "", "with -policy: comma-separated benchmarks, 'subset', or 'all'")
	mix := fs.String("mix", "", "with -policy: comma-separated quad-core mix names or 'all'")
	scale := fs.Float64("scale", 0, "stream length multiplier (0 = spec/server default)")
	retry := fs.Int("retry", 0, "attempts to retry a 429/503 after its Retry-After hint")
	httpTimeout := fs.Duration("http-timeout", 15*time.Minute, "per-request HTTP timeout (submits block until the job finishes)")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	body, err := specFromFlags(*specFile, *policy, *bench, *mix, *scale)
	if err != nil {
		fmt.Fprintln(stderr, err)
		return 2
	}

	client := &http.Client{Timeout: *httpTimeout}
	for attempt := 0; ; attempt++ {
		resp, err := client.Post(*server+"/v1/jobs", "application/json", bytes.NewReader(body))
		if err != nil {
			fmt.Fprintln(stderr, "sdbpctl:", err)
			return 1
		}
		data, rerr := io.ReadAll(resp.Body)
		resp.Body.Close()
		if rerr != nil {
			fmt.Fprintln(stderr, "sdbpctl:", rerr)
			return 1
		}
		backpressured := resp.StatusCode == http.StatusTooManyRequests ||
			resp.StatusCode == http.StatusServiceUnavailable
		if backpressured && attempt < *retry {
			delay := retryAfter(resp, time.Second)
			fmt.Fprintf(stderr, "sdbpctl: server busy (%d); retrying in %s (%d/%d)\n",
				resp.StatusCode, delay, attempt+1, *retry)
			time.Sleep(delay)
			continue
		}
		stdout.Write(data)
		if resp.StatusCode != http.StatusOK {
			fmt.Fprintf(stderr, "sdbpctl: submit failed: HTTP %d\n", resp.StatusCode)
			return 1
		}
		if hit := resp.Header.Get("X-Sdbpd-Cache"); hit != "" {
			fmt.Fprintf(stderr, "sdbpctl: result source: %s (addr %s)\n", hit, resp.Header.Get("X-Sdbpd-Addr"))
		}
		return 0
	}
}

// retryAfter reads the server's Retry-After hint in seconds.
func retryAfter(resp *http.Response, fallback time.Duration) time.Duration {
	if v := resp.Header.Get("Retry-After"); v != "" {
		if secs, err := strconv.Atoi(v); err == nil && secs > 0 {
			return time.Duration(secs) * time.Second
		}
	}
	return fallback
}

func runGet(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("sdbpctl get", flag.ContinueOnError)
	fs.SetOutput(stderr)
	server := fs.String("server", "http://127.0.0.1:8344", "sdbpd base URL")
	wait := fs.Duration("wait", 0, "poll until the result exists or this deadline passes (0 = one shot)")
	every := fs.Duration("every", 500*time.Millisecond, "poll interval with -wait")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if fs.NArg() != 1 {
		fmt.Fprintln(stderr, "sdbpctl: get needs exactly one result address (see 'sdbpctl addr')")
		return 2
	}
	addr := fs.Arg(0)
	if !serve.ValidAddr(addr) {
		fmt.Fprintf(stderr, "sdbpctl: %q is not a result address (64 hex digits)\n", addr)
		return 2
	}

	client := &http.Client{Timeout: time.Minute}
	deadline := time.Now().Add(*wait)
	for {
		resp, err := client.Get(*server + "/v1/results/" + addr)
		if err != nil {
			fmt.Fprintln(stderr, "sdbpctl:", err)
			return 1
		}
		data, rerr := io.ReadAll(resp.Body)
		resp.Body.Close()
		if rerr != nil {
			fmt.Fprintln(stderr, "sdbpctl:", rerr)
			return 1
		}
		if resp.StatusCode == http.StatusOK {
			stdout.Write(data)
			return 0
		}
		if resp.StatusCode == http.StatusNotFound && *wait > 0 && time.Now().Before(deadline) {
			time.Sleep(*every)
			continue
		}
		stdout.Write(data)
		fmt.Fprintf(stderr, "sdbpctl: get failed: HTTP %d\n", resp.StatusCode)
		return 1
	}
}

// runAddr prints a spec's content address without contacting a
// server: resolve to the canonical expression, hash it. Useful for
// scripting get/poll loops.
func runAddr(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("sdbpctl addr", flag.ContinueOnError)
	fs.SetOutput(stderr)
	specFile := fs.String("spec", "", "spec JSON file")
	policy := fs.String("policy", "", "policy preset or registry expression (alternative to -spec)")
	bench := fs.String("bench", "", "with -policy: comma-separated benchmarks, 'subset', or 'all'")
	mix := fs.String("mix", "", "with -policy: comma-separated quad-core mix names or 'all'")
	scale := fs.Float64("scale", 0, "stream length multiplier")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	body, err := specFromFlags(*specFile, *policy, *bench, *mix, *scale)
	if err != nil {
		fmt.Fprintln(stderr, err)
		return 2
	}
	var s exp.Spec
	if err := json.Unmarshal(body, &s); err != nil {
		fmt.Fprintln(stderr, "sdbpctl:", err)
		return 1
	}
	resolved, err := s.Resolve()
	if err != nil {
		fmt.Fprintln(stderr, "sdbpctl:", err)
		return 1
	}
	fmt.Fprintln(stdout, serve.Addr(resolved.String()))
	return 0
}

// runWatch tails a job's server-sent event stream, rendering one line
// per lifecycle event and an updating counter for interval progress.
// It exits 0 when the job reaches "done", 1 when it reaches "failed".
func runWatch(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("sdbpctl watch", flag.ContinueOnError)
	fs.SetOutput(stderr)
	server := fs.String("server", "http://127.0.0.1:8344", "sdbpd base URL")
	wait := fs.Duration("wait", 0, "poll until the job feed appears or this deadline passes (0 = one shot)")
	every := fs.Duration("every", 250*time.Millisecond, "poll interval with -wait")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if fs.NArg() != 1 {
		fmt.Fprintln(stderr, "sdbpctl: watch needs exactly one job address (see 'sdbpctl addr')")
		return 2
	}
	addr := fs.Arg(0)
	if !serve.ValidAddr(addr) {
		fmt.Fprintf(stderr, "sdbpctl: %q is not a job address (64 hex digits)\n", addr)
		return 2
	}

	// Streaming: no client timeout; a finished job closes its stream.
	client := &http.Client{}
	deadline := time.Now().Add(*wait)
	var resp *http.Response
	for {
		r, err := client.Get(*server + "/v1/jobs/" + addr + "/events")
		if err != nil {
			fmt.Fprintln(stderr, "sdbpctl:", err)
			return 1
		}
		if r.StatusCode == http.StatusOK {
			resp = r
			break
		}
		io.Copy(io.Discard, r.Body)
		r.Body.Close()
		if r.StatusCode == http.StatusNotFound && *wait > 0 && time.Now().Before(deadline) {
			time.Sleep(*every)
			continue
		}
		fmt.Fprintf(stderr, "sdbpctl: watch failed: HTTP %d\n", r.StatusCode)
		return 1
	}
	defer resp.Body.Close()

	terminal := ""
	sc := bufio.NewScanner(resp.Body)
	for sc.Scan() {
		line := sc.Text()
		if !strings.HasPrefix(line, "data: ") {
			continue
		}
		var ev serve.JobEvent
		if err := json.Unmarshal([]byte(line[6:]), &ev); err != nil {
			fmt.Fprintln(stderr, "sdbpctl: bad event:", err)
			return 1
		}
		switch ev.Type {
		case "progress":
			fmt.Fprintf(stdout, "  [%d/%d] %s\n", ev.Done, ev.Total, ev.Detail)
		case "done", "failed":
			terminal = ev.Type
			fallthrough
		default:
			if ev.Detail != "" {
				fmt.Fprintf(stdout, "%s: %s\n", ev.Type, ev.Detail)
			} else {
				fmt.Fprintln(stdout, ev.Type)
			}
		}
	}
	if err := sc.Err(); err != nil {
		fmt.Fprintln(stderr, "sdbpctl:", err)
		return 1
	}
	switch terminal {
	case "done":
		return 0
	case "failed":
		return 1
	default:
		fmt.Fprintln(stderr, "sdbpctl: event stream ended without a terminal event")
		return 1
	}
}

// runTrace fetches a job's trace. -check additionally validates it
// with the same reconciliation pass the server's tests use; -format
// chrome asks for the trace-event document chrome://tracing loads.
func runTrace(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("sdbpctl trace", flag.ContinueOnError)
	fs.SetOutput(stderr)
	server := fs.String("server", "http://127.0.0.1:8344", "sdbpd base URL")
	format := fs.String("format", "json", "output format: json or chrome (trace-event)")
	check := fs.Bool("check", false, "validate the trace: structure, containment, stage/latency reconciliation")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if fs.NArg() != 1 {
		fmt.Fprintln(stderr, "sdbpctl: trace needs exactly one job address (see 'sdbpctl addr')")
		return 2
	}
	addr := fs.Arg(0)
	if !serve.ValidAddr(addr) {
		fmt.Fprintf(stderr, "sdbpctl: %q is not a job address (64 hex digits)\n", addr)
		return 2
	}
	url := *server + "/v1/traces/" + addr
	if *format == "chrome" {
		url += "?format=chrome"
	} else if *format != "json" {
		fmt.Fprintf(stderr, "sdbpctl: unknown trace format %q (json or chrome)\n", *format)
		return 2
	}
	if *check && *format == "chrome" {
		fmt.Fprintln(stderr, "sdbpctl: -check needs -format json (the chrome document drops span records)")
		return 2
	}

	client := &http.Client{Timeout: time.Minute}
	resp, err := client.Get(url)
	if err != nil {
		fmt.Fprintln(stderr, "sdbpctl:", err)
		return 1
	}
	data, rerr := io.ReadAll(resp.Body)
	resp.Body.Close()
	if rerr != nil {
		fmt.Fprintln(stderr, "sdbpctl:", rerr)
		return 1
	}
	stdout.Write(data)
	if resp.StatusCode != http.StatusOK {
		fmt.Fprintf(stderr, "sdbpctl: trace failed: HTTP %d\n", resp.StatusCode)
		return 1
	}
	if *check {
		var tb struct {
			Spans []obs.SpanRecord `json:"spans"`
		}
		if err := json.Unmarshal(data, &tb); err != nil {
			fmt.Fprintln(stderr, "sdbpctl: trace body does not parse:", err)
			return 1
		}
		if err := serve.CheckTrace(tb.Spans); err != nil {
			fmt.Fprintln(stderr, "sdbpctl: trace check failed:", err)
			return 1
		}
		fmt.Fprintf(stderr, "sdbpctl: trace ok (%d spans, reconciles)\n", len(tb.Spans))
	}
	return 0
}

func runMetrics(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("sdbpctl metrics", flag.ContinueOnError)
	fs.SetOutput(stderr)
	server := fs.String("server", "http://127.0.0.1:8344", "sdbpd base URL")
	format := fs.String("format", "json", "wire format to request: json or prom")
	lint := fs.Bool("lint", false, "with -format prom: fail unless the exposition passes the Prometheus text-format lint")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	switch *format {
	case "json", "prom":
	default:
		fmt.Fprintf(stderr, "sdbpctl: unknown metrics format %q (json or prom)\n", *format)
		return 2
	}
	if *lint && *format != "prom" {
		fmt.Fprintln(stderr, "sdbpctl: -lint needs -format prom")
		return 2
	}
	client := &http.Client{Timeout: time.Minute}
	resp, err := client.Get(*server + "/metrics?format=" + *format)
	if err != nil {
		fmt.Fprintln(stderr, "sdbpctl:", err)
		return 1
	}
	data, rerr := io.ReadAll(resp.Body)
	resp.Body.Close()
	if rerr != nil {
		fmt.Fprintln(stderr, "sdbpctl:", rerr)
		return 1
	}
	stdout.Write(data)
	if resp.StatusCode != http.StatusOK {
		fmt.Fprintf(stderr, "sdbpctl: metrics failed: HTTP %d\n", resp.StatusCode)
		return 1
	}
	if *lint {
		if err := obs.LintPrometheus(data); err != nil {
			fmt.Fprintln(stderr, "sdbpctl: exposition lint failed:", err)
			return 1
		}
		fmt.Fprintln(stderr, "sdbpctl: exposition ok")
	}
	return 0
}
