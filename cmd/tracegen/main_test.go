package main

import (
	"bytes"
	"path/filepath"
	"strings"
	"testing"
)

func TestRunFlagValidation(t *testing.T) {
	cases := []struct {
		name string
		args []string
		want int
	}{
		{"unknown flag", []string{"-nope"}, 2},
		{"positional args", []string{"extra"}, 2},
		{"unknown benchmark", []string{"-bench", "999.nothing"}, 2},
		{"missing input file", []string{"-in", filepath.Join(t.TempDir(), "absent.trc")}, 2},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			var stdout, stderr bytes.Buffer
			if code := run(tc.args, &stdout, &stderr); code != tc.want {
				t.Errorf("run(%v) = %d, want %d (stderr: %s)", tc.args, code, tc.want, stderr.String())
			}
		})
	}
}

func TestRunSummary(t *testing.T) {
	var stdout, stderr bytes.Buffer
	code := run([]string{"-bench", "456.hmmer", "-scale", "0.01"}, &stdout, &stderr)
	if code != 0 {
		t.Fatalf("exit %d, stderr: %s", code, stderr.String())
	}
	out := stdout.String()
	for _, want := range []string{"benchmark:", "456.hmmer", "accesses:", "footprint:", "writes:"} {
		if !strings.Contains(out, want) {
			t.Errorf("summary output missing %q:\n%s", want, out)
		}
	}
}

func TestRunHeadAndCSV(t *testing.T) {
	var stdout, stderr bytes.Buffer
	code := run([]string{"-bench", "429.mcf", "-scale", "0.01", "-head", "5", "-summary=false"}, &stdout, &stderr)
	if code != 0 {
		t.Fatalf("exit %d, stderr: %s", code, stderr.String())
	}
	// Header plus five access rows.
	if lines := strings.Count(strings.TrimRight(stdout.String(), "\n"), "\n") + 1; lines != 6 {
		t.Errorf("-head 5 printed %d lines, want 6:\n%s", lines, stdout.String())
	}

	stdout.Reset()
	code = run([]string{"-bench", "429.mcf", "-scale", "0.01", "-csv", "-summary=false"}, &stdout, &stderr)
	if code != 0 {
		t.Fatalf("exit %d, stderr: %s", code, stderr.String())
	}
	if !strings.HasPrefix(stdout.String(), "pc,addr,write,dependent,gap\n") {
		t.Errorf("CSV output missing header:\n%.100s", stdout.String())
	}
	if strings.Count(stdout.String(), "\n") < 10 {
		t.Errorf("CSV output suspiciously short:\n%s", stdout.String())
	}
}

// TestRunTraceFileRoundTrip writes a binary trace with -out, reads it
// back with -in, and checks the summaries agree — the end-to-end
// contract between the generator, the file format and the CLI.
func TestRunTraceFileRoundTrip(t *testing.T) {
	traceFile := filepath.Join(t.TempDir(), "hmmer.trc")

	var genOut, genErr bytes.Buffer
	code := run([]string{"-bench", "456.hmmer", "-scale", "0.01", "-out", traceFile}, &genOut, &genErr)
	if code != 0 {
		t.Fatalf("generate: exit %d, stderr: %s", code, genErr.String())
	}
	if !strings.Contains(genErr.String(), "wrote") {
		t.Errorf("generate did not report a write: %s", genErr.String())
	}

	var readOut, readErr bytes.Buffer
	code = run([]string{"-in", traceFile}, &readOut, &readErr)
	if code != 0 {
		t.Fatalf("read back: exit %d, stderr: %s", code, readErr.String())
	}

	// Everything after the "benchmark:" line (name/class differ by
	// construction) must be identical between generated and reloaded.
	tail := func(s string) string {
		_, rest, ok := strings.Cut(s, "\n")
		if !ok {
			t.Fatalf("summary too short: %q", s)
		}
		return rest
	}
	if g, r := tail(genOut.String()), tail(readOut.String()); g != r {
		t.Errorf("summaries diverge across the file round trip:\ngenerated:\n%s\nreloaded:\n%s", g, r)
	}
}
