// Command tracegen generates and inspects the suite's synthetic memory
// reference traces. It can print a human-readable head of a trace,
// summarize its statistical properties (footprint, code sites, gap
// distribution, write fraction), or export it as CSV for external
// tools.
//
//	tracegen -bench 456.hmmer -summary
//	tracegen -bench 429.mcf -head 20
//	tracegen -bench 462.libquantum -csv > libquantum.csv
package main

import (
	"bufio"
	"flag"
	"fmt"
	"io"
	"os"

	"sdbp/internal/mem"
	"sdbp/internal/trace"
	"sdbp/internal/workloads"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("tracegen", flag.ContinueOnError)
	fs.SetOutput(stderr)
	bench := fs.String("bench", "456.hmmer", "benchmark to generate")
	scale := fs.Float64("scale", 0.05, "stream length multiplier")
	head := fs.Int("head", 0, "print the first N accesses")
	csv := fs.Bool("csv", false, "dump the whole trace as CSV (pc,addr,write,dep,gap)")
	summary := fs.Bool("summary", true, "print trace statistics")
	outFile := fs.String("out", "", "write the trace in sdbp binary format to this file")
	inFile := fs.String("in", "", "read a binary trace file instead of generating")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if fs.NArg() != 0 {
		fmt.Fprintln(stderr, "tracegen: unexpected positional arguments:", fs.Args())
		return 2
	}

	var gen trace.Generator
	var name, class string
	if *inFile != "" {
		f, err := os.Open(*inFile)
		if err != nil {
			fmt.Fprintln(stderr, "tracegen:", err)
			return 2
		}
		defer f.Close()
		r, err := trace.NewReader(f)
		if err != nil {
			fmt.Fprintln(stderr, "tracegen:", err)
			return 2
		}
		gen, name, class = r, *inFile, "trace file"
	} else {
		w, err := workloads.ByName(*bench)
		if err != nil {
			fmt.Fprintln(stderr, "tracegen:", err)
			return 2
		}
		gen, name, class = w.Generator(*scale), w.Name, w.Class
	}

	if *outFile != "" {
		f, err := os.Create(*outFile)
		if err != nil {
			fmt.Fprintln(stderr, "tracegen:", err)
			return 2
		}
		n, err := trace.Write(f, gen)
		if cerr := f.Close(); err == nil {
			err = cerr
		}
		if err != nil {
			fmt.Fprintln(stderr, "tracegen:", err)
			return 2
		}
		fmt.Fprintf(stderr, "tracegen: wrote %d accesses to %s\n", n, *outFile)
		gen.Reset()
	}
	out := bufio.NewWriter(stdout)
	defer out.Flush()

	if *csv {
		fmt.Fprintln(out, "pc,addr,write,dependent,gap")
		for {
			a, ok := gen.Next()
			if !ok {
				return 0
			}
			fmt.Fprintf(out, "%#x,%#x,%t,%t,%d\n", a.PC, a.Addr, a.Write, a.DependentLoad, a.Gap)
		}
	}

	if *head > 0 {
		fmt.Fprintf(out, "%-18s %-18s %-5s %-4s %s\n", "pc", "addr", "write", "dep", "gap")
		for i := 0; i < *head; i++ {
			a, ok := gen.Next()
			if !ok {
				break
			}
			fmt.Fprintf(out, "%#-18x %#-18x %-5t %-4t %d\n", a.PC, a.Addr, a.Write, a.DependentLoad, a.Gap)
		}
		gen.Reset()
	}

	if !*summary {
		return 0
	}
	var (
		accesses, writes, deps uint64
		instructions           uint64
		blocks                 = map[uint64]uint64{}
		pcs                    = map[uint64]uint64{}
	)
	for {
		a, ok := gen.Next()
		if !ok {
			break
		}
		accesses++
		instructions += uint64(a.Gap) + 1
		if a.Write {
			writes++
		}
		if a.DependentLoad {
			deps++
		}
		blocks[mem.BlockNumber(a.Addr)]++
		pcs[a.PC]++
	}
	if accesses == 0 {
		fmt.Fprintln(out, "empty trace")
		return 0
	}
	var maxTouch uint64
	for _, n := range blocks {
		if n > maxTouch {
			maxTouch = n
		}
	}
	fmt.Fprintf(out, "benchmark:      %s (%s)\n", name, class)
	fmt.Fprintf(out, "accesses:       %d (%d instructions, %.1f%% memory)\n",
		accesses, instructions, float64(accesses)/float64(instructions)*100)
	fmt.Fprintf(out, "footprint:      %d blocks (%.2f MB)\n",
		len(blocks), float64(len(blocks))*mem.BlockSize/(1<<20))
	fmt.Fprintf(out, "code sites:     %d\n", len(pcs))
	fmt.Fprintf(out, "writes:         %.1f%%\n", float64(writes)/float64(accesses)*100)
	fmt.Fprintf(out, "dependent:      %.1f%%\n", float64(deps)/float64(accesses)*100)
	fmt.Fprintf(out, "touches/block:  mean %.2f, max %d\n",
		float64(accesses)/float64(len(blocks)), maxTouch)
	return 0
}
