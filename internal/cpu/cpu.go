// Package cpu implements the trace-driven out-of-order core timing
// model the reproduction substitutes for CMP$im: a 4-wide, 8-stage
// pipeline with a 128-entry instruction window. Independent misses
// overlap inside the window (memory-level parallelism); dependent loads
// serialize; retirement is in order. The model turns the cache
// hierarchy's per-access latencies into cycles, hence IPC.
package cpu

// Config sets the core's microarchitectural parameters. The defaults
// (via DefaultConfig) model the paper's Intel Core i7 (Nehalem)-like
// core.
type Config struct {
	// Width is the fetch/retire width in instructions per cycle.
	Width int
	// WindowSize is the instruction window (ROB) capacity.
	WindowSize int
	// PipelineDepth is the front-end depth in cycles; it contributes a
	// fixed startup cost.
	PipelineDepth int
	// DRAMInterval is the minimum spacing, in cycles, between memory
	// accesses that miss all caches — the off-chip bandwidth limit that
	// keeps unlimited memory-level parallelism from hiding every miss.
	DRAMInterval int
}

// DefaultConfig returns the paper's core: 4-wide, 8-stage, 128-entry
// window, with one off-chip line transfer per 16 cycles.
func DefaultConfig() Config {
	return Config{Width: 4, WindowSize: 128, PipelineDepth: 8, DRAMInterval: 16}
}

// Latencies for the memory hierarchy levels, in cycles. These follow
// the Nehalem-class parameters common to the cache papers the
// reproduction compares with.
const (
	LatL1  = 2   // L1 hit
	LatL2  = 12  // L2 hit
	LatLLC = 30  // LLC hit
	LatMem = 200 // memory access
)

// memOp tracks one in-flight memory instruction for the window
// occupancy constraint.
type memOp struct {
	instr  uint64 // global instruction index of the op
	retire float64
}

// Core accumulates timing for one hardware thread's instruction stream.
type Core struct {
	cfg Config

	// invWidth is 1/Width when that reciprocal is exact (Width a power
	// of two), else 0; Record then multiplies instead of dividing with
	// bit-identical results.
	invWidth float64

	instructions uint64  // total instructions fetched (gap + memory ops)
	fetch        float64 // cycle the fetch frontier has reached
	lastRetire   float64 // retire time of the newest retired-order op

	// window is a power-of-two ring of the memory ops younger than
	// WindowSize instructions; the head's retire time gates fetch when
	// the window wraps. Ops retire distinct instructions, so at most
	// WindowSize are live and the ring never overflows.
	window      []memOp
	windowMask  uint32
	windowHead  uint32
	windowTail  uint32
	gatedRetire float64 // retire time of the newest op fallen out of the window

	depReady float64 // completion time of the last load (dependence chain)
	dramFree float64 // cycle the off-chip channel next frees up
}

// New returns a core timing model.
func New(cfg Config) *Core {
	if cfg.Width < 1 || cfg.WindowSize < 1 {
		panic("cpu: invalid core configuration")
	}
	ringSize := 1
	for ringSize <= cfg.WindowSize {
		ringSize <<= 1
	}
	c := &Core{
		cfg:    cfg,
		fetch:  float64(cfg.PipelineDepth),
		window: make([]memOp, ringSize),
	}
	c.windowMask = uint32(ringSize - 1)
	if cfg.Width&(cfg.Width-1) == 0 {
		c.invWidth = 1 / float64(cfg.Width)
	}
	return c
}

// perWidth converts an instruction count to fetch cycles: n/Width, via
// the exact reciprocal when one exists.
func (c *Core) perWidth(n float64) float64 {
	if c.invWidth != 0 {
		return n * c.invWidth
	}
	return n / float64(c.cfg.Width)
}

// Record accounts one memory instruction preceded by gap non-memory
// instructions. latency is the access's completion latency in cycles
// (LatL1..LatMem); dependent marks a load whose address depends on the
// previous load.
func (c *Core) Record(gap uint32, latency int, dependent bool) {
	// Fetch the gap instructions and the memory op itself.
	c.instructions += uint64(gap) + 1
	c.fetch += c.perWidth(float64(gap) + 1)

	// Window constraint: the op cannot be fetched until the instruction
	// WindowSize older has retired. Pop ops that have fallen out of the
	// window, remembering the newest popped retire time.
	for c.windowHead != c.windowTail &&
		c.window[c.windowHead&c.windowMask].instr+uint64(c.cfg.WindowSize) <= c.instructions {
		c.gatedRetire = c.window[c.windowHead&c.windowMask].retire
		c.windowHead++
	}
	if c.gatedRetire > c.fetch {
		c.fetch = c.gatedRetire
	}

	issue := c.fetch
	if dependent && c.depReady > issue {
		issue = c.depReady
	}
	if latency >= LatMem {
		// Off-chip accesses contend for DRAM bandwidth.
		if c.dramFree > issue {
			issue = c.dramFree
		}
		c.dramFree = issue + float64(c.cfg.DRAMInterval)
	}
	complete := issue + float64(latency)
	c.depReady = complete

	// In-order retirement.
	retire := complete
	if c.lastRetire > retire {
		retire = c.lastRetire
	}
	c.lastRetire = retire

	c.window[c.windowTail&c.windowMask] = memOp{instr: c.instructions, retire: retire}
	c.windowTail++
}

// ChargeDRAM consumes one line transfer of off-chip bandwidth without
// retiring an instruction — the cost of a prefetch fill.
func (c *Core) ChargeDRAM() {
	start := c.dramFree
	if c.fetch > start {
		start = c.fetch
	}
	c.dramFree = start + float64(c.cfg.DRAMInterval)
}

// Tail accounts trailing non-memory instructions after the last access.
func (c *Core) Tail(gap uint32) {
	c.instructions += uint64(gap)
	c.fetch += c.perWidth(float64(gap))
}

// Instructions returns the number of instructions accounted so far.
func (c *Core) Instructions() uint64 { return c.instructions }

// Cycles returns the cycles elapsed: the later of the fetch frontier
// and the last retirement.
func (c *Core) Cycles() float64 {
	if c.lastRetire > c.fetch {
		return c.lastRetire
	}
	return c.fetch
}

// IPC returns instructions per cycle so far (0 before any instruction).
func (c *Core) IPC() float64 {
	cy := c.Cycles()
	if cy == 0 {
		return 0
	}
	return float64(c.instructions) / cy
}
