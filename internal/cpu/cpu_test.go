package cpu

import (
	"testing"
)

func newCore() *Core { return New(DefaultConfig()) }

func TestIPCBoundedByWidth(t *testing.T) {
	c := newCore()
	for i := 0; i < 10000; i++ {
		c.Record(3, LatL1, false)
	}
	if ipc := c.IPC(); ipc > 4.0 {
		t.Errorf("IPC %.2f exceeds the 4-wide front end", ipc)
	}
}

func TestL1HitsApproachWidth(t *testing.T) {
	c := newCore()
	for i := 0; i < 100000; i++ {
		c.Record(7, LatL1, false)
	}
	if ipc := c.IPC(); ipc < 3.5 {
		t.Errorf("IPC %.2f with pure L1 hits; want near 4", ipc)
	}
}

func TestMissesReduceIPC(t *testing.T) {
	fast, slow := newCore(), newCore()
	for i := 0; i < 10000; i++ {
		fast.Record(3, LatL1, false)
		slow.Record(3, LatMem, false)
	}
	if slow.IPC() >= fast.IPC() {
		t.Errorf("memory-bound IPC %.3f >= L1-bound IPC %.3f", slow.IPC(), fast.IPC())
	}
}

func TestDependentLoadsSerialize(t *testing.T) {
	indep, dep := newCore(), newCore()
	for i := 0; i < 5000; i++ {
		indep.Record(0, LatMem, false)
		dep.Record(0, LatMem, true)
	}
	// Dependent misses cannot overlap: each pays the full latency.
	if dep.IPC() >= indep.IPC()/2 {
		t.Errorf("dependent IPC %.4f not clearly below independent IPC %.4f",
			dep.IPC(), indep.IPC())
	}
	// A dependent chain retires one access per LatMem cycles at best.
	maxIPC := 1.0 / float64(LatMem)
	if got := dep.IPC(); got > maxIPC*1.05 {
		t.Errorf("dependent-chain IPC %.5f above the serialization bound %.5f", got, maxIPC)
	}
}

func TestWindowLimitsOverlap(t *testing.T) {
	// With a tiny window, independent misses cannot all overlap, so a
	// large window must be faster.
	small := New(Config{Width: 4, WindowSize: 8, PipelineDepth: 8, DRAMInterval: 0})
	big := New(Config{Width: 4, WindowSize: 512, PipelineDepth: 8, DRAMInterval: 0})
	for i := 0; i < 20000; i++ {
		small.Record(0, LatMem, false)
		big.Record(0, LatMem, false)
	}
	if big.IPC() <= small.IPC()*1.2 {
		t.Errorf("window 512 IPC %.4f not clearly above window 8 IPC %.4f",
			big.IPC(), small.IPC())
	}
}

func TestDRAMBandwidthBoundsMissRate(t *testing.T) {
	c := newCore()
	n := 20000
	for i := 0; i < n; i++ {
		c.Record(0, LatMem, false)
	}
	// Misses cannot complete faster than one per DRAMInterval cycles.
	minCycles := float64(n * DefaultConfig().DRAMInterval)
	if got := c.Cycles(); got < minCycles {
		t.Errorf("cycles %.0f below the DRAM bandwidth floor %.0f", got, minCycles)
	}
}

func TestInstructionsAccounting(t *testing.T) {
	c := newCore()
	c.Record(9, LatL1, false)
	c.Record(0, LatL2, false)
	c.Tail(5)
	if got := c.Instructions(); got != 9+1+0+1+5 {
		t.Errorf("instructions = %d, want 16", got)
	}
}

func TestCyclesMonotone(t *testing.T) {
	c := newCore()
	last := c.Cycles()
	for i := 0; i < 1000; i++ {
		c.Record(uint32(i%7), LatLLC, i%3 == 0)
		if cy := c.Cycles(); cy < last {
			t.Fatalf("cycles went backward: %.2f -> %.2f", last, cy)
		} else {
			last = cy
		}
	}
}

func TestZeroInstructionIPC(t *testing.T) {
	c := newCore()
	if c.IPC() != 0 {
		t.Error("IPC before any instruction should be 0")
	}
}

func TestNewPanicsOnInvalidConfig(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("no panic on zero-width core")
		}
	}()
	New(Config{Width: 0, WindowSize: 128})
}

func TestLatencyOrdering(t *testing.T) {
	if !(LatL1 < LatL2 && LatL2 < LatLLC && LatLLC < LatMem) {
		t.Error("latency constants are not ordered by hierarchy level")
	}
}

func TestWindowCompactionPreservesTiming(t *testing.T) {
	// Run long enough to trigger the internal slice compaction and
	// compare against a fresh identical run (determinism check).
	run := func() float64 {
		c := newCore()
		for i := 0; i < 300000; i++ {
			lat := LatL1
			if i%17 == 0 {
				lat = LatMem
			}
			c.Record(2, lat, false)
		}
		return c.Cycles()
	}
	if a, b := run(), run(); a != b {
		t.Errorf("timing not deterministic: %.2f vs %.2f", a, b)
	}
}
