package sim

import (
	"math"
	"testing"

	"sdbp/internal/cache"
	"sdbp/internal/dbrb"
	"sdbp/internal/hier"
	"sdbp/internal/policy"
	"sdbp/internal/predictor"
	"sdbp/internal/workloads"
)

const testScale = 0.02

func hmmer(t *testing.T) workloads.Workload {
	t.Helper()
	w, err := workloads.ByName("456.hmmer")
	if err != nil {
		t.Fatal(err)
	}
	return w
}

func TestRunSingleBasics(t *testing.T) {
	r := RunSingle(hmmer(t), policy.NewLRU(), SingleOptions{Scale: testScale})
	if r.Benchmark != "456.hmmer" || r.Policy != "LRU" {
		t.Errorf("labels = %s/%s", r.Benchmark, r.Policy)
	}
	if r.Instructions == 0 || r.IPC <= 0 || r.IPC > 4 {
		t.Errorf("instructions=%d ipc=%v", r.Instructions, r.IPC)
	}
	if r.MPKI <= 0 {
		t.Errorf("MPKI = %v", r.MPKI)
	}
	if r.LLC.Accesses == 0 {
		t.Error("LLC saw no traffic")
	}
	if r.Efficiency < 0 || r.Efficiency > 1 {
		t.Errorf("efficiency = %v", r.Efficiency)
	}
}

func TestRunSingleDeterministic(t *testing.T) {
	run := func() SingleResult {
		return RunSingle(hmmer(t), policy.NewLRU(), SingleOptions{Scale: testScale})
	}
	a, b := run(), run()
	if a.MPKI != b.MPKI || a.IPC != b.IPC || a.LLC != b.LLC {
		t.Error("runs not reproducible")
	}
}

func TestMPKIConsistency(t *testing.T) {
	r := RunSingle(hmmer(t), policy.NewLRU(), SingleOptions{Scale: testScale})
	want := float64(r.LLC.Misses) / (float64(r.Instructions) / 1000)
	if math.Abs(r.MPKI-want) > 1e-9 {
		t.Errorf("MPKI = %v, want %v", r.MPKI, want)
	}
}

func TestCaptureStreamMatchesLLC(t *testing.T) {
	r := RunSingle(hmmer(t), policy.NewLRU(), SingleOptions{Scale: testScale, CaptureStream: true})
	if uint64(len(r.Stream)) != r.LLC.Accesses {
		t.Errorf("captured %d, LLC accesses %d", len(r.Stream), r.LLC.Accesses)
	}
}

func TestCaptureStreamPolicyIndependent(t *testing.T) {
	// The L2-miss stream must be identical under any LLC policy — the
	// property the MIN methodology rests on.
	lru := RunSingle(hmmer(t), policy.NewLRU(), SingleOptions{Scale: testScale, CaptureStream: true})
	smp := RunSingle(hmmer(t),
		dbrb.New(policy.NewLRU(), predictor.NewSampler(predictor.DefaultSamplerConfig())),
		SingleOptions{Scale: testScale, CaptureStream: true})
	if len(lru.Stream) != len(smp.Stream) {
		t.Fatalf("stream lengths differ: %d vs %d", len(lru.Stream), len(smp.Stream))
	}
	for i := range lru.Stream {
		if lru.Stream[i] != smp.Stream[i] {
			t.Fatalf("streams diverge at %d", i)
		}
	}
}

func TestAccuracyOnlyForDBRB(t *testing.T) {
	plain := RunSingle(hmmer(t), policy.NewLRU(), SingleOptions{Scale: testScale})
	if plain.Accuracy != nil {
		t.Error("accuracy reported for a plain policy")
	}
	d := RunSingle(hmmer(t),
		dbrb.New(policy.NewLRU(), predictor.NewSampler(predictor.DefaultSamplerConfig())),
		SingleOptions{Scale: testScale})
	if d.Accuracy == nil {
		t.Fatal("no accuracy for DBRB")
	}
	if d.UpdateFraction <= 0 || d.UpdateFraction > 0.05 {
		t.Errorf("update fraction = %v, want ~1/64", d.UpdateFraction)
	}
}

func TestLLCSizeOption(t *testing.T) {
	big := RunSingle(hmmer(t), policy.NewLRU(), SingleOptions{
		Scale: testScale,
		LLC:   cache.Config{Name: "LLC", SizeBytes: 8 << 20, Ways: 16},
	})
	small := RunSingle(hmmer(t), policy.NewLRU(), SingleOptions{
		Scale: testScale,
		LLC:   cache.Config{Name: "LLC", SizeBytes: 512 << 10, Ways: 16},
	})
	if big.MPKI >= small.MPKI {
		t.Errorf("8MB MPKI %.2f >= 512KB MPKI %.2f", big.MPKI, small.MPKI)
	}
}

func TestRunMulticoreBasics(t *testing.T) {
	mix := workloads.Mixes()[0]
	r, err := RunMulticore(mix, policy.NewLRU(), MulticoreOptions{Scale: testScale})
	if err != nil {
		t.Fatal(err)
	}
	if r.MixName != "mix1" {
		t.Errorf("mix name = %s", r.MixName)
	}
	for i, ipc := range r.IPC {
		if ipc <= 0 || ipc > 4 {
			t.Errorf("core %d IPC = %v", i, ipc)
		}
		if r.Instructions[i] == 0 {
			t.Errorf("core %d retired nothing", i)
		}
	}
	if r.MPKI <= 0 {
		t.Errorf("MPKI = %v", r.MPKI)
	}
}

func TestRunMulticoreDeterministic(t *testing.T) {
	mix := workloads.Mixes()[1]
	run := func() MulticoreResult {
		r, err := RunMulticore(mix, policy.NewTADIP(4, 3), MulticoreOptions{Scale: testScale})
		if err != nil {
			t.Fatal(err)
		}
		return r
	}
	a, b := run(), run()
	if a.IPC != b.IPC || a.LLC != b.LLC {
		t.Error("multicore runs not reproducible")
	}
}

func TestRunMulticoreBadMixReturnsError(t *testing.T) {
	mix := workloads.Mix{Name: "bad-mix"}
	mix.Members = [4]string{"no.such", "no.such", "no.such", "no.such"}
	_, err := RunMulticore(mix, policy.NewLRU(), MulticoreOptions{Scale: testScale})
	if err == nil {
		t.Fatal("unknown mix member did not error")
	}
}

func TestSingleIPCBadNameReturnsError(t *testing.T) {
	_, err := SingleIPC("no.such", hier.LLCConfig(4), testScale,
		func() cache.Policy { return policy.NewLRU() })
	if err == nil {
		t.Fatal("unknown benchmark did not error")
	}
}

func TestSharedCacheContention(t *testing.T) {
	// Each benchmark's IPC under contention must not exceed its IPC
	// running alone with the same total capacity.
	mix := workloads.Mixes()[0]
	r, err := RunMulticore(mix, policy.NewLRU(), MulticoreOptions{Scale: testScale})
	if err != nil {
		t.Fatal(err)
	}
	for i, name := range mix.Members {
		solo, err := SingleIPC(name, hier.LLCConfig(4), testScale,
			func() cache.Policy { return policy.NewLRU() })
		if err != nil {
			t.Fatal(err)
		}
		if r.IPC[i] > solo*1.02 { // small tolerance: interleaving jitter
			t.Errorf("%s: shared IPC %.3f exceeds solo IPC %.3f", name, r.IPC[i], solo)
		}
	}
}
