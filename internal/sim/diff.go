package sim

import (
	"sdbp/internal/cache"
	"sdbp/internal/hier"
	"sdbp/internal/workloads"
)

// DiffResult classifies every LLC access of a benchmark by its outcome
// under two policies run in lockstep on the identical reference stream
// (the L2-miss stream is LLC-policy-independent, so the comparison is
// exact).
type DiffResult struct {
	// Benchmark, PolicyA and PolicyB identify the comparison.
	Benchmark, PolicyA, PolicyB string
	// BothHit..BothMiss partition the LLC accesses.
	BothHit, OnlyAHit, OnlyBHit, BothMiss uint64
}

// Accesses returns the total classified accesses.
func (d DiffResult) Accesses() uint64 {
	return d.BothHit + d.OnlyAHit + d.OnlyBHit + d.BothMiss
}

// DamageRate returns the fraction of accesses where B missed but A hit
// — the misses policy B *introduced* relative to A. For A = LRU and B =
// a dead-block policy this is the true cost of wrong dead predictions,
// untangled from the benign dead-marked-but-rehit events that inflate
// the Figure 9 false positive rate.
func (d DiffResult) DamageRate() float64 {
	n := d.Accesses()
	if n == 0 {
		return 0
	}
	return float64(d.OnlyAHit) / float64(n)
}

// GainRate returns the fraction of accesses where B hit but A missed.
func (d DiffResult) GainRate() float64 {
	n := d.Accesses()
	if n == 0 {
		return 0
	}
	return float64(d.OnlyBHit) / float64(n)
}

// CompareLLC runs one benchmark against two LLC policies in lockstep
// and classifies every LLC access by its hit/miss outcome under each.
func CompareLLC(w workloads.Workload, polA, polB cache.Policy, opts SingleOptions) DiffResult {
	opts.normalize()

	llcA := cache.New(opts.LLC, polA)
	llcB := cache.New(opts.LLC, polB)
	// One hierarchy produces the canonical stream; cache B replays it.
	core := hier.NewCore(hier.DefaultConfig(), llcA)

	res := DiffResult{Benchmark: w.Name, PolicyA: polA.Name(), PolicyB: polB.Name()}
	gen := w.Generator(opts.Scale)
	for {
		a, ok := gen.Next()
		if !ok {
			break
		}
		beforeA := llcA.Stats()
		core.Access(a)
		afterA := llcA.Stats()
		if afterA.Accesses == beforeA.Accesses {
			continue // satisfied above the LLC
		}
		hitA := afterA.Hits > beforeA.Hits
		hitB := llcB.Access(a).Hit
		switch {
		case hitA && hitB:
			res.BothHit++
		case hitA:
			res.OnlyAHit++
		case hitB:
			res.OnlyBHit++
		default:
			res.BothMiss++
		}
	}
	return res
}
