// Package sim drives the experiments: it runs a workload's reference
// stream through the cache hierarchy and CPU timing model against a
// chosen LLC management policy, and reports the metrics the paper's
// tables and figures are built from (MPKI, IPC, predictor accuracy,
// cache efficiency, the captured LLC stream for MIN).
package sim

import (
	"runtime"
	"time"

	"sdbp/internal/cache"
	"sdbp/internal/cpu"
	"sdbp/internal/dbrb"
	"sdbp/internal/hier"
	"sdbp/internal/mem"
	"sdbp/internal/predictor"
	"sdbp/internal/probe"
	"sdbp/internal/trace"
	"sdbp/internal/workloads"
)

// genBatch is the drive loop's generation buffer, in accesses: big
// enough to amortize per-batch overhead, small enough to stay in L1.
const genBatch = 256

// SingleResult reports one single-core run.
type SingleResult struct {
	// Benchmark is the workload name.
	Benchmark string
	// Policy is the LLC policy name.
	Policy string
	// Instructions is the total instruction count (gaps + memory ops).
	Instructions uint64
	// Cycles is the timing model's cycle count, truncated to an
	// integer so aggregate counters built from it are exact and
	// schedule-independent.
	Cycles uint64
	// IPC is instructions per cycle under the core timing model.
	IPC float64
	// LLC is the last-level cache's statistics.
	LLC cache.Stats
	// L1 and L2 are the private levels' statistics, so campaign
	// counters can reconcile total work across the whole hierarchy.
	L1, L2 cache.Stats
	// Duration is the run's wall time (not serialized into goldens;
	// feeds throughput gauges only).
	Duration time.Duration
	// MPKI is LLC misses per thousand instructions.
	MPKI float64
	// Efficiency is the LLC's live-time ratio (Figure 1's metric).
	Efficiency float64
	// LineEfficiencies is the per-line efficiency map when requested.
	LineEfficiencies [][]float64
	// Accuracy is predictor accuracy when the policy is DBRB.
	Accuracy *dbrb.Accuracy
	// UpdateFraction is the fraction of LLC accesses that updated the
	// predictor, for sampling predictors.
	UpdateFraction float64
	// Stream is the captured LLC access stream when requested.
	Stream []mem.Access
	// Probe is the run's interval telemetry and per-PC attribution
	// table; nil unless SingleOptions.Probe asked for it.
	Probe *probe.Series
}

// SingleOptions tunes a single-core run.
type SingleOptions struct {
	// Scale multiplies the workload's default stream length; 0 means 1.
	Scale float64
	// LLC overrides the LLC geometry; the zero value selects the
	// paper's 2MB 16-way.
	LLC cache.Config
	// CaptureStream records the LLC access stream into the result (for
	// MIN).
	CaptureStream bool
	// KeepLineEfficiencies records the per-line efficiency map (for
	// Figure 1).
	KeepLineEfficiencies bool
	// Probe enables microarchitectural introspection: interval
	// telemetry every Probe.Interval retired instructions plus the
	// per-PC death-attribution table (see package probe). Nil keeps the
	// run byte-identical to an unprobed one.
	Probe *probe.Config
}

func (o *SingleOptions) normalize() {
	if o.Scale == 0 {
		o.Scale = 1
	}
	if o.LLC.SizeBytes == 0 {
		o.LLC = hier.LLCConfig(1)
	}
}

// RunSingle simulates one benchmark on one core with the given LLC
// policy and returns the run's metrics.
func RunSingle(w workloads.Workload, pol cache.Policy, opts SingleOptions) SingleResult {
	opts.normalize()
	start := time.Now()

	var ap attributionProvider
	if opts.Probe != nil && opts.Probe.Enabled() {
		// Opt the policy into per-PC attribution before cache.New runs
		// its Reset, which sizes the table.
		ap = enableAttribution(pol)
	}
	llc := cache.New(opts.LLC, pol)
	core := hier.NewCore(hier.DefaultConfig(), llc)
	timing := cpu.New(cpu.DefaultConfig())
	ps := newIntervalSampler(opts.Probe, llc, timing, pol)

	res := SingleResult{Benchmark: w.Name, Policy: pol.Name()}

	gen := w.Generator(opts.Scale)
	bg, batched := gen.(trace.BatchGenerator)
	// Stream capture observes exactly the LLC-bound records, which the
	// block path already materializes (Filtered.LLC): when the hierarchy
	// is otherwise block-capable, collect them from FilterBlock's output
	// instead of registering the observer that would force per-access
	// dispatch. hier.Core.Access invokes the observer with the identical
	// gap-rewritten record, so the captured stream is byte-identical.
	blockCapture := opts.CaptureStream && batched && ps == nil && core.BlockCapable()
	if opts.CaptureStream && !blockCapture {
		core.CaptureLLC(func(a mem.Access) { res.Stream = append(res.Stream, a) })
	}

	if blockCapture {
		res.Stream = runCapture(bg, core, llc, timing)
	} else if batched && ps == nil && core.BlockCapable() &&
		runtime.NumCPU() > 1 {
		// Pipelined block-granular drive: a producer goroutine generates
		// each block and runs it through the private levels
		// (FilterBlock), while this goroutine consumes the filtered
		// records — LLC leg, then timing. The split is safe because the
		// two sides own disjoint state (producer: generator + L1/L2;
		// consumer: LLC + timing model; handoff through the channel
		// orders everything else), and byte-identical because each cache
		// still sees its own access subsequence in order and timing
		// never feeds back — pinned by the goldens.
		runPipelined(bg, core, llc, timing)
	} else if batched && ps == nil {
		// Observers (stream capture) force per-access dispatch inside
		// AccessBlock, but batched generation still amortizes the
		// generator interface.
		var buf [genBatch]mem.Access
		var levels [genBatch]hier.Level
		for {
			n := bg.NextBatch(buf[:])
			if n == 0 {
				break
			}
			core.AccessBlock(buf[:n], levels[:n])
			for i := 0; i < n; i++ {
				timing.Record(buf[i].Gap, levels[i].Latency(), buf[i].DependentLoad)
			}
		}
	} else if batched {
		// Probed runs keep the per-access loop: the interval sampler
		// reads the timing model and LLC statistics after every access,
		// so hierarchy and timing may not be regrouped. Batched
		// generation still amortizes the generator dispatch.
		var buf [genBatch]mem.Access
		for {
			n := bg.NextBatch(buf[:])
			if n == 0 {
				break
			}
			for i := range buf[:n] {
				a := buf[i]
				level := core.Access(a)
				timing.Record(a.Gap, level.Latency(), a.DependentLoad)
				ps.maybeSample()
			}
		}
	} else {
		for {
			a, ok := gen.Next()
			if !ok {
				break
			}
			level := core.Access(a)
			timing.Record(a.Gap, level.Latency(), a.DependentLoad)
			if ps != nil {
				ps.maybeSample()
			}
		}
	}
	llc.Finish()

	res.Instructions = timing.Instructions()
	res.Cycles = uint64(timing.Cycles())
	res.IPC = timing.IPC()
	levels := core.Stats()
	res.LLC = levels.LLC
	res.L1 = levels.L1
	res.L2 = levels.L2
	if res.Instructions > 0 {
		res.MPKI = float64(res.LLC.Misses) / (float64(res.Instructions) / 1000)
	}
	res.Efficiency = llc.Efficiency()
	if opts.KeepLineEfficiencies {
		res.LineEfficiencies = llc.LineEfficiencies()
	}
	fillAccuracy(&res, pol)
	if ps != nil {
		ps.finish()
		res.Probe = buildSeries(&res, opts.Probe, ps.intervals, ap)
	}
	res.Duration = time.Since(start)
	return res
}

// pipeBuffers is the pipelined drive loop's block count in flight: one
// being filtered, one in the channel, one being consumed.
const pipeBuffers = 3

// runPipelined is RunSingle's drive loop when the hierarchy is fully
// block-capable: generation plus private-level filtering run in a
// producer goroutine, the LLC leg and the timing model in the caller.
// The stream is deterministic and the private levels never read LLC or
// timing state, so overlapping the two halves changes no observable
// byte. The producer exits on stream exhaustion and the channel close
// both terminates the consumer and publishes the producer-side cache
// state (L1/L2 stats, tags) to the caller.
func runPipelined(bg trace.BatchGenerator, core *hier.Core, llc *cache.Cache, timing *cpu.Core) {
	recs := make(chan []hier.Filtered, pipeBuffers)
	free := make(chan []hier.Filtered, pipeBuffers)
	for i := 0; i < pipeBuffers; i++ {
		free <- make([]hier.Filtered, genBatch)
	}
	go func() {
		defer close(recs)
		var buf [genBatch]mem.Access
		for {
			n := bg.NextBatch(buf[:])
			if n == 0 {
				return
			}
			fb := (<-free)[:n]
			core.FilterBlock(buf[:n], fb)
			recs <- fb
		}
	}()
	llcAs := make([]mem.Access, genBatch)
	llcRs := make([]cache.Result, genBatch)
	for fb := range recs {
		n := 0
		for i := range fb {
			if fb[i].Flags&hier.FLLCBound != 0 {
				llcAs[n] = fb[i].LLC
				n++
			}
		}
		llc.AccessBatch(llcAs[:n], llcRs[:n])
		j := 0
		for i := range fb {
			var level hier.Level
			switch {
			case fb[i].Flags&hier.FL1Hit != 0:
				level = hier.LevelL1
			case fb[i].Flags&hier.FL2Hit != 0:
				level = hier.LevelL2
			default:
				level = hier.LevelMemory
				if llcRs[j].Hit {
					level = hier.LevelLLC
				}
				j++
			}
			timing.Record(fb[i].Gap, level.Latency(), fb[i].Flags&hier.FDep != 0)
		}
		free <- fb[:cap(fb)]
	}
}

// runCapture is RunSingle's drive loop for stream-capture runs on a
// block-capable hierarchy: the private levels run as FilterBlock, the
// LLC-bound subsequence is both appended to the captured stream and
// delivered to the LLC in one batch, and the timing model replays the
// per-access levels from the filtered flags. The records appended are
// the same gap-rewritten accesses hier.Core.Access would have handed
// the CaptureLLC observer, in the same order.
func runCapture(bg trace.BatchGenerator, core *hier.Core, llc *cache.Cache, timing *cpu.Core) []mem.Access {
	var stream []mem.Access
	var buf [genBatch]mem.Access
	var fb [genBatch]hier.Filtered
	var llcAs [genBatch]mem.Access
	var llcRs [genBatch]cache.Result
	for {
		n := bg.NextBatch(buf[:])
		if n == 0 {
			return stream
		}
		core.FilterBlock(buf[:n], fb[:n])
		m := 0
		for i := 0; i < n; i++ {
			if fb[i].Flags&hier.FLLCBound != 0 {
				llcAs[m] = fb[i].LLC
				m++
			}
		}
		stream = append(stream, llcAs[:m]...)
		llc.AccessBatch(llcAs[:m], llcRs[:m])
		j := 0
		for i := 0; i < n; i++ {
			var level hier.Level
			switch {
			case fb[i].Flags&hier.FL1Hit != 0:
				level = hier.LevelL1
			case fb[i].Flags&hier.FL2Hit != 0:
				level = hier.LevelL2
			default:
				level = hier.LevelMemory
				if llcRs[j].Hit {
					level = hier.LevelLLC
				}
				j++
			}
			timing.Record(fb[i].Gap, level.Latency(), fb[i].Flags&hier.FDep != 0)
		}
	}
}

// fillAccuracy extracts predictor-quality metrics when the policy is a
// dead-block replacement and bypass policy (or wraps one, like the
// dueling variant). Non-DBRB baselines — and typed-nil policies — are
// tolerated via the shared accuracyOf guard (see probe.go).
func fillAccuracy(res *SingleResult, pol cache.Policy) {
	d, ok := accuracyOf(pol)
	if !ok {
		return
	}
	acc := d.Accuracy()
	res.Accuracy = &acc
	if s, ok := d.Predictor().(*predictor.Sampler); ok {
		res.UpdateFraction = s.UpdateFraction()
	}
}
