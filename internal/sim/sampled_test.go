package sim

import (
	"encoding/json"
	"math"
	"runtime"
	"testing"

	"sdbp/internal/dbrb"
	"sdbp/internal/policy"
	"sdbp/internal/predictor"
	"sdbp/internal/probe"
	"sdbp/internal/sampling"
)

// testPlan builds a sampling plan for hmmer at the test scale via a
// full pilot run.
func testPlan(t *testing.T, interval uint64, cfg sampling.Config) sampling.Plan {
	t.Helper()
	plan, err := SelectPlan(hmmer(t), policy.NewLRU(), SingleOptions{Scale: testScale}, interval, cfg)
	if err != nil {
		t.Fatalf("SelectPlan: %v", err)
	}
	return plan
}

func TestSampledRunBasics(t *testing.T) {
	plan := testPlan(t, 5_000, sampling.Config{Clusters: 5})
	m, err := MaterializeSampled(hmmer(t), &plan, testScale)
	if err != nil {
		t.Fatalf("MaterializeSampled: %v", err)
	}
	full := RunSingle(hmmer(t), policy.NewLRU(), SingleOptions{Scale: testScale})
	if m.TotalInstructions != full.Instructions {
		t.Fatalf("materialized %d total instructions, full run retired %d",
			m.TotalInstructions, full.Instructions)
	}
	res, err := RunSampledTrace(m, policy.NewLRU(), SingleOptions{Scale: testScale})
	if err != nil {
		t.Fatalf("RunSampledTrace: %v", err)
	}
	est := res.Estimate
	if est.SimFraction <= 0 || est.SimFraction >= 1 {
		t.Fatalf("SimFraction = %v, want in (0,1)", est.SimFraction)
	}
	if est.IPC <= 0 || est.MissRate <= 0 {
		t.Fatalf("degenerate estimate: IPC=%v MissRate=%v", est.IPC, est.MissRate)
	}
	// The estimate must land within its own reported bounds of the
	// full run — the honesty property the whole PR exists for.
	trueCPI := float64(full.Cycles) / float64(full.Instructions)
	trueMiss := float64(full.LLC.Misses) / float64(full.LLC.Accesses)
	if diff := math.Abs(est.CPI - trueCPI); diff > est.CPIHalf {
		t.Errorf("CPI %v ± %v misses true %v (diff %v)", est.CPI, est.CPIHalf, trueCPI, diff)
	}
	if diff := math.Abs(est.MissRate - trueMiss); diff > est.MissRateHalf {
		t.Errorf("MissRate %v ± %v misses true %v (diff %v)", est.MissRate, est.MissRateHalf, trueMiss, diff)
	}
}

// TestSampledMeasuredWindowsAlignWithPilot: each measured window must
// retire exactly the instructions its pilot interval covered — the
// boundary-alignment invariant materialization depends on.
func TestSampledMeasuredWindowsAlignWithPilot(t *testing.T) {
	plan := testPlan(t, 5_000, sampling.Config{Clusters: 4})
	m, err := MaterializeSampled(hmmer(t), &plan, testScale)
	if err != nil {
		t.Fatalf("MaterializeSampled: %v", err)
	}
	res, err := RunSampledTrace(m, policy.NewLRU(), SingleOptions{Scale: testScale})
	if err != nil {
		t.Fatalf("RunSampledTrace: %v", err)
	}
	for i, iv := range res.Measured {
		want := plan.Picks[i].End - plan.Picks[i].Start
		if iv.DInstructions != want {
			t.Errorf("window %d measured %d instructions, pilot interval covered %d",
				i, iv.DInstructions, want)
		}
	}
}

// TestSampledAllIntervalsReproducesFullRun is the metamorphic identity
// end to end: a plan measuring every interval with zero warm-up replays
// the entire stream in order, so the integer counters equal the full
// run's exactly and the estimate is the full-run value.
func TestSampledAllIntervalsReproducesFullRun(t *testing.T) {
	const interval = 5_000
	w := hmmer(t)
	pilot := RunSingle(w, policy.NewLRU(), SingleOptions{
		Scale: testScale, Probe: &probe.Config{Interval: interval},
	})
	plan, err := sampling.AllIntervals(pilot.Probe.Intervals, interval)
	if err != nil {
		t.Fatalf("AllIntervals: %v", err)
	}
	m, err := MaterializeSampled(w, &plan, testScale)
	if err != nil {
		t.Fatalf("MaterializeSampled: %v", err)
	}
	if got := m.SimInstructions(); got != m.TotalInstructions {
		t.Fatalf("all-intervals plan materialized %d of %d instructions", got, m.TotalInstructions)
	}
	res, err := RunSampledTrace(m, policy.NewLRU(), SingleOptions{Scale: testScale})
	if err != nil {
		t.Fatalf("RunSampledTrace: %v", err)
	}
	full := RunSingle(w, policy.NewLRU(), SingleOptions{Scale: testScale})
	var instr, cycles, accesses, misses uint64
	for _, iv := range res.Measured {
		instr += iv.DInstructions
		cycles += iv.DCycles
		accesses += iv.DAccesses
		misses += iv.DMisses
	}
	if instr != full.Instructions {
		t.Errorf("measured %d instructions, full run %d", instr, full.Instructions)
	}
	if cycles != full.Cycles {
		t.Errorf("measured %d cycles, full run %d", cycles, full.Cycles)
	}
	if accesses != full.LLC.Accesses || misses != full.LLC.Misses {
		t.Errorf("measured %d/%d LLC accesses/misses, full run %d/%d",
			accesses, misses, full.LLC.Accesses, full.LLC.Misses)
	}
	est := res.Estimate
	wantCPI := float64(full.Cycles) / float64(full.Instructions)
	if rel := math.Abs(est.CPI-wantCPI) / wantCPI; rel > 1e-9 {
		t.Errorf("all-intervals CPI %v, full-run %v (rel %v)", est.CPI, wantCPI, rel)
	}
	wantMiss := float64(full.LLC.Misses) / float64(full.LLC.Accesses)
	if rel := math.Abs(est.MissRate-wantMiss) / wantMiss; rel > 1e-9 {
		t.Errorf("all-intervals MissRate %v, full-run %v (rel %v)", est.MissRate, wantMiss, rel)
	}
	if est.SimFraction != 1 {
		t.Errorf("SimFraction = %v, want 1", est.SimFraction)
	}
}

// TestSampledDeterministic: materialization and replay are pure
// functions of the plan and workload — byte-identical across repeat
// runs and across GOMAXPROCS.
func TestSampledDeterministic(t *testing.T) {
	plan := testPlan(t, 5_000, sampling.Config{Clusters: 4})
	run := func() []byte {
		m, err := MaterializeSampled(hmmer(t), &plan, testScale)
		if err != nil {
			t.Fatalf("MaterializeSampled: %v", err)
		}
		res, err := RunSampledTrace(m,
			dbrb.New(policy.NewLRU(), predictor.NewSampler(predictor.DefaultSamplerConfig())),
			SingleOptions{Scale: testScale})
		if err != nil {
			t.Fatalf("RunSampledTrace: %v", err)
		}
		b, err := json.Marshal(struct {
			Est sampling.Estimate
			Ivs []probe.Interval
		}{res.Estimate, res.Measured})
		if err != nil {
			t.Fatal(err)
		}
		return b
	}
	a := run()
	prev := runtime.GOMAXPROCS(1)
	b := run()
	runtime.GOMAXPROCS(prev)
	if string(a) != string(b) {
		t.Fatalf("sampled run not deterministic:\n%s\n%s", a, b)
	}
}

// TestSampledWarmupLongerThanTrace: a warm-up reaching past the start
// of the stream clamps to instruction 0 instead of failing.
func TestSampledWarmupLongerThanTrace(t *testing.T) {
	w := hmmer(t)
	pilot := RunSingle(w, policy.NewLRU(), SingleOptions{
		Scale: testScale, Probe: &probe.Config{Interval: 5_000},
	})
	n := len(pilot.Probe.Intervals)
	if n == 0 {
		t.Fatal("pilot produced no intervals")
	}
	plan, err := sampling.Select(pilot.Probe.Intervals, 5_000, sampling.Config{Clusters: 2})
	if err != nil {
		t.Fatal(err)
	}
	// Stretch the warm-up far beyond the whole stream.
	plan.Warmup = pilot.Instructions * 3
	m, err := MaterializeSampled(w, &plan, testScale)
	if err != nil {
		t.Fatalf("MaterializeSampled: %v", err)
	}
	// With every warm window clamped to the stream start (and clipped at
	// the previous pick's End so nothing replays twice), the windows
	// jointly cover the whole stream in order: window i's warm must hold
	// exactly the full run's LLC-bound records in (prevEnd, Start] —
	// same records, same rewritten gaps.
	ref := RunSingle(w, policy.NewLRU(), SingleOptions{Scale: testScale, CaptureStream: true})
	for i := range m.Windows {
		var lo uint64
		if i > 0 {
			lo = plan.Picks[i-1].End
		}
		wantN, cum := 0, uint64(0)
		var wantInstr uint64
		for _, a := range ref.Stream {
			cum += uint64(a.Gap) + 1
			if cum > plan.Picks[i].Start {
				break
			}
			if cum > lo {
				wantN++
				wantInstr += uint64(a.Gap) + 1
			}
		}
		warmInstr := uint64(0)
		for _, a := range m.Windows[i].Warm {
			warmInstr += uint64(a.Gap) + 1
		}
		if len(m.Windows[i].Warm) != wantN || warmInstr != wantInstr {
			t.Errorf("window %d warm holds %d LLC accesses over %d instructions, want the full-run LLC stream in (%d, %d] (%d over %d)",
				i, len(m.Windows[i].Warm), warmInstr, lo, plan.Picks[i].Start, wantN, wantInstr)
		}
	}
	if _, err := RunSampledTrace(m, policy.NewLRU(), SingleOptions{Scale: testScale}); err != nil {
		t.Fatalf("RunSampledTrace: %v", err)
	}
}

// TestSampledPicksBeyondStream: a plan built for a longer stream (e.g.
// a larger scale) yields empty measure windows past the end; the
// estimator drops them, and errors only when nothing is measurable.
func TestSampledPicksBeyondStream(t *testing.T) {
	plan := testPlan(t, 5_000, sampling.Config{Clusters: 3})
	// Shift every pick past the end of the stream.
	for i := range plan.Picks {
		plan.Picks[i].Start += 1 << 40
		plan.Picks[i].End += 1 << 40
	}
	m, err := MaterializeSampled(hmmer(t), &plan, testScale)
	if err != nil {
		t.Fatalf("MaterializeSampled: %v", err)
	}
	if _, err := RunSampledTrace(m, policy.NewLRU(), SingleOptions{Scale: testScale}); err == nil {
		t.Fatal("RunSampledTrace with every pick beyond the stream succeeded, want error")
	}
}

// TestSampledZeroPickPlanRejected: a plan with no picks fails
// validation up front.
func TestSampledZeroPickPlanRejected(t *testing.T) {
	plan := sampling.Plan{Interval: 5_000}
	if _, err := MaterializeSampled(hmmer(t), &plan, testScale); err == nil {
		t.Fatal("MaterializeSampled with an empty plan succeeded, want error")
	}
}

// TestSampledRejectsFullRunOnlyOptions: stream capture, line
// efficiencies and a separate probe config are full-run features.
func TestSampledRejectsFullRunOnlyOptions(t *testing.T) {
	plan := testPlan(t, 5_000, sampling.Config{Clusters: 2})
	m, err := MaterializeSampled(hmmer(t), &plan, testScale)
	if err != nil {
		t.Fatal(err)
	}
	for name, opts := range map[string]SingleOptions{
		"capture": {Scale: testScale, CaptureStream: true},
		"lineeff": {Scale: testScale, KeepLineEfficiencies: true},
		"probe":   {Scale: testScale, Probe: &probe.Config{Interval: 1000}},
	} {
		if _, err := RunSampledTrace(m, policy.NewLRU(), opts); err == nil {
			t.Errorf("%s: RunSampledTrace succeeded, want error", name)
		}
	}
}

// TestSampledSeriesExportable: the sampled telemetry series round-trips
// through the standard probe exporters, so -trace-out and cmd/report
// work on sampled runs.
func TestSampledSeriesExportable(t *testing.T) {
	plan := testPlan(t, 5_000, sampling.Config{Clusters: 3})
	m, err := MaterializeSampled(hmmer(t), &plan, testScale)
	if err != nil {
		t.Fatal(err)
	}
	res, err := RunSampledTrace(m, policy.NewLRU(), SingleOptions{Scale: testScale})
	if err != nil {
		t.Fatal(err)
	}
	if res.Series == nil || len(res.Series.Intervals) != len(plan.Picks) {
		t.Fatalf("sampled series missing or wrong length")
	}
	b, err := probe.MarshalJSONL([]probe.Series{*res.Series})
	if err != nil {
		t.Fatalf("MarshalJSONL: %v", err)
	}
	if len(b) == 0 {
		t.Fatal("empty JSONL export")
	}
}

// TestSampledCheaperThanFull: the sampled path must simulate a small
// fraction of the stream (wall-time enforcement for the pinned
// validation set lives in cmd/experiments; this pins the work ratio at
// the sim layer).
func TestSampledCheaperThanFull(t *testing.T) {
	plan := testPlan(t, 5_000, sampling.Config{Clusters: 4})
	m, err := MaterializeSampled(hmmer(t), &plan, testScale)
	if err != nil {
		t.Fatal(err)
	}
	frac := float64(m.SimInstructions()) / float64(m.TotalInstructions)
	if frac > 0.5 {
		t.Fatalf("sampled plan simulates %.0f%% of the stream, want well under half", 100*frac)
	}
}
