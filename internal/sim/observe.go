package sim

// This file folds finished runs' aggregate counters into an
// obs.Registry. The runner calls these at the experiment boundary for
// every live successful job (see obs.Observable), so the per-access
// hot path stays metric-free — everything here is read from the
// cache.Stats the simulation already keeps.

import (
	"sdbp/internal/cache"
	"sdbp/internal/obs"
)

// observeLevel adds one cache level's counters under
// sim_<level>_<counter> names.
func observeLevel(r *obs.Registry, level string, s cache.Stats) {
	pfx := obs.SimPrefix + level + "_"
	r.Counter(pfx + "accesses").Add(s.Accesses)
	r.Counter(pfx + "writes").Add(s.Writes)
	r.Counter(pfx + "hits").Add(s.Hits)
	r.Counter(pfx + "misses").Add(s.Misses)
	r.Counter(pfx + "bypasses").Add(s.Bypasses)
	r.Counter(pfx + "evictions").Add(s.Evictions)
	r.Counter(pfx + "writebacks").Add(s.Writebacks)
	r.Counter(pfx + "prefetches").Add(s.Prefetches)
	r.Counter(pfx + "useful_prefetches").Add(s.UsefulPrefetches)
}

// ObserveInto implements obs.Observable: it accumulates the run's
// per-level cache.Stats, instructions retired, cycles, and predictor
// verdicts as sim_* counters, and its wall time into the
// sim_run_seconds histogram.
func (r SingleResult) ObserveInto(reg *obs.Registry) {
	observeLevel(reg, "l1", r.L1)
	observeLevel(reg, "l2", r.L2)
	observeLevel(reg, "llc", r.LLC)
	reg.Counter(obs.SimPrefix + "runs").Inc()
	reg.Counter(obs.SimPrefix + "instructions").Add(r.Instructions)
	reg.Counter(obs.SimPrefix + "cycles").Add(r.Cycles)
	if r.Accuracy != nil {
		reg.Counter(obs.SimPrefix + "predictions").Add(r.Accuracy.Predictions)
		reg.Counter(obs.SimPrefix + "dead_predictions").Add(r.Accuracy.Positives)
		reg.Counter(obs.SimPrefix + "false_positive_hits").Add(r.Accuracy.FalsePositives)
	}
	reg.Histogram(obs.SimPrefix + "run_seconds").Observe(r.Duration.Seconds())
}

// Throughput returns demand accesses simulated per wall-clock second
// (0 when the run recorded no duration).
func (r SingleResult) Throughput() float64 {
	if r.Duration <= 0 {
		return 0
	}
	return float64(r.L1.Accesses) / r.Duration.Seconds()
}

// ObserveInto implements obs.Observable for multicore runs: shared-LLC
// and summed private-level counters, first-pass instructions, and wall
// time.
func (r MulticoreResult) ObserveInto(reg *obs.Registry) {
	observeLevel(reg, "l1", r.L1)
	observeLevel(reg, "l2", r.L2)
	observeLevel(reg, "llc", r.LLC)
	reg.Counter(obs.SimPrefix + "multicore_runs").Inc()
	var instr uint64
	for _, n := range r.Instructions {
		instr += n
	}
	reg.Counter(obs.SimPrefix + "instructions").Add(instr)
	reg.Counter(obs.SimPrefix + "cycles").Add(r.Cycles)
	reg.Histogram(obs.SimPrefix + "run_seconds").Observe(r.Duration.Seconds())
}
