package sim

import (
	"fmt"
	"sync"
	"time"

	"sdbp/internal/cache"
	"sdbp/internal/cpu"
	"sdbp/internal/hier"
	"sdbp/internal/mem"
	"sdbp/internal/trace"
	"sdbp/internal/workloads"
)

// MulticoreResult reports one quad-core shared-LLC run.
type MulticoreResult struct {
	// MixName labels the workload mix.
	MixName string
	// Policy is the shared LLC policy name.
	Policy string
	// IPC is each core's IPC measured over its first full pass of its
	// benchmark (the paper's per-thread IPC_i).
	IPC [4]float64
	// Instructions is each core's first-pass instruction count.
	Instructions [4]uint64
	// LLC is the shared cache's statistics over the whole run.
	LLC cache.Stats
	// L1 and L2 are the private levels' statistics summed over cores.
	L1, L2 cache.Stats
	// Cycles is the cores' cycle counts summed (truncated per core for
	// schedule-independent aggregation).
	Cycles uint64
	// MPKI is shared-LLC misses per thousand instructions summed over
	// cores (for the paper's multicore normalized MPKI).
	MPKI float64
	// Duration is the run's wall time.
	Duration time.Duration
}

// MulticoreOptions tunes a multicore run.
type MulticoreOptions struct {
	// Scale multiplies each benchmark's default stream length; 0 means 1.
	Scale float64
	// LLC overrides the shared LLC geometry; the zero value selects the
	// paper's 8MB 16-way.
	LLC cache.Config
}

func (o *MulticoreOptions) normalize() {
	if o.Scale == 0 {
		o.Scale = 1
	}
	if o.LLC.SizeBytes == 0 {
		o.LLC = hier.LLCConfig(4)
	}
}

// mcChunk is the pre-filter block size, in accesses: each core's
// producer generates and private-filters this many accesses per chunk
// handed to the merge loop.
const mcChunk = 4096

// mcBuffers is the number of chunk buffers circulating per core: one
// being filled by the producer, one being consumed by the merge, and
// slack in the channel between them. Because every buffer is either
// held or in a channel of this total capacity, neither side ever blocks
// on the free list.
const mcBuffers = 4

// mcCore is one core's merge-side state in a multicore run. Its stream
// arrives pre-filtered through the core's private levels from a
// producer goroutine (see prefilter); the merge loop owns only the
// timing model and first-pass bookkeeping.
type mcCore struct {
	timing *cpu.Core
	id     int

	recs chan []hier.Filtered // filled chunks, in stream order
	free chan []hier.Filtered // recycled chunk buffers
	errc chan error           // producer failure (closed recs follows)
	cur  []hier.Filtered
	pos  int

	target    uint64 // first-pass instruction count
	passInstr uint64
	doneIPC   float64
	done      bool
}

// next returns the core's next pre-filtered record in stream order,
// pulling a fresh chunk from the producer when the current one is
// drained.
func (c *mcCore) next() (hier.Filtered, error) {
	if c.pos >= len(c.cur) {
		if c.cur != nil {
			c.free <- c.cur // never blocks: free holds all buffers
		}
		chunk, ok := <-c.recs
		if !ok {
			return hier.Filtered{}, <-c.errc
		}
		c.cur, c.pos = chunk, 0
	}
	f := c.cur[c.pos]
	c.pos++
	return f, nil
}

// prefilter is a core's producer: it generates the (infinitely
// restarting) reference stream in chunks, tags each access with the
// core's thread ID and address-space bits — before private filtering,
// exactly as the per-access loop did — and runs the chunk through the
// core's private L1/L2 via hier.FilterBlock. The filter core is owned
// by this goroutine alone; chunk buffers transfer ownership through the
// recs/free channels, so the expensive per-core work runs in parallel
// across cores while the merge loop serializes only the shared-LLC leg.
func prefilter(id int, mixName string, gen trace.Generator, filter *hier.Core,
	recs, free chan []hier.Filtered, errc chan error, stop <-chan struct{}) {
	defer close(recs)
	buf := make([]mem.Access, mcChunk)
	bg, _ := gen.(trace.BatchGenerator)
	for {
		n := 0
		for n < mcChunk {
			if bg != nil {
				k := bg.NextBatch(buf[n:])
				if k == 0 {
					gen.Reset()
					if k = bg.NextBatch(buf[n:]); k == 0 {
						errc <- fmt.Errorf("sim: mix %s: empty workload stream on core %d", mixName, id)
						return
					}
				}
				n += k
			} else {
				a, ok := gen.Next()
				if !ok {
					gen.Reset()
					if a, ok = gen.Next(); !ok {
						errc <- fmt.Errorf("sim: mix %s: empty workload stream on core %d", mixName, id)
						return
					}
				}
				buf[n] = a
				n++
			}
		}
		for i := range buf {
			buf[i].Thread = uint8(id)
			// Each core gets its own physical address space.
			buf[i].Addr |= uint64(id+1) << 56
		}
		var out []hier.Filtered
		select {
		case out = <-free:
		case <-stop:
			return
		}
		filter.FilterBlock(buf, out[:mcChunk])
		select {
		case recs <- out[:mcChunk]:
		case <-stop:
			return
		}
	}
}

// accumPrivate replays one pre-filtered record's private-level counter
// effects into the run's summed L1/L2 statistics. The flags carry
// everything the private caches counted for a demand access (writebacks
// are not propagated in this configuration, and private LRU caches
// never bypass or hold prefetches), so the sums match reading the
// caches' own statistics over the consumed prefix — which the producer
// caches themselves cannot provide, since they run ahead of the merge.
func accumPrivate(res *MulticoreResult, flags uint16) {
	res.L1.Accesses++
	if flags&hier.FWrite != 0 {
		res.L1.Writes++
	}
	if flags&hier.FL1Hit != 0 {
		res.L1.Hits++
		return
	}
	res.L1.Misses++
	if flags&hier.FL1Evict != 0 {
		res.L1.Evictions++
	}
	if flags&hier.FL1Writeback != 0 {
		res.L1.Writebacks++
	}
	res.L2.Accesses++
	if flags&hier.FWrite != 0 {
		res.L2.Writes++
	}
	if flags&hier.FL2Hit != 0 {
		res.L2.Hits++
		return
	}
	res.L2.Misses++
	if flags&hier.FL2Evict != 0 {
		res.L2.Evictions++
	}
	if flags&hier.FL2Writeback != 0 {
		res.L2.Writebacks++
	}
}

// RunMulticore simulates a quad-core mix sharing one LLC under the given
// policy, following the paper's methodology: every benchmark restarts
// when it finishes until all have completed at least one full pass, and
// each core's IPC is measured at the end of its own first pass. Cores
// interleave by simulated time: each step advances the core whose clock
// is furthest behind.
//
// Each core's generation and private L1/L2 filtering run in a producer
// goroutine (goroutine-parallel across cores); the merge loop consumes
// the pre-filtered streams in per-core order, so the simulated-time
// interleaving at the shared LLC — and with it every statistic — is
// byte-identical to the sequential per-access loop it replaces.
//
// Construction problems — an unknown mix member, an empty stream — are
// returned as errors rather than panicking, so one bad mix config
// cannot kill a whole evaluation campaign.
func RunMulticore(mix workloads.Mix, pol cache.Policy, opts MulticoreOptions) (MulticoreResult, error) {
	opts.normalize()
	start := time.Now()

	llc := cache.New(opts.LLC, pol)
	res := MulticoreResult{MixName: mix.Name, Policy: pol.Name()}

	stop := make(chan struct{})
	var wg sync.WaitGroup
	shutdown := func() {
		close(stop)
		wg.Wait()
	}

	cores := make([]*mcCore, 4)
	for i, name := range mix.Members {
		w, err := workloads.ByName(name)
		if err != nil {
			shutdown()
			return MulticoreResult{}, fmt.Errorf("sim: mix %s: %w", mix.Name, err)
		}
		c := &mcCore{
			timing: cpu.New(cpu.DefaultConfig()),
			id:     i,
			recs:   make(chan []hier.Filtered, mcBuffers-2),
			free:   make(chan []hier.Filtered, mcBuffers),
			errc:   make(chan error, 1),
			// First-pass length in instructions (gaps + one per access),
			// memoized across runs so no second stream walk happens here.
			target: w.Instructions(opts.Scale),
		}
		for b := 0; b < mcBuffers; b++ {
			c.free <- make([]hier.Filtered, mcChunk)
		}
		cores[i] = c
		filter := hier.NewCore(hier.DefaultConfig(), nil)
		gen := w.Generator(opts.Scale)
		wg.Add(1)
		go func() {
			defer wg.Done()
			prefilter(c.id, mix.Name, gen, filter, c.recs, c.free, c.errc, stop)
		}()
	}

	remaining := len(cores)
	for remaining > 0 {
		// Advance the core furthest behind in simulated time.
		var next *mcCore
		for _, c := range cores {
			if next == nil || c.timing.Cycles() < next.timing.Cycles() {
				next = c
			}
		}
		f, err := next.next()
		if err != nil {
			shutdown()
			return MulticoreResult{}, err
		}
		level := hier.LevelMemory
		switch {
		case f.Flags&hier.FL1Hit != 0:
			level = hier.LevelL1
		case f.Flags&hier.FL2Hit != 0:
			level = hier.LevelL2
		default:
			if llc.Access(f.LLC).Hit {
				level = hier.LevelLLC
			}
		}
		next.timing.Record(f.Gap, level.Latency(), f.Flags&hier.FDep != 0)
		next.passInstr += uint64(f.Gap) + 1
		accumPrivate(&res, f.Flags)

		if !next.done && next.passInstr >= next.target {
			next.done = true
			next.doneIPC = next.timing.IPC()
			res.Instructions[next.id] = next.timing.Instructions()
			remaining--
		}
	}
	shutdown()
	llc.Finish()

	var totalInstr uint64
	for i, c := range cores {
		res.IPC[i] = c.doneIPC
		totalInstr += res.Instructions[i]
		res.Cycles += uint64(c.timing.Cycles())
	}
	res.LLC = llc.Stats()
	if totalInstr > 0 {
		res.MPKI = float64(res.LLC.Misses) / (float64(totalInstr) / 1000)
	}
	res.Duration = time.Since(start)
	return res, nil
}

// SingleIPC returns a benchmark's IPC running alone with the given LLC
// geometry under LRU — the denominator of the paper's weighted
// speedup. An unknown benchmark name is an error, not a panic.
func SingleIPC(name string, llcCfg cache.Config, scale float64, makeLRU func() cache.Policy) (float64, error) {
	w, err := workloads.ByName(name)
	if err != nil {
		return 0, err
	}
	r := RunSingle(w, makeLRU(), SingleOptions{Scale: scale, LLC: llcCfg})
	return r.IPC, nil
}
