package sim

import (
	"fmt"
	"time"

	"sdbp/internal/cache"
	"sdbp/internal/cpu"
	"sdbp/internal/hier"
	"sdbp/internal/trace"
	"sdbp/internal/workloads"
)

// MulticoreResult reports one quad-core shared-LLC run.
type MulticoreResult struct {
	// MixName labels the workload mix.
	MixName string
	// Policy is the shared LLC policy name.
	Policy string
	// IPC is each core's IPC measured over its first full pass of its
	// benchmark (the paper's per-thread IPC_i).
	IPC [4]float64
	// Instructions is each core's first-pass instruction count.
	Instructions [4]uint64
	// LLC is the shared cache's statistics over the whole run.
	LLC cache.Stats
	// L1 and L2 are the private levels' statistics summed over cores.
	L1, L2 cache.Stats
	// Cycles is the cores' cycle counts summed (truncated per core for
	// schedule-independent aggregation).
	Cycles uint64
	// MPKI is shared-LLC misses per thousand instructions summed over
	// cores (for the paper's multicore normalized MPKI).
	MPKI float64
	// Duration is the run's wall time.
	Duration time.Duration
}

// MulticoreOptions tunes a multicore run.
type MulticoreOptions struct {
	// Scale multiplies each benchmark's default stream length; 0 means 1.
	Scale float64
	// LLC overrides the shared LLC geometry; the zero value selects the
	// paper's 8MB 16-way.
	LLC cache.Config
}

func (o *MulticoreOptions) normalize() {
	if o.Scale == 0 {
		o.Scale = 1
	}
	if o.LLC.SizeBytes == 0 {
		o.LLC = hier.LLCConfig(4)
	}
}

// mcCore is one core's simulation state in a multicore run.
type mcCore struct {
	core   *hier.Core
	timing *cpu.Core
	gen    trace.Generator
	id     int

	target    uint64 // first-pass instruction count
	passInstr uint64
	doneIPC   float64
	done      bool
}

// RunMulticore simulates a quad-core mix sharing one LLC under the given
// policy, following the paper's methodology: every benchmark restarts
// when it finishes until all have completed at least one full pass, and
// each core's IPC is measured at the end of its own first pass. Cores
// interleave by simulated time: each step advances the core whose clock
// is furthest behind.
//
// Construction problems — an unknown mix member, an empty stream — are
// returned as errors rather than panicking, so one bad mix config
// cannot kill a whole evaluation campaign.
func RunMulticore(mix workloads.Mix, pol cache.Policy, opts MulticoreOptions) (MulticoreResult, error) {
	opts.normalize()
	start := time.Now()

	llc := cache.New(opts.LLC, pol)
	res := MulticoreResult{MixName: mix.Name, Policy: pol.Name()}

	cores := make([]*mcCore, 4)
	for i, name := range mix.Members {
		w, err := workloads.ByName(name)
		if err != nil {
			return MulticoreResult{}, fmt.Errorf("sim: mix %s: %w", mix.Name, err)
		}
		cores[i] = &mcCore{
			core:   hier.NewCore(hier.DefaultConfig(), llc),
			timing: cpu.New(cpu.DefaultConfig()),
			gen:    w.Generator(opts.Scale),
			id:     i,
		}
		// First-pass length: count it once (deterministic streams make
		// this exact). The instruction count is gaps + one per access.
		g := w.Generator(opts.Scale)
		for {
			a, ok := g.Next()
			if !ok {
				break
			}
			cores[i].target += uint64(a.Gap) + 1
		}
	}

	remaining := len(cores)
	for remaining > 0 {
		// Advance the core furthest behind in simulated time.
		var next *mcCore
		for _, c := range cores {
			if next == nil || c.timing.Cycles() < next.timing.Cycles() {
				next = c
			}
		}
		a, ok := next.gen.Next()
		if !ok {
			next.gen.Reset()
			a, ok = next.gen.Next()
			if !ok {
				return MulticoreResult{}, fmt.Errorf("sim: mix %s: empty workload stream on core %d", mix.Name, next.id)
			}
		}
		a.Thread = uint8(next.id)
		// Each core gets its own physical address space.
		a.Addr |= uint64(next.id+1) << 56
		level := next.core.Access(a)
		next.timing.Record(a.Gap, level.Latency(), a.DependentLoad)
		next.passInstr += uint64(a.Gap) + 1

		if !next.done && next.passInstr >= next.target {
			next.done = true
			next.doneIPC = next.timing.IPC()
			res.Instructions[next.id] = next.timing.Instructions()
			remaining--
		}
	}
	llc.Finish()

	var totalInstr uint64
	for i, c := range cores {
		res.IPC[i] = c.doneIPC
		totalInstr += res.Instructions[i]
		levels := c.core.Stats()
		res.L1 = res.L1.Add(levels.L1)
		res.L2 = res.L2.Add(levels.L2)
		res.Cycles += uint64(c.timing.Cycles())
	}
	res.LLC = llc.Stats()
	if totalInstr > 0 {
		res.MPKI = float64(res.LLC.Misses) / (float64(totalInstr) / 1000)
	}
	res.Duration = time.Since(start)
	return res, nil
}

// SingleIPC returns a benchmark's IPC running alone with the given LLC
// geometry under LRU — the denominator of the paper's weighted
// speedup. An unknown benchmark name is an error, not a panic.
func SingleIPC(name string, llcCfg cache.Config, scale float64, makeLRU func() cache.Policy) (float64, error) {
	w, err := workloads.ByName(name)
	if err != nil {
		return 0, err
	}
	r := RunSingle(w, makeLRU(), SingleOptions{Scale: scale, LLC: llcCfg})
	return r.IPC, nil
}
