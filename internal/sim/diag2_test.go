package sim

import (
	"fmt"
	"sort"
	"testing"

	"sdbp/internal/cache"
	"sdbp/internal/cpu"
	"sdbp/internal/dbrb"
	"sdbp/internal/hier"
	"sdbp/internal/policy"
	"sdbp/internal/predictor"
	"sdbp/internal/workloads"
)

// TestDiagMissByPC attributes LLC misses to code sites under two
// policies (diagnostic; run with -run MissByPC -v).
func TestDiagMissByPC(t *testing.T) {
	if testing.Short() {
		t.Skip("diagnostic")
	}
	w, err := workloads.ByName("437.leslie3d")
	if err != nil {
		t.Fatal(err)
	}
	for _, mk := range []struct {
		name string
		pol  func() cache.Policy
	}{
		{"LRU", func() cache.Policy { return policy.NewLRU() }},
		{"TDBP", func() cache.Policy { return dbrb.New(policy.NewLRU(), predictor.NewRefTrace()) }},
		{"Sampler", func() cache.Policy {
			return dbrb.New(policy.NewLRU(), predictor.NewSampler(predictor.DefaultSamplerConfig()))
		}},
	} {
		pol := mk.pol()
		llc := cache.New(hier.LLCConfig(1), pol)
		core := hier.NewCore(hier.DefaultConfig(), llc)
		timing := cpu.New(cpu.DefaultConfig())
		miss := map[uint64]int{}
		hit := map[uint64]int{}
		gen := w.Generator(0.5)
		for {
			a, ok := gen.Next()
			if !ok {
				break
			}
			before := llc.Stats()
			level := core.Access(a)
			after := llc.Stats()
			if after.Accesses > before.Accesses {
				site := a.PC &^ 0xFF // bucket nearby burst sites
				if after.Misses > before.Misses {
					miss[site]++
				} else {
					hit[site]++
				}
			}
			timing.Record(a.Gap, level.Latency(), a.DependentLoad)
		}
		type row struct {
			pc   uint64
			m, h int
		}
		var rows []row
		for pc, m := range miss {
			rows = append(rows, row{pc, m, hit[pc]})
		}
		sort.Slice(rows, func(i, j int) bool { return rows[i].m > rows[j].m })
		t.Logf("=== %s: total misses %d", mk.name, llc.Stats().Misses)
		for i, r := range rows {
			if i >= 8 {
				break
			}
			t.Logf("  pc=%s miss=%d hit=%d", siteName(r.pc), r.m, r.h)
		}
	}
}

// siteName decodes the workload PC layout for readability.
func siteName(pc uint64) string {
	bench := (pc - 0x400000) >> 24
	slot := (pc >> 12) & 0xFFF
	off := pc & 0xFFF
	return fmt.Sprintf("bench%d.k%d+0x%x", bench, slot, off)
}
