package sim

// Interval telemetry for single-core runs: when SingleOptions.Probe
// asks for it, the drive loop snapshots deltas of the LLC's
// cache.Stats, the timing model's cycles and the policy's
// dbrb.Accuracy every Probe.Interval retired instructions, producing
// the deterministic probe.Series the exporters and cmd/report consume.
// With Probe nil (the default) none of this exists: the loop pays one
// nil check per access and the simulated results are byte-identical to
// a probe-free build (pinned by the committed goldens).

import (
	"reflect"

	"sdbp/internal/cache"
	"sdbp/internal/cpu"
	"sdbp/internal/dbrb"
	"sdbp/internal/predictor"
	"sdbp/internal/probe"
)

// accuracyProvider is the fillAccuracy-style extraction interface the
// dead-block policies (and wrappers like the dueling variant) satisfy.
type accuracyProvider interface {
	Accuracy() dbrb.Accuracy
	Predictor() predictor.Predictor
}

// accuracyOf nil-safely extracts the accuracy provider from a policy.
// Non-DBRB baselines (LRU, DIP, RRIP, ...) simply don't implement the
// interface; a typed-nil policy pointer smuggled inside a non-nil
// interface is also rejected, so interval and end-of-run accuracy
// observation never panics on a policy without real accuracy state.
func accuracyOf(pol cache.Policy) (accuracyProvider, bool) {
	d, ok := pol.(accuracyProvider)
	if !ok || d == nil {
		return nil, false
	}
	if v := reflect.ValueOf(d); v.Kind() == reflect.Pointer && v.IsNil() {
		return nil, false
	}
	return d, true
}

// attributionProvider is implemented by policies with a per-PC
// death-attribution table (package dbrb).
type attributionProvider interface {
	EnableAttribution()
	Attribution() *dbrb.Attribution
}

// enableAttribution opts the policy into per-PC attribution when it
// supports it, before the cache's Reset sizes the table. Returns the
// provider for end-of-run export, or nil for non-DBRB policies.
func enableAttribution(pol cache.Policy) attributionProvider {
	ap, ok := pol.(attributionProvider)
	if !ok || ap == nil {
		return nil
	}
	if v := reflect.ValueOf(ap); v.Kind() == reflect.Pointer && v.IsNil() {
		return nil
	}
	ap.EnableAttribution()
	return ap
}

// intervalSampler accumulates the interval time series during the
// drive loop. All reads are of state the simulation already keeps
// (cache.Stats, the timing model's counters, the policy's accuracy
// tallies), so sampling perturbs nothing it measures.
type intervalSampler struct {
	every  uint64
	next   uint64
	llc    *cache.Cache
	timing *cpu.Core
	acc    accuracyProvider // nil for non-DBRB policies

	prevInstr  uint64
	prevCycles uint64
	prevStats  cache.Stats
	prevAcc    dbrb.Accuracy

	intervals []probe.Interval
}

// newIntervalSampler returns a sampler, or nil when cfg asks for no
// interval telemetry — the drive loop's nil check then disables
// sampling entirely.
func newIntervalSampler(cfg *probe.Config, llc *cache.Cache, timing *cpu.Core, pol cache.Policy) *intervalSampler {
	if cfg == nil || !cfg.Enabled() {
		return nil
	}
	s := &intervalSampler{every: cfg.Interval, next: cfg.Interval, llc: llc, timing: timing}
	s.acc, _ = accuracyOf(pol)
	return s
}

// maybeSample emits an interval when the retired-instruction count has
// crossed the next boundary. A single access can retire many
// instructions (its gap), so one interval may cover more than one
// boundary; the next boundary then re-anchors past the current count,
// which keeps interval emission a pure function of the access stream.
func (s *intervalSampler) maybeSample() {
	instr := s.timing.Instructions()
	if instr < s.next {
		return
	}
	s.sample(instr)
	s.next += s.every
	if s.next <= instr {
		s.next = instr + s.every
	}
}

// finish emits the trailing partial interval, if the run retired any
// instructions past the last boundary.
func (s *intervalSampler) finish() {
	if instr := s.timing.Instructions(); instr > s.prevInstr {
		s.sample(instr)
	}
}

func (s *intervalSampler) sample(instr uint64) {
	st := s.llc.Stats()
	cycles := uint64(s.timing.Cycles())
	var acc dbrb.Accuracy
	if s.acc != nil {
		acc = s.acc.Accuracy()
	}
	iv := probe.Interval{
		Index:           len(s.intervals),
		Instructions:    instr,
		DInstructions:   instr - s.prevInstr,
		DCycles:         cycles - s.prevCycles,
		DAccesses:       st.Accesses - s.prevStats.Accesses,
		DHits:           st.Hits - s.prevStats.Hits,
		DMisses:         st.Misses - s.prevStats.Misses,
		DBypasses:       st.Bypasses - s.prevStats.Bypasses,
		DEvictions:      st.Evictions - s.prevStats.Evictions,
		DPredictions:    acc.Predictions - s.prevAcc.Predictions,
		DPositives:      acc.Positives - s.prevAcc.Positives,
		DFalsePositives: acc.FalsePositives - s.prevAcc.FalsePositives,
	}
	iv.ComputeRates()
	s.intervals = append(s.intervals, iv)
	s.prevInstr, s.prevCycles, s.prevStats, s.prevAcc = instr, cycles, st, acc
}

// buildSeries assembles the run's complete telemetry from the finished
// result: header aggregates, the interval time series, and the per-PC
// table bounded to cfg.TopK rows plus a rollup so sums still reconcile.
func buildSeries(res *SingleResult, cfg *probe.Config, ivs []probe.Interval, ap attributionProvider) *probe.Series {
	s := &probe.Series{
		Run: probe.Run{
			Benchmark:    res.Benchmark,
			Policy:       res.Policy,
			Interval:     cfg.Interval,
			Instructions: res.Instructions,
			Cycles:       res.Cycles,
			IPC:          res.IPC,
			Accesses:     res.LLC.Accesses,
			Misses:       res.LLC.Misses,
			Evictions:    res.LLC.Evictions,
		},
		Intervals: ivs,
	}
	if res.Accuracy != nil {
		s.Run.Predictions = res.Accuracy.Predictions
		s.Run.Positives = res.Accuracy.Positives
		s.Run.FalsePositives = res.Accuracy.FalsePositives
	}
	if ap != nil {
		if at := ap.Attribution(); at != nil {
			rows, rollup, rolled := at.TopK(cfg.TopKOrDefault())
			for _, r := range rows {
				s.PCs = append(s.PCs, probe.PCRow{
					PC:             probe.PCHex(r.PC),
					Predictions:    r.Predictions,
					Positives:      r.Positives,
					FalsePositives: r.FalsePositives,
					Evictions:      r.Evictions,
				})
			}
			if rolled {
				s.PCs = append(s.PCs, probe.PCRow{
					PC:             "(other)",
					Other:          true,
					Predictions:    rollup.Predictions,
					Positives:      rollup.Positives,
					FalsePositives: rollup.FalsePositives,
					Evictions:      rollup.Evictions,
				})
			}
		}
	}
	return s
}
