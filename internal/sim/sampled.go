package sim

// Sampled simulation: instead of driving the whole reference stream
// through the hierarchy, a sampled run materializes just the warm-up
// and measure windows a sampling.Plan selected — one generation pass
// that also replays the windows through the policy-independent private
// levels, reusable across policies — then replays each window against
// a policy: functional warming of the LLC first, then a measured
// interval with the timing model, combining the per-window deltas into
// full-run estimates with error bounds (sampling.Estimate). The full
// drive loop in RunSingle is untouched: with sampling off, nothing
// here runs.

import (
	"fmt"
	"time"

	"sdbp/internal/cache"
	"sdbp/internal/cpu"
	"sdbp/internal/dbrb"
	"sdbp/internal/hier"
	"sdbp/internal/mem"
	"sdbp/internal/probe"
	"sdbp/internal/sampling"
	"sdbp/internal/trace"
	"sdbp/internal/workloads"
)

// Window is one pick's materialized access stream after the
// policy-independent private levels (L1/L2, architecturally plain LRU)
// have been replayed once during materialization. Per-policy replays
// therefore drive only the LLC and the timing model — the expensive
// part of a window is paid once per workload, not once per policy.
type Window struct {
	// Warm holds the LLC-bound records (gaps rewritten to LLC-stream
	// coordinates, exactly as hier.Core delivers them) of the warm-up
	// range (WarmStart, Start]. Functional warming replays these
	// through the LLC with no timing model. It may cover less than the
	// plan's warm-up when the pick sits near the stream's beginning or
	// close behind the previous pick (warm-ups clip at the previous
	// pick's End so no access ever replays twice), and is empty when
	// Warmup is 0.
	Warm []mem.Access
	// Measure covers the pick's instruction range (Start, End], every
	// access with its private-level resolution precomputed. It can be
	// short or empty when the plan outlives the stream (for example a
	// plan built at a larger scale); the estimator drops empty
	// measurements and renormalizes.
	Measure []MeasuredAccess
}

// MeasuredAccess is one measured-range access with its precomputed
// private-level resolution.
type MeasuredAccess struct {
	mem.Access
	// Level is where the private levels resolved the access: LevelL1
	// and LevelL2 fix the latency outright; LevelMemory means the
	// access reaches the LLC, where the policy under test decides
	// between an LLC hit and a memory access.
	Level hier.Level
	// LLCGap is the rewritten instruction gap of the LLC-bound record
	// (meaningful only when Level is LevelMemory).
	LLCGap uint32
}

// Materialized is one workload's sampled access stream: every window a
// plan needs, captured in a single generation pass so the (dominant)
// generation cost is paid once and the windows replay against any
// number of policies.
type Materialized struct {
	Benchmark string
	Scale     float64
	Plan      *sampling.Plan
	// Windows aligns 1:1 with Plan.Picks.
	Windows []Window
	// TotalInstructions and TotalAccesses are the full stream's counts
	// (the extrapolation target for estimates).
	TotalInstructions uint64
	TotalAccesses     uint64
	// GenDuration is the wall time of the materialization pass.
	GenDuration time.Duration
}

// SimInstructions returns the instructions a replay of these windows
// covers (warm-up plus measured; warm gaps are in LLC-stream
// coordinates, so both sums count raw retired instructions).
func (m *Materialized) SimInstructions() uint64 {
	var n uint64
	for i := range m.Windows {
		for _, a := range m.Windows[i].Warm {
			n += uint64(a.Gap) + 1
		}
		for _, a := range m.Windows[i].Measure {
			n += uint64(a.Gap) + 1
		}
	}
	return n
}

// MaterializeSampled generates the workload's reference stream once,
// replays the windows' accesses through the policy-independent private
// levels (a fresh L1/L2 stack, exactly what a per-policy replay used
// to pay), and captures each window in LLC-replay form. scale must
// match the scale the plan's pilot ran at — window boundaries are
// instruction counts into that exact stream.
func MaterializeSampled(w workloads.Workload, plan *sampling.Plan, scale float64) (*Materialized, error) {
	if err := plan.Validate(); err != nil {
		return nil, err
	}
	if scale == 0 {
		scale = 1
	}
	start := time.Now()

	m := &Materialized{
		Benchmark: w.Name,
		Scale:     scale,
		Plan:      plan,
		Windows:   make([]Window, len(plan.Picks)),
	}
	// Window instruction ranges: warm covers (warmLo, Start], measure
	// (Start, End]. A warm range is clipped at the previous pick's End:
	// the replay drives all windows through one LLC in stream order, so
	// anything before that boundary was already played (as the previous
	// window's warm-up or measurement) and replaying it again would
	// corrupt recency state and double-train predictors. Clipping keeps
	// the replayed stream strictly monotone — the ranges partition a
	// subsequence of the stream.
	warmLo := make([]uint64, len(plan.Picks))
	for i, pk := range plan.Picks {
		warmLo[i] = 0
		if pk.Start > plan.Warmup {
			warmLo[i] = pk.Start - plan.Warmup
		}
		if i > 0 && warmLo[i] < plan.Picks[i-1].End {
			warmLo[i] = plan.Picks[i-1].End
		}
	}

	// The private-level filter sees exactly the accesses inside windows,
	// in stream order, once each — the same stream the per-policy hier
	// stack processed before filtering moved here. A capture-only core
	// (nil LLC) delivers the gap-rewritten LLC-bound records.
	filter := hier.NewCore(hier.DefaultConfig(), nil)
	var llcRec mem.Access
	var llcBound bool
	filter.CaptureLLC(func(a mem.Access) { llcRec, llcBound = a, true })

	var cum uint64 // instructions retired after the current access
	lo := 0        // first window whose End is still ahead of cum
	gen := w.Generator(scale)
	capture := func(a mem.Access) {
		cum += uint64(a.Gap) + 1
		m.TotalAccesses++
		for lo < len(plan.Picks) && plan.Picks[lo].End < cum {
			lo++
		}
		filtered := false // filter.Access ran for this access
		level := hier.LevelMemory
		for i := lo; i < len(plan.Picks); i++ {
			if cum <= warmLo[i] {
				// Windows are Start-sorted and warm-ups have one fixed
				// length, so no later window can contain cum either.
				break
			}
			inWarm := cum <= plan.Picks[i].Start
			inMeasure := !inWarm && cum <= plan.Picks[i].End
			if !inWarm && !inMeasure {
				continue
			}
			if !filtered {
				llcBound = false
				level = filter.Access(a)
				filtered = true
			}
			win := &m.Windows[i]
			if inWarm {
				if llcBound {
					win.Warm = append(win.Warm, llcRec)
				}
			} else {
				ma := MeasuredAccess{Access: a, Level: level}
				if llcBound {
					ma.LLCGap = llcRec.Gap
				}
				win.Measure = append(win.Measure, ma)
			}
		}
	}
	if bg, ok := gen.(trace.BatchGenerator); ok {
		var buf [genBatch]mem.Access
		for {
			n := bg.NextBatch(buf[:])
			if n == 0 {
				break
			}
			for i := range buf[:n] {
				capture(buf[i])
			}
		}
	} else {
		for {
			a, ok := gen.Next()
			if !ok {
				break
			}
			capture(a)
		}
	}
	m.TotalInstructions = cum
	m.GenDuration = time.Since(start)
	return m, nil
}

// SampledResult reports one policy's sampled run.
type SampledResult struct {
	Benchmark string
	Policy    string
	// Estimate is the extrapolated full-run statistics with error
	// bounds.
	Estimate sampling.Estimate
	// Measured aligns 1:1 with the plan's picks: each entry is the
	// measured window's telemetry deltas in pilot coordinates
	// (Instructions = the pick's End).
	Measured []probe.Interval
	// Series is the sampled run's telemetry in the standard probe
	// form, so the JSONL/trace-event exporters and cmd/report work on
	// sampled runs unchanged.
	Series *probe.Series
	// Duration is the replay's wall time (excluding materialization,
	// which is shared across policies).
	Duration time.Duration
}

// snapshot captures the counters a measured window's deltas are taken
// over — the same state intervalSampler reads during full runs.
type snapshot struct {
	instr  uint64
	cycles uint64
	stats  cache.Stats
	acc    dbrb.Accuracy
}

func snap(llc *cache.Cache, timing *cpu.Core, acc accuracyProvider) snapshot {
	s := snapshot{
		instr:  timing.Instructions(),
		cycles: uint64(timing.Cycles()),
		stats:  llc.Stats(),
	}
	// Before the first instruction the timing model already reports the
	// pipeline-fill cycles. The pilot's interval sampler charges those
	// to interval 0 (its initial delta base is zero), so a measurement
	// starting at instruction 0 must too.
	if s.instr == 0 {
		s.cycles = 0
	}
	if acc != nil {
		s.acc = acc.Accuracy()
	}
	return s
}

// RunSampledTrace replays materialized windows against one policy:
// functional warming (LLC state only, no timing), then the measured
// interval, per window, through a fresh LLC and timing model. The
// private levels were already replayed during materialization — their
// resolutions are baked into the windows — so the per-policy cost is
// the LLC-bound stream plus the measured ranges' timing. The policy
// must be freshly constructed (cache.New resets it), exactly as in
// RunSingle.
func RunSampledTrace(m *Materialized, pol cache.Policy, opts SingleOptions) (SampledResult, error) {
	opts.normalize()
	if opts.CaptureStream || opts.KeepLineEfficiencies {
		return SampledResult{}, fmt.Errorf("sim: stream capture and line efficiencies are full-run features; disable them for sampled runs")
	}
	if opts.Probe != nil && opts.Probe.Enabled() {
		return SampledResult{}, fmt.Errorf("sim: interval telemetry granularity is fixed by the sampling plan; drop the probe config for sampled runs")
	}
	start := time.Now()

	llc := cache.New(opts.LLC, pol)
	timing := cpu.New(cpu.DefaultConfig())
	acc, _ := accuracyOf(pol)

	res := SampledResult{
		Benchmark: m.Benchmark,
		Policy:    pol.Name(),
		Measured:  make([]probe.Interval, len(m.Windows)),
	}
	// Scratch for the measured ranges' LLC-bound subsequence, reused
	// across windows. LLC state never depends on the timing model and
	// snapshots are taken only at window boundaries, so batching the
	// whole LLC leg ahead of the timing pass is byte-identical to the
	// interleaved per-access replay.
	var llcAs []mem.Access
	var llcRs []cache.Result
	for i := range m.Windows {
		win := &m.Windows[i]
		llc.AccessBatch(win.Warm, nil)
		before := snap(llc, timing, acc)
		if cap(llcAs) < len(win.Measure) {
			llcAs = make([]mem.Access, len(win.Measure))
			llcRs = make([]cache.Result, len(win.Measure))
		}
		n := 0
		for j := range win.Measure {
			ma := &win.Measure[j]
			if ma.Level == hier.LevelMemory {
				llcA := ma.Access
				llcA.Gap = ma.LLCGap
				llcAs[n] = llcA
				n++
			}
		}
		llc.AccessBatch(llcAs[:n], llcRs[:n])
		n = 0
		for j := range win.Measure {
			ma := &win.Measure[j]
			level := ma.Level
			if level == hier.LevelMemory {
				if llcRs[n].Hit {
					level = hier.LevelLLC
				}
				n++
			}
			timing.Record(ma.Gap, level.Latency(), ma.DependentLoad)
		}
		after := snap(llc, timing, acc)
		iv := probe.Interval{
			Index:           i,
			Instructions:    m.Plan.Picks[i].End,
			DInstructions:   after.instr - before.instr,
			DCycles:         after.cycles - before.cycles,
			DAccesses:       after.stats.Accesses - before.stats.Accesses,
			DHits:           after.stats.Hits - before.stats.Hits,
			DMisses:         after.stats.Misses - before.stats.Misses,
			DBypasses:       after.stats.Bypasses - before.stats.Bypasses,
			DEvictions:      after.stats.Evictions - before.stats.Evictions,
			DPredictions:    after.acc.Predictions - before.acc.Predictions,
			DPositives:      after.acc.Positives - before.acc.Positives,
			DFalsePositives: after.acc.FalsePositives - before.acc.FalsePositives,
		}
		iv.ComputeRates()
		res.Measured[i] = iv
	}
	llc.Finish()

	est, err := m.Plan.Estimate(res.Measured, m.TotalInstructions, m.SimInstructions())
	if err != nil {
		return SampledResult{}, fmt.Errorf("sim: %s/%s: %w", m.Benchmark, res.Policy, err)
	}
	res.Estimate = est
	res.Series = &probe.Series{
		Run: probe.Run{
			Benchmark:    m.Benchmark,
			Policy:       res.Policy,
			Interval:     m.Plan.Interval,
			Instructions: m.SimInstructions(),
			Cycles:       uint64(timing.Cycles()),
			IPC:          timing.IPC(),
			Accesses:     llc.Stats().Accesses,
			Misses:       llc.Stats().Misses,
			Evictions:    llc.Stats().Evictions,
		},
		Intervals: res.Measured,
	}
	if acc != nil {
		a := acc.Accuracy()
		res.Series.Run.Predictions = a.Predictions
		res.Series.Run.Positives = a.Positives
		res.Series.Run.FalsePositives = a.FalsePositives
	}
	res.Duration = time.Since(start)
	return res, nil
}

// SelectPlan runs the pilot for one workload — a full probed run under
// the pilot policy — and clusters its interval telemetry into a
// sampling plan. The pilot policy only shapes the dead-prediction
// feature dimensions; the plan replays against any policy. The pilot's
// own full-run IPC and miss rate are recorded on the plan as the
// calibration truth for pilot-calibrated error bounds.
func SelectPlan(w workloads.Workload, pilot cache.Policy, opts SingleOptions, interval uint64, cfg sampling.Config) (sampling.Plan, error) {
	if interval == 0 {
		return sampling.Plan{}, fmt.Errorf("sim: sampling needs a positive telemetry interval")
	}
	opts.Probe = &probe.Config{Interval: interval}
	res := RunSingle(w, pilot, opts)
	if res.Probe == nil || len(res.Probe.Intervals) == 0 {
		return sampling.Plan{}, fmt.Errorf("sim: pilot run of %s produced no interval telemetry", w.Name)
	}
	plan, err := sampling.Select(res.Probe.Intervals, interval, cfg)
	if err != nil {
		return sampling.Plan{}, err
	}
	plan.PilotIPC = res.IPC
	if res.LLC.Accesses > 0 {
		plan.PilotMissRate = float64(res.LLC.Misses) / float64(res.LLC.Accesses)
	}
	return plan, nil
}
