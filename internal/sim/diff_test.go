package sim

import (
	"testing"

	"sdbp/internal/dbrb"
	"sdbp/internal/policy"
	"sdbp/internal/predictor"
	"sdbp/internal/workloads"
)

func TestCompareLLCSamePolicyIsIdentical(t *testing.T) {
	w := hmmer(t)
	d := CompareLLC(w, policy.NewLRU(), policy.NewLRU(), SingleOptions{Scale: testScale})
	if d.OnlyAHit != 0 || d.OnlyBHit != 0 {
		t.Errorf("identical policies diverged: %+v", d)
	}
	if d.Accesses() == 0 {
		t.Fatal("no LLC accesses classified")
	}
}

func TestCompareLLCMatchesIndependentRuns(t *testing.T) {
	// The diff's per-policy hit counts must equal what independent runs
	// of each policy report.
	w := hmmer(t)
	mkS := func() *dbrb.Policy {
		return dbrb.New(policy.NewLRU(), predictor.NewSampler(predictor.DefaultSamplerConfig()))
	}
	d := CompareLLC(w, policy.NewLRU(), mkS(), SingleOptions{Scale: testScale})
	lru := RunSingle(w, policy.NewLRU(), SingleOptions{Scale: testScale})
	smp := RunSingle(w, mkS(), SingleOptions{Scale: testScale})
	if gotA := d.BothHit + d.OnlyAHit; gotA != lru.LLC.Hits {
		t.Errorf("A hits %d != independent LRU hits %d", gotA, lru.LLC.Hits)
	}
	if gotB := d.BothHit + d.OnlyBHit; gotB != smp.LLC.Hits {
		t.Errorf("B hits %d != independent sampler hits %d", gotB, smp.LLC.Hits)
	}
}

func TestSamplerDamageIsSmall(t *testing.T) {
	if testing.Short() {
		t.Skip("heavy")
	}
	// The sampler's *true* damage (LRU hit, sampler missed) must be far
	// smaller than its gains on a benchmark it wins.
	w := hmmer(t)
	d := CompareLLC(w, policy.NewLRU(),
		dbrb.New(policy.NewLRU(), predictor.NewSampler(predictor.DefaultSamplerConfig())),
		SingleOptions{Scale: 0.2})
	if d.GainRate() <= d.DamageRate() {
		t.Errorf("gain %.4f not above damage %.4f", d.GainRate(), d.DamageRate())
	}
}

func TestDiffRatesZeroSafe(t *testing.T) {
	var d DiffResult
	if d.DamageRate() != 0 || d.GainRate() != 0 {
		t.Error("zero diff has nonzero rates")
	}
}

func TestCompareLLCAcrossBenchmarks(t *testing.T) {
	if testing.Short() {
		t.Skip("heavy")
	}
	// Smoke over a few behavior classes.
	for _, name := range []string{"429.mcf", "462.libquantum", "473.astar"} {
		w, err := workloads.ByName(name)
		if err != nil {
			t.Fatal(err)
		}
		d := CompareLLC(w, policy.NewLRU(),
			dbrb.New(policy.NewLRU(), predictor.NewSampler(predictor.DefaultSamplerConfig())),
			SingleOptions{Scale: testScale})
		if d.Accesses() == 0 {
			t.Errorf("%s: no accesses classified", name)
		}
	}
}
