package sim

import (
	"bytes"
	"testing"

	"sdbp/internal/dbrb"
	"sdbp/internal/policy"
	"sdbp/internal/predictor"
	"sdbp/internal/probe"
	"sdbp/internal/workloads"
)

func samplerPolicy() *dbrb.Policy {
	return dbrb.New(policy.NewLRU(), predictor.NewSampler(predictor.DefaultSamplerConfig()))
}

func probeOpts(interval uint64) SingleOptions {
	return SingleOptions{Scale: 0.02, Probe: &probe.Config{Interval: interval, TopK: 10}}
}

func probeWorkload(t *testing.T) workloads.Workload {
	t.Helper()
	w, err := workloads.ByName("456.hmmer")
	if err != nil {
		t.Fatal(err)
	}
	return w
}

// TestProbeSeriesReconciles checks the run-level invariants the report
// generator relies on: interval deltas sum to the run totals, and the
// per-PC table's prediction columns sum to the aggregate dbrb.Accuracy
// counters even after the top-K rollup.
func TestProbeSeriesReconciles(t *testing.T) {
	r := RunSingle(probeWorkload(t), samplerPolicy(), probeOpts(50_000))
	s := r.Probe
	if s == nil {
		t.Fatal("probe requested but result carries no series")
	}
	if len(s.Intervals) < 2 {
		t.Fatalf("only %d intervals; scale or interval mis-sized for the test", len(s.Intervals))
	}
	instr, cycles, misses := s.IntervalTotals()
	if instr != r.Instructions || instr != s.Run.Instructions {
		t.Errorf("interval instruction sum %d != run total %d", instr, r.Instructions)
	}
	if cycles != r.Cycles {
		t.Errorf("interval cycle sum %d != run total %d", cycles, r.Cycles)
	}
	if misses != r.LLC.Misses {
		t.Errorf("interval miss sum %d != run total %d", misses, r.LLC.Misses)
	}
	if r.Accuracy == nil {
		t.Fatal("sampler policy run has no accuracy")
	}
	pred, pos, fp, ev := s.PCTotals()
	if pred != r.Accuracy.Predictions || pos != r.Accuracy.Positives || fp != r.Accuracy.FalsePositives {
		t.Errorf("per-PC sums (%d,%d,%d) != aggregate accuracy (%d,%d,%d)",
			pred, pos, fp, r.Accuracy.Predictions, r.Accuracy.Positives, r.Accuracy.FalsePositives)
	}
	if ev != r.LLC.Evictions {
		t.Errorf("per-PC eviction sum %d != LLC evictions %d", ev, r.LLC.Evictions)
	}
	// The table is bounded: at most TopK named rows plus one rollup.
	if len(s.PCs) > 10+1 {
		t.Errorf("%d PC rows exported, want <= TopK+1 = 11", len(s.PCs))
	}
	// Interval boundaries are monotone and indexed from 0.
	for i, iv := range s.Intervals {
		if iv.Index != i {
			t.Errorf("interval %d has index %d", i, iv.Index)
		}
		if iv.DInstructions == 0 {
			t.Errorf("interval %d retired no instructions", i)
		}
	}
}

// TestProbeDeterministic pins that telemetry is a pure function of the
// simulated work: two identical runs produce byte-identical JSONL.
func TestProbeDeterministic(t *testing.T) {
	w := probeWorkload(t)
	r1 := RunSingle(w, samplerPolicy(), probeOpts(50_000))
	r2 := RunSingle(w, samplerPolicy(), probeOpts(50_000))
	b1, err := probe.MarshalJSONL([]probe.Series{*r1.Probe})
	if err != nil {
		t.Fatal(err)
	}
	b2, err := probe.MarshalJSONL([]probe.Series{*r2.Probe})
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(b1, b2) {
		t.Error("two identical probed runs produced different JSONL")
	}
}

// TestProbeDisabledLeavesResultUntouched pins the off switch: a nil
// Probe config (and an explicit zero-interval one) produce no series
// and the same simulation results as an unprobed run.
func TestProbeDisabledLeavesResultUntouched(t *testing.T) {
	w := probeWorkload(t)
	base := RunSingle(w, samplerPolicy(), SingleOptions{Scale: 0.02})
	if base.Probe != nil {
		t.Error("unprobed run carries a series")
	}
	zero := RunSingle(w, samplerPolicy(), SingleOptions{Scale: 0.02, Probe: &probe.Config{}})
	if zero.Probe != nil {
		t.Error("zero-interval probe config produced a series")
	}
	probed := RunSingle(w, samplerPolicy(), probeOpts(50_000))
	if base.LLC != probed.LLC || base.Instructions != probed.Instructions || base.Cycles != probed.Cycles {
		t.Errorf("probing changed the simulation: %+v vs %+v", base.LLC, probed.LLC)
	}
	if *base.Accuracy != *probed.Accuracy {
		t.Errorf("probing changed predictor accuracy: %+v vs %+v", base.Accuracy, probed.Accuracy)
	}
}

// TestProbeNonDBRBPolicy is the nil-safety regression test for the
// satellite fix: interval and accuracy observation must tolerate
// policies without dbrb.Accuracy. A plain-LRU probed run yields a
// series with zero accuracy columns and no PC table — and no panic.
func TestProbeNonDBRBPolicy(t *testing.T) {
	r := RunSingle(probeWorkload(t), policy.NewLRU(), probeOpts(50_000))
	if r.Accuracy != nil {
		t.Error("LRU run reports accuracy")
	}
	s := r.Probe
	if s == nil {
		t.Fatal("LRU probed run has no series")
	}
	if len(s.Intervals) == 0 {
		t.Fatal("LRU probed run has no intervals")
	}
	if len(s.PCs) != 0 {
		t.Errorf("LRU run exported %d PC rows, want none", len(s.PCs))
	}
	if s.Run.Predictions != 0 || s.Run.Positives != 0 || s.Run.FalsePositives != 0 {
		t.Errorf("LRU run header has nonzero accuracy: %+v", s.Run)
	}
	for _, iv := range s.Intervals {
		if iv.DPredictions != 0 || iv.DeadRate != 0 || iv.FPRate != 0 {
			t.Errorf("LRU interval %d has predictor activity: %+v", iv.Index, iv)
		}
	}
}

// TestAccuracyOfTypedNil pins the typed-nil guard: a nil *dbrb.Policy
// (or nil *dbrb.Dueling) inside a non-nil cache.Policy interface must
// be rejected, not dereferenced.
func TestAccuracyOfTypedNil(t *testing.T) {
	if _, ok := accuracyOf((*dbrb.Policy)(nil)); ok {
		t.Error("accuracyOf accepted a typed-nil *dbrb.Policy")
	}
	if _, ok := accuracyOf((*dbrb.Dueling)(nil)); ok {
		t.Error("accuracyOf accepted a typed-nil *dbrb.Dueling")
	}
	if _, ok := accuracyOf(nil); ok {
		t.Error("accuracyOf accepted a nil interface")
	}
	if ap := enableAttribution((*dbrb.Policy)(nil)); ap != nil {
		t.Error("enableAttribution accepted a typed-nil policy")
	}
	// And the end-of-run extraction path survives a typed nil too.
	var res SingleResult
	fillAccuracy(&res, (*dbrb.Policy)(nil))
	if res.Accuracy != nil {
		t.Error("fillAccuracy filled accuracy from a typed-nil policy")
	}
}

// TestProbeDuelingPolicy covers the wrapper path end to end: the
// dueling policy exposes accuracy and attribution through embedding,
// and its series must reconcile the same way.
func TestProbeDuelingPolicy(t *testing.T) {
	pol := dbrb.NewDueling(policy.NewLRU(), predictor.NewSampler(predictor.DefaultSamplerConfig()))
	r := RunSingle(probeWorkload(t), pol, probeOpts(50_000))
	if r.Probe == nil || r.Accuracy == nil {
		t.Fatal("dueling probed run missing series or accuracy")
	}
	pred, pos, fp, _ := r.Probe.PCTotals()
	if pred != r.Accuracy.Predictions || pos != r.Accuracy.Positives || fp != r.Accuracy.FalsePositives {
		t.Errorf("dueling per-PC sums (%d,%d,%d) != accuracy (%d,%d,%d)",
			pred, pos, fp, r.Accuracy.Predictions, r.Accuracy.Positives, r.Accuracy.FalsePositives)
	}
}
