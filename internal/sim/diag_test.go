package sim

import (
	"testing"

	"sdbp/internal/dbrb"
	"sdbp/internal/policy"
	"sdbp/internal/predictor"
	"sdbp/internal/workloads"
)

// TestDiagSampler is a diagnostic: run with -run Diag -v to dump the
// sampling predictor's behavior on one benchmark.
func TestDiagSampler(t *testing.T) {
	if testing.Short() {
		t.Skip("diagnostic")
	}
	w, err := workloads.ByName("437.leslie3d")
	if err != nil {
		t.Fatal(err)
	}
	s := predictor.NewSampler(predictor.DefaultSamplerConfig())
	trains := map[uint32][2]int{} // sig -> {dead, live}
	s.TrainHook = func(sig uint32, dead bool) {
		c := trains[sig]
		if dead {
			c[0]++
		} else {
			c[1]++
		}
		trains[sig] = c
	}
	pol := dbrb.New(policy.NewLRU(), s)
	r := RunSingle(w, pol, SingleOptions{Scale: 0.25})
	t.Logf("MPKI=%.2f IPC=%.3f eff=%.2f", r.MPKI, r.IPC, r.Efficiency)
	t.Logf("LLC: acc=%d hit=%d miss=%d bypass=%d evict=%d",
		r.LLC.Accesses, r.LLC.Hits, r.LLC.Misses, r.LLC.Bypasses, r.LLC.Evictions)
	t.Logf("coverage=%.3f fp=%.4f updateFrac=%.4f",
		r.Accuracy.Coverage(), r.Accuracy.FalsePositiveRate(), r.UpdateFraction)

	// Known code sites for 437.leslie3d (bench id 9): kernel 1 is the
	// lagged stream, kernel 2 the generational member, kernel 3 the hot
	// set.
	streamBase := uint64(0x400000 + 9<<24 + 1<<12)
	genBase := uint64(0x400000 + 9<<24 + 2<<12)
	sites := map[string]uint64{
		"lead": streamBase, "lag": streamBase + 0x400,
		"setup": genBase, "use1": genBase + 0x108, "use2": genBase + 0x110,
		"final": genBase + 0x800,
	}
	for name, pc := range sites {
		c := trains[predictor.SignatureOf(pc)]
		t.Logf("%-7s conf=%d trains dead=%d live=%d",
			name, s.ConfidenceOf(pc), c[0], c[1])
	}
	var totDead, totLive int
	for _, c := range trains {
		totDead += c[0]
		totLive += c[1]
	}
	t.Logf("total trains: dead=%d live=%d distinct sigs=%d", totDead, totLive, len(trains))
}
