package sim

import (
	"testing"

	"sdbp/internal/dbrb"
	"sdbp/internal/obs"
	"sdbp/internal/policy"
	"sdbp/internal/predictor"
	"sdbp/internal/workloads"
)

// levelCounters reads one level's sim_ counters back out of a registry.
func levelCounters(reg *obs.Registry, level string) (accesses, hits, misses uint64) {
	pfx := obs.SimPrefix + level + "_"
	return reg.CounterValue(pfx + "accesses"),
		reg.CounterValue(pfx + "hits"),
		reg.CounterValue(pfx + "misses")
}

// TestSingleObserveReconciles is the sim half of the reconciliation
// suite: the counters ObserveInto folds into the registry must equal
// the per-level cache.Stats on the result, field for field, and the
// hits+misses==accesses invariant must hold at every level.
func TestSingleObserveReconciles(t *testing.T) {
	r := RunSingle(hmmer(t), policy.NewLRU(), SingleOptions{Scale: testScale})
	reg := obs.NewRegistry()
	r.ObserveInto(reg)

	for level, s := range map[string]struct{ acc, hit, miss uint64 }{
		"l1":  {r.L1.Accesses, r.L1.Hits, r.L1.Misses},
		"l2":  {r.L2.Accesses, r.L2.Hits, r.L2.Misses},
		"llc": {r.LLC.Accesses, r.LLC.Hits, r.LLC.Misses},
	} {
		acc, hit, miss := levelCounters(reg, level)
		if acc != s.acc || hit != s.hit || miss != s.miss {
			t.Errorf("%s counters = %d/%d/%d, result has %d/%d/%d",
				level, acc, hit, miss, s.acc, s.hit, s.miss)
		}
		if hit+miss != acc {
			t.Errorf("%s: hits(%d)+misses(%d) != accesses(%d)", level, hit, miss, acc)
		}
		if acc == 0 {
			t.Errorf("%s saw no traffic", level)
		}
	}
	if got := reg.CounterValue(obs.SimPrefix + "runs"); got != 1 {
		t.Errorf("sim_runs = %d, want 1", got)
	}
	if got := reg.CounterValue(obs.SimPrefix + "instructions"); got != r.Instructions {
		t.Errorf("sim_instructions = %d, want %d", got, r.Instructions)
	}
	if got := reg.CounterValue(obs.SimPrefix + "cycles"); got != r.Cycles {
		t.Errorf("sim_cycles = %d, want %d", got, r.Cycles)
	}
	if r.Cycles == 0 {
		t.Error("result recorded no cycles")
	}
	if got := reg.Histogram(obs.SimPrefix + "run_seconds").Count(); got != 1 {
		t.Errorf("run_seconds observations = %d, want 1", got)
	}
	if r.Duration <= 0 {
		t.Errorf("duration = %v, want > 0", r.Duration)
	}
	if r.Throughput() <= 0 {
		t.Errorf("throughput = %v, want > 0", r.Throughput())
	}
}

// TestObserveAccumulates pins that observing two results sums rather
// than overwrites — the property the campaign-level aggregates rely on.
func TestObserveAccumulates(t *testing.T) {
	r := RunSingle(hmmer(t), policy.NewLRU(), SingleOptions{Scale: testScale})
	reg := obs.NewRegistry()
	r.ObserveInto(reg)
	r.ObserveInto(reg)
	if got := reg.CounterValue(obs.SimPrefix + "runs"); got != 2 {
		t.Errorf("sim_runs = %d, want 2", got)
	}
	if got := reg.CounterValue(obs.SimPrefix + "llc_accesses"); got != 2*r.LLC.Accesses {
		t.Errorf("llc_accesses = %d, want %d", got, 2*r.LLC.Accesses)
	}
}

// TestObservePredictorCounters checks the predictor-verdict counters
// appear exactly when the policy reports accuracy.
func TestObservePredictorCounters(t *testing.T) {
	pol := dbrb.New(policy.NewLRU(), predictor.NewSampler(predictor.DefaultSamplerConfig()))
	r := RunSingle(hmmer(t), pol, SingleOptions{Scale: testScale})
	if r.Accuracy == nil {
		t.Fatal("DBRB run reported no accuracy")
	}
	reg := obs.NewRegistry()
	r.ObserveInto(reg)
	if got := reg.CounterValue(obs.SimPrefix + "predictions"); got != r.Accuracy.Predictions {
		t.Errorf("sim_predictions = %d, want %d", got, r.Accuracy.Predictions)
	}
	if got := reg.CounterValue(obs.SimPrefix + "dead_predictions"); got != r.Accuracy.Positives {
		t.Errorf("sim_dead_predictions = %d, want %d", got, r.Accuracy.Positives)
	}

	// A plain-policy run must not create them.
	plain := obs.NewRegistry()
	RunSingle(hmmer(t), policy.NewLRU(), SingleOptions{Scale: testScale}).ObserveInto(plain)
	if _, ok := plain.Snapshot().Counters[obs.SimPrefix+"predictions"]; ok {
		t.Error("plain policy created predictor counters")
	}
}

// TestMulticoreObserveReconciles runs one small quad-core mix and
// reconciles the shared-LLC and summed private-level counters.
func TestMulticoreObserveReconciles(t *testing.T) {
	mix := workloads.Mixes()[0]
	r, err := RunMulticore(mix, policy.NewLRU(), MulticoreOptions{Scale: 0.01})
	if err != nil {
		t.Fatal(err)
	}
	reg := obs.NewRegistry()
	r.ObserveInto(reg)

	acc, hit, miss := levelCounters(reg, "llc")
	if acc != r.LLC.Accesses || hit != r.LLC.Hits || miss != r.LLC.Misses {
		t.Errorf("llc counters = %d/%d/%d, result has %d/%d/%d",
			acc, hit, miss, r.LLC.Accesses, r.LLC.Hits, r.LLC.Misses)
	}
	if hit+miss != acc {
		t.Errorf("llc: hits(%d)+misses(%d) != accesses(%d)", hit, miss, acc)
	}
	var instr uint64
	for _, n := range r.Instructions {
		instr += n
	}
	if got := reg.CounterValue(obs.SimPrefix + "instructions"); got != instr {
		t.Errorf("sim_instructions = %d, want %d (summed cores)", got, instr)
	}
	if got := reg.CounterValue(obs.SimPrefix + "multicore_runs"); got != 1 {
		t.Errorf("sim_multicore_runs = %d, want 1", got)
	}
	if reg.CounterValue(obs.SimPrefix+"l1_accesses") != r.L1.Accesses || r.L1.Accesses == 0 {
		t.Errorf("summed L1 accesses = %d (registry %d)",
			r.L1.Accesses, reg.CounterValue(obs.SimPrefix+"l1_accesses"))
	}
}
