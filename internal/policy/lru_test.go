package policy

import (
	"testing"
	"testing/quick"

	"sdbp/internal/mem"
)

// refLRU is a reference model: an ordered slice per set, most recent
// first.
type refLRU struct {
	order [][]int // set -> ways, MRU first
}

func newRefLRU(sets, ways int) *refLRU {
	r := &refLRU{order: make([][]int, sets)}
	for s := range r.order {
		for w := 0; w < ways; w++ {
			r.order[s] = append(r.order[s], w)
		}
	}
	return r
}

func (r *refLRU) touch(set uint32, way int) {
	o := r.order[set]
	for i, w := range o {
		if w == way {
			copy(o[1:i+1], o[:i])
			o[0] = way
			return
		}
	}
}

func (r *refLRU) lru(set uint32) int {
	o := r.order[set]
	return o[len(o)-1]
}

func TestLRUMatchesReferenceModel(t *testing.T) {
	const sets, ways = 4, 8
	f := func(events []uint16) bool {
		p := NewLRU()
		p.Reset(sets, ways)
		ref := newRefLRU(sets, ways)
		for _, e := range events {
			set := uint32(e) % sets
			way := int(e>>2) % ways
			if e&1 == 0 {
				p.OnHit(set, way, mem.Access{})
			} else {
				p.OnFill(set, way, mem.Access{})
			}
			ref.touch(set, way)
			if p.Victim(set, mem.Access{}) != ref.lru(set) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestLRUStackProperty(t *testing.T) {
	p := NewLRU()
	p.Reset(1, 4)
	for w := 0; w < 4; w++ {
		p.OnFill(0, w, mem.Access{})
	}
	// Fill order 0,1,2,3 -> LRU is 0.
	if v := p.Victim(0, mem.Access{}); v != 0 {
		t.Errorf("victim = %d, want 0", v)
	}
	p.OnHit(0, 0, mem.Access{}) // 0 promoted -> LRU is 1
	if v := p.Victim(0, mem.Access{}); v != 1 {
		t.Errorf("victim after promote = %d, want 1", v)
	}
}

func TestLRUInsertLRUMode(t *testing.T) {
	p := NewLRU()
	p.InsertLRU = true
	p.Reset(1, 4)
	p.OnFill(0, 2, mem.Access{})
	// LIP: the fresh fill goes straight to the LRU position.
	if v := p.Victim(0, mem.Access{}); v != 2 {
		t.Errorf("victim = %d, want the LIP-inserted way 2", v)
	}
}

func TestLRURankIsStackPosition(t *testing.T) {
	p := NewLRU()
	p.Reset(1, 4)
	for w := 0; w < 4; w++ {
		p.OnFill(0, w, mem.Access{})
	}
	// Ranks must be a permutation of 0..3 with way 3 at MRU (rank 0).
	if p.Rank(0, 3) != 0 {
		t.Errorf("MRU rank = %d, want 0", p.Rank(0, 3))
	}
	seen := map[int]bool{}
	for w := 0; w < 4; w++ {
		seen[p.Rank(0, w)] = true
	}
	for r := 0; r < 4; r++ {
		if !seen[r] {
			t.Errorf("rank %d missing from permutation", r)
		}
	}
}

func TestLRUPositionsStayPermutation(t *testing.T) {
	const sets, ways = 2, 6
	f := func(events []uint16) bool {
		p := NewLRU()
		p.Reset(sets, ways)
		for _, e := range events {
			set := uint32(e) % sets
			way := int(e>>1) % ways
			switch e % 3 {
			case 0:
				p.OnHit(set, way, mem.Access{})
			case 1:
				p.OnFill(set, way, mem.Access{})
			case 2:
				p.OnEvict(set, way)
			}
			seen := map[int]bool{}
			for w := 0; w < ways; w++ {
				pos := p.StackPos(set, w)
				if pos < 0 || pos >= ways || seen[pos] {
					return false
				}
				seen[pos] = true
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestRandomVictimBounds(t *testing.T) {
	p := NewRandom(1)
	p.Reset(4, 16)
	for i := 0; i < 10000; i++ {
		if v := p.Victim(0, mem.Access{}); v < 0 || v >= 16 {
			t.Fatalf("victim %d out of range", v)
		}
	}
}

func TestRandomDeterministicAcrossResets(t *testing.T) {
	p := NewRandom(42)
	p.Reset(1, 8)
	var first []int
	for i := 0; i < 100; i++ {
		first = append(first, p.Victim(0, mem.Access{}))
	}
	p.Reset(1, 8)
	for i := 0; i < 100; i++ {
		if p.Victim(0, mem.Access{}) != first[i] {
			t.Fatal("random victims differ after Reset")
		}
	}
}

func TestRandomCoversAllWays(t *testing.T) {
	p := NewRandom(3)
	p.Reset(1, 16)
	seen := map[int]bool{}
	for i := 0; i < 1000; i++ {
		seen[p.Victim(0, mem.Access{})] = true
	}
	if len(seen) != 16 {
		t.Errorf("random victims covered %d of 16 ways", len(seen))
	}
}
