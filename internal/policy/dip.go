package policy

import (
	"sdbp/internal/cache"
	"sdbp/internal/mem"
)

// bipEpsilon is the BIP probability of inserting at MRU (1/32 in the DIP
// paper); all other BIP insertions go to the LRU position.
const bipEpsilon = 1.0 / 32

// DIP is the Dynamic Insertion Policy (Qureshi et al., ISCA 2007): set
// dueling between traditional LRU insertion (MRU position) and Bimodal
// Insertion (BIP: LRU position, promoted to MRU with probability 1/32).
// Under thrashing working sets BIP retains a fraction of the set and
// wins the duel; under LRU-friendly behavior the traditional insertion
// wins.
type DIP struct {
	cache.Base
	lru  LRU
	d    duel
	rng  *mem.Rand
	seed uint64
}

// NewDIP returns a DIP policy with a deterministic BIP dice stream.
func NewDIP(seed uint64) *DIP {
	return &DIP{seed: seed, rng: mem.NewRand(seed)}
}

// Name implements cache.Policy.
func (p *DIP) Name() string { return "DIP" }

// Reset implements cache.Policy.
func (p *DIP) Reset(sets, ways int) {
	p.lru.Reset(sets, ways)
	p.d = newDuel(sets, 32, 0x0d1b)
	p.rng.Seed(p.seed)
}

// OnHit implements cache.Policy: hits always promote, as in LRU.
func (p *DIP) OnHit(set uint32, way int, a mem.Access) { p.lru.OnHit(set, way, a) }

// OnFill implements cache.Policy. Fills happen exactly once per miss
// (DIP never bypasses), so this hook also updates the duel's PSEL.
func (p *DIP) OnFill(set uint32, way int, _ mem.Access) {
	p.d.onMiss(set)
	useBIP := p.d.choose(set)
	if useBIP && !p.rng.Chance(bipEpsilon) {
		p.lru.rec.Demote(set, way)
	} else {
		p.lru.rec.Promote(set, way)
	}
}

// Victim implements cache.Policy: the LRU way, as in the DIP paper.
func (p *DIP) Victim(set uint32, a mem.Access) int { return p.lru.Victim(set, a) }

// Rank implements Ranked via the underlying recency stack.
func (p *DIP) Rank(set uint32, way int) int { return p.lru.Rank(set, way) }

// TADIP is the Thread-Aware Dynamic Insertion Policy (Jaleel et al.,
// PACT 2008): one duel per hardware thread, each with its own leader
// sets and PSEL, so a thrashing thread can switch to BIP while a
// cache-friendly co-runner keeps MRU insertion.
type TADIP struct {
	cache.Base
	lru     LRU
	duels   []duel
	rng     *mem.Rand
	seed    uint64
	threads int
}

// NewTADIP returns a TADIP policy for up to threads hardware threads.
func NewTADIP(threads int, seed uint64) *TADIP {
	if threads < 1 {
		threads = 1
	}
	return &TADIP{threads: threads, seed: seed, rng: mem.NewRand(seed)}
}

// Name implements cache.Policy.
func (p *TADIP) Name() string { return "TADIP" }

// Reset implements cache.Policy.
func (p *TADIP) Reset(sets, ways int) {
	p.lru.Reset(sets, ways)
	p.duels = make([]duel, p.threads)
	for t := range p.duels {
		p.duels[t] = newDuel(sets, 32, 0x7AD1+uint64(t)*0x9e37)
	}
	p.rng.Seed(p.seed)
}

func (p *TADIP) duelFor(a mem.Access) *duel {
	t := int(a.Thread)
	if t >= len(p.duels) {
		t = 0
	}
	return &p.duels[t]
}

// OnHit implements cache.Policy.
func (p *TADIP) OnHit(set uint32, way int, a mem.Access) { p.lru.OnHit(set, way, a) }

// OnFill implements cache.Policy; see DIP.OnFill for why PSEL updates
// here.
func (p *TADIP) OnFill(set uint32, way int, a mem.Access) {
	d := p.duelFor(a)
	d.onMiss(set)
	if d.choose(set) && !p.rng.Chance(bipEpsilon) {
		p.lru.rec.Demote(set, way)
	} else {
		p.lru.rec.Promote(set, way)
	}
}

// Victim implements cache.Policy.
func (p *TADIP) Victim(set uint32, a mem.Access) int { return p.lru.Victim(set, a) }

// Rank implements Ranked via the underlying recency stack.
func (p *TADIP) Rank(set uint32, way int) int { return p.lru.Rank(set, way) }
