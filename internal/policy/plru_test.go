package policy

import (
	"testing"
	"testing/quick"

	"sdbp/internal/cache"
	"sdbp/internal/mem"
)

func TestPLRUVictimNeverJustTouched(t *testing.T) {
	// The defining PLRU property: the victim is never the way touched
	// most recently.
	f := func(events []uint8) bool {
		p := NewPLRU()
		p.Reset(2, 8)
		for _, e := range events {
			set := uint32(e) % 2
			way := int(e>>1) % 8
			p.OnHit(set, way, mem.Access{})
			if p.Victim(set, mem.Access{}) == way {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestPLRUCyclesThroughAllWays(t *testing.T) {
	// Repeatedly filling the victim must cycle through every way.
	p := NewPLRU()
	p.Reset(1, 8)
	seen := map[int]bool{}
	for i := 0; i < 8; i++ {
		v := p.Victim(0, mem.Access{})
		seen[v] = true
		p.OnFill(0, v, mem.Access{})
	}
	if len(seen) != 8 {
		t.Errorf("victim cycle covered %d of 8 ways", len(seen))
	}
}

func TestPLRUApproximatesLRUOnSequentialFill(t *testing.T) {
	p := NewPLRU()
	p.Reset(1, 4)
	for w := 0; w < 4; w++ {
		p.OnFill(0, w, mem.Access{})
	}
	// After filling 0,1,2,3 in order, the PLRU victim is way 0 — the
	// same as true LRU on this pattern.
	if v := p.Victim(0, mem.Access{}); v != 0 {
		t.Errorf("victim = %d, want 0", v)
	}
}

func TestPLRURejectsNonPow2(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("PLRU accepted 12 ways")
		}
	}()
	NewPLRU().Reset(4, 12)
}

func TestPLRUHitRateNearLRU(t *testing.T) {
	// On a generic reuse pattern PLRU must land close to true LRU.
	run := func(p cache.Policy) uint64 {
		cfg := cache.Config{Name: "t", SizeBytes: 32 << 10, Ways: 16}
		c := cache.New(cfg, p)
		r := mem.NewRand(7)
		for i := 0; i < 200000; i++ {
			// Zipf-ish: small addresses far more popular.
			b := r.Intn(64) * r.Intn(64)
			c.Access(mem.Access{Addr: uint64(b) * mem.BlockSize})
		}
		return c.Stats().Hits
	}
	lru := run(NewLRU())
	plru := run(NewPLRU())
	if float64(plru) < 0.95*float64(lru) {
		t.Errorf("PLRU hits %d below 95%% of LRU hits %d", plru, lru)
	}
}

func TestNRUVictimIsUnused(t *testing.T) {
	p := NewNRU()
	p.Reset(1, 4)
	p.OnFill(0, 0, mem.Access{})
	p.OnHit(0, 2, mem.Access{})
	v := p.Victim(0, mem.Access{})
	if v == 0 || v == 2 {
		t.Errorf("victim %d was recently used", v)
	}
}

func TestNRUClearsWhenSaturated(t *testing.T) {
	p := NewNRU()
	p.Reset(1, 4)
	for w := 0; w < 4; w++ {
		p.OnHit(0, w, mem.Access{})
	}
	// The clear must have kept only way 3 (the last touch) marked.
	if v := p.Victim(0, mem.Access{}); v == 3 {
		t.Error("victim was the most recent touch after saturation clear")
	}
	if p.Rank(0, 3) != 0 {
		t.Error("last touch lost its mark in the saturation clear")
	}
}

func TestNRUVictimAlwaysValidWay(t *testing.T) {
	f := func(events []uint8) bool {
		p := NewNRU()
		p.Reset(2, 8)
		for _, e := range events {
			set := uint32(e) % 2
			way := int(e>>1) % 8
			if e&1 == 0 {
				p.OnHit(set, way, mem.Access{})
			} else {
				p.OnFill(set, way, mem.Access{})
			}
			if v := p.Victim(set, mem.Access{}); v < 0 || v >= 8 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
