package policy

import (
	"testing"
	"testing/quick"

	"sdbp/internal/cache"
	"sdbp/internal/mem"
)

func TestSRRIPInsertAndPromote(t *testing.T) {
	p := NewSRRIP()
	p.Reset(1, 4)
	p.OnFill(0, 0, mem.Access{})
	if got := p.RRPV(0, 0); got != rrpvMax-1 {
		t.Errorf("fill RRPV = %d, want %d (long)", got, rrpvMax-1)
	}
	p.OnHit(0, 0, mem.Access{})
	if got := p.RRPV(0, 0); got != 0 {
		t.Errorf("hit RRPV = %d, want 0 (near)", got)
	}
}

func TestSRRIPVictimIsDistant(t *testing.T) {
	p := NewSRRIP()
	p.Reset(1, 4)
	for w := 0; w < 4; w++ {
		p.OnFill(0, w, mem.Access{})
	}
	p.OnHit(0, 1, mem.Access{}) // way 1 near
	v := p.Victim(0, mem.Access{})
	if v == 1 {
		t.Error("victim was the near-re-reference block")
	}
	// Aging must have stopped as soon as a distant block existed.
	if got := p.RRPV(0, v); got != rrpvMax {
		t.Errorf("victim RRPV = %d, want %d", got, rrpvMax)
	}
}

func TestSRRIPAgingTerminates(t *testing.T) {
	// Even from all-near state the victim search converges by aging.
	p := NewSRRIP()
	p.Reset(1, 8)
	for w := 0; w < 8; w++ {
		p.OnFill(0, w, mem.Access{})
		p.OnHit(0, w, mem.Access{})
	}
	v := p.Victim(0, mem.Access{})
	if v < 0 || v >= 8 {
		t.Errorf("victim = %d", v)
	}
}

func TestRRIPRRPVBounds(t *testing.T) {
	const sets, ways = 2, 4
	f := func(events []uint16) bool {
		p := NewDRRIP(2, 1)
		p.Reset(sets, ways)
		for _, e := range events {
			set := uint32(e) % sets
			way := int(e>>1) % ways
			switch e % 3 {
			case 0:
				p.OnHit(set, way, mem.Access{Thread: uint8(e % 2)})
			case 1:
				p.OnFill(set, way, mem.Access{Thread: uint8(e % 2)})
			case 2:
				p.Victim(set, mem.Access{})
			}
			for w := 0; w < ways; w++ {
				if p.RRPV(set, w) > rrpvMax {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestDRRIPBeatsLRUOnThrash(t *testing.T) {
	cfg := cache.Config{Name: "t", SizeBytes: 64 << 10, Ways: 16}
	const blocks, laps = 1536, 20
	lruHits := thrash(cache.New(cfg, NewLRU()), blocks, laps)
	rripHits := thrash(cache.New(cfg, NewDRRIP(1, 7)), blocks, laps)
	if rripHits <= lruHits {
		t.Errorf("DRRIP hits %d <= LRU hits %d on cyclic thrash", rripHits, lruHits)
	}
}

func TestSRRIPScanResistance(t *testing.T) {
	// A hot set with an interleaved one-shot scan: SRRIP must retain
	// more of the hot set than LRU does.
	cfg := cache.Config{Name: "t", SizeBytes: 16 << 10, Ways: 16} // 256 blocks
	run := func(p cache.Policy) uint64 {
		c := cache.New(cfg, p)
		scan := uint64(1) << 32
		for l := 0; l < 50; l++ {
			for pass := 0; pass < 2; pass++ { // hot half, re-touched
				for b := 0; b < 128; b++ {
					c.Access(mem.Access{Addr: uint64(b) * mem.BlockSize})
				}
			}
			for s := 0; s < 256; s++ { // one-shot scan
				c.Access(mem.Access{Addr: scan})
				scan += mem.BlockSize
			}
		}
		return c.Stats().Hits
	}
	lru := run(NewLRU())
	srrip := run(NewSRRIP())
	if srrip <= lru {
		t.Errorf("SRRIP hits %d <= LRU hits %d under scans", srrip, lru)
	}
}

func TestRRIPRankOrdersByRRPV(t *testing.T) {
	p := NewSRRIP()
	p.Reset(1, 2)
	p.OnFill(0, 0, mem.Access{})
	p.OnHit(0, 1, mem.Access{})
	if p.Rank(0, 0) <= p.Rank(0, 1) {
		t.Error("long re-reference block should rank closer to eviction than near block")
	}
}

func TestPolicyNames(t *testing.T) {
	if NewSRRIP().Name() != "SRRIP" {
		t.Error("SRRIP name")
	}
	if NewDRRIP(1, 0).Name() != "RRIP" {
		t.Error("DRRIP name")
	}
	if NewLRU().Name() != "LRU" {
		t.Error("LRU name")
	}
	if NewRandom(0).Name() != "Random" {
		t.Error("Random name")
	}
	if NewDIP(0).Name() != "DIP" {
		t.Error("DIP name")
	}
	if NewTADIP(2, 0).Name() != "TADIP" {
		t.Error("TADIP name")
	}
}
