package policy

import (
	"sdbp/internal/cache"
	"sdbp/internal/mem"
)

// PLRU is tree-based pseudo-LRU: each set keeps a binary tree of
// direction bits (ways-1 bits for a power-of-two associativity); a
// touch points every node on the way's path away from it, and the
// victim is found by following the pointers. This is what real
// high-associativity LLCs implement instead of true LRU — the paper's
// observation that "LRU is prohibitively expensive to implement in a
// highly associative LLC" is exactly why the sampling predictor keeps
// its own small true-LRU structure instead of relying on the cache's.
type PLRU struct {
	cache.Base
	ways  int
	depth int
	bits  []uint32 // one bit-tree per set, packed into a uint32
}

// NewPLRU returns a tree-PLRU policy. Associativity must be a power of
// two (checked in Reset).
func NewPLRU() *PLRU { return &PLRU{} }

// Name implements cache.Policy.
func (p *PLRU) Name() string { return "PLRU" }

// Reset implements cache.Policy.
func (p *PLRU) Reset(sets, ways int) {
	if !mem.IsPow2(ways) || ways > 32 {
		panic("policy: PLRU needs a power-of-two associativity <= 32")
	}
	p.ways = ways
	p.depth = mem.Log2(ways)
	p.bits = make([]uint32, sets)
}

// touch points the tree away from way: at each level, set the node's
// bit to the opposite of the branch taken.
func (p *PLRU) touch(set uint32, way int) {
	node := 0
	for level := p.depth - 1; level >= 0; level-- {
		branch := (way >> uint(level)) & 1
		if branch == 0 {
			p.bits[set] |= 1 << uint(node) // point right
		} else {
			p.bits[set] &^= 1 << uint(node) // point left
		}
		node = 2*node + 1 + branch
	}
}

// OnHit implements cache.Policy.
func (p *PLRU) OnHit(set uint32, way int, _ mem.Access) { p.touch(set, way) }

// OnFill implements cache.Policy.
func (p *PLRU) OnFill(set uint32, way int, _ mem.Access) { p.touch(set, way) }

// Victim implements cache.Policy: follow the direction bits.
func (p *PLRU) Victim(set uint32, _ mem.Access) int {
	node, way := 0, 0
	for level := 0; level < p.depth; level++ {
		branch := int(p.bits[set]>>uint(node)) & 1
		way = way<<1 | branch
		node = 2*node + 1 + branch
	}
	return way
}

// Rank implements Ranked approximately: ways on the victim path rank
// higher (closer to eviction). PLRU has no total order, so the rank is
// the length of the shared prefix with the victim path.
func (p *PLRU) Rank(set uint32, way int) int {
	victim := p.Victim(set, mem.Access{})
	rank := 0
	for level := p.depth - 1; level >= 0; level-- {
		if (way>>uint(level))&1 != (victim>>uint(level))&1 {
			break
		}
		rank++
	}
	return rank
}

// NRU is not-recently-used replacement: one bit per line, set on touch;
// the victim is any line with a clear bit, and when all are set they
// all clear (except the just-touched line's conceptual position — the
// classic one-bit approximation used by several commercial cores).
type NRU struct {
	cache.Base
	ways int
	used []bool
}

// NewNRU returns an NRU policy.
func NewNRU() *NRU { return &NRU{} }

// Name implements cache.Policy.
func (p *NRU) Name() string { return "NRU" }

// Reset implements cache.Policy.
func (p *NRU) Reset(sets, ways int) {
	p.ways = ways
	p.used = make([]bool, sets*ways)
}

func (p *NRU) idx(set uint32, way int) int { return int(set)*p.ways + way }

func (p *NRU) mark(set uint32, way int) {
	p.used[p.idx(set, way)] = true
	for w := 0; w < p.ways; w++ {
		if !p.used[p.idx(set, w)] {
			return
		}
	}
	// All marked: clear everyone but the newest.
	for w := 0; w < p.ways; w++ {
		if w != way {
			p.used[p.idx(set, w)] = false
		}
	}
}

// OnHit implements cache.Policy.
func (p *NRU) OnHit(set uint32, way int, _ mem.Access) { p.mark(set, way) }

// OnFill implements cache.Policy.
func (p *NRU) OnFill(set uint32, way int, _ mem.Access) { p.mark(set, way) }

// Victim implements cache.Policy: the first not-recently-used way.
func (p *NRU) Victim(set uint32, _ mem.Access) int {
	for w := 0; w < p.ways; w++ {
		if !p.used[p.idx(set, w)] {
			return w
		}
	}
	return 0 // unreachable: mark never leaves a fully-used set
}

// Rank implements Ranked: unused lines rank closer to eviction.
func (p *NRU) Rank(set uint32, way int) int {
	if p.used[p.idx(set, way)] {
		return 0
	}
	return 1
}
