package policytest

import (
	"testing"

	"sdbp/internal/exp"
	"sdbp/internal/mem"
	"sdbp/internal/sim"
	"sdbp/internal/trace"
	"sdbp/internal/workloads"
)

// The batch-vs-scalar differential: the block-granular access path
// (cache.AccessBatch, cache.AccessPrivate, hier.Core.AccessBlock) is
// pinned byte-identical to the per-access path for every registry
// policy spelling. The chunk size deliberately does not divide the
// stream length, so every run also exercises a trailing short batch.
const batchChunk = 256

// llcStream captures one LLC-bound stream (private filtering is plain
// LRU and policy-independent, so one capture serves every policy).
func llcStream(t *testing.T) []mem.Access {
	t.Helper()
	w, err := workloads.ByName(conformanceBench)
	if err != nil {
		t.Fatal(err)
	}
	r := sim.RunSingle(w, exp.MustResolvePolicy("LRU").Make(1),
		sim.SingleOptions{Scale: conformanceScale, CaptureStream: true})
	if len(r.Stream) == 0 {
		t.Fatal("no LLC traffic captured")
	}
	return r.Stream
}

// TestBatchDifferential drives the captured LLC stream through
// AccessBatch and per-access Access for every registry spelling: stats,
// per-access results, and final tag state must be byte-identical.
func TestBatchDifferential(t *testing.T) {
	stream := llcStream(t)
	for _, expr := range exprsUnderTest(t) {
		if msg := BatchDifferential(expr, stream, batchChunk); msg != "" {
			t.Errorf("%q: batch vs scalar: %s", expr, msg)
		}
	}
}

// TestHierBatchDifferential drives the raw demand stream through
// hier.Core.AccessBlock and per-access Access for every registry
// spelling, covering the private-level fast path (AccessPrivate) and
// the LLC batch leg end to end.
func TestHierBatchDifferential(t *testing.T) {
	w, err := workloads.ByName(conformanceBench)
	if err != nil {
		t.Fatal(err)
	}
	stream := trace.Collect(w.Generator(conformanceScale))
	for _, expr := range exprsUnderTest(t) {
		if msg := HierBatchDifferential(expr, stream, batchChunk); msg != "" {
			t.Errorf("%q: hierarchy batch vs scalar: %s", expr, msg)
		}
	}
}
