// Package policytest is the cross-policy conformance and differential
// harness. Every policy spelling the registry exposes — presets, CLI
// aliases' canonical names, Figure 6 ablation variants, and the bare
// expression names with their defaults — runs through one shared
// invariant suite (stats reconciliation, determinism across repeats and
// GOMAXPROCS, prediction accounting, steady-state allocation pins), and
// a differential suite proves each composed policy degenerates to its
// base policy when its predictor is neutralized (dbrb over the
// always-live predictor, SHiP with a saturated frozen SHCT, a duel
// forced to its base leader).
//
// Coverage is derived from the registry's own name lists, so a policy
// registered in internal/exp is tested here with no further wiring; the
// CI guard script (scripts/check_policy_zoo.sh) closes the remaining
// hole by failing the build when a builder case is missing from those
// name lists.
package policytest

import (
	"fmt"

	"sdbp/internal/cache"
	"sdbp/internal/dbrb"
	"sdbp/internal/exp"
	"sdbp/internal/sim"
	"sdbp/internal/workloads"
)

// Expressions returns every registry-visible policy spelling the
// conformance suite must cover: preset names, Figure 6 ablation
// variants, and each registered bare expression name (which resolves
// with its paper defaults).
func Expressions() []string {
	var out []string
	out = append(out, exp.PresetNames()...)
	out = append(out, exp.AblationVariantNames()...)
	out = append(out, exp.PolicyNames()...)
	return out
}

// Fingerprint captures everything a figure cell derives from one
// single-core run, in both raw and figure-formatted form. Two runs of
// the same deterministic configuration must produce identical
// fingerprints; a degenerate policy must fingerprint identically to its
// base policy.
type Fingerprint struct {
	Instructions uint64
	Cycles       uint64
	IPC          float64
	MPKI         float64
	LLC          cache.Stats
	// Accuracy is the dead-block prediction accounting for DBRB-rooted
	// policies (nil otherwise).
	Accuracy *dbrb.Accuracy
	// Cells is the figure-cell rendering (the "%.3f"/"%.4f" precision
	// the experiment tables print at), so "byte-identical figure cells"
	// is literal.
	Cells string
}

// Run simulates one benchmark under a registry policy expression and
// returns its fingerprint. It panics on an unresolvable expression
// (harness inputs are registry-derived).
func Run(nameOrExpr, bench string, scale float64) Fingerprint {
	w, err := workloads.ByName(bench)
	if err != nil {
		panic(err)
	}
	p := exp.MustResolvePolicy(nameOrExpr)
	r := sim.RunSingle(w, p.Make(1), sim.SingleOptions{Scale: scale})
	return Fingerprint{
		Instructions: r.Instructions,
		Cycles:       r.Cycles,
		IPC:          r.IPC,
		MPKI:         r.MPKI,
		LLC:          r.LLC,
		Accuracy:     r.Accuracy,
		Cells: fmt.Sprintf("ipc=%.3f mpki=%.3f miss=%.4f",
			r.IPC, r.MPKI, missRate(r.LLC)),
	}
}

func missRate(s cache.Stats) float64 {
	if s.Accesses == 0 {
		return 0
	}
	return float64(s.Misses) / float64(s.Accesses)
}

// CheckStats verifies the cache-stats bookkeeping invariants every
// policy must preserve, returning a description of the first violation
// or "" when all hold:
//
//   - hits + misses == accesses (every access resolves exactly once)
//   - bypasses <= misses (only misses can bypass)
//   - evictions <= misses - bypasses (only placed misses can evict)
func CheckStats(s cache.Stats) string {
	if s.Hits+s.Misses != s.Accesses {
		return fmt.Sprintf("hits %d + misses %d != accesses %d", s.Hits, s.Misses, s.Accesses)
	}
	if s.Bypasses > s.Misses {
		return fmt.Sprintf("bypasses %d > misses %d", s.Bypasses, s.Misses)
	}
	if s.Evictions > s.Misses-s.Bypasses {
		return fmt.Sprintf("evictions %d > misses %d - bypasses %d", s.Evictions, s.Misses, s.Bypasses)
	}
	return ""
}
