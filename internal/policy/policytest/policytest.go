// Package policytest is the cross-policy conformance and differential
// harness. Every policy spelling the registry exposes — presets, CLI
// aliases' canonical names, Figure 6 ablation variants, and the bare
// expression names with their defaults — runs through one shared
// invariant suite (stats reconciliation, determinism across repeats and
// GOMAXPROCS, prediction accounting, steady-state allocation pins), and
// a differential suite proves each composed policy degenerates to its
// base policy when its predictor is neutralized (dbrb over the
// always-live predictor, SHiP with a saturated frozen SHCT, a duel
// forced to its base leader).
//
// Coverage is derived from the registry's own name lists, so a policy
// registered in internal/exp is tested here with no further wiring; the
// CI guard script (scripts/check_policy_zoo.sh) closes the remaining
// hole by failing the build when a builder case is missing from those
// name lists.
package policytest

import (
	"fmt"

	"sdbp/internal/cache"
	"sdbp/internal/dbrb"
	"sdbp/internal/exp"
	"sdbp/internal/hier"
	"sdbp/internal/mem"
	"sdbp/internal/sim"
	"sdbp/internal/workloads"
)

// Expressions returns every registry-visible policy spelling the
// conformance suite must cover: preset names, Figure 6 ablation
// variants, and each registered bare expression name (which resolves
// with its paper defaults).
func Expressions() []string {
	var out []string
	out = append(out, exp.PresetNames()...)
	out = append(out, exp.AblationVariantNames()...)
	out = append(out, exp.PolicyNames()...)
	return out
}

// Fingerprint captures everything a figure cell derives from one
// single-core run, in both raw and figure-formatted form. Two runs of
// the same deterministic configuration must produce identical
// fingerprints; a degenerate policy must fingerprint identically to its
// base policy.
type Fingerprint struct {
	Instructions uint64
	Cycles       uint64
	IPC          float64
	MPKI         float64
	LLC          cache.Stats
	// Accuracy is the dead-block prediction accounting for DBRB-rooted
	// policies (nil otherwise).
	Accuracy *dbrb.Accuracy
	// Cells is the figure-cell rendering (the "%.3f"/"%.4f" precision
	// the experiment tables print at), so "byte-identical figure cells"
	// is literal.
	Cells string
}

// Run simulates one benchmark under a registry policy expression and
// returns its fingerprint. It panics on an unresolvable expression
// (harness inputs are registry-derived).
func Run(nameOrExpr, bench string, scale float64) Fingerprint {
	w, err := workloads.ByName(bench)
	if err != nil {
		panic(err)
	}
	p := exp.MustResolvePolicy(nameOrExpr)
	r := sim.RunSingle(w, p.Make(1), sim.SingleOptions{Scale: scale})
	return Fingerprint{
		Instructions: r.Instructions,
		Cycles:       r.Cycles,
		IPC:          r.IPC,
		MPKI:         r.MPKI,
		LLC:          r.LLC,
		Accuracy:     r.Accuracy,
		Cells: fmt.Sprintf("ipc=%.3f mpki=%.3f miss=%.4f",
			r.IPC, r.MPKI, missRate(r.LLC)),
	}
}

// BatchDifferential drives the same LLC-bound stream through two fresh
// caches built from the same policy expression — one per-access through
// Access, one in chunks through AccessBatch — and returns a description
// of the first divergence in per-access results, statistics, or final
// tag state ("" when byte-identical). chunk sets the batch size (a
// value that does not divide the stream length also exercises the
// trailing short batch).
func BatchDifferential(nameOrExpr string, stream []mem.Access, chunk int) string {
	p := exp.MustResolvePolicy(nameOrExpr)
	scalar := cache.New(hier.LLCConfig(1), p.Make(1))
	batch := cache.New(hier.LLCConfig(1), p.Make(1))

	scalarRs := make([]cache.Result, len(stream))
	for i, a := range stream {
		scalarRs[i] = scalar.Access(a)
	}
	batchRs := make([]cache.Result, len(stream))
	for lo := 0; lo < len(stream); lo += chunk {
		hi := lo + chunk
		if hi > len(stream) {
			hi = len(stream)
		}
		batch.AccessBatch(stream[lo:hi], batchRs[lo:hi])
	}

	for i := range scalarRs {
		if scalarRs[i] != batchRs[i] {
			return fmt.Sprintf("access %d: scalar result %+v != batch result %+v", i, scalarRs[i], batchRs[i])
		}
	}
	if s, b := scalar.Stats(), batch.Stats(); s != b {
		return fmt.Sprintf("stats diverged: scalar %+v != batch %+v", s, b)
	}
	return diffKeys("LLC", scalar, batch)
}

// HierBatchDifferential drives the same raw demand stream through two
// fresh full hierarchies under the same policy expression — one
// per-access through hier.Core.Access, one in chunks through AccessBlock
// (which routes the private levels through cache.AccessPrivate and the
// LLC through AccessBatch) — and returns the first divergence in
// satisfying levels, per-level statistics, or final tag state at any
// level ("" when byte-identical).
func HierBatchDifferential(nameOrExpr string, stream []mem.Access, chunk int) string {
	p := exp.MustResolvePolicy(nameOrExpr)
	scalarCore := hier.NewCore(hier.DefaultConfig(), cache.New(hier.LLCConfig(1), p.Make(1)))
	batchCore := hier.NewCore(hier.DefaultConfig(), cache.New(hier.LLCConfig(1), p.Make(1)))

	scalarLv := make([]hier.Level, len(stream))
	for i, a := range stream {
		scalarLv[i] = scalarCore.Access(a)
	}
	batchLv := make([]hier.Level, len(stream))
	for lo := 0; lo < len(stream); lo += chunk {
		hi := lo + chunk
		if hi > len(stream) {
			hi = len(stream)
		}
		batchCore.AccessBlock(stream[lo:hi], batchLv[lo:hi])
	}

	for i := range scalarLv {
		if scalarLv[i] != batchLv[i] {
			return fmt.Sprintf("access %d: scalar level %v != batch level %v", i, scalarLv[i], batchLv[i])
		}
	}
	if s, b := scalarCore.Stats(), batchCore.Stats(); s != b {
		return fmt.Sprintf("level stats diverged:\n  scalar %+v\n  batch  %+v", s, b)
	}
	if msg := diffKeys("L1", scalarCore.L1, batchCore.L1); msg != "" {
		return msg
	}
	if msg := diffKeys("L2", scalarCore.L2, batchCore.L2); msg != "" {
		return msg
	}
	return diffKeys("LLC", scalarCore.LLC, batchCore.LLC)
}

// diffKeys compares two caches' complete tag state.
func diffKeys(level string, a, b *cache.Cache) string {
	ka, kb := a.KeysSnapshot(), b.KeysSnapshot()
	if len(ka) != len(kb) {
		return fmt.Sprintf("%s: key array lengths diverged: %d != %d", level, len(ka), len(kb))
	}
	for i := range ka {
		if ka[i] != kb[i] {
			return fmt.Sprintf("%s: tag state diverged at line %d: %#x != %#x", level, i, ka[i], kb[i])
		}
	}
	return ""
}

func missRate(s cache.Stats) float64 {
	if s.Accesses == 0 {
		return 0
	}
	return float64(s.Misses) / float64(s.Accesses)
}

// CheckStats verifies the cache-stats bookkeeping invariants every
// policy must preserve, returning a description of the first violation
// or "" when all hold:
//
//   - hits + misses == accesses (every access resolves exactly once)
//   - bypasses <= misses (only misses can bypass)
//   - evictions <= misses - bypasses (only placed misses can evict)
func CheckStats(s cache.Stats) string {
	if s.Hits+s.Misses != s.Accesses {
		return fmt.Sprintf("hits %d + misses %d != accesses %d", s.Hits, s.Misses, s.Accesses)
	}
	if s.Bypasses > s.Misses {
		return fmt.Sprintf("bypasses %d > misses %d", s.Bypasses, s.Misses)
	}
	if s.Evictions > s.Misses-s.Bypasses {
		return fmt.Sprintf("evictions %d > misses %d - bypasses %d", s.Evictions, s.Misses, s.Bypasses)
	}
	return ""
}
