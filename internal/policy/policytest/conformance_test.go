package policytest

import (
	"runtime"
	"testing"

	"sdbp/internal/cache"
	"sdbp/internal/exp"
	"sdbp/internal/hier"
	"sdbp/internal/sim"
	"sdbp/internal/workloads"
)

// conformanceBench and conformanceScale fix the workload every policy
// spelling runs under. One memory-intensive benchmark at the golden
// suite's scale keeps the full matrix (every spelling × repeats ×
// GOMAXPROCS) tractable while still exercising fills, hits, bypasses,
// evictions and writebacks.
const (
	conformanceBench = "456.hmmer"
	conformanceScale = 0.01
)

// shortExpressions is the -short subset: the paper's policy, the three
// new zoo members, and the baseline.
func shortExpressions() []string {
	return []string{"LRU", "Sampler", "SHiP", "Skewed DBP", "Improved DBP"}
}

func exprsUnderTest(t *testing.T) []string {
	if testing.Short() {
		return shortExpressions()
	}
	return Expressions()
}

// same reports whether two fingerprints are identical, including the
// dead-block accounting when both carry it.
func same(a, b Fingerprint) bool {
	if a.Instructions != b.Instructions || a.Cycles != b.Cycles ||
		a.IPC != b.IPC || a.MPKI != b.MPKI || a.LLC != b.LLC || a.Cells != b.Cells {
		return false
	}
	if (a.Accuracy == nil) != (b.Accuracy == nil) {
		return false
	}
	if a.Accuracy != nil && *a.Accuracy != *b.Accuracy {
		return false
	}
	return true
}

// checkInvariants applies the shared per-run invariants: stats
// reconcile, the run made progress, and no dead-block verdict stands
// without a prior prediction.
func checkInvariants(t *testing.T, expr string, fp Fingerprint) {
	t.Helper()
	if msg := CheckStats(fp.LLC); msg != "" {
		t.Errorf("%q: stats: %s", expr, msg)
	}
	if fp.Instructions == 0 || fp.IPC <= 0 || fp.LLC.Accesses == 0 {
		t.Errorf("%q: run made no progress: %+v", expr, fp)
	}
	if acc := fp.Accuracy; acc != nil {
		if acc.Positives > acc.Predictions {
			t.Errorf("%q: %d dead verdicts but only %d predictions", expr, acc.Positives, acc.Predictions)
		}
		if acc.FalsePositives > acc.Positives {
			t.Errorf("%q: %d false positives but only %d dead verdicts", expr, acc.FalsePositives, acc.Positives)
		}
		if acc.Predictions > fp.LLC.Accesses {
			t.Errorf("%q: %d predictions exceed %d accesses", expr, acc.Predictions, fp.LLC.Accesses)
		}
	}
}

// TestConformanceInvariants runs every registry spelling once and
// applies the shared invariants, then once more to pin determinism
// across repeats: identical fingerprints, bit for bit.
func TestConformanceInvariants(t *testing.T) {
	for _, expr := range exprsUnderTest(t) {
		first := Run(expr, conformanceBench, conformanceScale)
		checkInvariants(t, expr, first)
		second := Run(expr, conformanceBench, conformanceScale)
		if !same(first, second) {
			t.Errorf("%q: repeat diverged:\n  first  %+v\n  second %+v", expr, first, second)
		}
	}
}

// TestConformanceGOMAXPROCS pins single-core determinism against the
// scheduler: the same run under GOMAXPROCS 1 and 4 must fingerprint
// identically.
func TestConformanceGOMAXPROCS(t *testing.T) {
	exprs := exprsUnderTest(t)
	ref := make([]Fingerprint, len(exprs))
	for _, procs := range []int{1, 4} {
		old := runtime.GOMAXPROCS(procs)
		for i, expr := range exprs {
			fp := Run(expr, conformanceBench, conformanceScale)
			if procs == 1 {
				ref[i] = fp
				continue
			}
			if !same(ref[i], fp) {
				t.Errorf("%q: GOMAXPROCS=4 diverged from GOMAXPROCS=1:\n  1: %+v\n  4: %+v", expr, ref[i], fp)
			}
		}
		runtime.GOMAXPROCS(old)
	}
}

// allocPinned is the policy set whose steady-state LLC access path is
// pinned allocation-free: the baseline, the paper's sampler stack, and
// the three zoo additions of this harness.
var allocPinned = []string{"LRU", "Sampler", "SHiP", "Skewed DBP", "Improved DBP"}

// TestSteadyStateAllocs extends the repo's 0 allocs/op pin to the zoo:
// once warm, Access must not allocate for any pinned policy.
func TestSteadyStateAllocs(t *testing.T) {
	w, err := workloads.ByName(conformanceBench)
	if err != nil {
		t.Fatal(err)
	}
	r := sim.RunSingle(w, exp.MustResolvePolicy("LRU").Make(1),
		sim.SingleOptions{Scale: 0.1, CaptureStream: true})
	if len(r.Stream) == 0 {
		t.Fatal("no LLC traffic captured")
	}
	for _, name := range allocPinned {
		llc := cache.New(hier.LLCConfig(1), exp.MustResolvePolicy(name).Make(1))
		for _, a := range r.Stream {
			llc.Access(a)
		}
		i := 0
		avg := testing.AllocsPerRun(1000, func() {
			llc.Access(r.Stream[i%len(r.Stream)])
			i++
		})
		if avg != 0 {
			t.Errorf("%s: steady-state Access allocates %.2f allocs/op, want 0", name, avg)
		}
	}
}
