package policytest

import (
	"testing"

	"sdbp/internal/figures"
)

// differentialPair names a composed policy expression and the base
// policy it must degenerate to once its adaptive machinery is
// neutralized. The pairs pin the three neutralization axes:
//
//   - dbrb over the always-live predictor never bypasses and never
//     sees a dead block, so every decision falls through to the base;
//   - SHiP with training off and the SHCT saturated at init inserts
//     every line at rrpvMax-1, which is exactly SRRIP;
//   - a duel forced to its base leader routes every decision to the
//     base while the challenger only observes.
type differentialPair struct {
	name string
	expr string
	base string
}

var differentialPairs = []differentialPair{
	{"never/lru", "dbrb(base=lru,pred=never)", "lru"},
	{"never/random", "dbrb(base=random,pred=never)", "random"},
	{"never/nru", "dbrb(base=nru,pred=never)", "nru"},
	{"never/plru", "dbrb(base=plru,pred=never)", "plru"},
	{"never/srrip", "dbrb(base=srrip,pred=never)", "srrip"},
	{"ship-off/srrip", "ship(train=off,init=7)", "srrip"},
	{"duel-forced/lru", "duel(a=lru,b=dbrb(base=lru,pred=reuse),force=a)", "lru"},
}

// differentialBenches pins the identities on the repo's sampled
// validation suite — the memory-diverse bench set the figures already
// treat as representative. -short keeps one streaming and one
// irregular bench.
func differentialBenches(t *testing.T) []string {
	if testing.Short() {
		return []string{"456.hmmer", "429.mcf"}
	}
	return figures.SampledValidationBenches
}

// TestDifferentialDegeneration proves each neutralized composition is
// byte-identical to its base policy: full fingerprint equality,
// including the formatted figure cells, on every validation bench.
func TestDifferentialDegeneration(t *testing.T) {
	for _, pair := range differentialPairs {
		pair := pair
		t.Run(pair.name, func(t *testing.T) {
			for _, bench := range differentialBenches(t) {
				got := Run(pair.expr, bench, conformanceScale)
				want := Run(pair.base, bench, conformanceScale)
				if got.Cells != want.Cells {
					t.Errorf("%s: %q cells %q != base %q cells %q",
						bench, pair.expr, got.Cells, pair.base, want.Cells)
				}
				if got.Instructions != want.Instructions || got.Cycles != want.Cycles ||
					got.IPC != want.IPC || got.MPKI != want.MPKI || got.LLC != want.LLC {
					t.Errorf("%s: %q fingerprint diverged from %q:\n  got  %+v\n  want %+v",
						bench, pair.expr, pair.base, got, want)
				}
			}
		})
	}
}

// TestDifferentialNeverPredicts pins the mechanism behind the dbrb
// identities: the always-live predictor produces dead-block predictions
// on every fill yet zero positive verdicts, so the wrapper's bypass and
// dead-victim paths never fire.
func TestDifferentialNeverPredicts(t *testing.T) {
	fp := Run("dbrb(base=lru,pred=never)", conformanceBench, conformanceScale)
	if fp.Accuracy == nil {
		t.Fatal("dbrb run carried no accuracy accounting")
	}
	if fp.Accuracy.Positives != 0 {
		t.Errorf("always-live predictor produced %d dead verdicts, want 0", fp.Accuracy.Positives)
	}
	if fp.LLC.Bypasses != 0 {
		t.Errorf("always-live predictor caused %d bypasses, want 0", fp.LLC.Bypasses)
	}
}
