package policy

import (
	"sdbp/internal/cache"
	"sdbp/internal/mem"
)

// rrpvBits is the re-reference prediction value width (2 bits in the
// RRIP paper's main configuration).
const rrpvBits = 2

const rrpvMax = 1<<rrpvBits - 1 // "distant re-reference" value

// brripEpsilon is BRRIP's probability of inserting with a long (rather
// than distant) re-reference prediction, mirroring BIP's 1/32.
const brripEpsilon = 1.0 / 32

// RRIP implements Re-Reference Interval Prediction (Jaleel et al., ISCA
// 2010). Each line carries a 2-bit RRPV; insertion predicts a long
// re-reference interval (RRPV = max-1 for SRRIP), hits promote to near
// (RRPV = 0), and the victim is a line with a distant prediction
// (RRPV = max), aging the whole set until one exists.
//
// With Dynamic set to true this is DRRIP: set dueling between SRRIP and
// BRRIP (which inserts at distant RRPV except with probability 1/32),
// with one duel per hardware thread as in the paper's shared-cache
// extension.
type RRIP struct {
	cache.Base
	ways    int
	rrpv    []uint8
	Dynamic bool
	threads int
	duels   []duel
	rng     *mem.Rand
	seed    uint64
}

// NewSRRIP returns a static RRIP policy.
func NewSRRIP() *RRIP { return &RRIP{threads: 1, rng: mem.NewRand(0x5121)} }

// NewDRRIP returns a dynamic (set dueling) RRIP policy for up to threads
// hardware threads.
func NewDRRIP(threads int, seed uint64) *RRIP {
	if threads < 1 {
		threads = 1
	}
	return &RRIP{Dynamic: true, threads: threads, seed: seed, rng: mem.NewRand(seed)}
}

// Name implements cache.Policy.
func (p *RRIP) Name() string {
	if p.Dynamic {
		return "RRIP"
	}
	return "SRRIP"
}

// Reset implements cache.Policy.
func (p *RRIP) Reset(sets, ways int) {
	p.ways = ways
	p.rrpv = make([]uint8, sets*ways)
	for i := range p.rrpv {
		p.rrpv[i] = rrpvMax
	}
	p.duels = make([]duel, p.threads)
	for t := range p.duels {
		p.duels[t] = newDuel(sets, 32, 0x4421+uint64(t)*0x9e37)
	}
	p.rng.Seed(p.seed)
}

func (p *RRIP) idx(set uint32, way int) int { return int(set)*p.ways + way }

func (p *RRIP) duelFor(a mem.Access) *duel {
	t := int(a.Thread)
	if t >= len(p.duels) {
		t = 0
	}
	return &p.duels[t]
}

// OnHit implements cache.Policy: hit promotion to near re-reference.
func (p *RRIP) OnHit(set uint32, way int, _ mem.Access) {
	p.rrpv[p.idx(set, way)] = 0
}

// OnFill implements cache.Policy. Fills happen exactly once per miss
// (RRIP never bypasses), so the DRRIP duel's PSEL updates here.
func (p *RRIP) OnFill(set uint32, way int, a mem.Access) {
	insert := uint8(rrpvMax - 1) // SRRIP: long re-reference interval
	if p.Dynamic {
		d := p.duelFor(a)
		d.onMiss(set)
		if d.choose(set) {
			// BRRIP: distant, except occasionally long.
			if p.rng.Chance(brripEpsilon) {
				insert = rrpvMax - 1
			} else {
				insert = rrpvMax
			}
		}
	}
	p.rrpv[p.idx(set, way)] = insert
}

// Victim implements cache.Policy: the first way predicted distant,
// aging the set until one exists.
func (p *RRIP) Victim(set uint32, _ mem.Access) int {
	base := int(set) * p.ways
	for {
		for w := 0; w < p.ways; w++ {
			if p.rrpv[base+w] == rrpvMax {
				return w
			}
		}
		for w := 0; w < p.ways; w++ {
			p.rrpv[base+w]++
		}
	}
}

// Rank implements Ranked: larger RRPV means closer to eviction.
func (p *RRIP) Rank(set uint32, way int) int {
	return int(p.rrpv[p.idx(set, way)])
}

// RRPV exposes a line's current re-reference prediction value for tests.
func (p *RRIP) RRPV(set uint32, way int) uint8 { return p.rrpv[p.idx(set, way)] }
