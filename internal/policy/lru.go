// Package policy implements the cache management policies the paper
// evaluates against: true LRU, random replacement, DIP and TADIP
// (adaptive insertion via set dueling), and SRRIP/DRRIP (re-reference
// interval prediction), plus the set-dueling engine they share.
package policy

import (
	"sdbp/internal/cache"
	"sdbp/internal/mem"
)

// Ranked is implemented by policies that can order a set's ways by
// eviction preference. The dead-block replacement policy uses it to pick
// "the predicted dead block closest to LRU" when several blocks are
// predicted dead.
type Ranked interface {
	// Rank returns an eviction preference for (set, way): larger means
	// closer to eviction under the base policy.
	Rank(set uint32, way int) int
}

// LRU is a true least-recently-used policy: each set maintains an exact
// recency stack. The paper's baseline LLC and its L1/L2 caches use it.
type LRU struct {
	cache.Base
	ways int
	pos  []uint8 // sets*ways; 0 = MRU, ways-1 = LRU

	// InsertLRU, when true, places new blocks in the LRU position
	// instead of MRU (the LIP building block of DIP).
	InsertLRU bool
}

// NewLRU returns a true-LRU policy.
func NewLRU() *LRU { return &LRU{} }

// Name implements cache.Policy.
func (p *LRU) Name() string { return "LRU" }

// Reset implements cache.Policy.
func (p *LRU) Reset(sets, ways int) {
	p.ways = ways
	p.pos = make([]uint8, sets*ways)
	for i := range p.pos {
		p.pos[i] = uint8(i % ways) // arbitrary valid permutation per set
	}
}

func (p *LRU) idx(set uint32, way int) int { return int(set)*p.ways + way }

// promote moves way to the MRU position of set.
func (p *LRU) promote(set uint32, way int) {
	old := p.pos[p.idx(set, way)]
	base := int(set) * p.ways
	for w := 0; w < p.ways; w++ {
		if p.pos[base+w] < old {
			p.pos[base+w]++
		}
	}
	p.pos[p.idx(set, way)] = 0
}

// demote moves way to the LRU position of set.
func (p *LRU) demote(set uint32, way int) {
	old := p.pos[p.idx(set, way)]
	base := int(set) * p.ways
	for w := 0; w < p.ways; w++ {
		if p.pos[base+w] > old {
			p.pos[base+w]--
		}
	}
	p.pos[p.idx(set, way)] = uint8(p.ways - 1)
}

// OnHit implements cache.Policy: hits promote to MRU.
func (p *LRU) OnHit(set uint32, way int, _ mem.Access) { p.promote(set, way) }

// OnFill implements cache.Policy: fills insert at MRU (or LRU when
// InsertLRU is set).
func (p *LRU) OnFill(set uint32, way int, _ mem.Access) {
	if p.InsertLRU {
		p.demote(set, way)
	} else {
		p.promote(set, way)
	}
}

// Victim implements cache.Policy: evict the LRU way.
func (p *LRU) Victim(set uint32, _ mem.Access) int {
	base := int(set) * p.ways
	for w := 0; w < p.ways; w++ {
		if p.pos[base+w] == uint8(p.ways-1) {
			return w
		}
	}
	// Unreachable while pos holds a permutation per set.
	return p.ways - 1
}

// Rank implements Ranked: the stack position itself.
func (p *LRU) Rank(set uint32, way int) int {
	return int(p.pos[p.idx(set, way)])
}

// StackPos returns way's recency position in set (0 = MRU). Tests and
// the dead-block policy use it.
func (p *LRU) StackPos(set uint32, way int) int { return p.Rank(set, way) }

// PrefetchVictim implements cache.PrefetchPlacer: plain LRU lets a
// prefetch displace the LRU block — the polluting placement the
// dead-block-directed prefetcher is compared against.
func (p *LRU) PrefetchVictim(set uint32) (int, bool) {
	return p.Victim(set, mem.Access{}), true
}
