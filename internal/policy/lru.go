// Package policy implements the cache management policies the paper
// evaluates against: true LRU, random replacement, DIP and TADIP
// (adaptive insertion via set dueling), and SRRIP/DRRIP (re-reference
// interval prediction), plus the set-dueling engine they share.
package policy

import (
	"sdbp/internal/cache"
	"sdbp/internal/mem"
)

// Ranked is implemented by policies that can order a set's ways by
// eviction preference. The dead-block replacement policy uses it to pick
// "the predicted dead block closest to LRU" when several blocks are
// predicted dead.
type Ranked interface {
	// Rank returns an eviction preference for (set, way): larger means
	// closer to eviction under the base policy.
	Rank(set uint32, way int) int
}

// LRU is a true least-recently-used policy: each set maintains an exact
// recency stack (a cache.Recency). The paper's baseline LLC and its
// L1/L2 caches use it; via cache.PlainLRU the cache drives the stack
// directly when the policy is exactly this one.
type LRU struct {
	cache.Base
	rec cache.Recency

	// InsertLRU, when true, places new blocks in the LRU position
	// instead of MRU (the LIP building block of DIP).
	InsertLRU bool
}

// NewLRU returns a true-LRU policy.
func NewLRU() *LRU { return &LRU{} }

// Name implements cache.Policy.
func (p *LRU) Name() string { return "LRU" }

// Reset implements cache.Policy.
func (p *LRU) Reset(sets, ways int) { p.rec.Reset(sets, ways) }

// PlainLRU implements cache.PlainLRU, enabling the cache's
// devirtualized hot path when this policy is used unwrapped.
func (p *LRU) PlainLRU() (*cache.Recency, *bool, cache.Policy) {
	return &p.rec, &p.InsertLRU, p
}

// OnHit implements cache.Policy: hits promote to MRU.
func (p *LRU) OnHit(set uint32, way int, _ mem.Access) { p.rec.Promote(set, way) }

// OnFill implements cache.Policy: fills insert at MRU (or LRU when
// InsertLRU is set).
func (p *LRU) OnFill(set uint32, way int, _ mem.Access) {
	if p.InsertLRU {
		p.rec.Demote(set, way)
	} else {
		p.rec.Promote(set, way)
	}
}

// Victim implements cache.Policy: evict the LRU way.
func (p *LRU) Victim(set uint32, _ mem.Access) int { return p.rec.Victim(set) }

// Rank implements Ranked: the stack position itself.
func (p *LRU) Rank(set uint32, way int) int { return p.rec.Pos(set, way) }

// StackPos returns way's recency position in set (0 = MRU). Tests and
// the dead-block policy use it.
func (p *LRU) StackPos(set uint32, way int) int { return p.rec.Pos(set, way) }

// PrefetchVictim implements cache.PrefetchPlacer: plain LRU lets a
// prefetch displace the LRU block — the polluting placement the
// dead-block-directed prefetcher is compared against.
func (p *LRU) PrefetchVictim(set uint32) (int, bool) {
	return p.rec.Victim(set), true
}
