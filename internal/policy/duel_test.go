package policy

import (
	"testing"

	"sdbp/internal/mem"
)

func TestExportedDuelSteering(t *testing.T) {
	d := NewDuel(256, 8, 0x1)
	// Find one leader of each side via the internal role (white-box).
	var leaderA, leaderB uint32
	foundA, foundB := false, false
	for s := uint32(0); s < 256; s++ {
		switch d.d.role(s) {
		case duelLeaderA:
			leaderA, foundA = s, true
		case duelLeaderB:
			leaderB, foundB = s, true
		}
	}
	if !foundA || !foundB {
		t.Fatal("duel has no leaders")
	}
	for i := 0; i < 2000; i++ {
		d.OnMiss(leaderA)
	}
	// Followers now choose B; leaders stay pinned.
	if d.ChooseB(leaderA) {
		t.Error("A-leader played B")
	}
	if !d.ChooseB(leaderB) {
		t.Error("B-leader played A")
	}
	follower := uint32(0)
	for s := uint32(0); s < 256; s++ {
		if d.d.role(s) == duelFollower {
			follower = s
			break
		}
	}
	if !d.ChooseB(follower) {
		t.Error("follower ignored a saturated PSEL")
	}
	// And back toward A.
	for i := 0; i < 2000; i++ {
		d.OnMiss(leaderB)
	}
	if d.ChooseB(follower) {
		t.Error("follower ignored the reversed PSEL")
	}
}

func TestDuelSaltsDecorrelateLeaders(t *testing.T) {
	a := NewDuel(2048, 32, 1)
	b := NewDuel(2048, 32, 2)
	same := 0
	for s := uint32(0); s < 2048; s++ {
		ra, rb := a.d.role(s), b.d.role(s)
		if ra != duelFollower && ra == rb {
			same++
		}
	}
	if same > 16 {
		t.Errorf("%d leader sets coincide across different salts", same)
	}
}

func TestNRURankValues(t *testing.T) {
	p := NewNRU()
	p.Reset(1, 4)
	p.OnHit(0, 1, mem.Access{})
	if p.Rank(0, 1) != 0 {
		t.Error("recently used line should rank 0")
	}
	if p.Rank(0, 2) != 1 {
		t.Error("unused line should rank 1")
	}
}
