package policy

import (
	"sdbp/internal/cache"
	"sdbp/internal/mem"
)

// Force pins an AB duel to one side, bypassing the PSEL entirely. The
// differential harness uses ForceA to prove the wrapper transparent:
// duel(...,force=a) must be byte-identical to policy A alone.
type Force int

const (
	// ForceNone lets the duel arbitrate (default).
	ForceNone Force = iota
	// ForceA pins every set to policy A.
	ForceA
	// ForceB pins every set to policy B.
	ForceB
)

// abSalt decorrelates the AB wrapper's leader placement from the duels
// inside DIP/TADIP/DRRIP and the dueling dead-block policy.
const abSalt = 0xAB5E17

// AB arbitrates two complete cache policies with DIP-style set dueling:
// a few leader sets are pinned to each side, a PSEL counter of
// configurable width tallies leader-set misses, and follower sets play
// whichever side the PSEL currently favors. Both sides observe every
// event (access, hit, fill, eviction) so either one's metadata is
// coherent with the cache's true contents whenever the duel hands it a
// decision; only the decisions — bypass and victim selection — come
// from the chosen side. This is the "improved DBP" safety net of the
// reuse-counter predictor generalized to arbitrary policy pairs.
type AB struct {
	a, b     cache.Policy
	leaders  int
	pselBits int
	force    Force

	d             duel // leader-role geometry only; PSEL is local (width varies)
	psel, pselMax int
}

// NewAB wraps policies a and b in a set duel with the given number of
// leader sets per side and PSEL width in bits.
func NewAB(a, b cache.Policy, leaders, pselBits int, force Force) *AB {
	return &AB{a: a, b: b, leaders: leaders, pselBits: pselBits, force: force}
}

// Name implements cache.Policy.
func (p *AB) Name() string { return "Duel(" + p.a.Name() + " vs " + p.b.Name() + ")" }

// A returns the duel's first side.
func (p *AB) A() cache.Policy { return p.a }

// B returns the duel's second side.
func (p *AB) B() cache.Policy { return p.b }

// Reset implements cache.Policy.
func (p *AB) Reset(sets, ways int) {
	p.a.Reset(sets, ways)
	p.b.Reset(sets, ways)
	p.d = newDuel(sets, p.leaders, abSalt)
	p.pselMax = 1<<uint(p.pselBits) - 1
	p.psel = p.pselMax / 2
}

// useB reports which side decides for this set right now.
func (p *AB) useB(set uint32) bool {
	switch p.force {
	case ForceA:
		return false
	case ForceB:
		return true
	}
	switch p.d.role(set) {
	case duelLeaderA:
		return false
	case duelLeaderB:
		return true
	}
	return p.psel > p.pselMax/2
}

// onMiss updates the PSEL for a leader-set miss: misses in A-leaders
// argue for B and vice versa. A forced duel never moves its PSEL.
func (p *AB) onMiss(set uint32) {
	if p.force != ForceNone {
		return
	}
	switch p.d.role(set) {
	case duelLeaderA:
		if p.psel < p.pselMax {
			p.psel++
		}
	case duelLeaderB:
		if p.psel > 0 {
			p.psel--
		}
	}
}

// OnAccess implements cache.Policy: both sides observe.
func (p *AB) OnAccess(set uint32, a mem.Access) {
	p.a.OnAccess(set, a)
	p.b.OnAccess(set, a)
}

// Bypass implements cache.Policy: it runs exactly once per miss, so the
// PSEL updates here (writeback misses stay out of the duel, matching
// the dueling dead-block policy). Both sides are consulted — a side's
// Bypass may carry its own accounting — but only the chosen side's
// verdict acts.
func (p *AB) Bypass(set uint32, a mem.Access) bool {
	if !a.Writeback {
		p.onMiss(set)
	}
	aSays := p.a.Bypass(set, a)
	bSays := p.b.Bypass(set, a)
	if p.useB(set) {
		return bSays
	}
	return aSays
}

// Victim implements cache.Policy: only the chosen side picks (victim
// selection can mutate policy state — RRIP ages the set — so the idle
// side must not run).
func (p *AB) Victim(set uint32, a mem.Access) int {
	if p.useB(set) {
		return p.b.Victim(set, a)
	}
	return p.a.Victim(set, a)
}

// OnHit implements cache.Policy: both sides observe.
func (p *AB) OnHit(set uint32, way int, a mem.Access) {
	p.a.OnHit(set, way, a)
	p.b.OnHit(set, way, a)
}

// OnFill implements cache.Policy: both sides observe.
func (p *AB) OnFill(set uint32, way int, a mem.Access) {
	p.a.OnFill(set, way, a)
	p.b.OnFill(set, way, a)
}

// OnEvict implements cache.Policy: both sides observe.
func (p *AB) OnEvict(set uint32, way int) {
	p.a.OnEvict(set, way)
	p.b.OnEvict(set, way)
}

// PSEL exposes the current selector value for tests.
func (p *AB) PSEL() int { return p.psel }
