package policy

import (
	"testing"
	"testing/quick"

	"sdbp/internal/cache"
	"sdbp/internal/mem"
)

// refCache is an executable specification of a set-associative LRU
// cache: per set, an ordered slice of resident block numbers, MRU
// first. The production cache plus policy.LRU must agree with it on
// every access's hit/miss outcome.
type refCache struct {
	sets, ways int
	content    [][]uint64
}

func newRefCache(sets, ways int) *refCache {
	return &refCache{sets: sets, ways: ways, content: make([][]uint64, sets)}
}

// access returns whether the reference model hits, updating its state.
func (r *refCache) access(addr uint64) bool {
	b := mem.BlockNumber(addr)
	s := mem.SetIndex(addr, r.sets)
	set := r.content[s]
	for i, e := range set {
		if e == b {
			copy(set[1:i+1], set[:i])
			set[0] = b
			return true
		}
	}
	if len(set) >= r.ways {
		set = set[:r.ways-1]
	}
	r.content[s] = append([]uint64{b}, set...)
	return false
}

func TestLRUCacheMatchesExecutableSpec(t *testing.T) {
	const sets, ways = 8, 4
	f := func(addrs []uint16, seed uint64) bool {
		c := cache.New(cache.Config{Name: "d", SizeBytes: sets * ways * mem.BlockSize, Ways: ways}, NewLRU())
		ref := newRefCache(sets, ways)
		rng := mem.NewRand(seed)
		for _, a16 := range addrs {
			// Mix deterministic fuzz addresses with random ones to
			// stress both clustered and scattered patterns.
			addr := uint64(a16) * mem.BlockSize
			if rng.Chance(0.3) {
				addr = uint64(rng.Intn(sets*ways*4)) * mem.BlockSize
			}
			got := c.Access(mem.Access{Addr: addr}).Hit
			want := ref.access(addr)
			if got != want {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func TestLRUCacheMatchesSpecLongRun(t *testing.T) {
	const sets, ways = 64, 16
	c := cache.New(cache.Config{Name: "d", SizeBytes: sets * ways * mem.BlockSize, Ways: ways}, NewLRU())
	ref := newRefCache(sets, ways)
	rng := mem.NewRand(99)
	for i := 0; i < 300000; i++ {
		addr := uint64(rng.Intn(sets*ways*3)) * mem.BlockSize
		if c.Access(mem.Access{Addr: addr}).Hit != ref.access(addr) {
			t.Fatalf("divergence from the executable spec at access %d", i)
		}
	}
}

func TestInsertPrefetchBasics(t *testing.T) {
	c := cache.New(cache.Config{Name: "p", SizeBytes: 4 * mem.BlockSize, Ways: 4}, NewLRU())
	if !c.InsertPrefetch(mem.Access{Addr: 0x40}) {
		t.Fatal("prefetch into an empty set failed")
	}
	if !c.Contains(0x40) {
		t.Fatal("prefetched block not resident")
	}
	// Re-prefetching a resident block is a no-op.
	if c.InsertPrefetch(mem.Access{Addr: 0x40}) {
		t.Error("duplicate prefetch placed")
	}
	// A demand hit on the prefetched block counts as useful.
	c.Access(mem.Access{Addr: 0x40})
	s := c.Stats()
	if s.Prefetches != 1 || s.UsefulPrefetches != 1 {
		t.Errorf("prefetch stats = %d/%d", s.Prefetches, s.UsefulPrefetches)
	}
}

func TestInsertPrefetchUsesPolicyVictim(t *testing.T) {
	c := cache.New(cache.Config{Name: "p", SizeBytes: 2 * mem.BlockSize, Ways: 2}, NewLRU())
	c.Access(mem.Access{Addr: 0 * mem.BlockSize})
	c.Access(mem.Access{Addr: 1 * 2 * mem.BlockSize}) // same single set
	// Full set: LRU implements PrefetchPlacer, so the prefetch evicts
	// the LRU block.
	if !c.InsertPrefetch(mem.Access{Addr: 2 * 2 * mem.BlockSize}) {
		t.Fatal("prefetch into a full set with a placer policy failed")
	}
	if c.Contains(0) {
		t.Error("LRU block survived the prefetch placement")
	}
}

func TestPrefetchedEvictionIsNotUseful(t *testing.T) {
	c := cache.New(cache.Config{Name: "p", SizeBytes: 2 * mem.BlockSize, Ways: 2}, NewLRU())
	c.InsertPrefetch(mem.Access{Addr: 0})
	// Evict it with demand fills before any demand touch.
	c.Access(mem.Access{Addr: 1 * 2 * mem.BlockSize})
	c.Access(mem.Access{Addr: 2 * 2 * mem.BlockSize})
	c.Access(mem.Access{Addr: 3 * 2 * mem.BlockSize})
	if c.Stats().UsefulPrefetches != 0 {
		t.Error("unused prefetch counted as useful")
	}
}
