package policy

import (
	"sdbp/internal/cache"
	"sdbp/internal/mem"
)

// Random evicts a uniformly random way. The paper uses it as the cheap
// default policy that the sampling predictor upgrades (Section V-A):
// random replacement needs no per-line state at all, so a dead-block
// optimization on top of it costs only the predictor's own storage.
type Random struct {
	cache.Base
	ways int
	rng  *mem.Rand
	seed uint64
}

// NewRandom returns a random-replacement policy with a deterministic
// stream derived from seed.
func NewRandom(seed uint64) *Random {
	return &Random{seed: seed, rng: mem.NewRand(seed)}
}

// Name implements cache.Policy.
func (p *Random) Name() string { return "Random" }

// Reset implements cache.Policy.
func (p *Random) Reset(_, ways int) {
	p.ways = ways
	p.rng.Seed(p.seed)
}

// Victim implements cache.Policy.
func (p *Random) Victim(uint32, mem.Access) int { return p.rng.Intn(p.ways) }

// OnHit implements cache.Policy; random replacement keeps no state.
func (p *Random) OnHit(uint32, int, mem.Access) {}

// OnFill implements cache.Policy; random replacement keeps no state.
func (p *Random) OnFill(uint32, int, mem.Access) {}

// Rank implements Ranked: random replacement has no eviction preference,
// so every way ranks equally.
func (p *Random) Rank(uint32, int) int { return 0 }
