package policy

import "sdbp/internal/mem"

// Set dueling (Qureshi et al., ISCA 2007) dedicates a few leader sets to
// each of two competing policies and steers the remaining follower sets
// by a saturating policy-selection counter (PSEL) updated on leader-set
// misses. DIP, TADIP and DRRIP all share this engine.

// duelLeaderA and duelLeaderB classify a set's role in a duel.
const (
	duelFollower = iota
	duelLeaderA
	duelLeaderB
)

// pselBits is the PSEL width from the DIP paper.
const pselBits = 10

const pselMax = 1<<pselBits - 1

// duel is one two-policy set-dueling instance.
type duel struct {
	psel     int
	sets     int
	leaders  int // leader sets per policy
	roleSalt uint64
}

// newDuel configures a duel over a cache with the given number of sets,
// with leaders dedicated sets per policy. salt decorrelates the leader
// assignments of independent duels (e.g. per-thread duels in TADIP).
func newDuel(sets, leaders int, salt uint64) duel {
	if leaders*2 > sets {
		leaders = sets / 2
	}
	return duel{psel: pselMax / 2, sets: sets, leaders: leaders, roleSalt: salt}
}

// role classifies set as a leader for policy A, a leader for policy B,
// or a follower. Leader sets are spread across the cache by a hash so
// that region-local behavior does not bias the duel.
func (d *duel) role(set uint32) int {
	if d.leaders == 0 {
		return duelFollower
	}
	group := d.sets / d.leaders
	if group < 2 {
		group = 2
	}
	slot := int(set) % group
	// Hash the group number so the chosen slots vary across the cache.
	h := mem.Mix64(uint64(int(set)/group) + d.roleSalt)
	a := int(h % uint64(group))
	b := int((h >> 32) % uint64(group))
	if b == a {
		b = (a + 1) % group
	}
	switch slot {
	case a:
		return duelLeaderA
	case b:
		return duelLeaderB
	}
	return duelFollower
}

// onMiss updates PSEL for a miss in set. A miss in an A-leader argues
// against A (PSEL increments toward B) and vice versa.
func (d *duel) onMiss(set uint32) {
	switch d.role(set) {
	case duelLeaderA:
		if d.psel < pselMax {
			d.psel++
		}
	case duelLeaderB:
		if d.psel > 0 {
			d.psel--
		}
	}
}

// useB reports which policy a follower set should use: true selects
// policy B (PSEL has accumulated misses against A).
func (d *duel) useB() bool { return d.psel > pselMax/2 }

// choose returns whether the given set should behave as policy B right
// now: leaders always play their own policy, followers go with PSEL.
func (d *duel) choose(set uint32) bool {
	switch d.role(set) {
	case duelLeaderA:
		return false
	case duelLeaderB:
		return true
	}
	return d.useB()
}

// Duel is the exported set-dueling engine for policies built outside
// this package (e.g. the dueling dead-block policy): two candidate
// behaviors A and B, a few leader sets pinned to each, and a PSEL
// counter steering the followers.
type Duel struct{ d duel }

// NewDuel configures a duel over a cache with the given set count,
// dedicating leaders sets to each side. salt decorrelates independent
// duels' leader placements.
func NewDuel(sets, leaders int, salt uint64) *Duel {
	return &Duel{d: newDuel(sets, leaders, salt)}
}

// OnMiss records a miss in set: misses in A-leaders argue for B and
// vice versa.
func (d *Duel) OnMiss(set uint32) { d.d.onMiss(set) }

// ChooseB reports whether the given set should currently behave as
// policy B (leaders always play their own side).
func (d *Duel) ChooseB(set uint32) bool { return d.d.choose(set) }
