package policy

import (
	"testing"

	"sdbp/internal/cache"
	"sdbp/internal/mem"
)

// thrash drives a cache with a cyclic working set bigger than its
// capacity and returns the hit count.
func thrash(c *cache.Cache, blocks, laps int) uint64 {
	for l := 0; l < laps; l++ {
		for b := 0; b < blocks; b++ {
			c.Access(mem.Access{Addr: uint64(b) * mem.BlockSize})
		}
	}
	return c.Stats().Hits
}

func TestDIPBeatsLRUOnThrash(t *testing.T) {
	cfg := cache.Config{Name: "t", SizeBytes: 64 << 10, Ways: 16} // 1024 blocks
	const blocks, laps = 1536, 20                                 // 1.5x capacity

	lruHits := thrash(cache.New(cfg, NewLRU()), blocks, laps)
	dipHits := thrash(cache.New(cfg, NewDIP(1)), blocks, laps)
	if lruHits != 0 {
		t.Errorf("LRU hits on cyclic thrash = %d, want 0", lruHits)
	}
	if dipHits == 0 {
		t.Error("DIP gained no hits on cyclic thrash")
	}
}

func TestDIPFollowsLRUOnFriendlyPattern(t *testing.T) {
	// A working set that fits: DIP must not do (much) worse than LRU.
	cfg := cache.Config{Name: "t", SizeBytes: 64 << 10, Ways: 16}
	const blocks, laps = 512, 20
	lruHits := thrash(cache.New(cfg, NewLRU()), blocks, laps)
	dipHits := thrash(cache.New(cfg, NewDIP(1)), blocks, laps)
	if float64(dipHits) < 0.90*float64(lruHits) {
		t.Errorf("DIP hits %d far below LRU hits %d on a fitting set", dipHits, lruHits)
	}
}

func TestDuelRolesArePartition(t *testing.T) {
	d := newDuel(2048, 32, 0x123)
	counts := map[int]int{}
	for s := 0; s < 2048; s++ {
		counts[d.role(uint32(s))]++
	}
	if counts[duelLeaderA] != 32 || counts[duelLeaderB] != 32 {
		t.Errorf("leader counts A=%d B=%d, want 32 each", counts[duelLeaderA], counts[duelLeaderB])
	}
	if counts[duelFollower] != 2048-64 {
		t.Errorf("followers = %d", counts[duelFollower])
	}
}

func TestDuelPSELSteering(t *testing.T) {
	d := newDuel(2048, 32, 0)
	var leaderA uint32
	for s := uint32(0); s < 2048; s++ {
		if d.role(s) == duelLeaderA {
			leaderA = s
			break
		}
	}
	// Misses in A-leaders argue for B.
	for i := 0; i < pselMax; i++ {
		d.onMiss(leaderA)
	}
	if !d.useB() {
		t.Error("PSEL saturated against A but followers still use A")
	}
	// Leaders always play their own policy.
	if d.choose(leaderA) {
		t.Error("A-leader asked to play B")
	}
}

func TestDuelPSELSaturates(t *testing.T) {
	d := newDuel(64, 4, 0)
	var leaderA uint32
	for s := uint32(0); s < 64; s++ {
		if d.role(s) == duelLeaderA {
			leaderA = s
			break
		}
	}
	for i := 0; i < 10*pselMax; i++ {
		d.onMiss(leaderA)
	}
	if d.psel != pselMax {
		t.Errorf("psel = %d, want saturated %d", d.psel, pselMax)
	}
}

func TestTADIPPerThreadDuels(t *testing.T) {
	p := NewTADIP(4, 1)
	p.Reset(2048, 16)
	if len(p.duels) != 4 {
		t.Fatalf("duels = %d, want 4", len(p.duels))
	}
	// Thread indexes beyond the configured count fall back to thread 0.
	if got := p.duelFor(mem.Access{Thread: 9}); got != &p.duels[0] {
		t.Error("out-of-range thread did not fall back to duel 0")
	}
}

func TestTADIPBeatsLRUWhenOneThreadThrashes(t *testing.T) {
	cfg := cache.Config{Name: "t", SizeBytes: 64 << 10, Ways: 16}
	run := func(p cache.Policy) (hits uint64) {
		c := cache.New(cfg, p)
		// Thread 0: fitting hot set; thread 1: cyclic thrash.
		for l := 0; l < 30; l++ {
			for b := 0; b < 256; b++ {
				c.Access(mem.Access{Addr: uint64(b) * mem.BlockSize, Thread: 0})
			}
			for b := 0; b < 1400; b++ {
				c.Access(mem.Access{Addr: 1<<32 + uint64(b)*mem.BlockSize, Thread: 1})
			}
		}
		return c.Stats().Hits
	}
	lru := run(NewLRU())
	tadip := run(NewTADIP(2, 1))
	if tadip <= lru {
		t.Errorf("TADIP hits %d <= LRU hits %d under asymmetric threads", tadip, lru)
	}
}
