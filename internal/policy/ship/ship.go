// Package ship implements SHiP — Signature-based Hit Predictor
// replacement (Wu et al., MICRO 2011) — over the repo's SRRIP backbone.
// Every fill records a hashed PC signature; a signature history counter
// table (SHCT) learns — from every set by default, or from a sampled
// subset under the reduced-overhead SHiP-S variant — whether blocks
// inserted by that signature are ever re-referenced. Fills whose
// signature has no recorded reuse insert at the distant RRPV (next in
// line for eviction); everything else inserts exactly as SRRIP does.
//
// The policy degenerates to SRRIP when training is off and the SHCT is
// initialized saturated (ship(train=off,init=7)): every insertion then
// takes the SRRIP long re-reference value, hits promote identically,
// and victim selection shares the aging loop — the differential harness
// pins that identity byte-for-byte.
package ship

import (
	"fmt"

	"sdbp/internal/cache"
	"sdbp/internal/mem"
)

// rrpvMax is the distant re-reference value of the 2-bit RRPV backbone
// (matching the SRRIP policy this package must degenerate to).
const rrpvMax = 3

// TrainMode selects which sets may update the SHCT.
type TrainMode int

const (
	// TrainSampled trains from a sampled subset of sets — the paper's
	// reduced-overhead SHiP-S variant.
	TrainSampled TrainMode = iota
	// TrainAll trains from every set (the paper's base SHiP-PC
	// configuration; default).
	TrainAll
	// TrainOff freezes the SHCT at its initial value.
	TrainOff
)

// String returns the canonical expression token for the mode.
func (m TrainMode) String() string {
	switch m {
	case TrainAll:
		return "all"
	case TrainOff:
		return "off"
	}
	return "sampled"
}

// Config parameterizes SHiP. The zero value is not valid; use
// DefaultConfig.
type Config struct {
	// SigBits is the signature width; the SHCT holds 1<<SigBits
	// counters (14 bits / 16K entries in the paper).
	SigBits int
	// CounterMax is the SHCT counter saturation value (7, i.e. 3-bit
	// counters, in the paper).
	CounterMax int
	// Init is the value every SHCT counter starts at. 0 (the paper's
	// choice) treats unseen signatures as no-reuse; CounterMax starts
	// every signature trusted, which with TrainOff is exactly SRRIP.
	Init int
	// Train selects which sets update the SHCT.
	Train TrainMode
	// SampledSets is how many sets train the SHCT under TrainSampled
	// (power of two; clamped to the cache's set count).
	SampledSets int
}

// DefaultConfig is the paper's base SHiP-PC configuration: a 16K-entry
// SHCT of 3-bit counters starting cold, trained from every set.
// ship(train=sampled) selects the reduced-overhead SHiP-S variant.
func DefaultConfig() Config {
	return Config{SigBits: 14, CounterMax: 7, Init: 0, Train: TrainAll, SampledSets: 64}
}

// Policy implements cache.Policy. See the package comment for the
// insertion and training flow.
type Policy struct {
	cache.Base
	cfg     Config
	ways    int
	rrpv    []uint8
	sig     []uint16 // fill signature per line
	reused  []bool   // line has hit since fill
	tracked []bool   // line was demand-filled (writeback fills train nothing)
	shct    []uint8
	sigMask uint32

	// Sampled-set test: set is a trainer iff set&intervalMask == 0
	// (intervalMask 0 trains every set).
	intervalMask uint32
}

// New builds a SHiP policy. It panics on an invalid configuration (the
// registry validates user expressions first).
func New(cfg Config) *Policy {
	if cfg.SigBits < 1 || cfg.SigBits > 24 {
		panic(fmt.Sprintf("ship: invalid signature width %d", cfg.SigBits))
	}
	if cfg.CounterMax < 1 || cfg.CounterMax > 255 {
		panic(fmt.Sprintf("ship: invalid counter max %d", cfg.CounterMax))
	}
	if cfg.Init < 0 || cfg.Init > cfg.CounterMax {
		panic(fmt.Sprintf("ship: initial counter %d outside [0, %d]", cfg.Init, cfg.CounterMax))
	}
	if cfg.SampledSets < 1 || !mem.IsPow2(cfg.SampledSets) {
		panic(fmt.Sprintf("ship: invalid sampled-set count %d", cfg.SampledSets))
	}
	return &Policy{cfg: cfg, sigMask: 1<<uint(cfg.SigBits) - 1}
}

// Name implements cache.Policy.
func (p *Policy) Name() string { return "SHiP" }

// Config returns the policy's configuration.
func (p *Policy) Config() Config { return p.cfg }

// Reset implements cache.Policy.
func (p *Policy) Reset(sets, ways int) {
	p.ways = ways
	p.rrpv = make([]uint8, sets*ways)
	for i := range p.rrpv {
		p.rrpv[i] = rrpvMax
	}
	p.sig = make([]uint16, sets*ways)
	p.reused = make([]bool, sets*ways)
	p.tracked = make([]bool, sets*ways)
	p.shct = make([]uint8, 1<<uint(p.cfg.SigBits))
	for i := range p.shct {
		p.shct[i] = uint8(p.cfg.Init)
	}
	interval := sets / p.cfg.SampledSets
	if interval < 1 {
		interval = 1
	}
	p.intervalMask = uint32(interval - 1)
}

func (p *Policy) idx(set uint32, way int) int { return int(set)*p.ways + way }

func (p *Policy) signature(pc uint64) uint16 {
	return uint16(uint32(mem.Mix64(pc)) & p.sigMask)
}

// trains reports whether evictions and first hits in this set update
// the SHCT.
func (p *Policy) trains(set uint32) bool {
	switch p.cfg.Train {
	case TrainAll:
		return true
	case TrainOff:
		return false
	}
	return set&p.intervalMask == 0
}

// OnHit implements cache.Policy: promotion to near re-reference exactly
// as SRRIP; the first demand hit to a tracked line credits its fill
// signature in the SHCT.
func (p *Policy) OnHit(set uint32, way int, a mem.Access) {
	i := p.idx(set, way)
	p.rrpv[i] = 0
	if a.Writeback || !p.tracked[i] || p.reused[i] {
		return
	}
	p.reused[i] = true
	if p.trains(set) {
		s := p.sig[i]
		if p.shct[s] < uint8(p.cfg.CounterMax) {
			p.shct[s]++
		}
	}
}

// OnFill implements cache.Policy: a signature with zero recorded reuse
// inserts distant (first in line for eviction); everything else — and
// every writeback fill — takes SRRIP's long re-reference insertion.
func (p *Policy) OnFill(set uint32, way int, a mem.Access) {
	i := p.idx(set, way)
	insert := uint8(rrpvMax - 1)
	if a.Writeback {
		p.tracked[i] = false
		p.reused[i] = false
	} else {
		s := p.signature(a.PC)
		p.sig[i] = s
		p.reused[i] = false
		p.tracked[i] = true
		if p.shct[s] == 0 {
			insert = rrpvMax
		}
	}
	p.rrpv[i] = insert
}

// OnEvict implements cache.Policy: a tracked line that dies without a
// single re-reference votes its fill signature down.
func (p *Policy) OnEvict(set uint32, way int) {
	i := p.idx(set, way)
	if p.tracked[i] && !p.reused[i] && p.trains(set) {
		s := p.sig[i]
		if p.shct[s] > 0 {
			p.shct[s]--
		}
	}
	p.tracked[i] = false
	p.reused[i] = false
}

// Victim implements cache.Policy: SRRIP's aging loop — the first way
// predicted distant, aging the set until one exists.
func (p *Policy) Victim(set uint32, _ mem.Access) int {
	base := int(set) * p.ways
	for {
		for w := 0; w < p.ways; w++ {
			if p.rrpv[base+w] == rrpvMax {
				return w
			}
		}
		for w := 0; w < p.ways; w++ {
			p.rrpv[base+w]++
		}
	}
}

// Rank implements policy.Ranked: larger RRPV means closer to eviction.
func (p *Policy) Rank(set uint32, way int) int {
	return int(p.rrpv[p.idx(set, way)])
}

// SHCT exposes a signature's counter for tests.
func (p *Policy) SHCT(sig uint16) uint8 { return p.shct[sig] }

// SignatureOf exposes the PC-to-signature mapping for tests.
func (p *Policy) SignatureOf(pc uint64) uint16 { return p.signature(pc) }
