package cache

import (
	"testing"

	"sdbp/internal/mem"
)

func TestInsertPrefetchDroppedWithoutPlacer(t *testing.T) {
	// fifoPolicy does not implement PrefetchPlacer: full sets refuse.
	c := smallCache(&fifoPolicy{})
	c.Access(mem.Access{Addr: 0})
	c.Access(mem.Access{Addr: 4 * 64})
	if c.InsertPrefetch(mem.Access{Addr: 8 * 64}) {
		t.Error("prefetch placed despite no PrefetchPlacer")
	}
	if c.Stats().Prefetches != 0 {
		t.Error("dropped prefetch counted as placed")
	}
}
