package cache

import "sdbp/internal/mem"

// Policy is the pluggable block-management interface: it owns victim
// selection, insertion/promotion bookkeeping, and the bypass decision.
// The cache calls it with (set, way) coordinates; policies that need
// per-line state keep it in parallel arrays sized by Reset.
//
// Call protocol, per (*Cache).Access:
//
//  1. OnAccess(set, a) — always, before the lookup is resolved. This is
//     the hook the sampling predictor uses: its sampler tag array is
//     maintained for every access to a sampled set, hit or miss.
//  2. On a hit: OnHit(set, way, a).
//  3. On a miss: Bypass(set, a); if true the block is not placed.
//     Otherwise the cache fills an invalid way if one exists, else calls
//     Victim(set, a) and evicts that way (OnEvict, then OnFill).
type Policy interface {
	// Name identifies the policy in reports ("LRU", "Sampler", ...).
	Name() string

	// Reset sizes per-line state for a cache of sets×ways lines and
	// clears any learned state. It is called once by cache.New and may
	// be called again to reuse a policy across runs.
	Reset(sets, ways int)

	// OnAccess observes every access to the cache before hit/miss
	// resolution.
	OnAccess(set uint32, a mem.Access)

	// Bypass reports whether the missing block for access a should not
	// be placed in the cache at all.
	Bypass(set uint32, a mem.Access) bool

	// Victim returns the way to evict in a full set. It must return a
	// way in [0, ways).
	Victim(set uint32, a mem.Access) int

	// OnHit notifies that access a hit way in set.
	OnHit(set uint32, way int, a mem.Access)

	// OnFill notifies that the block for access a was placed in way.
	OnFill(set uint32, way int, a mem.Access)

	// OnEvict notifies that the valid line at (set, way) is being
	// evicted, before the new block overwrites it.
	OnEvict(set uint32, way int)
}

// Base is an embeddable no-op implementation of the optional Policy
// hooks. Policies embed it and override what they need.
type Base struct{}

// OnAccess implements Policy with a no-op.
func (Base) OnAccess(uint32, mem.Access) {}

// Bypass implements Policy; the base never bypasses.
func (Base) Bypass(uint32, mem.Access) bool { return false }

// OnEvict implements Policy with a no-op.
func (Base) OnEvict(uint32, int) {}
