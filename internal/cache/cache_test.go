package cache

import (
	"testing"
	"testing/quick"

	"sdbp/internal/mem"
)

// fifoPolicy is a minimal test policy: FIFO victims, optional bypass of
// a marked address, and a record of hook calls.
type fifoPolicy struct {
	Base
	ways      int
	next      []int
	bypassOn  uint64
	hits      int
	fills     int
	evictions int
}

func (p *fifoPolicy) Name() string { return "FIFO" }
func (p *fifoPolicy) Reset(sets, ways int) {
	p.ways = ways
	p.next = make([]int, sets)
}
func (p *fifoPolicy) Victim(set uint32, _ mem.Access) int {
	v := p.next[set]
	p.next[set] = (v + 1) % p.ways
	return v
}
func (p *fifoPolicy) Bypass(_ uint32, a mem.Access) bool {
	return p.bypassOn != 0 && mem.BlockAddr(a.Addr) == p.bypassOn
}
func (p *fifoPolicy) OnHit(uint32, int, mem.Access)  { p.hits++ }
func (p *fifoPolicy) OnFill(uint32, int, mem.Access) { p.fills++ }
func (p *fifoPolicy) OnEvict(uint32, int)            { p.evictions++ }

func smallCache(p Policy) *Cache {
	// 4 sets x 2 ways of 64B blocks = 512B.
	return New(Config{Name: "test", SizeBytes: 512, Ways: 2}, p)
}

func TestConfigGeometry(t *testing.T) {
	cfg := Config{Name: "LLC", SizeBytes: 2 << 20, Ways: 16}
	if got := cfg.Sets(); got != 2048 {
		t.Errorf("Sets() = %d, want 2048", got)
	}
	if err := cfg.Validate(); err != nil {
		t.Errorf("Validate() = %v", err)
	}
}

func TestConfigValidateRejectsBadGeometry(t *testing.T) {
	bad := []Config{
		{Name: "zero", SizeBytes: 0, Ways: 4},
		{Name: "negways", SizeBytes: 1024, Ways: 0},
		{Name: "nonpow2", SizeBytes: 3 * 64 * 4, Ways: 4},
	}
	for _, cfg := range bad {
		if err := cfg.Validate(); err == nil {
			t.Errorf("Validate(%+v) accepted invalid config", cfg)
		}
	}
}

func TestNewPanicsOnInvalidConfig(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("New did not panic on invalid config")
		}
	}()
	New(Config{Name: "bad", SizeBytes: 0, Ways: 1}, &fifoPolicy{})
}

func TestMissThenHit(t *testing.T) {
	c := smallCache(&fifoPolicy{})
	a := mem.Access{Addr: 0x1000}
	if r := c.Access(a); r.Hit {
		t.Error("first access hit")
	}
	if r := c.Access(a); !r.Hit {
		t.Error("second access missed")
	}
	s := c.Stats()
	if s.Hits != 1 || s.Misses != 1 || s.Accesses != 2 {
		t.Errorf("stats = %+v", s)
	}
}

func TestSameSetDistinctTags(t *testing.T) {
	c := smallCache(&fifoPolicy{})
	// Two blocks mapping to the same set (stride = sets*blocksize).
	a1 := mem.Access{Addr: 0}
	a2 := mem.Access{Addr: 4 * 64}
	c.Access(a1)
	c.Access(a2)
	if !c.Contains(a1.Addr) || !c.Contains(a2.Addr) {
		t.Error("2-way set should hold both blocks")
	}
	// A third block in the same set evicts the FIFO victim (a1).
	c.Access(mem.Access{Addr: 8 * 64})
	if c.Contains(a1.Addr) {
		t.Error("FIFO victim not evicted")
	}
	if !c.Contains(a2.Addr) {
		t.Error("non-victim evicted")
	}
}

func TestWritebackOnDirtyEviction(t *testing.T) {
	p := &fifoPolicy{}
	c := smallCache(p)
	dirty := mem.Access{Addr: 0, Write: true}
	c.Access(dirty)
	c.Access(mem.Access{Addr: 4 * 64})
	r := c.Access(mem.Access{Addr: 8 * 64}) // evicts the dirty block
	if !r.Evicted || !r.EvictedDirty {
		t.Fatalf("expected dirty eviction, got %+v", r)
	}
	if r.WritebackAddr != 0 {
		t.Errorf("WritebackAddr = %#x, want 0", r.WritebackAddr)
	}
	if c.Stats().Writebacks != 1 {
		t.Errorf("Writebacks = %d, want 1", c.Stats().Writebacks)
	}
}

func TestWriteHitMarksDirty(t *testing.T) {
	c := smallCache(&fifoPolicy{})
	c.Access(mem.Access{Addr: 0})              // clean fill
	c.Access(mem.Access{Addr: 0, Write: true}) // dirty on hit
	c.Access(mem.Access{Addr: 4 * 64})
	r := c.Access(mem.Access{Addr: 8 * 64})
	if !r.EvictedDirty {
		t.Error("write hit did not mark block dirty")
	}
}

func TestBypassDoesNotFill(t *testing.T) {
	p := &fifoPolicy{bypassOn: 0x2000}
	c := smallCache(p)
	r := c.Access(mem.Access{Addr: 0x2000})
	if !r.Bypassed || r.Hit {
		t.Fatalf("expected bypass, got %+v", r)
	}
	if c.Contains(0x2000) {
		t.Error("bypassed block was filled")
	}
	if c.Stats().Bypasses != 1 || c.Stats().Misses != 1 {
		t.Errorf("stats = %+v", c.Stats())
	}
}

func TestHookSequence(t *testing.T) {
	p := &fifoPolicy{}
	c := smallCache(p)
	c.Access(mem.Access{Addr: 0})      // fill
	c.Access(mem.Access{Addr: 0})      // hit
	c.Access(mem.Access{Addr: 4 * 64}) // fill
	c.Access(mem.Access{Addr: 8 * 64}) // evict + fill
	if p.hits != 1 || p.fills != 3 || p.evictions != 1 {
		t.Errorf("hooks: hits=%d fills=%d evictions=%d", p.hits, p.fills, p.evictions)
	}
}

func TestInvalidWaysFilledBeforeVictim(t *testing.T) {
	p := &fifoPolicy{}
	c := smallCache(p)
	c.Access(mem.Access{Addr: 0})
	c.Access(mem.Access{Addr: 4 * 64})
	if p.evictions != 0 {
		t.Error("eviction before the set was full")
	}
	if c.ValidCount() != 2 {
		t.Errorf("ValidCount = %d, want 2", c.ValidCount())
	}
}

func TestOccupancyNeverExceedsCapacity(t *testing.T) {
	f := func(addrs []uint16) bool {
		c := smallCache(&fifoPolicy{})
		for _, a := range addrs {
			c.Access(mem.Access{Addr: uint64(a)})
		}
		return c.ValidCount() <= c.Sets()*c.Ways()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestStatsInvariant(t *testing.T) {
	// Hits + misses == accesses for any access pattern.
	f := func(addrs []uint32, writes []bool) bool {
		c := smallCache(&fifoPolicy{})
		for i, a := range addrs {
			w := i < len(writes) && writes[i]
			c.Access(mem.Access{Addr: uint64(a), Write: w})
		}
		s := c.Stats()
		return s.Hits+s.Misses == s.Accesses && s.Bypasses <= s.Misses
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestContainsAfterAccess(t *testing.T) {
	f := func(addrs []uint16) bool {
		c := smallCache(&fifoPolicy{})
		for _, a := range addrs {
			c.Access(mem.Access{Addr: uint64(a)})
			if !c.Contains(uint64(a)) {
				return false // just-accessed block must be resident
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestEfficiencyAllLive(t *testing.T) {
	// A block hit on every access after its fill is live its whole
	// residency: efficiency approaches 1.
	c := smallCache(&fifoPolicy{})
	for i := 0; i < 1000; i++ {
		c.Access(mem.Access{Addr: 0})
	}
	c.Finish()
	if eff := c.Efficiency(); eff < 0.99 {
		t.Errorf("Efficiency = %.3f, want ~1", eff)
	}
}

func TestEfficiencyAllDead(t *testing.T) {
	// Single-touch blocks are dead their entire residency.
	c := smallCache(&fifoPolicy{})
	for i := 0; i < 1000; i++ {
		c.Access(mem.Access{Addr: uint64(i) * 64})
	}
	c.Finish()
	if eff := c.Efficiency(); eff > 0.01 {
		t.Errorf("Efficiency = %.3f, want ~0", eff)
	}
}

func TestEfficiencyMixed(t *testing.T) {
	// Half the time live: touch, wait, touch again at the midpoint of
	// residency, then churn the set so the block is evicted.
	c := New(Config{Name: "t", SizeBytes: 64 * 8, Ways: 8}, &fifoPolicy{})
	c.Access(mem.Access{Addr: 0})
	for i := 1; i <= 4; i++ {
		c.Access(mem.Access{Addr: uint64(i*8) * 64})
	}
	c.Access(mem.Access{Addr: 0}) // last hit at mid-residency
	for i := 5; i <= 9; i++ {
		c.Access(mem.Access{Addr: uint64(i*8) * 64})
	}
	c.Finish()
	// The churn blocks are all dead, so check the hit block's own line:
	// live 5 of 9 resident ticks.
	best := 0.0
	for _, row := range c.LineEfficiencies() {
		for _, e := range row {
			if e > best {
				best = e
			}
		}
	}
	if best <= 0.4 || best >= 0.7 {
		t.Errorf("best line efficiency = %.3f, want ~5/9", best)
	}
}

func TestLineEfficienciesShape(t *testing.T) {
	c := smallCache(&fifoPolicy{})
	c.Access(mem.Access{Addr: 0})
	c.Finish()
	m := c.LineEfficiencies()
	if len(m) != c.Sets() || len(m[0]) != c.Ways() {
		t.Errorf("map shape %dx%d, want %dx%d", len(m), len(m[0]), c.Sets(), c.Ways())
	}
}

func TestStatsAdd(t *testing.T) {
	a := Stats{Accesses: 1, Writes: 2, Hits: 3, Misses: 4, Bypasses: 5, Evictions: 6, Writebacks: 7}
	b := Stats{Accesses: 10, Writes: 20, Hits: 30, Misses: 40, Bypasses: 50, Evictions: 60, Writebacks: 70}
	sum := a.Add(b)
	want := Stats{Accesses: 11, Writes: 22, Hits: 33, Misses: 44, Bypasses: 55, Evictions: 66, Writebacks: 77}
	if sum != want {
		t.Errorf("Add = %+v, want %+v", sum, want)
	}
}

func TestRates(t *testing.T) {
	s := Stats{Accesses: 10, Hits: 4, Misses: 6}
	if s.HitRate() != 0.4 || s.MissRate() != 0.6 {
		t.Errorf("rates = %v/%v", s.HitRate(), s.MissRate())
	}
	var zero Stats
	if zero.HitRate() != 0 || zero.MissRate() != 0 {
		t.Error("zero stats should have zero rates")
	}
}
