package cache

import (
	"bytes"
	"math/bits"
)

// Recency is an exact per-set LRU recency stack: position 0 is MRU,
// ways-1 is LRU. It is the state behind the plain LRU policy, defined
// here so the cache can drive it through direct calls on the hot path
// (see PlainLRU) while the policy package re-exports it through the
// Policy interface for every composed variant (DIP, TADIP, dead-block
// replacement bases).
//
// Up to 16 ways — every standard geometry in the reproduction — a set's
// whole stack packs into one uint64 of 4-bit way indices (MRU in the
// low nibble), making Promote, Demote, and Victim constant-time bit
// operations instead of O(ways) walks over a position array. Wider
// caches fall back to the position-array representation.
type Recency struct {
	ways int
	// ord is the packed representation: ord[set]'s nibble p holds the
	// way at stack position p. Nibbles at positions >= ways (when ways
	// < 16) keep their initial identity values; they never collide with
	// a real way index and are preserved by every operation.
	ord []uint64
	// pos is the fallback: sets*ways stack positions, row-major by set.
	pos []uint8
}

// nibbleOnes spreads a way index across all 16 nibble lanes.
const nibbleOnes = 0x1111111111111111

// nibblePos returns the stack position of way in the packed order o:
// the index of o's unique nibble equal to way. The zero-nibble borrow
// trick can flag spurious positions above the true match, never below,
// so the lowest flag is exact.
func nibblePos(o uint64, way int) int {
	x := o ^ uint64(way)*nibbleOnes
	m := (x - nibbleOnes) &^ x & 0x8888888888888888
	return bits.TrailingZeros64(m) >> 2
}

// Reset sizes the stack for a geometry and installs an arbitrary valid
// permutation per set (way w starts at position w).
func (s *Recency) Reset(sets, ways int) {
	s.ways = ways
	if ways <= 16 {
		s.ord = make([]uint64, sets)
		for i := range s.ord {
			s.ord[i] = 0xFEDCBA9876543210 // identity: nibble p holds way p
		}
		s.pos = nil
		return
	}
	s.ord = nil
	s.pos = make([]uint8, sets*ways)
	for i := range s.pos {
		s.pos[i] = uint8(i % ways)
	}
}

// set returns one set's positions as a full-capacity subslice so the
// fallback per-access loops index with a single bounds check.
func (s *Recency) set(set uint32) []uint8 {
	base := int(set) * s.ways
	return s.pos[base : base+s.ways : base+s.ways]
}

// Promote moves way to the MRU position of set.
func (s *Recency) Promote(set uint32, way int) {
	if s.ord != nil {
		o := s.ord[set]
		if o&0xF == uint64(way) {
			// Already MRU. Bursty private-cache streams re-hit the MRU
			// way constantly.
			return
		}
		p := nibblePos(o, way)
		shift := uint(4 * (p + 1))
		// Nibbles above p (including any identity tail) are untouched;
		// nibbles below p shift up one position; way lands at MRU.
		s.ord[set] = o>>shift<<shift | (o&(uint64(1)<<uint(4*p)-1))<<4 | uint64(way)
		return
	}
	pos := s.set(set)
	old := pos[way]
	if old == 0 {
		return
	}
	for w := range pos {
		if pos[w] < old {
			pos[w]++
		}
	}
	pos[way] = 0
}

// Demote moves way to the LRU position of set.
func (s *Recency) Demote(set uint32, way int) {
	if s.ord != nil {
		o := s.ord[set]
		last := uint(4 * (s.ways - 1))
		if o>>last&0xF == uint64(way) {
			return // already LRU
		}
		p := nibblePos(o, way)
		// Positions p+1..ways-1 shift down one; way lands at LRU;
		// nibbles at and above ways (the identity tail) are untouched.
		mask := uint64(1)<<uint(4*s.ways) - 1
		mid := (o & mask) >> uint(4*(p+1)) << uint(4*p)
		below := o & (uint64(1)<<uint(4*p) - 1)
		s.ord[set] = o&^mask | uint64(way)<<last | mid | below
		return
	}
	pos := s.set(set)
	old := pos[way]
	if old == uint8(s.ways-1) {
		return // already LRU; the shift walk would be a no-op
	}
	for w := range pos {
		if pos[w] > old {
			pos[w]--
		}
	}
	pos[way] = uint8(s.ways - 1)
}

// Victim returns the LRU way of set.
func (s *Recency) Victim(set uint32) int {
	if s.ord != nil {
		return int(s.ord[set] >> uint(4*(s.ways-1)) & 0xF)
	}
	if w := bytes.IndexByte(s.set(set), uint8(s.ways-1)); w >= 0 {
		return w
	}
	// Unreachable while pos holds a permutation per set.
	return s.ways - 1
}

// Pos returns way's stack position in set (0 = MRU).
func (s *Recency) Pos(set uint32, way int) int {
	if s.ord != nil {
		return nibblePos(s.ord[set], way)
	}
	return int(s.pos[int(set)*s.ways+way])
}

// PlainLRU is implemented by the plain true-LRU policy. When a cache's
// policy is exactly that — no overriding wrapper, no bypass, no access
// or evict hooks — the cache runs the replacement bookkeeping through
// direct calls on the Recency state instead of interface dispatch. The
// L1 and L2 caches are always plain LRU, so this devirtualizes the most
// executed path in the simulator.
type PlainLRU interface {
	Policy
	// PlainLRU returns the policy's recency state, the location of its
	// insert-at-LRU flag (read at every fill, so toggling it stays
	// visible), and the policy itself. The self return lets the cache
	// reject a method promoted through struct embedding: a wrapper that
	// embeds the plain LRU would return the inner policy, not itself,
	// and must keep full interface dispatch.
	PlainLRU() (rec *Recency, insertLRU *bool, self Policy)
}
