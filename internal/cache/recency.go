package cache

import "bytes"

// Recency is an exact per-set LRU recency stack: position 0 is MRU,
// ways-1 is LRU. It is the state behind the plain LRU policy, defined
// here so the cache can drive it through direct calls on the hot path
// (see PlainLRU) while the policy package re-exports it through the
// Policy interface for every composed variant (DIP, TADIP, dead-block
// replacement bases).
type Recency struct {
	ways int
	pos  []uint8 // sets*ways stack positions, row-major by set
}

// Reset sizes the stack for a geometry and installs an arbitrary valid
// permutation per set.
func (s *Recency) Reset(sets, ways int) {
	s.ways = ways
	s.pos = make([]uint8, sets*ways)
	for i := range s.pos {
		s.pos[i] = uint8(i % ways)
	}
}

// set returns one set's positions as a full-capacity subslice so the
// per-access loops index with a single bounds check.
func (s *Recency) set(set uint32) []uint8 {
	base := int(set) * s.ways
	return s.pos[base : base+s.ways : base+s.ways]
}

// Promote moves way to the MRU position of set.
func (s *Recency) Promote(set uint32, way int) {
	pos := s.set(set)
	old := pos[way]
	for w := range pos {
		if pos[w] < old {
			pos[w]++
		}
	}
	pos[way] = 0
}

// Demote moves way to the LRU position of set.
func (s *Recency) Demote(set uint32, way int) {
	pos := s.set(set)
	old := pos[way]
	for w := range pos {
		if pos[w] > old {
			pos[w]--
		}
	}
	pos[way] = uint8(s.ways - 1)
}

// Victim returns the LRU way of set.
func (s *Recency) Victim(set uint32) int {
	if w := bytes.IndexByte(s.set(set), uint8(s.ways-1)); w >= 0 {
		return w
	}
	// Unreachable while pos holds a permutation per set.
	return s.ways - 1
}

// Pos returns way's stack position in set (0 = MRU).
func (s *Recency) Pos(set uint32, way int) int {
	return int(s.pos[int(set)*s.ways+way])
}

// PlainLRU is implemented by the plain true-LRU policy. When a cache's
// policy is exactly that — no overriding wrapper, no bypass, no access
// or evict hooks — the cache runs the replacement bookkeeping through
// direct calls on the Recency state instead of interface dispatch. The
// L1 and L2 caches are always plain LRU, so this devirtualizes the most
// executed path in the simulator.
type PlainLRU interface {
	Policy
	// PlainLRU returns the policy's recency state, the location of its
	// insert-at-LRU flag (read at every fill, so toggling it stays
	// visible), and the policy itself. The self return lets the cache
	// reject a method promoted through struct embedding: a wrapper that
	// embeds the plain LRU would return the inner policy, not itself,
	// and must keep full interface dispatch.
	PlainLRU() (rec *Recency, insertLRU *bool, self Policy)
}
