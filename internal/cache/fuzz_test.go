package cache_test

// Native Go fuzz target for the cache model: an arbitrary byte string
// decodes into an access stream that must never panic the cache under
// either the plain LRU baseline or the paper's full sampling
// dead-block policy stack, and the accounting invariants of
// property_test.go must hold afterwards. Run the full fuzzer with
//
//	go test ./internal/cache -run '^$' -fuzz FuzzCacheAccess -fuzztime 30s

import (
	"testing"

	"sdbp/internal/cache"
	"sdbp/internal/dbrb"
	"sdbp/internal/mem"
	"sdbp/internal/policy"
	"sdbp/internal/predictor"
)

// decodeStream turns fuzz bytes into accesses: 5 bytes per access
// (4 address bytes folded over a footprint a few times the cache, one
// flag/PC byte). The decoder is total — every input is a valid stream.
func decodeStream(data []byte) []mem.Access {
	const rec = 5
	out := make([]mem.Access, 0, len(data)/rec)
	for i := 0; i+rec <= len(data); i += rec {
		addr := uint64(data[i]) | uint64(data[i+1])<<8 | uint64(data[i+2])<<16 | uint64(data[i+3])<<24
		fl := data[i+4]
		out = append(out, mem.Access{
			PC:        0x400000 + uint64(fl&0x3f)*4,
			Addr:      addr,
			Write:     fl&0x40 != 0,
			Writeback: fl&0x80 != 0,
			Gap:       uint32(fl & 7),
		})
	}
	return out
}

func FuzzCacheAccess(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{0, 0, 0, 0, 0})
	// A seed with hits, conflict evictions, writes and a writeback.
	var seed []byte
	for i := 0; i < 64; i++ {
		seed = append(seed, byte(i*64), byte(i%4), 0, 0, byte(i))
	}
	f.Add(seed)

	f.Fuzz(func(t *testing.T, data []byte) {
		stream := decodeStream(data)
		// Small geometries reach conflict evictions with few accesses.
		cfg := cache.Config{Name: "fuzz", SizeBytes: 8 << 10, Ways: 4} // 32 sets
		pols := []cache.Policy{
			policy.NewLRU(),
			dbrb.New(policy.NewLRU(), predictor.NewSampler(predictor.SamplerConfig{
				UseSampler: true, SamplerSets: 8, SamplerAssoc: 4,
				Tables: 3, TableEntries: 64, Threshold: 8,
			})),
		}
		for _, p := range pols {
			c := cache.New(cfg, p)
			for _, a := range stream {
				res := c.Access(a)
				if res.Hit && (res.Evicted || res.Bypassed) {
					t.Fatalf("%s: contradictory result %+v", p.Name(), res)
				}
				if res.EvictedDirty && !res.Evicted {
					t.Fatalf("%s: dirty eviction without eviction %+v", p.Name(), res)
				}
			}
			c.Finish()
			checkStatsInvariants(t, c)
			checkEfficiencyInvariants(t, c)
		}
	})
}
