package cache_test

// Property and metamorphic tests: invariants that must hold for every
// access stream, checked over deterministic pseudo-random streams and
// hand-built sequences. The fuzz harness (fuzz_test.go) drives the same
// invariants from arbitrary byte strings.

import (
	"testing"

	"sdbp/internal/cache"
	"sdbp/internal/mem"
	"sdbp/internal/policy"
)

// checkStatsInvariants verifies the accounting identities that hold
// after any access stream:
//
//	hits + misses == accesses
//	bypasses <= misses
//	fills == (misses - bypasses) + prefetches
//	evictions + valid == fills   (blocks are conserved)
//	writebacks <= evictions
//	valid <= sets*ways
func checkStatsInvariants(t *testing.T, c *cache.Cache) {
	t.Helper()
	s := c.Stats()
	if s.Hits+s.Misses != s.Accesses {
		t.Errorf("hits %d + misses %d != accesses %d", s.Hits, s.Misses, s.Accesses)
	}
	if s.Bypasses > s.Misses {
		t.Errorf("bypasses %d > misses %d", s.Bypasses, s.Misses)
	}
	fills := s.Misses - s.Bypasses + s.Prefetches
	if s.Evictions > fills {
		t.Errorf("evictions %d > fills %d", s.Evictions, fills)
	}
	valid := uint64(c.ValidCount())
	if s.Evictions+valid != fills {
		t.Errorf("evictions %d + resident %d != fills %d", s.Evictions, valid, fills)
	}
	if s.Writebacks > s.Evictions {
		t.Errorf("writebacks %d > evictions %d", s.Writebacks, s.Evictions)
	}
	if valid > uint64(c.Sets()*c.Ways()) {
		t.Errorf("resident %d > capacity %d", valid, c.Sets()*c.Ways())
	}
}

// checkEfficiencyInvariants verifies the live/total residency
// accounting after Finish: every per-line efficiency is a fraction in
// [0,1] (live time never exceeds residency time), and so is the
// aggregate.
func checkEfficiencyInvariants(t *testing.T, c *cache.Cache) {
	t.Helper()
	if eff := c.Efficiency(); eff < 0 || eff > 1 {
		t.Errorf("aggregate efficiency %v outside [0,1]", eff)
	}
	for s, row := range c.LineEfficiencies() {
		for w, eff := range row {
			if eff < 0 || eff > 1 {
				t.Errorf("line (%d,%d) efficiency %v outside [0,1]", s, w, eff)
			}
		}
	}
}

// randomStream builds a deterministic pseudo-random access stream over
// a footprint a few times the cache's capacity, with writes mixed in.
func randomStream(seed uint64, n, blocks int) []mem.Access {
	r := mem.NewRand(seed)
	out := make([]mem.Access, n)
	for i := range out {
		out[i] = mem.Access{
			PC:    0x400000 + uint64(r.Intn(64))*4,
			Addr:  uint64(r.Intn(blocks)) * mem.BlockSize,
			Write: r.Chance(0.3),
			Gap:   uint32(r.Intn(16)),
		}
	}
	return out
}

func TestPropertyInvariantsRandomStreams(t *testing.T) {
	cfg := cache.Config{Name: "prop", SizeBytes: 64 << 10, Ways: 8} // 128 sets
	capacity := cfg.Sets() * cfg.Ways
	for seed := uint64(1); seed <= 5; seed++ {
		c := cache.New(cfg, policy.NewLRU())
		for _, a := range randomStream(seed, 20000, capacity*3) {
			c.Access(a)
		}
		c.Finish()
		checkStatsInvariants(t, c)
		checkEfficiencyInvariants(t, c)
	}
}

// TestPropertyDeterminism is the metamorphic anchor: the same stream
// replayed into a fresh cache yields identical statistics and identical
// efficiency maps.
func TestPropertyDeterminism(t *testing.T) {
	cfg := cache.Config{Name: "det", SizeBytes: 32 << 10, Ways: 4}
	stream := randomStream(42, 10000, cfg.Sets()*cfg.Ways*2)
	runOnce := func() (*cache.Cache, cache.Stats) {
		c := cache.New(cfg, policy.NewLRU())
		for _, a := range stream {
			c.Access(a)
		}
		c.Finish()
		return c, c.Stats()
	}
	c1, s1 := runOnce()
	c2, s2 := runOnce()
	if s1 != s2 {
		t.Fatalf("stats differ across identical runs:\n%+v\n%+v", s1, s2)
	}
	e1, e2 := c1.LineEfficiencies(), c2.LineEfficiencies()
	for s := range e1 {
		for w := range e1[s] {
			if e1[s][w] != e2[s][w] {
				t.Fatalf("line (%d,%d) efficiency differs: %v vs %v", s, w, e1[s][w], e2[s][w])
			}
		}
	}
}

// TestPropertyLRUStackOrder drives one set of a 4-way LRU cache through
// a hand-built sequence and checks the stack property externally: the
// block evicted on each conflict miss is exactly the least recently
// used one.
func TestPropertyLRUStackOrder(t *testing.T) {
	// One set: 4 ways * 64B blocks.
	cfg := cache.Config{Name: "lru1", SizeBytes: 4 * mem.BlockSize, Ways: 4}
	c := cache.New(cfg, policy.NewLRU())
	addr := func(i int) uint64 { return uint64(i) * mem.BlockSize }

	// Fill ways with blocks 0..3, then touch 0 and 2 to reorder the
	// stack to (recency, MRU first): 2, 0, 3, 1.
	for i := 0; i < 4; i++ {
		if r := c.Access(mem.Access{Addr: addr(i)}); r.Hit || r.Evicted {
			t.Fatalf("fill %d: unexpected hit/eviction %+v", i, r)
		}
	}
	for _, i := range []int{0, 2} {
		if r := c.Access(mem.Access{Addr: addr(i)}); !r.Hit {
			t.Fatalf("touch %d: expected hit", i)
		}
	}

	// Each new conflicting block must evict the current LRU; the
	// expected eviction order replays the recency stack bottom-up.
	for n, wantVictim := range []int{1, 3, 0, 2} {
		r := c.Access(mem.Access{Addr: addr(10 + n)})
		if r.Hit || !r.Evicted {
			t.Fatalf("conflict %d: expected eviction, got %+v", n, r)
		}
		if r.EvictedAddr != addr(wantVictim) {
			t.Errorf("conflict %d: evicted %#x, want block %d (%#x)",
				n, r.EvictedAddr, wantVictim, addr(wantVictim))
		}
	}
	checkStatsInvariants(t, c)
}

// TestPropertyEfficiencyAccounting pins the live/dead split exactly on
// a hand-built single-set sequence: live time is fill→last hit,
// residency is fill→eviction, and dead time is their difference.
func TestPropertyEfficiencyAccounting(t *testing.T) {
	cfg := cache.Config{Name: "eff1", SizeBytes: 2 * mem.BlockSize, Ways: 2}
	c := cache.New(cfg, policy.NewLRU())
	addr := func(i int) uint64 { return uint64(i) * 2 * mem.BlockSize } // same set

	c.Access(mem.Access{Addr: addr(0)}) // clock 1: fill block 0
	c.Access(mem.Access{Addr: addr(1)}) // clock 2: fill block 1
	c.Access(mem.Access{Addr: addr(0)}) // clock 3: hit block 0 (last touch)
	for i := 0; i < 4; i++ {            // clocks 4..7: four dead accesses elsewhere
		c.Access(mem.Access{Addr: addr(1)})
	}
	r := c.Access(mem.Access{Addr: addr(2)}) // clock 8: evicts block 0 (LRU)
	if !r.Evicted || r.EvictedAddr != addr(0) {
		t.Fatalf("expected eviction of block 0, got %+v", r)
	}
	c.Finish()

	// Block 0: filled at clock 1, last hit clock 3, evicted clock 8:
	// live 2 of 7 resident ticks. Block 1: filled 2, last hit 7,
	// finished at 8: live 5 of 6. Block 2: filled and finished at 8:
	// live 0 of 0 (excluded). Aggregate: (2+5)/(7+6).
	want := float64(2+5) / float64(7+6)
	if got := c.Efficiency(); got != want {
		t.Errorf("aggregate efficiency = %v, want %v", got, want)
	}
	checkEfficiencyInvariants(t, c)
}

// TestPropertyWritebackOnlyForDirty checks the write-allocate /
// write-back contract on a directed sequence: clean evictions never
// report a writeback, dirty evictions always do, and the writeback
// address is the evicted block's.
func TestPropertyWritebackOnlyForDirty(t *testing.T) {
	cfg := cache.Config{Name: "wb1", SizeBytes: 2 * mem.BlockSize, Ways: 2}
	c := cache.New(cfg, policy.NewLRU())
	addr := func(i int) uint64 { return uint64(i) * 2 * mem.BlockSize }

	c.Access(mem.Access{Addr: addr(0), Write: true}) // dirty fill
	c.Access(mem.Access{Addr: addr(1)})              // clean fill
	r := c.Access(mem.Access{Addr: addr(2)})         // evicts dirty block 0
	if !r.Evicted || !r.EvictedDirty || r.WritebackAddr != addr(0) {
		t.Fatalf("dirty eviction: got %+v", r)
	}
	r = c.Access(mem.Access{Addr: addr(3)}) // evicts clean block 1
	if !r.Evicted || r.EvictedDirty || r.WritebackAddr != 0 {
		t.Fatalf("clean eviction: got %+v", r)
	}
	s := c.Stats()
	if s.Writebacks != 1 || s.Evictions != 2 {
		t.Fatalf("writebacks %d evictions %d, want 1 and 2", s.Writebacks, s.Evictions)
	}
}
