package cache

import "sdbp/internal/mem"

// This file is the cache's block-granular surface. The simulator's
// drive loops move accesses in blocks ([]mem.Access), and the batch
// entry points here let them hand a whole block to one cache at a time:
// AccessBatch for any policy (amortizing the per-call overhead of the
// general path), AccessPrivate for the private L1/L2 shape (plain LRU,
// no efficiency metadata), where the per-access Result — most of which
// the hierarchy discards — is replaced by the four values it actually
// reads. Both are pinned byte-identical to the per-access path by the
// batch differential in internal/policy/policytest.

// AccessBatch performs the accesses of as in order, exactly as repeated
// Access calls would: same policy hook sequence, same statistics, same
// final tag state. When rs is non-nil it must satisfy len(rs) >=
// len(as) and receives each access's Result; a nil rs is the
// state-effects-only form (functional warming in the sampled runner),
// which skips Result stores entirely.
func (c *Cache) AccessBatch(as []mem.Access, rs []Result) {
	if len(as) == 0 {
		return
	}
	if rs == nil {
		for i := range as {
			c.Access(as[i])
		}
		return
	}
	rs = rs[:len(as)] // hoist the bounds check out of the loop
	for i := range as {
		rs[i] = c.Access(as[i])
	}
}

// AccessPrivate performs one reference on a private-shaped cache —
// plain LRU and no efficiency accounting, the configuration hier always
// gives the L1 and L2 — returning only what the hierarchy consumes:
// whether the block hit, whether a valid block was evicted, whether
// that victim was dirty, and the dirty victim's write-back address. On
// any other cache shape it falls back through Access, so callers need
// no shape check of their own. State and statistics advance exactly as
// Access would advance them.
func (c *Cache) AccessPrivate(a mem.Access) (hit, evicted, evictedDirty bool, wbAddr uint64) {
	if c.lru == nil || c.lines != nil {
		r := c.Access(a)
		return r.Hit, r.Evicted, r.EvictedDirty, r.WritebackAddr
	}
	bn := a.Addr >> mem.BlockBits
	if bn == c.memoBN {
		// Repeat of the previous access's line: it is necessarily still
		// resident (nothing touched this cache in between) and at MRU,
		// so the key scan, the prefetch-flag check (a demand access
		// already cleared it), and the promotion are all no-ops. Only
		// the counters and the dirty bit can change.
		c.clock++
		c.stats.Accesses++
		c.stats.Hits++
		if a.Write {
			c.stats.Writes++
			c.keys[c.memoIdx] |= keyDirty
		}
		return true, false, false, 0
	}
	c.clock++
	c.stats.Accesses++
	if a.Write {
		c.stats.Writes++
	}
	set := uint32(bn & c.setMask)
	tag := bn >> c.tagShift

	keys := c.setKeys(set)
	want := lineKey(tag)
	invalid := -1
	for w, k := range keys {
		if k&^keyFlags == want {
			c.stats.Hits++
			if k&keyPrefetched != 0 {
				k &^= keyPrefetched
				c.stats.UsefulPrefetches++
			}
			if a.Write {
				k |= keyDirty
			}
			keys[w] = k
			c.lru.Promote(set, w)
			c.memoBN, c.memoIdx = bn, int32(int(set)*c.ways+w)
			return true, false, false, 0
		}
		if k == 0 && invalid < 0 {
			invalid = w
		}
	}

	// Miss: plain LRU never bypasses. Prefer an invalid way.
	c.stats.Misses++
	victim := invalid
	if victim < 0 {
		victim = c.lru.Victim(set)
		k := keys[victim]
		c.stats.Evictions++
		evicted = true
		if k&keyDirty != 0 {
			evictedDirty = true
			wbAddr = c.blockAddr(set, (k&^keyFlags)>>1)
			c.stats.Writebacks++
		}
	}

	nk := want
	if a.Write {
		nk |= keyDirty
	}
	keys[victim] = nk
	if *c.lruInsert {
		// Insert-at-LRU leaves the fill below MRU, where a repeat access
		// would have to promote it — not a memoizable state.
		c.lru.Demote(set, victim)
		c.memoBN = memoNone
	} else {
		c.lru.Promote(set, victim)
		c.memoBN, c.memoIdx = bn, int32(int(set)*c.ways+victim)
	}
	return false, evicted, evictedDirty, wbAddr
}

// KeysSnapshot returns a copy of the packed per-way lookup keys (tag,
// valid, dirty, prefetched — see lineKey), row-major by set: the
// cache's complete tag-array state. Differential tests compare
// snapshots to assert that two drive paths left byte-identical caches.
func (c *Cache) KeysSnapshot() []uint64 {
	out := make([]uint64, len(c.keys))
	copy(out, c.keys)
	return out
}
