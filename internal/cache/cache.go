// Package cache implements the set-associative cache model underlying
// every experiment in the reproduction: lookup, fill, eviction,
// write-back/write-allocate semantics, pluggable replacement policies,
// and the live/dead-time accounting behind the paper's cache-efficiency
// results (Figure 1 and the "blocks are dead 86% of the time" claim).
package cache

import (
	"fmt"

	"sdbp/internal/mem"
)

// Config describes a cache's geometry.
type Config struct {
	// Name labels the cache in reports ("L1D", "LLC", ...).
	Name string
	// SizeBytes is the total data capacity. It must be a power-of-two
	// multiple of Ways*mem.BlockSize.
	SizeBytes int
	// Ways is the associativity.
	Ways int
	// SkipEfficiency disables live/dead-time accounting for this cache.
	// The hierarchy sets it for the L1 and L2, whose efficiency is never
	// reported, so their hit path touches no per-line metadata at all.
	SkipEfficiency bool
}

// Sets returns the number of sets implied by the configuration.
func (c Config) Sets() int { return c.SizeBytes / (c.Ways * mem.BlockSize) }

// Validate reports whether the configuration is internally consistent.
func (c Config) Validate() error {
	if c.SizeBytes <= 0 || c.Ways <= 0 {
		return fmt.Errorf("cache %q: size and ways must be positive", c.Name)
	}
	if c.SizeBytes%(c.Ways*mem.BlockSize) != 0 {
		return fmt.Errorf("cache %q: size %d not divisible by ways*blocksize", c.Name, c.SizeBytes)
	}
	if !mem.IsPow2(c.Sets()) {
		return fmt.Errorf("cache %q: %d sets is not a power of two", c.Name, c.Sets())
	}
	return nil
}

// line is one cache block's efficiency bookkeeping, in units of the
// cache's access clock. It exists only when the cache tracks
// efficiency; all other per-block state lives in the key word.
type line struct {
	filledAt  uint64
	lastHitAt uint64
}

// lineKey packs a line's tag and valid bit into the single word the
// lookup loop scans: tag<<1|1 when valid, 0 when invalid. Block
// numbers are 58 bits (64 minus mem.BlockBits), so the shifted tag
// tops out at bit 59, leaving the top bits free for the dirty and
// prefetched flags — hits and evictions then need no second load.
func lineKey(tag uint64) uint64 { return tag<<1 | 1 }

const (
	keyDirty      = 1 << 63 // block has been written since fill
	keyPrefetched = 1 << 62 // placed by a prefetch and not yet demanded
	keyFlags      = keyDirty | keyPrefetched
)

// Result reports what a single access did.
type Result struct {
	// Hit is true when the block was present.
	Hit bool
	// Bypassed is true when the miss was not filled (policy bypass).
	Bypassed bool
	// Evicted is true when a valid block was evicted to make room.
	Evicted bool
	// EvictedAddr is the evicted block's address; valid when Evicted.
	EvictedAddr uint64
	// WritebackAddr is the block address written back when the evicted
	// block was dirty; valid only when EvictedDirty.
	WritebackAddr uint64
	// EvictedDirty is true when the evicted block was dirty.
	EvictedDirty bool
}

// Cache is a set-associative cache with a pluggable management policy.
type Cache struct {
	cfg     Config
	sets    int
	setBits int
	ways    int
	keys    []uint64 // sets*ways lookup keys (see lineKey), row-major by set
	lines   []line   // sets*ways efficiency clocks; nil when not tracked
	policy  Policy

	// setMask and tagShift are precomputed from the geometry so the
	// per-access path extracts set and tag with one mask and one shift
	// of the block number instead of re-deriving them.
	setMask  uint64
	tagShift uint

	// lru and lruInsert are set when the policy is exactly the plain
	// LRU (see PlainLRU); Access then replaces every policy interface
	// call with direct calls on the recency state.
	lru       *Recency
	lruInsert *bool

	clock uint64 // accesses so far; drives efficiency accounting
	stats Stats
	eff   efficiency

	// memoBN/memoIdx memoize the line the last AccessPrivate call left
	// resident at MRU (block number and flat key index). Streams re-hit
	// the same line in bursts, and for such a repeat the whole lookup
	// and promotion are provably no-ops, so AccessPrivate short-circuits
	// them. Any other mutation path (Access, InsertPrefetch) clears the
	// memo. memoBN is memoNone when no line is memoized.
	memoBN  uint64
	memoIdx int32
}

// memoNone is an impossible block number (addresses are < 2^63).
const memoNone = ^uint64(0)

// New builds a cache. It panics on an invalid configuration because
// geometry errors are programming mistakes, not runtime conditions.
func New(cfg Config, p Policy) *Cache {
	if err := cfg.Validate(); err != nil {
		panic(err)
	}
	c := &Cache{
		cfg:      cfg,
		sets:     cfg.Sets(),
		setBits:  mem.Log2(cfg.Sets()),
		ways:     cfg.Ways,
		keys:     make([]uint64, cfg.Sets()*cfg.Ways),
		policy:   p,
		setMask:  uint64(cfg.Sets() - 1),
		tagShift: uint(mem.Log2(cfg.Sets())),
		memoBN:   memoNone,
	}
	p.Reset(c.sets, c.ways)
	if !cfg.SkipEfficiency {
		c.lines = make([]line, cfg.Sets()*cfg.Ways)
		c.eff.reset(c.sets, c.ways)
	}
	if pl, ok := p.(PlainLRU); ok {
		if rec, ins, self := pl.PlainLRU(); self == Policy(p) {
			c.lru, c.lruInsert = rec, ins
		}
	}
	return c
}

// Config returns the cache's configuration.
func (c *Cache) Config() Config { return c.cfg }

// Sets returns the number of sets.
func (c *Cache) Sets() int { return c.sets }

// Ways returns the associativity.
func (c *Cache) Ways() int { return c.ways }

// Policy returns the management policy.
func (c *Cache) Policy() Policy { return c.policy }

// Stats returns a snapshot of the access statistics.
func (c *Cache) Stats() Stats { return c.stats }

func (c *Cache) line(set uint32, way int) *line {
	return &c.lines[int(set)*c.ways+way]
}

// setKeys returns one set's ways as a full-capacity subslice, so the
// per-access loops index with a single bounds check.
func (c *Cache) setKeys(set uint32) []uint64 {
	base := int(set) * c.ways
	return c.keys[base : base+c.ways : base+c.ways]
}

// Access performs one reference. On a miss the block is filled
// (write-allocate) unless the policy bypasses it; dirty victims report a
// write-back address.
func (c *Cache) Access(a mem.Access) Result {
	c.memoBN = memoNone
	c.clock++
	c.stats.Accesses++
	if a.Write {
		c.stats.Writes++
	}
	bn := a.Addr >> mem.BlockBits
	set := uint32(bn & c.setMask)
	tag := bn >> c.tagShift

	// The plain-LRU fast path (c.lru != nil) substitutes direct calls on
	// the recency state for each policy hook: no access or evict hooks,
	// never bypasses, hits and fills promote, victims come off the stack.
	if c.lru == nil {
		c.policy.OnAccess(set, a)
	}

	// Lookup over the packed key array (one word per way), noting the
	// first invalid way so a non-bypassed miss does not rescan the set.
	keys := c.setKeys(set)
	want := lineKey(tag)
	invalid := -1
	for w, k := range keys {
		if k&^keyFlags == want {
			c.stats.Hits++
			if k&keyPrefetched != 0 {
				k &^= keyPrefetched
				c.stats.UsefulPrefetches++
			}
			if a.Write {
				k |= keyDirty
			}
			keys[w] = k
			if c.lines != nil {
				c.lines[int(set)*c.ways+w].lastHitAt = c.clock
			}
			if c.lru != nil {
				c.lru.Promote(set, w)
			} else {
				c.policy.OnHit(set, w, a)
			}
			return Result{Hit: true}
		}
		if k == 0 && invalid < 0 {
			invalid = w
		}
	}

	// Miss.
	c.stats.Misses++
	if c.lru == nil && c.policy.Bypass(set, a) {
		c.stats.Bypasses++
		return Result{Bypassed: true}
	}

	// Prefer an invalid way.
	victim := invalid
	res := Result{}
	if victim < 0 {
		if c.lru != nil {
			victim = c.lru.Victim(set)
		} else {
			victim = c.policy.Victim(set, a)
			if victim < 0 || victim >= c.ways {
				panic(fmt.Sprintf("cache %q: policy %s returned victim way %d of %d",
					c.cfg.Name, c.policy.Name(), victim, c.ways))
			}
		}
		k := keys[victim]
		c.stats.Evictions++
		res.Evicted = true
		res.EvictedAddr = c.blockAddr(set, (k&^keyFlags)>>1)
		if k&keyDirty != 0 {
			res.EvictedDirty = true
			res.WritebackAddr = res.EvictedAddr
			c.stats.Writebacks++
		}
		if c.lines != nil {
			c.eff.account(set, victim, &c.lines[int(set)*c.ways+victim], c.clock)
		}
		if c.lru == nil {
			c.policy.OnEvict(set, victim)
		}
	}

	nk := want
	if a.Write {
		nk |= keyDirty
	}
	keys[victim] = nk
	if c.lines != nil {
		ln := &c.lines[int(set)*c.ways+victim]
		ln.filledAt = c.clock
		ln.lastHitAt = c.clock
	}
	if c.lru != nil {
		if *c.lruInsert {
			c.lru.Demote(set, victim)
		} else {
			c.lru.Promote(set, victim)
		}
	} else {
		c.policy.OnFill(set, victim, a)
	}
	return res
}

// PrefetchPlacer is implemented by policies that can name a way a
// prefetch may overwrite. The dead-block replacement policy names a
// predicted-dead way (or refuses), so prefetches never displace live
// data — the Lai et al. prefetch-into-dead-blocks application.
type PrefetchPlacer interface {
	PrefetchVictim(set uint32) (way int, ok bool)
}

// InsertPrefetch places the block for a without counting a demand
// access. Invalid ways are used first; otherwise the policy must
// implement PrefetchPlacer and name a victim, or the prefetch is
// dropped. It reports whether the block was placed (false also when it
// was already resident).
func (c *Cache) InsertPrefetch(a mem.Access) bool {
	c.memoBN = memoNone
	bn := a.Addr >> mem.BlockBits
	set := uint32(bn & c.setMask)
	tag := bn >> c.tagShift
	keys := c.setKeys(set)
	want := lineKey(tag)
	victim := -1
	for w, k := range keys {
		if k&^keyFlags == want {
			return false // already resident
		}
		if k == 0 && victim < 0 {
			victim = w
		}
	}
	if victim < 0 {
		placer, ok := c.policy.(PrefetchPlacer)
		if !ok {
			return false
		}
		v, ok := placer.PrefetchVictim(set)
		if !ok {
			return false
		}
		victim = v
		c.stats.Evictions++
		if keys[victim]&keyDirty != 0 {
			c.stats.Writebacks++
		}
		c.clock++ // prefetch fills advance residency time like accesses
		if c.lines != nil {
			c.eff.account(set, victim, c.line(set, victim), c.clock)
		}
		c.policy.OnEvict(set, victim)
	}
	keys[victim] = want | keyPrefetched
	if c.lines != nil {
		ln := c.line(set, victim)
		ln.filledAt = c.clock
		ln.lastHitAt = c.clock
	}
	c.stats.Prefetches++
	c.policy.OnFill(set, victim, a)
	return true
}

// blockAddr reconstructs a block address from a set index and tag.
func (c *Cache) blockAddr(set uint32, tag uint64) uint64 {
	return (tag<<uint(c.setBits) | uint64(set)) << mem.BlockBits
}

// Contains reports whether the block holding addr is present. It does
// not perturb policy or statistics state; tests and the hierarchy's
// inclusion checks use it.
func (c *Cache) Contains(addr uint64) bool {
	bn := addr >> mem.BlockBits
	want := lineKey(bn >> c.tagShift)
	keys := c.setKeys(uint32(bn & c.setMask))
	for _, k := range keys {
		if k&^keyFlags == want {
			return true
		}
	}
	return false
}

// ValidCount returns the number of valid lines (for occupancy tests).
func (c *Cache) ValidCount() int {
	n := 0
	for _, k := range c.keys {
		if k != 0 {
			n++
		}
	}
	return n
}

// Finish closes the efficiency accounting epoch by accounting all
// still-resident lines as if evicted now. Call it once, after the last
// access, before reading Efficiency or LineEfficiencies.
func (c *Cache) Finish() {
	if c.lines == nil {
		return
	}
	for s := 0; s < c.sets; s++ {
		for w := 0; w < c.ways; w++ {
			if c.keys[s*c.ways+w] == 0 {
				continue
			}
			ln := c.line(uint32(s), w)
			c.eff.account(uint32(s), w, ln, c.clock)
			ln.filledAt = c.clock
			ln.lastHitAt = c.clock
		}
	}
}

// Efficiency returns the cache's aggregate efficiency: the fraction of
// block-resident time during which blocks were live (between fill and
// last hit). The paper reports 1-efficiency as dead time (86.2% average
// for a 2MB LRU LLC). Returns 0 when nothing was ever cached.
func (c *Cache) Efficiency() float64 {
	return c.eff.aggregate()
}

// LineEfficiencies returns a sets×ways matrix of per-line efficiency in
// [0,1] — the data behind the paper's Figure 1 greyscale maps.
func (c *Cache) LineEfficiencies() [][]float64 {
	return c.eff.perLine(c.sets, c.ways)
}

// efficiency accumulates live/total resident time per line slot.
type efficiency struct {
	live  []uint64
	total []uint64
	ways  int
}

func (e *efficiency) reset(sets, ways int) {
	e.live = make([]uint64, sets*ways)
	e.total = make([]uint64, sets*ways)
	e.ways = ways
}

func (e *efficiency) account(set uint32, way int, ln *line, now uint64) {
	i := int(set)*e.ways + way
	e.live[i] += ln.lastHitAt - ln.filledAt
	e.total[i] += now - ln.filledAt
}

func (e *efficiency) aggregate() float64 {
	var live, total uint64
	for i := range e.total {
		live += e.live[i]
		total += e.total[i]
	}
	if total == 0 {
		return 0
	}
	return float64(live) / float64(total)
}

func (e *efficiency) perLine(sets, ways int) [][]float64 {
	out := make([][]float64, sets)
	for s := 0; s < sets; s++ {
		row := make([]float64, ways)
		if e.total == nil {
			out[s] = row
			continue
		}
		for w := 0; w < ways; w++ {
			i := s*ways + w
			if e.total[i] > 0 {
				row[w] = float64(e.live[i]) / float64(e.total[i])
			}
		}
		out[s] = row
	}
	return out
}
