// Package cache implements the set-associative cache model underlying
// every experiment in the reproduction: lookup, fill, eviction,
// write-back/write-allocate semantics, pluggable replacement policies,
// and the live/dead-time accounting behind the paper's cache-efficiency
// results (Figure 1 and the "blocks are dead 86% of the time" claim).
package cache

import (
	"fmt"

	"sdbp/internal/mem"
)

// Config describes a cache's geometry.
type Config struct {
	// Name labels the cache in reports ("L1D", "LLC", ...).
	Name string
	// SizeBytes is the total data capacity. It must be a power-of-two
	// multiple of Ways*mem.BlockSize.
	SizeBytes int
	// Ways is the associativity.
	Ways int
}

// Sets returns the number of sets implied by the configuration.
func (c Config) Sets() int { return c.SizeBytes / (c.Ways * mem.BlockSize) }

// Validate reports whether the configuration is internally consistent.
func (c Config) Validate() error {
	if c.SizeBytes <= 0 || c.Ways <= 0 {
		return fmt.Errorf("cache %q: size and ways must be positive", c.Name)
	}
	if c.SizeBytes%(c.Ways*mem.BlockSize) != 0 {
		return fmt.Errorf("cache %q: size %d not divisible by ways*blocksize", c.Name, c.SizeBytes)
	}
	if !mem.IsPow2(c.Sets()) {
		return fmt.Errorf("cache %q: %d sets is not a power of two", c.Name, c.Sets())
	}
	return nil
}

// line is one cache block's bookkeeping.
type line struct {
	tag        uint64
	valid      bool
	dirty      bool
	prefetched bool // placed by a prefetch and not yet demanded

	// Efficiency accounting, in units of the cache's access clock.
	filledAt  uint64
	lastHitAt uint64
}

// Result reports what a single access did.
type Result struct {
	// Hit is true when the block was present.
	Hit bool
	// Bypassed is true when the miss was not filled (policy bypass).
	Bypassed bool
	// Evicted is true when a valid block was evicted to make room.
	Evicted bool
	// EvictedAddr is the evicted block's address; valid when Evicted.
	EvictedAddr uint64
	// WritebackAddr is the block address written back when the evicted
	// block was dirty; valid only when EvictedDirty.
	WritebackAddr uint64
	// EvictedDirty is true when the evicted block was dirty.
	EvictedDirty bool
}

// Cache is a set-associative cache with a pluggable management policy.
type Cache struct {
	cfg     Config
	sets    int
	setBits int
	ways    int
	lines   []line // sets*ways, row-major by set
	policy  Policy

	clock uint64 // accesses so far; drives efficiency accounting
	stats Stats
	eff   efficiency
}

// New builds a cache. It panics on an invalid configuration because
// geometry errors are programming mistakes, not runtime conditions.
func New(cfg Config, p Policy) *Cache {
	if err := cfg.Validate(); err != nil {
		panic(err)
	}
	c := &Cache{
		cfg:     cfg,
		sets:    cfg.Sets(),
		setBits: mem.Log2(cfg.Sets()),
		ways:    cfg.Ways,
		lines:   make([]line, cfg.Sets()*cfg.Ways),
		policy:  p,
	}
	p.Reset(c.sets, c.ways)
	c.eff.reset(c.sets, c.ways)
	return c
}

// Config returns the cache's configuration.
func (c *Cache) Config() Config { return c.cfg }

// Sets returns the number of sets.
func (c *Cache) Sets() int { return c.sets }

// Ways returns the associativity.
func (c *Cache) Ways() int { return c.ways }

// Policy returns the management policy.
func (c *Cache) Policy() Policy { return c.policy }

// Stats returns a snapshot of the access statistics.
func (c *Cache) Stats() Stats { return c.stats }

func (c *Cache) line(set uint32, way int) *line {
	return &c.lines[int(set)*c.ways+way]
}

// Access performs one reference. On a miss the block is filled
// (write-allocate) unless the policy bypasses it; dirty victims report a
// write-back address.
func (c *Cache) Access(a mem.Access) Result {
	c.clock++
	c.stats.Accesses++
	if a.Write {
		c.stats.Writes++
	}
	set := mem.SetIndex(a.Addr, c.sets)
	tag := mem.Tag(a.Addr, c.setBits)

	c.policy.OnAccess(set, a)

	// Lookup.
	for w := 0; w < c.ways; w++ {
		ln := c.line(set, w)
		if ln.valid && ln.tag == tag {
			c.stats.Hits++
			if ln.prefetched {
				ln.prefetched = false
				c.stats.UsefulPrefetches++
			}
			ln.lastHitAt = c.clock
			if a.Write {
				ln.dirty = true
			}
			c.policy.OnHit(set, w, a)
			return Result{Hit: true}
		}
	}

	// Miss.
	c.stats.Misses++
	if c.policy.Bypass(set, a) {
		c.stats.Bypasses++
		return Result{Bypassed: true}
	}

	// Prefer an invalid way.
	victim := -1
	for w := 0; w < c.ways; w++ {
		if !c.line(set, w).valid {
			victim = w
			break
		}
	}
	res := Result{}
	if victim < 0 {
		victim = c.policy.Victim(set, a)
		if victim < 0 || victim >= c.ways {
			panic(fmt.Sprintf("cache %q: policy %s returned victim way %d of %d",
				c.cfg.Name, c.policy.Name(), victim, c.ways))
		}
		ln := c.line(set, victim)
		c.stats.Evictions++
		res.Evicted = true
		res.EvictedAddr = c.blockAddr(set, ln.tag)
		if ln.dirty {
			res.EvictedDirty = true
			res.WritebackAddr = c.blockAddr(set, ln.tag)
			c.stats.Writebacks++
		}
		c.eff.account(set, victim, ln, c.clock)
		c.policy.OnEvict(set, victim)
	}

	ln := c.line(set, victim)
	ln.tag = tag
	ln.valid = true
	ln.dirty = a.Write
	ln.prefetched = false
	ln.filledAt = c.clock
	ln.lastHitAt = c.clock
	c.policy.OnFill(set, victim, a)
	return res
}

// PrefetchPlacer is implemented by policies that can name a way a
// prefetch may overwrite. The dead-block replacement policy names a
// predicted-dead way (or refuses), so prefetches never displace live
// data — the Lai et al. prefetch-into-dead-blocks application.
type PrefetchPlacer interface {
	PrefetchVictim(set uint32) (way int, ok bool)
}

// InsertPrefetch places the block for a without counting a demand
// access. Invalid ways are used first; otherwise the policy must
// implement PrefetchPlacer and name a victim, or the prefetch is
// dropped. It reports whether the block was placed (false also when it
// was already resident).
func (c *Cache) InsertPrefetch(a mem.Access) bool {
	set := mem.SetIndex(a.Addr, c.sets)
	tag := mem.Tag(a.Addr, c.setBits)
	for w := 0; w < c.ways; w++ {
		ln := c.line(set, w)
		if ln.valid && ln.tag == tag {
			return false // already resident
		}
	}
	victim := -1
	for w := 0; w < c.ways; w++ {
		if !c.line(set, w).valid {
			victim = w
			break
		}
	}
	if victim < 0 {
		placer, ok := c.policy.(PrefetchPlacer)
		if !ok {
			return false
		}
		v, ok := placer.PrefetchVictim(set)
		if !ok {
			return false
		}
		victim = v
		ln := c.line(set, victim)
		c.stats.Evictions++
		if ln.dirty {
			c.stats.Writebacks++
		}
		c.clock++ // prefetch fills advance residency time like accesses
		c.eff.account(set, victim, ln, c.clock)
		c.policy.OnEvict(set, victim)
	}
	ln := c.line(set, victim)
	ln.tag = tag
	ln.valid = true
	ln.dirty = false
	ln.prefetched = true
	ln.filledAt = c.clock
	ln.lastHitAt = c.clock
	c.stats.Prefetches++
	c.policy.OnFill(set, victim, a)
	return true
}

// blockAddr reconstructs a block address from a set index and tag.
func (c *Cache) blockAddr(set uint32, tag uint64) uint64 {
	return (tag<<uint(c.setBits) | uint64(set)) << mem.BlockBits
}

// Contains reports whether the block holding addr is present. It does
// not perturb policy or statistics state; tests and the hierarchy's
// inclusion checks use it.
func (c *Cache) Contains(addr uint64) bool {
	set := mem.SetIndex(addr, c.sets)
	tag := mem.Tag(addr, c.setBits)
	for w := 0; w < c.ways; w++ {
		ln := c.line(set, w)
		if ln.valid && ln.tag == tag {
			return true
		}
	}
	return false
}

// ValidCount returns the number of valid lines (for occupancy tests).
func (c *Cache) ValidCount() int {
	n := 0
	for i := range c.lines {
		if c.lines[i].valid {
			n++
		}
	}
	return n
}

// Finish closes the efficiency accounting epoch by accounting all
// still-resident lines as if evicted now. Call it once, after the last
// access, before reading Efficiency or LineEfficiencies.
func (c *Cache) Finish() {
	for s := 0; s < c.sets; s++ {
		for w := 0; w < c.ways; w++ {
			ln := c.line(uint32(s), w)
			if ln.valid {
				c.eff.account(uint32(s), w, ln, c.clock)
				ln.filledAt = c.clock
				ln.lastHitAt = c.clock
			}
		}
	}
}

// Efficiency returns the cache's aggregate efficiency: the fraction of
// block-resident time during which blocks were live (between fill and
// last hit). The paper reports 1-efficiency as dead time (86.2% average
// for a 2MB LRU LLC). Returns 0 when nothing was ever cached.
func (c *Cache) Efficiency() float64 {
	return c.eff.aggregate()
}

// LineEfficiencies returns a sets×ways matrix of per-line efficiency in
// [0,1] — the data behind the paper's Figure 1 greyscale maps.
func (c *Cache) LineEfficiencies() [][]float64 {
	return c.eff.perLine(c.sets, c.ways)
}

// efficiency accumulates live/total resident time per line slot.
type efficiency struct {
	live  []uint64
	total []uint64
	ways  int
}

func (e *efficiency) reset(sets, ways int) {
	e.live = make([]uint64, sets*ways)
	e.total = make([]uint64, sets*ways)
	e.ways = ways
}

func (e *efficiency) account(set uint32, way int, ln *line, now uint64) {
	i := int(set)*e.ways + way
	e.live[i] += ln.lastHitAt - ln.filledAt
	e.total[i] += now - ln.filledAt
}

func (e *efficiency) aggregate() float64 {
	var live, total uint64
	for i := range e.total {
		live += e.live[i]
		total += e.total[i]
	}
	if total == 0 {
		return 0
	}
	return float64(live) / float64(total)
}

func (e *efficiency) perLine(sets, ways int) [][]float64 {
	out := make([][]float64, sets)
	for s := 0; s < sets; s++ {
		row := make([]float64, ways)
		for w := 0; w < ways; w++ {
			i := s*ways + w
			if e.total[i] > 0 {
				row[w] = float64(e.live[i]) / float64(e.total[i])
			}
		}
		out[s] = row
	}
	return out
}
