package cache

// Stats counts the events a cache observed.
type Stats struct {
	// Accesses is the total number of references.
	Accesses uint64
	// Writes is the number of store references.
	Writes uint64
	// Hits is the number of references that found their block.
	Hits uint64
	// Misses is the number of references that did not (including
	// bypassed misses).
	Misses uint64
	// Bypasses is the number of misses the policy declined to fill.
	Bypasses uint64
	// Evictions is the number of valid blocks displaced by fills.
	Evictions uint64
	// Writebacks is the number of dirty blocks evicted.
	Writebacks uint64
	// Prefetches is the number of blocks placed by InsertPrefetch.
	Prefetches uint64
	// UsefulPrefetches is the number of prefetched blocks that were
	// subsequently demanded before eviction.
	UsefulPrefetches uint64
}

// MissRate returns Misses/Accesses, or 0 with no accesses.
func (s Stats) MissRate() float64 {
	if s.Accesses == 0 {
		return 0
	}
	return float64(s.Misses) / float64(s.Accesses)
}

// HitRate returns Hits/Accesses, or 0 with no accesses.
func (s Stats) HitRate() float64 {
	if s.Accesses == 0 {
		return 0
	}
	return float64(s.Hits) / float64(s.Accesses)
}

// Add accumulates other into s and returns the sum.
func (s Stats) Add(other Stats) Stats {
	return Stats{
		Accesses:         s.Accesses + other.Accesses,
		Writes:           s.Writes + other.Writes,
		Hits:             s.Hits + other.Hits,
		Misses:           s.Misses + other.Misses,
		Bypasses:         s.Bypasses + other.Bypasses,
		Evictions:        s.Evictions + other.Evictions,
		Writebacks:       s.Writebacks + other.Writebacks,
		Prefetches:       s.Prefetches + other.Prefetches,
		UsefulPrefetches: s.UsefulPrefetches + other.UsefulPrefetches,
	}
}
