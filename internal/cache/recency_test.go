package cache

import (
	"testing"

	"sdbp/internal/mem"
)

// forcePosRepresentation rebuilds a Recency on the fallback position
// array regardless of way count, so tests can differentiate the packed
// nibble representation against it.
func forcePosRepresentation(s *Recency, sets, ways int) {
	s.ways = ways
	s.ord = nil
	s.pos = make([]uint8, sets*ways)
	for i := range s.pos {
		s.pos[i] = uint8(i % ways)
	}
}

// TestRecencyPackedMatchesPositions drives the packed nibble
// representation and the position-array fallback through an identical
// random operation stream and requires the full stack order — Pos of
// every way, plus each op's Victim — to agree at every step, across the
// way counts the simulator configures (and the odd ones in between).
func TestRecencyPackedMatchesPositions(t *testing.T) {
	for _, ways := range []int{1, 2, 3, 5, 8, 15, 16} {
		const sets = 16
		var packed, fallback Recency
		packed.Reset(sets, ways)
		if packed.ord == nil {
			t.Fatalf("ways=%d: Reset chose the fallback representation", ways)
		}
		forcePosRepresentation(&fallback, sets, ways)

		r := mem.NewRand(0xC0FFEE + uint64(ways))
		for i := 0; i < 20000; i++ {
			set := uint32(r.Intn(sets))
			way := r.Intn(ways)
			switch r.Intn(3) {
			case 0:
				packed.Promote(set, way)
				fallback.Promote(set, way)
			case 1:
				packed.Demote(set, way)
				fallback.Demote(set, way)
			default:
				if pv, fv := packed.Victim(set), fallback.Victim(set); pv != fv {
					t.Fatalf("ways=%d op %d: Victim(%d) = %d, fallback %d", ways, i, set, pv, fv)
				}
			}
			for w := 0; w < ways; w++ {
				if pp, fp := packed.Pos(set, w), fallback.Pos(set, w); pp != fp {
					t.Fatalf("ways=%d op %d: Pos(%d,%d) = %d, fallback %d", ways, i, set, w, pp, fp)
				}
			}
		}
	}
}

// TestRecencyWideFallback pins that way counts beyond the packed
// representation's reach still behave as an exact LRU stack.
func TestRecencyWideFallback(t *testing.T) {
	const sets, ways = 4, 24
	var s Recency
	s.Reset(sets, ways)
	if s.ord != nil {
		t.Fatalf("ways=%d: expected the fallback representation", ways)
	}
	// Promote every way of set 1 in order; the first promoted is LRU.
	for w := 0; w < ways; w++ {
		s.Promote(1, w)
	}
	if got := s.Victim(1); got != 0 {
		t.Fatalf("Victim = %d, want 0", got)
	}
	s.Demote(1, ways-1)
	if got := s.Victim(1); got != ways-1 {
		t.Fatalf("Victim after Demote = %d, want %d", got, ways-1)
	}
}
