package mem

import "math/bits"

// Divisor performs exact modulo reduction by a fixed divisor using
// multiplies instead of the hardware divide. The generators draw two to
// three bounded randoms per access, always with loop-invariant divisors
// (gap ranges, mix weights, region sizes); a 64-bit divide costs tens of
// cycles, while this direct-remainder computation (Lemire & Kaser,
// "Faster Remainder by Direct Computation") is a handful of multiplies.
// Mod(x) equals x % d bit-for-bit for every x, so streams are unchanged.
type Divisor struct {
	d uint64
	// chi:clo is ceil(2^128 / d) as a 128-bit integer. With a 64-bit
	// numerator the required fixed-point width is 128 bits: the theorem
	// needs 2^N >= 2^W * d, and N = 128, W = 64 covers every d.
	chi, clo uint64
	// mask is d-1 when d is a power of two; those reduce with one AND.
	mask  uint64
	isPow bool
}

// NewDivisor returns a Divisor computing x % d. It panics if d is zero.
func NewDivisor(d uint64) Divisor {
	if d == 0 {
		panic("mem.NewDivisor: zero divisor")
	}
	v := Divisor{d: d}
	if d&(d-1) == 0 {
		v.mask = d - 1
		v.isPow = true
		return v
	}
	// ceil(2^128/d): divide 2^128 = 2^64 * 2^64 by d in two long-division
	// steps, then round up (d is not a power of two here, so the division
	// is inexact and ceil = floor + 1).
	q0, r0 := bits.Div64(1, 0, d) // 2^64 = q0*d + r0
	q1, _ := bits.Div64(r0, 0, d) // 2^128 = (q0<<64 + q1)*d + r1, r1 > 0
	var carry uint64
	v.clo, carry = bits.Add64(q1, 1, 0)
	v.chi = q0 + carry
	return v
}

// D returns the divisor value (0 for the zero Divisor).
func (v Divisor) D() uint64 { return v.d }

// Mod returns x % d.
func (v Divisor) Mod(x uint64) uint64 {
	if v.isPow {
		return x & v.mask
	}
	// lowbits = c*x mod 2^128; the remainder is then the integer part of
	// lowbits * d / 2^128.
	p1h, p1l := bits.Mul64(v.clo, x)
	lh := p1h + v.chi*x
	ah, al := bits.Mul64(lh, v.d)
	bh, _ := bits.Mul64(p1l, v.d)
	_, carry := bits.Add64(al, bh, 0)
	return ah + carry
}

// IntnDiv returns a pseudo-random int in [0, v.D()), drawing exactly one
// Uint64 — the same stream position and value Intn(v.D()) would produce.
func (r *Rand) IntnDiv(v Divisor) int {
	return int(v.Mod(r.Uint64()))
}
