package mem

import "testing"

// TestDivisorMatchesHardwareModulo checks Mod against % for edge-case
// divisors and a randomized sweep — the generators' determinism depends
// on the two being bit-identical.
func TestDivisorMatchesHardwareModulo(t *testing.T) {
	divisors := []uint64{
		1, 2, 3, 4, 5, 6, 7, 8, 9, 15, 16, 17, 31, 33, 100, 101,
		255, 256, 257, 1 << 20, 1<<20 + 1, 1<<32 - 1, 1 << 32, 1<<32 + 1,
		1<<63 - 1, 1 << 63, 1<<63 + 1, ^uint64(0) - 1, ^uint64(0),
	}
	xs := []uint64{
		0, 1, 2, 3, 15, 16, 255, 1<<32 - 1, 1 << 32, 1<<63 - 1, 1 << 63,
		^uint64(0) - 1, ^uint64(0),
	}
	for _, d := range divisors {
		v := NewDivisor(d)
		if v.D() != d {
			t.Fatalf("D() = %d, want %d", v.D(), d)
		}
		for _, x := range xs {
			if got, want := v.Mod(x), x%d; got != want {
				t.Fatalf("Divisor(%d).Mod(%d) = %d, want %d", d, x, got, want)
			}
		}
	}

	r := NewRand(0xd1f)
	for i := 0; i < 200000; i++ {
		d := r.Uint64()
		if i%3 == 0 {
			d &= 0xffff // small divisors dominate real call sites
		}
		if d == 0 {
			d = 1
		}
		x := r.Uint64()
		if got, want := NewDivisor(d).Mod(x), x%d; got != want {
			t.Fatalf("Divisor(%d).Mod(%d) = %d, want %d", d, x, got, want)
		}
	}
}

// TestIntnDivMatchesIntn checks that IntnDiv consumes the stream exactly
// like Intn and yields the same values.
func TestIntnDivMatchesIntn(t *testing.T) {
	for _, n := range []int{1, 2, 3, 7, 16, 1000, 1 << 30} {
		a, b := NewRand(42), NewRand(42)
		v := NewDivisor(uint64(n))
		for i := 0; i < 1000; i++ {
			if got, want := a.IntnDiv(v), b.Intn(n); got != want {
				t.Fatalf("IntnDiv(%d) draw %d = %d, want %d", n, i, got, want)
			}
		}
	}
}

func TestNewDivisorZeroPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("NewDivisor(0) did not panic")
		}
	}()
	NewDivisor(0)
}
