package mem

import (
	"testing"
	"unsafe"
)

// TestAccessLayout pins the Access struct's size and hot-field
// placement. The drive loops move accesses in blocks ([]Access), so
// every byte here multiplies across every generation buffer, filter
// scratch array, and materialized sampling window in the simulator. A
// new field that pushes the struct past 24 bytes (or padding sneaking
// in between the flag bytes) should be a deliberate decision, not an
// accident this test lets through.
func TestAccessLayout(t *testing.T) {
	if got := unsafe.Sizeof(Access{}); got != 24 {
		t.Errorf("Access is %d bytes, want 24 (8 PC + 8 Addr + 4 Gap + 4 flag bytes)", got)
	}
	// Hot fields first: every level reads PC/Addr/Gap on every access;
	// the flag bytes are colder and must trail so the first 20 bytes of
	// a block-array element are one dense prefix.
	if off := unsafe.Offsetof(Access{}.PC); off != 0 {
		t.Errorf("Access.PC at offset %d, want 0", off)
	}
	if off := unsafe.Offsetof(Access{}.Addr); off != 8 {
		t.Errorf("Access.Addr at offset %d, want 8", off)
	}
	if off := unsafe.Offsetof(Access{}.Gap); off != 16 {
		t.Errorf("Access.Gap at offset %d, want 16", off)
	}
	if off := unsafe.Offsetof(Access{}.Thread); off != 23 {
		t.Errorf("Access.Thread at offset %d, want 23 (last flag byte)", off)
	}
}
