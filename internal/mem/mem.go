// Package mem defines the core datatypes shared by every layer of the
// simulator: memory accesses as seen by the cache hierarchy, block/set
// address arithmetic, and the deterministic pseudo-random number sources
// used throughout the reproduction.
package mem

// BlockBits is log2 of the cache block size. The paper models 64-byte
// blocks at every level of the hierarchy.
const BlockBits = 6

// BlockSize is the cache block size in bytes.
const BlockSize = 1 << BlockBits

// Access is a single memory reference as issued by a core. It carries the
// program counter of the instruction making the access, which is the raw
// material for all of the paper's dead block predictors.
//
// The simulator moves accesses through the hierarchy in blocks (slices
// of Access), so the layout is tuned for block-array locality: the
// fields every level reads on every access (PC, Addr, Gap) lead, the
// flag bytes trail, and the total is exactly 24 bytes with no padding
// — pinned by TestAccessLayout so a new field cannot silently widen
// every block buffer.
type Access struct {
	// PC is the address of the instruction making the access. Synthetic
	// workloads assign a stable PC per code site.
	PC uint64
	// Addr is the byte address accessed.
	Addr uint64
	// Gap is the number of non-memory instructions retired between the
	// previous access and this one. It converts the memory trace back
	// into an instruction count for MPKI and IPC.
	Gap uint32
	// Write is true for stores.
	Write bool
	// Writeback marks a dirty eviction arriving from the level above
	// rather than a demand access. Writebacks carry no meaningful PC,
	// so dead block predictors must not train on or predict from them.
	Writeback bool
	// DependentLoad marks a load whose address depends on the previous
	// load's value (pointer chasing). The CPU model serializes such loads
	// rather than overlapping their misses.
	DependentLoad bool
	// Thread identifies the hardware thread issuing the access. It is 0
	// for single-thread runs and the core index for multi-core runs.
	Thread uint8
}

// BlockAddr returns the block-aligned address (the block number shifted
// back into an address, i.e. the address with the offset bits cleared).
func BlockAddr(addr uint64) uint64 { return addr &^ (BlockSize - 1) }

// BlockNumber returns the block number of an address.
func BlockNumber(addr uint64) uint64 { return addr >> BlockBits }

// SetIndex extracts the set index for a cache with the given number of
// sets (which must be a power of two).
func SetIndex(addr uint64, sets int) uint32 {
	return uint32(BlockNumber(addr) & uint64(sets-1))
}

// Tag returns the tag for an address in a cache with the given number of
// sets: the block number with the set index bits removed.
func Tag(addr uint64, setBits int) uint64 {
	return BlockNumber(addr) >> uint(setBits)
}

// Log2 returns floor(log2(n)) for n >= 1. It panics on n < 1 because the
// simulator only ever sizes structures with positive power-of-two
// geometries and a silent 0 would corrupt address arithmetic.
func Log2(n int) int {
	if n < 1 {
		panic("mem.Log2: argument must be >= 1")
	}
	b := 0
	for n > 1 {
		n >>= 1
		b++
	}
	return b
}

// IsPow2 reports whether n is a positive power of two.
func IsPow2(n int) bool { return n > 0 && n&(n-1) == 0 }
