package mem

// Rand is a small, fast, deterministic pseudo-random number generator
// (xorshift64* seeded through SplitMix64). The simulator cannot use
// math/rand's global source because experiments must be bit-reproducible
// across runs and across policies: the random replacement policy, BIP's
// insertion dice and the synthetic workload generators all draw from
// independently seeded instances of this type.
type Rand struct {
	state uint64
}

// NewRand returns a generator seeded from seed. Two generators with the
// same seed produce identical streams.
func NewRand(seed uint64) *Rand {
	r := &Rand{}
	r.Seed(seed)
	return r
}

// Seed resets the generator. The seed is diffused through SplitMix64 so
// that small consecutive seeds (0, 1, 2, ...) yield uncorrelated streams.
func (r *Rand) Seed(seed uint64) {
	z := seed + 0x9e3779b97f4a7c15
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	z ^= z >> 31
	if z == 0 {
		z = 0x9e3779b97f4a7c15
	}
	r.state = z
}

// Uint64 returns the next 64 pseudo-random bits.
func (r *Rand) Uint64() uint64 {
	x := r.state
	x ^= x >> 12
	x ^= x << 25
	x ^= x >> 27
	r.state = x
	return x * 0x2545f4914f6cdd1d
}

// Intn returns a pseudo-random int in [0, n). It panics if n <= 0.
func (r *Rand) Intn(n int) int {
	if n <= 0 {
		panic("mem.Rand.Intn: n must be positive")
	}
	return int(r.Uint64() % uint64(n))
}

// Float64 returns a pseudo-random float64 in [0, 1).
func (r *Rand) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Chance returns true with probability p (clamped to [0,1]).
func (r *Rand) Chance(p float64) bool {
	if p <= 0 {
		return false
	}
	if p >= 1 {
		return true
	}
	return r.Float64() < p
}

// Mix64 diffuses the bits of x with the SplitMix64 finalizer. It is the
// hash primitive used by predictor index functions and by workload
// generators that need a stateless, high-quality address scrambler.
func Mix64(x uint64) uint64 {
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}
