package mem

import (
	"testing"
	"testing/quick"
)

func TestBlockAddr(t *testing.T) {
	cases := []struct{ addr, want uint64 }{
		{0, 0},
		{63, 0},
		{64, 64},
		{65, 64},
		{0xFFFF, 0xFFC0},
	}
	for _, c := range cases {
		if got := BlockAddr(c.addr); got != c.want {
			t.Errorf("BlockAddr(%#x) = %#x, want %#x", c.addr, got, c.want)
		}
	}
}

func TestBlockNumber(t *testing.T) {
	if got := BlockNumber(128); got != 2 {
		t.Errorf("BlockNumber(128) = %d, want 2", got)
	}
	if got := BlockNumber(127); got != 1 {
		t.Errorf("BlockNumber(127) = %d, want 1", got)
	}
}

func TestSetIndexAndTagRoundTrip(t *testing.T) {
	// Set index and tag must partition the block number: reassembling
	// them gives back the block number for any address and geometry.
	f := func(addr uint64, setsExp uint8) bool {
		sets := 1 << (setsExp % 12)
		setBits := Log2(sets)
		set := SetIndex(addr, sets)
		tag := Tag(addr, setBits)
		return tag<<uint(setBits)|uint64(set) == BlockNumber(addr)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestSetIndexRange(t *testing.T) {
	f := func(addr uint64) bool {
		return SetIndex(addr, 2048) < 2048
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestLog2(t *testing.T) {
	cases := []struct{ n, want int }{
		{1, 0}, {2, 1}, {3, 1}, {4, 2}, {1024, 10}, {2048, 11},
	}
	for _, c := range cases {
		if got := Log2(c.n); got != c.want {
			t.Errorf("Log2(%d) = %d, want %d", c.n, got, c.want)
		}
	}
}

func TestLog2PanicsOnNonPositive(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("Log2(0) did not panic")
		}
	}()
	Log2(0)
}

func TestIsPow2(t *testing.T) {
	for _, n := range []int{1, 2, 4, 8, 1024} {
		if !IsPow2(n) {
			t.Errorf("IsPow2(%d) = false", n)
		}
	}
	for _, n := range []int{0, -1, 3, 6, 1023} {
		if IsPow2(n) {
			t.Errorf("IsPow2(%d) = true", n)
		}
	}
}

func TestRandDeterminism(t *testing.T) {
	a, b := NewRand(42), NewRand(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("streams diverged at step %d", i)
		}
	}
}

func TestRandSeedsDiffer(t *testing.T) {
	a, b := NewRand(1), NewRand(2)
	same := 0
	for i := 0; i < 100; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Errorf("%d collisions between differently seeded streams", same)
	}
}

func TestRandIntnBounds(t *testing.T) {
	r := NewRand(7)
	for i := 0; i < 10000; i++ {
		if v := r.Intn(13); v < 0 || v >= 13 {
			t.Fatalf("Intn(13) = %d", v)
		}
	}
}

func TestRandIntnPanicsOnZero(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("Intn(0) did not panic")
		}
	}()
	NewRand(1).Intn(0)
}

func TestRandFloat64Range(t *testing.T) {
	r := NewRand(9)
	for i := 0; i < 10000; i++ {
		if v := r.Float64(); v < 0 || v >= 1 {
			t.Fatalf("Float64() = %v", v)
		}
	}
}

func TestRandChanceExtremes(t *testing.T) {
	r := NewRand(3)
	for i := 0; i < 100; i++ {
		if r.Chance(0) {
			t.Fatal("Chance(0) returned true")
		}
		if !r.Chance(1) {
			t.Fatal("Chance(1) returned false")
		}
	}
}

func TestRandChanceApproximatesProbability(t *testing.T) {
	r := NewRand(11)
	hits := 0
	const n = 100000
	for i := 0; i < n; i++ {
		if r.Chance(0.25) {
			hits++
		}
	}
	frac := float64(hits) / n
	if frac < 0.23 || frac > 0.27 {
		t.Errorf("Chance(0.25) frequency = %.4f", frac)
	}
}

func TestRandUniformity(t *testing.T) {
	// A crude chi-square-ish check that Intn spreads across buckets.
	r := NewRand(5)
	const buckets = 16
	counts := make([]int, buckets)
	const n = 160000
	for i := 0; i < n; i++ {
		counts[r.Intn(buckets)]++
	}
	want := n / buckets
	for b, c := range counts {
		if c < want*9/10 || c > want*11/10 {
			t.Errorf("bucket %d count %d far from %d", b, c, want)
		}
	}
}

func TestMix64Distinct(t *testing.T) {
	seen := make(map[uint64]bool)
	for i := uint64(0); i < 10000; i++ {
		h := Mix64(i)
		if seen[h] {
			t.Fatalf("Mix64 collision at %d", i)
		}
		seen[h] = true
	}
}

func TestSeedZeroIsUsable(t *testing.T) {
	r := NewRand(0)
	if r.Uint64() == 0 && r.Uint64() == 0 {
		t.Error("zero seed produced a degenerate stream")
	}
}
