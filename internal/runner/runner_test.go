package runner

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"sync/atomic"
	"testing"
	"time"
)

func intJobs(n int) []Job[int] {
	jobs := make([]Job[int], n)
	for i := 0; i < n; i++ {
		i := i
		jobs[i] = Job[int]{
			Key: fmt.Sprintf("job-%02d", i),
			Run: func(context.Context) (int, error) { return i * i, nil },
		}
	}
	return jobs
}

func TestRunAllSucceed(t *testing.T) {
	set := Run(context.Background(), intJobs(20), Options{Workers: 4})
	if len(set.Values) != 20 || len(set.Errors) != 0 {
		t.Fatalf("got %d values, %d errors", len(set.Values), len(set.Errors))
	}
	if v, ok := set.Value("job-07"); !ok || v != 49 {
		t.Errorf("job-07 = %d, %t", v, ok)
	}
}

func TestPanicIsolated(t *testing.T) {
	jobs := intJobs(4)
	jobs[2].Run = func(context.Context) (int, error) { panic("injected fault") }
	set := Run(context.Background(), jobs, Options{Workers: 2})
	if len(set.Values) != 3 {
		t.Fatalf("healthy jobs = %d, want 3", len(set.Values))
	}
	je := set.Errors["job-02"]
	if je == nil {
		t.Fatal("panicking job not reported")
	}
	if !strings.Contains(je.Err.Error(), "injected fault") {
		t.Errorf("error %q does not carry the panic value", je.Err)
	}
	if je.Stack == "" {
		t.Error("panic error missing stack trace")
	}
	if je.Key != "job-02" {
		t.Errorf("key = %q", je.Key)
	}
	if set.Err("job-02") == nil || set.Err("job-01") != nil {
		t.Error("Err accessor wrong")
	}
}

func TestHungJobHitsTimeout(t *testing.T) {
	jobs := intJobs(3)
	jobs[1].Run = func(ctx context.Context) (int, error) {
		<-ctx.Done() // a hung job; only the deadline frees it
		return 0, ctx.Err()
	}
	start := time.Now()
	set := Run(context.Background(), jobs, Options{Workers: 3, Timeout: 50 * time.Millisecond})
	if time.Since(start) > 5*time.Second {
		t.Fatal("timeout did not bound the run")
	}
	je := set.Errors["job-01"]
	if je == nil || !je.TimedOut {
		t.Fatalf("hung job not reported as timeout: %+v", je)
	}
	if len(set.Values) != 2 {
		t.Errorf("healthy jobs = %d, want 2", len(set.Values))
	}
}

func TestCancelledContextDrainsPool(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var started atomic.Int32
	jobs := make([]Job[int], 32)
	for i := range jobs {
		i := i
		jobs[i] = Job[int]{
			Key: fmt.Sprintf("job-%02d", i),
			Run: func(ctx context.Context) (int, error) {
				if started.Add(1) == 1 {
					cancel() // first job to run cancels the campaign
				}
				select {
				case <-ctx.Done():
					return 0, ctx.Err()
				case <-time.After(10 * time.Millisecond):
					return i, nil
				}
			},
		}
	}
	done := make(chan *Set[int])
	go func() { done <- Run(ctx, jobs, Options{Workers: 2}) }()
	var set *Set[int]
	select {
	case set = <-done:
	case <-time.After(10 * time.Second):
		t.Fatal("Run did not drain after cancellation")
	}
	if got := len(set.Values) + len(set.Errors); got != len(jobs) {
		t.Fatalf("settled %d of %d jobs", got, len(jobs))
	}
	if len(set.Errors) == 0 {
		t.Error("no job observed the cancellation")
	}
	for _, je := range set.Errors {
		if !errors.Is(je.Err, context.Canceled) {
			t.Errorf("%s failed with %v, want context.Canceled", je.Key, je.Err)
		}
	}
}

func TestRetryRecoversTransientFailure(t *testing.T) {
	var tries atomic.Int32
	jobs := []Job[int]{{
		Key: "flaky",
		Run: func(context.Context) (int, error) {
			if tries.Add(1) < 3 {
				return 0, errors.New("transient")
			}
			return 7, nil
		},
	}}
	set := Run(context.Background(), jobs, Options{Retries: 2, Backoff: time.Millisecond})
	if v, ok := set.Value("flaky"); !ok || v != 7 {
		t.Fatalf("flaky job = %d, %t (errors %v)", v, ok, set.Errors)
	}
	if tries.Load() != 3 {
		t.Errorf("tries = %d, want 3", tries.Load())
	}
}

func TestRetryIsBounded(t *testing.T) {
	var tries atomic.Int32
	jobs := []Job[int]{{
		Key: "doomed",
		Run: func(context.Context) (int, error) {
			tries.Add(1)
			return 0, errors.New("permanent")
		},
	}}
	set := Run(context.Background(), jobs, Options{Retries: 2, Backoff: time.Millisecond})
	je := set.Errors["doomed"]
	if je == nil || je.Attempts != 3 {
		t.Fatalf("doomed job error = %+v, want 3 attempts", je)
	}
	if tries.Load() != 3 {
		t.Errorf("tries = %d, want 3", tries.Load())
	}
}

func TestProgressEventsCoverEveryJob(t *testing.T) {
	var events []Event
	jobs := intJobs(10)
	jobs[4].Run = func(context.Context) (int, error) { panic("boom") }
	Run(context.Background(), jobs, Options{
		Workers:  3,
		Progress: func(ev Event) { events = append(events, ev) },
	})
	if len(events) != 10 {
		t.Fatalf("events = %d, want 10", len(events))
	}
	last := events[len(events)-1]
	if last.Done != 10 || last.Total != 10 {
		t.Errorf("final event %d/%d", last.Done, last.Total)
	}
	var failed int
	for _, ev := range events {
		if ev.Err != nil {
			failed++
		}
	}
	if failed != 1 {
		t.Errorf("failure events = %d, want 1", failed)
	}
}

func TestFailedSortedByKey(t *testing.T) {
	jobs := intJobs(6)
	for i := range jobs {
		jobs[i].Run = func(context.Context) (int, error) { return 0, errors.New("no") }
	}
	set := Run(context.Background(), jobs, Options{Workers: 3})
	failed := set.Failed()
	if len(failed) != 6 {
		t.Fatalf("failed = %d", len(failed))
	}
	for i := 1; i < len(failed); i++ {
		if failed[i-1].Key >= failed[i].Key {
			t.Fatalf("failures not sorted: %s >= %s", failed[i-1].Key, failed[i].Key)
		}
	}
}
