package runner

import (
	"context"
	"os"
	"os/signal"
	"syscall"
)

// SignalContext returns a context canceled on SIGINT or SIGTERM, the
// shared drain trigger for every long-running command (cmd/experiments
// campaigns, the cmd/sdbpd service). Cancellation starts a graceful
// drain — in-flight jobs finish and land in the checkpoint, queued
// work settles with a cancellation error. Containerized runs get the
// same clean drain from a SIGTERM-based stop as an interactive ^C;
// calling stop restores default signal behavior, so signals after a
// finished drain kill the process normally.
func SignalContext(parent context.Context) (ctx context.Context, stop context.CancelFunc) {
	return signal.NotifyContext(parent, os.Interrupt, syscall.SIGTERM)
}
