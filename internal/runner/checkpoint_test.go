package runner

import (
	"bytes"
	"context"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"sdbp/internal/obs"
)

func TestCheckpointRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "ckpt.jsonl")
	ck, err := OpenCheckpoint(path, false)
	if err != nil {
		t.Fatal(err)
	}
	type result struct {
		MPKI float64
		IPC  float64
	}
	if err := ck.Record("a|b", result{MPKI: 1.5, IPC: 0.75}); err != nil {
		t.Fatal(err)
	}
	if err := ck.Close(); err != nil {
		t.Fatal(err)
	}

	ck2, err := OpenCheckpoint(path, true)
	if err != nil {
		t.Fatal(err)
	}
	defer ck2.Close()
	if ck2.Len() != 1 {
		t.Fatalf("loaded %d entries, want 1", ck2.Len())
	}
	var r result
	if !ck2.Lookup("a|b", &r) || r.MPKI != 1.5 || r.IPC != 0.75 {
		t.Fatalf("lookup = %+v", r)
	}
	if ck2.Lookup("a|c", &r) {
		t.Error("lookup hit a missing key")
	}
}

func TestCheckpointFreshRunTruncates(t *testing.T) {
	path := filepath.Join(t.TempDir(), "ckpt.jsonl")
	ck, _ := OpenCheckpoint(path, false)
	ck.Record("old", 1)
	ck.Close()

	ck2, err := OpenCheckpoint(path, false) // no resume: start fresh
	if err != nil {
		t.Fatal(err)
	}
	defer ck2.Close()
	var v int
	if ck2.Lookup("old", &v) {
		t.Error("fresh run saw a stale entry")
	}
}

func TestCheckpointToleratesTornLine(t *testing.T) {
	path := filepath.Join(t.TempDir(), "ckpt.jsonl")
	ck, _ := OpenCheckpoint(path, false)
	ck.Record("good", 42)
	ck.Close()
	// Simulate a crash mid-write: a torn, incomplete final line.
	f, _ := os.OpenFile(path, os.O_APPEND|os.O_WRONLY, 0o644)
	f.WriteString(`{"key":"torn","val`)
	f.Close()

	ck2, err := OpenCheckpoint(path, true)
	if err != nil {
		t.Fatal(err)
	}
	defer ck2.Close()
	var v int
	if !ck2.Lookup("good", &v) || v != 42 {
		t.Error("intact prefix lost")
	}
	if ck2.Lookup("torn", &v) {
		t.Error("torn entry restored")
	}
}

func TestNilCheckpointIsNoOp(t *testing.T) {
	var ck *Checkpoint
	var v int
	if ck.Lookup("k", &v) {
		t.Error("nil checkpoint hit")
	}
	if err := ck.Record("k", 1); err != nil {
		t.Error(err)
	}
	if err := ck.Close(); err != nil {
		t.Error(err)
	}
	if ck.Len() != 0 {
		t.Error("nil checkpoint non-empty")
	}
}

func TestRunResumeSkipsCheckpointedJobs(t *testing.T) {
	path := filepath.Join(t.TempDir(), "ckpt.jsonl")
	ck, err := OpenCheckpoint(path, false)
	if err != nil {
		t.Fatal(err)
	}
	first := Run(context.Background(), intJobs(8), Options{Workers: 2, Checkpoint: ck})
	if len(first.Values) != 8 {
		t.Fatalf("first run completed %d jobs", len(first.Values))
	}
	ck.Close()

	// Second run: every job body is a tripwire. All results must come
	// from the checkpoint.
	ck2, err := OpenCheckpoint(path, true)
	if err != nil {
		t.Fatal(err)
	}
	defer ck2.Close()
	jobs := make([]Job[int], 8)
	for i := range jobs {
		jobs[i] = Job[int]{
			Key: fmt.Sprintf("job-%02d", i),
			Run: func(context.Context) (int, error) { panic("job re-ran despite checkpoint") },
		}
	}
	var fromCkpt int
	set := Run(context.Background(), jobs, Options{
		Workers:    2,
		Checkpoint: ck2,
		Progress: func(ev Event) {
			if ev.FromCheckpoint {
				fromCkpt++
			}
		},
	})
	if len(set.Errors) != 0 {
		t.Fatalf("resume re-ran jobs: %v", set.Failed())
	}
	if fromCkpt != 8 {
		t.Errorf("checkpoint restores = %d, want 8", fromCkpt)
	}
	for i := 0; i < 8; i++ {
		if v, ok := set.Value(fmt.Sprintf("job-%02d", i)); !ok || v != i*i {
			t.Errorf("job-%02d = %d, %t", i, v, ok)
		}
	}
}

// TestCheckpointTornTailTruncatedAndWarned pins the hardened resume
// path: a crash mid-Record leaves a torn trailing line; resume must
// keep the intact prefix, warn through Warnf, and physically truncate
// the tail — otherwise the next Record would append onto the torn
// fragment and corrupt the journal one restart later.
func TestCheckpointTornTailTruncatedAndWarned(t *testing.T) {
	path := filepath.Join(t.TempDir(), "ckpt.jsonl")
	ck, _ := OpenCheckpoint(path, false)
	ck.Record("a", 1)
	ck.Record("b", 2)
	ck.Close()
	f, _ := os.OpenFile(path, os.O_APPEND|os.O_WRONLY, 0o644)
	f.WriteString(`{"key":"c","value":`) // torn write, no newline
	f.Close()

	var warned int
	oldWarnf := Warnf
	Warnf = func(format string, args ...any) { warned++ }
	defer func() { Warnf = oldWarnf }()

	ck2, err := OpenCheckpoint(path, true)
	if err != nil {
		t.Fatal(err)
	}
	if ck2.Len() != 2 {
		t.Fatalf("loaded %d entries, want 2", ck2.Len())
	}
	if warned == 0 {
		t.Error("torn tail skipped silently, want a Warnf notice")
	}
	// The journal must be usable after the repair: record a new entry
	// and resume again — all three entries load, so the torn fragment
	// did not swallow the new line.
	if err := ck2.Record("d", 4); err != nil {
		t.Fatal(err)
	}
	ck2.Close()

	ck3, err := OpenCheckpoint(path, true)
	if err != nil {
		t.Fatal(err)
	}
	defer ck3.Close()
	if ck3.Len() != 3 {
		t.Fatalf("after repair+record, loaded %d entries, want 3 (a, b, d)", ck3.Len())
	}
	var v int
	for key, want := range map[string]int{"a": 1, "b": 2, "d": 4} {
		if !ck3.Lookup(key, &v) || v != want {
			t.Errorf("lookup %s = %d, %t; want %d", key, v, ck3.Lookup(key, &v), want)
		}
	}
	if ck3.Lookup("c", &v) {
		t.Error("torn entry resurrected")
	}
}

// TestCheckpointCorruptMiddleLineEndsPrefix: a corrupt line mid-file
// ends the trusted prefix — later entries are dropped (and truncated
// away) rather than failing the whole resume.
func TestCheckpointCorruptMiddleLineEndsPrefix(t *testing.T) {
	path := filepath.Join(t.TempDir(), "ckpt.jsonl")
	content := `{"key":"a","value":1}` + "\n" +
		`{"key":"b","value":` + "\n" + // corrupt but newline-terminated
		`{"key":"c","value":3}` + "\n"
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	oldWarnf := Warnf
	Warnf = func(format string, args ...any) {}
	defer func() { Warnf = oldWarnf }()

	ck, err := OpenCheckpoint(path, true)
	if err != nil {
		t.Fatal(err)
	}
	defer ck.Close()
	var v int
	if !ck.Lookup("a", &v) || v != 1 {
		t.Error("intact prefix lost")
	}
	if ck.Lookup("b", &v) || ck.Lookup("c", &v) {
		t.Error("entries past the corrupt line must not load")
	}
	if ck.Len() != 1 {
		t.Fatalf("loaded %d entries, want 1", ck.Len())
	}
}

// TestWarnfDefaultIsStructured: the stock Warnf emits one key=value
// line through the process obs logger, tagged component=runner.
func TestWarnfDefaultIsStructured(t *testing.T) {
	var buf bytes.Buffer
	prev := obs.SetDefault(obs.NewLogger(&buf, obs.LevelWarn))
	defer obs.SetDefault(prev)
	Warnf("torn tail at line %d", 7)
	line := buf.String()
	for _, want := range []string{"level=warn", `msg="torn tail at line 7"`, "component=runner"} {
		if !strings.Contains(line, want) {
			t.Errorf("default Warnf line %q missing %q", line, want)
		}
	}
}
