package runner

import (
	"context"
	"fmt"
	"os"
	"path/filepath"
	"testing"
)

func TestCheckpointRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "ckpt.jsonl")
	ck, err := OpenCheckpoint(path, false)
	if err != nil {
		t.Fatal(err)
	}
	type result struct {
		MPKI float64
		IPC  float64
	}
	if err := ck.Record("a|b", result{MPKI: 1.5, IPC: 0.75}); err != nil {
		t.Fatal(err)
	}
	if err := ck.Close(); err != nil {
		t.Fatal(err)
	}

	ck2, err := OpenCheckpoint(path, true)
	if err != nil {
		t.Fatal(err)
	}
	defer ck2.Close()
	if ck2.Len() != 1 {
		t.Fatalf("loaded %d entries, want 1", ck2.Len())
	}
	var r result
	if !ck2.Lookup("a|b", &r) || r.MPKI != 1.5 || r.IPC != 0.75 {
		t.Fatalf("lookup = %+v", r)
	}
	if ck2.Lookup("a|c", &r) {
		t.Error("lookup hit a missing key")
	}
}

func TestCheckpointFreshRunTruncates(t *testing.T) {
	path := filepath.Join(t.TempDir(), "ckpt.jsonl")
	ck, _ := OpenCheckpoint(path, false)
	ck.Record("old", 1)
	ck.Close()

	ck2, err := OpenCheckpoint(path, false) // no resume: start fresh
	if err != nil {
		t.Fatal(err)
	}
	defer ck2.Close()
	var v int
	if ck2.Lookup("old", &v) {
		t.Error("fresh run saw a stale entry")
	}
}

func TestCheckpointToleratesTornLine(t *testing.T) {
	path := filepath.Join(t.TempDir(), "ckpt.jsonl")
	ck, _ := OpenCheckpoint(path, false)
	ck.Record("good", 42)
	ck.Close()
	// Simulate a crash mid-write: a torn, incomplete final line.
	f, _ := os.OpenFile(path, os.O_APPEND|os.O_WRONLY, 0o644)
	f.WriteString(`{"key":"torn","val`)
	f.Close()

	ck2, err := OpenCheckpoint(path, true)
	if err != nil {
		t.Fatal(err)
	}
	defer ck2.Close()
	var v int
	if !ck2.Lookup("good", &v) || v != 42 {
		t.Error("intact prefix lost")
	}
	if ck2.Lookup("torn", &v) {
		t.Error("torn entry restored")
	}
}

func TestNilCheckpointIsNoOp(t *testing.T) {
	var ck *Checkpoint
	var v int
	if ck.Lookup("k", &v) {
		t.Error("nil checkpoint hit")
	}
	if err := ck.Record("k", 1); err != nil {
		t.Error(err)
	}
	if err := ck.Close(); err != nil {
		t.Error(err)
	}
	if ck.Len() != 0 {
		t.Error("nil checkpoint non-empty")
	}
}

func TestRunResumeSkipsCheckpointedJobs(t *testing.T) {
	path := filepath.Join(t.TempDir(), "ckpt.jsonl")
	ck, err := OpenCheckpoint(path, false)
	if err != nil {
		t.Fatal(err)
	}
	first := Run(context.Background(), intJobs(8), Options{Workers: 2, Checkpoint: ck})
	if len(first.Values) != 8 {
		t.Fatalf("first run completed %d jobs", len(first.Values))
	}
	ck.Close()

	// Second run: every job body is a tripwire. All results must come
	// from the checkpoint.
	ck2, err := OpenCheckpoint(path, true)
	if err != nil {
		t.Fatal(err)
	}
	defer ck2.Close()
	jobs := make([]Job[int], 8)
	for i := range jobs {
		jobs[i] = Job[int]{
			Key: fmt.Sprintf("job-%02d", i),
			Run: func(context.Context) (int, error) { panic("job re-ran despite checkpoint") },
		}
	}
	var fromCkpt int
	set := Run(context.Background(), jobs, Options{
		Workers:    2,
		Checkpoint: ck2,
		Progress: func(ev Event) {
			if ev.FromCheckpoint {
				fromCkpt++
			}
		},
	})
	if len(set.Errors) != 0 {
		t.Fatalf("resume re-ran jobs: %v", set.Failed())
	}
	if fromCkpt != 8 {
		t.Errorf("checkpoint restores = %d, want 8", fromCkpt)
	}
	for i := 0; i < 8; i++ {
		if v, ok := set.Value(fmt.Sprintf("job-%02d", i)); !ok || v != i*i {
			t.Errorf("job-%02d = %d, %t", i, v, ok)
		}
	}
}
