// Package runner is the shared job-execution engine behind every
// figure, table and sweep in the evaluation harness. It replaces the
// hand-rolled sync.WaitGroup fan-outs that used to live in each figure
// with one pool that provides:
//
//   - bounded workers with context cancellation and a per-job timeout,
//   - panic isolation: a recovered job becomes a structured JobError
//     (job key, stack, duration) instead of crashing the process,
//   - bounded retry with exponential backoff for transient failures,
//   - deterministic checkpointing: completed results are journaled to
//     a JSON-lines file keyed by job key, so an interrupted campaign
//     resumes by skipping finished cells,
//   - progress events (jobs done/total, ETA) for long campaigns.
//
// Jobs are deterministic simulations, so a job key fully identifies
// its result: keys embed the section, stream scale and cache geometry
// (see the figures package) and act as the checkpoint cache key.
package runner

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"runtime/debug"
	"sort"
	"strconv"
	"sync"
	"time"

	"sdbp/internal/obs"
)

// Job is one unit of work. Key must be unique within a Run call and
// stable across process restarts (it keys the checkpoint journal).
type Job[T any] struct {
	Key string
	Run func(ctx context.Context) (T, error)
	// Span, when non-nil, is the job's trace span: each attempt becomes
	// an "attempt" child annotated with the try number and outcome
	// (ok, error, panic, timeout, drained). The runner never ends Span
	// itself — the caller owns the job span's lifetime.
	Span *obs.Span
}

// JobError reports one job's failure.
type JobError struct {
	// Key identifies the failed job.
	Key string
	// Err is the underlying error; for a recovered panic it wraps the
	// panic value.
	Err error
	// Stack is the goroutine stack at the point of a recovered panic,
	// empty for ordinary errors.
	Stack string
	// Duration is how long the final attempt ran.
	Duration time.Duration
	// Attempts is how many times the job was tried.
	Attempts int
	// TimedOut marks a job that exceeded the per-job timeout. The
	// job's goroutine may still be running (simulations are not
	// preemptible); it is abandoned and its result discarded.
	TimedOut bool
}

func (e *JobError) Error() string {
	return fmt.Sprintf("job %s: %v", e.Key, e.Err)
}

func (e *JobError) Unwrap() error { return e.Err }

// Event reports one job settling (completed, failed, or restored from
// the checkpoint).
type Event struct {
	// Key identifies the job.
	Key string
	// Done and Total count settled jobs in this Run call.
	Done, Total int
	// FromCheckpoint marks a result restored from the journal.
	FromCheckpoint bool
	// Err is non-nil when the job failed.
	Err *JobError
	// Elapsed is wall time since Run started.
	Elapsed time.Duration
	// ETA estimates remaining wall time from the live-job completion
	// rate; zero until at least one job has actually executed.
	ETA time.Duration
}

// Options tunes a Run call. The zero value is usable: NumCPU workers,
// no timeout, no retries, no checkpoint.
type Options struct {
	// Workers bounds concurrency; 0 means runtime.NumCPU().
	Workers int
	// Timeout bounds each job attempt; 0 means no limit.
	Timeout time.Duration
	// Retries is how many extra attempts a failed job gets. Timeouts
	// and context cancellation are never retried.
	Retries int
	// Backoff is the base delay between attempts, doubling each retry;
	// 0 means 100ms.
	Backoff time.Duration
	// Checkpoint, when non-nil, is consulted before running a job and
	// records every success.
	Checkpoint *Checkpoint
	// Progress, when non-nil, is called after each job settles. It may
	// be called from multiple goroutines; Run serializes the calls.
	Progress func(Event)
	// Obs, when non-nil, receives job accounting (the obs.Ctr*
	// counters and the obs.HistJobSeconds histogram) and the aggregate
	// simulator counters of every live successful result that
	// implements obs.Observable. Checkpoint-restored results are
	// counted but not observed: sim_* counters cover simulated work
	// only.
	Obs *obs.Registry
}

func (o Options) withDefaults() Options {
	if o.Workers <= 0 {
		o.Workers = runtime.NumCPU()
	}
	if o.Backoff <= 0 {
		o.Backoff = 100 * time.Millisecond
	}
	return o
}

// Set holds a Run call's outcome: one entry per job key, in Values on
// success and Errors on failure.
type Set[T any] struct {
	Values map[string]T
	Errors map[string]*JobError
}

// Value returns a job's result and whether it succeeded.
func (s *Set[T]) Value(key string) (T, bool) {
	v, ok := s.Values[key]
	return v, ok
}

// Err returns a job's failure, nil on success.
func (s *Set[T]) Err(key string) error {
	if e, ok := s.Errors[key]; ok {
		return e
	}
	return nil
}

// Failed returns every failure sorted by job key.
func (s *Set[T]) Failed() []*JobError {
	out := make([]*JobError, 0, len(s.Errors))
	for _, e := range s.Errors {
		out = append(out, e)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Key < out[j].Key })
	return out
}

// Run executes the jobs on a bounded pool and returns when every job
// has settled. A cancelled context stops new work; queued jobs drain
// with a cancellation error rather than blocking. Run never panics on
// a panicking job.
func Run[T any](ctx context.Context, jobs []Job[T], opts Options) *Set[T] {
	opts = opts.withDefaults()
	set := &Set[T]{
		Values: make(map[string]T, len(jobs)),
		Errors: make(map[string]*JobError),
	}
	total := len(jobs)
	start := time.Now()
	opts.Obs.Counter(obs.CtrJobsSubmitted).Add(uint64(total))

	var mu sync.Mutex
	done, live := 0, 0
	emit := func(key string, fromCkpt bool, jerr *JobError) {
		done++
		if !fromCkpt {
			live++
		}
		switch {
		case fromCkpt:
			opts.Obs.Counter(obs.CtrJobsFromCheckpoint).Inc()
		case jerr != nil:
			opts.Obs.Counter(obs.CtrJobsFailed).Inc()
			if jerr.TimedOut {
				opts.Obs.Counter(obs.CtrJobTimeouts).Inc()
			}
			if jerr.Stack != "" {
				opts.Obs.Counter(obs.CtrJobPanics).Inc()
			}
		default:
			opts.Obs.Counter(obs.CtrJobsSucceeded).Inc()
		}
		if opts.Progress == nil {
			return
		}
		elapsed := time.Since(start)
		var eta time.Duration
		if live > 0 && done < total {
			eta = time.Duration(float64(elapsed) / float64(live) * float64(total-done))
		}
		opts.Progress(Event{
			Key: key, Done: done, Total: total,
			FromCheckpoint: fromCkpt, Err: jerr,
			Elapsed: elapsed, ETA: eta,
		})
	}

	// Restore checkpointed results first so the pool only sees real work.
	var pending []Job[T]
	for _, j := range jobs {
		var v T
		if opts.Checkpoint.Lookup(j.Key, &v) {
			mu.Lock()
			set.Values[j.Key] = v
			emit(j.Key, true, nil)
			mu.Unlock()
			continue
		}
		pending = append(pending, j)
	}

	ch := make(chan Job[T])
	var wg sync.WaitGroup
	for i := 0; i < opts.Workers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := range ch {
				if err := ctx.Err(); err != nil {
					// Drain: account for the job without running it.
					opts.Obs.Counter(obs.CtrJobsDrained).Inc()
					j.Span.SetAttr("outcome", "drained")
					jerr := &JobError{Key: j.Key, Err: err}
					mu.Lock()
					set.Errors[j.Key] = jerr
					emit(j.Key, false, jerr)
					mu.Unlock()
					continue
				}
				jobStart := time.Now()
				v, jerr := attempt(ctx, j, opts)
				opts.Obs.Histogram(obs.HistJobSeconds).Observe(time.Since(jobStart).Seconds())
				if jerr == nil && opts.Obs != nil {
					// Fold the result's aggregate simulator counters into
					// the registry at the experiment boundary, keeping the
					// per-access path metric-free.
					if o, ok := any(v).(obs.Observable); ok {
						o.ObserveInto(opts.Obs)
					}
				}
				mu.Lock()
				if jerr != nil {
					set.Errors[j.Key] = jerr
				} else {
					set.Values[j.Key] = v
				}
				emit(j.Key, false, jerr)
				mu.Unlock()
				if jerr == nil {
					// Journal outside any caller-visible path; a write
					// failure must not fail the job.
					_ = opts.Checkpoint.Record(j.Key, v)
				}
			}
		}()
	}
	for _, j := range pending {
		ch <- j
	}
	close(ch)
	wg.Wait()
	return set
}

// attempt runs one job with bounded retries. Each try is traced as an
// "attempt" child of the job's span (when the job carries one).
func attempt[T any](ctx context.Context, job Job[T], opts Options) (T, *JobError) {
	var zero T
	for try := 0; ; try++ {
		sp := job.Span.StartChild("attempt")
		sp.SetAttr("try", strconv.Itoa(try+1))
		v, jerr := runOnce(ctx, job, opts.Timeout)
		if jerr == nil {
			sp.SetAttr("outcome", "ok")
			sp.End()
			return v, nil
		}
		switch {
		case jerr.TimedOut:
			sp.SetAttr("outcome", "timeout")
		case jerr.Stack != "":
			sp.SetAttr("outcome", "panic")
		default:
			sp.SetAttr("outcome", "error")
		}
		sp.SetAttr("error", jerr.Err.Error())
		jerr.Attempts = try + 1
		retryable := !jerr.TimedOut && ctx.Err() == nil &&
			!errors.Is(jerr.Err, context.Canceled)
		if try >= opts.Retries || !retryable {
			sp.End()
			return zero, jerr
		}
		sp.SetAttr("retrying", "true")
		sp.End()
		opts.Obs.Counter(obs.CtrJobRetries).Inc()
		select {
		case <-ctx.Done():
			return zero, jerr
		case <-time.After(opts.Backoff * time.Duration(1<<try)):
		}
	}
}

// runOnce executes a single attempt with panic recovery and the
// per-job timeout.
func runOnce[T any](ctx context.Context, job Job[T], timeout time.Duration) (T, *JobError) {
	var zero T
	jctx := ctx
	if timeout > 0 {
		var cancel context.CancelFunc
		jctx, cancel = context.WithTimeout(ctx, timeout)
		defer cancel()
	}

	type outcome struct {
		v     T
		err   error
		stack string
	}
	ch := make(chan outcome, 1)
	start := time.Now()
	go func() {
		defer func() {
			if r := recover(); r != nil {
				ch <- outcome{
					err:   fmt.Errorf("panic: %v", r),
					stack: string(debug.Stack()),
				}
			}
		}()
		v, err := job.Run(jctx)
		ch <- outcome{v: v, err: err}
	}()

	select {
	case o := <-ch:
		if o.err != nil {
			return zero, &JobError{
				Key: job.Key, Err: o.err, Stack: o.stack,
				Duration: time.Since(start),
			}
		}
		return o.v, nil
	case <-jctx.Done():
		// The job goroutine is abandoned; simulations are not
		// preemptible, so it runs to completion and its late result is
		// dropped (the outcome channel is buffered).
		return zero, &JobError{
			Key: job.Key, Err: jctx.Err(),
			TimedOut: ctx.Err() == nil,
			Duration: time.Since(start),
		}
	}
}
