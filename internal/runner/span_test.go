package runner

import (
	"context"
	"errors"
	"testing"
	"time"

	"sdbp/internal/obs"
)

// attemptSpans filters a trace's records down to the "attempt" children
// of the given job span, in start order.
func attemptSpans(tr *obs.Trace, jobSpanID string) []obs.SpanRecord {
	var out []obs.SpanRecord
	for _, sp := range tr.Spans() {
		if sp.Name == "attempt" && sp.Parent == jobSpanID {
			out = append(out, sp)
		}
	}
	return out
}

// jobSpanID finds the record for the named job span.
func jobSpanID(t *testing.T, tr *obs.Trace, name string) string {
	t.Helper()
	for _, sp := range tr.Spans() {
		if sp.Name == name {
			return sp.ID
		}
	}
	t.Fatalf("no %q span in trace: %+v", name, tr.Spans())
	return ""
}

// TestJobSpanRecordsAttempts: a traced job that fails twice and then
// succeeds yields three attempt children annotated with try numbers,
// outcomes and the retry marker.
func TestJobSpanRecordsAttempts(t *testing.T) {
	tr, root := obs.NewTrace("job")
	var calls int
	jobs := []Job[int]{{
		Key:  "flaky",
		Span: root,
		Run: func(context.Context) (int, error) {
			calls++
			if calls < 3 {
				return 0, errors.New("transient")
			}
			return 7, nil
		},
	}}
	set := Run(context.Background(), jobs, Options{
		Workers: 1, Retries: 2, Backoff: time.Millisecond,
	})
	if v, ok := set.Value("flaky"); !ok || v != 7 {
		t.Fatalf("flaky = %d, %t; want 7 after retries", v, ok)
	}
	root.End()

	atts := attemptSpans(tr, jobSpanID(t, tr, "job"))
	if len(atts) != 3 {
		t.Fatalf("got %d attempt spans, want 3: %+v", len(atts), atts)
	}
	for i, sp := range atts {
		if want := string(rune('1' + i)); sp.Attrs["try"] != want {
			t.Errorf("attempt %d try = %q, want %q", i, sp.Attrs["try"], want)
		}
		if sp.Duration <= 0 {
			t.Errorf("attempt %d has no duration", i)
		}
	}
	for _, sp := range atts[:2] {
		if sp.Attrs["outcome"] != "error" || sp.Attrs["retrying"] != "true" ||
			sp.Attrs["error"] != "transient" {
			t.Errorf("failed attempt attrs = %v", sp.Attrs)
		}
	}
	last := atts[2]
	if last.Attrs["outcome"] != "ok" || last.Attrs["retrying"] != "" {
		t.Errorf("final attempt attrs = %v", last.Attrs)
	}
}

// TestJobSpanAnnotatesPanicAndTimeout pins the failure annotations.
func TestJobSpanAnnotatesPanicAndTimeout(t *testing.T) {
	tr, root := obs.NewTrace("batch")
	pSpan := root.StartChild("job:panics")
	hSpan := root.StartChild("job:hangs")
	jobs := []Job[int]{
		{Key: "panics", Span: pSpan,
			Run: func(context.Context) (int, error) { panic("boom") }},
		{Key: "hangs", Span: hSpan,
			Run: func(ctx context.Context) (int, error) {
				<-ctx.Done()
				return 0, ctx.Err()
			}},
	}
	set := Run(context.Background(), jobs, Options{
		Workers: 2, Timeout: 50 * time.Millisecond,
	})
	if len(set.Errors) != 2 {
		t.Fatalf("errors = %+v, want both jobs failing", set.Errors)
	}
	pSpan.End()
	hSpan.End()
	root.End()

	p := attemptSpans(tr, jobSpanID(t, tr, "job:panics"))
	if len(p) != 1 || p[0].Attrs["outcome"] != "panic" {
		t.Errorf("panic attempts = %+v", p)
	}
	h := attemptSpans(tr, jobSpanID(t, tr, "job:hangs"))
	if len(h) != 1 || h[0].Attrs["outcome"] != "timeout" {
		t.Errorf("timeout attempts = %+v", h)
	}
}

// TestUntracedJobStillRuns: a nil Span means zero tracing work and no
// panics anywhere on the job path.
func TestUntracedJobStillRuns(t *testing.T) {
	set := Run(context.Background(), intJobs(4), Options{Workers: 2, Retries: 1})
	if len(set.Values) != 4 {
		t.Fatalf("values = %d, want 4", len(set.Values))
	}
}
