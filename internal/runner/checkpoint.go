package runner

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"sync"

	"sdbp/internal/obs"
)

// Warnf receives non-fatal checkpoint degradation notices (a torn or
// corrupt journal tail skipped on resume). It defaults to the process
// structured logger at warn level (obs.Default, swappable via
// obs.SetDefault); commands may redirect it, tests may capture it.
var Warnf = func(format string, args ...any) {
	obs.Default().Warn(fmt.Sprintf(format, args...), "component", "runner")
}

// Checkpoint is an append-only JSON-lines journal of completed job
// results. Each line is {"key": ..., "value": ...}; the key embeds
// everything that determines the result (section, workload, policy,
// scale, geometry), so a lookup hit is exactly a finished cell and a
// config change produces disjoint keys rather than stale hits.
//
// The journal is crash-safe by construction: a torn final line (the
// process died mid-write) is ignored on load, and every complete line
// is a finished, self-contained result. All methods are safe for
// concurrent use and on a nil receiver (no-ops), so callers need not
// branch on whether checkpointing is enabled.
type Checkpoint struct {
	mu      sync.Mutex
	f       *os.File
	entries map[string]json.RawMessage
}

type checkpointEntry struct {
	Key   string          `json:"key"`
	Value json.RawMessage `json:"value"`
}

// OpenCheckpoint opens (or creates) the journal at path. With resume
// set, existing entries are loaded and later Lookup calls hit them;
// without it any existing journal is truncated and the run starts
// fresh.
//
// A resume tolerates a crash mid-Record: a truncated or corrupt
// trailing line ends the useful prefix. The intact entries load, the
// bad tail is logged through Warnf and physically truncated away —
// appending after a torn line would otherwise concatenate the next
// record onto it and corrupt the journal one restart later.
func OpenCheckpoint(path string, resume bool) (*Checkpoint, error) {
	c := &Checkpoint{entries: make(map[string]json.RawMessage)}
	if resume {
		keep, err := c.load(path)
		if err != nil {
			return nil, err
		}
		if keep >= 0 {
			if err := os.Truncate(path, keep); err != nil {
				return nil, fmt.Errorf("runner: truncate torn checkpoint tail: %w", err)
			}
		}
	}
	flags := os.O_CREATE | os.O_WRONLY | os.O_APPEND
	if !resume {
		flags |= os.O_TRUNC
	}
	f, err := os.OpenFile(path, flags, 0o644)
	if err != nil {
		return nil, fmt.Errorf("runner: open checkpoint: %w", err)
	}
	c.f = f
	return c, nil
}

// load reads the journal's intact prefix into c.entries. It returns
// the byte offset the file should be truncated to when a bad tail was
// found, or -1 when the whole file is intact.
func (c *Checkpoint) load(path string) (keep int64, err error) {
	f, err := os.Open(path)
	if os.IsNotExist(err) {
		return -1, nil
	}
	if err != nil {
		return -1, fmt.Errorf("runner: load checkpoint: %w", err)
	}
	defer f.Close()
	r := bufio.NewReaderSize(f, 1<<20)
	var off int64
	for lineNo := 1; ; lineNo++ {
		line, rerr := r.ReadBytes('\n')
		if rerr != nil && rerr != io.EOF {
			return -1, fmt.Errorf("runner: load checkpoint: %w", rerr)
		}
		if trimmed := bytes.TrimSpace(line); len(trimmed) > 0 {
			var e checkpointEntry
			// Every complete entry is one newline-terminated line; a
			// line that does not parse, names no key, or ends at EOF
			// without its newline is a torn write. Skip it — and
			// anything after it — rather than failing the resume.
			if jerr := json.Unmarshal(trimmed, &e); jerr != nil || e.Key == "" || rerr == io.EOF {
				Warnf("runner: checkpoint %s: ignoring torn or corrupt journal tail at line %d (crash mid-write?); keeping %d intact entries",
					path, lineNo, len(c.entries))
				return off, nil
			}
			c.entries[e.Key] = e.Value
		}
		off += int64(len(line))
		if rerr == io.EOF {
			return -1, nil
		}
	}
}

// Len reports how many entries are loaded or recorded.
func (c *Checkpoint) Len() int {
	if c == nil {
		return 0
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.entries)
}

// Lookup unmarshals the journaled value for key into v and reports
// whether it was present. A nil receiver never hits.
func (c *Checkpoint) Lookup(key string, v any) bool {
	if c == nil {
		return false
	}
	c.mu.Lock()
	raw, ok := c.entries[key]
	c.mu.Unlock()
	if !ok {
		return false
	}
	return json.Unmarshal(raw, v) == nil
}

// Record journals one completed result and flushes it to disk. A nil
// receiver is a no-op.
func (c *Checkpoint) Record(key string, v any) error {
	if c == nil {
		return nil
	}
	raw, err := json.Marshal(v)
	if err != nil {
		return fmt.Errorf("runner: marshal checkpoint %s: %w", key, err)
	}
	line, err := json.Marshal(checkpointEntry{Key: key, Value: raw})
	if err != nil {
		return err
	}
	line = append(line, '\n')
	c.mu.Lock()
	defer c.mu.Unlock()
	c.entries[key] = raw
	if c.f == nil {
		return nil
	}
	if _, err := c.f.Write(line); err != nil {
		return fmt.Errorf("runner: write checkpoint: %w", err)
	}
	return nil
}

// Close closes the journal file. A nil receiver is a no-op.
func (c *Checkpoint) Close() error {
	if c == nil || c.f == nil {
		return nil
	}
	return c.f.Close()
}
