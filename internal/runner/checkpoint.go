package runner

import (
	"bufio"
	"encoding/json"
	"fmt"
	"os"
	"sync"
)

// Checkpoint is an append-only JSON-lines journal of completed job
// results. Each line is {"key": ..., "value": ...}; the key embeds
// everything that determines the result (section, workload, policy,
// scale, geometry), so a lookup hit is exactly a finished cell and a
// config change produces disjoint keys rather than stale hits.
//
// The journal is crash-safe by construction: a torn final line (the
// process died mid-write) is ignored on load, and every complete line
// is a finished, self-contained result. All methods are safe for
// concurrent use and on a nil receiver (no-ops), so callers need not
// branch on whether checkpointing is enabled.
type Checkpoint struct {
	mu      sync.Mutex
	f       *os.File
	entries map[string]json.RawMessage
}

type checkpointEntry struct {
	Key   string          `json:"key"`
	Value json.RawMessage `json:"value"`
}

// OpenCheckpoint opens (or creates) the journal at path. With resume
// set, existing entries are loaded and later Lookup calls hit them;
// without it any existing journal is truncated and the run starts
// fresh.
func OpenCheckpoint(path string, resume bool) (*Checkpoint, error) {
	c := &Checkpoint{entries: make(map[string]json.RawMessage)}
	if resume {
		if err := c.load(path); err != nil {
			return nil, err
		}
	}
	flags := os.O_CREATE | os.O_WRONLY | os.O_APPEND
	if !resume {
		flags |= os.O_TRUNC
	}
	f, err := os.OpenFile(path, flags, 0o644)
	if err != nil {
		return nil, fmt.Errorf("runner: open checkpoint: %w", err)
	}
	c.f = f
	return c, nil
}

func (c *Checkpoint) load(path string) error {
	f, err := os.Open(path)
	if os.IsNotExist(err) {
		return nil
	}
	if err != nil {
		return fmt.Errorf("runner: load checkpoint: %w", err)
	}
	defer f.Close()
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 0, 1<<20), 64<<20)
	for sc.Scan() {
		var e checkpointEntry
		// A torn or corrupt line (interrupted write) ends the useful
		// prefix; everything before it is intact.
		if err := json.Unmarshal(sc.Bytes(), &e); err != nil || e.Key == "" {
			break
		}
		c.entries[e.Key] = e.Value
	}
	return sc.Err()
}

// Len reports how many entries are loaded or recorded.
func (c *Checkpoint) Len() int {
	if c == nil {
		return 0
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.entries)
}

// Lookup unmarshals the journaled value for key into v and reports
// whether it was present. A nil receiver never hits.
func (c *Checkpoint) Lookup(key string, v any) bool {
	if c == nil {
		return false
	}
	c.mu.Lock()
	raw, ok := c.entries[key]
	c.mu.Unlock()
	if !ok {
		return false
	}
	return json.Unmarshal(raw, v) == nil
}

// Record journals one completed result and flushes it to disk. A nil
// receiver is a no-op.
func (c *Checkpoint) Record(key string, v any) error {
	if c == nil {
		return nil
	}
	raw, err := json.Marshal(v)
	if err != nil {
		return fmt.Errorf("runner: marshal checkpoint %s: %w", key, err)
	}
	line, err := json.Marshal(checkpointEntry{Key: key, Value: raw})
	if err != nil {
		return err
	}
	line = append(line, '\n')
	c.mu.Lock()
	defer c.mu.Unlock()
	c.entries[key] = raw
	if c.f == nil {
		return nil
	}
	if _, err := c.f.Write(line); err != nil {
		return fmt.Errorf("runner: write checkpoint: %w", err)
	}
	return nil
}

// Close closes the journal file. A nil receiver is a no-op.
func (c *Checkpoint) Close() error {
	if c == nil || c.f == nil {
		return nil
	}
	return c.f.Close()
}
