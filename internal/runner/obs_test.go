package runner

import (
	"context"
	"errors"
	"fmt"
	"path/filepath"
	"sync/atomic"
	"testing"
	"time"

	"sdbp/internal/obs"
)

// observed implements obs.Observable so the runner's result hook can
// be reconciled.
type observed struct {
	N uint64
}

func (o observed) ObserveInto(r *obs.Registry) {
	r.Counter("sim_total").Add(o.N)
	r.Counter("sim_results").Inc()
}

// TestRunnerObsReconciliation is the runner half of the reconciliation
// suite: job counts in the registry must equal jobs submitted, split
// exactly into succeeded/failed, the per-job histogram must hold one
// observation per executed job, and every successful result's counters
// must be folded in.
func TestRunnerObsReconciliation(t *testing.T) {
	reg := obs.NewRegistry()
	const total, failing = 40, 7
	var jobs []Job[observed]
	for i := 0; i < total; i++ {
		i := i
		jobs = append(jobs, Job[observed]{
			Key: fmt.Sprintf("job%02d", i),
			Run: func(context.Context) (observed, error) {
				if i < failing {
					return observed{}, errors.New("boom")
				}
				return observed{N: uint64(i)}, nil
			},
		})
	}
	set := Run(context.Background(), jobs, Options{Workers: 4, Obs: reg})

	if got := reg.CounterValue(obs.CtrJobsSubmitted); got != total {
		t.Errorf("submitted = %d, want %d", got, total)
	}
	if got := reg.CounterValue(obs.CtrJobsSucceeded); got != uint64(len(set.Values)) {
		t.Errorf("succeeded = %d, want %d (len of Values)", got, len(set.Values))
	}
	if got := reg.CounterValue(obs.CtrJobsFailed); got != uint64(len(set.Errors)) {
		t.Errorf("failed = %d, want %d (len of Errors)", got, len(set.Errors))
	}
	sum := reg.CounterValue(obs.CtrJobsSucceeded) + reg.CounterValue(obs.CtrJobsFailed) +
		reg.CounterValue(obs.CtrJobsFromCheckpoint)
	if sum != total {
		t.Errorf("succeeded+failed+checkpointed = %d, want %d", sum, total)
	}
	// Every job executed live, so the histogram holds exactly one
	// duration per job.
	if got := reg.Histogram(obs.HistJobSeconds).Count(); got != total {
		t.Errorf("job-seconds observations = %d, want %d", got, total)
	}
	// Result folding: sum of N over the successful jobs.
	var want uint64
	for i := failing; i < total; i++ {
		want += uint64(i)
	}
	if got := reg.CounterValue("sim_total"); got != want {
		t.Errorf("sim_total = %d, want %d", got, want)
	}
	if got := reg.CounterValue("sim_results"); got != total-failing {
		t.Errorf("sim_results = %d, want %d", got, total-failing)
	}
}

// TestRunnerObsCheckpointRestore pins that restored results are
// counted as from-checkpoint and NOT re-observed: sim counters cover
// simulated work only.
func TestRunnerObsCheckpointRestore(t *testing.T) {
	path := filepath.Join(t.TempDir(), "run.ckpt")
	ck, err := OpenCheckpoint(path, false)
	if err != nil {
		t.Fatal(err)
	}
	jobs := []Job[observed]{
		{Key: "a", Run: func(context.Context) (observed, error) { return observed{N: 5}, nil }},
		{Key: "b", Run: func(context.Context) (observed, error) { return observed{N: 6}, nil }},
	}
	Run(context.Background(), jobs, Options{Workers: 1, Checkpoint: ck})
	if err := ck.Close(); err != nil {
		t.Fatal(err)
	}

	ck2, err := OpenCheckpoint(path, true)
	if err != nil {
		t.Fatal(err)
	}
	defer ck2.Close()
	reg := obs.NewRegistry()
	set := Run(context.Background(), jobs, Options{Workers: 1, Checkpoint: ck2, Obs: reg})
	if len(set.Values) != 2 {
		t.Fatalf("resume lost results: %+v", set.Errors)
	}
	if got := reg.CounterValue(obs.CtrJobsFromCheckpoint); got != 2 {
		t.Errorf("from_checkpoint = %d, want 2", got)
	}
	if got := reg.CounterValue(obs.CtrJobsSucceeded); got != 0 {
		t.Errorf("succeeded = %d, want 0 (all restored)", got)
	}
	if got := reg.CounterValue("sim_total"); got != 0 {
		t.Errorf("restored results were re-observed: sim_total = %d, want 0", got)
	}
	if got := reg.Histogram(obs.HistJobSeconds).Count(); got != 0 {
		t.Errorf("restored results observed durations: %d, want 0", got)
	}
}

// TestRunnerObsFailureModes reconciles the retry, timeout and panic
// counters against engineered failures.
func TestRunnerObsFailureModes(t *testing.T) {
	reg := obs.NewRegistry()
	var attempts atomic.Uint64
	jobs := []Job[int]{
		{Key: "flaky", Run: func(context.Context) (int, error) {
			if attempts.Add(1) < 3 {
				return 0, errors.New("transient")
			}
			return 1, nil
		}},
		{Key: "panics", Run: func(context.Context) (int, error) { panic("kaboom") }},
		{Key: "hangs", Run: func(context.Context) (int, error) {
			time.Sleep(10 * time.Second)
			return 0, nil
		}},
	}
	Run(context.Background(), jobs, Options{
		Workers: 3, Retries: 2, Backoff: time.Millisecond, Timeout: 100 * time.Millisecond,
		Obs: reg,
	})
	// Panics are retryable, timeouts are not: flaky retries twice and
	// the panicking job exhausts its two retries, for four in total.
	if got := reg.CounterValue(obs.CtrJobRetries); got != 4 {
		t.Errorf("retries = %d, want 4 (2 flaky + 2 panic)", got)
	}
	if got := reg.CounterValue(obs.CtrJobTimeouts); got != 1 {
		t.Errorf("timeouts = %d, want 1", got)
	}
	if got := reg.CounterValue(obs.CtrJobPanics); got != 1 {
		t.Errorf("panics = %d, want 1", got)
	}
	if got := reg.CounterValue(obs.CtrJobsSucceeded); got != 1 {
		t.Errorf("succeeded = %d, want 1", got)
	}
	if got := reg.CounterValue(obs.CtrJobsFailed); got != 2 {
		t.Errorf("failed = %d, want 2", got)
	}
}

// TestRunnerObsDrainedJobs cancels mid-run and checks drained jobs are
// counted but contribute no duration observations.
func TestRunnerObsDrainedJobs(t *testing.T) {
	reg := obs.NewRegistry()
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	const total = 20
	var jobs []Job[int]
	for i := 0; i < total; i++ {
		jobs = append(jobs, Job[int]{
			Key: fmt.Sprintf("j%02d", i),
			Run: func(context.Context) (int, error) {
				cancel() // first executed job cancels the campaign
				return 1, nil
			},
		})
	}
	Run(ctx, jobs, Options{Workers: 1, Obs: reg})
	executed := reg.CounterValue(obs.CtrJobsSucceeded) +
		reg.CounterValue(obs.CtrJobsFailed) - reg.CounterValue(obs.CtrJobsDrained)
	if got := reg.Histogram(obs.HistJobSeconds).Count(); got != executed {
		t.Errorf("duration observations = %d, want %d (executed jobs only)", got, executed)
	}
	if reg.CounterValue(obs.CtrJobsDrained) == 0 {
		t.Error("no jobs drained despite cancellation")
	}
	total2 := reg.CounterValue(obs.CtrJobsSucceeded) + reg.CounterValue(obs.CtrJobsFailed)
	if total2 != total {
		t.Errorf("succeeded+failed = %d, want %d", total2, total)
	}
}

// TestRunnerObsConcurrentJobs is the runner+obs race smoke for CI: many
// workers incrementing shared metrics from inside jobs while the runner
// does its own accounting on the same registry.
func TestRunnerObsConcurrentJobs(t *testing.T) {
	reg := obs.NewRegistry()
	const total = 200
	var jobs []Job[observed]
	for i := 0; i < total; i++ {
		jobs = append(jobs, Job[observed]{
			Key: fmt.Sprintf("j%03d", i),
			Run: func(context.Context) (observed, error) {
				reg.Counter("in_job").Inc()
				reg.Histogram("in_job_hist").Observe(1)
				return observed{N: 1}, nil
			},
		})
	}
	set := Run(context.Background(), jobs, Options{Workers: 8, Obs: reg})
	if len(set.Values) != total {
		t.Fatalf("failures: %v", set.Failed())
	}
	for name, want := range map[string]uint64{
		"in_job": total, "sim_total": total, "sim_results": total,
		obs.CtrJobsSucceeded: total, obs.CtrJobsSubmitted: total,
	} {
		if got := reg.CounterValue(name); got != want {
			t.Errorf("%s = %d, want %d", name, got, want)
		}
	}
	if got := reg.Histogram("in_job_hist").Count(); got != total {
		t.Errorf("in-job histogram = %d, want %d", got, total)
	}
}
