// Package prefetch implements dead-block-directed prefetching — the
// application that introduced dead block prediction (Lai, Fide,
// Falsafi, ISCA 2001) and one of the "optimizations other than
// replacement and bypass" the paper's future work points at.
//
// A sequential prefetcher watches LLC demand misses and fetches the
// next Degree blocks. What distinguishes the dead-block variant is
// *placement*: prefetched blocks may only overwrite predicted-dead
// blocks (via cache.PrefetchPlacer), so useless prefetches can never
// displace live data. The package's experiment compares no prefetching,
// polluting placement (prefetches displace the LRU block), and
// dead-block placement.
package prefetch

import (
	"sdbp/internal/cache"
	"sdbp/internal/cpu"
	"sdbp/internal/hier"
	"sdbp/internal/mem"
	"sdbp/internal/workloads"
)

// Config tunes the prefetcher.
type Config struct {
	// Degree is how many sequential blocks each miss prefetches.
	Degree int
}

// DefaultConfig returns a degree-4 sequential prefetcher.
func DefaultConfig() Config { return Config{Degree: 4} }

// Result reports a prefetch experiment run.
type Result struct {
	// Benchmark and Policy identify the run.
	Benchmark, Policy string
	// IPC is instructions per cycle with prefetching active.
	IPC float64
	// DemandMPKI is demand misses per kilo-instruction (prefetch fills
	// excluded).
	DemandMPKI float64
	// Issued is the number of prefetch candidates generated.
	Issued uint64
	// Placed is how many prefetches the placement rule admitted.
	Placed uint64
	// Useful is how many placed prefetches were demanded before
	// eviction.
	Useful uint64
}

// Accuracy returns Useful/Placed (0 when nothing was placed).
func (r Result) Accuracy() float64 {
	if r.Placed == 0 {
		return 0
	}
	return float64(r.Useful) / float64(r.Placed)
}

// Coverage returns the fraction of demand misses removed relative to
// base (a run of the same policy without prefetching).
func Coverage(base, pf Result) float64 {
	if base.DemandMPKI == 0 {
		return 0
	}
	return 1 - pf.DemandMPKI/base.DemandMPKI
}

// Run simulates one benchmark with a sequential LLC prefetcher over the
// given LLC policy. Placement follows the policy: policies implementing
// cache.PrefetchPlacer admit prefetches by their own victim rule, so a
// dead-block policy admits them only into predicted-dead blocks.
// Prefetch fills consume DRAM bandwidth in the timing model.
func Run(w workloads.Workload, pol cache.Policy, cfg Config, scale float64) Result {
	if cfg.Degree < 0 {
		panic("prefetch: negative degree")
	}
	llc := cache.New(hier.LLCConfig(1), pol)
	core := hier.NewCore(hier.DefaultConfig(), llc)
	timing := cpu.New(cpu.DefaultConfig())

	res := Result{Benchmark: w.Name, Policy: pol.Name()}
	core.OnLLCMiss(func(a mem.Access) {
		for i := 1; i <= cfg.Degree; i++ {
			res.Issued++
			p := a
			p.Addr = mem.BlockAddr(a.Addr) + uint64(i)*mem.BlockSize
			p.Write = false
			if llc.InsertPrefetch(p) {
				timing.ChargeDRAM()
			}
		}
	})

	gen := w.Generator(scale)
	for {
		a, ok := gen.Next()
		if !ok {
			break
		}
		level := core.Access(a)
		timing.Record(a.Gap, level.Latency(), a.DependentLoad)
	}
	llc.Finish()

	s := llc.Stats()
	res.IPC = timing.IPC()
	res.Placed = s.Prefetches
	res.Useful = s.UsefulPrefetches
	if n := timing.Instructions(); n > 0 {
		res.DemandMPKI = float64(s.Misses) / (float64(n) / 1000)
	}
	return res
}
