package prefetch

import (
	"testing"

	"sdbp/internal/cache"
	"sdbp/internal/dbrb"
	"sdbp/internal/policy"
	"sdbp/internal/predictor"
	"sdbp/internal/workloads"
)

const testScale = 0.03

func bench(t *testing.T, name string) workloads.Workload {
	t.Helper()
	w, err := workloads.ByName(name)
	if err != nil {
		t.Fatal(err)
	}
	return w
}

func samplerPolicy() cache.Policy {
	return dbrb.New(policy.NewLRU(), predictor.NewSampler(predictor.DefaultSamplerConfig()))
}

func TestPrefetchReducesDemandMissesOnStreams(t *testing.T) {
	w := bench(t, "462.libquantum")
	base := Run(w, policy.NewLRU(), Config{Degree: 0}, testScale)
	pf := Run(w, policy.NewLRU(), DefaultConfig(), testScale)
	if pf.DemandMPKI >= base.DemandMPKI {
		t.Errorf("prefetch MPKI %.2f not below base %.2f on a streaming benchmark",
			pf.DemandMPKI, base.DemandMPKI)
	}
	if pf.Placed == 0 || pf.Useful == 0 {
		t.Errorf("prefetches placed=%d useful=%d", pf.Placed, pf.Useful)
	}
}

func TestDegreeZeroMatchesNoPrefetcher(t *testing.T) {
	w := bench(t, "456.hmmer")
	r := Run(w, policy.NewLRU(), Config{Degree: 0}, testScale)
	if r.Issued != 0 || r.Placed != 0 {
		t.Errorf("degree 0 issued %d placed %d", r.Issued, r.Placed)
	}
}

func TestDeadPlacementAdmitsFewerThanPolluting(t *testing.T) {
	w := bench(t, "456.hmmer")
	polluting := Run(w, policy.NewLRU(), DefaultConfig(), testScale)
	deadOnly := Run(w, samplerPolicy(), DefaultConfig(), testScale)
	// Dead-block placement is selective: it can only use invalid or
	// predicted-dead frames, so it places no more than the polluting
	// variant.
	if deadOnly.Placed > polluting.Placed {
		t.Errorf("dead-only placed %d > polluting %d", deadOnly.Placed, polluting.Placed)
	}
}

func TestDeadPlacementBeatsNoPrefetch(t *testing.T) {
	w := bench(t, "462.libquantum")
	base := Run(w, samplerPolicy(), Config{Degree: 0}, testScale)
	pf := Run(w, samplerPolicy(), DefaultConfig(), testScale)
	if pf.DemandMPKI >= base.DemandMPKI {
		t.Errorf("dead-directed prefetch MPKI %.2f not below base %.2f",
			pf.DemandMPKI, base.DemandMPKI)
	}
	// On a bandwidth-bound stream the prefetches consume the same DRAM
	// slots the demand misses would have, so IPC may not improve — but
	// it must not collapse either.
	if pf.IPC < 0.95*base.IPC {
		t.Errorf("dead-directed prefetch IPC %.3f far below base %.3f", pf.IPC, base.IPC)
	}
}

func TestAccuracyBounds(t *testing.T) {
	w := bench(t, "433.milc")
	r := Run(w, samplerPolicy(), DefaultConfig(), testScale)
	if acc := r.Accuracy(); acc < 0 || acc > 1 {
		t.Errorf("accuracy = %v", acc)
	}
	if r.Useful > r.Placed {
		t.Errorf("useful %d > placed %d", r.Useful, r.Placed)
	}
	if r.Placed > r.Issued {
		t.Errorf("placed %d > issued %d", r.Placed, r.Issued)
	}
}

func TestCoverage(t *testing.T) {
	base := Result{DemandMPKI: 10}
	pf := Result{DemandMPKI: 6}
	if got := Coverage(base, pf); got != 0.4 {
		t.Errorf("coverage = %v", got)
	}
	if got := Coverage(Result{}, pf); got != 0 {
		t.Error("zero base not guarded")
	}
}

func TestRunPanicsOnNegativeDegree(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("no panic on negative degree")
		}
	}()
	Run(bench(t, "456.hmmer"), policy.NewLRU(), Config{Degree: -1}, testScale)
}
