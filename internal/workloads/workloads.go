// Package workloads defines the reproduction's benchmark suite: 29
// deterministic synthetic analogs of the SPEC CPU 2006 benchmarks
// (Table III), the 19-benchmark memory-intensive subset the paper
// evaluates on, and the 10 quad-core mixes of Table IV.
//
// Each analog is a Mix of trace kernels engineered to exhibit its
// namesake's published memory behavior at the scale of a 2MB LLC:
// pointer chasing for mcf, streaming for libquantum/lbm, phase-
// structured generational reuse with PC-correlated last touches for
// hmmer/bzip2, unpredictable references for astar, and L2-resident
// working sets for the ten benchmarks the paper excludes as
// cache-insensitive. Absolute miss rates differ from SPEC's; the
// properties dead block prediction exploits — and the ways the baseline
// predictors fail — are preserved.
package workloads

import (
	"fmt"
	"sort"
	"strings"
	"sync"

	"sdbp/internal/mem"
	"sdbp/internal/trace"
)

// Workload is one synthetic benchmark.
type Workload struct {
	// Name is the SPEC-style benchmark name ("456.hmmer").
	Name string
	// Class summarizes the behavior family for documentation.
	Class string
	// InSubset marks membership in the paper's memory-intensive subset.
	InSubset bool
	// accesses is the stream length at scale 1.0.
	accesses int
	// build constructs the kernel mix; b allocates disjoint address
	// regions and code-site bases.
	build func(b *builder) trace.Kernel
	// id is the benchmark's stable index (address-space tag and seed).
	id int
}

// Generator returns the workload's reference stream at the given scale
// (1.0 reproduces the default length). Streams are deterministic: the
// same workload and scale always produce the same accesses.
//
// Small streams are generated once and memoized (see streamMemo), so a
// campaign's repeated walks of the same (workload, scale) — one per
// policy, plus the instruction-count and capture passes — replay a
// bulk-copied slice instead of re-running the kernel machinery per
// access. Replayed and generated streams are identical by construction.
func (w Workload) Generator(scale float64) trace.Generator {
	n := int(float64(w.accesses) * scale)
	if n < 1 {
		n = 1
	}
	if n <= streamMemoMaxAccesses {
		return trace.NewReplay(w.stream(n))
	}
	return w.rawGenerator(n)
}

func (w Workload) rawGenerator(n int) *trace.Program {
	b := &builder{bench: uint64(w.id)}
	k := w.build(b)
	return trace.NewProgram(k, n, 0xBE2C0000+uint64(w.id))
}

// streamMemo holds generated reference streams, capped by total bytes
// with least-recently-used eviction. Individual streams above the cap's
// quarter (streamMemoMaxAccesses) are never cached, so full-scale
// campaign streams (tens of MB each) keep their generate-as-you-go
// memory profile.
var streamMemo struct {
	sync.Mutex
	entries  map[streamKey][]mem.Access
	order    []streamKey // LRU order, oldest first
	accesses int         // cached accesses across all entries
}

type streamKey struct {
	id int
	n  int
}

const (
	// streamMemoCapAccesses bounds the memo's total footprint: 2M
	// accesses at 24 bytes each is 48MB.
	streamMemoCapAccesses = 2 << 20
	// streamMemoMaxAccesses is the largest single stream worth caching.
	streamMemoMaxAccesses = streamMemoCapAccesses / 4
)

// stream returns the workload's first n accesses from the memo, filling
// it on the first request.
func (w Workload) stream(n int) []mem.Access {
	key := streamKey{id: w.id, n: n}
	streamMemo.Lock()
	s, ok := streamMemo.entries[key]
	if ok {
		// Refresh LRU position.
		for i, k := range streamMemo.order {
			if k == key {
				copy(streamMemo.order[i:], streamMemo.order[i+1:])
				streamMemo.order[len(streamMemo.order)-1] = key
				break
			}
		}
		streamMemo.Unlock()
		return s
	}
	streamMemo.Unlock()

	s = make([]mem.Access, 0, n)
	gen := w.rawGenerator(n)
	var buf [256]mem.Access
	for {
		k := gen.NextBatch(buf[:])
		if k == 0 {
			break
		}
		s = append(s, buf[:k]...)
	}

	streamMemo.Lock()
	if cached, ok := streamMemo.entries[key]; ok {
		// Another goroutine generated it concurrently; keep theirs.
		streamMemo.Unlock()
		return cached
	}
	if streamMemo.entries == nil {
		streamMemo.entries = make(map[streamKey][]mem.Access)
	}
	for streamMemo.accesses+len(s) > streamMemoCapAccesses && len(streamMemo.order) > 0 {
		old := streamMemo.order[0]
		streamMemo.order = streamMemo.order[1:]
		streamMemo.accesses -= len(streamMemo.entries[old])
		delete(streamMemo.entries, old)
	}
	streamMemo.entries[key] = s
	streamMemo.order = append(streamMemo.order, key)
	streamMemo.accesses += len(s)
	streamMemo.Unlock()
	return s
}

// instrMemo caches Instructions results. Streams are deterministic, so
// a (workload, scale) pair always yields the same count; multicore runs
// ask for the same counts once per mix member per policy, and walking a
// stream costs nearly as much as simulating it.
var instrMemo struct {
	sync.Mutex
	counts map[instrKey]uint64
}

type instrKey struct {
	id    int
	scale float64
}

// Instructions returns the instruction count of one full pass of the
// workload's stream at the given scale (0 means 1): the sum over all
// accesses of Gap+1. Counts are computed by one stream walk and
// memoized per (workload, scale); the method is safe for concurrent
// use.
func (w Workload) Instructions(scale float64) uint64 {
	if scale == 0 {
		scale = 1
	}
	key := instrKey{id: w.id, scale: scale}
	instrMemo.Lock()
	n, ok := instrMemo.counts[key]
	instrMemo.Unlock()
	if ok {
		return n
	}
	gen := w.Generator(scale)
	if bg, ok := gen.(trace.BatchGenerator); ok {
		var buf [256]mem.Access
		for {
			k := bg.NextBatch(buf[:])
			if k == 0 {
				break
			}
			for i := 0; i < k; i++ {
				n += uint64(buf[i].Gap) + 1
			}
		}
	} else {
		for {
			a, ok := gen.Next()
			if !ok {
				break
			}
			n += uint64(a.Gap) + 1
		}
	}
	instrMemo.Lock()
	if instrMemo.counts == nil {
		instrMemo.counts = make(map[instrKey]uint64)
	}
	instrMemo.counts[key] = n
	instrMemo.Unlock()
	return n
}

// builder hands out disjoint address regions and code-site bases within
// one benchmark's address space.
type builder struct {
	bench      uint64
	regions    int
	nextPCSlot uint64
}

// region allocates a fresh region of the given size in blocks. Each
// region gets its own 4GB window so kernels never alias.
func (b *builder) region(blocks int) trace.Region {
	r := trace.Region{
		Base:   b.bench<<40 | uint64(b.regions+1)<<32,
		Blocks: blocks,
	}
	b.regions++
	return r
}

// pcBase allocates a fresh code-site base address.
func (b *builder) pcBase() uint64 {
	b.nextPCSlot++
	return 0x400000 + b.bench<<24 + b.nextPCSlot<<12
}

// Block-count landmarks, in 64-byte blocks, for a 2MB 16-way LLC over a
// 256KB L2: kernels sized between l2Reach and llcBlocks live in the LLC;
// kernels beyond llcBlocks thrash it.
const (
	l2Reach   = 4096  // 256KB L2
	llcBlocks = 32768 // 2MB LLC
)

var registry []Workload

func register(w Workload) {
	w.id = len(registry) + 1
	registry = append(registry, w)
}

// All returns every workload, in registration (Table III) order.
func All() []Workload {
	out := make([]Workload, len(registry))
	copy(out, registry)
	return out
}

// Subset returns the paper's 19-benchmark memory-intensive subset.
func Subset() []Workload {
	var out []Workload
	for _, w := range registry {
		if w.InSubset {
			out = append(out, w)
		}
	}
	return out
}

// ByName returns the named workload. The error for an unknown name
// lists the valid benchmarks, mirroring cmd/experiments' -only
// diagnostics.
func ByName(name string) (Workload, error) {
	for _, w := range registry {
		if w.Name == name {
			return w, nil
		}
	}
	return Workload{}, fmt.Errorf("workloads: unknown benchmark %q; valid benchmarks: %s",
		name, strings.Join(Names(), ", "))
}

// Names returns every registered benchmark name in canonical
// (lexically sorted) order — the order the paper's per-benchmark
// figures list them in.
func Names() []string {
	out := make([]string, 0, len(registry))
	for _, w := range registry {
		out = append(out, w.Name)
	}
	sort.Strings(out)
	return out
}

// Mix is one quad-core multiprogrammed workload (Table IV).
type Mix struct {
	// Name is the mix label ("mix1").
	Name string
	// Members are the four benchmark names sharing the LLC.
	Members [4]string
}

// Mixes returns the paper's ten quad-core mixes (Table IV).
func Mixes() []Mix {
	return []Mix{
		{"mix1", [4]string{"429.mcf", "456.hmmer", "462.libquantum", "471.omnetpp"}},
		{"mix2", [4]string{"445.gobmk", "450.soplex", "462.libquantum", "470.lbm"}},
		{"mix3", [4]string{"434.zeusmp", "437.leslie3d", "462.libquantum", "483.xalancbmk"}},
		{"mix4", [4]string{"416.gamess", "436.cactusADM", "450.soplex", "462.libquantum"}},
		{"mix5", [4]string{"401.bzip2", "416.gamess", "429.mcf", "482.sphinx3"}},
		{"mix6", [4]string{"403.gcc", "454.calculix", "462.libquantum", "482.sphinx3"}},
		{"mix7", [4]string{"400.perlbench", "433.milc", "456.hmmer", "470.lbm"}},
		{"mix8", [4]string{"401.bzip2", "403.gcc", "445.gobmk", "470.lbm"}},
		{"mix9", [4]string{"416.gamess", "429.mcf", "465.tonto", "483.xalancbmk"}},
		{"mix10", [4]string{"433.milc", "444.namd", "482.sphinx3", "483.xalancbmk"}},
	}
}

// ws wraps trace.Weighted construction for readability below.
func ws(k trace.Kernel, weight int) trace.Weighted {
	return trace.Weighted{Kernel: k, Weight: weight}
}

func init() {
	// --- The memory-intensive subset (19 benchmarks, Figure 4/5). ---
	//
	// Shared structure: each benchmark pairs an LLC-scale reuse
	// component (Generational, PointerChase or a small hot set) with
	// single-touch dead traffic (Stream, RandomAccess) that pollutes an
	// LRU cache. Repeat factors give every touched block short bursts
	// that the L1 absorbs, so the LLC sees a filtered stream as in the
	// paper; UseProb/FinalProb model the per-block variance the
	// mid-level cache induces in that filtering.

	register(Workload{
		Name: "400.perlbench", Class: "generational+streams", InSubset: true,
		accesses: 2_800_000,
		build: func(b *builder) trace.Kernel {
			return trace.NewMix(
				ws(&trace.Repeat{Factor: 3, Kernel: &trace.Generational{Region: b.region(27_000), SegBlocks: 9_000,
					MinUses: 1, MaxUses: 3, UseProb: 0.75, FinalProb: 0.92, PCBase: b.pcBase(), GapMean: 3}}, 4),
				ws(&trace.Stream{Region: b.region(44_000), Burst: 2, PCBase: b.pcBase(), GapMean: 3}, 2),
				ws(&trace.Repeat{Factor: 4, Kernel: &trace.HotSet{Region: b.region(1_500), PCBase: b.pcBase(), GapMean: 2}}, 2),
			)
		},
	})
	register(Workload{
		Name: "401.bzip2", Class: "generational, variable uses", InSubset: true,
		accesses: 2_800_000,
		build: func(b *builder) trace.Kernel {
			return trace.NewMix(
				ws(&trace.Repeat{Factor: 3, Kernel: &trace.Generational{Region: b.region(30_000), SegBlocks: 7_500,
					MinUses: 1, MaxUses: 4, UseProb: 0.7, FinalProb: 0.9, PCBase: b.pcBase(), GapMean: 3}}, 4),
				ws(&trace.Stream{Region: b.region(70_000), Burst: 3, PCBase: b.pcBase(), GapMean: 2}, 2),
				ws(&trace.Repeat{Factor: 3, Kernel: &trace.HotSet{Region: b.region(1_000), PCBase: b.pcBase(), GapMean: 2}}, 1),
			)
		},
	})
	register(Workload{
		Name: "403.gcc", Class: "mixed phases", InSubset: true,
		accesses: 2_600_000,
		build: func(b *builder) trace.Kernel {
			return trace.NewMix(
				ws(&trace.Repeat{Factor: 2, Kernel: &trace.Generational{Region: b.region(24_000), SegBlocks: 8_000,
					MinUses: 1, MaxUses: 2, UseProb: 0.65, FinalProb: 0.85, PCBase: b.pcBase(), GapMean: 3}}, 3),
				ws(&trace.Repeat{Factor: 2, Kernel: &trace.RandomAccess{Region: b.region(20_000), PCCount: 1024,
					WriteFrac: 0.2, PCBase: b.pcBase(), GapMean: 3}}, 1),
				ws(&trace.Stream{Region: b.region(48_000), Burst: 2, PCBase: b.pcBase(), GapMean: 2}, 2),
				ws(&trace.Repeat{Factor: 3, Kernel: &trace.HotSet{Region: b.region(2_000), PCBase: b.pcBase(), GapMean: 2}}, 1),
			)
		},
	})
	register(Workload{
		Name: "429.mcf", Class: "pointer chasing", InSubset: true,
		accesses: 2_800_000,
		build: func(b *builder) trace.Kernel {
			return trace.NewMix(
				ws(&trace.Repeat{Factor: 2, Kernel: &trace.PointerChase{Region: b.region(96_000), PCCount: 64,
					PCBase: b.pcBase(), GapMean: 2}}, 5),
				ws(&trace.Repeat{Factor: 2, Kernel: &trace.Generational{Region: b.region(20_000), SegBlocks: 10_000,
					MinUses: 1, MaxUses: 2, UseProb: 0.7, FinalProb: 0.9, PCBase: b.pcBase(), GapMean: 2}}, 2),
				ws(&trace.Repeat{Factor: 3, Kernel: &trace.HotSet{Region: b.region(1_000), PCBase: b.pcBase(), GapMean: 2}}, 1),
			)
		},
	})
	register(Workload{
		Name: "433.milc", Class: "streaming lattice", InSubset: true,
		accesses: 2_600_000,
		build: func(b *builder) trace.Kernel {
			return trace.NewMix(
				ws(&trace.Stream{Region: b.region(64_000), Burst: 2, Lag: 4_600, LagProb: 0.6,
					WriteLag: true, PCBase: b.pcBase(), GapMean: 2}, 3),
				ws(&trace.Repeat{Factor: 2, Kernel: &trace.Generational{Region: b.region(19_200), SegBlocks: 4_800,
					Fresh: true, MinUses: 1, MaxUses: 2, UseProb: 0.85, PCBase: b.pcBase(), GapMean: 3}}, 2),
			)
		},
	})
	register(Workload{
		Name: "434.zeusmp", Class: "scan with reuse", InSubset: true,
		accesses: 2_600_000,
		build: func(b *builder) trace.Kernel {
			return trace.NewMix(
				ws(&trace.Repeat{Factor: 2, Kernel: &trace.Generational{Region: b.region(20_000), SegBlocks: 10_000,
					MinUses: 3, MaxUses: 5, UseProb: 0.8, FinalProb: 0.9, PCBase: b.pcBase(), GapMean: 3}}, 3),
				ws(&trace.Stream{Region: b.region(80_000), Burst: 2, PCBase: b.pcBase(), GapMean: 2}, 2),
			)
		},
	})
	register(Workload{
		Name: "435.gromacs", Class: "generational", InSubset: true,
		accesses: 2_400_000,
		build: func(b *builder) trace.Kernel {
			return trace.NewMix(
				ws(&trace.Repeat{Factor: 3, Kernel: &trace.Generational{Region: b.region(22_000), SegBlocks: 11_000,
					MinUses: 2, MaxUses: 3, UseProb: 0.85, FinalProb: 0.95, PCBase: b.pcBase(), GapMean: 3}}, 4),
				ws(&trace.Stream{Region: b.region(50_000), Burst: 2, PCBase: b.pcBase(), GapMean: 3}, 1),
				ws(&trace.Repeat{Factor: 3, Kernel: &trace.HotSet{Region: b.region(1_500), PCBase: b.pcBase(), GapMean: 2}}, 1),
			)
		},
	})
	register(Workload{
		Name: "436.cactusADM", Class: "stencil sweep", InSubset: true,
		accesses: 2_600_000,
		build: func(b *builder) trace.Kernel {
			return trace.NewMix(
				ws(&trace.Stream{Region: b.region(48_000), Burst: 2, Lag: 4_600, LagProb: 0.5,
					WriteLag: true, PCBase: b.pcBase(), GapMean: 2}, 3),
				ws(&trace.Repeat{Factor: 2, Kernel: &trace.Generational{Region: b.region(16_500), SegBlocks: 5_500,
					Fresh: true, MinUses: 1, MaxUses: 2, UseProb: 0.85, PCBase: b.pcBase(), GapMean: 3}}, 2),
			)
		},
	})
	register(Workload{
		Name: "437.leslie3d", Class: "streaming", InSubset: true,
		accesses: 2_600_000,
		build: func(b *builder) trace.Kernel {
			return trace.NewMix(
				ws(&trace.Stream{Region: b.region(80_000), Burst: 2, PCBase: b.pcBase(), GapMean: 2}, 3),
				ws(&trace.Repeat{Factor: 2, Kernel: &trace.Generational{Region: b.region(13_500), SegBlocks: 4_500,
					Fresh: true, MinUses: 1, MaxUses: 2, UseProb: 0.8, PCBase: b.pcBase(), GapMean: 3}}, 2),
				ws(&trace.Repeat{Factor: 3, Kernel: &trace.HotSet{Region: b.region(2_000), PCBase: b.pcBase(), GapMean: 2}}, 1),
			)
		},
	})
	register(Workload{
		Name: "450.soplex", Class: "sparse matrix", InSubset: true,
		accesses: 2_800_000,
		build: func(b *builder) trace.Kernel {
			return trace.NewMix(
				ws(&trace.Repeat{Factor: 2, Kernel: &trace.Generational{Region: b.region(30_000), SegBlocks: 7_500,
					MinUses: 1, MaxUses: 3, UseProb: 0.7, FinalProb: 0.88, PCBase: b.pcBase(), GapMean: 3}}, 3),
				ws(&trace.Stream{Region: b.region(44_000), Burst: 2, PCBase: b.pcBase(), GapMean: 2}, 2),
				ws(&trace.Repeat{Factor: 3, Kernel: &trace.HotSet{Region: b.region(1_000), PCBase: b.pcBase(), GapMean: 2}}, 1),
			)
		},
	})
	register(Workload{
		Name: "456.hmmer", Class: "generational, near-fixed uses", InSubset: true,
		accesses: 2_800_000,
		build: func(b *builder) trace.Kernel {
			return trace.NewMix(
				ws(&trace.Repeat{Factor: 3, Kernel: &trace.Generational{Region: b.region(24_000), SegBlocks: 12_000,
					MinUses: 2, MaxUses: 2, UseProb: 0.95, FinalProb: 0.97, PCBase: b.pcBase(), GapMean: 3}}, 5),
				ws(&trace.Stream{Region: b.region(60_000), Burst: 2, PCBase: b.pcBase(), GapMean: 2}, 2),
				ws(&trace.Repeat{Factor: 3, Kernel: &trace.HotSet{Region: b.region(1_000), PCBase: b.pcBase(), GapMean: 2}}, 1),
			)
		},
	})
	register(Workload{
		Name: "459.GemsFDTD", Class: "streaming", InSubset: true,
		accesses: 2_600_000,
		build: func(b *builder) trace.Kernel {
			return trace.NewMix(
				ws(&trace.Stream{Region: b.region(96_000), Burst: 2, PCBase: b.pcBase(), GapMean: 2}, 4),
				ws(&trace.Repeat{Factor: 2, Kernel: &trace.Generational{Region: b.region(15_200), SegBlocks: 3_800,
					Fresh: true, MinUses: 1, MaxUses: 1, PCBase: b.pcBase(), GapMean: 3}}, 1),
			)
		},
	})
	register(Workload{
		Name: "462.libquantum", Class: "pure streaming", InSubset: true,
		accesses: 2_800_000,
		build: func(b *builder) trace.Kernel {
			return trace.NewMix(
				ws(&trace.Stream{Region: b.region(56_000), Burst: 2, PCBase: b.pcBase(), GapMean: 2}, 3),
				ws(&trace.Repeat{Factor: 2, Kernel: &trace.Generational{Region: b.region(18_000), SegBlocks: 6_000,
					MinUses: 3, MaxUses: 5, UseProb: 0.9, PCBase: b.pcBase(), GapMean: 2}}, 1),
			)
		},
	})
	register(Workload{
		Name: "470.lbm", Class: "streaming read-modify-write", InSubset: true,
		accesses: 2_600_000,
		build: func(b *builder) trace.Kernel {
			return trace.NewMix(
				ws(&trace.Stream{Region: b.region(96_000), Burst: 2, PCBase: b.pcBase(), GapMean: 2}, 4),
				ws(&trace.Repeat{Factor: 2, Kernel: &trace.Generational{Region: b.region(15_200), SegBlocks: 3_800,
					Fresh: true, MinUses: 1, MaxUses: 2, PCBase: b.pcBase(), GapMean: 2}}, 1),
			)
		},
	})
	register(Workload{
		Name: "471.omnetpp", Class: "pointer chasing + generational", InSubset: true,
		accesses: 2_600_000,
		build: func(b *builder) trace.Kernel {
			return trace.NewMix(
				ws(&trace.Repeat{Factor: 2, Kernel: &trace.PointerChase{Region: b.region(40_000), PCCount: 128,
					PCBase: b.pcBase(), GapMean: 3}}, 2),
				ws(&trace.Repeat{Factor: 2, Kernel: &trace.Generational{Region: b.region(20_000), SegBlocks: 10_000,
					MinUses: 1, MaxUses: 2, UseProb: 0.7, FinalProb: 0.88, PCBase: b.pcBase(), GapMean: 3}}, 2),
				ws(&trace.Repeat{Factor: 3, Kernel: &trace.HotSet{Region: b.region(2_000), PCBase: b.pcBase(), GapMean: 2}}, 1),
			)
		},
	})
	register(Workload{
		Name: "473.astar", Class: "unpredictable", InSubset: true,
		accesses: 2_400_000,
		build: func(b *builder) trace.Kernel {
			// Reused and transient data are referenced from the SAME
			// code sites (shared PCBase): a fitting region A and a
			// far-larger region B whose blocks effectively die after
			// one touch. No code site is predictive of death, so
			// low-threshold predictors cross into confident-but-wrong
			// dead predictions, evicting and bypassing region A's live
			// blocks (the paper's reftrace blow-up on astar), while the
			// sampling predictor's 8-of-9 threshold keeps its coverage
			// and damage low.
			searchPCs := b.pcBase()
			return trace.NewMix(
				ws(&trace.Repeat{Factor: 2, Kernel: &trace.RandomAccess{Region: b.region(6_000), PCCount: 2048,
					WriteFrac: 0.3, PCBase: searchPCs, GapMean: 3}}, 5),
				ws(&trace.Repeat{Factor: 2, Kernel: &trace.RandomAccess{Region: b.region(120_000), PCCount: 2048,
					WriteFrac: 0.1, PCBase: searchPCs, GapMean: 3}}, 4),
				ws(&trace.Repeat{Factor: 3, Kernel: &trace.HotSet{Region: b.region(1_000), PCBase: b.pcBase(), GapMean: 2}}, 1),
			)
		},
	})
	register(Workload{
		Name: "481.wrf", Class: "scan with reuse", InSubset: true,
		accesses: 2_600_000,
		build: func(b *builder) trace.Kernel {
			return trace.NewMix(
				ws(&trace.Repeat{Factor: 2, Kernel: &trace.Generational{Region: b.region(27_000), SegBlocks: 9_000,
					Fresh: true, MinUses: 2, MaxUses: 4, UseProb: 0.8, FinalProb: 0.9, PCBase: b.pcBase(), GapMean: 3}}, 3),
				ws(&trace.Stream{Region: b.region(56_000), Burst: 2, PCBase: b.pcBase(), GapMean: 2}, 1),
			)
		},
	})
	register(Workload{
		Name: "482.sphinx3", Class: "thrashing scan", InSubset: true,
		accesses: 2_600_000,
		build: func(b *builder) trace.Kernel {
			return trace.NewMix(
				ws(&trace.Stream{Region: b.region(44_000), Burst: 2, PCBase: b.pcBase(), GapMean: 2}, 3),
				ws(&trace.Repeat{Factor: 2, Kernel: &trace.Generational{Region: b.region(14_400), SegBlocks: 3_600,
					MinUses: 1, MaxUses: 2, UseProb: 0.8, PCBase: b.pcBase(), GapMean: 3}}, 1),
				ws(&trace.Repeat{Factor: 3, Kernel: &trace.HotSet{Region: b.region(2_000), PCBase: b.pcBase(), GapMean: 2}}, 1),
			)
		},
	})
	register(Workload{
		Name: "483.xalancbmk", Class: "pointer chasing + random", InSubset: true,
		accesses: 2_600_000,
		build: func(b *builder) trace.Kernel {
			return trace.NewMix(
				ws(&trace.Repeat{Factor: 2, Kernel: &trace.PointerChase{Region: b.region(28_000), PCCount: 128,
					PCBase: b.pcBase(), GapMean: 3}}, 2),
				ws(&trace.Repeat{Factor: 2, Kernel: &trace.RandomAccess{Region: b.region(16_000), PCCount: 512,
					PCBase: b.pcBase(), GapMean: 3}}, 1),
				ws(&trace.Repeat{Factor: 2, Kernel: &trace.Generational{Region: b.region(22_400), SegBlocks: 5_600,
					MinUses: 1, MaxUses: 2, UseProb: 0.75, FinalProb: 0.88, PCBase: b.pcBase(), GapMean: 3}}, 2),
			)
		},
	})

	// --- The ten cache-insensitive benchmarks the paper excludes. ---
	// Working sets fit in (or barely exceed) the L2, so even optimal
	// replacement cannot reduce their LLC misses meaningfully.

	registerInsensitive := func(name, class string, build func(b *builder) trace.Kernel) {
		register(Workload{Name: name, Class: class, accesses: 1_000_000, build: build})
	}
	registerInsensitive("410.bwaves", "L2-resident", func(b *builder) trace.Kernel {
		return trace.NewMix(
			ws(&trace.HotSet{Region: b.region(3_000), PCBase: b.pcBase(), GapMean: 3}, 4),
			ws(&trace.Stream{Region: b.region(6_000), Burst: 2, PCBase: b.pcBase(), GapMean: 3}, 1),
		)
	})
	registerInsensitive("454.calculix", "L2-resident", func(b *builder) trace.Kernel {
		return trace.NewMix(
			ws(&trace.HotSet{Region: b.region(2_500), PCBase: b.pcBase(), GapMean: 3}, 3),
			ws(&trace.Generational{Region: b.region(5_000), SegBlocks: 5_000,
				MinUses: 5, MaxUses: 6, PCBase: b.pcBase(), GapMean: 3}, 1),
		)
	})
	registerInsensitive("447.dealII", "L2-resident", func(b *builder) trace.Kernel {
		return trace.NewMix(
			ws(&trace.HotSet{Region: b.region(3_000), PCBase: b.pcBase(), GapMean: 3}, 2),
			ws(&trace.Stream{Region: b.region(8_000), PCBase: b.pcBase(), GapMean: 3}, 1),
		)
	})
	registerInsensitive("416.gamess", "compute bound", func(b *builder) trace.Kernel {
		return &trace.HotSet{Region: b.region(1_000), PCBase: b.pcBase(), GapMean: 4}
	})
	registerInsensitive("445.gobmk", "L2-resident", func(b *builder) trace.Kernel {
		return trace.NewMix(
			ws(&trace.HotSet{Region: b.region(2_000), PCBase: b.pcBase(), GapMean: 3}, 3),
			ws(&trace.RandomAccess{Region: b.region(6_000), PCCount: 512,
				PCBase: b.pcBase(), GapMean: 3}, 1),
		)
	})
	registerInsensitive("464.h264ref", "LLC-resident", func(b *builder) trace.Kernel {
		return trace.NewMix(
			ws(&trace.HotSet{Region: b.region(2_000), PCBase: b.pcBase(), GapMean: 3}, 2),
			ws(&trace.Stream{Region: b.region(10_000), Burst: 3, PCBase: b.pcBase(), GapMean: 3}, 1),
		)
	})
	registerInsensitive("444.namd", "LLC-resident", func(b *builder) trace.Kernel {
		return trace.NewMix(
			ws(&trace.HotSet{Region: b.region(3_000), PCBase: b.pcBase(), GapMean: 3}, 3),
			ws(&trace.Stream{Region: b.region(12_000), Burst: 2, PCBase: b.pcBase(), GapMean: 3}, 1),
		)
	})
	registerInsensitive("453.povray", "compute bound", func(b *builder) trace.Kernel {
		return &trace.HotSet{Region: b.region(1_500), PCBase: b.pcBase(), GapMean: 4}
	})
	registerInsensitive("458.sjeng", "L2-resident", func(b *builder) trace.Kernel {
		return trace.NewMix(
			ws(&trace.HotSet{Region: b.region(2_000), PCBase: b.pcBase(), GapMean: 3}, 2),
			ws(&trace.RandomAccess{Region: b.region(8_000), PCCount: 256,
				PCBase: b.pcBase(), GapMean: 3}, 1),
		)
	})
	registerInsensitive("465.tonto", "LLC-resident", func(b *builder) trace.Kernel {
		return trace.NewMix(
			ws(&trace.HotSet{Region: b.region(2_500), PCBase: b.pcBase(), GapMean: 3}, 2),
			ws(&trace.Generational{Region: b.region(6_000), SegBlocks: 6_000,
				MinUses: 4, MaxUses: 5, PCBase: b.pcBase(), GapMean: 3}, 1),
		)
	})
}
