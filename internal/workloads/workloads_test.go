package workloads

import (
	"strings"
	"testing"

	"sdbp/internal/mem"
	"sdbp/internal/trace"
)

func TestSuiteComplete(t *testing.T) {
	all := All()
	if len(all) != 29 {
		t.Errorf("suite has %d benchmarks, want 29 (SPEC CPU 2006)", len(all))
	}
	sub := Subset()
	if len(sub) != 19 {
		t.Errorf("subset has %d benchmarks, want 19", len(sub))
	}
	for _, w := range sub {
		if !w.InSubset {
			t.Errorf("%s in Subset() but not flagged", w.Name)
		}
	}
}

func TestNamesUniqueAndWellFormed(t *testing.T) {
	seen := map[string]bool{}
	for _, w := range All() {
		if seen[w.Name] {
			t.Errorf("duplicate benchmark %s", w.Name)
		}
		seen[w.Name] = true
		if !strings.Contains(w.Name, ".") {
			t.Errorf("name %q not in SPEC nnn.name form", w.Name)
		}
		if w.Class == "" {
			t.Errorf("%s has no behavior class", w.Name)
		}
	}
}

func TestByName(t *testing.T) {
	w, err := ByName("456.hmmer")
	if err != nil || w.Name != "456.hmmer" {
		t.Errorf("ByName(456.hmmer) = %v, %v", w.Name, err)
	}
	if !w.InSubset {
		t.Error("hmmer must be in the memory-intensive subset")
	}
	if _, err := ByName("nope"); err == nil {
		t.Error("ByName accepted an unknown benchmark")
	}
}

func TestMixesValid(t *testing.T) {
	mixes := Mixes()
	if len(mixes) != 10 {
		t.Fatalf("mixes = %d, want 10 (Table IV)", len(mixes))
	}
	seen := map[string]bool{}
	for _, m := range mixes {
		if seen[m.Name] {
			t.Errorf("duplicate mix %s", m.Name)
		}
		seen[m.Name] = true
		for _, b := range m.Members {
			if _, err := ByName(b); err != nil {
				t.Errorf("%s references unknown benchmark %s", m.Name, b)
			}
		}
	}
}

func TestMix1MatchesPaper(t *testing.T) {
	m := Mixes()[0]
	want := [4]string{"429.mcf", "456.hmmer", "462.libquantum", "471.omnetpp"}
	if m.Members != want {
		t.Errorf("mix1 = %v, want %v", m.Members, want)
	}
}

func TestGeneratorsDeterministic(t *testing.T) {
	w, _ := ByName("401.bzip2")
	collect := func() []mem.Access {
		return trace.Collect(w.Generator(0.001))
	}
	a, b := collect(), collect()
	if len(a) == 0 {
		t.Fatal("empty stream")
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("stream differs at %d", i)
		}
	}
}

func TestGeneratorsScale(t *testing.T) {
	w, _ := ByName("456.hmmer")
	small := len(trace.Collect(w.Generator(0.001)))
	big := len(trace.Collect(w.Generator(0.002)))
	if big != 2*small {
		t.Errorf("scale 2x produced %d vs %d accesses", big, small)
	}
}

func TestAddressSpacesDisjoint(t *testing.T) {
	// Different benchmarks never touch the same block (the builder
	// assigns per-benchmark address windows).
	wa, _ := ByName("429.mcf")
	wb, _ := ByName("456.hmmer")
	seen := map[uint64]bool{}
	for _, a := range trace.Collect(wa.Generator(0.005)) {
		seen[mem.BlockNumber(a.Addr)] = true
	}
	for _, a := range trace.Collect(wb.Generator(0.005)) {
		if seen[mem.BlockNumber(a.Addr)] {
			t.Fatalf("benchmarks share block %#x", a.Addr)
		}
	}
}

func TestEveryBenchmarkGenerates(t *testing.T) {
	for _, w := range All() {
		accs := trace.Collect(w.Generator(0.0005))
		if len(accs) == 0 {
			t.Errorf("%s produced no accesses", w.Name)
			continue
		}
		for _, a := range accs {
			if a.PC == 0 {
				t.Errorf("%s emitted a zero PC", w.Name)
				break
			}
		}
	}
}

func TestSubsetHasDistinctBehaviors(t *testing.T) {
	classes := map[string]bool{}
	for _, w := range Subset() {
		classes[w.Class] = true
	}
	if len(classes) < 8 {
		t.Errorf("subset covers only %d behavior classes", len(classes))
	}
}
