package serve

import (
	"encoding/json"
	"fmt"
	"net/http"
	"sync"
)

// Live progress streaming: every submission opens (or reuses) a
// per-address event feed recording the job's lifecycle in publish
// order — submitted → queued → coalesced → running → progress… →
// stored → done on the miss path, submitted → cached → done on a hit,
// with failed terminating an unsuccessful job. GET
// /v1/jobs/{addr}/events serves the feed as Server-Sent Events: the
// full history first (so watching a finished job replays its complete,
// deterministically ordered lifecycle), then the live tail until the
// feed closes or the client disconnects.

// JobEvent is one lifecycle event on a job's feed.
type JobEvent struct {
	// Seq numbers events within the feed from 0.
	Seq int `json:"seq"`
	// Type is the lifecycle stage: submitted, cached, queued,
	// coalesced, running, progress, stored, done, failed.
	Type string `json:"type"`
	// Addr is the job's content address.
	Addr string `json:"addr"`
	// Detail names what the event concerns (a workload for progress
	// events, an error message for failed).
	Detail string `json:"detail,omitempty"`
	// Done and Total count finished work units on progress events.
	Done  int `json:"done,omitempty"`
	Total int `json:"total,omitempty"`
}

// eventFeed is one job generation's ordered event history. Publishing
// appends; subscribers replay the prefix they have not seen and block
// on the condition variable for the tail.
type eventFeed struct {
	mu     sync.Mutex
	cond   *sync.Cond
	addr   string
	events []JobEvent
	closed bool
}

func newEventFeed(addr string) *eventFeed {
	f := &eventFeed{addr: addr}
	f.cond = sync.NewCond(&f.mu)
	return f
}

func (f *eventFeed) publish(typ, detail string, done, total int) {
	f.mu.Lock()
	if !f.closed {
		f.events = append(f.events, JobEvent{
			Seq: len(f.events), Type: typ, Addr: f.addr,
			Detail: detail, Done: done, Total: total,
		})
	}
	f.mu.Unlock()
	f.cond.Broadcast()
}

func (f *eventFeed) close() {
	f.mu.Lock()
	f.closed = true
	f.mu.Unlock()
	f.cond.Broadcast()
}

// eventBroker maps addresses to their current feed generation, bounded
// by FIFO eviction like the trace store.
type eventBroker struct {
	mu    sync.Mutex
	max   int
	feeds map[string]*eventFeed
	order []string
}

func newEventBroker(max int) *eventBroker {
	return &eventBroker{max: max, feeds: make(map[string]*eventFeed)}
}

// submitted opens addr's feed for a new submission and publishes the
// submitted event. A still-live feed (a concurrent duplicate
// submission) is reused untouched so one job produces one lifecycle;
// a finished feed is replaced by a fresh generation.
func (br *eventBroker) submitted(addr string) {
	if br == nil {
		return
	}
	br.mu.Lock()
	f, ok := br.feeds[addr]
	if ok {
		f.mu.Lock()
		live := !f.closed
		f.mu.Unlock()
		if live {
			br.mu.Unlock()
			return
		}
	}
	if !ok {
		br.order = append(br.order, addr)
		for len(br.order) > br.max {
			if old := br.feeds[br.order[0]]; old != nil {
				old.close()
			}
			delete(br.feeds, br.order[0])
			br.order = br.order[1:]
		}
	}
	f = newEventFeed(addr)
	br.feeds[addr] = f
	br.mu.Unlock()
	f.publish("submitted", "", 0, 0)
}

func (br *eventBroker) feed(addr string) (*eventFeed, bool) {
	if br == nil {
		return nil, false
	}
	br.mu.Lock()
	defer br.mu.Unlock()
	f, ok := br.feeds[addr]
	return f, ok
}

// publish appends an event to addr's current feed (no-op when there is
// none, e.g. after eviction).
func (br *eventBroker) publish(addr, typ, detail string, done, total int) {
	if f, ok := br.feed(addr); ok {
		f.publish(typ, detail, done, total)
	}
}

// finish publishes the terminal event and closes the feed.
func (br *eventBroker) finish(addr, typ, detail string) {
	if f, ok := br.feed(addr); ok {
		f.publish(typ, detail, 0, 0)
		f.close()
	}
}

// handleEvents streams a job's lifecycle as Server-Sent Events — the
// recorded history first, then live events until the job finishes or
// the client goes away. Each event carries its sequence number as the
// SSE id, its type as the SSE event name, and the JobEvent JSON as
// data.
func (s *Server) handleEvents(w http.ResponseWriter, r *http.Request) {
	addr := r.PathValue("addr")
	if !ValidAddr(addr) {
		s.writeError(w, http.StatusBadRequest, "", fmt.Errorf("serve: %q is not a result address (64 hex digits)", addr))
		return
	}
	f, ok := s.events.feed(addr)
	if !ok {
		s.writeError(w, http.StatusNotFound, addr, fmt.Errorf("serve: no job events for %s", addr))
		return
	}
	flusher, canFlush := w.(http.Flusher)
	w.Header().Set("Content-Type", "text/event-stream")
	w.Header().Set("Cache-Control", "no-cache")
	w.WriteHeader(http.StatusOK)

	// Wake the condition loop when the client disconnects.
	ctx := r.Context()
	stopWake := make(chan struct{})
	defer close(stopWake)
	go func() {
		select {
		case <-ctx.Done():
			f.cond.Broadcast()
		case <-stopWake:
		}
	}()

	next := 0
	for {
		f.mu.Lock()
		for next >= len(f.events) && !f.closed && ctx.Err() == nil {
			f.cond.Wait()
		}
		pending := append([]JobEvent(nil), f.events[next:]...)
		closed := f.closed
		f.mu.Unlock()
		if ctx.Err() != nil {
			return
		}
		for _, ev := range pending {
			b, err := json.Marshal(ev)
			if err != nil {
				return
			}
			if _, err := fmt.Fprintf(w, "id: %d\nevent: %s\ndata: %s\n\n", ev.Seq, ev.Type, b); err != nil {
				return
			}
			next++
		}
		if canFlush {
			flusher.Flush()
		}
		if closed {
			f.mu.Lock()
			drained := next >= len(f.events)
			f.mu.Unlock()
			if drained {
				return
			}
		}
	}
}
