package serve

import (
	"fmt"
	"os"
	"path/filepath"
	"sync"
)

// Store is the result cache's storage backend: content-addressed blobs
// keyed by the hex digest of the canonical spec expression. Backends
// must be safe for concurrent use. Get misses are (nil, false, nil);
// an error return means the backend itself failed (disk fault,
// permission), which the server treats as a degraded cache, not a
// failed request.
type Store interface {
	Get(addr string) ([]byte, bool, error)
	Put(addr string, data []byte) error
	Close() error
}

// MemStore is an in-process Store. It is the default backend: fast,
// unbounded in principle but bounded in practice by the admission
// queue (a result is only as large as one manifest), and lost on
// restart — crash-safe resume comes from the runner checkpoint, not
// the cache.
type MemStore struct {
	mu sync.RWMutex
	m  map[string][]byte
}

// NewMemStore returns an empty in-memory store.
func NewMemStore() *MemStore {
	return &MemStore{m: make(map[string][]byte)}
}

// Get returns the stored bytes for addr.
func (s *MemStore) Get(addr string) ([]byte, bool, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	b, ok := s.m[addr]
	return b, ok, nil
}

// Put stores data under addr, replacing any previous value.
func (s *MemStore) Put(addr string, data []byte) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.m[addr] = append([]byte(nil), data...)
	return nil
}

// Len reports the number of stored results.
func (s *MemStore) Len() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return len(s.m)
}

// Close is a no-op.
func (s *MemStore) Close() error { return nil }

// DiskStore keeps one file per result under a directory, so cached
// results survive restarts. Writes go through a temp file and rename,
// so a crash mid-Put leaves either the old value or none — never a
// torn blob.
type DiskStore struct {
	dir string
}

// NewDiskStore creates (if needed) and opens a directory-backed store.
func NewDiskStore(dir string) (*DiskStore, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("serve: disk store: %w", err)
	}
	return &DiskStore{dir: dir}, nil
}

// path maps an addr to its file. Addrs are validated hex digests (see
// ValidAddr), so they are safe path components; path refuses anything
// else as a second line of defense.
func (s *DiskStore) path(addr string) (string, error) {
	if !ValidAddr(addr) {
		return "", fmt.Errorf("serve: invalid result address %q", addr)
	}
	return filepath.Join(s.dir, addr+".json"), nil
}

// Get reads the blob for addr; a missing file is a miss, not an error.
func (s *DiskStore) Get(addr string) ([]byte, bool, error) {
	p, err := s.path(addr)
	if err != nil {
		return nil, false, err
	}
	b, err := os.ReadFile(p)
	if os.IsNotExist(err) {
		return nil, false, nil
	}
	if err != nil {
		return nil, false, fmt.Errorf("serve: disk store get: %w", err)
	}
	return b, true, nil
}

// Put writes the blob atomically (temp file + rename).
func (s *DiskStore) Put(addr string, data []byte) error {
	p, err := s.path(addr)
	if err != nil {
		return err
	}
	tmp, err := os.CreateTemp(s.dir, addr+".tmp*")
	if err != nil {
		return fmt.Errorf("serve: disk store put: %w", err)
	}
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return fmt.Errorf("serve: disk store put: %w", err)
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmp.Name())
		return fmt.Errorf("serve: disk store put: %w", err)
	}
	if err := os.Rename(tmp.Name(), p); err != nil {
		os.Remove(tmp.Name())
		return fmt.Errorf("serve: disk store put: %w", err)
	}
	return nil
}

// Close is a no-op; every Put is already durable.
func (s *DiskStore) Close() error { return nil }
