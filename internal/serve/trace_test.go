package serve_test

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"sdbp/internal/obs"
	"sdbp/internal/serve"
)

// traceOf fetches and decodes a job's trace.
func traceOf(t *testing.T, ts *httptest.Server, addr string) []obs.SpanRecord {
	t.Helper()
	resp, body := get(t, ts, "/v1/traces/"+addr)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("trace fetch: HTTP %d: %s", resp.StatusCode, body)
	}
	var tb struct {
		Trace string           `json:"trace"`
		Spans []obs.SpanRecord `json:"spans"`
	}
	if err := json.Unmarshal(body, &tb); err != nil {
		t.Fatalf("trace body does not parse: %v\n%s", err, body)
	}
	if tb.Trace == "" {
		t.Error("trace has no ID")
	}
	return tb.Spans
}

// spanNames collects the names present in a trace.
func spanNames(spans []obs.SpanRecord) map[string]int {
	names := map[string]int{}
	for _, sp := range spans {
		names[sp.Name]++
	}
	return names
}

// TestJobTraceCompleteAndReconciles is the tentpole acceptance test: a
// real (tiny) simulation yields a complete trace — every pipeline
// stage present, parent links intact — whose stage spans sum-reconcile
// against the end-to-end job latency (CheckTrace).
func TestJobTraceCompleteAndReconciles(t *testing.T) {
	_, ts := newTestServer(t, quietCfg())
	resp, body := submit(t, ts, tinySpec)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("submit: HTTP %d: %s", resp.StatusCode, body)
	}
	addr := resp.Header.Get("X-Sdbpd-Addr")

	spans := traceOf(t, ts, addr)
	if err := serve.CheckTrace(spans); err != nil {
		t.Errorf("trace does not reconcile: %v\nspans: %+v", err, spans)
	}
	names := spanNames(spans)
	for _, want := range []string{
		"job", "stage:decode", "stage:cache_lookup", "stage:execute",
		"queue_wait", "coalesce", "run", "attempt", "store",
	} {
		if names[want] == 0 {
			t.Errorf("trace missing %q span: have %v", want, names)
		}
	}
	for _, sp := range spans {
		if sp.Name == "job" {
			if sp.Attrs["addr"] != addr || sp.Attrs["source"] != "miss" {
				t.Errorf("root attrs = %v, want addr=%s source=miss", sp.Attrs, addr)
			}
		}
		if sp.Name == "attempt" && sp.Attrs["outcome"] != "ok" {
			t.Errorf("attempt attrs = %v, want outcome=ok", sp.Attrs)
		}
	}
}

// TestCachedSubmissionTrace: a cache hit's trace is just decode +
// lookup under the root, and it still reconciles.
func TestCachedSubmissionTrace(t *testing.T) {
	_, ts := newTestServer(t, quietCfg())
	resp, _ := submit(t, ts, tinySpec)
	addr := resp.Header.Get("X-Sdbpd-Addr")
	resp2, _ := submit(t, ts, tinySpec)
	if src := resp2.Header.Get("X-Sdbpd-Cache"); src != "hit" {
		t.Fatalf("second submit source = %q, want hit", src)
	}

	spans := traceOf(t, ts, addr)
	if err := serve.CheckTrace(spans); err != nil {
		t.Errorf("cached trace does not reconcile: %v", err)
	}
	names := spanNames(spans)
	if names["job"] != 1 || names["stage:decode"] != 1 || names["stage:cache_lookup"] != 1 {
		t.Errorf("cached trace spans = %v", names)
	}
	if names["stage:execute"] != 0 {
		t.Errorf("cache hit grew an execute stage: %v", names)
	}
	for _, sp := range spans {
		if sp.Name == "job" && sp.Attrs["source"] != "hit" {
			t.Errorf("root source = %q, want hit", sp.Attrs["source"])
		}
	}
}

// TestTraceChromeExport: ?format=chrome renders a loadable trace-event
// document.
func TestTraceChromeExport(t *testing.T) {
	_, ts := newTestServer(t, quietCfg())
	resp, _ := submit(t, ts, tinySpec)
	addr := resp.Header.Get("X-Sdbpd-Addr")
	cresp, body := get(t, ts, "/v1/traces/"+addr+"?format=chrome")
	if cresp.StatusCode != http.StatusOK {
		t.Fatalf("chrome export: HTTP %d", cresp.StatusCode)
	}
	var doc struct {
		TraceEvents []json.RawMessage `json:"traceEvents"`
	}
	if err := json.Unmarshal(body, &doc); err != nil {
		t.Fatalf("chrome export is not valid JSON: %v", err)
	}
	if len(doc.TraceEvents) < 5 {
		t.Errorf("chrome export has %d events, want the full pipeline", len(doc.TraceEvents))
	}
}

// TestTraceErrors: addresses that are malformed or unknown.
func TestTraceErrors(t *testing.T) {
	_, ts := newTestServer(t, quietCfg())
	if resp, _ := get(t, ts, "/v1/traces/nothex"); resp.StatusCode != http.StatusBadRequest {
		t.Errorf("malformed addr: HTTP %d, want 400", resp.StatusCode)
	}
	unknown := serve.Addr("no such spec")
	if resp, _ := get(t, ts, "/v1/traces/"+unknown); resp.StatusCode != http.StatusNotFound {
		t.Errorf("unknown addr: HTTP %d, want 404", resp.StatusCode)
	}
}

// TestCheckTraceRejects drives the validator with broken traces.
func TestCheckTraceRejects(t *testing.T) {
	t0 := time.Now()
	ok := []obs.SpanRecord{
		{TraceID: "t1", ID: "1", Name: "job", Start: t0, Duration: 100 * time.Millisecond},
		{TraceID: "t1", ID: "2", Parent: "1", Name: "stage:decode", Start: t0, Duration: 40 * time.Millisecond},
		{TraceID: "t1", ID: "3", Parent: "1", Name: "stage:execute", Start: t0.Add(40 * time.Millisecond), Duration: 60 * time.Millisecond},
	}
	if err := serve.CheckTrace(ok); err != nil {
		t.Fatalf("valid trace rejected: %v", err)
	}
	broken := map[string]func([]obs.SpanRecord) []obs.SpanRecord{
		"empty":       func(s []obs.SpanRecord) []obs.SpanRecord { return nil },
		"no root":     func(s []obs.SpanRecord) []obs.SpanRecord { return s[1:] },
		"two roots":   func(s []obs.SpanRecord) []obs.SpanRecord { return append(s, obs.SpanRecord{TraceID: "t1", ID: "9", Name: "job2", Start: t0, Duration: time.Millisecond}) },
		"bad parent":  func(s []obs.SpanRecord) []obs.SpanRecord { c := clone(s); c[2].Parent = "404"; return c },
		"mixed trace": func(s []obs.SpanRecord) []obs.SpanRecord { c := clone(s); c[2].TraceID = "t2"; return c },
		"unended":     func(s []obs.SpanRecord) []obs.SpanRecord { c := clone(s); c[2].Duration = 0; return c },
		"escapes parent": func(s []obs.SpanRecord) []obs.SpanRecord {
			c := clone(s)
			c[2].Duration = 200 * time.Millisecond
			return c
		},
		"sum mismatch": func(s []obs.SpanRecord) []obs.SpanRecord {
			c := clone(s)
			c[2].Duration = 10 * time.Millisecond // stages cover 50ms of a 100ms job
			return c
		},
	}
	for name, mutate := range broken {
		t.Run(name, func(t *testing.T) {
			if err := serve.CheckTrace(mutate(ok)); err == nil {
				t.Error("broken trace accepted")
			}
		})
	}
}

func clone(s []obs.SpanRecord) []obs.SpanRecord {
	return append([]obs.SpanRecord(nil), s...)
}
