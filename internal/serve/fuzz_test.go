package serve_test

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"log"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"sdbp/internal/serve"
)

// FuzzSubmitDecode throws arbitrary bytes at the job-submission
// endpoint. Whatever arrives, the handler must not panic, must answer
// with one of its documented statuses, and must wrap every non-200 in
// the JSON error envelope. Execution is stubbed out, so the fuzzer
// explores the decode/resolve/admission surface, not the simulator.
func FuzzSubmitDecode(f *testing.F) {
	// Well-formed submissions.
	f.Add(`{"policy":"LRU","workloads":["456.hmmer"],"scale":0.01}`)
	f.Add(`{"policy":"Sampler","workloads":["subset"]}`)
	f.Add(`{"policy":"dbrb(base=random(seed=9),pred=sampler(sets=64))","mixes":["all"],"cores":4,"scale":0.1}`)
	// The FuzzParseSpec corpus, embedded where the policy registry
	// expression lands — the server hands this string to the same
	// parser, so its known-nasty seeds transfer.
	for _, expr := range []string{
		"policy=Sampler;workloads=subset",
		"policy=dbrb(base=random(seed=9),pred=sampler(sets=64));mixes=all;cores=4;llc=llc(kb=512,ways=8);scale=0.1",
		"policy==;;=",
		"workloads=,,,",
		"policy=lru;scale=1e309",
		"(((",
	} {
		enc, _ := json.Marshal(expr)
		f.Add(fmt.Sprintf(`{"policy":%s}`, enc))
	}
	// Malformed JSON, unknown fields, wrong types, pathological sizes.
	f.Add(``)
	f.Add(`{`)
	f.Add(`null`)
	f.Add(`[]`)
	f.Add(`{"policy":"LRU","bogus_field":1}`)
	f.Add(`{"policy":42}`)
	f.Add(`{"scale":-1}`)
	f.Add(`{"policy":"LRU","scale":1e309}`)
	f.Add(`{"policy":"` + strings.Repeat("(", 4096) + `"}`)

	cfg := serve.Config{
		Log:       log.New(io.Discard, "", 0),
		BatchWait: time.Millisecond,
		WrapJob: func(addr string, run func(context.Context) (serve.Result, error)) func(context.Context) (serve.Result, error) {
			return func(ctx context.Context) (serve.Result, error) {
				return serve.Result{Schema: serve.ResultSchema, Spec: "fuzz", Addr: addr}, nil
			}
		},
	}
	s := serve.New(cfg)
	f.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		s.Shutdown(ctx)
	})
	handler := s.Handler()

	f.Fuzz(func(t *testing.T, body string) {
		rec := httptest.NewRecorder()
		req := httptest.NewRequest("POST", "/v1/jobs", strings.NewReader(body))
		handler.ServeHTTP(rec, req)

		switch rec.Code {
		case 200, 400, 413, 429, 503:
		default:
			t.Fatalf("submission answered HTTP %d, outside the documented set {200,400,413,429,503}\nbody: %q", rec.Code, body)
		}
		if rec.Code != 200 {
			var e struct {
				Error string `json:"error"`
			}
			if err := json.Unmarshal(rec.Body.Bytes(), &e); err != nil || e.Error == "" {
				t.Fatalf("HTTP %d response is not the JSON error envelope: %q", rec.Code, rec.Body.String())
			}
		} else if !bytes.Contains(rec.Body.Bytes(), []byte(`"schema"`)) {
			t.Fatalf("HTTP 200 without a schema-tagged manifest: %q", rec.Body.String())
		}
	})
}
