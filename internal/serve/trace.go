package serve

import (
	"encoding/json"
	"fmt"
	"net/http"
	"sync"
	"time"

	"sdbp/internal/obs"
	"sdbp/internal/probe"
)

// Job tracing: every submission owns one obs.Trace whose root "job"
// span breaks into contiguous stage children (decode, cache_lookup,
// execute), with the execute stage subdivided by the pipeline
// (queue_wait, coalesce, run with per-attempt children, store). The
// trace is registered under the job's content address as soon as the
// address is known — a trace fetched mid-flight shows the stages
// completed so far — and the root span ends just before the response
// is written, so a finished job's trace reconciles against its
// end-to-end latency (see CheckTrace).

// traceStore retains the most recent trace per address, bounded by
// FIFO eviction so a long-running service cannot accumulate traces
// without limit.
type traceStore struct {
	mu    sync.Mutex
	max   int
	m     map[string]*obs.Trace
	order []string // insertion order of live addresses, oldest first
}

func newTraceStore(max int) *traceStore {
	return &traceStore{max: max, m: make(map[string]*obs.Trace)}
}

// put registers addr's trace, replacing any previous submission's and
// evicting the oldest distinct address past the cap.
func (ts *traceStore) put(addr string, tr *obs.Trace) {
	if ts == nil || tr == nil {
		return
	}
	ts.mu.Lock()
	defer ts.mu.Unlock()
	if _, ok := ts.m[addr]; !ok {
		ts.order = append(ts.order, addr)
		for len(ts.order) > ts.max {
			delete(ts.m, ts.order[0])
			ts.order = ts.order[1:]
		}
	}
	ts.m[addr] = tr
}

func (ts *traceStore) get(addr string) (*obs.Trace, bool) {
	if ts == nil {
		return nil, false
	}
	ts.mu.Lock()
	defer ts.mu.Unlock()
	tr, ok := ts.m[addr]
	return tr, ok
}

// traceBody is the JSON shape of GET /v1/traces/{addr}.
type traceBody struct {
	Trace string           `json:"trace"`
	Addr  string           `json:"addr"`
	Spans []obs.SpanRecord `json:"spans"`
}

// handleTrace serves a job's trace: the span list as JSON, or a Chrome
// trace-event document with ?format=chrome.
func (s *Server) handleTrace(w http.ResponseWriter, r *http.Request) {
	addr := r.PathValue("addr")
	if !ValidAddr(addr) {
		s.writeError(w, http.StatusBadRequest, "", fmt.Errorf("serve: %q is not a result address (64 hex digits)", addr))
		return
	}
	tr, ok := s.traces.get(addr)
	if !ok {
		s.writeError(w, http.StatusNotFound, addr, fmt.Errorf("serve: no trace for %s", addr))
		return
	}
	spans := tr.Spans()
	if r.URL.Query().Get("format") == "chrome" {
		w.Header().Set("Content-Type", "application/json")
		if err := probe.WriteSpanTraceEvents(w, spans); err != nil {
			s.cfg.Log.Printf("serve: trace export %s: %v", addr, err)
		}
		return
	}
	w.Header().Set("Content-Type", "application/json")
	b, err := json.MarshalIndent(traceBody{Trace: tr.ID(), Addr: addr, Spans: spans}, "", "  ")
	if err != nil {
		s.writeError(w, http.StatusInternalServerError, addr, err)
		return
	}
	w.Write(append(b, '\n'))
}

// CheckTrace validates a completed job trace: exactly one root span,
// every span parented inside the trace and contained in its parent's
// interval, and the root's direct stage children sum-reconciling
// against the root's end-to-end duration. The stages are contiguous by
// construction, so the tolerance only absorbs scheduling jitter and
// the handler's own bookkeeping between stages.
func CheckTrace(spans []obs.SpanRecord) error {
	if len(spans) == 0 {
		return fmt.Errorf("serve: empty trace")
	}
	byID := make(map[string]obs.SpanRecord, len(spans))
	var root obs.SpanRecord
	roots := 0
	for _, sp := range spans {
		if sp.ID == "" {
			return fmt.Errorf("serve: span %q has no ID", sp.Name)
		}
		if _, dup := byID[sp.ID]; dup {
			return fmt.Errorf("serve: duplicate span ID %s", sp.ID)
		}
		byID[sp.ID] = sp
		if sp.TraceID != spans[0].TraceID {
			return fmt.Errorf("serve: span %q belongs to trace %s, not %s", sp.Name, sp.TraceID, spans[0].TraceID)
		}
		if sp.Parent == "" {
			root = sp
			roots++
		}
	}
	if roots != 1 {
		return fmt.Errorf("serve: trace has %d root spans, want exactly 1", roots)
	}
	const slack = 2 * time.Millisecond
	var stageSum time.Duration
	for _, sp := range spans {
		if sp.Parent == "" {
			continue
		}
		parent, ok := byID[sp.Parent]
		if !ok {
			return fmt.Errorf("serve: span %q parent %s not in trace", sp.Name, sp.Parent)
		}
		if sp.Duration <= 0 {
			return fmt.Errorf("serve: span %q never ended", sp.Name)
		}
		if sp.Start.Before(parent.Start.Add(-slack)) {
			return fmt.Errorf("serve: span %q starts before its parent %q", sp.Name, parent.Name)
		}
		if end, pend := sp.Start.Add(sp.Duration), parent.Start.Add(parent.Duration); end.After(pend.Add(slack)) {
			return fmt.Errorf("serve: span %q ends %v after its parent %q", sp.Name, end.Sub(pend), parent.Name)
		}
		if sp.Parent == root.ID {
			stageSum += sp.Duration
		}
	}
	if root.Duration <= 0 {
		return fmt.Errorf("serve: root span never ended")
	}
	if stageSum == 0 {
		return fmt.Errorf("serve: root span has no stage children")
	}
	// Sum-reconciliation: stage spans cover the job end to end.
	diff := root.Duration - stageSum
	if diff < 0 {
		diff = -diff
	}
	if tol := 10*time.Millisecond + root.Duration/10; diff > tol {
		return fmt.Errorf("serve: stage spans sum to %v but the job took %v (diff %v > tolerance %v)",
			stageSum, root.Duration, diff, tol)
	}
	return nil
}
