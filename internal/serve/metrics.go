package serve

// Metric names the server reports under, alongside the runner_* job
// accounting and sim_* aggregates that internal/runner and
// internal/sim already publish into the same registry. The /metrics
// endpoint serves the whole registry as one obs.Snapshot, so a scrape
// sees the full pipeline: HTTP intake, admission, coalescing, cache,
// singleflight, job execution and simulated work.
const (
	// CtrHTTPRequests counts every request the handler saw.
	CtrHTTPRequests = "serve_http_requests"
	// CtrSubmits counts well-formed job submissions (after decode and
	// resolve; malformed requests are CtrBadRequests).
	CtrSubmits = "serve_submits"
	// CtrBadRequests counts submissions rejected at decode/resolve.
	CtrBadRequests = "serve_bad_requests"
	// CtrCacheHits counts submissions answered from the result store.
	CtrCacheHits = "serve_cache_hits"
	// CtrCacheMisses counts submissions that had to go to the pipeline.
	CtrCacheMisses = "serve_cache_misses"
	// CtrSingleflightShared counts submissions that joined an
	// in-flight identical job instead of enqueueing their own: N
	// concurrent identical submissions record N-1 here and exactly one
	// simulation.
	CtrSingleflightShared = "serve_singleflight_shared"
	// CtrQueueRejects counts submissions bounced by a full admission
	// queue (HTTP 429).
	CtrQueueRejects = "serve_queue_rejects"
	// CtrShutdownRejects counts submissions refused or abandoned
	// because the server was draining (HTTP 503).
	CtrShutdownRejects = "serve_shutdown_rejects"
	// CtrBatches counts executed coalesced batches; CtrBatchJobs the
	// tasks inside them, so CtrBatchJobs/CtrBatches is the mean
	// coalesce factor.
	CtrBatches   = "serve_batches"
	CtrBatchJobs = "serve_batch_jobs"
	// CtrStoreErrors counts storage-backend failures the server
	// absorbed (degraded cache, request still served).
	CtrStoreErrors = "serve_store_errors"
	// GaugeQueueDepth is the admission queue's depth at scrape time.
	GaugeQueueDepth = "serve_queue_depth"
)
