// Package serve is the simulation service behind cmd/sdbpd: it turns
// the repository's batch evaluation machinery (declarative exp.Spec
// experiments executed through the fault-tolerant internal/runner
// pool) into a long-running HTTP service that stays correct and
// responsive under overload, faults and restarts.
//
// A submission flows through a fixed pipeline, every stage of which is
// bounded:
//
//	decode → resolve → content address → result cache
//	       → singleflight → bounded admission queue
//	       → coalescing batcher → runner pool → cache + checkpoint
//
//   - The canonical spec expression (exp.Resolved.String) gives every
//     experiment an exact content address; identical submissions — in
//     any JSON spelling — share one cached result.
//   - Concurrent identical submissions collapse in the singleflight
//     layer: N in-flight duplicates cost one simulation.
//   - Distinct submissions wait in a bounded admission queue; a full
//     queue answers 429 + Retry-After instead of growing goroutines.
//   - The batcher coalesces whatever arrives within a small max-wait
//     window into one runner.Run call, inheriting the runner's panic
//     isolation, per-job timeout, retry/backoff and checkpoint
//     journaling.
//   - Shutdown drains: admission closes, queued work settles with 503,
//     in-flight simulations finish and land in the JSONL checkpoint,
//     so a restarted server resumes byte-identically.
package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"log"
	"net/http"
	"strconv"
	"strings"
	"sync/atomic"
	"time"

	"sdbp/internal/exp"
	"sdbp/internal/obs"
	"sdbp/internal/runner"
)

// Config tunes a Server. The zero value is usable: every field has a
// serving-grade default.
type Config struct {
	// Queue bounds the admission queue; 0 means 64. A full queue is
	// explicit backpressure: 429 + Retry-After.
	Queue int
	// MaxBatch caps a coalesced batch; 0 means 16.
	MaxBatch int
	// BatchWait is the coalescing window measured from the first task
	// of a batch; 0 means 10ms.
	BatchWait time.Duration
	// Batches bounds concurrently executing batches; 0 means 2.
	Batches int
	// Workers is the runner pool size per batch; 0 means NumCPU.
	Workers int
	// JobTimeout bounds each job attempt; 0 means no limit.
	JobTimeout time.Duration
	// Retries is the per-job retry budget for transient failures.
	Retries int
	// MaxBody caps a submission body in bytes; 0 means 1MiB.
	MaxBody int64
	// RetryAfter is the hint returned with 429/503; 0 means 1s.
	RetryAfter time.Duration
	// Store is the result cache backend; nil means NewMemStore.
	Store Store
	// Checkpoint, when non-nil, journals every completed job for
	// crash-safe resume; the server does not close it.
	Checkpoint *runner.Checkpoint
	// Traces bounds retained job traces (and job event feeds); 0 means
	// 256. The oldest address is evicted first.
	Traces int
	// Obs receives all metrics; nil means a fresh registry.
	Obs *obs.Registry
	// Log receives degradation warnings; nil means log.Default().
	Log *log.Logger
	// WrapJob, when non-nil, wraps every job body before execution.
	// It exists for fault injection in tests (panics, slowness,
	// canned results) and is not used in production.
	WrapJob func(addr string, run func(ctx context.Context) (Result, error)) func(ctx context.Context) (Result, error)
}

func (c Config) withDefaults() Config {
	if c.Queue <= 0 {
		c.Queue = 64
	}
	if c.MaxBatch <= 0 {
		c.MaxBatch = 16
	}
	if c.BatchWait <= 0 {
		c.BatchWait = 10 * time.Millisecond
	}
	if c.Batches <= 0 {
		c.Batches = 2
	}
	if c.MaxBody <= 0 {
		c.MaxBody = 1 << 20
	}
	if c.RetryAfter <= 0 {
		c.RetryAfter = time.Second
	}
	if c.Traces <= 0 {
		c.Traces = 256
	}
	if c.Store == nil {
		c.Store = NewMemStore()
	}
	if c.Obs == nil {
		c.Obs = obs.NewRegistry()
	}
	if c.Log == nil {
		c.Log = log.Default()
	}
	return c
}

// Server is the simulation service. Create with New, expose Handler
// over any http.Server, stop with Shutdown.
type Server struct {
	cfg     Config
	reg     *obs.Registry
	store   Store
	flights *flightGroup
	q       *admission
	b       *batcher
	traces  *traceStore
	events  *eventBroker

	ready   atomic.Bool
	runCtx  context.Context
	cancel  context.CancelFunc
	started time.Time
}

// New builds and starts a server's pipeline (the batcher goroutine);
// the caller still owns serving its Handler.
func New(cfg Config) *Server {
	cfg = cfg.withDefaults()
	s := &Server{
		cfg:     cfg,
		reg:     cfg.Obs,
		store:   cfg.Store,
		flights: newFlightGroup(),
		q:       newAdmission(cfg.Queue),
		traces:  newTraceStore(cfg.Traces),
		events:  newEventBroker(cfg.Traces),
		started: time.Now(),
	}
	s.runCtx, s.cancel = context.WithCancel(context.Background())
	s.b = &batcher{
		q:        s.q,
		maxWait:  cfg.BatchWait,
		maxBatch: cfg.MaxBatch,
		runCtx:   s.runCtx,
		opts: runner.Options{
			Workers:    cfg.Workers,
			Timeout:    cfg.JobTimeout,
			Retries:    cfg.Retries,
			Checkpoint: cfg.Checkpoint,
			Obs:        cfg.Obs,
		},
		reg:     cfg.Obs,
		store:   cfg.Store,
		wrapJob: cfg.WrapJob,
		warnf:   cfg.Log.Printf,
		events:  s.events,
		sem:     make(chan struct{}, cfg.Batches),
	}
	s.b.start()
	s.ready.Store(true)
	return s
}

// Shutdown drains the server: admission closes immediately (new work
// gets 503 + Retry-After; cached results are still served), queued
// tasks settle with 503, executing batches finish their in-flight
// simulations — journaling each into the checkpoint — and queued jobs
// inside them drain. It returns ctx.Err() if draining outlives the
// deadline; the pipeline still shuts down behind it.
func (s *Server) Shutdown(ctx context.Context) error {
	if !s.ready.CompareAndSwap(true, false) {
		return nil
	}
	s.q.close()
	err := s.b.shutdown(ctx)
	// Cancel the run context only once the drain has settled: canceling
	// it earlier would abandon the in-flight batch mid-simulation (the
	// runner observes cancellation immediately), turning the drain
	// guarantee into a 503. After a drain timeout this cancel is what
	// force-abandons the stragglers.
	s.cancel()
	return err
}

// Handler returns the server's HTTP interface.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/jobs", s.handleSubmit)
	mux.HandleFunc("GET /v1/results/{addr}", s.handleResult)
	mux.HandleFunc("GET /v1/traces/{addr}", s.handleTrace)
	mux.HandleFunc("GET /v1/jobs/{addr}/events", s.handleEvents)
	mux.HandleFunc("GET /healthz", s.handleHealthz)
	mux.HandleFunc("GET /readyz", s.handleReadyz)
	mux.HandleFunc("GET /metrics", s.handleMetrics)
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		s.reg.Counter(CtrHTTPRequests).Inc()
		mux.ServeHTTP(w, r)
	})
}

// errorBody is the JSON envelope for every non-200 response.
type errorBody struct {
	Error string `json:"error"`
	// Addr is the submission's content address when it resolved far
	// enough to have one.
	Addr string `json:"addr,omitempty"`
	// RetryAfterSeconds mirrors the Retry-After header on 429/503.
	RetryAfterSeconds int `json:"retry_after_seconds,omitempty"`
}

func (s *Server) writeError(w http.ResponseWriter, status int, addr string, err error) {
	body := errorBody{Error: err.Error(), Addr: addr}
	if status == http.StatusTooManyRequests || status == http.StatusServiceUnavailable {
		secs := int(s.cfg.RetryAfter / time.Second)
		if secs < 1 {
			secs = 1
		}
		w.Header().Set("Retry-After", strconv.Itoa(secs))
		body.RetryAfterSeconds = secs
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	b, _ := json.Marshal(body)
	w.Write(append(b, '\n'))
}

// handleSubmit is the job intake: decode strictly, resolve to the
// canonical spec, and answer from the cache, an in-flight duplicate,
// or a freshly admitted task — in that order, cheapest first. The
// whole path runs under one job trace whose contiguous stage spans
// (decode, cache_lookup, execute) reconcile against the root span —
// which ends immediately before the response is written.
func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	tr, root := obs.NewTrace("job")
	decSpan := root.StartChild("stage:decode")
	var spec exp.Spec
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, s.cfg.MaxBody))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&spec); err != nil {
		decSpan.End()
		root.End()
		s.reg.Counter(CtrBadRequests).Inc()
		var tooBig *http.MaxBytesError
		if errors.As(err, &tooBig) {
			s.writeError(w, http.StatusRequestEntityTooLarge, "", err)
			return
		}
		s.writeError(w, http.StatusBadRequest, "", fmt.Errorf("decoding spec: %w", err))
		return
	}
	resolved, err := spec.Resolve()
	if err != nil {
		decSpan.End()
		root.End()
		s.reg.Counter(CtrBadRequests).Inc()
		s.writeError(w, http.StatusBadRequest, "", err)
		return
	}
	canonical := resolved.String()
	addr := Addr(canonical)
	decSpan.End()
	root.SetAttr("addr", addr)
	s.reg.Counter(CtrSubmits).Inc()
	w.Header().Set("X-Sdbpd-Addr", addr)
	// Register the trace and open the event feed as soon as the address
	// exists: a mid-flight GET /v1/traces/{addr} sees the stages so far,
	// and watchers get the full lifecycle from "submitted" on.
	s.traces.put(addr, tr)
	s.events.submitted(addr)

	lookSpan := root.StartChild("stage:cache_lookup")
	data, ok := s.cacheGet(addr)
	lookSpan.End()
	if ok {
		s.reg.Counter(CtrCacheHits).Inc()
		root.SetAttr("source", "hit")
		root.End()
		s.events.publish(addr, "cached", "", 0, 0)
		s.events.finish(addr, "done", "")
		s.writeResult(w, data, "hit")
		return
	}
	s.reg.Counter(CtrCacheMisses).Inc()

	if !s.ready.Load() {
		root.SetAttr("error", errShuttingDown.Error())
		root.End()
		s.reg.Counter(CtrShutdownRejects).Inc()
		s.events.finish(addr, "failed", errShuttingDown.Error())
		s.writeError(w, http.StatusServiceUnavailable, addr, errShuttingDown)
		return
	}

	execSpan := root.StartChild("stage:execute")
	data, err, joined := s.flights.Do(addr, func() ([]byte, error) {
		// A flight for this address may have completed and cached
		// between our miss and taking the flight lock; counting it as a
		// hit keeps the invariant that N identical concurrent
		// submissions record exactly one simulation and N-1
		// cache/singleflight hits, however the race lands.
		if data, ok := s.cacheGet(addr); ok {
			s.reg.Counter(CtrCacheHits).Inc()
			execSpan.SetAttr("source", "cache-race")
			return data, nil
		}
		t := &task{addr: addr, spec: canonical, resolved: resolved, done: make(chan struct{}),
			exec: execSpan}
		t.queue = execSpan.StartChild("queue_wait")
		// Publish before the push: once the task is in the channel the
		// batcher races us, and "queued" must precede its "coalesced".
		s.events.publish(addr, "queued", "", 0, 0)
		if err := s.q.push(t); err != nil {
			t.queue.SetAttr("error", err.Error())
			t.queue.End()
			return nil, err
		}
		<-t.done
		return t.val, t.err
	})
	if joined {
		s.reg.Counter(CtrSingleflightShared).Inc()
		execSpan.SetAttr("joined", "true")
	}
	execSpan.End()
	switch {
	case err == nil:
		source := "miss"
		if joined {
			source = "flight"
		}
		root.SetAttr("source", source)
		root.End()
		s.events.finish(addr, "done", "")
		s.writeResult(w, data, source)
	case errors.Is(err, errQueueFull):
		root.SetAttr("error", err.Error())
		root.End()
		s.reg.Counter(CtrQueueRejects).Inc()
		s.events.finish(addr, "failed", err.Error())
		s.writeError(w, http.StatusTooManyRequests, addr, err)
	case errors.Is(err, errShuttingDown), errors.Is(err, context.Canceled):
		root.SetAttr("error", errShuttingDown.Error())
		root.End()
		s.reg.Counter(CtrShutdownRejects).Inc()
		s.events.finish(addr, "failed", errShuttingDown.Error())
		s.writeError(w, http.StatusServiceUnavailable, addr, errShuttingDown)
	default:
		root.SetAttr("error", err.Error())
		root.End()
		s.events.finish(addr, "failed", err.Error())
		s.writeError(w, http.StatusInternalServerError, addr, err)
	}
}

// cacheGet consults the store, absorbing backend failures as misses
// (degraded cache, the pipeline recomputes).
func (s *Server) cacheGet(addr string) ([]byte, bool) {
	data, ok, err := s.store.Get(addr)
	if err != nil {
		s.reg.Counter(CtrStoreErrors).Inc()
		s.cfg.Log.Printf("serve: cache get %s: %v", addr, err)
		return nil, false
	}
	return data, ok
}

func (s *Server) writeResult(w http.ResponseWriter, data []byte, source string) {
	w.Header().Set("Content-Type", "application/json")
	w.Header().Set("X-Sdbpd-Cache", source)
	w.Write(data)
}

// handleResult serves a cached manifest by content address; it works
// during drain too, so pollers can pick up results a dying server
// finished.
func (s *Server) handleResult(w http.ResponseWriter, r *http.Request) {
	addr := r.PathValue("addr")
	if !ValidAddr(addr) {
		s.writeError(w, http.StatusBadRequest, "", fmt.Errorf("serve: %q is not a result address (64 hex digits)", addr))
		return
	}
	data, ok := s.cacheGet(addr)
	if !ok {
		s.writeError(w, http.StatusNotFound, addr, fmt.Errorf("serve: no result for %s", addr))
		return
	}
	s.writeResult(w, data, "hit")
}

// handleHealthz answers 200 while the process lives — liveness only.
func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain")
	fmt.Fprintln(w, "ok")
}

// handleReadyz answers 200 while the server accepts new work and 503
// once draining, so load balancers stop routing before shutdown.
func (s *Server) handleReadyz(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain")
	if !s.ready.Load() {
		w.WriteHeader(http.StatusServiceUnavailable)
		fmt.Fprintln(w, "draining")
		return
	}
	fmt.Fprintln(w, "ready")
}

// handleMetrics serves the registry, content-negotiated: the JSON
// obs.Snapshot by default (the original wire format, kept for existing
// consumers), or Prometheus text exposition when the client asks for
// text/plain or openmetrics — or forces it with ?format=prom.
func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	s.reg.Gauge(GaugeQueueDepth).Set(float64(s.q.depth()))
	snap := s.reg.Snapshot()
	if wantsPrometheus(r) {
		var buf bytes.Buffer
		if err := obs.WritePrometheus(&buf, snap); err != nil {
			s.writeError(w, http.StatusInternalServerError, "", err)
			return
		}
		w.Header().Set("Content-Type", obs.ContentTypePrometheus)
		w.Write(buf.Bytes())
		return
	}
	w.Header().Set("Content-Type", "application/json")
	b, err := json.MarshalIndent(snap, "", "  ")
	if err != nil {
		s.writeError(w, http.StatusInternalServerError, "", err)
		return
	}
	w.Write(append(b, '\n'))
}

// wantsPrometheus decides the /metrics representation: explicit
// ?format=prom wins, then an Accept header naming text/plain or an
// openmetrics type (a Prometheus scraper); everything else — including
// no Accept at all — stays JSON.
func wantsPrometheus(r *http.Request) bool {
	switch r.URL.Query().Get("format") {
	case "prom", "prometheus":
		return true
	case "json":
		return false
	}
	accept := r.Header.Get("Accept")
	return strings.Contains(accept, "text/plain") || strings.Contains(accept, "openmetrics")
}

// Registry exposes the server's metrics registry (for embedding tools
// and tests).
func (s *Server) Registry() *obs.Registry { return s.reg }
