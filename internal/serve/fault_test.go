package serve_test

// Fault-injection suite: every degradation path the service promises
// is provoked deliberately and its blast radius asserted — queue
// overload (429, no goroutine growth), a panicking job (fails alone),
// storage-write failures (cache degrades, requests still served),
// shutdown mid-job (in-flight drains, queued work 503s), and a crash
// followed by a checkpoint resume (byte-identical manifest, no
// re-simulation).

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"runtime"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"sdbp/internal/exp"
	"sdbp/internal/obs"
	"sdbp/internal/runner"
	"sdbp/internal/serve"
)

// specN builds the N-th distinct valid submission body (distinct
// canonical specs, so no coalescing by address).
func specN(n int) string {
	return fmt.Sprintf(`{"policy":"LRU","workloads":["456.hmmer"],"scale":%g}`, 0.01+float64(n)*0.001)
}

// waitCounter polls a registry counter until it reaches want.
func waitCounter(t *testing.T, reg *obs.Registry, name string, want uint64) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for reg.CounterValue(name) < want {
		if time.Now().After(deadline) {
			t.Fatalf("counter %s = %d, want >= %d (timeout)", name, reg.CounterValue(name), want)
		}
		time.Sleep(time.Millisecond)
	}
}

// TestQueueFullBackpressure fills the pipeline — one executing batch,
// a full admission queue — then hammers the handler directly with
// distinct submissions. Every one must bounce as 429 + Retry-After
// without spawning pipeline goroutines: backpressure is a rejected
// request, not a parked one.
func TestQueueFullBackpressure(t *testing.T) {
	release := make(chan struct{})
	var execs atomic.Int64
	cfg := quietCfg()
	cfg.Queue = 2
	cfg.Batches = 1
	cfg.MaxBatch = 1
	cfg.WrapJob = func(addr string, run func(context.Context) (serve.Result, error)) func(context.Context) (serve.Result, error) {
		return func(ctx context.Context) (serve.Result, error) {
			execs.Add(1)
			<-release
			return serve.Result{Schema: serve.ResultSchema, Spec: "blocked", Addr: addr}, nil
		}
	}
	s, ts := newTestServer(t, cfg)
	reg := s.Registry()

	// Occupy the only batch slot, then fill the queue behind it. The
	// batcher immediately pulls one task off the queue while forming
	// its next batch, so it takes queue capacity + 1 waiting
	// submissions to saturate the intake.
	var wg sync.WaitGroup
	results := make([]int, 4)
	for i := 0; i < 4; i++ {
		i := i
		wg.Add(1)
		go func() {
			defer wg.Done()
			resp, _ := submit(t, ts, specN(i))
			results[i] = resp.StatusCode
		}()
		if i == 0 {
			waitCounter(t, reg, serve.CtrBatches, 1) // first job executing
		}
	}
	// Wait until the queue is physically full. The depth gauge is set
	// at each /metrics scrape, so scrape-then-read until it reports the
	// configured capacity; probing with a real submission instead would
	// risk being admitted — and blocking — in the window before the
	// four pipeline goroutines finish pushing.
	deadline := time.Now().Add(10 * time.Second)
	for {
		get(t, ts, "/metrics")
		if reg.Gauge(serve.GaugeQueueDepth).Value() == float64(cfg.Queue) {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("queue never saturated")
		}
		time.Sleep(time.Millisecond)
	}

	// Hammer the saturated server through the handler directly (no
	// network, no server-side conn goroutines) and watch goroutines.
	handler := s.Handler()
	before := runtime.NumGoroutine()
	const rejects = 50
	for i := 0; i < rejects; i++ {
		rec := httptest.NewRecorder()
		req := httptest.NewRequest("POST", "/v1/jobs", strings.NewReader(specN(200+i)))
		handler.ServeHTTP(rec, req)
		if rec.Code != http.StatusTooManyRequests {
			t.Fatalf("submission %d under overload: HTTP %d, want 429", i, rec.Code)
		}
		if rec.Header().Get("Retry-After") == "" {
			t.Fatal("429 without Retry-After")
		}
	}
	after := runtime.NumGoroutine()
	if growth := after - before; growth > 3 {
		t.Errorf("goroutines grew by %d across %d rejected submissions, want ~0", growth, rejects)
	}
	if got := reg.CounterValue(serve.CtrQueueRejects); got < rejects {
		t.Errorf("queue rejects = %d, want >= %d", got, rejects)
	}

	close(release)
	wg.Wait()
	for i, code := range results {
		if code != http.StatusOK {
			t.Errorf("admitted submission %d: HTTP %d, want 200", i, code)
		}
	}
	if n := execs.Load(); n != 4 {
		t.Errorf("executions = %d, want 4 (the admitted jobs, none of the rejected)", n)
	}
}

// TestPanicFailsOnlyThatJob coalesces a panicking job and a healthy
// one into a single batch; the panic must come back as that job's 500
// while the healthy job completes normally.
func TestPanicFailsOnlyThatJob(t *testing.T) {
	poisonAddr := make(map[string]bool)
	var mu sync.Mutex
	cfg := quietCfg()
	cfg.MaxBatch = 2
	cfg.BatchWait = 200 * time.Millisecond // wide window: both jobs coalesce
	cfg.WrapJob = func(addr string, run func(context.Context) (serve.Result, error)) func(context.Context) (serve.Result, error) {
		return func(ctx context.Context) (serve.Result, error) {
			mu.Lock()
			poisoned := poisonAddr[addr]
			mu.Unlock()
			if poisoned {
				panic("injected fault: simulated predictor bug")
			}
			return serve.Result{Schema: serve.ResultSchema, Spec: "ok", Addr: addr}, nil
		}
	}
	s, ts := newTestServer(t, cfg)

	poison, healthy := specN(1), specN(2)
	mu.Lock()
	poisonAddr[addrOf(t, poison)] = true
	mu.Unlock()

	var wg sync.WaitGroup
	var poisonCode, healthyCode int
	var poisonBody []byte
	wg.Add(2)
	go func() {
		defer wg.Done()
		resp, body := submit(t, ts, poison)
		poisonCode, poisonBody = resp.StatusCode, body
	}()
	go func() {
		defer wg.Done()
		resp, _ := submit(t, ts, healthy)
		healthyCode = resp.StatusCode
	}()
	wg.Wait()

	if poisonCode != http.StatusInternalServerError {
		t.Errorf("poisoned job: HTTP %d, want 500", poisonCode)
	}
	if !bytes.Contains(poisonBody, []byte("panic")) {
		t.Errorf("poisoned job error does not mention the panic: %s", poisonBody)
	}
	if healthyCode != http.StatusOK {
		t.Errorf("healthy job in the same batch: HTTP %d, want 200", healthyCode)
	}
	reg := s.Registry()
	if got := reg.CounterValue(obs.CtrJobPanics); got != 1 {
		t.Errorf("recovered panics = %d, want 1", got)
	}
	if got := reg.CounterValue(obs.CtrJobsSucceeded); got != 1 {
		t.Errorf("succeeded jobs = %d, want 1", got)
	}
	// The server itself survived.
	if resp, _ := get(t, ts, "/healthz"); resp.StatusCode != http.StatusOK {
		t.Error("server unhealthy after a job panic")
	}
}

// addrOf resolves a submission body to its content address offline,
// exactly as the server will: strict decode, resolve to the canonical
// spec, hash.
func addrOf(t *testing.T, body string) string {
	t.Helper()
	var spec exp.Spec
	if err := json.Unmarshal([]byte(body), &spec); err != nil {
		t.Fatal(err)
	}
	resolved, err := spec.Resolve()
	if err != nil {
		t.Fatal(err)
	}
	return serve.Addr(resolved.String())
}

// failingStore wraps a Store with injected write and/or read faults.
type failingStore struct {
	inner    serve.Store
	failPut  atomic.Bool
	failGet  atomic.Bool
	putFails atomic.Int64
}

func (f *failingStore) Get(addr string) ([]byte, bool, error) {
	if f.failGet.Load() {
		return nil, false, errors.New("injected fault: store read error")
	}
	return f.inner.Get(addr)
}

func (f *failingStore) Put(addr string, data []byte) error {
	if f.failPut.Load() {
		f.putFails.Add(1)
		return errors.New("injected fault: store write error")
	}
	return f.inner.Put(addr, data)
}

func (f *failingStore) Close() error { return f.inner.Close() }

// TestStorageFailureDegradesGracefully: a broken cache backend must
// cost recomputation, never correctness or availability.
func TestStorageFailureDegradesGracefully(t *testing.T) {
	fs := &failingStore{inner: serve.NewMemStore()}
	fs.failPut.Store(true)
	var execs atomic.Int64
	cfg := quietCfg()
	cfg.Store = fs
	cfg.WrapJob = cannedJob(&execs)
	s, ts := newTestServer(t, cfg)

	// Writes failing: every submission still gets its manifest, each
	// recomputes (nothing sticks in the cache).
	resp1, body1 := submit(t, ts, specN(1))
	resp2, body2 := submit(t, ts, specN(1))
	if resp1.StatusCode != 200 || resp2.StatusCode != 200 {
		t.Fatalf("HTTP %d, %d under store write faults, want 200s", resp1.StatusCode, resp2.StatusCode)
	}
	if !bytes.Equal(body1, body2) {
		t.Error("recomputed manifest differs")
	}
	if n := execs.Load(); n != 2 {
		t.Errorf("executions = %d, want 2 (cache degraded to recompute)", n)
	}
	if fs.putFails.Load() == 0 {
		t.Error("injected Put fault never hit")
	}
	if got := s.Registry().CounterValue(serve.CtrStoreErrors); got < 2 {
		t.Errorf("store errors counted = %d, want >= 2", got)
	}

	// Reads failing too: still served, still correct.
	fs.failGet.Store(true)
	resp3, body3 := submit(t, ts, specN(1))
	if resp3.StatusCode != 200 || !bytes.Equal(body3, body1) {
		t.Errorf("HTTP %d under read+write faults (identical=%t), want 200 and identical", resp3.StatusCode, bytes.Equal(body3, body1))
	}

	// Heal the store: caching resumes.
	fs.failPut.Store(false)
	fs.failGet.Store(false)
	submit(t, ts, specN(1))
	resp5, _ := submit(t, ts, specN(1))
	if src := resp5.Header.Get("X-Sdbpd-Cache"); src != "hit" {
		t.Errorf("after heal, cache source = %q, want hit", src)
	}
}

// TestShutdownDrainsInFlight: during shutdown the executing job
// finishes and answers 200, the queued job answers 503, and new work
// is refused — then the server is fully stopped.
func TestShutdownDrainsInFlight(t *testing.T) {
	started := make(chan struct{}, 1)
	release := make(chan struct{})
	cfg := quietCfg()
	cfg.Batches = 1
	cfg.MaxBatch = 1
	cfg.Queue = 4
	cfg.WrapJob = func(addr string, run func(context.Context) (serve.Result, error)) func(context.Context) (serve.Result, error) {
		return func(ctx context.Context) (serve.Result, error) {
			select {
			case started <- struct{}{}:
			default:
			}
			<-release
			return serve.Result{Schema: serve.ResultSchema, Spec: "slow", Addr: addr}, nil
		}
	}
	s, ts := newTestServer(t, cfg)

	var inflightCode, queuedCode int
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		resp, _ := submit(t, ts, specN(1))
		inflightCode = resp.StatusCode
	}()
	<-started // job 1 executing
	wg.Add(1)
	go func() {
		defer wg.Done()
		resp, _ := submit(t, ts, specN(2))
		queuedCode = resp.StatusCode
	}()
	waitCounter(t, s.Registry(), serve.CtrCacheMisses, 2) // job 2 at least admitted

	shutdownDone := make(chan error, 1)
	go func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		shutdownDone <- s.Shutdown(ctx)
	}()

	// New work is refused while the drain waits on the in-flight job.
	deadline := time.Now().Add(5 * time.Second)
	for {
		resp, _ := submit(t, ts, specN(3))
		if resp.StatusCode == http.StatusServiceUnavailable {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("draining server still accepts work")
		}
		time.Sleep(5 * time.Millisecond)
	}

	close(release)
	wg.Wait()
	if err := <-shutdownDone; err != nil {
		t.Fatalf("shutdown: %v", err)
	}
	if inflightCode != http.StatusOK {
		t.Errorf("in-flight job during drain: HTTP %d, want 200", inflightCode)
	}
	if queuedCode != http.StatusServiceUnavailable {
		t.Errorf("queued job during drain: HTTP %d, want 503", queuedCode)
	}
}

// TestCrashRestartResumesByteIdentical is the crash-safety contract:
// a server that checkpoints its completed jobs and then dies without
// any graceful shutdown is replaced by a fresh server resuming the
// same journal; resubmitting the same experiment yields the
// byte-identical manifest without re-simulating.
func TestCrashRestartResumesByteIdentical(t *testing.T) {
	ckptPath := filepath.Join(t.TempDir(), "sdbpd.ckpt")

	ck1, err := runner.OpenCheckpoint(ckptPath, false)
	if err != nil {
		t.Fatal(err)
	}
	cfg1 := quietCfg()
	cfg1.Checkpoint = ck1
	s1 := serve.New(cfg1)
	ts1 := httptest.NewServer(s1.Handler())
	resp1, body1 := submit(t, ts1, tinySpec)
	if resp1.StatusCode != http.StatusOK {
		t.Fatalf("first server submit: HTTP %d", resp1.StatusCode)
	}
	// Crash: no Shutdown, no drain — just the journal hitting disk and
	// the process "dying" (server abandoned, file closed as the OS
	// would).
	ts1.Close()
	ck1.Close()

	ck2, err := runner.OpenCheckpoint(ckptPath, true)
	if err != nil {
		t.Fatal(err)
	}
	defer ck2.Close()
	if ck2.Len() != 1 {
		t.Fatalf("journal holds %d entries after crash, want 1", ck2.Len())
	}
	cfg2 := quietCfg()
	cfg2.Checkpoint = ck2
	// Fresh memory store: the cache died with the process; only the
	// checkpoint survives.
	s2, ts2 := newTestServer(t, cfg2)

	resp2, body2 := submit(t, ts2, tinySpec)
	if resp2.StatusCode != http.StatusOK {
		t.Fatalf("resumed submit: HTTP %d", resp2.StatusCode)
	}
	if !bytes.Equal(body1, body2) {
		t.Errorf("resumed manifest differs from the pre-crash manifest:\n%s\nvs\n%s", body1, body2)
	}
	reg := s2.Registry()
	if got := reg.CounterValue(obs.CtrJobsFromCheckpoint); got != 1 {
		t.Errorf("jobs from checkpoint = %d, want 1", got)
	}
	if got := reg.CounterValue(obs.CtrJobsSucceeded); got != 0 {
		t.Errorf("re-simulated jobs = %d, want 0", got)
	}
}

// TestCrashRestartWithTornJournalTail: the crash happened mid-Record —
// the journal ends in a torn line. The resume must still load the
// intact prefix (warning, not error) and serve it.
func TestCrashRestartWithTornJournalTail(t *testing.T) {
	ckptPath := filepath.Join(t.TempDir(), "sdbpd.ckpt")
	ck1, _ := runner.OpenCheckpoint(ckptPath, false)
	cfg1 := quietCfg()
	cfg1.Checkpoint = ck1
	s1 := serve.New(cfg1)
	ts1 := httptest.NewServer(s1.Handler())
	_, body1 := submit(t, ts1, tinySpec)
	ts1.Close()
	ck1.Close()

	// Tear the tail as a crash mid-write would.
	f, err := os.OpenFile(ckptPath, os.O_APPEND|os.O_WRONLY, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	io.WriteString(f, `{"key":"policy=sampler(`)
	f.Close()

	old := runner.Warnf
	runner.Warnf = func(string, ...any) {}
	defer func() { runner.Warnf = old }()
	ck2, err := runner.OpenCheckpoint(ckptPath, true)
	if err != nil {
		t.Fatalf("resume with torn tail failed: %v", err)
	}
	defer ck2.Close()
	cfg2 := quietCfg()
	cfg2.Checkpoint = ck2
	_, ts2 := newTestServer(t, cfg2)
	resp2, body2 := submit(t, ts2, tinySpec)
	if resp2.StatusCode != http.StatusOK || !bytes.Equal(body1, body2) {
		t.Errorf("torn-tail resume: HTTP %d, identical=%t", resp2.StatusCode, bytes.Equal(body1, body2))
	}
}
