package serve_test

import (
	"bufio"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"sdbp/internal/exp"
	"sdbp/internal/serve"
)

// sseEvent is one parsed server-sent event.
type sseEvent struct {
	id    string
	event string
	data  serve.JobEvent
}

// parseSSE reads a response's event stream until the server closes it
// (the job finished).
func parseSSE(t *testing.T, resp *http.Response) []sseEvent {
	t.Helper()
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("events: HTTP %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "text/event-stream" {
		t.Errorf("events content type = %q", ct)
	}
	var out []sseEvent
	var cur sseEvent
	sc := bufio.NewScanner(resp.Body)
	for sc.Scan() {
		line := sc.Text()
		switch {
		case line == "":
			out = append(out, cur)
			cur = sseEvent{}
		case strings.HasPrefix(line, "id: "):
			cur.id = line[4:]
		case strings.HasPrefix(line, "event: "):
			cur.event = line[7:]
		case strings.HasPrefix(line, "data: "):
			if err := json.Unmarshal([]byte(line[6:]), &cur.data); err != nil {
				t.Fatalf("event data does not parse: %v (%q)", err, line)
			}
		}
	}
	if err := sc.Err(); err != nil {
		t.Fatalf("reading event stream: %v", err)
	}
	return out
}

// readSSE fetches and parses a job's full event stream.
func readSSE(t *testing.T, ts *httptest.Server, addr string) []sseEvent {
	t.Helper()
	resp, err := http.Get(ts.URL + "/v1/jobs/" + addr + "/events")
	if err != nil {
		t.Fatal(err)
	}
	return parseSSE(t, resp)
}

func eventTypes(evs []sseEvent) []string {
	types := make([]string, len(evs))
	for i, ev := range evs {
		types[i] = ev.event
	}
	return types
}

// tinySpecAddr computes tinySpec's content address the way the server
// does, so tests can reach job endpoints before the submission
// responds.
func tinySpecAddr(t *testing.T) string {
	t.Helper()
	var spec exp.Spec
	if err := json.Unmarshal([]byte(tinySpec), &spec); err != nil {
		t.Fatal(err)
	}
	r, err := spec.Resolve()
	if err != nil {
		t.Fatal(err)
	}
	return serve.Addr(r.String())
}

// TestJobEventLifecycle: a finished job replays its complete lifecycle
// in deterministic order, interval progress included.
func TestJobEventLifecycle(t *testing.T) {
	_, ts := newTestServer(t, quietCfg())
	resp, body := submit(t, ts, tinySpec)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("submit: HTTP %d: %s", resp.StatusCode, body)
	}
	addr := resp.Header.Get("X-Sdbpd-Addr")

	evs := readSSE(t, ts, addr)
	want := []string{"submitted", "queued", "coalesced", "running", "progress", "stored", "done"}
	got := eventTypes(evs)
	if fmt.Sprint(got) != fmt.Sprint(want) {
		t.Fatalf("lifecycle = %v, want %v", got, want)
	}
	for i, ev := range evs {
		if ev.data.Seq != i || ev.id != fmt.Sprint(i) {
			t.Errorf("event %d seq/id = %d/%s", i, ev.data.Seq, ev.id)
		}
		if ev.data.Addr != addr {
			t.Errorf("event %d addr = %q", i, ev.data.Addr)
		}
		if ev.data.Type != ev.event {
			t.Errorf("event %d type %q != SSE event name %q", i, ev.data.Type, ev.event)
		}
	}
	prog := evs[4].data
	if prog.Done != 1 || prog.Total != 1 || prog.Detail != "456.hmmer" {
		t.Errorf("progress event = %+v, want 1/1 456.hmmer", prog)
	}
}

// TestEventsCacheHit: a resubmission of a finished job opens a fresh
// generation with the short cached lifecycle.
func TestEventsCacheHit(t *testing.T) {
	_, ts := newTestServer(t, quietCfg())
	resp, _ := submit(t, ts, tinySpec)
	addr := resp.Header.Get("X-Sdbpd-Addr")
	submit(t, ts, tinySpec) // hit: replaces the finished feed

	got := eventTypes(readSSE(t, ts, addr))
	want := []string{"submitted", "cached", "done"}
	if fmt.Sprint(got) != fmt.Sprint(want) {
		t.Fatalf("cached lifecycle = %v, want %v", got, want)
	}
}

// TestEventsLiveTail: a watcher that attaches mid-job receives the
// recorded history immediately and the rest as it happens.
func TestEventsLiveTail(t *testing.T) {
	release := make(chan struct{})
	cfg := quietCfg()
	cfg.WrapJob = func(addr string, run func(ctx context.Context) (serve.Result, error)) func(ctx context.Context) (serve.Result, error) {
		return func(ctx context.Context) (serve.Result, error) {
			<-release
			return serve.Result{Schema: serve.ResultSchema, Spec: "canned", Addr: addr}, nil
		}
	}
	_, ts := newTestServer(t, cfg)

	submitted := make(chan struct{})
	go func() {
		defer close(submitted)
		resp, err := http.Post(ts.URL+"/v1/jobs", "application/json", strings.NewReader(tinySpec))
		if err == nil {
			resp.Body.Close()
		}
	}()

	// The job is blocked inside WrapJob; attach to its live feed.
	addr := tinySpecAddr(t)
	var resp *http.Response
	deadline := time.Now().Add(5 * time.Second)
	for resp == nil {
		r, err := http.Get(ts.URL + "/v1/jobs/" + addr + "/events")
		if err != nil {
			t.Fatal(err)
		}
		if r.StatusCode == http.StatusOK {
			resp = r
			break
		}
		r.Body.Close()
		if time.Now().After(deadline) {
			t.Fatal("job feed never appeared")
		}
		time.Sleep(5 * time.Millisecond)
	}
	go func() {
		time.Sleep(50 * time.Millisecond)
		close(release)
	}()

	got := eventTypes(parseSSE(t, resp))
	// WrapJob replaces the real execution, so there are no progress
	// events — but the stream must still end with stored + done.
	want := []string{"submitted", "queued", "coalesced", "running", "stored", "done"}
	if fmt.Sprint(got) != fmt.Sprint(want) {
		t.Fatalf("live lifecycle = %v, want %v", got, want)
	}
	<-submitted
}

// TestEventsErrors: malformed and unknown addresses.
func TestEventsErrors(t *testing.T) {
	_, ts := newTestServer(t, quietCfg())
	if resp, _ := get(t, ts, "/v1/jobs/nothex/events"); resp.StatusCode != http.StatusBadRequest {
		t.Errorf("malformed addr: HTTP %d, want 400", resp.StatusCode)
	}
	unknown := serve.Addr("never submitted")
	if resp, _ := get(t, ts, "/v1/jobs/"+unknown+"/events"); resp.StatusCode != http.StatusNotFound {
		t.Errorf("unknown addr: HTTP %d, want 404", resp.StatusCode)
	}
}
