package serve_test

import (
	"net/http"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"sdbp/internal/serve"
)

// TestCoalesceOnFullBatch: with a coalescing window far longer than
// the test, the only way a batch can fire is by filling — so four
// concurrent distinct submissions must land in exactly one batch, and
// the batch must fire the moment the fourth arrives rather than
// waiting out the window.
func TestCoalesceOnFullBatch(t *testing.T) {
	var execs atomic.Int64
	cfg := quietCfg()
	cfg.MaxBatch = 4
	cfg.BatchWait = 10 * time.Second // never fires by timer within the test
	cfg.WrapJob = cannedJob(&execs)
	s, ts := newTestServer(t, cfg)

	start := time.Now()
	var wg sync.WaitGroup
	codes := make([]int, 4)
	for i := 0; i < 4; i++ {
		i := i
		wg.Add(1)
		go func() {
			defer wg.Done()
			resp, _ := submit(t, ts, specN(i))
			codes[i] = resp.StatusCode
		}()
	}
	wg.Wait()

	for i, code := range codes {
		if code != http.StatusOK {
			t.Errorf("submission %d: HTTP %d, want 200", i, code)
		}
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Errorf("batch took %s; a full batch must fire immediately, not wait out the %s window", elapsed, cfg.BatchWait)
	}
	reg := s.Registry()
	if got := reg.CounterValue(serve.CtrBatches); got != 1 {
		t.Errorf("batches = %d, want 1 (all four submissions coalesced)", got)
	}
	if got := reg.CounterValue(serve.CtrBatchJobs); got != 4 {
		t.Errorf("batched jobs = %d, want 4", got)
	}
	if n := execs.Load(); n != 4 {
		t.Errorf("executions = %d, want 4 (distinct specs never dedup)", n)
	}
}

// TestCoalesceOnTimer: a lone submission cannot fill a batch, so the
// window timer is what releases it.
func TestCoalesceOnTimer(t *testing.T) {
	var execs atomic.Int64
	cfg := quietCfg()
	cfg.MaxBatch = 16
	cfg.BatchWait = 20 * time.Millisecond
	cfg.WrapJob = cannedJob(&execs)
	s, ts := newTestServer(t, cfg)

	resp, _ := submit(t, ts, specN(1))
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("HTTP %d, want 200", resp.StatusCode)
	}
	reg := s.Registry()
	if got := reg.CounterValue(serve.CtrBatches); got != 1 {
		t.Errorf("batches = %d, want 1", got)
	}
	if got := reg.CounterValue(serve.CtrBatchJobs); got != 1 {
		t.Errorf("batched jobs = %d, want 1", got)
	}
}
