package serve

import "sync"

// flightGroup is a minimal singleflight: concurrent Do calls with the
// same key share one execution of fn. It is hand-rolled (stdlib-only
// repo) and deliberately smaller than x/sync/singleflight — no
// DoChan, no Forget — because the server's keys are content addresses
// whose results are immutable: a completed flight's value is always
// the right answer for every waiter.
type flightGroup struct {
	mu sync.Mutex
	m  map[string]*flight
}

type flight struct {
	done chan struct{}
	val  []byte
	err  error
}

func newFlightGroup() *flightGroup {
	return &flightGroup{m: make(map[string]*flight)}
}

// Do executes fn for key, or joins an in-progress execution. It
// returns fn's result and whether this call joined (true) rather than
// led (false). Joined calls never invoke fn.
func (g *flightGroup) Do(key string, fn func() ([]byte, error)) (val []byte, err error, joined bool) {
	g.mu.Lock()
	if f, ok := g.m[key]; ok {
		g.mu.Unlock()
		<-f.done
		return f.val, f.err, true
	}
	f := &flight{done: make(chan struct{})}
	g.m[key] = f
	g.mu.Unlock()

	f.val, f.err = fn()

	g.mu.Lock()
	delete(g.m, key)
	g.mu.Unlock()
	close(f.done)
	return f.val, f.err, false
}
