package serve

import (
	"context"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"

	"sdbp/internal/cache"
	"sdbp/internal/dbrb"
	"sdbp/internal/exp"
	"sdbp/internal/obs"
	"sdbp/internal/sampling"
)

// Addr returns the content address of a canonical spec expression: the
// hex SHA-256 of the fully-expanded exp.Resolved.String() form. Two
// submissions address the same result iff they resolve to the same
// canonical spec, whatever their JSON spelling (preset vs expression,
// defaults implicit vs explicit).
func Addr(canonicalSpec string) string {
	sum := sha256.Sum256([]byte(canonicalSpec))
	return hex.EncodeToString(sum[:])
}

// ValidAddr reports whether s has the shape of a content address (64
// lowercase hex digits), gating both the results endpoint and disk
// store paths.
func ValidAddr(s string) bool {
	if len(s) != 64 {
		return false
	}
	for i := 0; i < len(s); i++ {
		c := s[i]
		if (c < '0' || c > '9') && (c < 'a' || c > 'f') {
			return false
		}
	}
	return true
}

// Result is one job's manifest: the deterministic record of a spec's
// simulation, returned to submitters and cached under its content
// address. Every field is a pure function of the canonical spec, so
// the marshaled form is byte-identical across runs, restarts and
// GOMAXPROCS settings — wall-clock fields deliberately do not appear.
type Result struct {
	// Schema versions the manifest layout.
	Schema int `json:"schema"`
	// Spec is the fully-expanded canonical spec that produced the
	// result; it alone reproduces the run.
	Spec string `json:"spec"`
	// Addr is the content address (SHA-256 of Spec).
	Addr string `json:"addr"`
	// Benches holds single-benchmark runs, in spec order.
	Benches []BenchResult `json:"benches,omitempty"`
	// Mixes holds quad-core mix runs, in spec order.
	Mixes []MixResult `json:"mixes,omitempty"`
	// Sampled holds sampled-simulation runs (specs with sampled=true),
	// in spec order; such specs populate this instead of Benches.
	Sampled []SampledBenchResult `json:"sampled,omitempty"`
}

// ResultSchema is the current Result layout version.
const ResultSchema = 1

// BenchResult is the deterministic slice of one sim.SingleResult.
type BenchResult struct {
	Name         string         `json:"name"`
	Instructions uint64         `json:"instructions"`
	Cycles       uint64         `json:"cycles"`
	IPC          float64        `json:"ipc"`
	MPKI         float64        `json:"mpki"`
	LLC          cache.Stats    `json:"llc"`
	Accuracy     *dbrb.Accuracy `json:"accuracy,omitempty"`
}

// SampledBenchResult is the deterministic slice of one
// sim.SampledResult: the full-run estimates with their error bounds,
// plus the plan that produced them (selector config, chosen intervals,
// weights), so a manifest is auditable without re-running the pilot.
// Every field is a pure function of the canonical spec — the pilot,
// selection and replay are all deterministic — so sampled manifests
// byte-compare like exact ones.
type SampledBenchResult struct {
	Name     string            `json:"name"`
	Estimate sampling.Estimate `json:"estimate"`
	Plan     sampling.Plan     `json:"plan"`
}

// MixResult is the deterministic slice of one sim.MulticoreResult.
type MixResult struct {
	Name         string      `json:"name"`
	IPC          [4]float64  `json:"ipc"`
	Instructions [4]uint64   `json:"instructions"`
	Cycles       uint64      `json:"cycles"`
	MPKI         float64     `json:"mpki"`
	LLC          cache.Stats `json:"llc"`
}

// Marshal renders the manifest in its wire form: indented,
// key-order-stable JSON with a trailing newline. This is the exact
// byte string stored in the cache and returned to every submitter, so
// equality of manifests is equality of bytes.
func (r Result) Marshal() ([]byte, error) {
	b, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return nil, err
	}
	return append(b, '\n'), nil
}

// ExecuteSpec runs every workload and mix of a resolved spec and
// assembles the manifest. The context is checked between runs —
// individual simulations are not preemptible — so a canceled batch
// stops at the next boundary. Live simulator counters are folded into
// reg at each run boundary, keeping the per-access path metric-free.
// progress, when non-nil, is called after each completed work unit
// with (done, total, name) — the service turns these into streamed
// interval-progress events.
func ExecuteSpec(ctx context.Context, r *exp.Resolved, reg *obs.Registry, progress func(done, total int, name string)) (Result, error) {
	spec := r.String()
	out := Result{Schema: ResultSchema, Spec: spec, Addr: Addr(spec)}
	total := len(r.Workloads) + len(r.Mixes)
	if r.Sampled {
		total = len(r.Workloads)
	}
	done := 0
	step := func(name string) {
		done++
		if progress != nil {
			progress(done, total, name)
		}
	}
	if r.Sampled {
		for _, w := range r.Workloads {
			if err := ctx.Err(); err != nil {
				return Result{}, err
			}
			sr, plan, err := r.RunBenchSampled(w)
			if err != nil {
				return Result{}, err
			}
			out.Sampled = append(out.Sampled, SampledBenchResult{
				Name:     sr.Benchmark,
				Estimate: sr.Estimate,
				Plan:     *plan,
			})
			step(sr.Benchmark)
		}
		return out, nil
	}
	for _, w := range r.Workloads {
		if err := ctx.Err(); err != nil {
			return Result{}, err
		}
		sr := r.RunBench(w)
		sr.ObserveInto(reg)
		out.Benches = append(out.Benches, BenchResult{
			Name:         sr.Benchmark,
			Instructions: sr.Instructions,
			Cycles:       sr.Cycles,
			IPC:          sr.IPC,
			MPKI:         sr.MPKI,
			LLC:          sr.LLC,
			Accuracy:     sr.Accuracy,
		})
		step(sr.Benchmark)
	}
	for _, m := range r.Mixes {
		if err := ctx.Err(); err != nil {
			return Result{}, err
		}
		mr, err := r.RunMix(m)
		if err != nil {
			return Result{}, err
		}
		mr.ObserveInto(reg)
		out.Mixes = append(out.Mixes, MixResult{
			Name:         mr.MixName,
			IPC:          mr.IPC,
			Instructions: mr.Instructions,
			Cycles:       mr.Cycles,
			MPKI:         mr.MPKI,
			LLC:          mr.LLC,
		})
		step(mr.MixName)
	}
	return out, nil
}
