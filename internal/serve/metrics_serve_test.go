package serve_test

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"
	"sync"
	"testing"

	"sdbp/internal/obs"
	"sdbp/internal/serve"
)

// getAccept fetches path with an Accept header.
func getAccept(t *testing.T, url, accept string) (*http.Response, []byte) {
	t.Helper()
	req, err := http.NewRequest(http.MethodGet, url, nil)
	if err != nil {
		t.Fatal(err)
	}
	if accept != "" {
		req.Header.Set("Accept", accept)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	body, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	return resp, body
}

// TestMetricsContentNegotiation: JSON stays the default wire format;
// Prometheus text is served to scrapers (Accept) and on request
// (?format=prom), and always passes the exposition lint.
func TestMetricsContentNegotiation(t *testing.T) {
	_, ts := newTestServer(t, quietCfg())
	submit(t, ts, tinySpec)

	// Default: the JSON snapshot, unchanged for existing consumers.
	resp, body := get(t, ts, "/metrics")
	if ct := resp.Header.Get("Content-Type"); ct != "application/json" {
		t.Errorf("default content type = %q, want application/json", ct)
	}
	var snap obs.Snapshot
	if err := json.Unmarshal(body, &snap); err != nil {
		t.Fatalf("default /metrics is not the JSON snapshot: %v", err)
	}
	if snap.Counters[serve.CtrSubmits] != 1 {
		t.Errorf("submits counter = %d, want 1", snap.Counters[serve.CtrSubmits])
	}

	for name, fetch := range map[string]func() (*http.Response, []byte){
		"accept text/plain": func() (*http.Response, []byte) {
			return getAccept(t, ts.URL+"/metrics", "text/plain; version=0.0.4")
		},
		"accept openmetrics": func() (*http.Response, []byte) {
			return getAccept(t, ts.URL+"/metrics", "application/openmetrics-text")
		},
		"format=prom": func() (*http.Response, []byte) {
			return get(t, ts, "/metrics?format=prom")
		},
	} {
		t.Run(name, func(t *testing.T) {
			resp, body := fetch()
			if ct := resp.Header.Get("Content-Type"); ct != obs.ContentTypePrometheus {
				t.Errorf("content type = %q, want %q", ct, obs.ContentTypePrometheus)
			}
			if err := obs.LintPrometheus(body); err != nil {
				t.Errorf("exposition fails lint: %v\n%s", err, body)
			}
			if !strings.Contains(string(body), "serve_submits_total") {
				t.Errorf("exposition missing serve_submits_total:\n%s", body)
			}
		})
	}

	// ?format=json wins over a scraper Accept header.
	resp, body = getAccept(t, ts.URL+"/metrics?format=json", "text/plain")
	if err := json.Unmarshal(body, &snap); err != nil {
		t.Errorf("format=json did not return JSON: %v", err)
	}
	_ = resp
}

// TestMetricsUnderLoad is the satellite contract: concurrent /metrics
// scrapes in both formats race live job submissions (run under -race
// in CI), every scrape stays well-formed, and the exposition lints.
func TestMetricsUnderLoad(t *testing.T) {
	cfg := quietCfg()
	cfg.WrapJob = cannedJob(nil)
	_, ts := newTestServer(t, cfg)

	const submitters, scrapers, rounds = 4, 4, 20
	var wg sync.WaitGroup
	errs := make(chan error, submitters+scrapers)
	for i := 0; i < submitters; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			for j := 0; j < rounds; j++ {
				spec := fmt.Sprintf(`{"policy":"LRU","workloads":["456.hmmer"],"scale":0.0%d%d}`, i+1, j%10)
				resp, err := http.Post(ts.URL+"/v1/jobs", "application/json", strings.NewReader(spec))
				if err != nil {
					errs <- err
					return
				}
				io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
			}
		}(i)
	}
	for i := 0; i < scrapers; i++ {
		wg.Add(1)
		go func(prom bool) {
			defer wg.Done()
			for j := 0; j < rounds; j++ {
				url := ts.URL + "/metrics"
				if prom {
					url += "?format=prom"
				}
				resp, err := http.Get(url)
				if err != nil {
					errs <- err
					return
				}
				body, err := io.ReadAll(resp.Body)
				resp.Body.Close()
				if err != nil {
					errs <- err
					return
				}
				if prom {
					if err := obs.LintPrometheus(body); err != nil {
						errs <- fmt.Errorf("scrape %d fails lint: %w", j, err)
						return
					}
				} else if !json.Valid(body) {
					errs <- fmt.Errorf("scrape %d is not valid JSON", j)
					return
				}
			}
		}(i%2 == 0)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
}
