package serve_test

import (
	"bytes"
	"context"
	"encoding/json"
	"testing"

	"sdbp/internal/exp"
	"sdbp/internal/obs"
	"sdbp/internal/serve"
)

const sampledSpecJSON = `{"policy":"lru","workloads":["456.hmmer"],"scale":0.02,` +
	`"sampled":true,"sample_interval":5000,"sample_clusters":4}`

func resolveSampled(t *testing.T) *exp.Resolved {
	t.Helper()
	var spec exp.Spec
	if err := json.Unmarshal([]byte(sampledSpecJSON), &spec); err != nil {
		t.Fatal(err)
	}
	r, err := spec.Resolve()
	if err != nil {
		t.Fatal(err)
	}
	return r
}

// TestExecuteSpecSampled: a sampled spec produces a manifest of
// estimates with plans and error bounds instead of exact bench rows,
// under a distinct content address, byte-identical across executions.
func TestExecuteSpecSampled(t *testing.T) {
	exp.ResetSampledCache()
	t.Cleanup(exp.ResetSampledCache)
	r := resolveSampled(t)

	reg := obs.NewRegistry()
	res, err := serve.ExecuteSpec(context.Background(), r, reg, nil)
	if err != nil {
		t.Fatalf("ExecuteSpec: %v", err)
	}
	if len(res.Benches) != 0 || len(res.Mixes) != 0 {
		t.Fatalf("sampled manifest carries exact rows: %d benches, %d mixes", len(res.Benches), len(res.Mixes))
	}
	if len(res.Sampled) != 1 {
		t.Fatalf("got %d sampled rows, want 1", len(res.Sampled))
	}
	row := res.Sampled[0]
	if row.Name != "456.hmmer" {
		t.Errorf("row name %q", row.Name)
	}
	if row.Estimate.IPC <= 0 || row.Estimate.IPCHalf <= 0 || row.Estimate.MissRateHalf <= 0 {
		t.Errorf("estimate missing bounds: %+v", row.Estimate)
	}
	if len(row.Plan.Picks) == 0 || row.Plan.Interval != 5000 {
		t.Errorf("manifest plan incomplete: %+v", row.Plan)
	}
	if row.Estimate.SimFraction <= 0 || row.Estimate.SimFraction >= 1 {
		t.Errorf("SimFraction = %v, want in (0,1)", row.Estimate.SimFraction)
	}

	// The sampled spelling addresses differently from the exact one.
	var unsampled exp.Spec
	if err := json.Unmarshal([]byte(sampledSpecJSON), &unsampled); err != nil {
		t.Fatal(err)
	}
	unsampled.Sampled = false
	unsampled.SampleInterval = 0
	unsampled.SampleClusters = 0
	ru, err := unsampled.Resolve()
	if err != nil {
		t.Fatal(err)
	}
	if serve.Addr(ru.String()) == res.Addr {
		t.Error("sampled and exact specs share a content address")
	}

	// Byte-identical across executions (the cache/resume contract).
	again, err := serve.ExecuteSpec(context.Background(), r, obs.NewRegistry(), nil)
	if err != nil {
		t.Fatal(err)
	}
	b1, err := res.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	b2, err := again.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(b1, b2) {
		t.Fatal("sampled manifests differ across executions")
	}
}
