package serve_test

import (
	"bytes"
	"context"
	"encoding/json"
	"io"
	"log"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"sdbp/internal/obs"
	"sdbp/internal/serve"
)

// quietCfg returns a config with warnings discarded and fast
// coalescing, the baseline for most tests.
func quietCfg() serve.Config {
	return serve.Config{
		Log:       log.New(io.Discard, "", 0),
		BatchWait: time.Millisecond,
	}
}

// cannedJob replaces real simulation with an instant deterministic
// result, for tests that exercise the pipeline rather than the
// simulator. The count, when non-nil, tallies executions.
func cannedJob(count *atomic.Int64) func(string, func(context.Context) (serve.Result, error)) func(context.Context) (serve.Result, error) {
	return func(addr string, run func(context.Context) (serve.Result, error)) func(context.Context) (serve.Result, error) {
		return func(ctx context.Context) (serve.Result, error) {
			if count != nil {
				count.Add(1)
			}
			return serve.Result{Schema: serve.ResultSchema, Spec: "canned", Addr: addr}, nil
		}
	}
}

// newTestServer starts a Server and an httptest front end, both torn
// down with the test.
func newTestServer(t *testing.T, cfg serve.Config) (*serve.Server, *httptest.Server) {
	t.Helper()
	s := serve.New(cfg)
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(func() {
		ts.Close()
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		s.Shutdown(ctx)
	})
	return s, ts
}

func submit(t *testing.T, ts *httptest.Server, body string) (*http.Response, []byte) {
	t.Helper()
	resp, err := http.Post(ts.URL+"/v1/jobs", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	data, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	return resp, data
}

func get(t *testing.T, ts *httptest.Server, path string) (*http.Response, []byte) {
	t.Helper()
	resp, err := http.Get(ts.URL + path)
	if err != nil {
		t.Fatal(err)
	}
	data, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	return resp, data
}

// tinySpec is a real simulation small enough for tests (~ms).
const tinySpec = `{"policy":"LRU","workloads":["456.hmmer"],"scale":0.01}`

// TestSubmitCachesAndHits drives a real (tiny) simulation end to end:
// the first submission computes and caches, the second is a cache hit
// with byte-identical bytes, and the results endpoint serves the same
// manifest by content address.
func TestSubmitCachesAndHits(t *testing.T) {
	s, ts := newTestServer(t, quietCfg())

	resp1, body1 := submit(t, ts, tinySpec)
	if resp1.StatusCode != http.StatusOK {
		t.Fatalf("first submit: HTTP %d: %s", resp1.StatusCode, body1)
	}
	if src := resp1.Header.Get("X-Sdbpd-Cache"); src != "miss" {
		t.Errorf("first submit cache source = %q, want miss", src)
	}
	var res serve.Result
	if err := json.Unmarshal(body1, &res); err != nil {
		t.Fatalf("manifest does not parse: %v", err)
	}
	if len(res.Benches) != 1 || res.Benches[0].Name != "456.hmmer" {
		t.Fatalf("manifest benches = %+v", res.Benches)
	}
	if res.Benches[0].LLC.Accesses == 0 || res.Benches[0].Instructions == 0 {
		t.Error("manifest has empty simulation counters")
	}
	if res.Addr != serve.Addr(res.Spec) {
		t.Errorf("addr %s is not the hash of spec %q", res.Addr, res.Spec)
	}
	if got := resp1.Header.Get("X-Sdbpd-Addr"); got != res.Addr {
		t.Errorf("X-Sdbpd-Addr = %s, want %s", got, res.Addr)
	}

	resp2, body2 := submit(t, ts, tinySpec)
	if resp2.StatusCode != http.StatusOK {
		t.Fatalf("second submit: HTTP %d", resp2.StatusCode)
	}
	if src := resp2.Header.Get("X-Sdbpd-Cache"); src != "hit" {
		t.Errorf("second submit cache source = %q, want hit", src)
	}
	if !bytes.Equal(body1, body2) {
		t.Error("cache hit returned different bytes than the computed result")
	}

	respGet, bodyGet := get(t, ts, "/v1/results/"+res.Addr)
	if respGet.StatusCode != http.StatusOK || !bytes.Equal(bodyGet, body1) {
		t.Errorf("results endpoint: HTTP %d, identical=%t", respGet.StatusCode, bytes.Equal(bodyGet, body1))
	}

	reg := s.Registry()
	if hits := reg.CounterValue(serve.CtrCacheHits); hits != 1 {
		t.Errorf("cache hits = %d, want 1", hits)
	}
	if misses := reg.CounterValue(serve.CtrCacheMisses); misses != 1 {
		t.Errorf("cache misses = %d, want 1", misses)
	}
	if ran := reg.CounterValue(obs.CtrJobsSucceeded); ran != 1 {
		t.Errorf("jobs executed = %d, want 1", ran)
	}
}

// TestSubmitSpellingsShareOneAddress: a preset name and its explicit
// defaults resolve to the same canonical spec, so the second spelling
// is a cache hit, not a second simulation.
func TestSubmitSpellingsShareOneAddress(t *testing.T) {
	var execs atomic.Int64
	cfg := quietCfg()
	cfg.WrapJob = cannedJob(&execs)
	s, ts := newTestServer(t, cfg)

	resp1, _ := submit(t, ts, `{"policy":"LRU","workloads":["456.hmmer"]}`)
	resp2, _ := submit(t, ts, `{"policy":"lru","workloads":["456.hmmer"],"cores":1,"scale":1}`)
	if resp1.StatusCode != 200 || resp2.StatusCode != 200 {
		t.Fatalf("HTTP %d, %d", resp1.StatusCode, resp2.StatusCode)
	}
	if a1, a2 := resp1.Header.Get("X-Sdbpd-Addr"), resp2.Header.Get("X-Sdbpd-Addr"); a1 != a2 {
		t.Errorf("spellings of the same experiment got different addresses:\n%s\n%s", a1, a2)
	}
	if n := execs.Load(); n != 1 {
		t.Errorf("executions = %d, want 1", n)
	}
	if hits := s.Registry().CounterValue(serve.CtrCacheHits); hits != 1 {
		t.Errorf("cache hits = %d, want 1", hits)
	}
}

// TestSubmitRejects pins the decode/resolve failure modes to 400s
// with JSON error envelopes, and the body cap to 413.
func TestSubmitRejects(t *testing.T) {
	cfg := quietCfg()
	cfg.MaxBody = 1 << 12
	cfg.WrapJob = cannedJob(nil)
	s, ts := newTestServer(t, cfg)

	cases := []struct {
		name, body string
		status     int
	}{
		{"malformed json", `{"policy":`, http.StatusBadRequest},
		{"unknown field", `{"policy":"LRU","workloads":["456.hmmer"],"bogus":1}`, http.StatusBadRequest},
		{"unknown policy", `{"policy":"NoSuchPolicy","workloads":["456.hmmer"]}`, http.StatusBadRequest},
		{"unknown workload", `{"policy":"LRU","workloads":["999.nope"]}`, http.StatusBadRequest},
		{"no selection", `{"policy":"LRU"}`, http.StatusBadRequest},
		{"bad scale", `{"policy":"LRU","workloads":["456.hmmer"],"scale":-1}`, http.StatusBadRequest},
		{"oversized body", `{"policy":"` + strings.Repeat("x", 1<<13) + `"}`, http.StatusRequestEntityTooLarge},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			resp, body := submit(t, ts, tc.body)
			if resp.StatusCode != tc.status {
				t.Fatalf("HTTP %d, want %d (body %s)", resp.StatusCode, tc.status, body)
			}
			var e struct {
				Error string `json:"error"`
			}
			if err := json.Unmarshal(body, &e); err != nil || e.Error == "" {
				t.Errorf("error envelope = %s (%v)", body, err)
			}
		})
	}
	if bad := s.Registry().CounterValue(serve.CtrBadRequests); bad != uint64(len(cases)) {
		t.Errorf("bad requests = %d, want %d", bad, len(cases))
	}
}

// TestResultsEndpointValidation: bad addresses are 400, unknown ones
// 404.
func TestResultsEndpointValidation(t *testing.T) {
	_, ts := newTestServer(t, quietCfg())
	if resp, _ := get(t, ts, "/v1/results/nothex"); resp.StatusCode != http.StatusBadRequest {
		t.Errorf("invalid addr: HTTP %d, want 400", resp.StatusCode)
	}
	missing := strings.Repeat("ab", 32)
	if resp, _ := get(t, ts, "/v1/results/"+missing); resp.StatusCode != http.StatusNotFound {
		t.Errorf("unknown addr: HTTP %d, want 404", resp.StatusCode)
	}
}

// TestHealthReadyAndMetrics covers the probe endpoints through a
// drain: healthz stays 200, readyz flips to 503, and the metrics
// snapshot parses and carries the serve_* instruments.
func TestHealthReadyAndMetrics(t *testing.T) {
	cfg := quietCfg()
	cfg.WrapJob = cannedJob(nil)
	s, ts := newTestServer(t, cfg)

	if resp, _ := get(t, ts, "/healthz"); resp.StatusCode != http.StatusOK {
		t.Errorf("healthz: HTTP %d", resp.StatusCode)
	}
	if resp, _ := get(t, ts, "/readyz"); resp.StatusCode != http.StatusOK {
		t.Errorf("readyz before drain: HTTP %d", resp.StatusCode)
	}
	submit(t, ts, tinySpec)

	resp, body := get(t, ts, "/metrics")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("metrics: HTTP %d", resp.StatusCode)
	}
	var snap obs.Snapshot
	if err := json.Unmarshal(body, &snap); err != nil {
		t.Fatalf("metrics snapshot does not parse: %v", err)
	}
	if snap.Counters[serve.CtrSubmits] != 1 {
		t.Errorf("metrics submits = %d, want 1", snap.Counters[serve.CtrSubmits])
	}
	if _, ok := snap.Gauges[serve.GaugeQueueDepth]; !ok {
		t.Error("metrics snapshot missing queue depth gauge")
	}

	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := s.Shutdown(ctx); err != nil {
		t.Fatalf("shutdown: %v", err)
	}
	if resp, _ := get(t, ts, "/readyz"); resp.StatusCode != http.StatusServiceUnavailable {
		t.Errorf("readyz during drain: HTTP %d, want 503", resp.StatusCode)
	}
	if resp, _ := get(t, ts, "/healthz"); resp.StatusCode != http.StatusOK {
		t.Errorf("healthz during drain: HTTP %d, want 200", resp.StatusCode)
	}
	// Cached results are still served while draining; new work is not.
	if resp, _ := submit(t, ts, tinySpec); resp.StatusCode != http.StatusOK {
		t.Errorf("cached submit during drain: HTTP %d, want 200 (cache hit)", resp.StatusCode)
	}
	resp, _ = submit(t, ts, `{"policy":"Sampler","workloads":["456.hmmer"],"scale":0.01}`)
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Errorf("new submit during drain: HTTP %d, want 503", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Error("503 without Retry-After")
	}
}

// TestAddr pins the content-address helpers.
func TestAddr(t *testing.T) {
	a := serve.Addr("policy=lru();workloads=456.hmmer;cores=1;llc=llc(mb=2,ways=16);scale=1")
	if !serve.ValidAddr(a) {
		t.Fatalf("Addr produced an invalid address %q", a)
	}
	for _, bad := range []string{"", "abc", strings.Repeat("g", 64), strings.Repeat("A", 64), strings.Repeat("a", 63) + "/"} {
		if serve.ValidAddr(bad) {
			t.Errorf("ValidAddr(%q) = true", bad)
		}
	}
	if serve.Addr("x") == serve.Addr("y") {
		t.Error("distinct specs share an address")
	}
}
