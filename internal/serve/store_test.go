package serve_test

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"sdbp/internal/serve"
)

// testAddr is a syntactically valid content address for store tests.
var testAddr = strings.Repeat("ab", 32)

func TestMemStore(t *testing.T) {
	s := serve.NewMemStore()
	if _, ok, err := s.Get(testAddr); ok || err != nil {
		t.Fatalf("empty store Get = hit=%t err=%v, want miss", ok, err)
	}
	if err := s.Put(testAddr, []byte("one")); err != nil {
		t.Fatal(err)
	}
	got, ok, err := s.Get(testAddr)
	if err != nil || !ok || string(got) != "one" {
		t.Fatalf("Get = %q, %t, %v", got, ok, err)
	}
	// The store must hold its own copy, immune to caller mutation.
	data := []byte("two")
	s.Put(testAddr, data)
	data[0] = 'X'
	if got, _, _ := s.Get(testAddr); string(got) != "two" {
		t.Errorf("stored value mutated through the caller's slice: %q", got)
	}
	if s.Len() != 1 {
		t.Errorf("Len = %d, want 1", s.Len())
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
}

func TestDiskStorePersistsAcrossReopen(t *testing.T) {
	dir := t.TempDir()
	s1, err := serve.NewDiskStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	blob := []byte(`{"schema":1}` + "\n")
	if err := s1.Put(testAddr, blob); err != nil {
		t.Fatal(err)
	}
	s1.Close()

	s2, err := serve.NewDiskStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	got, ok, err := s2.Get(testAddr)
	if err != nil || !ok || !bytes.Equal(got, blob) {
		t.Fatalf("after reopen: Get = %q, %t, %v; want the original blob", got, ok, err)
	}
	if _, ok, err := s2.Get(strings.Repeat("cd", 32)); ok || err != nil {
		t.Errorf("unknown addr: hit=%t err=%v, want clean miss", ok, err)
	}
}

func TestDiskStoreRejectsInvalidAddr(t *testing.T) {
	s, err := serve.NewDiskStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	for _, addr := range []string{"", "short", "../../etc/passwd", strings.Repeat("zz", 32), strings.Repeat("AB", 32)} {
		if err := s.Put(addr, []byte("x")); err == nil {
			t.Errorf("Put(%q) accepted an invalid address", addr)
		}
		if _, _, err := s.Get(addr); err == nil {
			t.Errorf("Get(%q) accepted an invalid address", addr)
		}
	}
}

// TestDiskStorePutLeavesNoTempDebris: the atomic write path must not
// strand temp files on the happy path, and an overwrite must replace
// cleanly.
func TestDiskStorePutLeavesNoTempDebris(t *testing.T) {
	dir := t.TempDir()
	s, err := serve.NewDiskStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	s.Put(testAddr, []byte("v1"))
	s.Put(testAddr, []byte("v2"))
	got, _, _ := s.Get(testAddr)
	if string(got) != "v2" {
		t.Errorf("overwrite: Get = %q, want v2", got)
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 1 {
		var names []string
		for _, e := range entries {
			names = append(names, e.Name())
		}
		t.Errorf("store dir holds %v, want exactly one blob file", names)
	}
	if want := testAddr + ".json"; entries[0].Name() != want {
		t.Errorf("blob file = %q, want %q", entries[0].Name(), want)
	}
	if p := filepath.Join(dir, entries[0].Name()); !strings.HasSuffix(p, ".json") {
		t.Errorf("unexpected file %s", p)
	}
}
