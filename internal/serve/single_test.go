package serve_test

import (
	"bytes"
	"context"
	"net/http"
	"sync"
	"sync/atomic"
	"testing"

	"sdbp/internal/obs"
	"sdbp/internal/serve"
)

// TestConcurrentDuplicateSubmissions is the dedup contract: M clients
// submitting the same canonical spec at once cost exactly one
// simulation, every client gets the byte-identical manifest, and the
// accounting closes — each of the M-1 non-leaders is counted as either
// a cache hit or a shared singleflight, never silently absorbed.
func TestConcurrentDuplicateSubmissions(t *testing.T) {
	const m = 24
	release := make(chan struct{})
	var execs atomic.Int64
	cfg := quietCfg()
	cfg.WrapJob = func(addr string, run func(context.Context) (serve.Result, error)) func(context.Context) (serve.Result, error) {
		return func(ctx context.Context) (serve.Result, error) {
			execs.Add(1)
			<-release
			return serve.Result{Schema: serve.ResultSchema, Spec: "dup", Addr: addr}, nil
		}
	}
	s, ts := newTestServer(t, cfg)
	reg := s.Registry()

	codes := make([]int, m)
	bodies := make([][]byte, m)
	var wg sync.WaitGroup
	for i := 0; i < m; i++ {
		i := i
		wg.Add(1)
		go func() {
			defer wg.Done()
			resp, body := submit(t, ts, tinySpec)
			codes[i], bodies[i] = resp.StatusCode, body
		}()
	}
	// Hold the one simulation until every submission has missed the
	// cache (the gate keeps the cache empty, so all M must), forcing
	// maximal overlap through the singleflight layer.
	waitCounter(t, reg, serve.CtrCacheMisses, m)
	close(release)
	wg.Wait()

	for i := 0; i < m; i++ {
		if codes[i] != http.StatusOK {
			t.Fatalf("submission %d: HTTP %d, want 200", i, codes[i])
		}
		if !bytes.Equal(bodies[i], bodies[0]) {
			t.Errorf("submission %d returned a different manifest than submission 0", i)
		}
	}
	if n := execs.Load(); n != 1 {
		t.Errorf("simulations executed = %d, want exactly 1 for %d identical submissions", n, m)
	}
	hits := reg.CounterValue(serve.CtrCacheHits)
	shared := reg.CounterValue(serve.CtrSingleflightShared)
	if hits+shared != m-1 {
		t.Errorf("cache hits (%d) + singleflight shared (%d) = %d, want %d: every non-leader must be accounted",
			hits, shared, hits+shared, m-1)
	}
	if got := reg.CounterValue(obs.CtrJobsSucceeded); got != 1 {
		t.Errorf("runner jobs succeeded = %d, want 1", got)
	}
}
