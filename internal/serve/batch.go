package serve

import (
	"context"
	"errors"
	"sync"
	"time"

	"sdbp/internal/exp"
	"sdbp/internal/obs"
	"sdbp/internal/runner"
)

// errQueueFull is the admission queue's backpressure signal; the
// handler maps it to 429 + Retry-After. errShuttingDown marks work
// refused or abandoned because the server is draining; it maps to 503.
var (
	errQueueFull    = errors.New("serve: admission queue full")
	errShuttingDown = errors.New("serve: shutting down")
)

// task is one admitted cache-miss submission traveling through the
// pipeline: admission queue → coalescing batcher → runner. finish
// settles it exactly once; the singleflight leader blocks on done.
type task struct {
	addr     string
	spec     string // canonical spec; the checkpoint journal key
	resolved *exp.Resolved

	// Trace spans carried through the pipeline: exec is the job trace's
	// stage:execute span (owned and ended by the submit handler); queue,
	// coalesce and run are its children, each ended by the pipeline
	// stage that completes it. All are nil-safe, so untraced tasks (and
	// tests constructing tasks directly) cost nothing.
	exec     *obs.Span
	queue    *obs.Span
	coalesce *obs.Span
	run      *obs.Span

	once sync.Once
	done chan struct{}
	val  []byte
	err  error
}

// collected marks the task's hand-off from the admission queue into a
// forming batch: the queue_wait span ends, the coalesce span begins.
func (t *task) collected() {
	t.queue.End()
	t.coalesce = t.exec.StartChild("coalesce")
}

func (t *task) finish(val []byte, err error) {
	t.once.Do(func() {
		t.val, t.err = val, err
		close(t.done)
	})
}

// admission is the bounded intake queue. The channel gives the bound
// and the hand-off; the mutex exists only so close and push cannot
// race — after close returns, no task can ever enter the channel, so
// the batcher's final drain is complete, not best-effort.
type admission struct {
	mu     sync.Mutex
	closed bool
	ch     chan *task
}

func newAdmission(capacity int) *admission {
	return &admission{ch: make(chan *task, capacity)}
}

// push admits t or reports why it cannot: a full queue (backpressure)
// or a closed one (draining). It never blocks.
func (q *admission) push(t *task) error {
	q.mu.Lock()
	defer q.mu.Unlock()
	if q.closed {
		return errShuttingDown
	}
	select {
	case q.ch <- t:
		return nil
	default:
		return errQueueFull
	}
}

// close stops admission permanently.
func (q *admission) close() {
	q.mu.Lock()
	q.closed = true
	q.mu.Unlock()
}

// depth is the number of tasks waiting in the queue right now.
func (q *admission) depth() int { return len(q.ch) }

// batcher coalesces admitted tasks into batches — up to maxBatch
// tasks, or whatever arrived within maxWait of the first — and
// executes each batch as one runner.Run call, so the worker pool,
// per-job timeout, retry/backoff, panic isolation and checkpoint
// journaling are shared across the batch. At most sem-many batches
// execute concurrently; everything else waits in the admission queue,
// which is the system's only unbounded-growth risk and is bounded.
type batcher struct {
	q        *admission
	maxWait  time.Duration
	maxBatch int

	runCtx  context.Context
	opts    runner.Options
	reg     *obs.Registry
	store   Store
	wrapJob func(addr string, run func(ctx context.Context) (Result, error)) func(ctx context.Context) (Result, error)
	warnf   func(format string, args ...any)
	events  *eventBroker

	sem      chan struct{}
	wg       sync.WaitGroup // executing batches
	stop     chan struct{}
	loopDone chan struct{}
}

func (b *batcher) start() {
	b.stop = make(chan struct{})
	b.loopDone = make(chan struct{})
	go b.loop()
}

func (b *batcher) loop() {
	defer close(b.loopDone)
	for {
		var first *task
		select {
		case first = <-b.q.ch:
		case <-b.stop:
			b.failQueued()
			return
		}
		first.collected()
		b.events.publish(first.addr, "coalesced", "", 0, 0)
		batch := []*task{first}
		timer := time.NewTimer(b.maxWait)
	collect:
		for len(batch) < b.maxBatch {
			select {
			case t := <-b.q.ch:
				t.collected()
				b.events.publish(t.addr, "coalesced", "", 0, 0)
				batch = append(batch, t)
			case <-timer.C:
				break collect
			case <-b.stop:
				break collect
			}
		}
		timer.Stop()
		select {
		case b.sem <- struct{}{}:
		case <-b.stop:
			// Draining: never start a new batch once stop is closed.
			for _, t := range batch {
				t.coalesce.SetAttr("error", errShuttingDown.Error())
				t.coalesce.End()
				t.finish(nil, errShuttingDown)
			}
			continue
		}
		b.reg.Counter(CtrBatches).Inc()
		b.reg.Counter(CtrBatchJobs).Add(uint64(len(batch)))
		b.wg.Add(1)
		go func(batch []*task) {
			defer b.wg.Done()
			defer func() { <-b.sem }()
			b.execute(batch)
		}(batch)
	}
}

// failQueued settles every task still waiting in the (closed) queue.
func (b *batcher) failQueued() {
	for {
		select {
		case t := <-b.q.ch:
			t.queue.SetAttr("error", errShuttingDown.Error())
			t.queue.End()
			t.finish(nil, errShuttingDown)
		default:
			return
		}
	}
}

// execute runs one batch through the runner and settles its tasks.
// Task addresses are unique within a batch (the singleflight layer
// guarantees one in-flight task per address), so job keys are unique
// within the Run call.
func (b *batcher) execute(batch []*task) {
	jobs := make([]runner.Job[Result], 0, len(batch))
	for _, t := range batch {
		t := t
		t.coalesce.End()
		t.run = t.exec.StartChild("run")
		b.events.publish(t.addr, "running", "", 0, 0)
		run := func(ctx context.Context) (Result, error) {
			return ExecuteSpec(ctx, t.resolved, b.reg, func(done, total int, name string) {
				b.events.publish(t.addr, "progress", name, done, total)
			})
		}
		if b.wrapJob != nil {
			run = b.wrapJob(t.addr, run)
		}
		jobs = append(jobs, runner.Job[Result]{Key: t.spec, Run: run, Span: t.run})
	}
	set := runner.Run(b.runCtx, jobs, b.opts)
	for _, t := range batch {
		res, ok := set.Value(t.spec)
		if !ok {
			err := set.Err(t.spec)
			t.run.SetAttr("error", err.Error())
			t.run.End()
			t.finish(nil, err)
			continue
		}
		t.run.End()
		storeSpan := t.exec.StartChild("store")
		data, err := res.Marshal()
		if err != nil {
			storeSpan.SetAttr("error", err.Error())
			storeSpan.End()
			t.finish(nil, err)
			continue
		}
		// A storage failure degrades the cache, not the request: the
		// submitter still gets its manifest, the next identical
		// submission just recomputes.
		if err := b.store.Put(t.addr, data); err != nil {
			b.reg.Counter(CtrStoreErrors).Inc()
			storeSpan.SetAttr("error", err.Error())
			b.warnf("serve: caching result %s: %v", t.addr, err)
		}
		storeSpan.End()
		// "stored" precedes the waiters' terminal "done": finish() is
		// what unblocks them.
		b.events.publish(t.addr, "stored", "", 0, 0)
		t.finish(data, nil)
	}
}

// shutdown drains the batcher: the caller must have closed the
// admission queue first. In-flight batches run to completion; queued
// tasks settle with errShuttingDown. It returns ctx.Err() if the
// executing batches outlive the deadline, in which case the caller is
// expected to cancel the run context to abandon them.
func (b *batcher) shutdown(ctx context.Context) error {
	close(b.stop)
	<-b.loopDone
	done := make(chan struct{})
	go func() {
		b.wg.Wait()
		close(done)
	}()
	select {
	case <-done:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}
