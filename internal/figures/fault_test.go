package figures

import (
	"path/filepath"
	"reflect"
	"strings"
	"testing"
	"time"

	"sdbp/internal/cache"
	"sdbp/internal/runner"
	"sdbp/internal/sim"
	"sdbp/internal/workloads"
)

// faultySpec is an injected policy whose construction panics, the way
// a bad geometry or sampler config does in production code.
func faultySpec() PolicySpec {
	return PolicySpec{"Faulty", func(int) cache.Policy {
		panic("injected: invalid policy configuration")
	}}
}

// TestFaultInjectionMatrix is the acceptance scenario: a panicking
// policy in a full 29-benchmark matrix must not abort the sweep. Every
// other cell completes, the failed cells render as ERR, and the
// environment reports the failures for a non-zero exit.
func TestFaultInjectionMatrix(t *testing.T) {
	if testing.Short() {
		t.Skip("heavy")
	}
	env := DefaultEnv()
	benches := sortedNames(workloads.All()) // all 29 benchmarks
	specs := []PolicySpec{LRUSpec(), faultySpec()}
	m := RunMatrixEnv(env, "fault-test", benches, specs, sim.SingleOptions{Scale: tinyScale})

	if len(m.Benchmarks) != 29 {
		t.Fatalf("benchmarks = %d, want 29", len(m.Benchmarks))
	}
	for _, b := range m.Benchmarks {
		if m.Err(b, "LRU") != nil {
			t.Errorf("healthy cell (%s, LRU) failed: %v", b, m.Err(b, "LRU"))
		}
		if m.Get(b, "LRU").Instructions == 0 {
			t.Errorf("healthy cell (%s, LRU) empty", b)
		}
		if m.Err(b, "Faulty") == nil {
			t.Errorf("faulty cell (%s, Faulty) did not report its panic", b)
		}
		if !strings.Contains(m.Err(b, "Faulty").Error(), "injected") {
			t.Errorf("faulty cell error lost the panic value: %v", m.Err(b, "Faulty"))
		}
	}
	if !env.Failed() {
		t.Error("environment did not record the failures")
	}
	if got := len(env.Failures()); got != 29 {
		t.Errorf("failures = %d, want 29", got)
	}

	// A renderer over the damaged matrix must mark the cells ERR and
	// still print real values for the healthy baseline.
	rb := &RandomBaseline{Matrix: m, LRU: m}
	out := rb.RenderFig7()
	if !strings.Contains(out, "ERR") {
		t.Errorf("render does not mark failed cells:\n%s", out)
	}
	if !strings.Contains(out, "1.000") { // LRU normalized to itself
		t.Errorf("render lost healthy cells:\n%s", out)
	}
}

// TestHungJobTimeoutInMatrix drives the per-job timeout through the
// figures path: with an impossibly small timeout every cell times out,
// renders ERR, and the sweep still completes.
func TestHungJobTimeoutInMatrix(t *testing.T) {
	env := DefaultEnv()
	env.Timeout = time.Nanosecond
	benches := sortedNames(workloads.Subset())[:2]
	m := RunMatrixEnv(env, "timeout-test", benches, []PolicySpec{LRUSpec()}, sim.SingleOptions{Scale: tinyScale})
	for _, b := range m.Benchmarks {
		if m.Err(b, "LRU") == nil {
			t.Errorf("cell (%s, LRU) beat a 1ns timeout", b)
		}
	}
	for _, f := range env.Failures() {
		if !f.TimedOut {
			t.Errorf("%s failed without TimedOut: %v", f.Key, f.Err)
		}
	}
}

// TestMatrixDeterministicUnderParallelism guards the paper's
// reproducibility claim against result-map races: two parallel sweeps
// must produce identical results. Run under -race in CI.
func TestMatrixDeterministicUnderParallelism(t *testing.T) {
	benches := sortedNames(workloads.Subset())[:4]
	specs := append([]PolicySpec{LRUSpec()}, StandardPolicies()[:2]...)
	run := func() *Matrix {
		m := RunMatrix(benches, specs, sim.SingleOptions{Scale: tinyScale})
		// Duration is wall-clock observability metadata, not simulated
		// work; normalize it the way the golden tests strip section
		// footers.
		for k, r := range m.Results {
			r.Duration = 0
			m.Results[k] = r
		}
		return m
	}
	a, b := run(), run()
	if !reflect.DeepEqual(a.Results, b.Results) {
		t.Error("parallel sweeps disagree")
	}
	if len(a.Errors) != 0 || len(b.Errors) != 0 {
		t.Errorf("unexpected failures: %v %v", a.Errors, b.Errors)
	}
}

// TestResumeRendersByteForByte checks the checkpoint/resume contract:
// a resumed sweep restores every cell from the journal (the tripwire
// specs panic if any cell re-runs) and renders exactly the same table
// as the uninterrupted run.
func TestResumeRendersByteForByte(t *testing.T) {
	path := filepath.Join(t.TempDir(), "figures.ckpt")
	benches := sortedNames(workloads.Subset())[:3]
	specs := append([]PolicySpec{LRUSpec()}, StandardPolicies()[:2]...)
	opts := sim.SingleOptions{Scale: tinyScale}

	ck, err := runner.OpenCheckpoint(path, false)
	if err != nil {
		t.Fatal(err)
	}
	env1 := DefaultEnv()
	env1.Checkpoint = ck
	m1 := RunMatrixEnv(env1, "resume-test", benches, specs, opts)
	rb1 := &RandomBaseline{Matrix: m1, LRU: m1}
	first := rb1.RenderFig7() + rb1.RenderFig8()
	if env1.Failed() {
		t.Fatalf("baseline run failed: %v", env1.Failures())
	}
	if err := ck.Close(); err != nil {
		t.Fatal(err)
	}

	ck2, err := runner.OpenCheckpoint(path, true)
	if err != nil {
		t.Fatal(err)
	}
	defer ck2.Close()
	tripwire := make([]PolicySpec, len(specs))
	for i, s := range specs {
		tripwire[i] = PolicySpec{s.Name, func(int) cache.Policy {
			panic("cell re-ran despite checkpoint")
		}}
	}
	env2 := DefaultEnv()
	env2.Checkpoint = ck2
	m2 := RunMatrixEnv(env2, "resume-test", benches, tripwire, opts)
	if env2.Failed() {
		t.Fatalf("resume re-ran checkpointed cells: %v", env2.Failures())
	}
	rb2 := &RandomBaseline{Matrix: m2, LRU: m2}
	second := rb2.RenderFig7() + rb2.RenderFig8()
	if first != second {
		t.Errorf("resumed render differs from uninterrupted run:\n--- first\n%s\n--- resumed\n%s", first, second)
	}
}

// TestResumeRecomputesOnlyFailedCells is the second half of the
// acceptance scenario: after a run with an injected fault, a -resume
// run re-executes exactly the failed cells and heals the matrix.
func TestResumeRecomputesOnlyFailedCells(t *testing.T) {
	path := filepath.Join(t.TempDir(), "heal.ckpt")
	benches := sortedNames(workloads.Subset())[:3]
	opts := sim.SingleOptions{Scale: tinyScale}

	ck, err := runner.OpenCheckpoint(path, false)
	if err != nil {
		t.Fatal(err)
	}
	env1 := DefaultEnv()
	env1.Checkpoint = ck
	m1 := RunMatrixEnv(env1, "heal-test", benches, []PolicySpec{LRUSpec(), faultySpec()}, opts)
	if len(m1.Errors) != 3 {
		t.Fatalf("first run failed cells = %d, want 3", len(m1.Errors))
	}
	ck.Close()

	// Resume with the fault fixed: the healthy cells must come from the
	// checkpoint (LRU tripwire), only the previously failed cells run.
	ck2, err := runner.OpenCheckpoint(path, true)
	if err != nil {
		t.Fatal(err)
	}
	defer ck2.Close()
	healed := []PolicySpec{
		{"LRU", func(int) cache.Policy { panic("healthy cell re-ran despite checkpoint") }},
		{"Faulty", StandardPolicies()[0].Make}, // the "fixed config"
	}
	env2 := DefaultEnv()
	env2.Checkpoint = ck2
	m2 := RunMatrixEnv(env2, "heal-test", benches, healed, opts)
	if env2.Failed() {
		t.Fatalf("healed resume failed: %v", env2.Failures())
	}
	for _, b := range m2.Benchmarks {
		if m2.Get(b, "LRU").Instructions == 0 {
			t.Errorf("checkpointed cell (%s, LRU) lost", b)
		}
		if m2.Get(b, "Faulty").Instructions == 0 {
			t.Errorf("recomputed cell (%s, Faulty) empty", b)
		}
	}
}
