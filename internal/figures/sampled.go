package figures

// Sampled-simulation validation pass (cmd/experiments -sampled): replay
// committed per-benchmark sampling plans against a policy set and
// compare the estimates, with their error bounds, to committed
// full-run goldens. The plans and goldens are built together by the
// -update-sampled workflow (a pilot run selects each plan, full runs
// record the truth); the validation pass then proves the estimates
// honest — every cell within its own reported bound — at a fraction of
// full-run cost, since each benchmark's stream is generated once and
// only the selected windows are simulated per policy.
//
// Bounds are pilot-calibrated: the pilot run is itself a full
// simulation, so each plan records the pilot policy's true IPC and
// miss rate, and the validation pass widens every bound by the pilot
// policy's achieved sampling error on that benchmark (Check). Recency
// policies land within a few percent and tight bounds; the
// feedback-coupled predictor's residual state bias is measured and
// reported rather than hidden.

import (
	"context"
	"fmt"
	"math"
	"sort"
	"strings"
	"time"

	"sdbp/internal/runner"
	"sdbp/internal/sampling"
	"sdbp/internal/sim"
	"sdbp/internal/workloads"
)

// The pinned validation set: benchmarks spanning the paper's behavioral
// range (streaming, pointer-chasing, loop-heavy), and policies covering
// two recency baselines (LRU, NRU), the paper's sampling dead block
// predictor — the pilot policy, so its cells double as the bound
// calibration (see Check) — and SHiP, a feedback-coupled policy the
// pilot did not shape the plans for. The scale is deliberately large:
// the LLC's warm-up transient is an absolute access count, so only
// long streams with long intervals amortize it; at this scale the
// selected windows cover about a third of the stream while the
// recency-policy cells stay within a few percent of the full-run
// truth.
var (
	SampledValidationBenches = []string{
		"400.perlbench", "429.mcf", "433.milc",
		"456.hmmer", "462.libquantum", "473.astar",
	}
	SampledValidationPolicies = []string{"LRU", "NRU", "Sampler", "SHiP"}
)

const (
	SampledValidationScale    = 8.0
	SampledValidationInterval = 500_000
	SampledValidationClusters = 20
	// SampledValidationWarmup is the functional-warming window before
	// each measured interval, in intervals. One 500k-instruction
	// interval is past the LLC's cold-start transient at this geometry,
	// but feedback-coupled policies carry predictor state (SHiP's
	// signature counters) that diverges over the skipped gaps and needs
	// a second interval to reconverge — measured on 462.libquantum,
	// where one interval leaves an 8% IPC bias and two intervals bring
	// it under 1.5%. Longer warm-ups buy nothing and cost wall time.
	SampledValidationWarmup = 2.0
)

// SampledPlans is the committed plan set: one sampling plan per
// benchmark, plus the selector configuration the plans were built
// with. cmd/experiments embeds the committed JSON form.
type SampledPlans struct {
	// Scale is the stream scale the pilots ran at; plans are only valid
	// at their pilot scale (window boundaries are instruction counts
	// into that exact stream).
	Scale float64 `json:"scale"`
	// Interval, Clusters and Pilot record the selector configuration.
	Interval uint64 `json:"interval"`
	Clusters int    `json:"clusters"`
	Pilot    string `json:"pilot_policy"`
	// Plans maps benchmark name to its selection.
	Plans map[string]sampling.Plan `json:"plans"`
}

// Benches returns the plan set's benchmark names, sorted.
func (p *SampledPlans) Benches() []string {
	out := make([]string, 0, len(p.Plans))
	for name := range p.Plans {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

// SampledGoldenCell is one committed full-run reference value set.
type SampledGoldenCell struct {
	Bench    string  `json:"bench"`
	Policy   string  `json:"policy"`
	IPC      float64 `json:"ipc"`
	CPI      float64 `json:"cpi"`
	MPKI     float64 `json:"mpki"`
	MissRate float64 `json:"miss_rate"`
}

// SampledGolden is the committed full-run truth for the validation set.
type SampledGolden struct {
	Scale float64             `json:"scale"`
	Cells []SampledGoldenCell `json:"cells"`
}

// Cell finds a golden cell.
func (g *SampledGolden) Cell(bench, policy string) (SampledGoldenCell, bool) {
	for _, c := range g.Cells {
		if c.Bench == bench && c.Policy == policy {
			return c, true
		}
	}
	return SampledGoldenCell{}, false
}

// SampledCell is one sampled run's estimate.
type SampledCell struct {
	Bench    string            `json:"bench"`
	Policy   string            `json:"policy"`
	Estimate sampling.Estimate `json:"estimate"`
}

// SampledValidation is the completed validation pass.
type SampledValidation struct {
	Plans    *SampledPlans
	Policies []string
	// Cells holds completed cells, benchmark-major in plan order;
	// failed jobs are absent (recorded on the Env).
	Cells []SampledCell
	// Wall is the pass's total wall time (generation + replays),
	// for the -sampled speedup report; excluded from any golden.
	Wall time.Duration
}

// BuildSampledPlansEnv runs one pilot per benchmark — a full probed
// run under the pilot policy — and selects each benchmark's plan. This
// is the expensive half of the -update-sampled workflow; -sampled
// itself replays committed plans and never pilots.
func BuildSampledPlansEnv(e *Env, benches []string, scale float64, interval uint64, clusters int) *SampledPlans {
	cfg := sampling.Config{Clusters: clusters, WarmupFrac: SampledValidationWarmup}
	pilot := preset("Sampler")
	key := func(bench string) string {
		return fmt.Sprintf("sampled-pilot|s=%g|i=%d|k=%d|w=%g|%s",
			scaleOr1(scale), interval, clusters, SampledValidationWarmup, bench)
	}
	var jobs []runner.Job[*sampling.Plan]
	for _, name := range benches {
		name := name
		jobs = append(jobs, runner.Job[*sampling.Plan]{
			Key: key(name),
			Run: func(context.Context) (*sampling.Plan, error) {
				w, err := workloads.ByName(name)
				if err != nil {
					return nil, err
				}
				plan, err := sim.SelectPlan(w, pilot.Make(1), sim.SingleOptions{Scale: scale}, interval, cfg)
				if err != nil {
					return nil, err
				}
				return &plan, nil
			},
		})
	}
	set := runJobs(e, jobs)
	out := &SampledPlans{
		Scale:    scaleOr1(scale),
		Interval: interval,
		Clusters: clusters,
		Pilot:    pilot.Name,
		Plans:    map[string]sampling.Plan{},
	}
	for _, name := range benches {
		if p, ok := set.Value(key(name)); ok && p != nil {
			out.Plans[name] = *p
		}
	}
	return out
}

// RunSampledGoldenEnv runs the full (unsampled) reference simulations
// for every benchmark/policy cell — the truth the estimates are
// checked against. Used by -update-sampled to regenerate the committed
// golden, and by the CI wall-time check as the full-run cost baseline.
func RunSampledGoldenEnv(e *Env, benches, policies []string, scale float64) *SampledGolden {
	key := func(bench, pol string) string {
		return fmt.Sprintf("sampled-golden|s=%g|%s|%s", scaleOr1(scale), bench, pol)
	}
	type cellVal struct{ c SampledGoldenCell }
	var jobs []runner.Job[*cellVal]
	for _, bench := range benches {
		for _, pol := range policies {
			bench, pol := bench, pol
			spec := preset(pol)
			jobs = append(jobs, runner.Job[*cellVal]{
				Key: key(bench, pol),
				Run: func(context.Context) (*cellVal, error) {
					w, err := workloads.ByName(bench)
					if err != nil {
						return nil, err
					}
					r := sim.RunSingle(w, spec.Make(1), sim.SingleOptions{Scale: scale})
					c := SampledGoldenCell{Bench: bench, Policy: pol, IPC: r.IPC, MPKI: r.MPKI}
					if r.Cycles > 0 {
						c.CPI = float64(r.Cycles) / float64(r.Instructions)
					}
					if r.LLC.Accesses > 0 {
						c.MissRate = float64(r.LLC.Misses) / float64(r.LLC.Accesses)
					}
					return &cellVal{c}, nil
				},
			})
		}
	}
	set := runJobs(e, jobs)
	out := &SampledGolden{Scale: scaleOr1(scale)}
	for _, bench := range benches {
		for _, pol := range policies {
			if v, ok := set.Value(key(bench, pol)); ok && v != nil {
				out.Cells = append(out.Cells, v.c)
			}
		}
	}
	return out
}

// RunSampledValidationEnv replays the committed plans against the
// policy set: one job per benchmark generates the stream once,
// materializes the plan's windows, and replays them under every
// policy. The result is a pure function of (plans, policies) — job
// scheduling cannot reorder or perturb cells.
func RunSampledValidationEnv(e *Env, plans *SampledPlans, policies []string) *SampledValidation {
	start := time.Now()
	benches := plans.Benches()
	key := func(bench string) string {
		return fmt.Sprintf("sampled|s=%g|i=%d|k=%d|p=%s|%s",
			plans.Scale, plans.Interval, plans.Clusters, strings.Join(policies, "+"), bench)
	}
	specs := make([]PolicySpec, len(policies))
	for i, p := range policies {
		specs[i] = preset(p)
	}
	var jobs []runner.Job[[]SampledCell]
	for _, bench := range benches {
		bench := bench
		plan := plans.Plans[bench]
		jobs = append(jobs, runner.Job[[]SampledCell]{
			Key: key(bench),
			Run: func(context.Context) ([]SampledCell, error) {
				w, err := workloads.ByName(bench)
				if err != nil {
					return nil, err
				}
				mat, err := sim.MaterializeSampled(w, &plan, plans.Scale)
				if err != nil {
					return nil, err
				}
				cells := make([]SampledCell, 0, len(specs))
				for i, spec := range specs {
					res, err := sim.RunSampledTrace(mat, spec.Make(1), sim.SingleOptions{Scale: plans.Scale})
					if err != nil {
						return nil, fmt.Errorf("%s/%s: %w", bench, policies[i], err)
					}
					cells = append(cells, SampledCell{Bench: bench, Policy: policies[i], Estimate: res.Estimate})
				}
				return cells, nil
			},
		})
	}
	set := runJobs(e, jobs)
	v := &SampledValidation{Plans: plans, Policies: policies}
	for _, bench := range benches {
		if cells, ok := set.Value(key(bench)); ok {
			v.Cells = append(v.Cells, cells...)
		}
	}
	v.Wall = time.Since(start)
	return v
}

// SampledCheck is one cell's estimate-vs-golden verdict.
type SampledCheck struct {
	SampledCell
	Golden SampledGoldenCell
	// IPCErr and MissErr are absolute errors vs the golden; RelIPC and
	// RelMiss the relative ones.
	IPCErr, MissErr float64
	RelIPC, RelMiss float64
	// BoundIPC and BoundMiss are the reported error bounds the cell is
	// checked against: the estimate's own half-width (stratified CI plus
	// static bias allowance) widened by the benchmark's pilot-calibrated
	// bias (see Check).
	BoundIPC, BoundMiss float64
	WithinIPC           bool
	WithinMiss          bool
}

// Within reports whether both estimates cover their golden.
func (c SampledCheck) Within() bool { return c.WithinIPC && c.WithinMiss }

// pilotBias returns each benchmark's measured sampling error on the
// pilot policy: the absolute IPC and miss-rate difference between the
// pilot policy's sampled estimate and the full-run values the plan
// recorded from its own pilot run. The stratified CI captures sampling
// variance, but the residual state bias of resuming from
// approximately-warmed cache and predictor state is workload-specific
// and largest for feedback-coupled policies; the pilot (the paper's
// sampling predictor) is exactly such a policy, so its achieved error
// is an empirical, per-benchmark calibration of that bias rather than
// a guess. Benchmarks without a pilot cell or without recorded pilot
// truth calibrate to zero.
func (v *SampledValidation) pilotBias() (ipc, miss map[string]float64) {
	ipc, miss = map[string]float64{}, map[string]float64{}
	for _, cell := range v.Cells {
		if cell.Policy != v.Plans.Pilot {
			continue
		}
		plan, ok := v.Plans.Plans[cell.Bench]
		if !ok || plan.PilotIPC == 0 {
			continue
		}
		ipc[cell.Bench] = math.Abs(cell.Estimate.IPC - plan.PilotIPC)
		miss[cell.Bench] = math.Abs(cell.Estimate.MissRate - plan.PilotMissRate)
	}
	return ipc, miss
}

// FeedbackCoupled reports whether a policy's sampled estimate carries
// predictor-state warm-up bias and cluster-mismatch variance: the
// pilot's own dead-block predictor, and SHiP's signature history
// table. Recency policies (LRU, NRU, PLRU, ...) are not
// feedback-coupled — their state washes out within the warm-up window.
func FeedbackCoupled(policy, pilot string) bool {
	return policy == pilot || policy == "SHiP"
}

// feedbackFactor widens the bound for feedback-coupled cells. The CI
// half-width is derived from the pilot's within-cluster interval
// spreads, and the plan's clusters were chosen to represent the
// pilot's trajectory; a non-pilot feedback policy's interval behavior
// decorrelates from that clustering, so its true estimator variance
// exceeds the pilot proxy. Measured on the validation suite with
// exact (full-stream) functional warming — where state bias is zero
// and all residual error is estimator variance — the worst exceedance
// is 1.22x; the factor of two covers it with margin while keeping the
// bound the same order as the reported CI.
const feedbackFactor = 2.0

// Check compares every completed cell against the committed golden,
// each bounded by its estimate's half-width plus the benchmark's
// pilot-calibrated bias (doubled for feedback-coupled policies; see
// feedbackFactor). Cells without a golden counterpart are reported as
// violations (the golden must be regenerated when the validation set
// changes).
func (v *SampledValidation) Check(golden *SampledGolden) []SampledCheck {
	biasIPC, biasMiss := v.pilotBias()
	out := make([]SampledCheck, 0, len(v.Cells))
	for _, cell := range v.Cells {
		chk := SampledCheck{SampledCell: cell}
		g, ok := golden.Cell(cell.Bench, cell.Policy)
		if ok {
			chk.Golden = g
			chk.IPCErr = math.Abs(cell.Estimate.IPC - g.IPC)
			chk.MissErr = math.Abs(cell.Estimate.MissRate - g.MissRate)
			if g.IPC != 0 {
				chk.RelIPC = chk.IPCErr / math.Abs(g.IPC)
			}
			if g.MissRate != 0 {
				chk.RelMiss = chk.MissErr / math.Abs(g.MissRate)
			}
			chk.BoundIPC = cell.Estimate.IPCHalf + biasIPC[cell.Bench]
			chk.BoundMiss = cell.Estimate.MissRateHalf + biasMiss[cell.Bench]
			if FeedbackCoupled(cell.Policy, v.Plans.Pilot) {
				chk.BoundIPC *= feedbackFactor
				chk.BoundMiss *= feedbackFactor
			}
			chk.WithinIPC = chk.IPCErr <= chk.BoundIPC
			chk.WithinMiss = chk.MissErr <= chk.BoundMiss
		}
		out = append(out, chk)
	}
	return out
}

// Violations returns the cells whose golden value falls outside the
// reported bound (or that have no golden at all).
func (v *SampledValidation) Violations(golden *SampledGolden) []SampledCheck {
	var out []SampledCheck
	for _, chk := range v.Check(golden) {
		if !chk.Within() {
			out = append(out, chk)
		}
	}
	return out
}

// SimFraction returns the mean simulated-instruction fraction across
// completed cells (the work ratio the -sampled report quotes).
func (v *SampledValidation) SimFraction() float64 {
	var xs []float64
	for _, c := range v.Cells {
		xs = append(xs, c.Estimate.SimFraction)
	}
	return meanFinite(xs)
}

// Render prints the validation table: estimate ± bound vs golden for
// IPC and miss rate, per cell, with a verdict column and a summary.
func (v *SampledValidation) Render(golden *SampledGolden) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "Sampled simulation: estimates vs committed full-run goldens\n")
	fmt.Fprintf(&sb, "scale %g, interval %d, %d clusters, pilot %s; mean simulated fraction %s\n",
		v.Plans.Scale, v.Plans.Interval, v.Plans.Clusters, v.Plans.Pilot,
		fmtVal("%.1f%%", 100*v.SimFraction()))
	fmt.Fprintf(&sb, "bounds: stratified 95%% CI + per-benchmark pilot-calibrated bias\n\n")
	header := []string{"benchmark", "policy", "IPC est", "±", "IPC full", "rel%", "miss est", "±", "miss full", "rel%", "ok"}
	var rows [][]string
	checks := v.Check(golden)
	within := 0
	for _, c := range checks {
		verdict := "OK"
		if !c.Within() {
			verdict = "VIOLATION"
		} else {
			within++
		}
		rows = append(rows, []string{
			c.Bench, c.Policy,
			fmtVal("%.4f", c.Estimate.IPC), fmtVal("%.4f", c.BoundIPC),
			fmtVal("%.4f", c.Golden.IPC), fmtVal("%.2f", 100*c.RelIPC),
			fmtVal("%.4f", c.Estimate.MissRate), fmtVal("%.4f", c.BoundMiss),
			fmtVal("%.4f", c.Golden.MissRate), fmtVal("%.2f", 100*c.RelMiss),
			verdict,
		})
	}
	sb.WriteString(renderTable("", header, rows))
	fmt.Fprintf(&sb, "\n%d/%d cells within their reported error bounds\n", within, len(checks))
	return sb.String()
}
