package figures

import (
	"context"
	"fmt"
	"strings"

	"sdbp/internal/cache"
	"sdbp/internal/exp"
	"sdbp/internal/power"
	"sdbp/internal/runner"
	"sdbp/internal/sim"
	"sdbp/internal/workloads"
)

// predictorStorage instantiates each predictor against the paper's 2MB
// LLC geometry and reports its structures.
func predictorStorage() map[string][]power.Structure {
	cfg := defaultLLC()
	out := make(map[string][]power.Structure, 3)
	for _, name := range []string{"reftrace", "counting", "sampler"} {
		p := exp.MustPredictor(name)
		p.Reset(cfg.Sets(), cfg.Ways)
		out[name] = p.Storage()
	}
	return out
}

// RenderTable1 prints the predictor storage overheads (Table I). The
// paper's totals are 72KB (reftrace), 108KB (counting), 13.75KB
// (sampler).
func RenderTable1() string {
	header := []string{"predictor", "predictor structures (KB)", "cache metadata (KB)", "total (KB)"}
	var rows [][]string
	storage := predictorStorage()
	for _, name := range []string{"reftrace", "counting", "sampler"} {
		var predKB, metaKB float64
		for _, s := range storage[name] {
			if s.Kind == power.CacheMetadata {
				metaKB += s.KB()
			} else {
				predKB += s.KB()
			}
		}
		rows = append(rows, []string{
			name,
			fmt.Sprintf("%.2f", predKB),
			fmt.Sprintf("%.2f", metaKB),
			fmt.Sprintf("%.2f", predKB+metaKB),
		})
	}
	return renderTable("Table I: storage overhead for the predictors (2MB LLC)", header, rows)
}

// RenderTable2 prints the power breakdown (Table II) from the analytic
// CACTI substitute, plus each predictor's share of the baseline LLC
// budget that the paper quotes in the text.
func RenderTable2() string {
	m := power.DefaultModel()
	header := []string{"predictor",
		"pred leak (W)", "pred dyn (W)",
		"meta leak (W)", "meta dyn (W)",
		"total leak (W)", "total dyn (W)",
		"% LLC leak", "% LLC dyn"}
	var rows [][]string
	baseLeak, baseDyn := m.BaselineLLC()
	storage := predictorStorage()
	for _, name := range []string{"reftrace", "counting", "sampler"} {
		rep := m.Evaluate(name, storage[name])
		rows = append(rows, []string{
			name,
			fmt.Sprintf("%.4f", rep.PredictorLeakage),
			fmt.Sprintf("%.4f", rep.PredictorDynamic),
			fmt.Sprintf("%.4f", rep.MetadataLeakage),
			fmt.Sprintf("%.4f", rep.MetadataDynamic),
			fmt.Sprintf("%.4f", rep.TotalLeakage()),
			fmt.Sprintf("%.4f", rep.TotalDynamic()),
			fmt.Sprintf("%.1f", rep.TotalLeakage()/baseLeak*100),
			fmt.Sprintf("%.1f", rep.TotalDynamic()/baseDyn*100),
		})
	}
	out := renderTable("Table II: predictor power (analytic CACTI substitute)", header, rows)
	out += fmt.Sprintf("baseline 2MB LLC: leakage %.3fW, peak dynamic %.2fW\n", baseLeak, baseDyn)
	return out
}

// Table3 holds the benchmark characterization (Table III): baseline
// MPKI under LRU, optimal MPKI under MIN with bypass, and baseline IPC.
type Table3 struct {
	Rows []Table3Row
}

// Table3Row is one benchmark's characterization.
type Table3Row struct {
	Name     string
	Class    string
	InSubset bool
	MPKILRU  float64
	MPKIMin  float64
	IPCLRU   float64
}

// RunTable3 characterizes all 29 benchmarks.
func RunTable3(scale float64) *Table3 {
	return RunTable3Env(DefaultEnv(), scale)
}

// RunTable3Env is RunTable3 on a shared environment. A benchmark whose
// characterization run fails keeps its identity columns and renders
// its metrics as ERR.
func RunTable3Env(e *Env, scale float64) *Table3 {
	benches := sortedNames(workloads.All())
	t := &Table3{Rows: make([]Table3Row, len(benches))}
	key := func(bench string) string {
		return fmt.Sprintf("table3|s=%g|%s", scaleOr1(scale), bench)
	}
	var jobs []runner.Job[Table3Row]
	for _, w := range benches {
		w := w
		jobs = append(jobs, runner.Job[Table3Row]{
			Key: key(w.Name),
			Run: func(context.Context) (Table3Row, error) {
				base := sim.RunSingle(w, LRUSpec().Make(1), sim.SingleOptions{Scale: scale})
				return Table3Row{
					Name:     w.Name,
					Class:    w.Class,
					InSubset: w.InSubset,
					MPKILRU:  base.MPKI,
					MPKIMin:  OptimalMPKI(w, scale),
					IPCLRU:   base.IPC,
				}, nil
			},
		})
	}
	set := runJobs(e, jobs)
	for i, w := range benches {
		if row, ok := set.Value(key(w.Name)); ok {
			t.Rows[i] = row
		} else {
			t.Rows[i] = Table3Row{
				Name: w.Name, Class: w.Class, InSubset: w.InSubset,
				MPKILRU: errVal(), MPKIMin: errVal(), IPCLRU: errVal(),
			}
		}
	}
	return t
}

// Render prints Table III. Subset members are marked with '*' (the
// paper sets them in boldface).
func (t *Table3) Render() string {
	header := []string{"benchmark", "behavior", "MPKI (LRU)", "MPKI (MIN)", "IPC (LRU)"}
	var rows [][]string
	for _, r := range t.Rows {
		name := r.Name
		if r.InSubset {
			name += " *"
		}
		rows = append(rows, []string{
			name, r.Class,
			fmtVal("%.2f", r.MPKILRU),
			fmtVal("%.2f", r.MPKIMin),
			fmtVal("%.3f", r.IPCLRU),
		})
	}
	return renderTable("Table III: benchmark characterization (2MB LLC; * = memory-intensive subset)", header, rows)
}

// SensitivitySizes are the LLC capacities of Table IV's cache
// sensitivity curves, 128KB through 32MB.
var SensitivitySizes = []int{128 << 10, 256 << 10, 512 << 10, 1 << 20, 2 << 20, 4 << 20, 8 << 20, 16 << 20, 32 << 20}

// Table4 holds each mix's membership and cache sensitivity curve: the
// sum of members' single-core MPKIs at each LLC capacity.
type Table4 struct {
	Mixes  []workloads.Mix
	Curves map[string][]float64 // mix name -> MPKI per SensitivitySizes entry
}

// RunTable4 computes the sensitivity curves. Each distinct benchmark is
// simulated once per size and shared across mixes.
func RunTable4(scale float64) *Table4 {
	return RunTable4Env(DefaultEnv(), scale)
}

// RunTable4Env is RunTable4 on a shared environment. A failed point
// poisons (only) the curve points of mixes containing that benchmark,
// which render as ERR.
func RunTable4Env(e *Env, scale float64) *Table4 {
	mixes := workloads.Mixes()
	needed := map[string]bool{}
	var names []string
	for _, m := range mixes {
		for _, b := range m.Members {
			if !needed[b] {
				needed[b] = true
				names = append(names, b)
			}
		}
	}

	key := func(bench string, size int) string {
		return fmt.Sprintf("table4|s=%g|%s|%d", scaleOr1(scale), bench, size)
	}
	var jobs []runner.Job[float64]
	for _, bench := range names {
		w, err := workloads.ByName(bench)
		if err != nil {
			panic(err) // mixes reference only known benchmarks
		}
		for _, size := range SensitivitySizes {
			w, size := w, size
			jobs = append(jobs, runner.Job[float64]{
				Key: key(w.Name, size),
				Run: func(context.Context) (float64, error) {
					r := sim.RunSingle(w, LRUSpec().Make(1), sim.SingleOptions{
						Scale: scale,
						LLC:   cache.Config{Name: "LLC", SizeBytes: size, Ways: 16},
					})
					return r.MPKI, nil
				},
			})
		}
	}
	set := runJobs(e, jobs)

	t := &Table4{Mixes: mixes, Curves: make(map[string][]float64)}
	for _, m := range mixes {
		curve := make([]float64, len(SensitivitySizes))
		for i, size := range SensitivitySizes {
			for _, b := range m.Members {
				if v, ok := set.Value(key(b, size)); ok {
					curve[i] += v
				} else {
					curve[i] = errVal()
					break
				}
			}
		}
		t.Curves[m.Name] = curve
	}
	return t
}

// Render prints Table IV: each mix's members and its MPKI-vs-capacity
// curve.
func (t *Table4) Render() string {
	var sb strings.Builder
	sb.WriteString("Table IV: multi-core workload mixes with cache sensitivity curves\n")
	sb.WriteString("(summed member MPKI at LLC sizes 128KB..32MB)\n")
	for _, m := range t.Mixes {
		fmt.Fprintf(&sb, "%-7s %s\n", m.Name, strings.Join(m.Members[:], " "))
		sb.WriteString("        ")
		for i, size := range SensitivitySizes {
			label := fmt.Sprintf("%dK", size>>10)
			if size >= 1<<20 {
				label = fmt.Sprintf("%dM", size>>20)
			}
			fmt.Fprintf(&sb, "%s:%s", label, fmtVal("%.1f", t.Curves[m.Name][i]))
			if i < len(SensitivitySizes)-1 {
				sb.WriteString("  ")
			}
		}
		sb.WriteString("\n")
	}
	return sb.String()
}
