package figures

import (
	"context"
	"fmt"

	"sdbp/internal/probe"
	"sdbp/internal/runner"
	"sdbp/internal/sim"
	"sdbp/internal/workloads"
)

// Introspection holds the interval-telemetry pass: one probed run per
// memory-intensive benchmark under the paper's sampling dead-block
// policy, in deterministic (lexical benchmark) order. The exporters in
// package probe and cmd/report consume Series directly.
type Introspection struct {
	// Series is the completed runs' telemetry, sorted by benchmark.
	// Failed runs are absent here and recorded on the Env like any
	// other job failure.
	Series []probe.Series
	Scale  float64
	Config probe.Config
}

// RunIntrospectionEnv runs the telemetry pass: the paper's
// memory-intensive subset under the sampling DBRB/LRU policy, with
// interval telemetry and per-PC attribution enabled per cfg. The
// result is a pure function of (scale, cfg): job scheduling and
// GOMAXPROCS cannot reorder or perturb the series (pinned by a test in
// cmd/experiments).
func RunIntrospectionEnv(e *Env, scale float64, cfg probe.Config) *Introspection {
	benches := sortedNames(workloads.Subset())
	key := func(bench string) string {
		return fmt.Sprintf("probe|s=%g|i=%d|k=%d|%s", scaleOr1(scale), cfg.Interval, cfg.TopKOrDefault(), bench)
	}
	smp := preset("Sampler")
	var jobs []runner.Job[*probe.Series]
	for _, w := range benches {
		w := w
		jobs = append(jobs, runner.Job[*probe.Series]{
			Key: key(w.Name),
			Run: func(context.Context) (*probe.Series, error) {
				pol := smp.Make(1)
				r := sim.RunSingle(w, pol, sim.SingleOptions{Scale: scale, Probe: &cfg})
				if r.Probe == nil {
					return nil, fmt.Errorf("probe: run produced no telemetry series")
				}
				return r.Probe, nil
			},
		})
	}
	set := runJobs(e, jobs)
	in := &Introspection{Scale: scale, Config: cfg}
	for _, w := range benches {
		if s, ok := set.Value(key(w.Name)); ok && s != nil {
			in.Series = append(in.Series, *s)
		}
	}
	return in
}

// Intervals returns the total interval count across the pass (a
// deterministic aggregate the run manifest records).
func (in *Introspection) Intervals() int {
	n := 0
	for i := range in.Series {
		n += len(in.Series[i].Intervals)
	}
	return n
}

// PCRows returns the total exported per-PC row count.
func (in *Introspection) PCRows() int {
	n := 0
	for i := range in.Series {
		n += len(in.Series[i].PCs)
	}
	return n
}
