package figures

import (
	"fmt"

	"sdbp/internal/sim"
	"sdbp/internal/stats"
	"sdbp/internal/workloads"
)

// The extension experiments go beyond the paper's figures: the
// related-work predictors it discusses but does not plot (cache bursts,
// AIP), its stated future work (the sampling counting predictor), the
// pseudo-LRU/NRU base policies real LLCs use, and design-space sweeps
// over the sampler's set count and prediction threshold.

// ExtensionPolicies returns the extension comparison set (labels are
// abbreviated to fit the table's columns).
func ExtensionPolicies() []PolicySpec {
	return []PolicySpec{
		preset("Bursts"),
		preset("AIP"),
		presetAs("SmpCount", "SamplingCounting"),
		preset("TimeBased"),
		presetAs("DuelSmp", "Dueling Sampler"),
		preset("PLRU"),
		presetAs("PLRU+S", "PLRU Sampler"),
		preset("SHiP"),
		presetAs("SkewDBP", "Skewed DBP"),
		presetAs("ImpDBP", "Improved DBP"),
		preset("Sampler"),
	}
}

// Extensions holds the extension comparison over the subset.
type Extensions struct {
	Matrix *Matrix
	LRU    *Matrix
}

// RunExtensions sweeps the extension policies over the subset.
func RunExtensions(scale float64) *Extensions {
	return RunExtensionsEnv(DefaultEnv(), scale)
}

// RunExtensionsEnv is RunExtensions on a shared environment.
func RunExtensionsEnv(e *Env, scale float64) *Extensions {
	benches := sortedNames(workloads.Subset())
	return &Extensions{
		Matrix: RunMatrixEnv(e, "extensions", benches, ExtensionPolicies(), sim.SingleOptions{Scale: scale}),
		LRU:    RunMatrixEnv(e, "extensions-lru", benches, []PolicySpec{LRUSpec()}, sim.SingleOptions{Scale: scale}),
	}
}

// Render prints normalized misses and gmean speedup for the extension
// policies.
func (e *Extensions) Render() string {
	pols := e.Matrix.Policies
	header := append([]string{"benchmark"}, pols...)
	var rows [][]string
	mpki := map[string][]float64{}
	speed := map[string][]float64{}
	lruM := e.LRU.Series("LRU", func(r sim.SingleResult) float64 { return r.MPKI })
	lruI := e.LRU.Series("LRU", func(r sim.SingleResult) float64 { return r.IPC })
	for i, b := range e.Matrix.Benchmarks {
		row := []string{b}
		for _, p := range pols {
			m := e.Matrix.Val(b, p, func(r sim.SingleResult) float64 { return r.MPKI }) / lruM[i]
			mpki[p] = append(mpki[p], m)
			speed[p] = append(speed[p],
				e.Matrix.Val(b, p, func(r sim.SingleResult) float64 { return r.IPC })/lruI[i])
			row = append(row, fmtVal("%.3f", m))
		}
		rows = append(rows, row)
	}
	amean := []string{"amean MPKI"}
	gmean := []string{"gmean speedup"}
	for _, p := range pols {
		amean = append(amean, fmtVal("%.3f", meanFinite(mpki[p])))
		gmean = append(gmean, fmtVal("%.3f", geoMeanFinite(speed[p])))
	}
	rows = append(rows, amean, gmean)
	return renderTable("Extensions: related-work predictors, future work, and PLRU bases (misses normalized to LRU)", header, rows)
}

// SamplerSetsSweep measures the design decision of Section III-A: "32
// sets provide a good trade-off between accuracy and efficiency". It
// returns gmean speedup over LRU per sampler set count.
func SamplerSetsSweep(scale float64, setCounts []int) map[int]float64 {
	return SamplerSetsSweepEnv(DefaultEnv(), scale, setCounts)
}

// SamplerSetsSweepEnv is SamplerSetsSweep on a shared environment.
func SamplerSetsSweepEnv(e *Env, scale float64, setCounts []int) map[int]float64 {
	benches := sortedNames(workloads.Subset())
	specs := []PolicySpec{LRUSpec()}
	for _, n := range setCounts {
		specs = append(specs, exprSpec(fmt.Sprintf("sets-%d", n),
			fmt.Sprintf("dbrb(base=lru,pred=sampler(sets=%d))", n)))
	}
	m := RunMatrixEnv(e, "sweep-sets", benches, specs, sim.SingleOptions{Scale: scale})
	lru := m.Series("LRU", func(r sim.SingleResult) float64 { return r.IPC })
	out := make(map[int]float64, len(setCounts))
	for _, n := range setCounts {
		sp := stats.Normalize(m.Series(fmt.Sprintf("sets-%d", n),
			func(r sim.SingleResult) float64 { return r.IPC }), lru)
		out[n] = geoMeanFinite(sp)
	}
	return out
}

// ThresholdSweep measures the design decision of Section III-E: "a
// threshold of eight gives the best accuracy". It returns gmean speedup
// over LRU per confidence threshold.
func ThresholdSweep(scale float64, thresholds []int) map[int]float64 {
	return ThresholdSweepEnv(DefaultEnv(), scale, thresholds)
}

// ThresholdSweepEnv is ThresholdSweep on a shared environment.
func ThresholdSweepEnv(e *Env, scale float64, thresholds []int) map[int]float64 {
	benches := sortedNames(workloads.Subset())
	specs := []PolicySpec{LRUSpec()}
	for _, th := range thresholds {
		specs = append(specs, exprSpec(fmt.Sprintf("thr-%d", th),
			fmt.Sprintf("dbrb(base=lru,pred=sampler(threshold=%d))", th)))
	}
	m := RunMatrixEnv(e, "sweep-threshold", benches, specs, sim.SingleOptions{Scale: scale})
	lru := m.Series("LRU", func(r sim.SingleResult) float64 { return r.IPC })
	out := make(map[int]float64, len(thresholds))
	for _, th := range thresholds {
		sp := stats.Normalize(m.Series(fmt.Sprintf("thr-%d", th),
			func(r sim.SingleResult) float64 { return r.IPC }), lru)
		out[th] = geoMeanFinite(sp)
	}
	return out
}

// RenderSweep formats a parameter sweep result in ascending key order;
// a sweep point whose runs all failed prints as ERR.
func RenderSweep(title, keyName string, result map[int]float64, keys []int) string {
	header := []string{keyName, "gmean speedup"}
	var rows [][]string
	for _, k := range keys {
		rows = append(rows, []string{fmt.Sprintf("%d", k), fmtVal("%.3f", result[k])})
	}
	return renderTable(title, header, rows)
}
