package figures

import (
	"sort"
	"testing"

	"sdbp/internal/probe"
	"sdbp/internal/workloads"
)

// TestIntrospectionPass runs the telemetry pass at a tiny scale and
// checks its structural contract: one series per subset benchmark, in
// lexical order, each reconciling internally.
func TestIntrospectionPass(t *testing.T) {
	cfg := probe.Config{Interval: 20_000, TopK: 5}
	in := RunIntrospectionEnv(DefaultEnv(), 0.01, cfg)
	if want := len(workloads.Subset()); len(in.Series) != want {
		t.Fatalf("%d series, want %d (one per subset benchmark)", len(in.Series), want)
	}
	if !sort.SliceIsSorted(in.Series, func(i, j int) bool {
		return in.Series[i].Run.Benchmark < in.Series[j].Run.Benchmark
	}) {
		t.Error("series not in lexical benchmark order")
	}
	for i := range in.Series {
		s := &in.Series[i]
		if s.Run.Interval != cfg.Interval {
			t.Errorf("%s: header interval %d, want %d", s.Run.Benchmark, s.Run.Interval, cfg.Interval)
		}
		if len(s.Intervals) == 0 {
			t.Errorf("%s: no intervals", s.Run.Benchmark)
			continue
		}
		instr, cycles, _ := s.IntervalTotals()
		if instr != s.Run.Instructions || cycles != s.Run.Cycles {
			t.Errorf("%s: interval totals (%d,%d) != run totals (%d,%d)",
				s.Run.Benchmark, instr, cycles, s.Run.Instructions, s.Run.Cycles)
		}
		pred, pos, fp, _ := s.PCTotals()
		if pred != s.Run.Predictions || pos != s.Run.Positives || fp != s.Run.FalsePositives {
			t.Errorf("%s: per-PC sums (%d,%d,%d) != run accuracy (%d,%d,%d)",
				s.Run.Benchmark, pred, pos, fp, s.Run.Predictions, s.Run.Positives, s.Run.FalsePositives)
		}
		if len(s.PCs) > cfg.TopK+1 {
			t.Errorf("%s: %d PC rows, want <= %d", s.Run.Benchmark, len(s.PCs), cfg.TopK+1)
		}
	}
	if in.Intervals() == 0 || in.PCRows() == 0 {
		t.Errorf("aggregates empty: %d intervals, %d pc rows", in.Intervals(), in.PCRows())
	}
}
