package figures

import (
	"strings"
	"testing"
)

func TestExtensionPoliciesBuild(t *testing.T) {
	for _, spec := range ExtensionPolicies() {
		if spec.Make(1) == nil {
			t.Errorf("%s builds nil", spec.Name)
		}
	}
}

func TestExtensionsRender(t *testing.T) {
	if testing.Short() {
		t.Skip("heavy")
	}
	e := RunExtensions(tinyScale)
	out := e.Render()
	for _, want := range []string{"Bursts", "AIP", "SmpCount", "PLRU", "amean MPKI", "gmean speedup"} {
		if !strings.Contains(out, want) {
			t.Errorf("extensions render missing %q", want)
		}
	}
}

func TestPrefetchStudyRender(t *testing.T) {
	if testing.Short() {
		t.Skip("heavy")
	}
	st := RunPrefetchStudy(tinyScale)
	if len(st.Benchmarks) != 19 {
		t.Fatalf("benchmarks = %d", len(st.Benchmarks))
	}
	for _, cfg := range []string{"LRU", "LRU+PF", "Sampler", "Sampler+PF"} {
		if len(st.Results[cfg]) != 19 {
			t.Errorf("config %s has %d results", cfg, len(st.Results[cfg]))
		}
	}
	if out := st.Render(); !strings.Contains(out, "amean") {
		t.Error("prefetch render missing the mean row")
	}
}

func TestVictimStudyRender(t *testing.T) {
	if testing.Short() {
		t.Skip("heavy")
	}
	st := RunVictimStudy(tinyScale)
	if len(st.Results["unfiltered"]) != 19 || len(st.Results["dead-filtered"]) != 19 {
		t.Fatal("incomplete victim study")
	}
	if out := st.Render(); !strings.Contains(out, "hits/ins") {
		t.Error("victim render missing yield columns")
	}
}

func TestSweepsProduceAllPoints(t *testing.T) {
	if testing.Short() {
		t.Skip("heavy")
	}
	sets := []int{16, 32}
	res := SamplerSetsSweep(tinyScale, sets)
	for _, n := range sets {
		if res[n] <= 0 {
			t.Errorf("set sweep missing %d", n)
		}
	}
	thrs := []int{2, 8}
	res2 := ThresholdSweep(tinyScale, thrs)
	for _, th := range thrs {
		if res2[th] <= 0 {
			t.Errorf("threshold sweep missing %d", th)
		}
	}
	out := RenderSweep("t", "k", res, sets)
	if !strings.Contains(out, "16") || !strings.Contains(out, "32") {
		t.Error("sweep render incomplete")
	}
}

func TestAblationRunsAllVariants(t *testing.T) {
	if testing.Short() {
		t.Skip("heavy")
	}
	ab := RunAblation(tinyScale)
	if len(ab.Speedup) != len(AblationOrder) {
		t.Fatalf("variants = %d", len(ab.Speedup))
	}
	for _, name := range AblationOrder {
		if ab.Speedup[name] <= 0 {
			t.Errorf("variant %s has no speedup value", name)
		}
	}
}

func TestMulticoreFigureSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("heavy")
	}
	mc := RunMulticoreFigure([]PolicySpec{MulticorePolicies()[4]}, 0.002) // Sampler only
	if len(mc.Mixes) != 10 {
		t.Fatalf("mixes = %d", len(mc.Mixes))
	}
	for _, mix := range mc.Mixes {
		v := mc.WeightedSpeedup["Sampler"][mix]
		if v <= 0 || v > 5 {
			t.Errorf("%s normalized weighted speedup = %v", mix, v)
		}
	}
	if out := mc.Render("test"); !strings.Contains(out, "gmean") {
		t.Error("multicore render missing the mean row")
	}
}
