// Package figures regenerates every table and figure in the paper's
// evaluation: the policy comparison figures (4, 5, 7, 8), the predictor
// accuracy figure (9), the component ablation (6), the multicore
// weighted speedups (10a, 10b), the storage and power tables (I, II),
// the benchmark characterization table (III), the workload mixes and
// cache sensitivity curves (IV), and the cache-efficiency illustration
// (Figure 1).
//
// Each figure has a Run function that performs the sweep and a Render
// method that prints the same rows/series the paper reports.
package figures

import (
	"context"
	"fmt"
	"sort"
	"strings"

	"sdbp/internal/cache"
	"sdbp/internal/exp"
	"sdbp/internal/hier"
	"sdbp/internal/runner"
	"sdbp/internal/sim"
	"sdbp/internal/workloads"
)

// PolicySpec names a policy and builds fresh instances of it, one per
// simulation (policies hold mutable state and must never be shared
// across runs).
type PolicySpec struct {
	// Name is the paper's abbreviation for the technique (Table V).
	Name string
	// Make builds a fresh policy for a cache shared by threads threads.
	Make func(threads int) cache.Policy
}

// preset looks a policy up in the component registry by its preset
// name, keeping that name as the table label.
func preset(name string) PolicySpec {
	p := exp.MustResolvePolicy(name)
	return PolicySpec{p.Name, p.Make}
}

// presetAs is preset with a different table label (the extension
// tables abbreviate some preset names to fit their columns).
func presetAs(label, name string) PolicySpec {
	return PolicySpec{label, exp.MustResolvePolicy(name).Make}
}

// exprSpec builds a PolicySpec from a registry expression, labeled
// explicitly (sweep points label by the swept parameter value).
func exprSpec(label, expr string) PolicySpec {
	return PolicySpec{label, exp.MustResolvePolicy(expr).Make}
}

// LRUSpec is the baseline.
func LRUSpec() PolicySpec { return preset("LRU") }

// StandardPolicies returns the paper's LRU-baseline comparison set in
// presentation order: TDBP, CDBP, DIP, RRIP, Sampler.
func StandardPolicies() []PolicySpec {
	return []PolicySpec{
		preset("TDBP"), preset("CDBP"), preset("DIP"), preset("RRIP"), preset("Sampler"),
	}
}

// RandomPolicies returns the random-baseline comparison set of Figures
// 7 and 8: Random, Random CDBP, Random Sampler.
func RandomPolicies() []PolicySpec {
	return []PolicySpec{
		preset("Random"), preset("Random CDBP"), preset("Random Sampler"),
	}
}

// MulticorePolicies returns the shared-cache comparison set of Figure
// 10(a): TDBP, CDBP, TADIP, RRIP, Sampler.
func MulticorePolicies() []PolicySpec {
	return []PolicySpec{
		preset("TDBP"), preset("CDBP"), preset("TADIP"), preset("RRIP"), preset("Sampler"),
	}
}

// cell identifies one (benchmark, policy) run in a matrix sweep.
type cell struct {
	bench  string
	policy string
}

// Matrix holds the results of a benchmarks × policies sweep. Cells
// whose run failed (panic, timeout, cancellation) carry an entry in
// Errors instead of Results; renderers print them as ERR and aggregate
// rows skip them.
type Matrix struct {
	Benchmarks []string
	Policies   []string
	Results    map[cell]sim.SingleResult
	Errors     map[cell]error
}

// Get returns one run's result (the zero result for a failed cell).
func (m *Matrix) Get(bench, pol string) sim.SingleResult {
	return m.Results[cell{bench, pol}]
}

// Err returns why a cell failed, nil for a completed cell.
func (m *Matrix) Err(bench, pol string) error {
	return m.Errors[cell{bench, pol}]
}

// Val returns f of the cell's result, or NaN when the run failed, so
// downstream normalizations propagate the failure to every value that
// depends on it.
func (m *Matrix) Val(bench, pol string, f func(sim.SingleResult) float64) float64 {
	if _, ok := m.Results[cell{bench, pol}]; !ok {
		return errVal()
	}
	return f(m.Get(bench, pol))
}

// Series returns one policy's values over the benchmark list, computed
// by f; failed cells yield NaN.
func (m *Matrix) Series(pol string, f func(sim.SingleResult) float64) []float64 {
	out := make([]float64, len(m.Benchmarks))
	for i, b := range m.Benchmarks {
		out[i] = m.Val(b, pol, f)
	}
	return out
}

// RunMatrix sweeps every benchmark against every policy in parallel
// with the default execution environment.
func RunMatrix(benches []workloads.Workload, specs []PolicySpec, opts sim.SingleOptions) *Matrix {
	return RunMatrixEnv(DefaultEnv(), "matrix", benches, specs, opts)
}

// RunMatrixEnv sweeps every benchmark against every policy on the
// shared runner. Section names the sweep in checkpoint keys and
// failure reports; it must be stable across runs for -resume to hit.
func RunMatrixEnv(e *Env, section string, benches []workloads.Workload, specs []PolicySpec, opts sim.SingleOptions) *Matrix {
	m := &Matrix{
		Results: make(map[cell]sim.SingleResult),
		Errors:  make(map[cell]error),
	}
	for _, b := range benches {
		m.Benchmarks = append(m.Benchmarks, b.Name)
	}
	for _, s := range specs {
		m.Policies = append(m.Policies, s.Name)
	}

	key := func(bench, pol string) string {
		return fmt.Sprintf("%s|%s|%s|%s", section, optKey(opts), bench, pol)
	}
	var jobs []runner.Job[sim.SingleResult]
	for _, w := range benches {
		for _, s := range specs {
			w, s := w, s
			jobs = append(jobs, runner.Job[sim.SingleResult]{
				Key: key(w.Name, s.Name),
				Run: func(context.Context) (sim.SingleResult, error) {
					return sim.RunSingle(w, s.Make(1), opts), nil
				},
			})
		}
	}
	set := runJobs(e, jobs)
	for _, b := range m.Benchmarks {
		for _, p := range m.Policies {
			k := key(b, p)
			if r, ok := set.Value(k); ok {
				m.Results[cell{b, p}] = r
			} else if err := set.Err(k); err != nil {
				m.Errors[cell{b, p}] = err
			}
		}
	}
	return m
}

// renderTable prints a header row and aligned numeric rows.
func renderTable(title string, header []string, rows [][]string) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "%s\n", title)
	widths := make([]int, len(header))
	for i, h := range header {
		widths[i] = len(h)
	}
	for _, r := range rows {
		for i, c := range r {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i == 0 {
				fmt.Fprintf(&sb, "%-*s", widths[i]+2, c)
			} else {
				fmt.Fprintf(&sb, "%*s", widths[i]+2, c)
			}
		}
		sb.WriteByte('\n')
	}
	writeRow(header)
	for _, r := range rows {
		writeRow(r)
	}
	return sb.String()
}

// defaultLLC returns the paper's single-core LLC geometry.
func defaultLLC() cache.Config { return hier.LLCConfig(1) }

// sortedNames returns names sorted lexically (benchmark order in the
// paper's figures).
func sortedNames(ws []workloads.Workload) []workloads.Workload {
	out := make([]workloads.Workload, len(ws))
	copy(out, ws)
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}
