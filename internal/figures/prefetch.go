package figures

import (
	"fmt"
	"runtime"
	"sync"

	"sdbp/internal/cache"
	"sdbp/internal/dbrb"
	"sdbp/internal/policy"
	"sdbp/internal/predictor"
	"sdbp/internal/prefetch"
	"sdbp/internal/stats"
	"sdbp/internal/workloads"
)

// PrefetchStudy compares sequential LLC prefetching under three
// placement regimes: none, polluting (prefetches displace the LRU
// block), and dead-block-directed (prefetches may only displace
// predicted-dead blocks — the application that introduced dead block
// prediction).
type PrefetchStudy struct {
	Benchmarks []string
	// Results[config][bench]; configs are "LRU", "LRU+PF", "Sampler",
	// "Sampler+PF".
	Results map[string]map[string]prefetch.Result
}

// prefetchConfigs enumerates the study's configurations.
func prefetchConfigs() []struct {
	name   string
	pol    func() cache.Policy
	degree int
} {
	sampler := func() cache.Policy {
		return dbrb.New(policy.NewLRU(), predictor.NewSampler(predictor.DefaultSamplerConfig()))
	}
	lru := func() cache.Policy { return policy.NewLRU() }
	return []struct {
		name   string
		pol    func() cache.Policy
		degree int
	}{
		{"LRU", lru, 0},
		{"LRU+PF", lru, 4},
		{"Sampler", sampler, 0},
		{"Sampler+PF", sampler, 4},
	}
}

// RunPrefetchStudy performs the prefetch comparison over the subset.
func RunPrefetchStudy(scale float64) *PrefetchStudy {
	benches := sortedNames(workloads.Subset())
	st := &PrefetchStudy{Results: map[string]map[string]prefetch.Result{}}
	for _, b := range benches {
		st.Benchmarks = append(st.Benchmarks, b.Name)
	}
	cfgs := prefetchConfigs()
	for _, c := range cfgs {
		st.Results[c.name] = map[string]prefetch.Result{}
	}

	var mu sync.Mutex
	var wg sync.WaitGroup
	sem := make(chan struct{}, runtime.NumCPU())
	for _, w := range benches {
		for _, c := range cfgs {
			wg.Add(1)
			go func(w workloads.Workload, c struct {
				name   string
				pol    func() cache.Policy
				degree int
			}) {
				defer wg.Done()
				sem <- struct{}{}
				defer func() { <-sem }()
				r := prefetch.Run(w, c.pol(), prefetch.Config{Degree: c.degree}, scale)
				mu.Lock()
				st.Results[c.name][w.Name] = r
				mu.Unlock()
			}(w, c)
		}
	}
	wg.Wait()
	return st
}

// Render prints demand MPKI normalized to plain LRU, plus prefetch
// accuracy per placement regime.
func (st *PrefetchStudy) Render() string {
	header := []string{"benchmark", "LRU+PF", "Sampler", "Sampler+PF", "acc(LRU+PF)%", "acc(S+PF)%"}
	var rows [][]string
	norm := map[string][]float64{}
	var accPol, accDead []float64
	for _, b := range st.Benchmarks {
		base := st.Results["LRU"][b].DemandMPKI
		row := []string{b}
		for _, cfg := range []string{"LRU+PF", "Sampler", "Sampler+PF"} {
			v := st.Results[cfg][b].DemandMPKI / base
			norm[cfg] = append(norm[cfg], v)
			row = append(row, fmt.Sprintf("%.3f", v))
		}
		ap := st.Results["LRU+PF"][b].Accuracy()
		ad := st.Results["Sampler+PF"][b].Accuracy()
		accPol = append(accPol, ap)
		accDead = append(accDead, ad)
		row = append(row, fmt.Sprintf("%.1f", ap*100), fmt.Sprintf("%.1f", ad*100))
		rows = append(rows, row)
	}
	mean := []string{"amean"}
	for _, cfg := range []string{"LRU+PF", "Sampler", "Sampler+PF"} {
		mean = append(mean, fmt.Sprintf("%.3f", stats.Mean(norm[cfg])))
	}
	mean = append(mean,
		fmt.Sprintf("%.1f", stats.Mean(accPol)*100),
		fmt.Sprintf("%.1f", stats.Mean(accDead)*100))
	rows = append(rows, mean)
	return renderTable("Prefetch study: demand MPKI normalized to LRU; degree-4 sequential prefetcher", header, rows)
}
