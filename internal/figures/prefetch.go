package figures

import (
	"context"
	"fmt"

	"sdbp/internal/cache"
	"sdbp/internal/prefetch"
	"sdbp/internal/runner"
	"sdbp/internal/workloads"
)

// PrefetchStudy compares sequential LLC prefetching under three
// placement regimes: none, polluting (prefetches displace the LRU
// block), and dead-block-directed (prefetches may only displace
// predicted-dead blocks — the application that introduced dead block
// prediction). Failed runs leave their cell out of Results and an
// entry in Errors; Render marks the benchmark's row ERR.
type PrefetchStudy struct {
	Benchmarks []string
	// Results[config][bench]; configs are "LRU", "LRU+PF", "Sampler",
	// "Sampler+PF".
	Results map[string]map[string]prefetch.Result
	// Errors[{bench, config}] records failed runs.
	Errors map[cell]error
}

// prefetchConfigs enumerates the study's configurations.
func prefetchConfigs() []struct {
	name   string
	pol    func() cache.Policy
	degree int
} {
	lruSpec, smpSpec := LRUSpec(), preset("Sampler")
	lru := func() cache.Policy { return lruSpec.Make(1) }
	sampler := func() cache.Policy { return smpSpec.Make(1) }
	return []struct {
		name   string
		pol    func() cache.Policy
		degree int
	}{
		{"LRU", lru, 0},
		{"LRU+PF", lru, 4},
		{"Sampler", sampler, 0},
		{"Sampler+PF", sampler, 4},
	}
}

// RunPrefetchStudy performs the prefetch comparison over the subset.
func RunPrefetchStudy(scale float64) *PrefetchStudy {
	return RunPrefetchStudyEnv(DefaultEnv(), scale)
}

// RunPrefetchStudyEnv is RunPrefetchStudy on a shared environment.
func RunPrefetchStudyEnv(e *Env, scale float64) *PrefetchStudy {
	benches := sortedNames(workloads.Subset())
	st := &PrefetchStudy{
		Results: map[string]map[string]prefetch.Result{},
		Errors:  map[cell]error{},
	}
	for _, b := range benches {
		st.Benchmarks = append(st.Benchmarks, b.Name)
	}
	cfgs := prefetchConfigs()
	for _, c := range cfgs {
		st.Results[c.name] = map[string]prefetch.Result{}
	}

	key := func(bench, config string) string {
		return fmt.Sprintf("prefetch|s=%g|%s|%s", scaleOr1(scale), bench, config)
	}
	var jobs []runner.Job[prefetch.Result]
	for _, w := range benches {
		for _, c := range cfgs {
			w, c := w, c
			jobs = append(jobs, runner.Job[prefetch.Result]{
				Key: key(w.Name, c.name),
				Run: func(context.Context) (prefetch.Result, error) {
					return prefetch.Run(w, c.pol(), prefetch.Config{Degree: c.degree}, scale), nil
				},
			})
		}
	}
	set := runJobs(e, jobs)
	for _, b := range st.Benchmarks {
		for _, c := range cfgs {
			k := key(b, c.name)
			if r, ok := set.Value(k); ok {
				st.Results[c.name][b] = r
			} else if err := set.Err(k); err != nil {
				st.Errors[cell{b, c.name}] = err
			}
		}
	}
	return st
}

// val returns a config's metric for a benchmark, NaN when that run
// failed so the failure propagates into any ratio built on it.
func (st *PrefetchStudy) val(config, bench string, f func(prefetch.Result) float64) float64 {
	r, ok := st.Results[config][bench]
	if !ok {
		return errVal()
	}
	return f(r)
}

// Render prints demand MPKI normalized to plain LRU, plus prefetch
// accuracy per placement regime. Failed cells print as ERR and are
// excluded from the means.
func (st *PrefetchStudy) Render() string {
	header := []string{"benchmark", "LRU+PF", "Sampler", "Sampler+PF", "acc(LRU+PF)%", "acc(S+PF)%"}
	var rows [][]string
	norm := map[string][]float64{}
	var accPol, accDead []float64
	demand := func(r prefetch.Result) float64 { return r.DemandMPKI }
	for _, b := range st.Benchmarks {
		base := st.val("LRU", b, demand)
		row := []string{b}
		for _, cfg := range []string{"LRU+PF", "Sampler", "Sampler+PF"} {
			v := st.val(cfg, b, demand) / base
			norm[cfg] = append(norm[cfg], v)
			row = append(row, fmtVal("%.3f", v))
		}
		ap := st.val("LRU+PF", b, prefetch.Result.Accuracy)
		ad := st.val("Sampler+PF", b, prefetch.Result.Accuracy)
		accPol = append(accPol, ap)
		accDead = append(accDead, ad)
		row = append(row, fmtVal("%.1f", ap*100), fmtVal("%.1f", ad*100))
		rows = append(rows, row)
	}
	mean := []string{"amean"}
	for _, cfg := range []string{"LRU+PF", "Sampler", "Sampler+PF"} {
		mean = append(mean, fmtVal("%.3f", meanFinite(norm[cfg])))
	}
	mean = append(mean,
		fmtVal("%.1f", meanFinite(accPol)*100),
		fmtVal("%.1f", meanFinite(accDead)*100))
	rows = append(rows, mean)
	return renderTable("Prefetch study: demand MPKI normalized to LRU; degree-4 sequential prefetcher", header, rows)
}
