package figures

import (
	"context"
	"fmt"
	"math"
	"sync"
	"time"

	"sdbp/internal/obs"
	"sdbp/internal/runner"
	"sdbp/internal/sim"
	"sdbp/internal/stats"
)

// Env carries the cross-cutting execution machinery — cancellation,
// per-job timeout, retry budget, checkpoint journal and progress
// callback — through every figure, table and sweep. One Env spans a
// whole campaign, accumulating every job failure so the caller can
// render a failure summary and choose its exit status. The zero-ish
// value from DefaultEnv runs everything inline with no timeout,
// checkpoint or progress, matching the pre-runner behavior.
type Env struct {
	// Ctx cancels the campaign; nil means context.Background().
	Ctx context.Context
	// Timeout bounds each job; 0 means no limit.
	Timeout time.Duration
	// Retries is the per-job retry budget for transient failures.
	Retries int
	// Checkpoint journals completed cells for -resume; nil disables.
	Checkpoint *runner.Checkpoint
	// Progress receives per-job completion events.
	Progress func(runner.Event)
	// Obs, when non-nil, accumulates campaign metrics: runner job
	// accounting and the aggregate simulator counters of every
	// completed run (see package obs).
	Obs *obs.Registry
	// Workers bounds job concurrency for every sweep run under this
	// Env; 0 means the runner default (NumCPU). The wall-time
	// comparison tests pin it to 1 so sampled-vs-full ratios measure
	// serial simulation cost, independent of core count.
	Workers int

	mu       sync.Mutex
	failures []*runner.JobError
}

// DefaultEnv returns an Env that runs everything with no timeout,
// checkpointing or progress reporting.
func DefaultEnv() *Env { return &Env{} }

func (e *Env) ctx() context.Context {
	if e.Ctx != nil {
		return e.Ctx
	}
	return context.Background()
}

func (e *Env) options() runner.Options {
	return runner.Options{
		Timeout:    e.Timeout,
		Retries:    e.Retries,
		Checkpoint: e.Checkpoint,
		Progress:   e.Progress,
		Obs:        e.Obs,
	}
}

func (e *Env) note(errs []*runner.JobError) {
	if len(errs) == 0 {
		return
	}
	e.mu.Lock()
	e.failures = append(e.failures, errs...)
	e.mu.Unlock()
}

// Failures returns every job failure recorded so far, in completion
// order grouped by sweep.
func (e *Env) Failures() []*runner.JobError {
	e.mu.Lock()
	defer e.mu.Unlock()
	out := make([]*runner.JobError, len(e.failures))
	copy(out, e.failures)
	return out
}

// Failed reports whether any job has failed.
func (e *Env) Failed() bool {
	e.mu.Lock()
	defer e.mu.Unlock()
	return len(e.failures) > 0
}

// runJobs executes one sweep's jobs under the Env's policy and records
// its failures on the Env.
func runJobs[T any](e *Env, jobs []runner.Job[T]) *runner.Set[T] {
	return runJobsLimited(e, jobs, 0)
}

// runJobsLimited is runJobs with a worker cap (for memory-heavy
// sweeps, like optimal-policy stream captures).
func runJobsLimited[T any](e *Env, jobs []runner.Job[T], workers int) *runner.Set[T] {
	opts := e.options()
	if workers == 0 {
		workers = e.Workers
	}
	opts.Workers = workers
	set := runner.Run(e.ctx(), jobs, opts)
	e.note(set.Failed())
	return set
}

// errVal is the in-band marker for a failed cell: NaN propagates
// through every normalization and ratio a renderer computes, and
// fmtVal prints it as ERR.
func errVal() float64 { return math.NaN() }

// fmtVal formats a cell value with the given precision; failed cells
// (NaN or Inf, from errVal or division by a failed baseline) render as
// ERR.
func fmtVal(format string, v float64) string {
	if math.IsNaN(v) || math.IsInf(v, 0) {
		return "ERR"
	}
	return fmt.Sprintf(format, v)
}

// finite drops NaN/Inf entries so aggregate rows (amean, gmean)
// summarize only the cells that completed.
func finite(xs []float64) []float64 {
	out := make([]float64, 0, len(xs))
	for _, x := range xs {
		if !math.IsNaN(x) && !math.IsInf(x, 0) {
			out = append(out, x)
		}
	}
	return out
}

// meanFinite is the arithmetic mean over completed cells; ERR (NaN)
// when none completed.
func meanFinite(xs []float64) float64 {
	xs = finite(xs)
	if len(xs) == 0 {
		return errVal()
	}
	return stats.Mean(xs)
}

// geoMeanFinite is the geometric mean over completed cells; ERR (NaN)
// when none completed.
func geoMeanFinite(xs []float64) float64 {
	xs = finite(xs)
	if len(xs) == 0 {
		return errVal()
	}
	return stats.GeoMean(xs)
}

// scaleOr1 normalizes a stream-scale for checkpoint keys (0 means 1).
func scaleOr1(s float64) float64 {
	if s == 0 {
		return 1
	}
	return s
}

// optKey canonicalizes the geometry part of a checkpoint key.
func optKey(o sim.SingleOptions) string {
	return fmt.Sprintf("s=%g|llc=%d.%d", scaleOr1(o.Scale), o.LLC.SizeBytes, o.LLC.Ways)
}
