package figures

import (
	"strings"
	"testing"
)

func TestBarChartRendersAllBars(t *testing.T) {
	c := &BarChart{Title: "t", Width: 20}
	c.Add("alpha", 1)
	c.Add("beta", 2)
	out := c.Render()
	if !strings.Contains(out, "alpha") || !strings.Contains(out, "beta") {
		t.Errorf("missing labels:\n%s", out)
	}
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 3 { // title + 2 bars
		t.Errorf("lines = %d", len(lines))
	}
	// beta's bar must be about twice alpha's.
	a := strings.Count(lines[1], "#")
	b := strings.Count(lines[2], "#")
	if b < a*3/2 {
		t.Errorf("bar proportions wrong: %d vs %d", a, b)
	}
}

func TestBarChartReferenceMarker(t *testing.T) {
	c := &BarChart{Width: 40, Reference: 1.0}
	c.Add("under", 0.5)
	c.Add("over", 1.5)
	out := c.Render()
	for _, line := range strings.Split(strings.TrimSpace(out), "\n") {
		if !strings.Contains(line, "|") {
			t.Errorf("reference marker missing in %q", line)
		}
	}
}

func TestBarChartZeroSafe(t *testing.T) {
	c := &BarChart{}
	c.Add("zero", 0)
	if out := c.Render(); !strings.Contains(out, "zero") {
		t.Error("zero-value chart broke")
	}
}

func TestSummaryChart(t *testing.T) {
	out := SummaryChart("s", []string{"a", "b"}, []float64{0.9, 1.1})
	if !strings.Contains(out, "0.900") || !strings.Contains(out, "1.100") {
		t.Errorf("values missing:\n%s", out)
	}
}

func TestSummaryChartPanicsOnMismatch(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("no panic on length mismatch")
		}
	}()
	SummaryChart("s", []string{"a"}, nil)
}
