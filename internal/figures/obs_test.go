package figures

import (
	"math"
	"testing"

	"sdbp/internal/cache"
	"sdbp/internal/obs"
	"sdbp/internal/sim"
	"sdbp/internal/workloads"
)

// TestMatrixObsReconciles is the figures-level acceptance check: run a
// small benchmarks × policies matrix with an observed Env and verify
// every sim_* level counter in the registry equals the sum of the
// corresponding cache.Stats field over the matrix's results — the
// "manifest reconciles exactly with cache.Stats" contract, one layer
// below cmd/experiments.
func TestMatrixObsReconciles(t *testing.T) {
	reg := obs.NewRegistry()
	env := &Env{Obs: reg}
	benches := pick(t, "456.hmmer", "401.bzip2", "429.mcf")
	specs := []PolicySpec{LRUSpec(), StandardPolicies()[1]}
	m := RunMatrixEnv(env, "obs-test", benches, specs, sim.SingleOptions{Scale: tinyScale})
	if env.Failed() {
		t.Fatalf("matrix failed: %v", env.Failures())
	}

	cells := len(benches) * len(specs)
	if got := reg.CounterValue(obs.CtrJobsSubmitted); got != uint64(cells) {
		t.Errorf("jobs submitted = %d, want %d", got, cells)
	}
	if got := reg.CounterValue(obs.CtrJobsSucceeded); got != uint64(cells) {
		t.Errorf("jobs succeeded = %d, want %d", got, cells)
	}
	if got := reg.CounterValue(obs.SimPrefix + "runs"); got != uint64(cells) {
		t.Errorf("sim_runs = %d, want %d", got, cells)
	}

	// Ground truth: sum the per-level stats over every cell result.
	var l1, l2, llc cache.Stats
	var instr, cycles uint64
	for _, r := range m.Results {
		l1 = l1.Add(r.L1)
		l2 = l2.Add(r.L2)
		llc = llc.Add(r.LLC)
		instr += r.Instructions
		cycles += r.Cycles
	}
	for level, want := range map[string]cache.Stats{"l1": l1, "l2": l2, "llc": llc} {
		pfx := obs.SimPrefix + level + "_"
		got := cache.Stats{
			Accesses:         reg.CounterValue(pfx + "accesses"),
			Writes:           reg.CounterValue(pfx + "writes"),
			Hits:             reg.CounterValue(pfx + "hits"),
			Misses:           reg.CounterValue(pfx + "misses"),
			Bypasses:         reg.CounterValue(pfx + "bypasses"),
			Evictions:        reg.CounterValue(pfx + "evictions"),
			Writebacks:       reg.CounterValue(pfx + "writebacks"),
			Prefetches:       reg.CounterValue(pfx + "prefetches"),
			UsefulPrefetches: reg.CounterValue(pfx + "useful_prefetches"),
		}
		if got != want {
			t.Errorf("%s counters = %+v\nwant (summed over results) %+v", level, got, want)
		}
		if got.Hits+got.Misses != got.Accesses {
			t.Errorf("%s: hits+misses != accesses in registry", level)
		}
	}
	if got := reg.CounterValue(obs.SimPrefix + "instructions"); got != instr {
		t.Errorf("sim_instructions = %d, want %d", got, instr)
	}
	if got := reg.CounterValue(obs.SimPrefix + "cycles"); got != cycles {
		t.Errorf("sim_cycles = %d, want %d", got, cycles)
	}
	if got := reg.Histogram(obs.SimPrefix + "run_seconds").Count(); got != uint64(cells) {
		t.Errorf("run_seconds observations = %d, want %d", got, cells)
	}
}

// TestMatrixObsNilRegistry pins that an unobserved Env still works —
// the nil-safety contract at the layer that actually exercises it.
func TestMatrixObsNilRegistry(t *testing.T) {
	env := DefaultEnv() // Obs nil
	m := RunMatrixEnv(env, "obs-nil-test", pick(t, "456.hmmer"),
		[]PolicySpec{LRUSpec()}, sim.SingleOptions{Scale: tinyScale})
	if m.Get("456.hmmer", "LRU").Instructions == 0 {
		t.Error("unobserved matrix produced no result")
	}
}

// TestAggregateHelpersNonFinite covers the finite/meanFinite/
// geoMeanFinite/fmtVal path failed cells flow through.
func TestAggregateHelpersNonFinite(t *testing.T) {
	nan, inf := math.NaN(), math.Inf(1)
	xs := []float64{1, nan, 4, inf, math.Inf(-1)}

	if got := finite(xs); len(got) != 2 || got[0] != 1 || got[1] != 4 {
		t.Errorf("finite = %v, want [1 4]", got)
	}
	if got := meanFinite(xs); got != 2.5 {
		t.Errorf("meanFinite = %v, want 2.5", got)
	}
	if got := geoMeanFinite(xs); got != 2 {
		t.Errorf("geoMeanFinite = %v, want 2", got)
	}
	// All-failed rows come back as ERR (NaN), not zero.
	if got := meanFinite([]float64{nan, inf}); !math.IsNaN(got) {
		t.Errorf("meanFinite(all failed) = %v, want NaN", got)
	}
	if got := geoMeanFinite(nil); !math.IsNaN(got) {
		t.Errorf("geoMeanFinite(empty) = %v, want NaN", got)
	}
	if got := fmtVal("%.2f", nan); got != "ERR" {
		t.Errorf("fmtVal(NaN) = %q, want ERR", got)
	}
	if got := fmtVal("%.2f", inf); got != "ERR" {
		t.Errorf("fmtVal(Inf) = %q, want ERR", got)
	}
	if got := fmtVal("%.2f", 1.234); got != "1.23" {
		t.Errorf("fmtVal = %q, want 1.23", got)
	}
}

// pick resolves benchmarks by name, failing the test on a typo.
func pick(t *testing.T, names ...string) []workloads.Workload {
	t.Helper()
	out := make([]workloads.Workload, 0, len(names))
	for _, n := range names {
		w, err := workloads.ByName(n)
		if err != nil {
			t.Fatal(err)
		}
		out = append(out, w)
	}
	return out
}
