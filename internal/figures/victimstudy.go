package figures

import (
	"context"
	"fmt"

	"sdbp/internal/exp"
	"sdbp/internal/runner"
	"sdbp/internal/victim"
	"sdbp/internal/workloads"
)

// VictimStudy compares an unfiltered victim cache against one that
// admits only victims the sampling predictor considers live (the Hu et
// al. application). A failed run leaves its cell out of Results and an
// entry in Errors; Render marks the benchmark's row ERR.
type VictimStudy struct {
	Benchmarks []string
	// Results[config][bench]; configs are "unfiltered", "dead-filtered".
	Results map[string]map[string]victim.Result
	// Errors[{bench, config}] records failed runs.
	Errors map[cell]error
}

// RunVictimStudy performs the comparison over the subset with a
// 64-entry victim buffer.
func RunVictimStudy(scale float64) *VictimStudy {
	return RunVictimStudyEnv(DefaultEnv(), scale)
}

// RunVictimStudyEnv is RunVictimStudy on a shared environment.
func RunVictimStudyEnv(e *Env, scale float64) *VictimStudy {
	benches := sortedNames(workloads.Subset())
	configs := map[bool]string{false: "unfiltered", true: "dead-filtered"}
	st := &VictimStudy{
		Results: map[string]map[string]victim.Result{
			"unfiltered":    {},
			"dead-filtered": {},
		},
		Errors: map[cell]error{},
	}
	for _, b := range benches {
		st.Benchmarks = append(st.Benchmarks, b.Name)
	}
	mk := exp.MustDBRBFactory("Sampler")

	key := func(bench, config string) string {
		return fmt.Sprintf("victim|s=%g|%s|%s", scaleOr1(scale), bench, config)
	}
	var jobs []runner.Job[victim.Result]
	for _, w := range benches {
		for _, filtered := range []bool{false, true} {
			w, filtered := w, filtered
			jobs = append(jobs, runner.Job[victim.Result]{
				Key: key(w.Name, configs[filtered]),
				Run: func(context.Context) (victim.Result, error) {
					return victim.Run(w, mk, 64, filtered, scale), nil
				},
			})
		}
	}
	set := runJobs(e, jobs)
	for _, b := range st.Benchmarks {
		for _, config := range []string{"unfiltered", "dead-filtered"} {
			k := key(b, config)
			if r, ok := set.Value(k); ok {
				st.Results[config][b] = r
			} else if err := set.Err(k); err != nil {
				st.Errors[cell{b, config}] = err
			}
		}
	}
	return st
}

// ok reports whether both of a benchmark's runs completed.
func (st *VictimStudy) ok(bench string) bool {
	_, u := st.Results["unfiltered"][bench]
	_, f := st.Results["dead-filtered"][bench]
	return u && f
}

// Render prints each variant's victim-buffer yield (hits per insert)
// and the filtered variant's insertion reduction. Benchmarks with a
// failed run print ERR and are excluded from the means.
func (st *VictimStudy) Render() string {
	header := []string{"benchmark", "unfilt hits/ins", "filt hits/ins", "inserts kept %"}
	var rows [][]string
	var yu, yf, kept []float64
	for _, b := range st.Benchmarks {
		if !st.ok(b) {
			rows = append(rows, []string{b, "ERR", "ERR", "ERR"})
			continue
		}
		u := st.Results["unfiltered"][b]
		f := st.Results["dead-filtered"][b]
		k := 0.0
		if u.VCInserts > 0 {
			k = float64(f.VCInserts) / float64(u.VCInserts)
		}
		yu = append(yu, u.HitsPerInsert())
		yf = append(yf, f.HitsPerInsert())
		kept = append(kept, k)
		rows = append(rows, []string{b,
			fmt.Sprintf("%.4f", u.HitsPerInsert()),
			fmt.Sprintf("%.4f", f.HitsPerInsert()),
			fmt.Sprintf("%.1f", k*100)})
	}
	rows = append(rows, []string{"amean",
		fmtVal("%.4f", meanFinite(yu)),
		fmtVal("%.4f", meanFinite(yf)),
		fmtVal("%.1f", meanFinite(kept)*100)})
	return renderTable("Victim cache study: 64-entry buffer, dead-block filtering of insertions", header, rows)
}
