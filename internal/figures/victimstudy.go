package figures

import (
	"fmt"
	"runtime"
	"sync"

	"sdbp/internal/dbrb"
	"sdbp/internal/policy"
	"sdbp/internal/predictor"
	"sdbp/internal/stats"
	"sdbp/internal/victim"
	"sdbp/internal/workloads"
)

// VictimStudy compares an unfiltered victim cache against one that
// admits only victims the sampling predictor considers live (the Hu et
// al. application).
type VictimStudy struct {
	Benchmarks []string
	// Results[config][bench]; configs are "unfiltered", "dead-filtered".
	Results map[string]map[string]victim.Result
}

// RunVictimStudy performs the comparison over the subset with a
// 64-entry victim buffer.
func RunVictimStudy(scale float64) *VictimStudy {
	benches := sortedNames(workloads.Subset())
	st := &VictimStudy{Results: map[string]map[string]victim.Result{
		"unfiltered":    {},
		"dead-filtered": {},
	}}
	for _, b := range benches {
		st.Benchmarks = append(st.Benchmarks, b.Name)
	}
	mk := func() *dbrb.Policy {
		return dbrb.New(policy.NewLRU(), predictor.NewSampler(predictor.DefaultSamplerConfig()))
	}

	var mu sync.Mutex
	var wg sync.WaitGroup
	sem := make(chan struct{}, runtime.NumCPU())
	for _, w := range benches {
		for _, filtered := range []bool{false, true} {
			wg.Add(1)
			go func(w workloads.Workload, filtered bool) {
				defer wg.Done()
				sem <- struct{}{}
				defer func() { <-sem }()
				r := victim.Run(w, mk, 64, filtered, scale)
				mu.Lock()
				st.Results[r.Config][w.Name] = r
				mu.Unlock()
			}(w, filtered)
		}
	}
	wg.Wait()
	return st
}

// Render prints each variant's victim-buffer yield (hits per insert)
// and the filtered variant's insertion reduction.
func (st *VictimStudy) Render() string {
	header := []string{"benchmark", "unfilt hits/ins", "filt hits/ins", "inserts kept %"}
	var rows [][]string
	var yu, yf, kept []float64
	for _, b := range st.Benchmarks {
		u := st.Results["unfiltered"][b]
		f := st.Results["dead-filtered"][b]
		k := 0.0
		if u.VCInserts > 0 {
			k = float64(f.VCInserts) / float64(u.VCInserts)
		}
		yu = append(yu, u.HitsPerInsert())
		yf = append(yf, f.HitsPerInsert())
		kept = append(kept, k)
		rows = append(rows, []string{b,
			fmt.Sprintf("%.4f", u.HitsPerInsert()),
			fmt.Sprintf("%.4f", f.HitsPerInsert()),
			fmt.Sprintf("%.1f", k*100)})
	}
	rows = append(rows, []string{"amean",
		fmt.Sprintf("%.4f", stats.Mean(yu)),
		fmt.Sprintf("%.4f", stats.Mean(yf)),
		fmt.Sprintf("%.1f", stats.Mean(kept)*100)})
	return renderTable("Victim cache study: 64-entry buffer, dead-block filtering of insertions", header, rows)
}
