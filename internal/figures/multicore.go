package figures

import (
	"fmt"
	"runtime"
	"sync"

	"sdbp/internal/cache"
	"sdbp/internal/hier"
	"sdbp/internal/policy"
	"sdbp/internal/sim"
	"sdbp/internal/stats"
	"sdbp/internal/workloads"
)

// Multicore holds the Figure 10 runs: ten quad-core mixes sharing an
// 8MB LLC, under the LRU-baseline policies (10a) and random-baseline
// policies (10b), all normalized to the shared-LRU configuration.
type Multicore struct {
	Mixes    []string
	Policies []string
	// WeightedSpeedup[policy][mix] is normalized to the LRU policy.
	WeightedSpeedup map[string]map[string]float64
	// NormMPKI[policy] is the mix-average LLC MPKI normalized to LRU
	// (the Section VII-D text numbers).
	NormMPKI map[string]float64
}

// RunMulticoreFigure performs one Figure 10 panel's sweep: the given
// policies plus the LRU baseline over all ten mixes.
func RunMulticoreFigure(specs []PolicySpec, scale float64) *Multicore {
	mixes := workloads.Mixes()
	llcCfg := hier.LLCConfig(4)

	// Single-run IPCs (denominators of weighted speedup): one per
	// distinct benchmark, shared across mixes and policies.
	singles := map[string]float64{}
	var mu sync.Mutex
	var wg sync.WaitGroup
	seen := map[string]bool{}
	sem := make(chan struct{}, runtime.NumCPU())
	for _, mix := range mixes {
		for _, name := range mix.Members {
			if seen[name] {
				continue
			}
			seen[name] = true
			wg.Add(1)
			go func(name string) {
				defer wg.Done()
				sem <- struct{}{}
				defer func() { <-sem }()
				ipc := sim.SingleIPC(name, llcCfg, scale,
					func() cache.Policy { return policy.NewLRU() })
				mu.Lock()
				singles[name] = ipc
				mu.Unlock()
			}(name)
		}
	}
	wg.Wait()

	all := append([]PolicySpec{LRUSpec()}, specs...)
	type key struct{ mix, pol string }
	raw := map[key]sim.MulticoreResult{}
	for _, mix := range mixes {
		for _, spec := range all {
			wg.Add(1)
			go func(mix workloads.Mix, spec PolicySpec) {
				defer wg.Done()
				sem <- struct{}{}
				defer func() { <-sem }()
				r := sim.RunMulticore(mix, spec.Make(4), sim.MulticoreOptions{Scale: scale, LLC: llcCfg})
				mu.Lock()
				raw[key{mix.Name, spec.Name}] = r
				mu.Unlock()
			}(mix, spec)
		}
	}
	wg.Wait()

	mc := &Multicore{
		WeightedSpeedup: make(map[string]map[string]float64),
		NormMPKI:        make(map[string]float64),
	}
	for _, mix := range mixes {
		mc.Mixes = append(mc.Mixes, mix.Name)
	}
	for _, spec := range specs {
		mc.Policies = append(mc.Policies, spec.Name)
	}

	ws := func(mix workloads.Mix, pol string) float64 {
		r := raw[key{mix.Name, pol}]
		var ipcs, sing []float64
		for i, name := range mix.Members {
			ipcs = append(ipcs, r.IPC[i])
			sing = append(sing, singles[name])
		}
		return stats.WeightedSpeedup(ipcs, sing)
	}
	for _, spec := range all {
		mc.WeightedSpeedup[spec.Name] = make(map[string]float64)
		var mpkis []float64
		for _, mix := range mixes {
			norm := ws(mix, spec.Name) / ws(mix, "LRU")
			mc.WeightedSpeedup[spec.Name][mix.Name] = norm
			lruM := raw[key{mix.Name, "LRU"}].MPKI
			if lruM > 0 {
				mpkis = append(mpkis, raw[key{mix.Name, spec.Name}].MPKI/lruM)
			}
		}
		mc.NormMPKI[spec.Name] = stats.Mean(mpkis)
	}
	return mc
}

// Render prints one Figure 10 panel: normalized weighted speedup per
// mix per policy with the geometric mean the paper reports, plus the
// Section VII-D normalized MPKI line.
func (mc *Multicore) Render(title string) string {
	header := append([]string{"mix"}, mc.Policies...)
	var rows [][]string
	series := map[string][]float64{}
	for _, mix := range mc.Mixes {
		row := []string{mix}
		for _, p := range mc.Policies {
			v := mc.WeightedSpeedup[p][mix]
			series[p] = append(series[p], v)
			row = append(row, fmt.Sprintf("%.3f", v))
		}
		rows = append(rows, row)
	}
	mean := []string{"gmean"}
	for _, p := range mc.Policies {
		mean = append(mean, fmt.Sprintf("%.3f", stats.GeoMean(series[p])))
	}
	rows = append(rows, mean)
	out := renderTable(title, header, rows)
	out += "normalized MPKI (mix average): "
	for i, p := range mc.Policies {
		if i > 0 {
			out += "  "
		}
		out += fmt.Sprintf("%s=%.2f", p, mc.NormMPKI[p])
	}
	return out + "\n"
}
