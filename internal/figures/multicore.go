package figures

import (
	"context"
	"fmt"

	"sdbp/internal/cache"
	"sdbp/internal/hier"
	"sdbp/internal/runner"
	"sdbp/internal/sim"
	"sdbp/internal/workloads"
)

// Multicore holds the Figure 10 runs: ten quad-core mixes sharing an
// 8MB LLC, under the LRU-baseline policies (10a) and random-baseline
// policies (10b), all normalized to the shared-LRU configuration. A
// failed run (panic, timeout, bad mix config) leaves NaN in
// WeightedSpeedup; Render prints those cells as ERR.
type Multicore struct {
	Mixes    []string
	Policies []string
	// WeightedSpeedup[policy][mix] is normalized to the LRU policy.
	WeightedSpeedup map[string]map[string]float64
	// NormMPKI[policy] is the mix-average LLC MPKI normalized to LRU
	// (the Section VII-D text numbers), over completed mixes.
	NormMPKI map[string]float64
}

// RunMulticoreFigure performs one Figure 10 panel's sweep: the given
// policies plus the LRU baseline over all ten mixes.
func RunMulticoreFigure(specs []PolicySpec, scale float64) *Multicore {
	return RunMulticoreFigureEnv(DefaultEnv(), specs, scale)
}

// RunMulticoreFigureEnv is RunMulticoreFigure on a shared environment.
// Runs are deterministic, so checkpoint keys depend only on (mix,
// policy, scale, geometry): both panels share the LRU baseline cells.
func RunMulticoreFigureEnv(e *Env, specs []PolicySpec, scale float64) *Multicore {
	return RunMulticoreFigureLLC(e, specs, scale, hier.LLCConfig(4))
}

// RunMulticoreFigureLLC is RunMulticoreFigureEnv with an explicit
// shared-LLC geometry (ad-hoc specs may override the paper's 8MB).
func RunMulticoreFigureLLC(e *Env, specs []PolicySpec, scale float64, llcCfg cache.Config) *Multicore {
	return runMulticore(e, workloads.Mixes(), specs, scale, llcCfg)
}

// runMulticore runs the given policies plus the LRU baseline over the
// given mixes on one shared-LLC geometry.
func runMulticore(e *Env, mixes []workloads.Mix, specs []PolicySpec, scale float64, llcCfg cache.Config) *Multicore {

	// Single-run IPCs (denominators of weighted speedup): one per
	// distinct benchmark, shared across mixes and policies.
	singleKey := func(bench string) string {
		return fmt.Sprintf("mc-single|s=%g|llc=%d.%d|%s", scaleOr1(scale), llcCfg.SizeBytes, llcCfg.Ways, bench)
	}
	var names []string
	seen := map[string]bool{}
	for _, mix := range mixes {
		for _, name := range mix.Members {
			if !seen[name] {
				seen[name] = true
				names = append(names, name)
			}
		}
	}
	lru := LRUSpec()
	var singleJobs []runner.Job[float64]
	for _, name := range names {
		name := name
		singleJobs = append(singleJobs, runner.Job[float64]{
			Key: singleKey(name),
			Run: func(context.Context) (float64, error) {
				return sim.SingleIPC(name, llcCfg, scale,
					func() cache.Policy { return lru.Make(1) })
			},
		})
	}
	singleSet := runJobs(e, singleJobs)
	singles := map[string]float64{}
	for _, name := range names {
		if v, ok := singleSet.Value(singleKey(name)); ok {
			singles[name] = v
		} else {
			singles[name] = errVal()
		}
	}

	all := append([]PolicySpec{LRUSpec()}, specs...)
	mixKey := func(mix, pol string) string {
		return fmt.Sprintf("mc|s=%g|llc=%d.%d|%s|%s", scaleOr1(scale), llcCfg.SizeBytes, llcCfg.Ways, mix, pol)
	}
	var mixJobs []runner.Job[sim.MulticoreResult]
	for _, mix := range mixes {
		for _, spec := range all {
			mix, spec := mix, spec
			mixJobs = append(mixJobs, runner.Job[sim.MulticoreResult]{
				Key: mixKey(mix.Name, spec.Name),
				Run: func(context.Context) (sim.MulticoreResult, error) {
					return sim.RunMulticore(mix, spec.Make(4), sim.MulticoreOptions{Scale: scale, LLC: llcCfg})
				},
			})
		}
	}
	mixSet := runJobs(e, mixJobs)

	mc := &Multicore{
		WeightedSpeedup: make(map[string]map[string]float64),
		NormMPKI:        make(map[string]float64),
	}
	for _, mix := range mixes {
		mc.Mixes = append(mc.Mixes, mix.Name)
	}
	for _, spec := range specs {
		mc.Policies = append(mc.Policies, spec.Name)
	}

	// ws is NaN when the mix run or any member's single-run IPC failed,
	// so the normalized cell renders as ERR.
	ws := func(mix workloads.Mix, pol string) float64 {
		r, ok := mixSet.Value(mixKey(mix.Name, pol))
		if !ok {
			return errVal()
		}
		var out float64
		for i, name := range mix.Members {
			single := singles[name]
			if !(single > 0) {
				return errVal()
			}
			out += r.IPC[i] / single
		}
		return out
	}
	for _, spec := range all {
		mc.WeightedSpeedup[spec.Name] = make(map[string]float64)
		var mpkis []float64
		for _, mix := range mixes {
			norm := ws(mix, spec.Name) / ws(mix, "LRU")
			mc.WeightedSpeedup[spec.Name][mix.Name] = norm
			lru, lruOK := mixSet.Value(mixKey(mix.Name, "LRU"))
			r, rOK := mixSet.Value(mixKey(mix.Name, spec.Name))
			if lruOK && rOK && lru.MPKI > 0 {
				mpkis = append(mpkis, r.MPKI/lru.MPKI)
			}
		}
		mc.NormMPKI[spec.Name] = meanFinite(mpkis)
	}
	return mc
}

// Render prints one Figure 10 panel: normalized weighted speedup per
// mix per policy with the geometric mean the paper reports, plus the
// Section VII-D normalized MPKI line. Failed cells print as ERR and
// are excluded from the means.
func (mc *Multicore) Render(title string) string {
	header := append([]string{"mix"}, mc.Policies...)
	var rows [][]string
	series := map[string][]float64{}
	for _, mix := range mc.Mixes {
		row := []string{mix}
		for _, p := range mc.Policies {
			v := mc.WeightedSpeedup[p][mix]
			series[p] = append(series[p], v)
			row = append(row, fmtVal("%.3f", v))
		}
		rows = append(rows, row)
	}
	mean := []string{"gmean"}
	for _, p := range mc.Policies {
		mean = append(mean, fmtVal("%.3f", geoMeanFinite(series[p])))
	}
	rows = append(rows, mean)
	out := renderTable(title, header, rows)
	out += "normalized MPKI (mix average): "
	for i, p := range mc.Policies {
		if i > 0 {
			out += "  "
		}
		out += fmt.Sprintf("%s=%s", p, fmtVal("%.2f", mc.NormMPKI[p]))
	}
	return out + "\n"
}
