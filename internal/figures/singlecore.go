package figures

import (
	"fmt"
	"strings"
	"sync"

	"sdbp/internal/optimal"
	"sdbp/internal/policy"
	"sdbp/internal/sim"
	"sdbp/internal/stats"
	"sdbp/internal/workloads"
)

// SingleCore holds the runs behind Figures 4, 5 and 9 and the paper's
// dead-time claim: the memory-intensive subset against the LRU baseline
// and the five comparison policies, plus the optimal policy's misses.
type SingleCore struct {
	Matrix      *Matrix
	OptimalMPKI map[string]float64
	Scale       float64
}

// RunSingleCore performs the Figure 4/5/9 sweep at the given stream
// scale (1.0 = the suite's default length).
func RunSingleCore(scale float64) *SingleCore {
	benches := sortedNames(workloads.Subset())
	specs := append([]PolicySpec{LRUSpec()}, StandardPolicies()...)
	sc := &SingleCore{
		Matrix:      RunMatrix(benches, specs, sim.SingleOptions{Scale: scale}),
		OptimalMPKI: make(map[string]float64),
		Scale:       scale,
	}

	// Optimal replacement-and-bypass over each benchmark's captured LLC
	// stream. Streams are large, so cap concurrent captures.
	var mu sync.Mutex
	var wg sync.WaitGroup
	sem := make(chan struct{}, 4)
	for _, w := range benches {
		wg.Add(1)
		go func(w workloads.Workload) {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			mpki := OptimalMPKI(w, scale)
			mu.Lock()
			sc.OptimalMPKI[w.Name] = mpki
			mu.Unlock()
		}(w)
	}
	wg.Wait()
	return sc
}

// OptimalMPKI runs Belady MIN with optimal bypass over a benchmark's
// captured LLC stream and returns misses per kilo-instruction.
func OptimalMPKI(w workloads.Workload, scale float64) float64 {
	cap := sim.RunSingle(w, policy.NewLRU(), sim.SingleOptions{Scale: scale, CaptureStream: true})
	cfg := defaultLLC()
	min := optimal.Simulate(cap.Stream, cfg.Sets(), cfg.Ways)
	if cap.Instructions == 0 {
		return 0
	}
	return float64(min.Misses) / (float64(cap.Instructions) / 1000)
}

// RenderFig4 prints LLC misses normalized to LRU per benchmark
// (Figure 4), with the arithmetic mean row the paper reports.
func (sc *SingleCore) RenderFig4() string {
	pols := []string{"TDBP", "CDBP", "DIP", "RRIP", "Sampler"}
	header := append([]string{"benchmark"}, pols...)
	header = append(header, "Optimal")
	var rows [][]string
	norm := map[string][]float64{}
	var optNorm []float64
	lru := sc.Matrix.Series("LRU", func(r sim.SingleResult) float64 { return r.MPKI })
	for i, b := range sc.Matrix.Benchmarks {
		row := []string{b}
		for _, p := range pols {
			v := sc.Matrix.Get(b, p).MPKI / lru[i]
			norm[p] = append(norm[p], v)
			row = append(row, fmt.Sprintf("%.3f", v))
		}
		ov := sc.OptimalMPKI[b] / lru[i]
		optNorm = append(optNorm, ov)
		row = append(row, fmt.Sprintf("%.3f", ov))
		rows = append(rows, row)
	}
	mean := []string{"amean"}
	for _, p := range pols {
		mean = append(mean, fmt.Sprintf("%.3f", stats.Mean(norm[p])))
	}
	mean = append(mean, fmt.Sprintf("%.3f", stats.Mean(optNorm)))
	rows = append(rows, mean)
	return renderTable("Figure 4: LLC misses normalized to LRU (2MB LLC)", header, rows)
}

// RenderFig5 prints speedup over LRU per benchmark (Figure 5), with the
// geometric mean row the paper reports.
func (sc *SingleCore) RenderFig5() string {
	pols := []string{"TDBP", "CDBP", "DIP", "RRIP", "Sampler"}
	header := append([]string{"benchmark"}, pols...)
	var rows [][]string
	speed := map[string][]float64{}
	lru := sc.Matrix.Series("LRU", func(r sim.SingleResult) float64 { return r.IPC })
	for i, b := range sc.Matrix.Benchmarks {
		row := []string{b}
		for _, p := range pols {
			v := sc.Matrix.Get(b, p).IPC / lru[i]
			speed[p] = append(speed[p], v)
			row = append(row, fmt.Sprintf("%.3f", v))
		}
		rows = append(rows, row)
	}
	mean := []string{"gmean"}
	for _, p := range pols {
		mean = append(mean, fmt.Sprintf("%.3f", stats.GeoMean(speed[p])))
	}
	rows = append(rows, mean)
	return renderTable("Figure 5: speedup over LRU (2MB LLC)", header, rows)
}

// Fig4Summary returns the Figure 4 policy labels and amean normalized
// misses (for the summary chart).
func (sc *SingleCore) Fig4Summary() ([]string, []float64) {
	pols := []string{"TDBP", "CDBP", "DIP", "RRIP", "Sampler"}
	lru := sc.Matrix.Series("LRU", func(r sim.SingleResult) float64 { return r.MPKI })
	var vals []float64
	for _, p := range pols {
		norm := stats.Normalize(sc.Matrix.Series(p, func(r sim.SingleResult) float64 { return r.MPKI }), lru)
		vals = append(vals, stats.Mean(norm))
	}
	return pols, vals
}

// Fig5Summary returns the Figure 5 policy labels and gmean speedups.
func (sc *SingleCore) Fig5Summary() ([]string, []float64) {
	pols := []string{"TDBP", "CDBP", "DIP", "RRIP", "Sampler"}
	lru := sc.Matrix.Series("LRU", func(r sim.SingleResult) float64 { return r.IPC })
	var vals []float64
	for _, p := range pols {
		sp := stats.Normalize(sc.Matrix.Series(p, func(r sim.SingleResult) float64 { return r.IPC }), lru)
		vals = append(vals, stats.GeoMean(sp))
	}
	return pols, vals
}

// RenderFig9 prints each dead block predictor's coverage and false
// positive rate as a percentage of LLC accesses (Figure 9).
func (sc *SingleCore) RenderFig9() string {
	pols := []string{"TDBP", "CDBP", "Sampler"}
	labels := map[string]string{
		"TDBP": "reftrace", "CDBP": "counting", "Sampler": "sampling",
	}
	header := []string{"benchmark"}
	for _, p := range pols {
		header = append(header, labels[p]+" cov%", labels[p]+" fp%")
	}
	var rows [][]string
	sums := make(map[string][2]float64)
	for _, b := range sc.Matrix.Benchmarks {
		row := []string{b}
		for _, p := range pols {
			r := sc.Matrix.Get(b, p)
			cov, fp := 0.0, 0.0
			if r.Accuracy != nil {
				cov, fp = r.Accuracy.Coverage(), r.Accuracy.FalsePositiveRate()
			}
			s := sums[p]
			s[0] += cov
			s[1] += fp
			sums[p] = s
			row = append(row, fmt.Sprintf("%.1f", cov*100), fmt.Sprintf("%.1f", fp*100))
		}
		rows = append(rows, row)
	}
	n := float64(len(sc.Matrix.Benchmarks))
	mean := []string{"amean"}
	for _, p := range pols {
		mean = append(mean, fmt.Sprintf("%.1f", sums[p][0]/n*100), fmt.Sprintf("%.1f", sums[p][1]/n*100))
	}
	rows = append(rows, mean)
	return renderTable("Figure 9: predictor coverage and false positive rates (% of LLC accesses)", header, rows)
}

// DeadTimeClaim returns the average fraction of block-resident time
// that blocks spend dead in the LRU baseline (the paper's 86.2% claim).
func (sc *SingleCore) DeadTimeClaim() float64 {
	var dead []float64
	for _, b := range sc.Matrix.Benchmarks {
		dead = append(dead, 1-sc.Matrix.Get(b, "LRU").Efficiency)
	}
	return stats.Mean(dead)
}

// RenderClaim prints the dead-time claim comparison.
func (sc *SingleCore) RenderClaim() string {
	return fmt.Sprintf(
		"Section I claim: average dead time in a 2MB LRU LLC\n  paper: 86.2%%   measured: %.1f%%\n",
		sc.DeadTimeClaim()*100)
}

// RandomBaseline holds the Figure 7/8 runs: the subset against random
// replacement and the dead-block policies over it.
type RandomBaseline struct {
	Matrix *Matrix
	LRU    *Matrix
}

// RunRandomBaseline performs the Figure 7/8 sweep. Values remain
// normalized to the LRU baseline, as in the paper.
func RunRandomBaseline(scale float64) *RandomBaseline {
	benches := sortedNames(workloads.Subset())
	return &RandomBaseline{
		Matrix: RunMatrix(benches, RandomPolicies(), sim.SingleOptions{Scale: scale}),
		LRU:    RunMatrix(benches, []PolicySpec{LRUSpec()}, sim.SingleOptions{Scale: scale}),
	}
}

// RenderFig7 prints misses normalized to the LRU baseline (Figure 7).
func (rb *RandomBaseline) RenderFig7() string {
	return rb.render("Figure 7: LLC misses normalized to LRU, default random replacement",
		func(r sim.SingleResult) float64 { return r.MPKI }, stats.Mean, "amean")
}

// RenderFig8 prints speedup over the LRU baseline (Figure 8).
func (rb *RandomBaseline) RenderFig8() string {
	return rb.render("Figure 8: speedup over LRU, default random replacement",
		func(r sim.SingleResult) float64 { return r.IPC }, stats.GeoMean, "gmean")
}

func (rb *RandomBaseline) render(title string, f func(sim.SingleResult) float64,
	agg func([]float64) float64, aggName string) string {
	pols := rb.Matrix.Policies
	header := append([]string{"benchmark"}, pols...)
	var rows [][]string
	series := map[string][]float64{}
	lru := rb.LRU.Series("LRU", f)
	for i, b := range rb.Matrix.Benchmarks {
		row := []string{b}
		for _, p := range pols {
			v := f(rb.Matrix.Get(b, p)) / lru[i]
			series[p] = append(series[p], v)
			row = append(row, fmt.Sprintf("%.3f", v))
		}
		rows = append(rows, row)
	}
	mean := []string{aggName}
	for _, p := range pols {
		mean = append(mean, fmt.Sprintf("%.3f", agg(series[p])))
	}
	rows = append(rows, mean)
	var sb strings.Builder
	sb.WriteString(renderTable(title, header, rows))
	return sb.String()
}
