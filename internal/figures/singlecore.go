package figures

import (
	"context"
	"fmt"
	"strings"

	"sdbp/internal/optimal"
	"sdbp/internal/runner"
	"sdbp/internal/sim"
	"sdbp/internal/stats"
	"sdbp/internal/workloads"
)

// SingleCore holds the runs behind Figures 4, 5 and 9 and the paper's
// dead-time claim: the memory-intensive subset against the LRU baseline
// and the five comparison policies, plus the optimal policy's misses.
// A failed optimal run leaves NaN in OptimalMPKI; renderers print it
// as ERR.
type SingleCore struct {
	Matrix      *Matrix
	OptimalMPKI map[string]float64
	Scale       float64
}

// RunSingleCore performs the Figure 4/5/9 sweep at the given stream
// scale (1.0 = the suite's default length).
func RunSingleCore(scale float64) *SingleCore {
	return RunSingleCoreEnv(DefaultEnv(), scale)
}

// RunSingleCoreEnv is RunSingleCore on a shared execution environment.
func RunSingleCoreEnv(e *Env, scale float64) *SingleCore {
	benches := sortedNames(workloads.Subset())
	specs := append([]PolicySpec{LRUSpec()}, StandardPolicies()...)
	sc := &SingleCore{
		Matrix:      RunMatrixEnv(e, "singlecore", benches, specs, sim.SingleOptions{Scale: scale}),
		OptimalMPKI: make(map[string]float64),
		Scale:       scale,
	}

	// Optimal replacement-and-bypass over each benchmark's captured LLC
	// stream. Streams are large, so cap concurrent captures.
	key := func(bench string) string {
		return fmt.Sprintf("optimal|s=%g|%s", scaleOr1(scale), bench)
	}
	var jobs []runner.Job[float64]
	for _, w := range benches {
		w := w
		jobs = append(jobs, runner.Job[float64]{
			Key: key(w.Name),
			Run: func(context.Context) (float64, error) {
				return OptimalMPKI(w, scale), nil
			},
		})
	}
	set := runJobsLimited(e, jobs, 4)
	for _, w := range benches {
		if v, ok := set.Value(key(w.Name)); ok {
			sc.OptimalMPKI[w.Name] = v
		} else {
			sc.OptimalMPKI[w.Name] = errVal()
		}
	}
	return sc
}

// OptimalMPKI runs Belady MIN with optimal bypass over a benchmark's
// captured LLC stream and returns misses per kilo-instruction.
//
// The capture run installs a per-access stream observer, which makes
// the hierarchy's drive loop fall back from the block-granular path to
// scalar dispatch — one of the allowlisted per-access sites in
// scripts/check_batch.sh. Every matrix campaign cell above runs
// observer-free and rides hier.Core.AccessBlock.
func OptimalMPKI(w workloads.Workload, scale float64) float64 {
	cap := sim.RunSingle(w, LRUSpec().Make(1), sim.SingleOptions{Scale: scale, CaptureStream: true})
	cfg := defaultLLC()
	min := optimal.Simulate(cap.Stream, cfg.Sets(), cfg.Ways)
	if cap.Instructions == 0 {
		return 0
	}
	return float64(min.Misses) / (float64(cap.Instructions) / 1000)
}

// RenderFig4 prints LLC misses normalized to LRU per benchmark
// (Figure 4), with the arithmetic mean row the paper reports. Failed
// cells (and every cell of a benchmark whose LRU baseline failed)
// print as ERR and are excluded from the mean.
func (sc *SingleCore) RenderFig4() string {
	pols := []string{"TDBP", "CDBP", "DIP", "RRIP", "Sampler"}
	header := append([]string{"benchmark"}, pols...)
	header = append(header, "Optimal")
	var rows [][]string
	norm := map[string][]float64{}
	var optNorm []float64
	lru := sc.Matrix.Series("LRU", func(r sim.SingleResult) float64 { return r.MPKI })
	for i, b := range sc.Matrix.Benchmarks {
		row := []string{b}
		for _, p := range pols {
			v := sc.Matrix.Val(b, p, func(r sim.SingleResult) float64 { return r.MPKI }) / lru[i]
			norm[p] = append(norm[p], v)
			row = append(row, fmtVal("%.3f", v))
		}
		ov := sc.OptimalMPKI[b] / lru[i]
		optNorm = append(optNorm, ov)
		row = append(row, fmtVal("%.3f", ov))
		rows = append(rows, row)
	}
	mean := []string{"amean"}
	for _, p := range pols {
		mean = append(mean, fmtVal("%.3f", meanFinite(norm[p])))
	}
	mean = append(mean, fmtVal("%.3f", meanFinite(optNorm)))
	rows = append(rows, mean)
	return renderTable("Figure 4: LLC misses normalized to LRU (2MB LLC)", header, rows)
}

// RenderFig5 prints speedup over LRU per benchmark (Figure 5), with the
// geometric mean row the paper reports.
func (sc *SingleCore) RenderFig5() string {
	pols := []string{"TDBP", "CDBP", "DIP", "RRIP", "Sampler"}
	header := append([]string{"benchmark"}, pols...)
	var rows [][]string
	speed := map[string][]float64{}
	lru := sc.Matrix.Series("LRU", func(r sim.SingleResult) float64 { return r.IPC })
	for i, b := range sc.Matrix.Benchmarks {
		row := []string{b}
		for _, p := range pols {
			v := sc.Matrix.Val(b, p, func(r sim.SingleResult) float64 { return r.IPC }) / lru[i]
			speed[p] = append(speed[p], v)
			row = append(row, fmtVal("%.3f", v))
		}
		rows = append(rows, row)
	}
	mean := []string{"gmean"}
	for _, p := range pols {
		mean = append(mean, fmtVal("%.3f", geoMeanFinite(speed[p])))
	}
	rows = append(rows, mean)
	return renderTable("Figure 5: speedup over LRU (2MB LLC)", header, rows)
}

// Fig4Summary returns the Figure 4 policy labels and amean normalized
// misses (for the summary chart), over completed cells.
func (sc *SingleCore) Fig4Summary() ([]string, []float64) {
	pols := []string{"TDBP", "CDBP", "DIP", "RRIP", "Sampler"}
	lru := sc.Matrix.Series("LRU", func(r sim.SingleResult) float64 { return r.MPKI })
	var vals []float64
	for _, p := range pols {
		norm := stats.Normalize(sc.Matrix.Series(p, func(r sim.SingleResult) float64 { return r.MPKI }), lru)
		vals = append(vals, meanFinite(norm))
	}
	return pols, vals
}

// Fig5Summary returns the Figure 5 policy labels and gmean speedups.
func (sc *SingleCore) Fig5Summary() ([]string, []float64) {
	pols := []string{"TDBP", "CDBP", "DIP", "RRIP", "Sampler"}
	lru := sc.Matrix.Series("LRU", func(r sim.SingleResult) float64 { return r.IPC })
	var vals []float64
	for _, p := range pols {
		sp := stats.Normalize(sc.Matrix.Series(p, func(r sim.SingleResult) float64 { return r.IPC }), lru)
		vals = append(vals, geoMeanFinite(sp))
	}
	return pols, vals
}

// RenderFig9 prints each dead block predictor's coverage and false
// positive rate as a percentage of LLC accesses (Figure 9).
func (sc *SingleCore) RenderFig9() string {
	pols := []string{"TDBP", "CDBP", "Sampler"}
	labels := map[string]string{
		"TDBP": "reftrace", "CDBP": "counting", "Sampler": "sampling",
	}
	header := []string{"benchmark"}
	for _, p := range pols {
		header = append(header, labels[p]+" cov%", labels[p]+" fp%")
	}
	var rows [][]string
	sums := make(map[string][2][]float64)
	for _, b := range sc.Matrix.Benchmarks {
		row := []string{b}
		for _, p := range pols {
			if sc.Matrix.Err(b, p) != nil {
				row = append(row, "ERR", "ERR")
				continue
			}
			r := sc.Matrix.Get(b, p)
			cov, fp := 0.0, 0.0
			if r.Accuracy != nil {
				cov, fp = r.Accuracy.Coverage(), r.Accuracy.FalsePositiveRate()
			}
			s := sums[p]
			s[0] = append(s[0], cov)
			s[1] = append(s[1], fp)
			sums[p] = s
			row = append(row, fmt.Sprintf("%.1f", cov*100), fmt.Sprintf("%.1f", fp*100))
		}
		rows = append(rows, row)
	}
	mean := []string{"amean"}
	for _, p := range pols {
		mean = append(mean,
			fmtVal("%.1f", meanFinite(sums[p][0])*100),
			fmtVal("%.1f", meanFinite(sums[p][1])*100))
	}
	rows = append(rows, mean)
	return renderTable("Figure 9: predictor coverage and false positive rates (% of LLC accesses)", header, rows)
}

// DeadTimeClaim returns the average fraction of block-resident time
// that blocks spend dead in the LRU baseline (the paper's 86.2% claim).
func (sc *SingleCore) DeadTimeClaim() float64 {
	var dead []float64
	for _, b := range sc.Matrix.Benchmarks {
		dead = append(dead, 1-sc.Matrix.Val(b, "LRU", func(r sim.SingleResult) float64 { return r.Efficiency }))
	}
	return meanFinite(dead)
}

// RenderClaim prints the dead-time claim comparison.
func (sc *SingleCore) RenderClaim() string {
	return fmt.Sprintf(
		"Section I claim: average dead time in a 2MB LRU LLC\n  paper: 86.2%%   measured: %s%%\n",
		fmtVal("%.1f", sc.DeadTimeClaim()*100))
}

// RandomBaseline holds the Figure 7/8 runs: the subset against random
// replacement and the dead-block policies over it.
type RandomBaseline struct {
	Matrix *Matrix
	LRU    *Matrix
}

// RunRandomBaseline performs the Figure 7/8 sweep. Values remain
// normalized to the LRU baseline, as in the paper.
func RunRandomBaseline(scale float64) *RandomBaseline {
	return RunRandomBaselineEnv(DefaultEnv(), scale)
}

// RunRandomBaselineEnv is RunRandomBaseline on a shared environment.
func RunRandomBaselineEnv(e *Env, scale float64) *RandomBaseline {
	benches := sortedNames(workloads.Subset())
	return &RandomBaseline{
		Matrix: RunMatrixEnv(e, "random", benches, RandomPolicies(), sim.SingleOptions{Scale: scale}),
		LRU:    RunMatrixEnv(e, "random-lru", benches, []PolicySpec{LRUSpec()}, sim.SingleOptions{Scale: scale}),
	}
}

// RenderFig7 prints misses normalized to the LRU baseline (Figure 7).
func (rb *RandomBaseline) RenderFig7() string {
	return rb.render("Figure 7: LLC misses normalized to LRU, default random replacement",
		func(r sim.SingleResult) float64 { return r.MPKI }, meanFinite, "amean")
}

// RenderFig8 prints speedup over the LRU baseline (Figure 8).
func (rb *RandomBaseline) RenderFig8() string {
	return rb.render("Figure 8: speedup over LRU, default random replacement",
		func(r sim.SingleResult) float64 { return r.IPC }, geoMeanFinite, "gmean")
}

func (rb *RandomBaseline) render(title string, f func(sim.SingleResult) float64,
	agg func([]float64) float64, aggName string) string {
	pols := rb.Matrix.Policies
	header := append([]string{"benchmark"}, pols...)
	var rows [][]string
	series := map[string][]float64{}
	lru := rb.LRU.Series("LRU", f)
	for i, b := range rb.Matrix.Benchmarks {
		row := []string{b}
		for _, p := range pols {
			v := rb.Matrix.Val(b, p, f) / lru[i]
			series[p] = append(series[p], v)
			row = append(row, fmtVal("%.3f", v))
		}
		rows = append(rows, row)
	}
	mean := []string{aggName}
	for _, p := range pols {
		mean = append(mean, fmtVal("%.3f", agg(series[p])))
	}
	rows = append(rows, mean)
	var sb strings.Builder
	sb.WriteString(renderTable(title, header, rows))
	return sb.String()
}
