package figures

import (
	"context"
	"fmt"
	"strings"

	"sdbp/internal/cache"
	"sdbp/internal/exp"
	"sdbp/internal/runner"
	"sdbp/internal/sim"
	"sdbp/internal/workloads"
)

// Fig1 holds the cache-efficiency illustration: 456.hmmer on a 1MB
// 16-way LLC under LRU and under sampler-driven dead block replacement
// and bypass. The paper reports 22% vs 87% efficiency and renders
// per-line live-time ratios as greyscale. A failed variant renders its
// efficiency as ERR with an empty map.
type Fig1 struct {
	LRUEfficiency     float64
	SamplerEfficiency float64
	LRUMap            [][]float64
	SamplerMap        [][]float64
}

// RunFig1 performs the Figure 1 measurement.
func RunFig1(scale float64) *Fig1 {
	return RunFig1Env(DefaultEnv(), scale)
}

// RunFig1Env is RunFig1 on a shared environment.
func RunFig1Env(e *Env, scale float64) *Fig1 {
	llc := exp.MustGeometry("llc(mb=1)")
	opts := sim.SingleOptions{Scale: scale, LLC: llc, KeepLineEfficiencies: true}

	run := func(variant string, mk func() cache.Policy) runner.Job[sim.SingleResult] {
		return runner.Job[sim.SingleResult]{
			Key: fmt.Sprintf("fig1|%s|%s", optKey(opts), variant),
			Run: func(context.Context) (sim.SingleResult, error) {
				w, err := workloads.ByName("456.hmmer")
				if err != nil {
					return sim.SingleResult{}, err
				}
				return sim.RunSingle(w, mk(), opts), nil
			},
		}
	}
	lru, smp := LRUSpec(), preset("Sampler")
	jobs := []runner.Job[sim.SingleResult]{
		run("lru", func() cache.Policy { return lru.Make(1) }),
		run("sampler", func() cache.Policy { return smp.Make(1) }),
	}
	set := runJobs(e, jobs)

	f := &Fig1{LRUEfficiency: errVal(), SamplerEfficiency: errVal()}
	if lru, ok := set.Value(jobs[0].Key); ok {
		f.LRUEfficiency, f.LRUMap = lru.Efficiency, lru.LineEfficiencies
	}
	if smp, ok := set.Value(jobs[1].Key); ok {
		f.SamplerEfficiency, f.SamplerMap = smp.Efficiency, smp.LineEfficiencies
	}
	return f
}

// Render prints the efficiencies and coarse ASCII greyscale maps
// (darker characters = longer dead).
func (f *Fig1) Render() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "Figure 1: 456.hmmer cache efficiency, 1MB 16-way LLC\n")
	fmt.Fprintf(&sb, "  (a) LRU:                     %s%%  (paper: 22%%)\n", fmtVal("%.0f", f.LRUEfficiency*100))
	fmt.Fprintf(&sb, "  (b) sampler dead block R&B:  %s%%  (paper: 87%%)\n", fmtVal("%.0f", f.SamplerEfficiency*100))
	sb.WriteString("\n  (a) LRU\n")
	sb.WriteString(asciiMap(f.LRUMap))
	sb.WriteString("\n  (b) sampler DBRB\n")
	sb.WriteString(asciiMap(f.SamplerMap))
	return sb.String()
}

// asciiMap downsamples a sets×ways efficiency matrix to a character
// grid: ' ' fully live through '#' fully dead.
func asciiMap(m [][]float64) string {
	if len(m) == 0 {
		return ""
	}
	const rows = 16
	shades := []byte(" .:-=+*%#")
	ways := len(m[0])
	group := (len(m) + rows - 1) / rows
	var sb strings.Builder
	for r := 0; r < rows; r++ {
		sb.WriteString("  ")
		for w := 0; w < ways; w++ {
			var sum float64
			var n int
			for s := r * group; s < (r+1)*group && s < len(m); s++ {
				sum += m[s][w]
				n++
			}
			eff := 0.0
			if n > 0 {
				eff = sum / float64(n)
			}
			idx := int((1 - eff) * float64(len(shades)-1))
			if idx < 0 {
				idx = 0
			}
			if idx >= len(shades) {
				idx = len(shades) - 1
			}
			sb.WriteByte(shades[idx])
		}
		sb.WriteByte('\n')
	}
	return sb.String()
}
