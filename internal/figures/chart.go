package figures

import (
	"fmt"
	"strings"
)

// BarChart renders a horizontal ASCII bar chart — the harness's stand-in
// for the paper's bar figures. Values are scaled to the chart width;
// an optional reference line (e.g. the LRU baseline at 1.0) is marked
// with '|'.
type BarChart struct {
	// Title is printed above the chart.
	Title string
	// Width is the bar area width in characters (default 50).
	Width int
	// Reference, when nonzero, draws a vertical marker at that value
	// (useful for normalized charts where 1.0 is the baseline).
	Reference float64

	labels []string
	values []float64
}

// Add appends one bar.
func (c *BarChart) Add(label string, value float64) {
	c.labels = append(c.labels, label)
	c.values = append(c.values, value)
}

// Render draws the chart.
func (c *BarChart) Render() string {
	width := c.Width
	if width <= 0 {
		width = 50
	}
	var max float64
	labelW := 0
	for i, v := range c.values {
		if v > max {
			max = v
		}
		if len(c.labels[i]) > labelW {
			labelW = len(c.labels[i])
		}
	}
	if c.Reference > max {
		max = c.Reference
	}
	if max == 0 {
		max = 1
	}

	refCol := -1
	if c.Reference > 0 {
		refCol = int(c.Reference / max * float64(width-1))
	}

	var sb strings.Builder
	if c.Title != "" {
		sb.WriteString(c.Title)
		sb.WriteByte('\n')
	}
	for i, v := range c.values {
		fill := int(v / max * float64(width-1))
		if v > 0 && fill == 0 {
			fill = 1
		}
		bar := make([]byte, width)
		for j := range bar {
			switch {
			case j < fill:
				bar[j] = '#'
			case j == refCol:
				bar[j] = '|'
			default:
				bar[j] = ' '
			}
		}
		if refCol >= 0 && refCol < fill {
			bar[refCol] = '|'
		}
		fmt.Fprintf(&sb, "  %-*s %s %.3f\n", labelW, c.labels[i], string(bar), v)
	}
	return sb.String()
}

// SummaryChart builds a normalized-to-baseline bar chart from parallel
// label/value slices with the baseline marked at 1.0.
func SummaryChart(title string, labels []string, values []float64) string {
	if len(labels) != len(values) {
		panic("figures: label/value length mismatch")
	}
	c := &BarChart{Title: title, Reference: 1.0}
	for i := range labels {
		c.Add(labels[i], values[i])
	}
	return c.Render()
}
