package figures

import (
	"strings"
	"testing"

	"sdbp/internal/sim"
	"sdbp/internal/workloads"
)

// tinyScale keeps the harness smoke tests fast; figure values at this
// scale are not meaningful, only plumbing is under test.
const tinyScale = 0.01

func TestRunMatrixCoversAllCells(t *testing.T) {
	benches := sortedNames(workloads.Subset())[:3]
	specs := append([]PolicySpec{LRUSpec()}, StandardPolicies()[:2]...)
	m := RunMatrix(benches, specs, sim.SingleOptions{Scale: tinyScale})
	if len(m.Benchmarks) != 3 || len(m.Policies) != 3 {
		t.Fatalf("matrix %dx%d", len(m.Benchmarks), len(m.Policies))
	}
	for _, b := range m.Benchmarks {
		for _, p := range m.Policies {
			if m.Get(b, p).Instructions == 0 {
				t.Errorf("cell (%s,%s) empty", b, p)
			}
		}
	}
}

func TestMatrixSeries(t *testing.T) {
	benches := sortedNames(workloads.Subset())[:2]
	m := RunMatrix(benches, []PolicySpec{LRUSpec()}, sim.SingleOptions{Scale: tinyScale})
	s := m.Series("LRU", func(r sim.SingleResult) float64 { return r.MPKI })
	if len(s) != 2 || s[0] <= 0 {
		t.Errorf("series = %v", s)
	}
}

func TestSingleCoreRenders(t *testing.T) {
	if testing.Short() {
		t.Skip("heavy")
	}
	sc := RunSingleCore(tinyScale)
	for name, out := range map[string]string{
		"fig4":  sc.RenderFig4(),
		"fig5":  sc.RenderFig5(),
		"fig9":  sc.RenderFig9(),
		"claim": sc.RenderClaim(),
	} {
		if len(out) == 0 {
			t.Errorf("%s rendered empty", name)
		}
	}
	if !strings.Contains(sc.RenderFig4(), "amean") {
		t.Error("fig4 missing the mean row")
	}
	if !strings.Contains(sc.RenderFig5(), "gmean") {
		t.Error("fig5 missing the mean row")
	}
	if len(sc.OptimalMPKI) != 19 {
		t.Errorf("optimal MPKI for %d benchmarks, want 19", len(sc.OptimalMPKI))
	}
	// MIN must not lose to LRU on any benchmark.
	for _, b := range sc.Matrix.Benchmarks {
		if sc.OptimalMPKI[b] > sc.Matrix.Get(b, "LRU").MPKI*1.001 {
			t.Errorf("%s: optimal MPKI %.2f above LRU %.2f",
				b, sc.OptimalMPKI[b], sc.Matrix.Get(b, "LRU").MPKI)
		}
	}
}

func TestStandardPoliciesComplete(t *testing.T) {
	want := []string{"TDBP", "CDBP", "DIP", "RRIP", "Sampler"}
	got := StandardPolicies()
	if len(got) != len(want) {
		t.Fatalf("policies = %d", len(got))
	}
	for i, spec := range got {
		if spec.Name != want[i] {
			t.Errorf("policy %d = %s, want %s", i, spec.Name, want[i])
		}
		if spec.Make(1) == nil {
			t.Errorf("%s builds nil", spec.Name)
		}
	}
}

func TestTable1ContainsPaperValues(t *testing.T) {
	out := RenderTable1()
	for _, want := range []string{"reftrace", "72.00", "counting", "108.00", "sampler"} {
		if !strings.Contains(out, want) {
			t.Errorf("Table I missing %q:\n%s", want, out)
		}
	}
}

func TestTable2Renders(t *testing.T) {
	out := RenderTable2()
	if !strings.Contains(out, "baseline 2MB LLC") {
		t.Errorf("Table II missing baseline:\n%s", out)
	}
}

func TestFig1Runs(t *testing.T) {
	if testing.Short() {
		t.Skip("heavy")
	}
	f := RunFig1(0.05)
	if f.SamplerEfficiency <= f.LRUEfficiency {
		t.Errorf("sampler efficiency %.2f not above LRU %.2f",
			f.SamplerEfficiency, f.LRUEfficiency)
	}
	if out := f.Render(); !strings.Contains(out, "Figure 1") {
		t.Error("render missing title")
	}
}

func TestTable4CurvesMonotoneish(t *testing.T) {
	if testing.Short() {
		t.Skip("heavy")
	}
	t4 := RunTable4(tinyScale)
	if len(t4.Curves) != 10 {
		t.Fatalf("curves = %d", len(t4.Curves))
	}
	for mix, curve := range t4.Curves {
		if len(curve) != len(SensitivitySizes) {
			t.Fatalf("%s curve has %d points", mix, len(curve))
		}
		// Bigger caches can only help: the last point must not exceed
		// the first.
		if curve[len(curve)-1] > curve[0] {
			t.Errorf("%s: MPKI grew with capacity (%.2f -> %.2f)",
				mix, curve[0], curve[len(curve)-1])
		}
	}
}
