package figures

import (
	"fmt"

	"sdbp/internal/cache"
	"sdbp/internal/dbrb"
	"sdbp/internal/policy"
	"sdbp/internal/predictor"
	"sdbp/internal/sim"
	"sdbp/internal/stats"
	"sdbp/internal/workloads"
)

// AblationOrder is the paper's Figure 6 bar order.
var AblationOrder = []string{
	"DBRB alone",
	"DBRB+3 tables",
	"DBRB+sampler",
	"DBRB+sampler+3 tables",
	"DBRB+sampler+12-way",
	"DBRB+sampler+3 tables+12-way",
}

// Ablation holds the Figure 6 component-contribution study: geometric
// mean speedup over LRU for every feasible combination of the sampler,
// reduced sampler associativity, and the skewed table organization.
type Ablation struct {
	Speedup map[string]float64 // variant -> gmean speedup over LRU
}

// RunAblation performs the Figure 6 sweep.
func RunAblation(scale float64) *Ablation {
	benches := sortedNames(workloads.Subset())
	specs := []PolicySpec{LRUSpec()}
	cfgs := predictor.AblationConfigs()
	for _, name := range AblationOrder {
		cfg := cfgs[name]
		specs = append(specs, PolicySpec{name, func(int) cache.Policy {
			return dbrb.New(policy.NewLRU(), predictor.NewSampler(cfg))
		}})
	}
	m := RunMatrix(benches, specs, sim.SingleOptions{Scale: scale})

	lru := m.Series("LRU", func(r sim.SingleResult) float64 { return r.IPC })
	ab := &Ablation{Speedup: make(map[string]float64)}
	for _, name := range AblationOrder {
		var sp []float64
		for i, b := range m.Benchmarks {
			sp = append(sp, m.Get(b, name).IPC/lru[i])
		}
		ab.Speedup[name] = stats.GeoMean(sp)
	}
	return ab
}

// Render prints the Figure 6 bars: gmean speedup per variant.
func (ab *Ablation) Render() string {
	header := []string{"variant", "gmean speedup"}
	var rows [][]string
	for _, name := range AblationOrder {
		rows = append(rows, []string{name, fmt.Sprintf("%.3f", ab.Speedup[name])})
	}
	return renderTable("Figure 6: contribution of sampling, reduced associativity, and skewed prediction", header, rows)
}
