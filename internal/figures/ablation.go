package figures

import (
	"sdbp/internal/exp"
	"sdbp/internal/sim"
	"sdbp/internal/workloads"
)

// AblationOrder is the paper's Figure 6 bar order. Each name resolves
// as a registry preset.
var AblationOrder = exp.AblationVariantNames()

// Ablation holds the Figure 6 component-contribution study: geometric
// mean speedup over LRU for every feasible combination of the sampler,
// reduced sampler associativity, and the skewed table organization.
type Ablation struct {
	Speedup map[string]float64 // variant -> gmean speedup over LRU
}

// RunAblation performs the Figure 6 sweep.
func RunAblation(scale float64) *Ablation {
	return RunAblationEnv(DefaultEnv(), scale)
}

// RunAblationEnv is RunAblation on a shared environment.
func RunAblationEnv(e *Env, scale float64) *Ablation {
	benches := sortedNames(workloads.Subset())
	specs := []PolicySpec{LRUSpec()}
	for _, name := range AblationOrder {
		specs = append(specs, preset(name))
	}
	m := RunMatrixEnv(e, "ablation", benches, specs, sim.SingleOptions{Scale: scale})

	lru := m.Series("LRU", func(r sim.SingleResult) float64 { return r.IPC })
	ab := &Ablation{Speedup: make(map[string]float64)}
	for _, name := range AblationOrder {
		var sp []float64
		for i, b := range m.Benchmarks {
			sp = append(sp, m.Val(b, name, func(r sim.SingleResult) float64 { return r.IPC })/lru[i])
		}
		ab.Speedup[name] = geoMeanFinite(sp)
	}
	return ab
}

// Render prints the Figure 6 bars: gmean speedup per variant; a
// variant whose runs all failed prints as ERR.
func (ab *Ablation) Render() string {
	header := []string{"variant", "gmean speedup"}
	var rows [][]string
	for _, name := range AblationOrder {
		rows = append(rows, []string{name, fmtVal("%.3f", ab.Speedup[name])})
	}
	return renderTable("Figure 6: contribution of sampling, reduced associativity, and skewed prediction", header, rows)
}
