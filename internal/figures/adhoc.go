package figures

import (
	"context"
	"fmt"
	"strings"

	"sdbp/internal/cache"
	"sdbp/internal/exp"
	"sdbp/internal/runner"
	"sdbp/internal/sim"
)

// Adhoc holds one user-declared experiment (cmd/experiments -spec or
// -policy): the spec's policy against the LRU baseline over the spec's
// workloads and/or quad-core mixes. The same normalizations as the
// paper's figures apply — norm miss is the Figure 4 cell, speedup the
// Figure 5 cell, and the mix panel uses the Figure 10 weighted-speedup
// formula — so an ad-hoc run of a preset policy over a figure's
// benchmark reproduces that figure's cell.
type Adhoc struct {
	// Spec is the fully-expanded canonical spec (exp.Resolved.String),
	// echoed into the rendering and the run manifest.
	Spec string
	// Label is the policy's column label.
	Label string
	// Matrix holds the single-benchmark runs (nil when the spec selects
	// no workloads); its columns are LRU and Label.
	Matrix *Matrix
	// Mixes holds the quad-core runs (nil when the spec selects no
	// mixes), normalized to shared LRU as in Figure 10.
	Mixes *Multicore
	// Sampled holds sampled-mode rows (specs with sampled=true): one
	// estimate with error bounds per workload. Matrix and Mixes are nil
	// in that mode — a sampled spec never runs the full streams.
	Sampled []SampledCell
}

// RunAdhocEnv runs a resolved spec on a shared environment.
func RunAdhocEnv(e *Env, r *exp.Resolved) *Adhoc {
	label := r.Policy.Name
	if label == "LRU" {
		// The baseline column is already named LRU; keep the checkpoint
		// keys distinct.
		label = "LRU (spec)"
	}
	a := &Adhoc{Spec: r.String(), Label: label}

	if r.Sampled {
		// Sampled mode: the pilot/selection/materialization is cached
		// inside exp per workload, so concurrent jobs share one pilot.
		key := func(bench string) string { return "adhoc-sampled|" + a.Spec + "|" + bench }
		var jobs []runner.Job[*SampledCell]
		for _, w := range r.Workloads {
			w := w
			jobs = append(jobs, runner.Job[*SampledCell]{
				Key: key(w.Name),
				Run: func(context.Context) (*SampledCell, error) {
					res, _, err := r.RunBenchSampled(w)
					if err != nil {
						return nil, err
					}
					return &SampledCell{Bench: w.Name, Policy: label, Estimate: res.Estimate}, nil
				},
			})
		}
		set := runJobs(e, jobs)
		for _, w := range r.Workloads {
			if c, ok := set.Value(key(w.Name)); ok && c != nil {
				a.Sampled = append(a.Sampled, *c)
			}
		}
		return a
	}

	if len(r.Workloads) > 0 {
		// Zero opts.LLC means the simulator's default geometry — the same
		// option value the paper's figures pass — so a default-geometry
		// ad-hoc run shares checkpoint cells with the figure sweeps.
		opts := sim.SingleOptions{Scale: r.Scale}
		if r.LLCSet || r.Cores != 1 {
			opts.LLC = r.LLCFor(r.Cores)
		}
		specs := []PolicySpec{
			LRUSpec(),
			{Name: label, Make: func(int) cache.Policy { return r.Policy.Make(r.Cores) }},
		}
		a.Matrix = RunMatrixEnv(e, "adhoc", r.Workloads, specs, opts)
	}
	if len(r.Mixes) > 0 {
		specs := []PolicySpec{{Name: label, Make: r.Policy.Make}}
		a.Mixes = runMulticore(e, r.Mixes, specs, r.Scale, r.LLCFor(4))
	}
	return a
}

// Render prints the experiment: raw MPKI and IPC per benchmark plus
// the figure-cell normalizations (misses normalized to LRU, speedup
// over LRU) and predictor accuracy where the policy exposes it, then
// the Figure 10 panel for any mixes. Failed runs print as ERR.
func (a *Adhoc) Render() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "Ad-hoc experiment\nspec: %s\n", a.Spec)
	if a.Sampled != nil {
		sb.WriteByte('\n')
		sb.WriteString(a.renderSampled())
	}
	if a.Matrix != nil {
		sb.WriteByte('\n')
		sb.WriteString(a.renderBenches())
	}
	if a.Mixes != nil {
		sb.WriteByte('\n')
		sb.WriteString(a.Mixes.Render(fmt.Sprintf("Quad-core mixes: weighted speedup of %s normalized to shared LRU", a.Label)))
	}
	return sb.String()
}

// renderSampled prints the sampled-mode table: each estimate with its
// half-width error bound and the simulated fraction that bought it.
func (a *Adhoc) renderSampled() string {
	header := []string{"benchmark", "IPC", "±", "CPI", "MPKI", "±", "miss rate", "±", "sim%", "picks"}
	var rows [][]string
	for _, c := range a.Sampled {
		rows = append(rows, []string{c.Bench,
			fmtVal("%.4f", c.Estimate.IPC), fmtVal("%.4f", c.Estimate.IPCHalf),
			fmtVal("%.4f", c.Estimate.CPI),
			fmtVal("%.3f", c.Estimate.MPKI), fmtVal("%.3f", c.Estimate.MPKIHalf),
			fmtVal("%.4f", c.Estimate.MissRate), fmtVal("%.4f", c.Estimate.MissRateHalf),
			fmtVal("%.1f", 100*c.Estimate.SimFraction),
			fmt.Sprintf("%d", c.Estimate.Picks),
		})
	}
	return renderTable(fmt.Sprintf("Sampled estimates: %s (each value ± its 95%% bound incl. bias allowance)", a.Label), header, rows)
}

func (a *Adhoc) renderBenches() string {
	m := a.Matrix
	header := []string{"benchmark", "LRU MPKI", "MPKI", "IPC", "norm miss", "speedup", "cov%", "fp%"}
	var rows [][]string
	var norm, speed []float64
	mpki := func(r sim.SingleResult) float64 { return r.MPKI }
	ipc := func(r sim.SingleResult) float64 { return r.IPC }
	for _, b := range m.Benchmarks {
		lruM, lruI := m.Val(b, "LRU", mpki), m.Val(b, "LRU", ipc)
		nm := m.Val(b, a.Label, mpki) / lruM
		sp := m.Val(b, a.Label, ipc) / lruI
		norm = append(norm, nm)
		speed = append(speed, sp)
		row := []string{b,
			fmtVal("%.3f", lruM),
			fmtVal("%.3f", m.Val(b, a.Label, mpki)),
			fmtVal("%.3f", m.Val(b, a.Label, ipc)),
			fmtVal("%.3f", nm),
			fmtVal("%.3f", sp),
		}
		if r, ok := m.Results[cell{b, a.Label}]; ok && r.Accuracy != nil {
			row = append(row,
				fmt.Sprintf("%.1f", r.Accuracy.Coverage()*100),
				fmt.Sprintf("%.1f", r.Accuracy.FalsePositiveRate()*100))
		} else {
			row = append(row, "-", "-")
		}
		rows = append(rows, row)
	}
	rows = append(rows, []string{"mean", "", "", "",
		fmtVal("%.3f", meanFinite(norm)),
		fmtVal("%.3f", geoMeanFinite(speed)), "", ""})
	return renderTable(fmt.Sprintf("Benchmarks: %s vs LRU (norm miss = amean-able Figure 4 cell, speedup = Figure 5 cell)", a.Label), header, rows)
}
