// Package victim implements a victim cache next to the LLC, optionally
// filtered by dead block prediction — the application Hu et al. (ISCA
// 2002) drove with their time-based predictor and one of the paper's
// "optimizations other than replacement and bypass".
//
// An unfiltered victim cache buffers every LLC victim; most of them are
// dead, so its few entries churn uselessly. The filtered variant admits
// only victims the predictor believes are live — evicted by capacity
// pressure rather than by the end of their use — concentrating the
// buffer's capacity on blocks with a future.
package victim

import (
	"sdbp/internal/cache"
	"sdbp/internal/cpu"
	"sdbp/internal/dbrb"
	"sdbp/internal/hier"
	"sdbp/internal/mem"
	"sdbp/internal/workloads"
)

// Cache is a small fully-associative LRU victim buffer.
type Cache struct {
	entries []uint64 // block addresses, MRU first
	size    int

	hits, inserts uint64
}

// NewCache returns a victim buffer holding size blocks.
func NewCache(size int) *Cache {
	if size < 1 {
		panic("victim: size must be positive")
	}
	return &Cache{size: size}
}

// Lookup probes the buffer; on a hit the entry is removed (the block
// moves back into the main cache).
func (v *Cache) Lookup(addr uint64) bool {
	b := mem.BlockAddr(addr)
	for i, e := range v.entries {
		if e == b {
			v.entries = append(v.entries[:i], v.entries[i+1:]...)
			v.hits++
			return true
		}
	}
	return false
}

// Insert adds a victim block, displacing the LRU entry when full.
func (v *Cache) Insert(addr uint64) {
	b := mem.BlockAddr(addr)
	for i, e := range v.entries {
		if e == b {
			v.entries = append(v.entries[:i], v.entries[i+1:]...)
			break
		}
	}
	if len(v.entries) >= v.size {
		v.entries = v.entries[:v.size-1]
	}
	v.entries = append([]uint64{b}, v.entries...)
	v.inserts++
}

// Hits returns the number of successful lookups.
func (v *Cache) Hits() uint64 { return v.hits }

// Inserts returns the number of insertions.
func (v *Cache) Inserts() uint64 { return v.inserts }

// Result reports one victim cache experiment run.
type Result struct {
	// Benchmark and Config identify the run.
	Benchmark, Config string
	// IPC is instructions per cycle.
	IPC float64
	// MPKI is misses (past both LLC and victim buffer) per
	// kilo-instruction.
	MPKI float64
	// VCHits and VCInserts are the victim buffer's counters.
	VCHits, VCInserts uint64
}

// HitsPerInsert returns the buffer's yield: hits per insertion.
func (r Result) HitsPerInsert() float64 {
	if r.VCInserts == 0 {
		return 0
	}
	return float64(r.VCHits) / float64(r.VCInserts)
}

// deadSnoop wraps a dead-block policy to expose whether each eviction's
// victim stood predicted dead at the moment it was evicted.
type deadSnoop struct {
	*dbrb.Policy
	lastWasDead bool
}

func (s *deadSnoop) OnEvict(set uint32, way int) {
	s.lastWasDead = s.Policy.IsDead(set, way)
	s.Policy.OnEvict(set, way)
}

// Run simulates a benchmark with a victim buffer of vcSize blocks next
// to the LLC. With filtered set, only victims the sampling predictor
// considers live enter the buffer; the LLC runs the same dead-block
// replacement and bypass policy either way, so the comparison isolates
// the filter.
func Run(w workloads.Workload, mk func() *dbrb.Policy, vcSize int, filtered bool, scale float64) Result {
	pol := mk()
	snoop := &deadSnoop{Policy: pol}
	llc := cache.New(hier.LLCConfig(1), snoop)
	core := hier.NewCore(hier.DefaultConfig(), llc)
	timing := cpu.New(cpu.DefaultConfig())
	vc := NewCache(vcSize)

	cfg := "unfiltered"
	if filtered {
		cfg = "dead-filtered"
	}
	res := Result{Benchmark: w.Name, Config: cfg}

	core.OnLLCEvict(func(evictedAddr uint64) {
		if !filtered || !snoop.lastWasDead {
			vc.Insert(evictedAddr)
		}
	})

	var misses, instructions uint64
	gen := w.Generator(scale)
	for {
		a, ok := gen.Next()
		if !ok {
			break
		}
		instructions += uint64(a.Gap) + 1
		before := llc.Stats().Misses
		level := core.Access(a)
		lat := level.Latency()
		if llc.Stats().Misses > before {
			// The LLC missed: probe the victim buffer. A hit costs a
			// little over an LLC hit instead of a memory access.
			if vc.Lookup(a.Addr) {
				lat = cpu.LatLLC + 4
			} else {
				misses++
			}
		}
		timing.Record(a.Gap, lat, a.DependentLoad)
	}

	res.IPC = timing.IPC()
	if instructions > 0 {
		res.MPKI = float64(misses) / (float64(instructions) / 1000)
	}
	res.VCHits = vc.Hits()
	res.VCInserts = vc.Inserts()
	return res
}
