package victim

import (
	"testing"

	"sdbp/internal/dbrb"
	"sdbp/internal/policy"
	"sdbp/internal/predictor"
	"sdbp/internal/workloads"
)

func TestCacheBasics(t *testing.T) {
	v := NewCache(2)
	if v.Lookup(0x1000) {
		t.Error("hit in an empty buffer")
	}
	v.Insert(0x1000)
	if !v.Lookup(0x1000) {
		t.Error("miss on a just-inserted block")
	}
	// Lookup removes the entry.
	if v.Lookup(0x1000) {
		t.Error("entry survived its hit")
	}
}

func TestCacheLRUDisplacement(t *testing.T) {
	v := NewCache(2)
	v.Insert(0x1000)
	v.Insert(0x2000)
	v.Insert(0x3000) // displaces 0x1000
	if v.Lookup(0x1000) {
		t.Error("LRU entry not displaced")
	}
	if !v.Lookup(0x2000) || !v.Lookup(0x3000) {
		t.Error("younger entries lost")
	}
}

func TestCacheDedup(t *testing.T) {
	v := NewCache(4)
	v.Insert(0x1000)
	v.Insert(0x1000)
	if !v.Lookup(0x1000) {
		t.Fatal("lost the block")
	}
	if v.Lookup(0x1000) {
		t.Error("duplicate entry for one block")
	}
}

func TestCacheBlockAlignment(t *testing.T) {
	v := NewCache(2)
	v.Insert(0x1008) // mid-block address
	if !v.Lookup(0x1000) {
		t.Error("block alignment not applied")
	}
}

func TestNewCachePanicsOnZero(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("no panic for zero-size buffer")
		}
	}()
	NewCache(0)
}

func TestFilteredBeatsUnfilteredYield(t *testing.T) {
	// leslie3d: a lagged stream whose leads are evicted live (the
	// victim buffer's best case) amid plenty of dead victims (the
	// filter's best case).
	w, err := workloads.ByName("437.leslie3d")
	if err != nil {
		t.Fatal(err)
	}
	mk := func() *dbrb.Policy {
		return dbrb.New(policy.NewLRU(), predictor.NewSampler(predictor.DefaultSamplerConfig()))
	}
	const scale, vcSize = 0.2, 64
	plain := Run(w, mk, vcSize, false, scale)
	filtered := Run(w, mk, vcSize, true, scale)

	// The filter must reduce insertions (dead victims skipped) without
	// hurting — and typically improving — the buffer's yield.
	if filtered.VCInserts >= plain.VCInserts {
		t.Errorf("filter did not reduce insertions: %d vs %d",
			filtered.VCInserts, plain.VCInserts)
	}
	if filtered.HitsPerInsert() < plain.HitsPerInsert() {
		t.Errorf("filtered yield %.4f below unfiltered %.4f",
			filtered.HitsPerInsert(), plain.HitsPerInsert())
	}
}

func TestRunReportsSaneMetrics(t *testing.T) {
	w, err := workloads.ByName("462.libquantum")
	if err != nil {
		t.Fatal(err)
	}
	mk := func() *dbrb.Policy {
		return dbrb.New(policy.NewLRU(), predictor.NewSampler(predictor.DefaultSamplerConfig()))
	}
	r := Run(w, mk, 32, true, 0.02)
	if r.IPC <= 0 || r.MPKI <= 0 {
		t.Errorf("result = %+v", r)
	}
	if r.Config != "dead-filtered" {
		t.Errorf("config label = %q", r.Config)
	}
}
