package power

import "math"

// Model computes leakage and dynamic power for hardware structures.
//
// CACTI 5.3 is substituted by a per-bit analytic model in a 45nm-class
// technology: leakage scales linearly with bit count (with an overhead
// factor for peripheral circuitry that is relatively larger for small
// arrays), and peak dynamic power scales with the bits activated per
// access — a whole row plus a bitline factor proportional to the square
// root of the array size, times the number of banks read concurrently.
// The two coefficients are calibrated so the paper's baseline 2MB
// 16-way LLC comes out at its Table II figures: 2.75W peak dynamic and
// 0.512W leakage.
type Model struct {
	// LeakWattsPerBit is the leakage per storage bit.
	LeakWattsPerBit float64
	// DynCoeff scales peak dynamic power with activated bits.
	DynCoeff float64
}

// DefaultModel returns the calibrated model.
func DefaultModel() Model {
	// The 2MB LLC data+tag array is ~17.3M bits leaking 0.512W total.
	llcBits := float64(llcDataBits + llcTagBits)
	return Model{
		LeakWattsPerBit: 0.512 / llcBits,
		DynCoeff:        2.75 / llcDynActivation(),
	}
}

// The paper's baseline LLC geometry: 2MB data, 32K blocks, 16 ways,
// 2,048 sets, 64B lines, ~26-bit tags plus valid/dirty/LRU state.
const (
	llcBlocks   = 32768
	llcWays     = 16
	llcSets     = 2048
	llcLineBits = 64 * 8
	llcTagEntry = 26 + 2 + 4 // tag + valid/dirty + LRU
	llcDataBits = llcBlocks * llcLineBits
	llcTagBits  = llcBlocks * llcTagEntry
)

// activation returns the bits activated by one access to an array of
// the given geometry: the row read plus a bitline/precharge term that
// grows with the square root of total capacity.
func activation(rowBits, totalBits float64, banks int) float64 {
	if banks < 1 {
		banks = 1
	}
	return float64(banks) * (rowBits + 8*math.Sqrt(totalBits))
}

// llcDynActivation is the activation cost of one LLC access: all ways'
// tags are searched and one way's line is read.
func llcDynActivation() float64 {
	tagRow := float64(llcWays * llcTagEntry)
	return activation(tagRow, llcTagBits, 1) +
		activation(llcLineBits, llcDataBits, 1)
}

// Leakage returns a structure's leakage power in watts. Small arrays
// pay proportionally more peripheral overhead; cache metadata rides the
// LLC's existing peripherals so it pays none.
func (m Model) Leakage(s Structure) float64 {
	bits := float64(s.Bits())
	overhead := 1.0
	switch s.Kind {
	case TagArray:
		overhead = 1.6 // comparators and match logic
	case TaglessRAM:
		overhead = 1.2
	case CacheMetadata:
		overhead = 1.0
	}
	return m.LeakWattsPerBit * bits * overhead
}

// Dynamic returns a structure's peak dynamic power in watts when it is
// accessed every cycle.
func (m Model) Dynamic(s Structure) float64 {
	banks := s.Banks
	if banks < 1 {
		banks = 1
	}
	var act float64
	switch s.Kind {
	case TagArray:
		// All entries of one set are searched associatively; treat the
		// row as one set's worth of entries (approximated as the row
		// width times a small associative search factor).
		act = activation(float64(s.BitsPerEntry)*12, float64(s.Bits()), 1) * 1.5
	case TaglessRAM:
		perBank := float64(s.Bits()) / float64(banks)
		act = activation(float64(s.BitsPerEntry), perBank, banks)
	case CacheMetadata:
		// Extra bits in the LLC arrays: read/modify/write per access.
		bitsPerLine := float64(s.BitsPerEntry)
		act = 2 * activation(bitsPerLine, float64(s.Bits()), 1)
	}
	return m.DynCoeff * act
}

// Report is the power breakdown of one predictor (a Table II row).
type Report struct {
	// Name labels the predictor.
	Name string
	// PredictorLeakage and PredictorDynamic cover the prediction
	// structures (tables, sampler).
	PredictorLeakage, PredictorDynamic float64
	// MetadataLeakage and MetadataDynamic cover extra per-line cache
	// metadata.
	MetadataLeakage, MetadataDynamic float64
}

// TotalLeakage returns the predictor's total leakage power.
func (r Report) TotalLeakage() float64 { return r.PredictorLeakage + r.MetadataLeakage }

// TotalDynamic returns the predictor's total peak dynamic power.
func (r Report) TotalDynamic() float64 { return r.PredictorDynamic + r.MetadataDynamic }

// Evaluate produces a predictor's power report from its structures.
func (m Model) Evaluate(name string, structures []Structure) Report {
	rep := Report{Name: name}
	for _, s := range structures {
		if s.Kind == CacheMetadata {
			rep.MetadataLeakage += m.Leakage(s)
			rep.MetadataDynamic += m.Dynamic(s)
		} else {
			rep.PredictorLeakage += m.Leakage(s)
			rep.PredictorDynamic += m.Dynamic(s)
		}
	}
	return rep
}

// BaselineLLC returns the paper's baseline LLC power (Table II's point
// of comparison): 2.75W peak dynamic, 0.512W leakage by calibration.
func (m Model) BaselineLLC() (leakage, dynamic float64) {
	return m.LeakWattsPerBit * float64(llcDataBits+llcTagBits),
		m.DynCoeff * llcDynActivation()
}
