// Package power models the storage and power cost of the predictor
// hardware structures, reproducing the paper's Table I (storage
// overhead) and Table II (CACTI 5.3 dynamic and leakage power).
//
// CACTI itself is substituted by an analytic model: per-bit leakage and
// per-access dynamic energy coefficients, differentiated by structure
// type (associative tag array vs. tagless RAM vs. cache-metadata bits),
// calibrated so that the paper's baseline 2MB LLC comes out at 2.75W
// dynamic and 0.512W leakage. Relative component figures are then
// directly comparable to the paper's.
package power

// StructureKind classifies a hardware structure for the power model.
type StructureKind int

const (
	// TaglessRAM is a directly indexed SRAM (prediction tables).
	TaglessRAM StructureKind = iota
	// TagArray is an associative tag array searched on access (the
	// sampler, or a cache's tag store).
	TagArray
	// CacheMetadata is extra per-line bits carried in a cache's data
	// array (signatures, counters, dead bits). Its power is the delta
	// between the cache modeled with and without the bits.
	CacheMetadata
)

// Structure describes one hardware structure's geometry.
type Structure struct {
	// Name labels the structure in reports.
	Name string
	// Kind selects the power coefficients.
	Kind StructureKind
	// Entries is the number of rows.
	Entries int
	// BitsPerEntry is the width of each row in bits.
	BitsPerEntry int
	// Banks is the number of banks accessed simultaneously (the skewed
	// predictor reads three banks per prediction). Zero means one.
	Banks int
}

// Bits returns the structure's total storage in bits.
func (s Structure) Bits() int { return s.Entries * s.BitsPerEntry }

// Bytes returns the structure's total storage in bytes (rounded up).
func (s Structure) Bytes() float64 { return float64(s.Bits()) / 8 }

// KB returns the structure's total storage in kilobytes (2^10 bytes).
func (s Structure) KB() float64 { return s.Bytes() / 1024 }

// TotalKB sums the storage of a set of structures in kilobytes.
func TotalKB(ss []Structure) float64 {
	var kb float64
	for _, s := range ss {
		kb += s.KB()
	}
	return kb
}
