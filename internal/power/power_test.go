package power

import (
	"math"
	"testing"
)

func TestStructureArithmetic(t *testing.T) {
	s := Structure{Name: "t", Kind: TaglessRAM, Entries: 4096, BitsPerEntry: 2}
	if s.Bits() != 8192 {
		t.Errorf("Bits = %d", s.Bits())
	}
	if s.KB() != 1 {
		t.Errorf("KB = %v", s.KB())
	}
}

func TestTotalKB(t *testing.T) {
	ss := []Structure{
		{Entries: 4096, BitsPerEntry: 2},
		{Entries: 4096, BitsPerEntry: 2},
	}
	if got := TotalKB(ss); got != 2 {
		t.Errorf("TotalKB = %v", got)
	}
}

func TestModelCalibration(t *testing.T) {
	m := DefaultModel()
	leak, dyn := m.BaselineLLC()
	if math.Abs(leak-0.512) > 1e-9 {
		t.Errorf("baseline leakage = %v, want 0.512", leak)
	}
	if math.Abs(dyn-2.75) > 1e-9 {
		t.Errorf("baseline dynamic = %v, want 2.75", dyn)
	}
}

func TestLeakageScalesWithBits(t *testing.T) {
	m := DefaultModel()
	small := Structure{Kind: TaglessRAM, Entries: 1024, BitsPerEntry: 2}
	big := Structure{Kind: TaglessRAM, Entries: 4096, BitsPerEntry: 2}
	if m.Leakage(big) != 4*m.Leakage(small) {
		t.Error("leakage not linear in bits")
	}
}

func TestDynamicGrowsWithSize(t *testing.T) {
	m := DefaultModel()
	small := Structure{Kind: TaglessRAM, Entries: 1024, BitsPerEntry: 2}
	big := Structure{Kind: TaglessRAM, Entries: 65536, BitsPerEntry: 2}
	if m.Dynamic(big) <= m.Dynamic(small) {
		t.Error("dynamic power not increasing with array size")
	}
}

func TestEvaluateSplitsMetadata(t *testing.T) {
	m := DefaultModel()
	rep := m.Evaluate("x", []Structure{
		{Kind: TaglessRAM, Entries: 1024, BitsPerEntry: 2},
		{Kind: CacheMetadata, Entries: 32768, BitsPerEntry: 1},
	})
	if rep.PredictorLeakage <= 0 || rep.MetadataLeakage <= 0 {
		t.Error("missing component leakage")
	}
	if rep.TotalLeakage() != rep.PredictorLeakage+rep.MetadataLeakage {
		t.Error("total leakage mismatch")
	}
	if rep.TotalDynamic() != rep.PredictorDynamic+rep.MetadataDynamic {
		t.Error("total dynamic mismatch")
	}
}

func TestPaperPowerOrderings(t *testing.T) {
	// The paper's qualitative power claims: the sampler leaks less than
	// the reftrace predictor, which leaks less than the counting
	// predictor; same ordering for dynamic power; and the sampler's
	// leakage is a small fraction of the LLC's.
	m := DefaultModel()
	mk := func(pred, metaBits int, predEntries int) Report {
		return m.Evaluate("x", []Structure{
			{Kind: TaglessRAM, Entries: predEntries, BitsPerEntry: pred},
			{Kind: CacheMetadata, Entries: 32768, BitsPerEntry: metaBits},
		})
	}
	reftrace := mk(2, 16, 1<<15)
	counting := mk(5, 17, 1<<16)
	sampler := m.Evaluate("s", []Structure{
		{Kind: TaglessRAM, Entries: 3 * 4096, BitsPerEntry: 2, Banks: 3},
		{Kind: TagArray, Entries: 384, BitsPerEntry: 36},
		{Kind: CacheMetadata, Entries: 32768, BitsPerEntry: 1},
	})
	if !(sampler.TotalLeakage() < reftrace.TotalLeakage() &&
		reftrace.TotalLeakage() < counting.TotalLeakage()) {
		t.Errorf("leakage ordering violated: s=%v r=%v c=%v",
			sampler.TotalLeakage(), reftrace.TotalLeakage(), counting.TotalLeakage())
	}
	if !(sampler.TotalDynamic() < reftrace.TotalDynamic() &&
		reftrace.TotalDynamic() < counting.TotalDynamic()) {
		t.Errorf("dynamic ordering violated: s=%v r=%v c=%v",
			sampler.TotalDynamic(), reftrace.TotalDynamic(), counting.TotalDynamic())
	}
	baseLeak, _ := m.BaselineLLC()
	if frac := sampler.TotalLeakage() / baseLeak; frac > 0.05 {
		t.Errorf("sampler leakage fraction = %.3f, want small", frac)
	}
}
