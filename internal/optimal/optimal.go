// Package optimal implements Belady's MIN replacement policy enhanced
// with an optimal bypass rule (paper Section VI-B): on a miss in a full
// set, if the incoming block's next access lies further in the future
// than the next accesses of all blocks currently in the set, the block
// is not placed at all.
//
// MIN needs future knowledge, so it runs trace-based over a captured
// LLC access stream rather than as a cache.Policy. The L2-miss stream is
// independent of LLC policy, so one captured stream serves as the exact
// reference sequence the paper's methodology prescribes ("the same
// sequence of memory accesses made by the out-of-order simulator").
package optimal

import (
	"sdbp/internal/mem"
)

// infinity marks an access with no future reuse.
const infinity = int(^uint(0) >> 1)

// Result reports MIN's outcome over a stream.
type Result struct {
	// Accesses is the stream length.
	Accesses uint64
	// Misses is the optimal miss count (bypassed misses included).
	Misses uint64
	// Bypasses is how many misses the optimal bypass rule declined to
	// place.
	Bypasses uint64
}

// resident is one cached block under MIN.
type resident struct {
	block   uint64
	nextUse int
}

// Simulate runs MIN-with-bypass over an LLC access stream for a cache
// of the given geometry (sets must be a power of two).
func Simulate(stream []mem.Access, sets, ways int) Result {
	if !mem.IsPow2(sets) || ways < 1 {
		panic("optimal: invalid geometry")
	}

	// Backward pass: nextUse[i] = index of the next access to the same
	// block, or infinity.
	nextUse := make([]int, len(stream))
	last := make(map[uint64]int, 1<<16)
	for i := len(stream) - 1; i >= 0; i-- {
		b := mem.BlockNumber(stream[i].Addr)
		if j, ok := last[b]; ok {
			nextUse[i] = j
		} else {
			nextUse[i] = infinity
		}
		last[b] = i
	}

	content := make([][]resident, sets)
	for s := range content {
		content[s] = make([]resident, 0, ways)
	}

	var res Result
	for i, a := range stream {
		res.Accesses++
		b := mem.BlockNumber(a.Addr)
		s := mem.SetIndex(a.Addr, sets)
		set := content[s]

		hit := false
		for w := range set {
			if set[w].block == b {
				set[w].nextUse = nextUse[i]
				hit = true
				break
			}
		}
		if hit {
			continue
		}
		res.Misses++

		if len(set) < ways {
			content[s] = append(set, resident{block: b, nextUse: nextUse[i]})
			continue
		}

		// Full set: find the resident reused furthest in the future.
		victim, worst := -1, -1
		for w := range set {
			if set[w].nextUse > worst {
				victim, worst = w, set[w].nextUse
			}
		}
		if nextUse[i] > worst || (nextUse[i] == infinity && worst == infinity) {
			// The incoming block is reused no sooner than every
			// resident: optimal bypass.
			res.Bypasses++
			continue
		}
		set[victim] = resident{block: b, nextUse: nextUse[i]}
	}
	return res
}
