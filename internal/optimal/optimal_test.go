package optimal

import (
	"testing"
	"testing/quick"

	"sdbp/internal/cache"
	"sdbp/internal/mem"
	"sdbp/internal/policy"
)

func accesses(blocks ...int) []mem.Access {
	out := make([]mem.Access, len(blocks))
	for i, b := range blocks {
		out[i] = mem.Access{Addr: uint64(b) * mem.BlockSize}
	}
	return out
}

func TestMINKnownSmallTrace(t *testing.T) {
	// 1 set x 2 ways; blocks 0,1,2 all map to set 0 (1 set).
	// Trace: 0 1 2 0 1 — MIN evicts/bypasses 2 (reused never), so
	// misses are 0,1,2 only.
	r := Simulate(accesses(0, 1, 2, 0, 1), 1, 2)
	if r.Misses != 3 {
		t.Errorf("misses = %d, want 3", r.Misses)
	}
}

func TestMINHitCounting(t *testing.T) {
	r := Simulate(accesses(0, 0, 0, 0), 1, 1)
	if r.Misses != 1 || r.Accesses != 4 {
		t.Errorf("misses = %d accesses = %d", r.Misses, r.Accesses)
	}
}

func TestBypassRefusesDeadOnArrival(t *testing.T) {
	// Trace: 0 1 2 0 1 0 1 with 2 ways: block 2 is never reused; MIN
	// with bypass never places it, so 0 and 1 stay resident.
	r := Simulate(accesses(0, 1, 2, 0, 1, 0, 1), 1, 2)
	if r.Misses != 3 {
		t.Errorf("misses = %d, want 3", r.Misses)
	}
	if r.Bypasses != 1 {
		t.Errorf("bypasses = %d, want 1", r.Bypasses)
	}
}

func TestBypassBeatsPlainMIN(t *testing.T) {
	// Alternate a reused pair with one-shot blocks. Plain MIN would
	// also keep the pair, but the bypass rule must not increase misses.
	var tr []mem.Access
	oneShot := 100
	for i := 0; i < 50; i++ {
		tr = append(tr, accesses(0, 1, oneShot)...)
		oneShot++
	}
	r := Simulate(tr, 1, 2)
	// Misses: 0 and 1 once, each one-shot once.
	if want := uint64(2 + 50); r.Misses != want {
		t.Errorf("misses = %d, want %d", r.Misses, want)
	}
}

func TestMINNeverWorseThanLRU(t *testing.T) {
	// Property: on random traces MIN-with-bypass never misses more
	// than an LRU cache of the same geometry.
	f := func(seed uint64, n uint16) bool {
		r := mem.NewRand(seed)
		count := int(n)%2000 + 100
		tr := make([]mem.Access, count)
		for i := range tr {
			tr[i] = mem.Access{Addr: uint64(r.Intn(64)) * mem.BlockSize}
		}
		const sets, ways = 4, 4
		min := Simulate(tr, sets, ways)
		c := cache.New(cache.Config{Name: "lru", SizeBytes: sets * ways * mem.BlockSize, Ways: ways}, policy.NewLRU())
		for _, a := range tr {
			c.Access(a)
		}
		return min.Misses <= c.Stats().Misses
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func TestMINNeverWorseThanRandom(t *testing.T) {
	f := func(seed uint64) bool {
		r := mem.NewRand(seed)
		tr := make([]mem.Access, 1500)
		for i := range tr {
			tr[i] = mem.Access{Addr: uint64(r.Intn(96)) * mem.BlockSize}
		}
		const sets, ways = 4, 4
		min := Simulate(tr, sets, ways)
		c := cache.New(cache.Config{Name: "rnd", SizeBytes: sets * ways * mem.BlockSize, Ways: ways}, policy.NewRandom(seed))
		for _, a := range tr {
			c.Access(a)
		}
		return min.Misses <= c.Stats().Misses
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

func TestMINColdMissesAreCompulsory(t *testing.T) {
	// Every distinct block must miss at least once: misses >= distinct.
	f := func(seed uint64) bool {
		r := mem.NewRand(seed)
		tr := make([]mem.Access, 500)
		distinct := map[uint64]bool{}
		for i := range tr {
			b := uint64(r.Intn(300))
			tr[i] = mem.Access{Addr: b * mem.BlockSize}
			distinct[b] = true
		}
		res := Simulate(tr, 8, 2)
		return res.Misses >= uint64(len(distinct))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestSimulatePanicsOnBadGeometry(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("no panic on non-power-of-two sets")
		}
	}()
	Simulate(nil, 3, 4)
}

func TestMINEmptyTrace(t *testing.T) {
	r := Simulate(nil, 4, 4)
	if r.Accesses != 0 || r.Misses != 0 {
		t.Errorf("empty trace produced %+v", r)
	}
}
