package exp

import (
	"testing"

	"sdbp/internal/cache"
	"sdbp/internal/dbrb"
	"sdbp/internal/policy"
	"sdbp/internal/predictor"
	"sdbp/internal/sim"
	"sdbp/internal/workloads"
)

// TestEveryPresetConstructs is the registry round-trip suite: every
// preset name, CLI alias, and Figure 6 ablation variant resolves, its
// factory builds instances for 1 and 4 threads, and its canonical
// expression re-resolves to the same canonical form.
func TestEveryPresetConstructs(t *testing.T) {
	var names []string
	names = append(names, PresetNames()...)
	names = append(names, AblationVariantNames()...)
	for alias := range presetAliases {
		names = append(names, alias)
	}
	for _, name := range names {
		p, err := ResolvePolicy(name)
		if err != nil {
			t.Errorf("%q: %v", name, err)
			continue
		}
		if p.Make(1) == nil || p.Make(4) == nil {
			t.Errorf("%q: factory built nil policy", name)
		}
		again, err := ResolvePolicy(p.Expr)
		if err != nil {
			t.Errorf("%q: canonical expr %q does not re-resolve: %v", name, p.Expr, err)
			continue
		}
		if again.Expr != p.Expr {
			t.Errorf("%q: expr %q re-resolved to %q", name, p.Expr, again.Expr)
		}
	}
}

// TestEveryRegisteredNameConstructs builds each bare policy and
// predictor expression name with its defaults.
func TestEveryRegisteredNameConstructs(t *testing.T) {
	for _, name := range PolicyNames() {
		p, err := NewPolicy(name, 1)
		if err != nil {
			t.Errorf("policy %q: %v", name, err)
		} else if p == nil {
			t.Errorf("policy %q: nil instance", name)
		}
	}
	for _, name := range PredictorNames() {
		p, err := NewPredictor(name)
		if err != nil {
			t.Errorf("predictor %q: %v", name, err)
		} else if p == nil {
			t.Errorf("predictor %q: nil instance", name)
		}
	}
}

// TestPaperSeedConstants pins the paper-default seeds the registry
// feeds the seeded policies.
func TestPaperSeedConstants(t *testing.T) {
	if RandomSeed != 1 || DIPSeed != 2 || TADIPSeed != 3 || DRRIPSeed != 4 {
		t.Errorf("seed constants changed: random=%d dip=%d tadip=%d drrip=%d",
			RandomSeed, DIPSeed, TADIPSeed, DRRIPSeed)
	}
}

func TestExprCanonicalRoundTrip(t *testing.T) {
	for _, s := range []string{
		"lru",
		"random(seed=7)",
		"dbrb(base=lru,pred=sampler)",
		"dbrb(base=random(seed=9),pred=sampler(sets=64,threshold=6))",
		"dueling(base=plru,pred=counting)",
		"sampler(sampling=false,tables=1)",
	} {
		e, err := ParseExpr(s)
		if err != nil {
			t.Fatalf("%q: %v", s, err)
		}
		if e.String() != s {
			t.Errorf("canonical %q != input %q", e.String(), s)
		}
		again, err := ParseExpr(e.String())
		if err != nil || again.String() != e.String() {
			t.Errorf("%q does not re-parse identically (%v)", e.String(), err)
		}
	}
}

// TestSamplerExprInvertsConfigs checks SamplerExpr against every
// Figure 6 ablation configuration: parsing the rendered expression
// recovers the same effective configuration.
func TestSamplerExprInvertsConfigs(t *testing.T) {
	for name, cfg := range predictor.AblationConfigs() {
		expr := SamplerExpr(cfg)
		e, err := ParseExpr(expr)
		if err != nil {
			t.Errorf("%s: %q: %v", name, expr, err)
			continue
		}
		got, err := samplerConfig(e)
		if err != nil {
			t.Errorf("%s: %q: %v", name, expr, err)
			continue
		}
		if got.UseSampler != cfg.UseSampler || got.Tables != cfg.Tables ||
			got.TableEntries != cfg.TableEntries || got.Threshold != cfg.Threshold {
			t.Errorf("%s: %q round-tripped to %+v, want %+v", name, expr, got, cfg)
		}
		// Sampler geometry matters only when the sampler is on.
		if cfg.UseSampler && (got.SamplerSets != cfg.SamplerSets || got.SamplerAssoc != cfg.SamplerAssoc) {
			t.Errorf("%s: %q geometry %dx%d, want %dx%d", name, expr,
				got.SamplerSets, got.SamplerAssoc, cfg.SamplerSets, cfg.SamplerAssoc)
		}
	}
}

// TestResolveErrorsNotPanics feeds the resolver malformed input; every
// case must return an error, never panic.
func TestResolveErrorsNotPanics(t *testing.T) {
	for _, s := range []string{
		"",
		"nosuchpolicy",
		"lru(seed=1)",                          // lru takes no args
		"random(seed=x)",                       // non-numeric
		"random(seed=1,seed=2)",                // duplicate key
		"random(seed=1)x",                      // trailing input
		"dbrb(pred=nosuchpred)",                // unknown predictor
		"dbrb(base=lru,pred=sampler(sets=3))",  // non-pow2 sampler sets
		"dbrb(base=lru,pred=sampler(bogus=1))", // unknown parameter
		"sampler",                              // predictor, not a policy
		"dbrb(base=lru,pred=sampler(entries=3))",
		"ship(sigbits=99)",                    // signature wider than hash
		"ship(max=0)",                         // counter cannot saturate
		"ship(init=8)",                        // init above max (default 7)
		"ship(train=sometimes)",               // unknown training mode
		"ship(samples=3)",                     // non-pow2 sampled sets
		"ship(bogus=1)",                       // unknown parameter
		"duel(psel=0)",                        // PSEL needs at least one bit
		"duel(psel=31)",                       // PSEL wider than int-safe
		"duel(leaders=0)",                     // no leader sets to duel
		"duel(force=maybe)",                   // unknown force token
		"duel(a=sampler)",                     // predictor on a policy side
		"dbrb(base=lru,pred=skewed(tags=16))", // tag wider than storage
		"dbrb(base=lru,pred=skewed(entries=3))",
		"dbrb(base=lru,pred=skewed(sets=3))", // non-pow2 sampler sets
		"dbrb(base=lru,pred=reuse(threshold=0))",
		"dbrb(base=lru,pred=reuse(threshold=99))", // above 3*tables
		"dbrb(base=lru,pred=never(x=1))",          // never takes no args
	} {
		if _, err := ResolvePolicy(s); err == nil {
			t.Errorf("ResolvePolicy(%q) accepted", s)
		}
	}
	if _, err := NewPredictor("lru"); err == nil {
		t.Error("NewPredictor accepted a policy name")
	}
}

func TestGeometry(t *testing.T) {
	cfg, err := Geometry("llc(mb=4)")
	if err != nil || cfg.SizeBytes != 4<<20 || cfg.Ways != 16 {
		t.Errorf("llc(mb=4) = %+v, %v", cfg, err)
	}
	cfg, err = Geometry("llc(kb=512,ways=8)")
	if err != nil || cfg.SizeBytes != 512<<10 || cfg.Ways != 8 {
		t.Errorf("llc(kb=512,ways=8) = %+v, %v", cfg, err)
	}
	for _, s := range []string{
		"llc",               // neither mb nor kb
		"llc(mb=1,kb=1)",    // both
		"llc(mb=3,ways=16)", // 3MB/16w -> non-pow2 sets
		"llc(mb=1,ways=0)",  // bad ways
		"l2(mb=1)",          // unknown geometry
		"llc(mb=1,bogus=2)", // unknown parameter
	} {
		if _, err := Geometry(s); err == nil {
			t.Errorf("Geometry(%q) accepted", s)
		}
	}
}

func TestDBRBFactory(t *testing.T) {
	mk, err := DBRBFactory("Sampler")
	if err != nil || mk() == nil {
		t.Fatalf("DBRBFactory(Sampler) = %v", err)
	}
	if _, err := DBRBFactory("LRU"); err == nil {
		t.Error("DBRBFactory accepted a non-dbrb preset")
	}
	if _, err := DBRBFactory("dueling(base=lru,pred=sampler)"); err == nil {
		t.Error("DBRBFactory accepted a dueling root")
	}
}

// TestRegistryMatchesHandBuilt proves the refactor is behavior
// preserving at the simulation level: a registry-built policy produces
// bit-identical results to the same policy constructed by hand.
func TestRegistryMatchesHandBuilt(t *testing.T) {
	w, err := workloads.ByName("456.hmmer")
	if err != nil {
		t.Fatal(err)
	}
	opts := sim.SingleOptions{Scale: 0.02}
	for _, c := range []struct {
		name string
		hand func() cache.Policy
	}{
		{"Sampler", func() cache.Policy {
			return dbrb.New(policy.NewLRU(), predictor.NewSampler(predictor.DefaultSamplerConfig()))
		}},
		{"Random CDBP", func() cache.Policy {
			return dbrb.New(policy.NewRandom(RandomSeed), predictor.NewCounting())
		}},
		{"RRIP", func() cache.Policy { return policy.NewDRRIP(1, DRRIPSeed) }},
		{"DIP", func() cache.Policy { return policy.NewDIP(DIPSeed) }},
	} {
		reg := sim.RunSingle(w, MustResolvePolicy(c.name).Make(1), opts)
		hand := sim.RunSingle(w, c.hand(), opts)
		if reg.MPKI != hand.MPKI || reg.IPC != hand.IPC || reg.LLC.Misses != hand.LLC.Misses {
			t.Errorf("%s: registry (MPKI %v, IPC %v) != hand-built (MPKI %v, IPC %v)",
				c.name, reg.MPKI, reg.IPC, hand.MPKI, hand.IPC)
		}
	}
}
