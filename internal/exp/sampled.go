package exp

// Sampled execution for declarative specs: the pilot run (full
// simulation with interval telemetry), interval selection and window
// materialization are cached per workload/scale/geometry/selector
// configuration, so a campaign that sweeps N policies over the same
// workloads pays the pilot and the generation pass once and replays
// the materialized windows N times. That amortization is what makes
// sampled sdbpd jobs cheap: the replay simulates ~a tenth of the
// stream per policy.

import (
	"fmt"
	"sync"

	"sdbp/internal/cache"
	"sdbp/internal/sampling"
	"sdbp/internal/sim"
	"sdbp/internal/workloads"
)

// DefaultSampleInterval is the pilot telemetry granularity, in retired
// instructions, when a sampled spec does not set sample_interval.
const DefaultSampleInterval = 50_000

// PilotPolicy is the policy sampled pilots run under: the paper's
// sampling dead block predictor, so the dead-prediction feature
// dimensions of the interval vectors are populated. The plan replays
// against any policy afterwards.
const PilotPolicy = "Sampler"

// sampledEntry is one cached pilot: the selected plan and the
// materialized warm-up/measure windows. Entries are created under the
// cache lock but filled inside their own once, so concurrent requests
// for the same key share a single pilot run. The materialized windows
// are replayed read-only.
type sampledEntry struct {
	once sync.Once
	plan sampling.Plan
	mat  *sim.Materialized
	err  error
}

var (
	sampledMu    sync.Mutex
	sampledCache = map[string]*sampledEntry{}
	pilotRuns    int // behind sampledMu; tests assert amortization
)

// sampledKey identifies a pilot: everything that shapes the plan and
// the windows. The target policy is deliberately absent — that is the
// amortization.
func sampledKey(w workloads.Workload, scale float64, llc cache.Config, interval uint64, cfg sampling.Config) string {
	return fmt.Sprintf("%s|%g|%d/%d|%d|%d|%g|%g",
		w.Name, scale, llc.SizeBytes, llc.Ways, interval,
		cfg.Clusters, cfg.WarmupFrac, cfg.BiasRel)
}

// sampledPlan returns the cached (or freshly piloted) plan and windows
// for one workload under the resolved spec's sampling knobs.
func (r *Resolved) sampledPlan(w workloads.Workload) (*sampling.Plan, *sim.Materialized, error) {
	llc := r.LLCFor(r.Cores)
	key := sampledKey(w, r.Scale, llc, r.SampleInterval, r.SampleConfig)
	sampledMu.Lock()
	e, ok := sampledCache[key]
	if !ok {
		e = &sampledEntry{}
		sampledCache[key] = e
	}
	sampledMu.Unlock()
	e.once.Do(func() {
		sampledMu.Lock()
		pilotRuns++
		sampledMu.Unlock()
		pilot := MustResolvePolicy(PilotPolicy)
		opts := sim.SingleOptions{Scale: r.Scale, LLC: llc}
		plan, err := sim.SelectPlan(w, pilot.Make(r.Cores), opts, r.SampleInterval, r.SampleConfig)
		if err != nil {
			e.err = err
			return
		}
		mat, err := sim.MaterializeSampled(w, &plan, r.Scale)
		if err != nil {
			e.err = err
			return
		}
		e.plan, e.mat = plan, mat
	})
	if e.err != nil {
		return nil, nil, e.err
	}
	return &e.plan, e.mat, nil
}

// RunBenchSampled runs one of the spec's workloads in sampled mode:
// pilot + selection + materialization (cached across policies and
// calls), then a warm-up/measure replay under the spec's policy. The
// returned plan is the cached selection the estimate was built from.
func (r *Resolved) RunBenchSampled(w workloads.Workload) (sim.SampledResult, *sampling.Plan, error) {
	if !r.Sampled {
		return sim.SampledResult{}, nil, fmt.Errorf("exp: spec did not request sampled simulation")
	}
	plan, mat, err := r.sampledPlan(w)
	if err != nil {
		return sim.SampledResult{}, nil, err
	}
	opts := sim.SingleOptions{Scale: r.Scale, LLC: r.LLCFor(r.Cores)}
	res, err := sim.RunSampledTrace(mat, r.Policy.Make(r.Cores), opts)
	if err != nil {
		return sim.SampledResult{}, nil, err
	}
	return res, plan, nil
}

// ResetSampledCache drops every cached pilot (tests and long-running
// services that change workload definitions; production sdbpd keeps
// the cache for the process lifetime).
func ResetSampledCache() {
	sampledMu.Lock()
	defer sampledMu.Unlock()
	sampledCache = map[string]*sampledEntry{}
	pilotRuns = 0
}

// SampledPilotRuns reports how many pilot simulations have run since
// the last reset — the amortization observability hook.
func SampledPilotRuns() int {
	sampledMu.Lock()
	defer sampledMu.Unlock()
	return pilotRuns
}
