package exp

import "testing"

// FuzzParseSpec pins the spec and expression parsers against panics on
// arbitrary input, and checks the round-trip property on anything they
// accept: parse → render → parse must be a fixed point.
func FuzzParseSpec(f *testing.F) {
	f.Add("policy=Sampler;workloads=subset")
	f.Add("policy=dbrb(base=random(seed=9),pred=sampler(sets=64));mixes=all;cores=4;llc=llc(kb=512,ways=8);scale=0.1")
	f.Add("policy==;;=")
	f.Add("workloads=,,,")
	f.Add("policy=lru;scale=1e309")
	f.Add("(((")
	f.Fuzz(func(t *testing.T, s string) {
		if spec, err := ParseSpec(s); err == nil {
			text := spec.String()
			again, err := ParseSpec(text)
			if err != nil {
				t.Fatalf("rendered spec %q does not re-parse: %v", text, err)
			}
			if again.String() != text {
				t.Fatalf("spec render not a fixed point: %q -> %q", text, again.String())
			}
		}
		if e, err := ParseExpr(s); err == nil {
			canon := e.String()
			again, err := ParseExpr(canon)
			if err != nil {
				t.Fatalf("canonical expr %q does not re-parse: %v", canon, err)
			}
			if again.String() != canon {
				t.Fatalf("expr render not a fixed point: %q -> %q", canon, again.String())
			}
		}
	})
}
