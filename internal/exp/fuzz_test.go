package exp

import "testing"

// FuzzParseSpec pins the spec and expression parsers against panics on
// arbitrary input, and checks the round-trip property on anything they
// accept: parse → render → parse must be a fixed point.
func FuzzParseSpec(f *testing.F) {
	f.Add("policy=Sampler;workloads=subset")
	f.Add("policy=dbrb(base=random(seed=9),pred=sampler(sets=64));mixes=all;cores=4;llc=llc(kb=512,ways=8);scale=0.1")
	f.Add("policy==;;=")
	f.Add("workloads=,,,")
	f.Add("policy=lru;scale=1e309")
	f.Add("(((")
	f.Fuzz(func(t *testing.T, s string) {
		if spec, err := ParseSpec(s); err == nil {
			text := spec.String()
			again, err := ParseSpec(text)
			if err != nil {
				t.Fatalf("rendered spec %q does not re-parse: %v", text, err)
			}
			if again.String() != text {
				t.Fatalf("spec render not a fixed point: %q -> %q", text, again.String())
			}
		}
		if e, err := ParseExpr(s); err == nil {
			canon := e.String()
			again, err := ParseExpr(canon)
			if err != nil {
				t.Fatalf("canonical expr %q does not re-parse: %v", canon, err)
			}
			if again.String() != canon {
				t.Fatalf("expr render not a fixed point: %q -> %q", canon, again.String())
			}
		}
	})
}

// FuzzParsePolicyExpr pins the full resolver — parse plus every
// builder's knob validation — against panics. The seed corpus walks
// the policy zoo's knob space: table counts, signature and PSEL widths,
// training modes, nested duel sides. Anything the resolver accepts must
// have a canonical rendering that resolves again.
func FuzzParsePolicyExpr(f *testing.F) {
	f.Add("ship")
	f.Add("ship(sigbits=14,max=7,init=0,samples=64,train=sampled)")
	f.Add("ship(train=off,init=7)")
	f.Add("ship(sigbits=99)")
	f.Add("ship(train=sometimes)")
	f.Add("dbrb(base=lru,pred=skewed(sets=32,assoc=12,tables=3,entries=4096,tags=8,threshold=8))")
	f.Add("dbrb(base=lru,pred=skewed(tags=16))")
	f.Add("dbrb(base=lru,pred=skewed(entries=3))")
	f.Add("dbrb(base=srrip,pred=never)")
	f.Add("dbrb(base=lru,pred=reuse(tables=3,entries=4096,threshold=8))")
	f.Add("dbrb(base=lru,pred=reuse(threshold=0))")
	f.Add("duel(a=lru,b=dbrb(base=lru,pred=reuse),leaders=32,psel=10)")
	f.Add("duel(force=a)")
	f.Add("duel(force=maybe)")
	f.Add("duel(psel=0)")
	f.Add("duel(a=duel(a=lru,b=nru),b=ship)")
	f.Add("Improved DBP")
	f.Fuzz(func(t *testing.T, s string) {
		p, err := ResolvePolicy(s)
		if err != nil {
			return
		}
		again, err := ResolvePolicy(p.Expr)
		if err != nil {
			t.Fatalf("accepted %q but canonical expr %q does not resolve: %v", s, p.Expr, err)
		}
		if again.Expr != p.Expr {
			t.Fatalf("canonical expr not a fixed point: %q -> %q", p.Expr, again.Expr)
		}
		// Construction is deliberately not fuzzed: knobs are validated at
		// resolve time, and a valid-but-enormous table size would make the
		// fuzzer report an out-of-memory crash rather than a real bug.
	})
}
