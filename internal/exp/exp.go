// Package exp is the single construction path for every component the
// evaluation composes: replacement policies, dead block predictors,
// DBRB wrappers, workloads and cache geometries. Components are named
// and parameterized as text expressions —
//
//	lru
//	random(seed=7)
//	sampler(assoc=12,threshold=8)
//	dbrb(base=random,pred=counting)
//	llc(mb=4,ways=16)
//
// — and a declarative Spec (policy expression, workload list, core
// count, geometry, scale) resolves to runnable simulations via
// sim.RunSingle and sim.RunMulticore. The paper's named configurations
// ("Sampler", "TDBP", "Random CDBP", the Figure 6 ablation variants)
// are presets that expand to expressions, so every figure, the public
// facade and the CLIs build their components here; nothing else in the
// tree calls the policy/predictor constructors directly (enforced by
// scripts/check_construction.sh in CI).
//
// The registry is pure configuration plumbing: expressions are parsed
// and validated once, per-run component construction is a closure call,
// and nothing here runs on the per-access hot path.
package exp

// The evaluation's fixed seeds. Every stochastic tie-breaker in the
// comparison policies is seeded with one of these constants so reruns
// of any figure are bit-identical; they are arbitrary small integers
// chosen once for the recorded EXPERIMENTS.md runs and must not change
// (changing one changes every golden table the policy appears in).
const (
	// RandomSeed seeds the random replacement policy's LFSR — both the
	// standalone "Random" baseline of Figures 7/8/10(b) and the base
	// cache under "Random CDBP" / "Random Sampler".
	RandomSeed uint64 = 1
	// DIPSeed salts DIP's set-dueling leader selection (which sets
	// monitor LRU vs bimodal insertion).
	DIPSeed uint64 = 2
	// TADIPSeed salts TADIP's per-thread set-dueling monitors in the
	// shared-cache runs of Figure 10(a).
	TADIPSeed uint64 = 3
	// DRRIPSeed seeds DRRIP: the set-dueling monitor choosing between
	// SRRIP and bimodal insertion, and the policy's long-interval
	// insertion randomization.
	DRRIPSeed uint64 = 4
)
