package exp

import (
	"fmt"
	"strconv"
	"strings"
)

// Expr is one parsed component expression: a name with optional
// key=value arguments, where each value is itself an expression (a bare
// token like 12 or lru is an argument-less Expr). The grammar:
//
//	expr  = name [ "(" [ arg { "," arg } ] ")" ]
//	arg   = key "=" expr
//	name  = one or more of [A-Za-z0-9_.+-]
//	key   = name
//
// Whitespace is tolerated between tokens; String renders the canonical
// spelling with none. Keys must be unique within one argument list.
type Expr struct {
	// Name is the component or literal token.
	Name string
	// Args are the key=value arguments, in source order.
	Args []Arg
}

// Arg is one key=value argument of an expression.
type Arg struct {
	Key   string
	Value Expr
}

// String renders the canonical spelling: no whitespace, arguments in
// their original order, argument-less expressions as the bare name.
// ParseExpr(e.String()) reproduces e exactly.
func (e Expr) String() string {
	if len(e.Args) == 0 {
		return e.Name
	}
	var sb strings.Builder
	sb.WriteString(e.Name)
	sb.WriteByte('(')
	for i, a := range e.Args {
		if i > 0 {
			sb.WriteByte(',')
		}
		sb.WriteString(a.Key)
		sb.WriteByte('=')
		sb.WriteString(a.Value.String())
	}
	sb.WriteByte(')')
	return sb.String()
}

// ParseExpr parses one complete component expression. Trailing input
// after the expression is an error.
func ParseExpr(s string) (Expr, error) {
	p := &parser{s: s}
	e, err := p.expr()
	if err != nil {
		return Expr{}, err
	}
	p.space()
	if p.i != len(p.s) {
		return Expr{}, fmt.Errorf("exp: trailing input %q in expression %q", p.s[p.i:], s)
	}
	return e, nil
}

// parser is a recursive-descent scanner over one expression string.
type parser struct {
	s string
	i int
}

func (p *parser) space() {
	for p.i < len(p.s) && (p.s[p.i] == ' ' || p.s[p.i] == '\t') {
		p.i++
	}
}

// isToken reports whether c may appear in a name or literal token.
// '+', '-' and '.' admit signed numbers, floats and benchmark-style
// names ("456.hmmer") as bare values.
func isToken(c byte) bool {
	return c >= 'a' && c <= 'z' || c >= 'A' && c <= 'Z' ||
		c >= '0' && c <= '9' || c == '_' || c == '.' || c == '+' || c == '-'
}

func (p *parser) token() (string, error) {
	p.space()
	start := p.i
	for p.i < len(p.s) && isToken(p.s[p.i]) {
		p.i++
	}
	if p.i == start {
		if p.i >= len(p.s) {
			return "", fmt.Errorf("exp: unexpected end of expression %q", p.s)
		}
		return "", fmt.Errorf("exp: unexpected %q at offset %d in expression %q", p.s[p.i], p.i, p.s)
	}
	return p.s[start:p.i], nil
}

// peek returns the next non-space byte without consuming it (0 at end).
func (p *parser) peek() byte {
	p.space()
	if p.i >= len(p.s) {
		return 0
	}
	return p.s[p.i]
}

func (p *parser) expr() (Expr, error) {
	name, err := p.token()
	if err != nil {
		return Expr{}, err
	}
	e := Expr{Name: name}
	if p.peek() != '(' {
		return e, nil
	}
	p.i++ // consume '('
	if p.peek() == ')' {
		p.i++
		return e, nil
	}
	seen := map[string]bool{}
	for {
		key, err := p.token()
		if err != nil {
			return Expr{}, err
		}
		if p.peek() != '=' {
			return Expr{}, fmt.Errorf("exp: expected '=' after %q in expression %q", key, p.s)
		}
		p.i++
		val, err := p.expr()
		if err != nil {
			return Expr{}, err
		}
		if seen[key] {
			return Expr{}, fmt.Errorf("exp: duplicate parameter %q in %s(...)", key, name)
		}
		seen[key] = true
		e.Args = append(e.Args, Arg{Key: key, Value: val})
		switch p.peek() {
		case ',':
			p.i++
		case ')':
			p.i++
			return e, nil
		default:
			return Expr{}, fmt.Errorf("exp: expected ',' or ')' in %s(...) of expression %q", name, p.s)
		}
	}
}

// argSet consumes an expression's arguments by key, tracking which keys
// a factory accepted so unknown parameters become errors.
type argSet struct {
	expr Expr
	used map[string]bool
}

func newArgs(e Expr) *argSet {
	return &argSet{expr: e, used: map[string]bool{}}
}

// value returns the raw value expression of key, marking it used.
func (a *argSet) value(key string) (Expr, bool) {
	a.used[key] = true
	for _, arg := range a.expr.Args {
		if arg.Key == key {
			return arg.Value, true
		}
	}
	return Expr{}, false
}

// leaf returns key's value as a bare token, rejecting nested calls.
func (a *argSet) leaf(key string) (string, bool, error) {
	v, ok := a.value(key)
	if !ok {
		return "", false, nil
	}
	if len(v.Args) != 0 {
		return "", false, fmt.Errorf("exp: %s: parameter %s must be a literal, not %s", a.expr.Name, key, v)
	}
	return v.Name, true, nil
}

// Int returns key's integer value, or def when absent.
func (a *argSet) Int(key string, def int) (int, error) {
	tok, ok, err := a.leaf(key)
	if err != nil || !ok {
		return def, err
	}
	n, err := strconv.Atoi(tok)
	if err != nil {
		return 0, fmt.Errorf("exp: %s: parameter %s=%q is not an integer", a.expr.Name, key, tok)
	}
	return n, nil
}

// Uint64 returns key's unsigned value, or def when absent.
func (a *argSet) Uint64(key string, def uint64) (uint64, error) {
	tok, ok, err := a.leaf(key)
	if err != nil || !ok {
		return def, err
	}
	n, err := strconv.ParseUint(tok, 10, 64)
	if err != nil {
		return 0, fmt.Errorf("exp: %s: parameter %s=%q is not an unsigned integer", a.expr.Name, key, tok)
	}
	return n, nil
}

// Bool returns key's boolean value, or def when absent.
func (a *argSet) Bool(key string, def bool) (bool, error) {
	tok, ok, err := a.leaf(key)
	if err != nil || !ok {
		return def, err
	}
	b, err := strconv.ParseBool(tok)
	if err != nil {
		return false, fmt.Errorf("exp: %s: parameter %s=%q is not a boolean", a.expr.Name, key, tok)
	}
	return b, nil
}

// Sub returns key's value expression, or the parsed default when
// absent. Defaults are package literals, so parse errors panic.
func (a *argSet) Sub(key, def string) Expr {
	if v, ok := a.value(key); ok {
		return v
	}
	e, err := ParseExpr(def)
	if err != nil {
		panic("exp: bad built-in default expression " + def + ": " + err.Error())
	}
	return e
}

// finish reports the first argument no factory consumed.
func (a *argSet) finish() error {
	for _, arg := range a.expr.Args {
		if !a.used[arg.Key] {
			return fmt.Errorf("exp: %s: unknown parameter %q", a.expr.Name, arg.Key)
		}
	}
	return nil
}

// noArgs rejects any arguments on an argument-less component.
func noArgs(e Expr) error {
	if len(e.Args) != 0 {
		return fmt.Errorf("exp: %s takes no parameters", e.Name)
	}
	return nil
}
