package exp

import (
	"reflect"
	"strings"
	"testing"
)

// TestSpecStringRoundTrip pins the compact text form: ParseSpec
// inverts String exactly for every field combination.
func TestSpecStringRoundTrip(t *testing.T) {
	for _, s := range []Spec{
		{Policy: "Sampler"},
		{Policy: "dbrb(base=random,pred=counting)", Workloads: []string{"456.hmmer", "470.lbm"}},
		{Policy: "lru", Mixes: []string{"mix1", "mix2"}},
		{Policy: "rrip", Workloads: []string{"subset"}, Cores: 2, LLC: "llc(mb=4)", Scale: 0.25},
		{Policy: "TADIP", Workloads: []string{"all"}, Mixes: []string{"all"}, Scale: 1},
	} {
		text := s.String()
		got, err := ParseSpec(text)
		if err != nil {
			t.Errorf("%q: %v", text, err)
			continue
		}
		if !reflect.DeepEqual(got, s) {
			t.Errorf("ParseSpec(%q) = %+v, want %+v", text, got, s)
		}
		if got.String() != text {
			t.Errorf("re-rendered %q != %q", got.String(), text)
		}
	}
}

func TestParseSpecErrors(t *testing.T) {
	for _, s := range []string{
		"policy",                         // not key=value
		"policy=lru;policy=rrip",         // duplicate field
		"banana=1",                       // unknown field
		"policy=lru;cores=two",           // non-integer cores
		"policy=lru;scale=fast",          // non-numeric scale
	} {
		if _, err := ParseSpec(s); err == nil {
			t.Errorf("ParseSpec(%q) accepted", s)
		}
	}
}

func TestSpecResolveDefaults(t *testing.T) {
	r, err := Spec{Policy: "Sampler", Workloads: []string{"subset"}}.Resolve()
	if err != nil {
		t.Fatal(err)
	}
	if r.Cores != 1 || r.Scale != 1 || r.LLCSet {
		t.Errorf("defaults = cores %d, scale %g, llcSet %v", r.Cores, r.Scale, r.LLCSet)
	}
	if len(r.Workloads) != 19 {
		t.Errorf("subset expanded to %d workloads, want 19", len(r.Workloads))
	}
	if got := r.LLCFor(1).SizeBytes; got != 2<<20 {
		t.Errorf("default LLC = %d bytes, want 2MB", got)
	}
	if got := r.LLCFor(4).SizeBytes; got != 8<<20 {
		t.Errorf("default quad-core LLC = %d bytes, want 8MB", got)
	}
}

func TestSpecResolveExpansions(t *testing.T) {
	r, err := Spec{Policy: "lru", Workloads: []string{"all"}, Mixes: []string{"all"}}.Resolve()
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Workloads) != 29 || len(r.Mixes) != 10 {
		t.Errorf("all expanded to %d workloads, %d mixes", len(r.Workloads), len(r.Mixes))
	}
}

func TestSpecResolveErrors(t *testing.T) {
	cases := []struct {
		spec Spec
		want string // substring of the error
	}{
		{Spec{}, "no policy"},
		{Spec{Policy: "lru"}, "no workloads"},
		{Spec{Policy: "nosuch", Workloads: []string{"subset"}}, "unknown policy"},
		{Spec{Policy: "lru", Workloads: []string{"999.nope"}}, "valid benchmarks"},
		{Spec{Policy: "lru", Mixes: []string{"mix99"}}, "valid mixes"},
		{Spec{Policy: "lru", Workloads: []string{"subset"}, Cores: -1}, "cores"},
		{Spec{Policy: "lru", Workloads: []string{"subset"}, Scale: -0.5}, "scale"},
		{Spec{Policy: "lru", Workloads: []string{"subset"}, LLC: "llc(mb=3)"}, "sets"},
	}
	for _, c := range cases {
		_, err := c.spec.Resolve()
		if err == nil {
			t.Errorf("%+v accepted", c.spec)
			continue
		}
		if !strings.Contains(err.Error(), c.want) {
			t.Errorf("%+v: error %q does not mention %q", c.spec, err, c.want)
		}
	}
}

// TestResolvedStringExpandsDefaults checks the manifest echo: every
// default is made explicit and the policy appears in canonical
// expression form.
func TestResolvedStringExpandsDefaults(t *testing.T) {
	r, err := Spec{Policy: "Sampler", Workloads: []string{"456.hmmer"}}.Resolve()
	if err != nil {
		t.Fatal(err)
	}
	got := r.String()
	for _, want := range []string{
		"policy=dbrb(base=lru,pred=sampler)",
		"workloads=456.hmmer",
		"cores=1",
		"llc=llc(mb=2,ways=16)",
		"scale=1",
	} {
		if !strings.Contains(got, want) {
			t.Errorf("Resolved.String() = %q, missing %q", got, want)
		}
	}
	// The echo itself must re-parse and re-resolve.
	spec, err := ParseSpec(got)
	if err != nil {
		t.Fatalf("echo %q does not re-parse: %v", got, err)
	}
	if _, err := spec.Resolve(); err != nil {
		t.Fatalf("echo %q does not re-resolve: %v", got, err)
	}
}
