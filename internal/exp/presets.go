package exp

import "sdbp/internal/predictor"

// A preset binds a paper abbreviation (Table V and the extension
// studies) to the expression it stands for. Presets are the vocabulary
// the figures, the public facade and the CLIs use; expressions are the
// escape hatch for configurations the paper does not name.
type preset struct {
	name string
	expr string
}

// presetList is the preset vocabulary in presentation order: the
// paper's comparison policies first, then the extension policies.
var presetList = []preset{
	{"LRU", "lru"},
	{"Random", "random"},
	{"DIP", "dip"},
	{"TADIP", "tadip"},
	{"RRIP", "rrip"},
	{"Sampler", "dbrb(base=lru,pred=sampler)"},
	{"TDBP", "dbrb(base=lru,pred=reftrace)"},
	{"CDBP", "dbrb(base=lru,pred=counting)"},
	{"Random Sampler", "dbrb(base=random,pred=sampler)"},
	{"Random CDBP", "dbrb(base=random,pred=counting)"},
	{"PLRU", "plru"},
	{"NRU", "nru"},
	{"PLRU Sampler", "dbrb(base=plru,pred=sampler)"},
	{"NRU Sampler", "dbrb(base=nru,pred=sampler)"},
	{"Bursts", "dbrb(base=lru,pred=bursts)"},
	{"AIP", "dbrb(base=lru,pred=aip)"},
	{"SamplingCounting", "dbrb(base=lru,pred=samplingcounting)"},
	{"TimeBased", "dbrb(base=lru,pred=timebased)"},
	{"Dueling Sampler", "dueling(base=lru,pred=sampler)"},
	{"SHiP", "ship"},
	{"Skewed DBP", "dbrb(base=lru,pred=skewed)"},
	{"Improved DBP", "duel(a=lru,b=dbrb(base=lru,pred=reuse))"},
}

// presetAliases maps the single-token CLI spellings to the canonical
// spaced preset names.
var presetAliases = map[string]string{
	"RandomSampler":  "Random Sampler",
	"RandomCDBP":     "Random CDBP",
	"PLRUSampler":    "PLRU Sampler",
	"NRUSampler":     "NRU Sampler",
	"DuelingSampler": "Dueling Sampler",
	"SkewedDBP":      "Skewed DBP",
	"ImprovedDBP":    "Improved DBP",
}

// PresetNames lists the preset policy names in presentation order (the
// Figure 6 ablation variants are named separately; see
// AblationVariantNames).
func PresetNames() []string {
	out := make([]string, len(presetList))
	for i, p := range presetList {
		out[i] = p.name
	}
	return out
}

// ablationExtras extends the Figure 6 study beyond the paper's six
// sampler variants: the same DBRB wrapper driven by the skewed
// tagged-table predictor and by the reuse-counter core, so the ablation
// isolates the training rule and table organization against the
// sampler's own decomposition.
var ablationExtras = []preset{
	{"DBRB+skewed tags", "dbrb(base=lru,pred=skewed)"},
	{"DBRB+reuse counters", "dbrb(base=lru,pred=reuse)"},
}

// AblationVariantNames lists the Figure 6 ablation variants in the
// paper's bar order, followed by the extension variants. Each name
// resolves as a policy preset expanding to dbrb over the variant's
// predictor configuration.
func AblationVariantNames() []string {
	names := []string{
		"DBRB alone",
		"DBRB+3 tables",
		"DBRB+sampler",
		"DBRB+sampler+3 tables",
		"DBRB+sampler+12-way",
		"DBRB+sampler+3 tables+12-way",
	}
	for _, p := range ablationExtras {
		names = append(names, p.name)
	}
	return names
}

// presetByName resolves a preset name, CLI alias, or Figure 6 ablation
// variant name.
func presetByName(name string) (Policy, bool) {
	if canonical, ok := presetAliases[name]; ok {
		name = canonical
	}
	for _, p := range presetList {
		if p.name == name {
			return Policy{Name: p.name, Expr: p.expr, Make: MustResolvePolicy(p.expr).Make}, true
		}
	}
	if cfg, ok := predictor.AblationConfigs()[name]; ok {
		expr := "dbrb(base=lru,pred=" + SamplerExpr(cfg) + ")"
		return Policy{Name: name, Expr: expr, Make: MustResolvePolicy(expr).Make}, true
	}
	for _, p := range ablationExtras {
		if p.name == name {
			return Policy{Name: p.name, Expr: p.expr, Make: MustResolvePolicy(p.expr).Make}, true
		}
	}
	return Policy{}, false
}
