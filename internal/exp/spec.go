package exp

import (
	"fmt"
	"strconv"
	"strings"

	"sdbp/internal/cache"
	"sdbp/internal/hier"
	"sdbp/internal/sampling"
	"sdbp/internal/sim"
	"sdbp/internal/workloads"
)

// Spec declares one experiment: which policy, over which workloads
// and/or quad-core mixes, on what cache geometry, at what stream scale.
// A Spec is data — JSON for files (see cmd/experiments -spec) and a
// compact one-line text form for logs and manifests:
//
//	policy=dbrb(base=lru,pred=sampler);workloads=456.hmmer,470.lbm;scale=0.1
//
// The zero values mean "default": Cores 1 (4 for mixes), LLC the
// paper's 2MB-per-core 16-way geometry, Scale 1.0. Resolve validates
// the spec and binds it to runnable components.
type Spec struct {
	// Policy is a preset name ("Sampler") or expression
	// ("dbrb(base=random,pred=counting)"). Required.
	Policy string `json:"policy"`
	// Workloads are benchmark names, or the expansions "subset" (the
	// paper's 19-benchmark memory-intensive subset) and "all".
	Workloads []string `json:"workloads,omitempty"`
	// Mixes are quad-core mix names ("mix1".."mix10") or "all".
	Mixes []string `json:"mixes,omitempty"`
	// Cores is the core count sharing the LLC in single-benchmark runs
	// (it sizes the default geometry and is passed to thread-aware
	// policies). 0 means 1. Mix runs are always quad-core.
	Cores int `json:"cores,omitempty"`
	// LLC overrides the cache geometry: "llc(mb=4)", "llc(kb=512,ways=8)".
	// Empty means 2MB per core, 16 ways.
	LLC string `json:"llc,omitempty"`
	// Scale multiplies every reference stream's default length; 0 means 1.0.
	Scale float64 `json:"scale,omitempty"`
	// Sampled opts single-benchmark runs into representative-interval
	// sampled simulation (package sampling): a pilot run's interval
	// telemetry is clustered, representative intervals are replayed
	// with warm-up, and results are estimates with error bounds instead
	// of exact full-run counters. Mixes cannot be sampled.
	Sampled bool `json:"sampled,omitempty"`
	// SampleInterval is the pilot telemetry granularity in retired
	// instructions; 0 means DefaultSampleInterval.
	SampleInterval uint64 `json:"sample_interval,omitempty"`
	// SampleClusters caps the representative intervals per workload;
	// 0 means sampling.DefaultClusters.
	SampleClusters int `json:"sample_clusters,omitempty"`
	// SampleWarmup is the functional-warming window before each
	// measured interval, as a fraction of the interval length; 0 means
	// sampling.DefaultWarmupFrac, negative means no warm-up.
	SampleWarmup float64 `json:"sample_warmup,omitempty"`
}

// String renders the compact text form: semicolon-separated key=value
// fields in fixed order, zero-valued fields omitted. ParseSpec inverts
// it exactly.
func (s Spec) String() string {
	var fields []string
	add := func(key, val string) { fields = append(fields, key+"="+val) }
	if s.Policy != "" {
		add("policy", s.Policy)
	}
	if len(s.Workloads) > 0 {
		add("workloads", strings.Join(s.Workloads, ","))
	}
	if len(s.Mixes) > 0 {
		add("mixes", strings.Join(s.Mixes, ","))
	}
	if s.Cores != 0 {
		add("cores", strconv.Itoa(s.Cores))
	}
	if s.LLC != "" {
		add("llc", s.LLC)
	}
	if s.Scale != 0 {
		add("scale", strconv.FormatFloat(s.Scale, 'g', -1, 64))
	}
	if s.Sampled {
		add("sampled", "true")
	}
	if s.SampleInterval != 0 {
		add("sample_interval", strconv.FormatUint(s.SampleInterval, 10))
	}
	if s.SampleClusters != 0 {
		add("sample_clusters", strconv.Itoa(s.SampleClusters))
	}
	if s.SampleWarmup != 0 {
		add("sample_warmup", strconv.FormatFloat(s.SampleWarmup, 'g', -1, 64))
	}
	return strings.Join(fields, ";")
}

// ParseSpec parses the compact text form produced by Spec.String.
func ParseSpec(s string) (Spec, error) {
	var spec Spec
	seen := map[string]bool{}
	for _, field := range strings.Split(s, ";") {
		field = strings.TrimSpace(field)
		if field == "" {
			continue
		}
		key, val, ok := strings.Cut(field, "=")
		if !ok {
			return Spec{}, fmt.Errorf("exp: spec field %q is not key=value", field)
		}
		key, val = strings.TrimSpace(key), strings.TrimSpace(val)
		if seen[key] {
			return Spec{}, fmt.Errorf("exp: duplicate spec field %q", key)
		}
		seen[key] = true
		switch key {
		case "policy":
			spec.Policy = val
		case "workloads":
			spec.Workloads = splitNames(val)
		case "mixes":
			spec.Mixes = splitNames(val)
		case "cores":
			n, err := strconv.Atoi(val)
			if err != nil {
				return Spec{}, fmt.Errorf("exp: spec cores=%q is not an integer", val)
			}
			spec.Cores = n
		case "llc":
			spec.LLC = val
		case "scale":
			f, err := strconv.ParseFloat(val, 64)
			if err != nil {
				return Spec{}, fmt.Errorf("exp: spec scale=%q is not a number", val)
			}
			spec.Scale = f
		case "sampled":
			b, err := strconv.ParseBool(val)
			if err != nil {
				return Spec{}, fmt.Errorf("exp: spec sampled=%q is not a boolean", val)
			}
			spec.Sampled = b
		case "sample_interval":
			n, err := strconv.ParseUint(val, 10, 64)
			if err != nil {
				return Spec{}, fmt.Errorf("exp: spec sample_interval=%q is not a non-negative integer", val)
			}
			spec.SampleInterval = n
		case "sample_clusters":
			n, err := strconv.Atoi(val)
			if err != nil {
				return Spec{}, fmt.Errorf("exp: spec sample_clusters=%q is not an integer", val)
			}
			spec.SampleClusters = n
		case "sample_warmup":
			f, err := strconv.ParseFloat(val, 64)
			if err != nil {
				return Spec{}, fmt.Errorf("exp: spec sample_warmup=%q is not a number", val)
			}
			spec.SampleWarmup = f
		default:
			return Spec{}, fmt.Errorf("exp: unknown spec field %q (valid: policy, workloads, mixes, cores, llc, scale, sampled, sample_interval, sample_clusters, sample_warmup)", key)
		}
	}
	return spec, nil
}

func splitNames(s string) []string {
	var out []string
	for _, n := range strings.Split(s, ",") {
		if n = strings.TrimSpace(n); n != "" {
			out = append(out, n)
		}
	}
	return out
}

// Resolved is a validated Spec bound to runnable components.
type Resolved struct {
	// Policy is the resolved policy factory.
	Policy Policy
	// Workloads are the expanded single-benchmark runs.
	Workloads []workloads.Workload
	// Mixes are the expanded quad-core runs.
	Mixes []workloads.Mix
	// Cores is the single-benchmark core count (>= 1).
	Cores int
	// Scale is the stream length multiplier (> 0).
	Scale float64
	// LLC is the explicit geometry; LLCSet reports whether the spec
	// overrode the default (use LLCFor to pick the right one).
	LLC    cache.Config
	LLCSet bool
	// Sampled marks the spec as a sampled-simulation request;
	// SampleInterval and SampleConfig are the effective selector knobs
	// with defaults applied (see RunBenchSampled).
	Sampled        bool
	SampleInterval uint64
	SampleConfig   sampling.Config
}

// Resolve validates the spec and binds every name to its component. A
// spec must name a policy and select at least one workload or mix.
func (s Spec) Resolve() (*Resolved, error) {
	if s.Policy == "" {
		return nil, fmt.Errorf("exp: spec names no policy")
	}
	pol, err := ResolvePolicy(s.Policy)
	if err != nil {
		return nil, err
	}
	r := &Resolved{Policy: pol, Cores: s.Cores, Scale: s.Scale}
	if r.Cores == 0 {
		r.Cores = 1
	}
	if r.Cores < 1 {
		return nil, fmt.Errorf("exp: spec cores must be >= 1 (got %d)", s.Cores)
	}
	if r.Scale == 0 {
		r.Scale = 1
	}
	if !(r.Scale > 0) {
		return nil, fmt.Errorf("exp: spec scale must be > 0 (got %g)", s.Scale)
	}

	for _, name := range s.Workloads {
		switch name {
		case "all":
			r.Workloads = append(r.Workloads, workloads.All()...)
		case "subset":
			r.Workloads = append(r.Workloads, workloads.Subset()...)
		default:
			w, err := workloads.ByName(name)
			if err != nil {
				return nil, err
			}
			r.Workloads = append(r.Workloads, w)
		}
	}
	for _, name := range s.Mixes {
		if name == "all" {
			r.Mixes = append(r.Mixes, workloads.Mixes()...)
			continue
		}
		m, err := mixByName(name)
		if err != nil {
			return nil, err
		}
		r.Mixes = append(r.Mixes, m)
	}
	if len(r.Workloads) == 0 && len(r.Mixes) == 0 {
		return nil, fmt.Errorf("exp: spec selects no workloads or mixes")
	}
	if s.LLC != "" {
		cfg, err := Geometry(s.LLC)
		if err != nil {
			return nil, err
		}
		r.LLC, r.LLCSet = cfg, true
	}
	if !s.Sampled && (s.SampleInterval != 0 || s.SampleClusters != 0 || s.SampleWarmup != 0) {
		return nil, fmt.Errorf("exp: sample_* fields require sampled=true")
	}
	if s.Sampled {
		if len(r.Mixes) > 0 {
			return nil, fmt.Errorf("exp: sampled simulation supports single-benchmark runs only, not mixes")
		}
		if s.SampleClusters < 0 {
			return nil, fmt.Errorf("exp: spec sample_clusters must be >= 0 (got %d)", s.SampleClusters)
		}
		r.Sampled = true
		r.SampleInterval = s.SampleInterval
		if r.SampleInterval == 0 {
			r.SampleInterval = DefaultSampleInterval
		}
		r.SampleConfig = sampling.Config{
			Clusters:   s.SampleClusters,
			WarmupFrac: s.SampleWarmup,
		}
	}
	return r, nil
}

// mixByName resolves a quad-core mix name.
func mixByName(name string) (workloads.Mix, error) {
	var names []string
	for _, m := range workloads.Mixes() {
		if m.Name == name {
			return m, nil
		}
		names = append(names, m.Name)
	}
	return workloads.Mix{}, fmt.Errorf("exp: unknown mix %q; valid mixes: %s", name, strings.Join(names, ", "))
}

// LLCFor returns the run's cache geometry: the explicit override, or
// the paper's default for the given core count.
func (r *Resolved) LLCFor(cores int) cache.Config {
	if r.LLCSet {
		return r.LLC
	}
	return hier.LLCConfig(cores)
}

// String renders the fully-expanded canonical spec — policy as its
// canonical expression, workloads and mixes listed by name, every
// default made explicit. This is the form the run manifest echoes.
func (r *Resolved) String() string {
	s := Spec{
		Policy: r.Policy.Expr,
		Cores:  r.Cores,
		Scale:  r.Scale,
	}
	for _, w := range r.Workloads {
		s.Workloads = append(s.Workloads, w.Name)
	}
	for _, m := range r.Mixes {
		s.Mixes = append(s.Mixes, m.Name)
	}
	llc := r.LLCFor(maxInt(r.Cores, boolToInt(len(r.Mixes) > 0)*4))
	if llc.SizeBytes%(1<<20) == 0 {
		s.LLC = fmt.Sprintf("llc(mb=%d,ways=%d)", llc.SizeBytes>>20, llc.Ways)
	} else {
		s.LLC = fmt.Sprintf("llc(kb=%d,ways=%d)", llc.SizeBytes>>10, llc.Ways)
	}
	if r.Sampled {
		// Sampling knobs appear with every default made explicit, so
		// any spelling of the same sampled experiment shares one
		// canonical form (and one content address).
		s.Sampled = true
		s.SampleInterval = r.SampleInterval
		s.SampleClusters = r.SampleConfig.Clusters
		if s.SampleClusters == 0 {
			s.SampleClusters = sampling.DefaultClusters
		}
		switch {
		case r.SampleConfig.WarmupFrac < 0:
			s.SampleWarmup = -1
		case r.SampleConfig.WarmupFrac == 0:
			s.SampleWarmup = sampling.DefaultWarmupFrac
		default:
			s.SampleWarmup = r.SampleConfig.WarmupFrac
		}
	}
	return s.String()
}

// RunBench simulates one of the spec's workloads under the spec's
// policy via sim.RunSingle.
func (r *Resolved) RunBench(w workloads.Workload) sim.SingleResult {
	opts := sim.SingleOptions{Scale: r.Scale, LLC: r.LLCFor(r.Cores)}
	return sim.RunSingle(w, r.Policy.Make(r.Cores), opts)
}

// RunMix simulates one of the spec's quad-core mixes under the spec's
// policy via sim.RunMulticore.
func (r *Resolved) RunMix(m workloads.Mix) (sim.MulticoreResult, error) {
	return sim.RunMulticore(m, r.Policy.Make(4), sim.MulticoreOptions{Scale: r.Scale, LLC: r.LLCFor(4)})
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}

func boolToInt(b bool) int {
	if b {
		return 1
	}
	return 0
}

// WorkloadNames returns the resolved workload names, and MixNames the
// resolved mix names, both in spec order (no sorting — order is the
// run order).
func (r *Resolved) WorkloadNames() []string {
	var out []string
	for _, w := range r.Workloads {
		out = append(out, w.Name)
	}
	return out
}

// MixNames returns the resolved mix names in spec order.
func (r *Resolved) MixNames() []string {
	var out []string
	for _, m := range r.Mixes {
		out = append(out, m.Name)
	}
	return out
}
