package exp

import (
	"math"
	"reflect"
	"strings"
	"testing"
)

const sampledTestSpec = "policy=lru;workloads=456.hmmer;scale=0.02;sampled=true;sample_interval=5000;sample_clusters=4"

func TestSampledSpecRoundTrip(t *testing.T) {
	for _, s := range []Spec{
		{Policy: "lru", Workloads: []string{"456.hmmer"}, Sampled: true},
		{Policy: "Sampler", Workloads: []string{"subset"}, Scale: 0.5,
			Sampled: true, SampleInterval: 50_000, SampleClusters: 6, SampleWarmup: 0.5},
		{Policy: "lru", Workloads: []string{"429.mcf"}, Sampled: true, SampleWarmup: -1},
	} {
		text := s.String()
		back, err := ParseSpec(text)
		if err != nil {
			t.Fatalf("ParseSpec(%q): %v", text, err)
		}
		if !reflect.DeepEqual(back, s) {
			t.Errorf("round trip changed spec: %q -> %+v", text, back)
		}
	}
}

func TestSampledSpecRoundTripSlices(t *testing.T) {
	s := Spec{Policy: "lru", Workloads: []string{"456.hmmer", "429.mcf"},
		Sampled: true, SampleInterval: 9999}
	back, err := ParseSpec(s.String())
	if err != nil {
		t.Fatal(err)
	}
	if strings.Join(back.Workloads, ",") != strings.Join(s.Workloads, ",") ||
		back.Sampled != s.Sampled || back.SampleInterval != s.SampleInterval {
		t.Fatalf("round trip changed spec: %+v -> %+v", s, back)
	}
}

func TestSampledResolveValidation(t *testing.T) {
	cases := []struct {
		spec Spec
		want string // substring of the error
	}{
		{Spec{Policy: "lru", Mixes: []string{"mix1"}, Sampled: true}, "mixes"},
		{Spec{Policy: "lru", Workloads: []string{"456.hmmer"}, SampleInterval: 100}, "sampled=true"},
		{Spec{Policy: "lru", Workloads: []string{"456.hmmer"}, SampleClusters: 2}, "sampled=true"},
		{Spec{Policy: "lru", Workloads: []string{"456.hmmer"}, Sampled: true, SampleClusters: -3}, "sample_clusters"},
	}
	for _, c := range cases {
		_, err := c.spec.Resolve()
		if err == nil || !strings.Contains(err.Error(), c.want) {
			t.Errorf("Resolve(%+v) error = %v, want mention of %q", c.spec, err, c.want)
		}
	}
}

func TestSampledResolveDefaults(t *testing.T) {
	r, err := Spec{Policy: "lru", Workloads: []string{"456.hmmer"}, Sampled: true}.Resolve()
	if err != nil {
		t.Fatal(err)
	}
	if !r.Sampled || r.SampleInterval != DefaultSampleInterval {
		t.Fatalf("resolved sampled defaults: sampled=%v interval=%d", r.Sampled, r.SampleInterval)
	}
	// The canonical form makes every sampling default explicit, so any
	// spelling of the same sampled experiment shares one address.
	canon := r.String()
	for _, want := range []string{"sampled=true", "sample_interval=50000", "sample_clusters=8", "sample_warmup=4"} {
		if !strings.Contains(canon, want) {
			t.Errorf("canonical %q missing %q", canon, want)
		}
	}
	// And the canonical form re-resolves to itself (fixed point).
	spec2, err := ParseSpec(canon)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := spec2.Resolve()
	if err != nil {
		t.Fatal(err)
	}
	if r2.String() != canon {
		t.Fatalf("canonical form is not a fixed point:\n%s\n%s", canon, r2.String())
	}
}

func TestRunBenchSampledAmortizesPilot(t *testing.T) {
	ResetSampledCache()
	t.Cleanup(ResetSampledCache)

	spec, err := ParseSpec(sampledTestSpec)
	if err != nil {
		t.Fatal(err)
	}
	lru, err := spec.Resolve()
	if err != nil {
		t.Fatal(err)
	}
	spec.Policy = "Sampler"
	smp, err := spec.Resolve()
	if err != nil {
		t.Fatal(err)
	}

	w := lru.Workloads[0]
	resLRU, plan, err := lru.RunBenchSampled(w)
	if err != nil {
		t.Fatalf("RunBenchSampled(lru): %v", err)
	}
	resSmp, _, err := smp.RunBenchSampled(w)
	if err != nil {
		t.Fatalf("RunBenchSampled(Sampler): %v", err)
	}
	if got := SampledPilotRuns(); got != 1 {
		t.Fatalf("two policies cost %d pilot runs, want 1 (shared cache)", got)
	}
	if plan == nil || len(plan.Picks) == 0 {
		t.Fatal("no plan returned")
	}
	if resLRU.Estimate.IPC <= 0 || resSmp.Estimate.IPC <= 0 {
		t.Fatalf("degenerate estimates: %v / %v", resLRU.Estimate.IPC, resSmp.Estimate.IPC)
	}
	// Different policies measured over the same windows: the dead-block
	// policy must report predictor activity, the baseline none.
	var smpPreds uint64
	for _, iv := range resSmp.Measured {
		smpPreds += iv.DPredictions
	}
	if smpPreds == 0 {
		t.Error("Sampler policy measured no predictions in its windows")
	}
	for _, iv := range resLRU.Measured {
		if iv.DPredictions != 0 {
			t.Error("LRU measured nonzero predictions")
			break
		}
	}
}

func TestRunBenchSampledRequiresSampledSpec(t *testing.T) {
	r, err := (Spec{Policy: "lru", Workloads: []string{"456.hmmer"}, Scale: 0.02}).Resolve()
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := r.RunBenchSampled(r.Workloads[0]); err == nil {
		t.Fatal("RunBenchSampled on an unsampled spec succeeded, want error")
	}
}

func TestRunBenchSampledEstimateWithinBounds(t *testing.T) {
	ResetSampledCache()
	t.Cleanup(ResetSampledCache)

	spec, err := ParseSpec(sampledTestSpec)
	if err != nil {
		t.Fatal(err)
	}
	r, err := spec.Resolve()
	if err != nil {
		t.Fatal(err)
	}
	w := r.Workloads[0]
	res, _, err := r.RunBenchSampled(w)
	if err != nil {
		t.Fatal(err)
	}
	full := r.RunBench(w)
	trueMiss := float64(full.LLC.Misses) / float64(full.LLC.Accesses)
	if diff := math.Abs(res.Estimate.MissRate - trueMiss); diff > res.Estimate.MissRateHalf {
		t.Errorf("MissRate %v ± %v misses full-run %v",
			res.Estimate.MissRate, res.Estimate.MissRateHalf, trueMiss)
	}
	if math.Abs(full.IPC-res.Estimate.IPC) > res.Estimate.IPCHalf {
		t.Errorf("IPC %v ± %v misses full-run %v",
			res.Estimate.IPC, res.Estimate.IPCHalf, full.IPC)
	}
}
