package exp

import (
	"fmt"
	"strings"

	"sdbp/internal/cache"
	"sdbp/internal/dbrb"
	"sdbp/internal/mem"
	"sdbp/internal/policy"
	"sdbp/internal/policy/ship"
	"sdbp/internal/predictor"
)

// Policy is a resolved LLC management technique: a display name, the
// canonical expression it was built from, and a factory producing fresh
// instances (policies hold mutable state and must never be shared
// across simulations).
type Policy struct {
	// Name is the display name: the preset's paper abbreviation
	// ("Sampler", "Random CDBP") or, for a raw expression, its
	// canonical spelling.
	Name string
	// Expr is the canonical expression the factory was built from.
	Expr string
	// Make builds a fresh policy for a cache shared by threads threads.
	Make func(threads int) cache.Policy
}

// ResolvePolicy resolves a preset name (see PresetNames and
// AblationVariantNames, plus the historical CLI aliases like
// "RandomSampler") or a policy expression like
// "dbrb(base=random,pred=sampler(threshold=6))" into a validated
// factory. All validation happens here; calling Make never fails.
func ResolvePolicy(nameOrExpr string) (Policy, error) {
	if p, ok := presetByName(nameOrExpr); ok {
		return p, nil
	}
	e, err := ParseExpr(nameOrExpr)
	if err != nil {
		return Policy{}, err
	}
	mk, err := buildPolicy(e)
	if err != nil {
		return Policy{}, err
	}
	canon := e.String()
	return Policy{Name: canon, Expr: canon, Make: mk}, nil
}

// MustResolvePolicy is ResolvePolicy for package-literal names and
// expressions; it panics on error.
func MustResolvePolicy(nameOrExpr string) Policy {
	p, err := ResolvePolicy(nameOrExpr)
	if err != nil {
		panic(err)
	}
	return p
}

// NewPolicy resolves nameOrExpr and builds one instance for a cache
// shared by threads threads.
func NewPolicy(nameOrExpr string, threads int) (cache.Policy, error) {
	p, err := ResolvePolicy(nameOrExpr)
	if err != nil {
		return nil, err
	}
	return p.Make(threads), nil
}

// PolicyNames lists the registered policy expression names, sorted.
func PolicyNames() []string {
	return []string{"dbrb", "dip", "duel", "dueling", "lru", "nru", "plru", "random", "rrip", "ship", "srrip", "tadip"}
}

// PredictorNames lists the registered predictor expression names,
// sorted.
func PredictorNames() []string {
	return []string{"aip", "bursts", "counting", "never", "reftrace", "reuse", "sampler", "samplingcounting", "skewed", "timebased"}
}

// buildPolicy validates a policy expression and returns its factory.
func buildPolicy(e Expr) (func(threads int) cache.Policy, error) {
	switch e.Name {
	case "lru":
		if err := noArgs(e); err != nil {
			return nil, err
		}
		return func(int) cache.Policy { return policy.NewLRU() }, nil
	case "plru":
		if err := noArgs(e); err != nil {
			return nil, err
		}
		return func(int) cache.Policy { return policy.NewPLRU() }, nil
	case "nru":
		if err := noArgs(e); err != nil {
			return nil, err
		}
		return func(int) cache.Policy { return policy.NewNRU() }, nil
	case "srrip":
		if err := noArgs(e); err != nil {
			return nil, err
		}
		return func(int) cache.Policy { return policy.NewSRRIP() }, nil
	case "random":
		args := newArgs(e)
		seed, err := args.Uint64("seed", RandomSeed)
		if err != nil {
			return nil, err
		}
		if err := args.finish(); err != nil {
			return nil, err
		}
		return func(int) cache.Policy { return policy.NewRandom(seed) }, nil
	case "dip":
		args := newArgs(e)
		seed, err := args.Uint64("seed", DIPSeed)
		if err != nil {
			return nil, err
		}
		if err := args.finish(); err != nil {
			return nil, err
		}
		return func(int) cache.Policy { return policy.NewDIP(seed) }, nil
	case "tadip":
		args := newArgs(e)
		seed, err := args.Uint64("seed", TADIPSeed)
		if err != nil {
			return nil, err
		}
		if err := args.finish(); err != nil {
			return nil, err
		}
		return func(threads int) cache.Policy { return policy.NewTADIP(threads, seed) }, nil
	case "rrip":
		args := newArgs(e)
		seed, err := args.Uint64("seed", DRRIPSeed)
		if err != nil {
			return nil, err
		}
		if err := args.finish(); err != nil {
			return nil, err
		}
		return func(threads int) cache.Policy { return policy.NewDRRIP(threads, seed) }, nil
	case "ship":
		cfg, err := shipConfig(e)
		if err != nil {
			return nil, err
		}
		return func(int) cache.Policy { return ship.New(cfg) }, nil
	case "duel":
		args := newArgs(e)
		mkA, err := buildPolicy(args.Sub("a", "lru"))
		if err != nil {
			return nil, err
		}
		mkB, err := buildPolicy(args.Sub("b", "dbrb(base=lru,pred=reuse)"))
		if err != nil {
			return nil, err
		}
		leaders, err := args.Int("leaders", 32)
		if err != nil {
			return nil, err
		}
		psel, err := args.Int("psel", 10)
		if err != nil {
			return nil, err
		}
		forceTok, _, err := args.leaf("force")
		if err != nil {
			return nil, err
		}
		if err := args.finish(); err != nil {
			return nil, err
		}
		force := policy.ForceNone
		switch forceTok {
		case "", "none":
		case "a":
			force = policy.ForceA
		case "b":
			force = policy.ForceB
		default:
			return nil, fmt.Errorf("exp: duel: force=%q is not one of none, a, b", forceTok)
		}
		if leaders < 1 {
			return nil, fmt.Errorf("exp: duel: need at least 1 leader set per side (got %d)", leaders)
		}
		if psel < 1 || psel > 30 {
			return nil, fmt.Errorf("exp: duel: PSEL width %d outside [1, 30] bits", psel)
		}
		return func(threads int) cache.Policy {
			return policy.NewAB(mkA(threads), mkB(threads), leaders, psel, force)
		}, nil
	case "dbrb", "dueling":
		args := newArgs(e)
		mkBase, err := buildPolicy(args.Sub("base", "lru"))
		if err != nil {
			return nil, err
		}
		mkPred, err := buildPredictor(args.Sub("pred", "sampler"))
		if err != nil {
			return nil, err
		}
		if err := args.finish(); err != nil {
			return nil, err
		}
		if e.Name == "dueling" {
			return func(threads int) cache.Policy {
				return dbrb.NewDueling(mkBase(threads), mkPred())
			}, nil
		}
		return func(threads int) cache.Policy {
			return dbrb.New(mkBase(threads), mkPred())
		}, nil
	}
	return nil, fmt.Errorf("exp: unknown policy %q; registered policies: %s",
		e.Name, strings.Join(PolicyNames(), ", "))
}

// buildPredictor validates a predictor expression and returns its
// factory.
func buildPredictor(e Expr) (func() predictor.Predictor, error) {
	switch e.Name {
	case "reftrace":
		if err := noArgs(e); err != nil {
			return nil, err
		}
		return func() predictor.Predictor { return predictor.NewRefTrace() }, nil
	case "counting":
		if err := noArgs(e); err != nil {
			return nil, err
		}
		return func() predictor.Predictor { return predictor.NewCounting() }, nil
	case "bursts":
		if err := noArgs(e); err != nil {
			return nil, err
		}
		return func() predictor.Predictor { return predictor.NewBursts() }, nil
	case "aip":
		if err := noArgs(e); err != nil {
			return nil, err
		}
		return func() predictor.Predictor { return predictor.NewAIP() }, nil
	case "samplingcounting":
		if err := noArgs(e); err != nil {
			return nil, err
		}
		return func() predictor.Predictor { return predictor.NewSamplingCounting() }, nil
	case "timebased":
		if err := noArgs(e); err != nil {
			return nil, err
		}
		return func() predictor.Predictor { return predictor.NewTimeBased() }, nil
	case "sampler":
		cfg, err := samplerConfig(e)
		if err != nil {
			return nil, err
		}
		return func() predictor.Predictor { return predictor.NewSampler(cfg) }, nil
	case "skewed":
		cfg, err := skewedConfig(e)
		if err != nil {
			return nil, err
		}
		return func() predictor.Predictor { return predictor.NewSkewed(cfg) }, nil
	case "reuse":
		cfg, err := reuseConfig(e)
		if err != nil {
			return nil, err
		}
		return func() predictor.Predictor { return predictor.NewReuse(cfg) }, nil
	case "never":
		if err := noArgs(e); err != nil {
			return nil, err
		}
		return func() predictor.Predictor { return predictor.NewNever() }, nil
	}
	return nil, fmt.Errorf("exp: unknown predictor %q; registered predictors: %s",
		e.Name, strings.Join(PredictorNames(), ", "))
}

// samplerConfig applies a sampler expression's parameters over the
// paper's defaults and validates the result (NewSampler panics on
// geometry errors; user-supplied expressions must fail with an error
// instead).
func samplerConfig(e Expr) (predictor.SamplerConfig, error) {
	cfg := predictor.DefaultSamplerConfig()
	args := newArgs(e)
	var err error
	if cfg.UseSampler, err = args.Bool("sampling", cfg.UseSampler); err != nil {
		return cfg, err
	}
	if cfg.SamplerSets, err = args.Int("sets", cfg.SamplerSets); err != nil {
		return cfg, err
	}
	if cfg.SamplerAssoc, err = args.Int("assoc", cfg.SamplerAssoc); err != nil {
		return cfg, err
	}
	if cfg.Tables, err = args.Int("tables", cfg.Tables); err != nil {
		return cfg, err
	}
	if cfg.TableEntries, err = args.Int("entries", cfg.TableEntries); err != nil {
		return cfg, err
	}
	if cfg.Threshold, err = args.Int("threshold", cfg.Threshold); err != nil {
		return cfg, err
	}
	if err := args.finish(); err != nil {
		return cfg, err
	}
	if cfg.Tables < 1 || cfg.TableEntries < 2 || !mem.IsPow2(cfg.TableEntries) {
		return cfg, fmt.Errorf("exp: sampler: invalid tables %d x %d entries (need tables >= 1, entries a power of two >= 2)",
			cfg.Tables, cfg.TableEntries)
	}
	if cfg.UseSampler && (cfg.SamplerSets < 1 || cfg.SamplerAssoc < 1 || !mem.IsPow2(cfg.SamplerSets)) {
		return cfg, fmt.Errorf("exp: sampler: invalid geometry %d sets x %d ways (need assoc >= 1, sets a power of two >= 1)",
			cfg.SamplerSets, cfg.SamplerAssoc)
	}
	return cfg, nil
}

// skewedConfig applies a skewed expression's parameters over the
// defaults and validates the result (NewSkewed panics on geometry
// errors; user-supplied expressions must fail with an error instead).
func skewedConfig(e Expr) (predictor.SkewedConfig, error) {
	cfg := predictor.DefaultSkewedConfig()
	args := newArgs(e)
	var err error
	if cfg.SamplerSets, err = args.Int("sets", cfg.SamplerSets); err != nil {
		return cfg, err
	}
	if cfg.SamplerAssoc, err = args.Int("assoc", cfg.SamplerAssoc); err != nil {
		return cfg, err
	}
	if cfg.Tables, err = args.Int("tables", cfg.Tables); err != nil {
		return cfg, err
	}
	if cfg.TableEntries, err = args.Int("entries", cfg.TableEntries); err != nil {
		return cfg, err
	}
	if cfg.TagBits, err = args.Int("tags", cfg.TagBits); err != nil {
		return cfg, err
	}
	if cfg.Threshold, err = args.Int("threshold", cfg.Threshold); err != nil {
		return cfg, err
	}
	if err := args.finish(); err != nil {
		return cfg, err
	}
	if cfg.Tables < 1 || cfg.TableEntries < 2 || !mem.IsPow2(cfg.TableEntries) {
		return cfg, fmt.Errorf("exp: skewed: invalid tables %d x %d entries (need tables >= 1, entries a power of two >= 2)",
			cfg.Tables, cfg.TableEntries)
	}
	if cfg.TagBits < 1 || cfg.TagBits > 15 {
		return cfg, fmt.Errorf("exp: skewed: tag width %d outside [1, 15] bits", cfg.TagBits)
	}
	if cfg.SamplerSets < 1 || cfg.SamplerAssoc < 1 || !mem.IsPow2(cfg.SamplerSets) {
		return cfg, fmt.Errorf("exp: skewed: invalid sampler geometry %d sets x %d ways (need assoc >= 1, sets a power of two >= 1)",
			cfg.SamplerSets, cfg.SamplerAssoc)
	}
	return cfg, nil
}

// reuseConfig applies a reuse expression's parameters over the defaults
// and validates the result.
func reuseConfig(e Expr) (predictor.ReuseConfig, error) {
	cfg := predictor.DefaultReuseConfig()
	args := newArgs(e)
	var err error
	if cfg.Tables, err = args.Int("tables", cfg.Tables); err != nil {
		return cfg, err
	}
	if cfg.TableEntries, err = args.Int("entries", cfg.TableEntries); err != nil {
		return cfg, err
	}
	if cfg.Threshold, err = args.Int("threshold", cfg.Threshold); err != nil {
		return cfg, err
	}
	if err := args.finish(); err != nil {
		return cfg, err
	}
	if cfg.Tables < 1 || cfg.TableEntries < 2 || !mem.IsPow2(cfg.TableEntries) {
		return cfg, fmt.Errorf("exp: reuse: invalid tables %d x %d entries (need tables >= 1, entries a power of two >= 2)",
			cfg.Tables, cfg.TableEntries)
	}
	if cfg.Threshold < 1 || cfg.Threshold > 3*cfg.Tables {
		return cfg, fmt.Errorf("exp: reuse: threshold %d outside [1, %d]", cfg.Threshold, 3*cfg.Tables)
	}
	return cfg, nil
}

// shipConfig applies a ship expression's parameters over the defaults
// and validates the result.
func shipConfig(e Expr) (ship.Config, error) {
	cfg := ship.DefaultConfig()
	args := newArgs(e)
	var err error
	if cfg.SigBits, err = args.Int("sigbits", cfg.SigBits); err != nil {
		return cfg, err
	}
	if cfg.CounterMax, err = args.Int("max", cfg.CounterMax); err != nil {
		return cfg, err
	}
	if cfg.Init, err = args.Int("init", cfg.Init); err != nil {
		return cfg, err
	}
	if cfg.SampledSets, err = args.Int("samples", cfg.SampledSets); err != nil {
		return cfg, err
	}
	trainTok, _, err := args.leaf("train")
	if err != nil {
		return cfg, err
	}
	switch trainTok {
	case "", "all":
		cfg.Train = ship.TrainAll
	case "sampled":
		cfg.Train = ship.TrainSampled
	case "off":
		cfg.Train = ship.TrainOff
	default:
		return cfg, fmt.Errorf("exp: ship: train=%q is not one of sampled, all, off", trainTok)
	}
	if err := args.finish(); err != nil {
		return cfg, err
	}
	if cfg.SigBits < 1 || cfg.SigBits > 24 {
		return cfg, fmt.Errorf("exp: ship: signature width %d outside [1, 24] bits", cfg.SigBits)
	}
	if cfg.CounterMax < 1 || cfg.CounterMax > 255 {
		return cfg, fmt.Errorf("exp: ship: counter max %d outside [1, 255]", cfg.CounterMax)
	}
	if cfg.Init < 0 || cfg.Init > cfg.CounterMax {
		return cfg, fmt.Errorf("exp: ship: initial counter %d outside [0, %d]", cfg.Init, cfg.CounterMax)
	}
	if cfg.SampledSets < 1 || !mem.IsPow2(cfg.SampledSets) {
		return cfg, fmt.Errorf("exp: ship: sampled-set count %d must be a power of two >= 1", cfg.SampledSets)
	}
	return cfg, nil
}

// SamplerExpr renders a sampler configuration as the canonical
// expression, emitting only parameters that differ from the paper's
// DefaultSamplerConfig (so the default renders as the bare "sampler").
// Sampler geometry is omitted when sampling=false (it is unused there).
func SamplerExpr(cfg predictor.SamplerConfig) string {
	def := predictor.DefaultSamplerConfig()
	var args []string
	add := func(key string, v, d int) {
		if v != d {
			args = append(args, fmt.Sprintf("%s=%d", key, v))
		}
	}
	if cfg.UseSampler != def.UseSampler {
		args = append(args, fmt.Sprintf("sampling=%v", cfg.UseSampler))
	}
	if cfg.UseSampler {
		add("sets", cfg.SamplerSets, def.SamplerSets)
		add("assoc", cfg.SamplerAssoc, def.SamplerAssoc)
	}
	add("tables", cfg.Tables, def.Tables)
	add("entries", cfg.TableEntries, def.TableEntries)
	add("threshold", cfg.Threshold, def.Threshold)
	if len(args) == 0 {
		return "sampler"
	}
	return "sampler(" + strings.Join(args, ",") + ")"
}

// NewPredictor resolves a predictor expression ("sampler(threshold=6)",
// "counting") and builds one instance.
func NewPredictor(expr string) (predictor.Predictor, error) {
	e, err := ParseExpr(expr)
	if err != nil {
		return nil, err
	}
	mk, err := buildPredictor(e)
	if err != nil {
		return nil, err
	}
	return mk(), nil
}

// MustPredictor is NewPredictor for package-literal expressions.
func MustPredictor(expr string) predictor.Predictor {
	p, err := NewPredictor(expr)
	if err != nil {
		panic(err)
	}
	return p
}

// DBRBFactory resolves a preset name or expression whose root is a
// dbrb wrapper into a typed factory, for callers that need the
// dead-block policy's own interface (the victim-cache study consumes
// its predictions directly).
func DBRBFactory(nameOrExpr string) (func() *dbrb.Policy, error) {
	exprStr := nameOrExpr
	if p, ok := presetByName(nameOrExpr); ok {
		exprStr = p.Expr
	}
	e, err := ParseExpr(exprStr)
	if err != nil {
		return nil, err
	}
	if e.Name != "dbrb" {
		return nil, fmt.Errorf("exp: %q is not a dbrb policy", nameOrExpr)
	}
	args := newArgs(e)
	mkBase, err := buildPolicy(args.Sub("base", "lru"))
	if err != nil {
		return nil, err
	}
	mkPred, err := buildPredictor(args.Sub("pred", "sampler"))
	if err != nil {
		return nil, err
	}
	if err := args.finish(); err != nil {
		return nil, err
	}
	return func() *dbrb.Policy { return dbrb.New(mkBase(1), mkPred()) }, nil
}

// MustDBRBFactory is DBRBFactory for package-literal expressions.
func MustDBRBFactory(nameOrExpr string) func() *dbrb.Policy {
	mk, err := DBRBFactory(nameOrExpr)
	if err != nil {
		panic(err)
	}
	return mk
}

// Geometry resolves a cache geometry expression — llc(mb=4),
// llc(kb=512,ways=8) — into a cache configuration. Exactly one of mb
// and kb sizes the cache; ways defaults to the paper's 16.
func Geometry(expr string) (cache.Config, error) {
	e, err := ParseExpr(expr)
	if err != nil {
		return cache.Config{}, err
	}
	if e.Name != "llc" {
		return cache.Config{}, fmt.Errorf("exp: unknown geometry %q (want llc(mb=N) or llc(kb=N))", e.Name)
	}
	args := newArgs(e)
	mb, err := args.Int("mb", 0)
	if err != nil {
		return cache.Config{}, err
	}
	kb, err := args.Int("kb", 0)
	if err != nil {
		return cache.Config{}, err
	}
	ways, err := args.Int("ways", 16)
	if err != nil {
		return cache.Config{}, err
	}
	if err := args.finish(); err != nil {
		return cache.Config{}, err
	}
	if (mb > 0) == (kb > 0) {
		return cache.Config{}, fmt.Errorf("exp: llc needs exactly one of mb and kb (got mb=%d, kb=%d)", mb, kb)
	}
	size := mb << 20
	if kb > 0 {
		size = kb << 10
	}
	if ways < 1 {
		return cache.Config{}, fmt.Errorf("exp: llc ways must be >= 1 (got %d)", ways)
	}
	cfg := cache.Config{Name: "LLC", SizeBytes: size, Ways: ways}
	if sets := cfg.Sets(); sets < 1 || !mem.IsPow2(sets) {
		return cache.Config{}, fmt.Errorf("exp: llc geometry %s yields %d sets; need a positive power of two", expr, sets)
	}
	return cfg, nil
}

// MustGeometry is Geometry for package-literal expressions.
func MustGeometry(expr string) cache.Config {
	cfg, err := Geometry(expr)
	if err != nil {
		panic(err)
	}
	return cfg
}
