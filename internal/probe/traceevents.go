package probe

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
)

// Chrome trace-event export: the series rendered as a JSON object
// loadable in chrome://tracing and Perfetto (ui.perfetto.dev). Each
// run becomes one "process" (named after the benchmark) carrying
//
//   - counter tracks ("ph":"C") for miss rate, IPC, dead-prediction
//     rate and false-positive rate, one sample per interval, and
//   - one complete event ("ph":"X") per interval on a "intervals"
//     thread, so interval boundaries are visible as spans.
//
// Timestamps are in the trace format's microseconds, but simulated
// time has no wall clock: one "microsecond" is one retired
// instruction, so the timeline reads as instruction counts.

// traceEvent is one entry of the traceEvents array. Field order is the
// output order; args are emitted as ordered structs per event kind so
// the encoding is deterministic.
type traceEvent struct {
	Name string `json:"name"`
	Ph   string `json:"ph"`
	Pid  int    `json:"pid"`
	Tid  int    `json:"tid"`
	Ts   uint64 `json:"ts"`
	Dur  uint64 `json:"dur,omitempty"`
	Args any    `json:"args,omitempty"`
}

type nameArgs struct {
	Name string `json:"name"`
}

type valueArgs struct {
	Value float64 `json:"value"`
}

type intervalArgs struct {
	Instructions   uint64  `json:"instructions"`
	LLCAccesses    uint64  `json:"llc_accesses"`
	LLCMisses      uint64  `json:"llc_misses"`
	MissRate       float64 `json:"miss_rate"`
	IPC            float64 `json:"ipc"`
	DeadRate       float64 `json:"dead_rate"`
	FalsePositives uint64  `json:"false_positives"`
}

// counterTracks names the per-interval counter events and selects each
// one's value.
var counterTracks = []struct {
	name string
	val  func(Interval) float64
}{
	{"LLC miss rate", func(iv Interval) float64 { return iv.MissRate }},
	{"IPC", func(iv Interval) float64 { return iv.IPC }},
	{"dead prediction rate", func(iv Interval) float64 { return iv.DeadRate }},
	{"false positive rate", func(iv Interval) float64 { return iv.FPRate }},
}

// WriteTraceEvents writes the series as one Chrome trace-event JSON
// document. The output is deterministic for a given input.
func WriteTraceEvents(w io.Writer, series []Series) error {
	bw := bufio.NewWriter(w)
	if _, err := io.WriteString(bw, "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[\n"); err != nil {
		return err
	}
	first := true
	emit := func(ev traceEvent) error {
		b, err := json.Marshal(ev)
		if err != nil {
			return err
		}
		if !first {
			if _, err := io.WriteString(bw, ",\n"); err != nil {
				return err
			}
		}
		first = false
		_, err = bw.Write(b)
		return err
	}
	for pid := range series {
		s := &series[pid]
		if err := emit(traceEvent{
			Name: "process_name", Ph: "M", Pid: pid,
			Args: nameArgs{s.Run.Benchmark + " (" + s.Run.Policy + ")"},
		}); err != nil {
			return err
		}
		if err := emit(traceEvent{
			Name: "thread_name", Ph: "M", Pid: pid,
			Args: nameArgs{"intervals"},
		}); err != nil {
			return err
		}
		for _, iv := range s.Intervals {
			start := iv.Instructions - iv.DInstructions
			if err := emit(traceEvent{
				Name: fmt.Sprintf("interval %d", iv.Index),
				Ph:   "X", Pid: pid, Ts: start, Dur: iv.DInstructions,
				Args: intervalArgs{
					Instructions:   iv.Instructions,
					LLCAccesses:    iv.DAccesses,
					LLCMisses:      iv.DMisses,
					MissRate:       iv.MissRate,
					IPC:            iv.IPC,
					DeadRate:       iv.DeadRate,
					FalsePositives: iv.DFalsePositives,
				},
			}); err != nil {
				return err
			}
			for _, tr := range counterTracks {
				if err := emit(traceEvent{
					Name: tr.name, Ph: "C", Pid: pid, Ts: iv.Instructions,
					Args: valueArgs{tr.val(iv)},
				}); err != nil {
					return err
				}
			}
		}
	}
	if _, err := io.WriteString(bw, "\n]}\n"); err != nil {
		return err
	}
	return bw.Flush()
}
