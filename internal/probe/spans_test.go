package probe

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
	"time"

	"sdbp/internal/obs"
)

func sampleSpans() []obs.SpanRecord {
	t0 := time.Date(2026, 8, 8, 12, 0, 0, 0, time.UTC)
	return []obs.SpanRecord{
		{TraceID: "t2", ID: "9", Name: "job", Start: t0,
			Duration: 5 * time.Millisecond, Attrs: map[string]string{"addr": "def"}},
		{TraceID: "t1", ID: "1", Name: "job", Start: t0,
			Duration: 10 * time.Millisecond, Attrs: map[string]string{"addr": "abc"}},
		{TraceID: "t1", ID: "2", Name: "stage:decode", Parent: "1",
			Start: t0.Add(time.Millisecond), Duration: 2 * time.Millisecond},
		{TraceID: "t1", ID: "3", Name: "stage:execute", Parent: "1",
			Start: t0.Add(3 * time.Millisecond), Duration: 6 * time.Millisecond},
	}
}

func TestWriteSpanTraceEventsShape(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteSpanTraceEvents(&buf, sampleSpans()); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []struct {
			Name string `json:"name"`
			Ph   string `json:"ph"`
			Pid  int    `json:"pid"`
			Ts   uint64 `json:"ts"`
			Dur  uint64 `json:"dur"`
			Args struct {
				Name   string            `json:"name"`
				Span   string            `json:"span"`
				Parent string            `json:"parent"`
				Attrs  map[string]string `json:"attrs"`
			} `json:"args"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("output is not valid JSON: %v\n%s", err, buf.String())
	}
	// Two traces → two processes, sorted by trace ID: t1 is pid 0.
	var procs []string
	spansByPid := map[int]int{}
	for _, ev := range doc.TraceEvents {
		if ev.Ph == "M" && ev.Name == "process_name" {
			procs = append(procs, ev.Args.Name)
		}
		if ev.Ph == "X" {
			spansByPid[ev.Pid]++
		}
	}
	if len(procs) != 2 || procs[0] != "trace t1" || procs[1] != "trace t2" {
		t.Errorf("processes = %v, want [trace t1, trace t2]", procs)
	}
	if spansByPid[0] != 3 || spansByPid[1] != 1 {
		t.Errorf("span events per pid = %v, want {0:3, 1:1}", spansByPid)
	}
	// t1's decode span: 1ms offset from the trace epoch, 2ms wide,
	// parented to the root.
	for _, ev := range doc.TraceEvents {
		if ev.Ph == "X" && ev.Name == "stage:decode" {
			if ev.Ts != 1000 || ev.Dur != 2000 || ev.Args.Parent != "1" {
				t.Errorf("decode event = ts %d dur %d parent %q", ev.Ts, ev.Dur, ev.Args.Parent)
			}
		}
		if ev.Ph == "X" && ev.Name == "job" && ev.Pid == 0 {
			if ev.Ts != 0 || ev.Args.Attrs["addr"] != "abc" {
				t.Errorf("root event = ts %d attrs %v", ev.Ts, ev.Args.Attrs)
			}
		}
	}
	// Determinism: same input, identical bytes.
	var again bytes.Buffer
	WriteSpanTraceEvents(&again, sampleSpans())
	if !bytes.Equal(buf.Bytes(), again.Bytes()) {
		t.Error("two exports of the same spans differ")
	}
}

func TestWriteSpanTraceEventsZeroDuration(t *testing.T) {
	var buf bytes.Buffer
	err := WriteSpanTraceEvents(&buf, []obs.SpanRecord{
		{TraceID: "t1", ID: "1", Name: "instant", Start: time.Unix(0, 0)},
	})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), `"dur":1`) {
		t.Errorf("zero-duration span not widened to 1us:\n%s", buf.String())
	}
}

func TestWriteSpanTraceEventsEmpty(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteSpanTraceEvents(&buf, nil); err != nil {
		t.Fatal(err)
	}
	if !json.Valid(buf.Bytes()) {
		t.Errorf("empty export is not valid JSON: %s", buf.String())
	}
}
