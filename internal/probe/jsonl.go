package probe

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"io"
)

// The interval JSONL stream is a flat sequence of newline-delimited
// JSON objects, each tagged with a "type" member:
//
//	{"type":"run", ...Run fields...}       one per simulated run, first
//	{"type":"interval", ...Interval...}    the run's time series, in order
//	{"type":"pc", ...PCRow...}             the run's per-PC table, in order
//
// Runs appear back to back; a run's interval and pc lines follow its
// run line and precede the next run line. The format is append-only
// and greppable; EXPERIMENTS.md documents the field schema.

type runLine struct {
	Type string `json:"type"`
	Run
}

type intervalLine struct {
	Type string `json:"type"`
	Interval
}

type pcLine struct {
	Type string `json:"type"`
	PCRow
}

// WriteJSONL writes the series to w in the tagged-line format. The
// output is deterministic: field order follows the struct definitions
// and series are written in the order given.
func WriteJSONL(w io.Writer, series []Series) error {
	bw := bufio.NewWriter(w)
	enc := json.NewEncoder(bw)
	for i := range series {
		s := &series[i]
		if err := enc.Encode(runLine{"run", s.Run}); err != nil {
			return err
		}
		for _, iv := range s.Intervals {
			if err := enc.Encode(intervalLine{"interval", iv}); err != nil {
				return err
			}
		}
		for _, pc := range s.PCs {
			if err := enc.Encode(pcLine{"pc", pc}); err != nil {
				return err
			}
		}
	}
	return bw.Flush()
}

// MarshalJSONL renders the series as JSONL bytes.
func MarshalJSONL(series []Series) ([]byte, error) {
	var buf bytes.Buffer
	if err := WriteJSONL(&buf, series); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

// ReadJSONL parses a tagged-line stream back into grouped series. It
// rejects interval or pc lines that precede any run line, unknown
// types, and malformed JSON, identifying the offending line number.
func ReadJSONL(r io.Reader) ([]Series, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64<<10), 16<<20)
	var out []Series
	lineno := 0
	for sc.Scan() {
		lineno++
		line := bytes.TrimSpace(sc.Bytes())
		if len(line) == 0 {
			continue
		}
		var tag struct {
			Type string `json:"type"`
		}
		if err := json.Unmarshal(line, &tag); err != nil {
			return nil, fmt.Errorf("probe: line %d: %w", lineno, err)
		}
		switch tag.Type {
		case "run":
			var rl runLine
			if err := json.Unmarshal(line, &rl); err != nil {
				return nil, fmt.Errorf("probe: line %d: %w", lineno, err)
			}
			out = append(out, Series{Run: rl.Run})
		case "interval":
			if len(out) == 0 {
				return nil, fmt.Errorf("probe: line %d: interval record before any run record", lineno)
			}
			var il intervalLine
			if err := json.Unmarshal(line, &il); err != nil {
				return nil, fmt.Errorf("probe: line %d: %w", lineno, err)
			}
			s := &out[len(out)-1]
			s.Intervals = append(s.Intervals, il.Interval)
		case "pc":
			if len(out) == 0 {
				return nil, fmt.Errorf("probe: line %d: pc record before any run record", lineno)
			}
			var pl pcLine
			if err := json.Unmarshal(line, &pl); err != nil {
				return nil, fmt.Errorf("probe: line %d: %w", lineno, err)
			}
			s := &out[len(out)-1]
			s.PCs = append(s.PCs, pl.PCRow)
		default:
			return nil, fmt.Errorf("probe: line %d: unknown record type %q", lineno, tag.Type)
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return out, nil
}
