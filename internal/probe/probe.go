// Package probe holds the microarchitectural introspection records the
// simulator emits when interval telemetry is enabled: a deterministic
// time series of per-interval deltas (miss rate, IPC, dead-prediction
// rate, false-positive rate every N retired instructions) and a per-PC
// death-attribution table, plus the exporters that turn them into
// interval JSONL and Chrome trace-event JSON (chrome://tracing /
// Perfetto).
//
// The package is pure data plus encoding: it depends only on the
// standard library, every encoder is deterministic (struct-ordered
// fields, no timestamps, no map iteration in output order), and every
// float it serializes is finite by construction, so encoding can never
// fail on values the simulator produces.
package probe

import "strconv"

// Config enables and shapes introspection for a simulation run.
type Config struct {
	// Interval is the telemetry granularity in retired instructions; an
	// interval record is emitted each time the instruction count crosses
	// a multiple of it. 0 disables interval telemetry entirely.
	Interval uint64
	// TopK bounds the exported per-PC attribution table: the TopK PCs
	// by dead verdicts are kept as rows and the remainder is rolled into
	// a single "other" row so table sums still reconcile exactly with
	// the run's aggregate accuracy counters. 0 means DefaultTopK.
	TopK int
}

// DefaultTopK is the per-PC table size used when Config.TopK is 0.
const DefaultTopK = 20

// TopKOrDefault returns the effective table bound.
func (c Config) TopKOrDefault() int {
	if c.TopK <= 0 {
		return DefaultTopK
	}
	return c.TopK
}

// Enabled reports whether the configuration asks for any telemetry.
func (c Config) Enabled() bool { return c.Interval > 0 }

// Run is one simulated run's telemetry header: identity, granularity
// and end-of-run aggregates. The aggregates let a reader reconcile the
// interval deltas and per-PC rows that follow it without re-running the
// simulation: interval deltas sum to the totals, and the PC table's
// prediction columns sum to the accuracy totals.
type Run struct {
	// Benchmark and Policy identify the run.
	Benchmark string `json:"benchmark"`
	Policy    string `json:"policy"`
	// Interval is the telemetry granularity in retired instructions.
	Interval uint64 `json:"interval"`
	// Instructions and Cycles are the run's totals.
	Instructions uint64 `json:"instructions"`
	Cycles       uint64 `json:"cycles"`
	// IPC is the run's aggregate instructions per cycle.
	IPC float64 `json:"ipc"`
	// Accesses, Misses and Evictions are the LLC's run totals.
	Accesses  uint64 `json:"llc_accesses"`
	Misses    uint64 `json:"llc_misses"`
	Evictions uint64 `json:"llc_evictions"`
	// Predictions, Positives and FalsePositives are the run's aggregate
	// dbrb.Accuracy counters (all zero for non-DBRB policies).
	Predictions    uint64 `json:"predictions"`
	Positives      uint64 `json:"positives"`
	FalsePositives uint64 `json:"false_positives"`
}

// Interval is one telemetry interval's deltas and derived rates. All
// delta fields cover the half-open instruction range
// (Instructions-DInstructions, Instructions]; the final interval of a
// run may be shorter than Config.Interval.
type Interval struct {
	// Index numbers intervals from 0 within one run.
	Index int `json:"index"`
	// Instructions is the cumulative retired-instruction count at the
	// interval's end.
	Instructions uint64 `json:"instructions"`
	// DInstructions and DCycles are the interval's instruction and
	// cycle deltas.
	DInstructions uint64 `json:"d_instructions"`
	DCycles       uint64 `json:"d_cycles"`
	// IPC is DInstructions/DCycles (0 when DCycles is 0).
	IPC float64 `json:"ipc"`
	// DAccesses..DEvictions are the LLC's cache.Stats deltas.
	DAccesses  uint64 `json:"d_llc_accesses"`
	DHits      uint64 `json:"d_llc_hits"`
	DMisses    uint64 `json:"d_llc_misses"`
	DBypasses  uint64 `json:"d_llc_bypasses"`
	DEvictions uint64 `json:"d_llc_evictions"`
	// MissRate is DMisses/DAccesses (0 when the interval saw no LLC
	// traffic).
	MissRate float64 `json:"miss_rate"`
	// DPredictions, DPositives and DFalsePositives are the
	// dbrb.Accuracy deltas (zero for non-DBRB policies).
	DPredictions    uint64 `json:"d_predictions"`
	DPositives      uint64 `json:"d_positives"`
	DFalsePositives uint64 `json:"d_false_positives"`
	// DeadRate is DPositives/DPredictions and FPRate is
	// DFalsePositives/DPredictions (0 when no predictions were made).
	DeadRate float64 `json:"dead_rate"`
	FPRate   float64 `json:"fp_rate"`
}

// ComputeRates fills the derived-rate fields from the delta counters,
// guarding every division so the results are always finite — the
// invariant the JSON encoders rely on.
func (iv *Interval) ComputeRates() {
	iv.IPC = ratio(iv.DInstructions, iv.DCycles)
	iv.MissRate = ratio(iv.DMisses, iv.DAccesses)
	iv.DeadRate = ratio(iv.DPositives, iv.DPredictions)
	iv.FPRate = ratio(iv.DFalsePositives, iv.DPredictions)
}

func ratio(num, den uint64) float64 {
	if den == 0 {
		return 0
	}
	return float64(num) / float64(den)
}

// PCRow is one program counter's attribution row: how much of the
// run's dead-block activity traces back to that code site. Rows are
// exported in deterministic order (dead verdicts descending, PC
// ascending) with at most Config.TopK named rows; the rest aggregate
// into one row with Other set.
type PCRow struct {
	// PC is the program counter, as a 0x-prefixed hex string so 64-bit
	// values survive JSON readers that parse numbers as float64.
	PC string `json:"pc"`
	// Other marks the rollup row aggregating every PC beyond the top K.
	Other bool `json:"other,omitempty"`
	// Predictions, Positives and FalsePositives partition the run's
	// aggregate dbrb.Accuracy counters by PC: predictions and dead
	// verdicts are attributed to the PC of the access predicted on,
	// false positives to the PC whose prediction set the standing dead
	// bit.
	Predictions    uint64 `json:"predictions"`
	Positives      uint64 `json:"positives"`
	FalsePositives uint64 `json:"false_positives"`
	// Evictions counts evictions of blocks this PC filled.
	Evictions uint64 `json:"evictions"`
}

// PCHex formats a program counter as the 0x-prefixed hex string used
// in PCRow.PC.
func PCHex(pc uint64) string { return "0x" + strconv.FormatUint(pc, 16) }

// Series is one run's complete telemetry: header, interval time series
// and per-PC table. A JSONL stream is a flat sequence of tagged
// records; Series is the grouped in-memory form.
type Series struct {
	Run       Run        `json:"run"`
	Intervals []Interval `json:"intervals"`
	PCs       []PCRow    `json:"pcs"`
}

// PCTotals sums the per-PC table's attribution columns. For a
// well-formed series they equal the Run header's aggregate accuracy
// counters (the acceptance reconciliation).
func (s *Series) PCTotals() (predictions, positives, falsePositives, evictions uint64) {
	for _, r := range s.PCs {
		predictions += r.Predictions
		positives += r.Positives
		falsePositives += r.FalsePositives
		evictions += r.Evictions
	}
	return
}

// IntervalTotals sums the interval deltas. For a well-formed series
// the instruction and cycle sums equal the Run header's totals.
func (s *Series) IntervalTotals() (instructions, cycles, misses uint64) {
	for _, iv := range s.Intervals {
		instructions += iv.DInstructions
		cycles += iv.DCycles
		misses += iv.DMisses
	}
	return
}
