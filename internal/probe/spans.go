package probe

import (
	"bufio"
	"encoding/json"
	"io"
	"sort"

	"sdbp/internal/obs"
)

// Span export: obs.SpanRecord slices (a job trace from the sdbpd
// service, or a registry's section spans) rendered as the same Chrome
// trace-event JSON document as the interval series, so a job's
// decode → cache lookup → queue wait → run → store waterfall loads
// directly in chrome://tracing or Perfetto.
//
// Unlike the interval export, span timestamps are real wall-clock
// times; each trace's timeline starts at zero (microseconds since the
// trace's earliest span start), each distinct trace ID becomes one
// process, and nesting falls out of the start/duration containment on
// a single thread.

// spanArgs carries a span's identity and attributes into the trace
// viewer. encoding/json sorts the attribute map's keys, so output is
// deterministic.
type spanArgs struct {
	Span   string            `json:"span"`
	Parent string            `json:"parent,omitempty"`
	Attrs  map[string]string `json:"attrs,omitempty"`
}

// WriteSpanTraceEvents writes the spans as one Chrome trace-event JSON
// document. Spans are grouped by trace ID (one process per trace, in
// sorted trace-ID order; records with an empty trace ID form their own
// group) and ordered deterministically within a group by (start, name,
// id). The output is byte-stable for a given input.
func WriteSpanTraceEvents(w io.Writer, spans []obs.SpanRecord) error {
	byTrace := map[string][]obs.SpanRecord{}
	for _, sp := range spans {
		byTrace[sp.TraceID] = append(byTrace[sp.TraceID], sp)
	}
	traceIDs := make([]string, 0, len(byTrace))
	for id := range byTrace {
		traceIDs = append(traceIDs, id)
	}
	sort.Strings(traceIDs)

	bw := bufio.NewWriter(w)
	if _, err := io.WriteString(bw, "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[\n"); err != nil {
		return err
	}
	first := true
	emit := func(ev traceEvent) error {
		b, err := json.Marshal(ev)
		if err != nil {
			return err
		}
		if !first {
			if _, err := io.WriteString(bw, ",\n"); err != nil {
				return err
			}
		}
		first = false
		_, err = bw.Write(b)
		return err
	}
	for pid, id := range traceIDs {
		group := byTrace[id]
		sort.SliceStable(group, func(i, j int) bool {
			if !group[i].Start.Equal(group[j].Start) {
				return group[i].Start.Before(group[j].Start)
			}
			if group[i].Name != group[j].Name {
				return group[i].Name < group[j].Name
			}
			return group[i].ID < group[j].ID
		})
		name := id
		if name == "" {
			name = "spans"
		}
		if err := emit(traceEvent{
			Name: "process_name", Ph: "M", Pid: pid,
			Args: nameArgs{"trace " + name},
		}); err != nil {
			return err
		}
		if err := emit(traceEvent{
			Name: "thread_name", Ph: "M", Pid: pid,
			Args: nameArgs{"spans"},
		}); err != nil {
			return err
		}
		epoch := group[0].Start
		for _, sp := range group {
			dur := uint64(sp.Duration.Microseconds())
			if dur == 0 {
				dur = 1 // zero-width spans are invisible in the viewer
			}
			if err := emit(traceEvent{
				Name: sp.Name, Ph: "X", Pid: pid,
				Ts:  uint64(sp.Start.Sub(epoch).Microseconds()),
				Dur: dur,
				Args: spanArgs{
					Span: sp.ID, Parent: sp.Parent, Attrs: sp.Attrs,
				},
			}); err != nil {
				return err
			}
		}
	}
	if _, err := io.WriteString(bw, "\n]}\n"); err != nil {
		return err
	}
	return bw.Flush()
}
