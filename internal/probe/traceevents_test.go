package probe

import (
	"bytes"
	"encoding/json"
	"flag"
	"os"
	"path/filepath"
	"testing"
)

var update = flag.Bool("update", false, "rewrite testdata golden files from this run")

// TestTraceEventsGolden pins the Chrome trace-event encoder's exact
// output for the sample fixture. Regenerate after an intentional format
// change with
//
//	go test ./internal/probe -run TestTraceEventsGolden -update
func TestTraceEventsGolden(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteTraceEvents(&buf, sampleSeries()); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join("testdata", "trace_events_golden.json")
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("%v (regenerate with -update)", err)
	}
	if !bytes.Equal(buf.Bytes(), want) {
		t.Errorf("trace-event output differs from golden %s\ngot:\n%s\nwant:\n%s",
			path, buf.Bytes(), want)
	}
}

// TestTraceEventsWellFormed checks the structural contract Perfetto and
// chrome://tracing rely on: a single JSON object with a traceEvents
// array whose spans and counters are consistent with the input series.
func TestTraceEventsWellFormed(t *testing.T) {
	series := sampleSeries()
	var buf bytes.Buffer
	if err := WriteTraceEvents(&buf, series); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		DisplayTimeUnit string `json:"displayTimeUnit"`
		TraceEvents     []struct {
			Name string          `json:"name"`
			Ph   string          `json:"ph"`
			Pid  int             `json:"pid"`
			Ts   uint64          `json:"ts"`
			Dur  uint64          `json:"dur"`
			Args json.RawMessage `json:"args"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("trace output is not valid JSON: %v", err)
	}
	nIntervals := 0
	for _, s := range series {
		nIntervals += len(s.Intervals)
	}
	// Per series: process_name + thread_name metadata; per interval: one
	// X span plus one C event per counter track.
	want := 2*len(series) + nIntervals*(1+len(counterTracks))
	if len(doc.TraceEvents) != want {
		t.Errorf("%d trace events, want %d", len(doc.TraceEvents), want)
	}
	spans, counters, meta := 0, 0, 0
	for _, ev := range doc.TraceEvents {
		switch ev.Ph {
		case "X":
			spans++
		case "C":
			counters++
		case "M":
			meta++
		default:
			t.Errorf("unexpected phase %q in event %q", ev.Ph, ev.Name)
		}
		if ev.Pid < 0 || ev.Pid >= len(series) {
			t.Errorf("event %q has pid %d outside the series range", ev.Name, ev.Pid)
		}
	}
	if spans != nIntervals || counters != nIntervals*len(counterTracks) || meta != 2*len(series) {
		t.Errorf("span/counter/meta counts = %d/%d/%d, want %d/%d/%d",
			spans, counters, meta, nIntervals, nIntervals*len(counterTracks), 2*len(series))
	}
}
