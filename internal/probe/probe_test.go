package probe

import (
	"bytes"
	"math"
	"reflect"
	"strings"
	"testing"
)

// sampleSeries builds a small two-run fixture exercising every record
// type, including the "other" rollup row and a zero-traffic interval.
func sampleSeries() []Series {
	iv0 := Interval{
		Index: 0, Instructions: 100_000,
		DInstructions: 100_000, DCycles: 250_000,
		DAccesses: 4000, DHits: 2500, DMisses: 1500, DBypasses: 300, DEvictions: 1100,
		DPredictions: 4000, DPositives: 900, DFalsePositives: 25,
	}
	iv0.ComputeRates()
	iv1 := Interval{Index: 1, Instructions: 160_000, DInstructions: 60_000, DCycles: 90_000}
	iv1.ComputeRates()
	run := Series{
		Run: Run{
			Benchmark: "456.hmmer", Policy: "Sampler DBRB/LRU", Interval: 100_000,
			Instructions: 160_000, Cycles: 340_000, IPC: 160_000.0 / 340_000,
			Accesses: 4000, Misses: 1500, Evictions: 1100,
			Predictions: 4000, Positives: 900, FalsePositives: 25,
		},
		Intervals: []Interval{iv0, iv1},
		PCs: []PCRow{
			{PC: "0x4000a0", Predictions: 2600, Positives: 700, FalsePositives: 5, Evictions: 600},
			{PC: "0x4000b8", Predictions: 1000, Positives: 200, FalsePositives: 20, Evictions: 400},
			{PC: "0x0", Other: true, Predictions: 400, Positives: 0, FalsePositives: 0, Evictions: 100},
		},
	}
	lru := Series{
		Run: Run{Benchmark: "429.mcf", Policy: "LRU", Interval: 100_000,
			Instructions: 50_000, Cycles: 200_000, IPC: 0.25,
			Accesses: 900, Misses: 800, Evictions: 700},
		Intervals: []Interval{{Index: 0, Instructions: 50_000, DInstructions: 50_000,
			DCycles: 200_000, DAccesses: 900, DHits: 100, DMisses: 800, DEvictions: 700,
			IPC: 0.25, MissRate: 800.0 / 900}},
	}
	return []Series{run, lru}
}

func TestJSONLRoundTrip(t *testing.T) {
	in := sampleSeries()
	b, err := MarshalJSONL(in)
	if err != nil {
		t.Fatal(err)
	}
	out, err := ReadJSONL(bytes.NewReader(b))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(in, out) {
		t.Errorf("round trip changed the series:\nin:  %+v\nout: %+v", in, out)
	}
	// The encoding is deterministic: a second marshal is byte-identical.
	b2, err := MarshalJSONL(in)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(b, b2) {
		t.Error("two marshals of the same series differ")
	}
}

func TestReadJSONLRejectsMalformedStreams(t *testing.T) {
	cases := map[string]string{
		"orphan interval": `{"type":"interval","index":0}`,
		"orphan pc":       `{"type":"pc","pc":"0x1"}`,
		"unknown type":    `{"type":"bogus"}`,
		"bad json":        `{"type":`,
	}
	for name, in := range cases {
		if _, err := ReadJSONL(strings.NewReader(in)); err == nil {
			t.Errorf("%s: ReadJSONL accepted %q", name, in)
		}
	}
	// Blank lines are tolerated (hand-edited or concatenated files).
	if _, err := ReadJSONL(strings.NewReader("\n\n{\"type\":\"run\"}\n\n")); err != nil {
		t.Errorf("blank lines rejected: %v", err)
	}
}

func TestComputeRatesAlwaysFinite(t *testing.T) {
	cases := []Interval{
		{},
		{DInstructions: math.MaxUint64, DCycles: 1},
		{DMisses: math.MaxUint64, DAccesses: math.MaxUint64},
		{DPositives: math.MaxUint64},
		{DPredictions: math.MaxUint64},
	}
	for i, iv := range cases {
		iv.ComputeRates()
		for name, v := range map[string]float64{
			"ipc": iv.IPC, "miss_rate": iv.MissRate, "dead_rate": iv.DeadRate, "fp_rate": iv.FPRate,
		} {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				t.Errorf("case %d: %s = %v, want finite", i, name, v)
			}
		}
	}
}

func TestSeriesTotals(t *testing.T) {
	s := sampleSeries()[0]
	pred, pos, fp, ev := s.PCTotals()
	if pred != s.Run.Predictions || pos != s.Run.Positives || fp != s.Run.FalsePositives {
		t.Errorf("PC totals (%d,%d,%d) do not reconcile with run aggregates (%d,%d,%d)",
			pred, pos, fp, s.Run.Predictions, s.Run.Positives, s.Run.FalsePositives)
	}
	if ev != 1100 {
		t.Errorf("eviction total = %d, want 1100", ev)
	}
	instr, cycles, misses := s.IntervalTotals()
	if instr != s.Run.Instructions || cycles != s.Run.Cycles || misses != s.Run.Misses {
		t.Errorf("interval totals (%d,%d,%d) do not reconcile with run aggregates (%d,%d,%d)",
			instr, cycles, misses, s.Run.Instructions, s.Run.Cycles, s.Run.Misses)
	}
}

func TestConfigDefaults(t *testing.T) {
	if (Config{}).Enabled() {
		t.Error("zero config reports enabled")
	}
	if !(Config{Interval: 1}).Enabled() {
		t.Error("interval=1 config reports disabled")
	}
	if got := (Config{}).TopKOrDefault(); got != DefaultTopK {
		t.Errorf("TopKOrDefault() = %d, want %d", got, DefaultTopK)
	}
	if got := (Config{TopK: 7}).TopKOrDefault(); got != 7 {
		t.Errorf("TopKOrDefault() = %d, want 7", got)
	}
}
