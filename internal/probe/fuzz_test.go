package probe

import (
	"bytes"
	"math"
	"reflect"
	"testing"
)

// FuzzJSONLRoundTrip feeds extreme counter values through the interval
// record constructor and the JSONL codec: the encoder must never fail
// (every derived rate is finite by construction, and uint64 counters
// must survive JSON exactly, including values above 2^53), decoding
// must never panic, and decode(encode(x)) must equal x.
func FuzzJSONLRoundTrip(f *testing.F) {
	f.Add(uint64(100_000), uint64(250_000), uint64(4000), uint64(1500),
		uint64(4000), uint64(900), uint64(25), uint64(3))
	f.Add(uint64(math.MaxUint64), uint64(math.MaxUint64), uint64(math.MaxUint64),
		uint64(math.MaxUint64), uint64(math.MaxUint64), uint64(math.MaxUint64),
		uint64(math.MaxUint64), uint64(math.MaxUint64))
	f.Add(uint64(0), uint64(0), uint64(0), uint64(0), uint64(0), uint64(0), uint64(0), uint64(0))
	f.Add(uint64(1)<<53+1, uint64(1)<<63, uint64(1), uint64(0), uint64(7), uint64(7), uint64(7), uint64(1))
	f.Fuzz(func(t *testing.T, instr, cycles, accesses, misses, preds, pos, fps, pcSeed uint64) {
		hits := accesses - misses // may wrap; the codec must not care
		iv := Interval{
			Index:         0,
			Instructions:  instr,
			DInstructions: instr,
			DCycles:       cycles,
			DAccesses:     accesses,
			DHits:         hits,
			DMisses:       misses,
			DBypasses:     misses / 2,
			DEvictions:    misses / 3,
			DPredictions:  preds,
			DPositives:    pos,
			DFalsePositives: fps,
		}
		iv.ComputeRates()
		in := []Series{{
			Run: Run{
				Benchmark: "fuzz", Policy: "fuzz DBRB/LRU", Interval: instr,
				Instructions: instr, Cycles: cycles,
				IPC:      ratio(instr, cycles),
				Accesses: accesses, Misses: misses, Evictions: misses / 3,
				Predictions: preds, Positives: pos, FalsePositives: fps,
			},
			Intervals: []Interval{iv},
			PCs: []PCRow{
				{PC: PCHex(pcSeed), Predictions: preds, Positives: pos, FalsePositives: fps, Evictions: misses / 3},
				{PC: "0x0", Other: true},
			},
		}}
		b, err := MarshalJSONL(in)
		if err != nil {
			t.Fatalf("encode failed: %v", err)
		}
		out, err := ReadJSONL(bytes.NewReader(b))
		if err != nil {
			t.Fatalf("decode failed: %v\njsonl:\n%s", err, b)
		}
		if !reflect.DeepEqual(in, out) {
			t.Fatalf("round trip changed the series\nin:  %+v\nout: %+v\njsonl:\n%s", in, out, b)
		}
		// The trace-event encoder must not fail or panic on the same
		// extremes either.
		if err := WriteTraceEvents(&bytes.Buffer{}, in); err != nil {
			t.Fatalf("trace-event encode failed: %v", err)
		}
	})
}

// FuzzReadJSONL throws arbitrary bytes at the decoder: it may reject
// them, but must never panic, and anything it accepts must re-encode
// and re-decode to the same value.
func FuzzReadJSONL(f *testing.F) {
	seed, _ := MarshalJSONL(sampleSeries())
	f.Add(seed)
	f.Add([]byte(`{"type":"run","benchmark":"x"}`))
	f.Add([]byte(`{"type":"interval"}`))
	f.Add([]byte("\n\n"))
	f.Fuzz(func(t *testing.T, data []byte) {
		series, err := ReadJSONL(bytes.NewReader(data))
		if err != nil {
			return
		}
		b, err := MarshalJSONL(series)
		if err != nil {
			// Hand-crafted input can smuggle NaN-producing floats into
			// rate fields via JSON numbers; those re-encode fine (JSON
			// can't express NaN), so an encode error here is a bug.
			t.Fatalf("accepted input failed to re-encode: %v", err)
		}
		again, err := ReadJSONL(bytes.NewReader(b))
		if err != nil {
			t.Fatalf("re-encoded output failed to decode: %v\njsonl:\n%s", err, b)
		}
		if !reflect.DeepEqual(series, again) {
			t.Fatalf("re-encode changed the series\nfirst:  %+v\nsecond: %+v", series, again)
		}
	})
}
