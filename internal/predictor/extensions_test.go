package predictor

import (
	"testing"

	"sdbp/internal/mem"
)

// --- Cache bursts predictor ---

func newBurstsUnderTest() *Bursts {
	b := NewBursts()
	b.Reset(llcSets, llcWays)
	return b
}

func TestBurstsMRUHitsAreFree(t *testing.T) {
	b := newBurstsUnderTest()
	b.OnFill(0, 0, mem.Access{PC: 0x10})
	sig := b.sig[0]
	// Repeated hits on the MRU block continue the burst: the signature
	// must not accumulate.
	for i := 0; i < 5; i++ {
		b.OnHit(0, 0, mem.Access{PC: 0x20})
	}
	if b.sig[0] != sig {
		t.Error("MRU hits extended the trace (bursts must coalesce)")
	}
}

func TestBurstsNewBurstOnMRUChange(t *testing.T) {
	b := newBurstsUnderTest()
	b.OnFill(0, 0, mem.Access{PC: 0x10})
	b.OnFill(0, 1, mem.Access{PC: 0x20}) // way 0 loses MRU: burst ends
	if b.inBurst[0] {
		t.Error("losing MRU did not close the burst")
	}
	want := traceSignature(0, uint64(pcSignature(0x10)))
	if b.sig[0] != want {
		t.Errorf("sig = %#x, want %#x", b.sig[0], want)
	}
}

func TestBurstsLearnsSingleBurstDeath(t *testing.T) {
	b := newBurstsUnderTest()
	const pc = 0x40
	for i := 0; i < 10; i++ {
		b.OnFill(0, 0, mem.Access{PC: pc})
		b.OnEvict(0, 0)
	}
	if !b.PredictArriving(0, mem.Access{PC: pc}) {
		t.Error("single-burst site not predicted dead on arrival")
	}
}

func TestBurstsRetouchTrainsLive(t *testing.T) {
	b := newBurstsUnderTest()
	const pc = 0x50
	for i := 0; i < 10; i++ {
		b.OnFill(0, 0, mem.Access{PC: pc})
		b.OnEvict(0, 0)
	}
	for i := 0; i < 10; i++ {
		b.OnFill(0, 0, mem.Access{PC: pc})
		b.OnFill(0, 1, mem.Access{PC: 0x99}) // close way 0's burst
		b.OnHit(0, 0, mem.Access{PC: 0x60})  // re-touch: trains live
	}
	if b.PredictArriving(0, mem.Access{PC: pc}) {
		t.Error("re-touched burst site still predicted dead")
	}
}

// --- Access interval predictor ---

func newAIPUnderTest() *AIP {
	p := NewAIP()
	p.Reset(llcSets, llcWays)
	return p
}

// aipGeneration runs one block generation: fill, then hits separated by
// gap set-accesses, then eviction.
func aipGeneration(p *AIP, a mem.Access, hits, gap int) {
	p.OnAccess(0, a)
	p.OnFill(0, 0, a)
	for h := 0; h < hits; h++ {
		for g := 0; g < gap; g++ {
			p.OnAccess(0, mem.Access{})
		}
		p.OnAccess(0, a)
		p.OnHit(0, 0, a)
	}
	p.OnEvict(0, 0)
}

func TestAIPLearnsInterval(t *testing.T) {
	p := newAIPUnderTest()
	a := mem.Access{PC: 0x10, Addr: 0x4000}
	aipGeneration(p, a, 3, 40)
	aipGeneration(p, a, 3, 40)
	e := p.entry(lvpPCHash(a.PC), lvpAddrHash(a.Addr))
	if !e.conf {
		t.Fatal("stable intervals did not gain confidence")
	}
	if e.count == 0 {
		t.Fatal("learned interval is zero for 40-access gaps")
	}
}

func TestAIPDeadNowAfterIdle(t *testing.T) {
	p := newAIPUnderTest()
	a := mem.Access{PC: 0x20, Addr: 0x8000}
	aipGeneration(p, a, 3, 40)
	aipGeneration(p, a, 3, 40)
	// Third generation: touch once, then idle far beyond the learned
	// interval.
	p.OnAccess(0, a)
	p.OnFill(0, 0, a)
	if p.DeadNow(0, 0) {
		t.Error("dead immediately after fill")
	}
	for i := 0; i < 4000; i++ {
		p.OnAccess(0, mem.Access{})
	}
	if !p.DeadNow(0, 0) {
		t.Error("not dead after idling far beyond the learned interval")
	}
}

func TestAIPUnstableIntervalsStayQuiet(t *testing.T) {
	p := newAIPUnderTest()
	a := mem.Access{PC: 0x30, Addr: 0xC000}
	aipGeneration(p, a, 2, 10)
	aipGeneration(p, a, 2, 2000) // wildly different: confidence cleared
	p.OnAccess(0, a)
	p.OnFill(0, 0, a)
	for i := 0; i < 4000; i++ {
		p.OnAccess(0, mem.Access{})
	}
	if p.DeadNow(0, 0) {
		t.Error("unconfident AIP made a dead prediction")
	}
}

func TestAIPTouchResetsIdle(t *testing.T) {
	p := newAIPUnderTest()
	if got := p.OnHit(0, 0, mem.Access{}); got {
		t.Error("OnHit returned dead (touches prove liveness)")
	}
}

// --- Sampling counting predictor ---

func newSCUnderTest() *SamplingCounting {
	s := NewSamplingCounting()
	s.Reset(llcSets, llcWays)
	return s
}

func TestSamplingCountingLearnsThroughSampler(t *testing.T) {
	s := newSCUnderTest()
	const fillPC, usePC = 0x100, 0x200
	churn := uint64(1000)
	// Generations of exactly two touches, observed only by the sampler.
	for gen := 0; gen < 40; gen++ {
		tag := uint64(gen)
		s.OnAccess(0, accessTo(0, tag, fillPC))
		s.OnAccess(0, accessTo(0, tag, usePC))
		for i := 0; i < 13; i++ {
			s.OnAccess(0, accessTo(0, churn, 0x999))
			churn++
		}
	}
	// The LLC side: a block filled at fillPC is predicted dead at its
	// second access.
	if s.OnFill(5, 0, mem.Access{PC: fillPC, Addr: 5 << mem.BlockBits}) {
		t.Error("dead at fill with learned live-time 2")
	}
	if !s.OnHit(5, 0, mem.Access{PC: usePC}) {
		t.Error("not dead at the learned live-time")
	}
}

func TestSamplingCountingBypassSingleTouch(t *testing.T) {
	s := newSCUnderTest()
	const pc = 0x300
	// Single-touch stream through the sampled set.
	for i := uint64(0); i < 100; i++ {
		s.OnAccess(0, accessTo(0, i, pc))
	}
	if !s.PredictArriving(0, mem.Access{PC: pc}) {
		t.Error("confident single-touch site not bypassed")
	}
}

func TestSamplingCountingLLCNeverTrains(t *testing.T) {
	s := newSCUnderTest()
	// Unsampled-set activity must not change the table.
	for i := 0; i < 1000; i++ {
		s.OnFill(3, 0, mem.Access{PC: 0x42, Addr: 3 << mem.BlockBits})
		s.OnEvict(3, 0)
	}
	if s.PredictArriving(3, mem.Access{PC: 0x42}) {
		t.Error("LLC evictions trained the sampling counting predictor")
	}
	if s.UpdateFraction() != 0 {
		t.Error("unsampled traffic counted as updates")
	}
}

func TestExtensionPredictorNamesAndStorage(t *testing.T) {
	for _, p := range []interface {
		Name() string
	}{NewBursts(), NewAIP(), NewSamplingCounting()} {
		if p.Name() == "" {
			t.Error("empty predictor name")
		}
	}
	s := newSCUnderTest()
	if len(s.Storage()) != 3 {
		t.Error("sampling counting storage incomplete")
	}
	b := newBurstsUnderTest()
	if len(b.Storage()) != 3 {
		t.Error("bursts storage incomplete")
	}
	a := newAIPUnderTest()
	if len(a.Storage()) != 2 {
		t.Error("AIP storage incomplete")
	}
}
