package predictor

import (
	"testing"

	"sdbp/internal/mem"
	"sdbp/internal/power"
)

func newCountingUnderTest() *Counting {
	c := NewCounting()
	c.Reset(llcSets, llcWays)
	return c
}

// oneGeneration runs a block through fill, touches-1 hits, and
// eviction, and returns whether any access predicted it dead.
func oneGeneration(c *Counting, set uint32, way int, a mem.Access, touches int) bool {
	dead := c.OnFill(set, way, a)
	for i := 1; i < touches; i++ {
		dead = c.OnHit(set, way, a)
	}
	c.OnEvict(set, way)
	return dead
}

func TestCountingGainsConfidenceOnStableCounts(t *testing.T) {
	c := newCountingUnderTest()
	a := mem.Access{PC: 0x10, Addr: 0x8000}
	oneGeneration(c, 0, 0, a, 3)
	oneGeneration(c, 0, 0, a, 3) // second generation matches: conf set
	// Third generation: the block must be predicted dead at its third
	// access.
	c.OnFill(0, 0, a)
	if c.OnHit(0, 0, a) {
		t.Error("predicted dead before reaching the learned live-time")
	}
	if !c.OnHit(0, 0, a) {
		t.Error("not predicted dead at the learned live-time")
	}
}

func TestCountingLosesConfidenceOnUnstableCounts(t *testing.T) {
	c := newCountingUnderTest()
	a := mem.Access{PC: 0x20, Addr: 0xC000}
	oneGeneration(c, 0, 0, a, 2)
	oneGeneration(c, 0, 0, a, 5) // mismatch: confidence cleared
	c.OnFill(0, 0, a)
	for i := 1; i < 10; i++ {
		if c.OnHit(0, 0, a) {
			t.Fatal("predicted dead without confidence")
		}
	}
}

func TestCountingBypassSingleTouch(t *testing.T) {
	c := newCountingUnderTest()
	a := mem.Access{PC: 0x30, Addr: 0x4000}
	oneGeneration(c, 0, 0, a, 1)
	oneGeneration(c, 0, 0, a, 1)
	if !c.PredictArriving(0, a) {
		t.Error("confident single-touch block not dead on arrival")
	}
}

func TestCountingNoBypassWithoutConfidence(t *testing.T) {
	c := newCountingUnderTest()
	a := mem.Access{PC: 0x40, Addr: 0x4040}
	oneGeneration(c, 0, 0, a, 1)
	oneGeneration(c, 0, 0, a, 2)
	if c.PredictArriving(0, a) {
		t.Error("unconfident block predicted dead on arrival")
	}
}

func TestCountingTableIndexedByPCAndAddress(t *testing.T) {
	c := newCountingUnderTest()
	a1 := mem.Access{PC: 0x50, Addr: 0x1000}
	a2 := mem.Access{PC: 0x50, Addr: 0x224400} // same PC, different block hash
	oneGeneration(c, 0, 0, a1, 1)
	oneGeneration(c, 0, 0, a1, 1)
	if !c.PredictArriving(0, a1) {
		t.Fatal("setup failed")
	}
	if c.PredictArriving(0, a2) {
		t.Error("different block address shares the table cell")
	}
}

func TestCountingCounterSaturates(t *testing.T) {
	c := newCountingUnderTest()
	a := mem.Access{PC: 0x60, Addr: 0x2000}
	c.OnFill(0, 0, a)
	for i := 0; i < 100; i++ {
		c.OnHit(0, 0, a)
	}
	if got := c.blocks[0].count; got != countMax {
		t.Errorf("count = %d, want saturated %d", got, countMax)
	}
}

func TestCountingEvictionWritesTable(t *testing.T) {
	c := newCountingUnderTest()
	a := mem.Access{PC: 0x70, Addr: 0x3000}
	oneGeneration(c, 0, 0, a, 4)
	e := c.entry(lvpPCHash(a.PC), lvpAddrHash(a.Addr))
	if e.count != 4 {
		t.Errorf("table count = %d, want 4", e.count)
	}
	if e.conf {
		t.Error("confidence set after a single generation")
	}
}

func TestCountingStorageMatchesPaper(t *testing.T) {
	c := newCountingUnderTest()
	total := power.TotalKB(c.Storage())
	// Paper Table I: 40KB table + 68KB metadata = 108KB.
	if total != 108 {
		t.Errorf("counting storage = %.2fKB, want 108KB", total)
	}
}

func TestCountingName(t *testing.T) {
	if NewCounting().Name() != "Counting" {
		t.Error("name mismatch")
	}
}

func TestCountingZeroPrevCountNeverDead(t *testing.T) {
	b := &lvpBlock{conf: true, prevCount: 0, count: 5}
	if b.dead() {
		t.Error("zero previous live-time treated as dead threshold")
	}
}
