package predictor

import (
	"sdbp/internal/mem"
	"sdbp/internal/power"
)

// TimeBased is the dead block predictor of Hu, Kaxiras and Martonosi
// (ISCA 2002), adapted from cycles to the LLC's per-set access clock:
// the predictor learns each block's live time (the interval from fill
// to last touch) and predicts the block dead once it has gone untouched
// for twice that long — the original paper's "2x live time" rule. Like
// AIP, its predictions mature with idle time, so it implements
// dbrb.Aging.
//
// The sampling paper discusses this family in Section II-A.2 (Hu et
// al. prefetch into the L1 and filter a victim cache with it; Abella et
// al. use a reference-count variant for leakage). It is provided to
// complete the related-work comparison set.
type TimeBased struct {
	table      []lvpEntry // learned live time (quantized) + confidence
	sets, ways int

	setClock  []uint32
	filledAt  []uint32
	lastTouch []uint32
	learned   []uint8
	conf      []bool
	pcHash    []uint8
	addrHash  []uint8
}

// NewTimeBased returns a time-based predictor.
func NewTimeBased() *TimeBased { return &TimeBased{} }

// Name implements Predictor.
func (p *TimeBased) Name() string { return "TimeBased" }

// Reset implements Predictor.
func (p *TimeBased) Reset(sets, ways int) {
	p.sets, p.ways = sets, ways
	p.table = make([]lvpEntry, lvpRows*lvpCols)
	p.setClock = make([]uint32, sets)
	n := sets * ways
	p.filledAt = make([]uint32, n)
	p.lastTouch = make([]uint32, n)
	p.learned = make([]uint8, n)
	p.conf = make([]bool, n)
	p.pcHash = make([]uint8, n)
	p.addrHash = make([]uint8, n)
}

func (p *TimeBased) idx(set uint32, way int) int { return int(set)*p.ways + way }

func (p *TimeBased) entry(pcHash, addrHash uint8) *lvpEntry {
	return &p.table[int(pcHash)*lvpCols+int(addrHash)]
}

// OnAccess implements Predictor: advance the set clock.
func (p *TimeBased) OnAccess(set uint32, _ mem.Access) { p.setClock[set]++ }

// PredictArriving implements Predictor: a confidently zero live time
// means the block is never touched after its fill.
func (p *TimeBased) PredictArriving(_ uint32, a mem.Access) bool {
	e := p.entry(lvpPCHash(a.PC), lvpAddrHash(a.Addr))
	return e.conf && e.count == 0
}

// OnHit implements Predictor: touches extend the observed live time; at
// touch time the block is alive.
func (p *TimeBased) OnHit(set uint32, way int, _ mem.Access) bool {
	p.lastTouch[p.idx(set, way)] = p.setClock[set]
	return false
}

// OnFill implements Predictor.
func (p *TimeBased) OnFill(set uint32, way int, a mem.Access) bool {
	i := p.idx(set, way)
	p.pcHash[i] = lvpPCHash(a.PC)
	p.addrHash[i] = lvpAddrHash(a.Addr)
	e := p.entry(p.pcHash[i], p.addrHash[i])
	p.learned[i] = e.count
	p.conf[i] = e.conf
	p.filledAt[i] = p.setClock[set]
	p.lastTouch[i] = p.setClock[set]
	return false
}

// OnEvict implements Predictor: the table learns this generation's
// quantized live time.
func (p *TimeBased) OnEvict(set uint32, way int) {
	i := p.idx(set, way)
	live := quantize(p.lastTouch[i] - p.filledAt[i])
	e := p.entry(p.pcHash[i], p.addrHash[i])
	e.conf = e.count == live
	e.count = live
}

// DeadNow implements dbrb.Aging: dead after idling twice the learned
// live time (Hu et al.'s rule), with a one-quantum floor so brand-new
// confident-zero blocks are not evicted instantly.
func (p *TimeBased) DeadNow(set uint32, way int) bool {
	i := p.idx(set, way)
	if !p.conf[i] {
		return false
	}
	idle := p.setClock[set] - p.lastTouch[i]
	threshold := uint32(p.learned[i]) * 2 * aipQuantum
	if threshold < aipQuantum {
		threshold = aipQuantum
	}
	return idle > threshold
}

// Storage implements Predictor.
func (p *TimeBased) Storage() []power.Structure {
	return []power.Structure{
		{Name: "live-time table", Kind: power.TaglessRAM,
			Entries: lvpRows * lvpCols, BitsPerEntry: 9},
		{Name: "block timing state", Kind: power.CacheMetadata,
			Entries: p.sets * p.ways, BitsPerEntry: 8 + 8 + 8 + 8 + 8 + 1 + 12},
	}
}
