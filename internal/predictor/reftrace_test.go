package predictor

import (
	"testing"

	"sdbp/internal/mem"
	"sdbp/internal/power"
)

func newRefTraceUnderTest() *RefTrace {
	r := NewRefTrace()
	r.Reset(llcSets, llcWays)
	return r
}

func TestRefTraceSignatureAccumulates(t *testing.T) {
	r := newRefTraceUnderTest()
	r.OnFill(0, 0, mem.Access{PC: 0x10})
	r.OnHit(0, 0, mem.Access{PC: 0x20})
	want := traceSignature(traceSignature(0, 0x10), 0x20)
	if got := r.blockSig[0]; got != want {
		t.Errorf("signature = %#x, want %#x", got, want)
	}
}

func TestRefTraceSignatureTruncates(t *testing.T) {
	if sig := traceSignature(sigMask, 1); sig != 0 {
		t.Errorf("truncated sum = %#x, want 0", sig)
	}
	if sig := traceSignature(0, 0xFFFF_FFFF); sig > sigMask {
		t.Errorf("signature %#x exceeds 15 bits", sig)
	}
}

func TestRefTraceLearnsSingleTouchDeath(t *testing.T) {
	r := newRefTraceUnderTest()
	const pc = 0x40
	// Blocks filled at one site and evicted untouched: the site's
	// signature trains dead; new arrivals with that PC predict dead.
	for i := 0; i < 10; i++ {
		r.OnFill(0, 0, mem.Access{PC: pc})
		r.OnEvict(0, 0)
	}
	if !r.PredictArriving(0, mem.Access{PC: pc}) {
		t.Error("single-touch site not predicted dead on arrival")
	}
}

func TestRefTraceHitsTrainLive(t *testing.T) {
	r := newRefTraceUnderTest()
	const pc = 0x50
	for i := 0; i < 10; i++ {
		r.OnFill(0, 0, mem.Access{PC: pc})
		r.OnEvict(0, 0)
	}
	if !r.PredictArriving(0, mem.Access{PC: pc}) {
		t.Fatal("setup failed: site not dead")
	}
	// Re-touches decrement the counter for the stored signature.
	for i := 0; i < 10; i++ {
		r.OnFill(0, 0, mem.Access{PC: pc})
		r.OnHit(0, 0, mem.Access{PC: 0x60})
	}
	if r.PredictArriving(0, mem.Access{PC: pc}) {
		t.Error("re-touched site still predicted dead")
	}
}

func TestRefTraceDistinguishesTraces(t *testing.T) {
	r := newRefTraceUnderTest()
	// Two-touch blocks: trace (a,b) dies, trace (a) alone lives on.
	const a, b = 0x100, 0x200
	for i := 0; i < 20; i++ {
		r.OnFill(0, 0, mem.Access{PC: a})
		r.OnHit(0, 0, mem.Access{PC: b})
		r.OnEvict(0, 0)
	}
	if r.PredictArriving(0, mem.Access{PC: a}) {
		t.Error("prefix trace (a) predicted dead")
	}
	full := traceSignature(traceSignature(0, a), b)
	if !r.predict(full) {
		t.Error("death trace (a,b) not predicted dead")
	}
}

func TestRefTracePerBlockSignaturesIndependent(t *testing.T) {
	r := newRefTraceUnderTest()
	r.OnFill(0, 0, mem.Access{PC: 0x1})
	r.OnFill(0, 1, mem.Access{PC: 0x2})
	r.OnHit(0, 0, mem.Access{PC: 0x3})
	if r.blockSig[0] == r.blockSig[1] {
		t.Error("block signatures aliased across ways")
	}
}

func TestRefTraceStorageMatchesPaper(t *testing.T) {
	r := newRefTraceUnderTest()
	total := power.TotalKB(r.Storage())
	// Paper Table I: 8KB table + 64KB metadata = 72KB.
	if total != 72 {
		t.Errorf("reftrace storage = %.2fKB, want 72KB", total)
	}
}

func TestRefTraceName(t *testing.T) {
	if NewRefTrace().Name() != "RefTrace" {
		t.Error("name mismatch")
	}
}
