package predictor

import (
	"fmt"

	"sdbp/internal/mem"
	"sdbp/internal/power"
)

// ReuseConfig parameterizes the reuse-counter predictor. The zero value
// is not valid; use DefaultReuseConfig.
type ReuseConfig struct {
	// Tables is the number of hashed prediction tables whose counters
	// are summed.
	Tables int
	// TableEntries is the number of 2-bit counters per table.
	TableEntries int
	// Threshold is the confidence sum at or above which a block is
	// predicted dead.
	Threshold int
}

// DefaultReuseConfig is three 4,096-entry tables with threshold 8 — the
// same table budget as the paper's sampling predictor, so comparisons
// isolate the training rule.
func DefaultReuseConfig() ReuseConfig {
	return ReuseConfig{Tables: 3, TableEntries: 4096, Threshold: 8}
}

// Reuse is the "improved DBP" reuse-counter core: every block carries
// the signature of the PC that filled it and a saturating reuse
// counter. Nothing trains until the block leaves the cache; at eviction
// the fill signature trains dead exactly when the block was never
// reused. Prediction asks whether blocks filled by this PC typically
// see zero reuse, so one early burst of hits cannot flip a PC's verdict
// the way per-access training can — the reuse counter integrates the
// block's whole lifetime before the tables hear about it.
type Reuse struct {
	cfg ReuseConfig

	// table holds cfg.Tables banks of 2-bit counters flattened into one
	// contiguous slice.
	table []uint8
	salts []uint64

	// block packs each LLC block's metadata into one word — fill-PC
	// signature in bits 0..14, saturating reuse count above sigBits —
	// so the hit and evict paths load one flat arena entry instead of
	// two parallel slices.
	block   []uint32
	ways    int
	llcSets int

	accesses uint64
	updates  uint64
}

// reuseMax is the per-block reuse counter's saturation value (2 bits).
const reuseMax = 3

// NewReuse builds a reuse-counter predictor. It panics on an invalid
// configuration (the registry validates user expressions first).
func NewReuse(cfg ReuseConfig) *Reuse {
	if cfg.Tables < 1 || cfg.TableEntries < 2 || !mem.IsPow2(cfg.TableEntries) {
		panic(fmt.Sprintf("predictor: invalid reuse tables %d x %d", cfg.Tables, cfg.TableEntries))
	}
	r := &Reuse{cfg: cfg}
	r.salts = make([]uint64, cfg.Tables)
	for i := range r.salts {
		r.salts[i] = 0x9e3779b97f4a7c15 * uint64(i+1)
	}
	return r
}

// Name implements Predictor.
func (r *Reuse) Name() string { return "Reuse" }

// Config returns the predictor's configuration.
func (r *Reuse) Config() ReuseConfig { return r.cfg }

// Reset implements Predictor.
func (r *Reuse) Reset(sets, ways int) {
	r.llcSets = sets
	r.ways = ways
	r.table = make([]uint8, r.cfg.Tables*r.cfg.TableEntries)
	r.block = make([]uint32, sets*ways)
	r.accesses = 0
	r.updates = 0
}

func (r *Reuse) idx(set uint32, way int) int { return int(set)*r.ways + way }

func (r *Reuse) tableIndex(t int, sig uint32) int {
	return int(mem.Mix64(uint64(sig)^r.salts[t]) & uint64(r.cfg.TableEntries-1))
}

func (r *Reuse) confidence(sig uint32) int {
	c := 0
	for t := 0; t < r.cfg.Tables; t++ {
		c += int(r.table[t*r.cfg.TableEntries+r.tableIndex(t, sig)])
	}
	return c
}

func (r *Reuse) predict(sig uint32) bool {
	return r.confidence(sig) >= r.cfg.Threshold
}

func (r *Reuse) train(sig uint32, dead bool) {
	for t := 0; t < r.cfg.Tables; t++ {
		i := t*r.cfg.TableEntries + r.tableIndex(t, sig)
		if dead {
			if r.table[i] < 3 {
				r.table[i]++
			}
		} else if r.table[i] > 0 {
			r.table[i]--
		}
	}
}

// OnAccess implements Predictor: the reuse predictor has no decoupled
// sampler; all its learning happens at evictions.
func (r *Reuse) OnAccess(_ uint32, _ mem.Access) {
	r.accesses++
}

// PredictArriving implements Predictor.
func (r *Reuse) PredictArriving(_ uint32, a mem.Access) bool {
	return r.predict(pcSignature(a.PC))
}

// OnHit implements Predictor: the block's reuse counter saturates
// upward; its verdict re-evaluates against the fill signature's current
// confidence.
func (r *Reuse) OnHit(set uint32, way int, _ mem.Access) bool {
	i := r.idx(set, way)
	b := r.block[i]
	if b>>sigBits < reuseMax {
		r.block[i] = b + 1<<sigBits
	}
	return r.predict(b & sigMask)
}

// OnFill implements Predictor: the fill PC's signature sticks to the
// block for its whole residency.
func (r *Reuse) OnFill(set uint32, way int, a mem.Access) bool {
	i := r.idx(set, way)
	sig := pcSignature(a.PC)
	r.block[i] = sig // reuse count restarts at zero
	return r.predict(sig)
}

// OnEvict implements Predictor: the only training point. The fill
// signature trains dead exactly when the block saw no reuse.
func (r *Reuse) OnEvict(set uint32, way int) {
	b := r.block[r.idx(set, way)]
	r.train(b&sigMask, b>>sigBits == 0)
	r.updates++
}

// ConfidenceOf returns the confidence sum for a PC's signature (tests
// and diagnostics).
func (r *Reuse) ConfidenceOf(pc uint64) int {
	return r.confidence(pcSignature(pc))
}

// UpdateFraction returns the fraction of LLC accesses that updated the
// predictor (one update per eviction).
func (r *Reuse) UpdateFraction() float64 {
	if r.accesses == 0 {
		return 0
	}
	return float64(r.updates) / float64(r.accesses)
}

// Storage implements Predictor: the counter tables plus per-block
// metadata (fill signature, 2-bit reuse counter, dead bit).
func (r *Reuse) Storage() []power.Structure {
	return []power.Structure{
		{
			Name: "prediction tables", Kind: power.TaglessRAM,
			Entries: r.cfg.Tables * r.cfg.TableEntries, BitsPerEntry: 2, Banks: r.cfg.Tables,
		},
		{
			Name: "block signatures + reuse counters + dead bits", Kind: power.CacheMetadata,
			Entries: r.llcSets * r.ways, BitsPerEntry: sigBits + 2 + 1,
		},
	}
}
