package predictor

import (
	"sdbp/internal/mem"
	"sdbp/internal/power"
)

// Bursts is the cache-bursts dead block predictor of Liu, Ferdman, Huh
// and Burger (MICRO 2008): a reference-trace predictor that observes
// *bursts* — all contiguous accesses to a block while it holds its
// set's MRU position — rather than individual references. The block's
// signature accumulates one PC per burst (the burst's first reference),
// and predictions and table updates happen at burst boundaries, cutting
// predictor traffic for L1 caches.
//
// The paper points out (Section II-A.3) that bursts "offer little
// advantage for higher level caches, since most bursts are filtered out
// by the L1": at the LLC nearly every access is its own burst, so this
// predictor converges to reftrace behavior with extra per-set MRU
// bookkeeping. It is included to let that observation be reproduced.
type Bursts struct {
	table      []uint8 // 2^15 two-bit counters
	sets, ways int

	sig       []uint32 // per-block burst-trace signature
	burstPC   []uint32 // per-block first-PC of the active burst
	inBurst   []bool   // per-block: active burst not yet appended
	mru       []int32  // per-set MRU way (-1 when unknown)
	threshold uint8
}

// NewBursts returns a cache-bursts predictor with an 8KB table.
func NewBursts() *Bursts { return &Bursts{threshold: 2} }

// Name implements Predictor.
func (b *Bursts) Name() string { return "Bursts" }

// Reset implements Predictor.
func (b *Bursts) Reset(sets, ways int) {
	b.sets, b.ways = sets, ways
	b.table = make([]uint8, 1<<sigBits)
	b.sig = make([]uint32, sets*ways)
	b.burstPC = make([]uint32, sets*ways)
	b.inBurst = make([]bool, sets*ways)
	b.mru = make([]int32, sets)
	for i := range b.mru {
		b.mru[i] = -1
	}
}

func (b *Bursts) idx(set uint32, way int) int { return int(set)*b.ways + way }

func (b *Bursts) predict(sig uint32) bool { return b.table[sig] >= b.threshold }

func (b *Bursts) train(sig uint32, dead bool) {
	if dead {
		if b.table[sig] < 3 {
			b.table[sig]++
		}
	} else if b.table[sig] > 0 {
		b.table[sig]--
	}
}

// endBurst closes a block's active burst: the burst's PC is appended to
// the trace signature.
func (b *Bursts) endBurst(i int) {
	if b.inBurst[i] {
		b.sig[i] = traceSignature(b.sig[i], uint64(b.burstPC[i]))
		b.inBurst[i] = false
	}
}

// becomeMRU closes the previous MRU's burst and installs way as MRU.
func (b *Bursts) becomeMRU(set uint32, way int) {
	if old := b.mru[set]; old >= 0 && int(old) != way {
		b.endBurst(b.idx(set, int(old)))
	}
	b.mru[set] = int32(way)
}

// OnAccess implements Predictor; bursts need no access-time hook.
func (b *Bursts) OnAccess(uint32, mem.Access) {}

// PredictArriving implements Predictor: an arriving block's trace would
// open with this access's burst.
func (b *Bursts) PredictArriving(_ uint32, a mem.Access) bool {
	return b.predict(traceSignature(0, uint64(pcSignature(a.PC))))
}

// OnHit implements Predictor. A hit on the MRU block continues its
// burst; a hit on any other block proves that block alive (training its
// appended signature live) and opens a new burst.
func (b *Bursts) OnHit(set uint32, way int, a mem.Access) bool {
	i := b.idx(set, way)
	if int(b.mru[set]) == way && b.inBurst[i] {
		// Same burst: no predictor activity (the bursts win).
		return b.predict(traceSignature(b.sig[i], uint64(b.burstPC[i])))
	}
	b.train(b.sig[i], false)
	b.burstPC[i] = pcSignature(a.PC)
	b.inBurst[i] = true
	b.becomeMRU(set, way)
	return b.predict(traceSignature(b.sig[i], uint64(b.burstPC[i])))
}

// OnFill implements Predictor: a fresh trace opens with this burst.
func (b *Bursts) OnFill(set uint32, way int, a mem.Access) bool {
	i := b.idx(set, way)
	b.sig[i] = 0
	b.burstPC[i] = pcSignature(a.PC)
	b.inBurst[i] = true
	b.becomeMRU(set, way)
	return b.predict(traceSignature(0, uint64(b.burstPC[i])))
}

// OnEvict implements Predictor: the final signature (with any pending
// burst appended) trains dead.
func (b *Bursts) OnEvict(set uint32, way int) {
	i := b.idx(set, way)
	b.endBurst(i)
	b.train(b.sig[i], true)
	if int(b.mru[set]) == way {
		b.mru[set] = -1
	}
}

// Storage implements Predictor: the 8KB table, per-block signature,
// burst PC, burst flag and dead bit, and per-set MRU pointers.
func (b *Bursts) Storage() []power.Structure {
	return []power.Structure{
		{Name: "prediction table", Kind: power.TaglessRAM, Entries: 1 << sigBits, BitsPerEntry: 2},
		{Name: "block burst state", Kind: power.CacheMetadata,
			Entries: b.sets * b.ways, BitsPerEntry: sigBits + sigBits + 1 + 1},
		{Name: "set MRU pointers", Kind: power.CacheMetadata,
			Entries: b.sets, BitsPerEntry: 4},
	}
}
