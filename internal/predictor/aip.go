package predictor

import (
	"sdbp/internal/mem"
	"sdbp/internal/power"
)

// aipQuantum is the interval quantization: intervals are measured in
// accesses to the block's set and stored divided by this factor, so the
// 8-bit stored interval covers up to 4096 set-accesses.
const aipQuantum = 16

// AIP is the Access Interval Predictor of Kharbutli and Solihin (IEEE
// TC 2008), the companion of the LvP counting predictor: instead of
// counting a block's accesses, it learns the maximum interval (in
// accesses to the block's set) between consecutive touches within a
// generation. A resident block whose idle time exceeds its learned
// maximum interval is predicted dead — a prediction that matures with
// time, delivered through the dbrb.Aging interface at victim-selection
// time. The paper evaluates LvP rather than AIP ("we focus on LvP as we
// find it delivers superior accuracy"); AIP is provided to let that
// comparison be made.
type AIP struct {
	table      []lvpEntry // lvpRows*lvpCols of (interval, conf)
	sets, ways int

	setClock  []uint32
	lastTouch []uint32
	maxIval   []uint8 // per block, quantized
	learned   []uint8 // per block, copied from the table at fill
	conf      []bool
	pcHash    []uint8
	addrHash  []uint8
}

// NewAIP returns an access interval predictor with a 40KB-class table.
func NewAIP() *AIP { return &AIP{} }

// Name implements Predictor.
func (p *AIP) Name() string { return "AIP" }

// Reset implements Predictor.
func (p *AIP) Reset(sets, ways int) {
	p.sets, p.ways = sets, ways
	p.table = make([]lvpEntry, lvpRows*lvpCols)
	p.setClock = make([]uint32, sets)
	n := sets * ways
	p.lastTouch = make([]uint32, n)
	p.maxIval = make([]uint8, n)
	p.learned = make([]uint8, n)
	p.conf = make([]bool, n)
	p.pcHash = make([]uint8, n)
	p.addrHash = make([]uint8, n)
}

func (p *AIP) idx(set uint32, way int) int { return int(set)*p.ways + way }

func (p *AIP) entry(pcHash, addrHash uint8) *lvpEntry {
	return &p.table[int(pcHash)*lvpCols+int(addrHash)]
}

// quantize converts a raw set-access interval to its stored form.
func quantize(ival uint32) uint8 {
	q := ival / aipQuantum
	if q > 255 {
		q = 255
	}
	return uint8(q)
}

// OnAccess implements Predictor: the per-set clock that intervals are
// measured against advances on every access to the set.
func (p *AIP) OnAccess(set uint32, _ mem.Access) { p.setClock[set]++ }

// PredictArriving implements Predictor: a block whose previous
// generations confidently showed a zero-quantum maximum interval was
// touched only in one brief burst — dead on arrival thereafter.
func (p *AIP) PredictArriving(_ uint32, a mem.Access) bool {
	e := p.entry(lvpPCHash(a.PC), lvpAddrHash(a.Addr))
	return e.conf && e.count == 0
}

// OnHit implements Predictor: the observed interval extends the
// generation's maximum; at touch time the block is by definition alive.
func (p *AIP) OnHit(set uint32, way int, _ mem.Access) bool {
	i := p.idx(set, way)
	ival := quantize(p.setClock[set] - p.lastTouch[i])
	if ival > p.maxIval[i] {
		p.maxIval[i] = ival
	}
	p.lastTouch[i] = p.setClock[set]
	return false
}

// OnFill implements Predictor.
func (p *AIP) OnFill(set uint32, way int, a mem.Access) bool {
	i := p.idx(set, way)
	p.pcHash[i] = lvpPCHash(a.PC)
	p.addrHash[i] = lvpAddrHash(a.Addr)
	e := p.entry(p.pcHash[i], p.addrHash[i])
	p.learned[i] = e.count
	p.conf[i] = e.conf
	p.maxIval[i] = 0
	p.lastTouch[i] = p.setClock[set]
	return false
}

// OnEvict implements Predictor: the table learns this generation's
// maximum interval, gaining confidence when consecutive generations
// agree.
func (p *AIP) OnEvict(set uint32, way int) {
	i := p.idx(set, way)
	e := p.entry(p.pcHash[i], p.addrHash[i])
	e.conf = e.count == p.maxIval[i]
	e.count = p.maxIval[i]
}

// DeadNow implements dbrb.Aging: a confident block whose idle time has
// exceeded its learned maximum interval is dead.
func (p *AIP) DeadNow(set uint32, way int) bool {
	i := p.idx(set, way)
	if !p.conf[i] {
		return false
	}
	idle := quantize(p.setClock[set] - p.lastTouch[i])
	return idle > p.learned[i]
}

// Storage implements Predictor: the interval table (8-bit interval +
// conf per entry) plus per-block metadata (hashes, interval state).
func (p *AIP) Storage() []power.Structure {
	return []power.Structure{
		{Name: "interval table", Kind: power.TaglessRAM,
			Entries: lvpRows * lvpCols, BitsPerEntry: 9},
		{Name: "block interval state", Kind: power.CacheMetadata,
			Entries: p.sets * p.ways, BitsPerEntry: 8 + 8 + 8 + 8 + 1 + 12},
	}
}
