package predictor

import (
	"fmt"

	"sdbp/internal/mem"
	"sdbp/internal/power"
)

// SamplerConfig parameterizes the sampling predictor. The zero value is
// not valid; use DefaultSamplerConfig (the paper's configuration) or one
// of the Figure 6 ablation variants.
type SamplerConfig struct {
	// UseSampler enables the decoupled sampler tag array. When false
	// the predictor degenerates to a PC-only reftrace-style predictor
	// that keeps a signature per LLC block and trains on every access
	// and eviction ("DBRB alone" in Figure 6).
	UseSampler bool
	// SamplerSets is the number of sampler sets (32 in the paper).
	SamplerSets int
	// SamplerAssoc is the sampler's associativity. The paper finds 12
	// ways superior to matching the LLC's 16.
	SamplerAssoc int
	// Tables is the number of skewed prediction tables (3 in the
	// paper; 1 selects a single-table predictor).
	Tables int
	// TableEntries is the number of 2-bit counters per table (4,096 in
	// the paper for the skewed organization; the Figure 6 single-table
	// variant uses 16,384, i.e. each skewed table is one quarter of the
	// single table's size).
	TableEntries int
	// Threshold is the confidence sum at or above which a block is
	// predicted dead (8 of a maximum 9 in the paper; 3 of a maximum 3
	// for a single table).
	Threshold int
}

// DefaultSamplerConfig is the paper's configuration: a 32-set, 12-way
// sampler over three skewed 4,096-entry tables with threshold 8.
func DefaultSamplerConfig() SamplerConfig {
	return SamplerConfig{
		UseSampler:   true,
		SamplerSets:  32,
		SamplerAssoc: 12,
		Tables:       3,
		TableEntries: 4096,
		Threshold:    8,
	}
}

// Figure 6 ablation variants. Each returns the configuration for one bar
// of the paper's component-contribution study.
func AblationConfigs() map[string]SamplerConfig {
	base := DefaultSamplerConfig()
	cfgs := map[string]SamplerConfig{
		"DBRB alone": {
			UseSampler: false, Tables: 1, TableEntries: 16384, Threshold: 3,
		},
		"DBRB+3 tables": {
			UseSampler: false, Tables: 3, TableEntries: 4096, Threshold: 8,
		},
		"DBRB+sampler": {
			UseSampler: true, SamplerSets: 32, SamplerAssoc: 16,
			Tables: 1, TableEntries: 16384, Threshold: 3,
		},
		"DBRB+sampler+3 tables": {
			UseSampler: true, SamplerSets: 32, SamplerAssoc: 16,
			Tables: 3, TableEntries: 4096, Threshold: 8,
		},
		"DBRB+sampler+12-way": {
			UseSampler: true, SamplerSets: 32, SamplerAssoc: 12,
			Tables: 1, TableEntries: 16384, Threshold: 3,
		},
		"DBRB+sampler+3 tables+12-way": base,
	}
	return cfgs
}

// Sampler is the paper's sampling dead block predictor: a small,
// decoupled, LRU-managed partial-tag array sampling a fixed subset of
// LLC sets, feeding a skewed bank of saturating-counter tables indexed
// by a hash of the last PC to touch a block.
type Sampler struct {
	cfg SamplerConfig

	// table holds cfg.Tables banks of 2-bit counters flattened into one
	// contiguous slice (bank t occupies [t*TableEntries, (t+1)*TableEntries))
	// so the per-prediction loop walks one allocation.
	table   []uint8
	salts   []uint64
	entries []sEntry // SamplerSets*SamplerAssoc packed ways (see arena.go)

	llcSets    int
	llcSetBits uint
	interval   int // LLC sets per sampler set (llcSets/SamplerSets)

	// interval is always a power of two (both set counts are), so the
	// per-access sampled-set test is a mask and a shift.
	intervalMask  uint32
	intervalShift uint

	// Per-LLC-block signatures, used only when UseSampler is false
	// (the predictor then trains directly from the LLC like reftrace).
	blockSig []uint32
	ways     int

	// Training event counters: the paper's power argument rests on the
	// sampler updating on <2% of LLC accesses.
	accesses uint64
	updates  uint64

	// TrainHook, when set, observes every training event (tests and
	// diagnostics); it must not mutate the predictor.
	TrainHook func(sig uint32, dead bool)
}

// SignatureOf exposes the PC-to-signature mapping for tests and
// diagnostics.
func SignatureOf(pc uint64) uint32 { return pcSignature(pc) }

// NewSampler builds a sampling predictor. It panics on an invalid
// configuration (geometry errors are programming mistakes).
func NewSampler(cfg SamplerConfig) *Sampler {
	if cfg.Tables < 1 || cfg.TableEntries < 2 || !mem.IsPow2(cfg.TableEntries) {
		panic(fmt.Sprintf("predictor: invalid sampler tables %d x %d", cfg.Tables, cfg.TableEntries))
	}
	if cfg.UseSampler && (cfg.SamplerSets < 1 || cfg.SamplerAssoc < 1 || !mem.IsPow2(cfg.SamplerSets)) {
		panic(fmt.Sprintf("predictor: invalid sampler geometry %d sets x %d ways", cfg.SamplerSets, cfg.SamplerAssoc))
	}
	s := &Sampler{cfg: cfg}
	s.salts = make([]uint64, cfg.Tables)
	for i := range s.salts {
		s.salts[i] = 0x9e3779b97f4a7c15 * uint64(i+1)
	}
	return s
}

// Name implements Predictor.
func (s *Sampler) Name() string { return "Sampler" }

// Config returns the predictor's configuration.
func (s *Sampler) Config() SamplerConfig { return s.cfg }

// Reset implements Predictor.
func (s *Sampler) Reset(sets, ways int) {
	s.llcSets = sets
	s.llcSetBits = uint(mem.Log2(sets))
	s.ways = ways
	s.table = make([]uint8, s.cfg.Tables*s.cfg.TableEntries)
	if s.cfg.UseSampler {
		s.interval = sets / s.cfg.SamplerSets
		if s.interval < 1 {
			s.interval = 1
		}
		s.intervalMask = uint32(s.interval - 1)
		s.intervalShift = uint(mem.Log2(s.interval))
		s.entries = newSamplerArena(s.cfg.SamplerSets, s.cfg.SamplerAssoc)
		s.blockSig = nil
	} else {
		s.blockSig = make([]uint32, sets*ways)
	}
	s.accesses = 0
	s.updates = 0
}

// tableIndex computes table t's index for a signature: each table uses a
// different multiplicative hash (the skewed organization).
func (s *Sampler) tableIndex(t int, sig uint32) int {
	return int(mem.Mix64(uint64(sig)^s.salts[t]) & uint64(s.cfg.TableEntries-1))
}

// confidence sums the counters the signature maps to.
func (s *Sampler) confidence(sig uint32) int {
	c := 0
	for t := 0; t < s.cfg.Tables; t++ {
		c += int(s.table[t*s.cfg.TableEntries+s.tableIndex(t, sig)])
	}
	return c
}

// predict reports whether a signature's confidence meets the threshold.
func (s *Sampler) predict(sig uint32) bool {
	return s.confidence(sig) >= s.cfg.Threshold
}

// train adjusts the counters for a signature: dead increments toward
// the threshold, live decrements toward zero. Counters saturate at 2
// bits.
func (s *Sampler) train(sig uint32, dead bool) {
	if s.TrainHook != nil {
		s.TrainHook(sig, dead)
	}
	for t := 0; t < s.cfg.Tables; t++ {
		i := t*s.cfg.TableEntries + s.tableIndex(t, sig)
		if dead {
			if s.table[i] < 3 {
				s.table[i]++
			}
		} else if s.table[i] > 0 {
			s.table[i]--
		}
	}
}

// sampled reports whether an LLC set is tracked by the sampler, and
// which sampler set tracks it.
func (s *Sampler) sampled(set uint32) (int, bool) {
	if set&s.intervalMask != 0 {
		return 0, false
	}
	ss := int(set >> s.intervalShift)
	if ss >= s.cfg.SamplerSets {
		return 0, false
	}
	return ss, true
}

// partialTag derives the 15-bit partial tag stored in the sampler. The
// full tag is hashed down rather than truncated: truncation relies on
// the entropy real addresses carry in their low tag bits, which the
// suite's synthetic region layout concentrates in high bits instead.
// Hashing keeps the paper's property that incorrect matches are
// vanishingly rare.
func partialTag(addr uint64, llcSets int) uint32 {
	return uint32(mem.Mix64(mem.BlockNumber(addr)>>uint(mem.Log2(llcSets)))) & sigMask
}

// partialTagShifted is partialTag with the set-bit count precomputed
// (the per-access path avoids re-deriving Log2(llcSets)).
func partialTagShifted(addr uint64, llcSetBits uint) uint32 {
	return uint32(mem.Mix64(mem.BlockNumber(addr)>>llcSetBits)) & sigMask
}

// OnAccess implements Predictor: on an access to a sampled LLC set, the
// sampler set is searched and trained. A sampler hit trains the entry's
// previous signature as live and replaces it with the current PC's
// signature; a sampler miss victimizes an invalid entry, else the LRU
// entry, training the victim's signature as dead. Tags never bypass the
// sampler.
func (s *Sampler) OnAccess(set uint32, a mem.Access) {
	s.accesses++
	if !s.cfg.UseSampler {
		return
	}
	ss, ok := s.sampled(set)
	if !ok {
		return
	}
	s.updates++
	tag := partialTagShifted(a.Addr, s.llcSetBits)
	sig := pcSignature(a.PC)
	base := ss * s.cfg.SamplerAssoc
	ents := s.entries[base : base+s.cfg.SamplerAssoc : base+s.cfg.SamplerAssoc]

	// Search, noting the first invalid entry so a miss does not rescan.
	invalid := -1
	for w := range ents {
		e := ents[w]
		if !e.valid() {
			if invalid < 0 {
				invalid = w
			}
			continue
		}
		if e.tag() == tag {
			// The previous signature was not the last touch.
			s.train(e.sig(), false)
			ents[w].update(sig, s.predict(sig))
			promoteEntry(ents, w)
			return
		}
	}

	// Miss: fill an invalid entry, else replace the LRU entry (the
	// paper's sampler is plain LRU; its reduced associativity is what
	// evicts likely-dead tags sooner).
	victim := invalid
	if victim < 0 {
		lru := uint8(s.cfg.SamplerAssoc - 1)
		for w := range ents {
			if ents[w].lru() == lru {
				victim = w
				break
			}
		}
	}
	if ents[victim].valid() {
		// The victim's signature was the last touch of its tag.
		s.train(ents[victim].sig(), true)
	}
	ents[victim].fill(tag, sig, s.predict(sig))
	promoteEntry(ents, victim)
}

// PredictArriving implements Predictor: prediction is a pure function of
// the accessing PC.
func (s *Sampler) PredictArriving(_ uint32, a mem.Access) bool {
	return s.predict(pcSignature(a.PC))
}

// OnHit implements Predictor: when there is no sampler, the predictor
// trains directly from the LLC like reftrace; either way the block's
// dead bit refreshes from the current PC.
func (s *Sampler) OnHit(set uint32, way int, a mem.Access) bool {
	sig := pcSignature(a.PC)
	if !s.cfg.UseSampler {
		i := int(set)*s.ways + way
		s.train(s.blockSig[i], false)
		s.blockSig[i] = sig
		s.updates++
	}
	return s.predict(sig)
}

// OnFill implements Predictor.
func (s *Sampler) OnFill(set uint32, way int, a mem.Access) bool {
	sig := pcSignature(a.PC)
	if !s.cfg.UseSampler {
		s.blockSig[int(set)*s.ways+way] = sig
		s.updates++
	}
	return s.predict(sig)
}

// OnEvict implements Predictor: the decoupled sampler learns only from
// its own evictions, so LLC evictions train nothing; the no-sampler
// variant trains its stored per-block signature as dead.
func (s *Sampler) OnEvict(set uint32, way int) {
	if s.cfg.UseSampler {
		return
	}
	s.train(s.blockSig[int(set)*s.ways+way], true)
	s.updates++
}

// ConfidenceOf returns the current confidence sum for a PC's signature
// (tests and diagnostics; prediction is confidence >= threshold).
func (s *Sampler) ConfidenceOf(pc uint64) int {
	return s.confidence(pcSignature(pc))
}

// Threshold returns the configured dead-prediction threshold.
func (s *Sampler) Threshold() int { return s.cfg.Threshold }

// UpdateFraction returns the fraction of LLC accesses that updated the
// predictor — the quantity behind the paper's "<1.6% of LLC accesses"
// power argument.
func (s *Sampler) UpdateFraction() float64 {
	if s.accesses == 0 {
		return 0
	}
	return float64(s.updates) / float64(s.accesses)
}

// Storage implements Predictor, reproducing the sampler rows of Table I:
// three 1KB tables (3KB), a 6.75KB sampler (32 sets x 12 entries x 36
// bits: 15-bit tag, 15-bit partial PC, prediction bit, valid bit, 4 LRU
// bits), and one dead bit per LLC block.
func (s *Sampler) Storage() []power.Structure {
	var out []power.Structure
	out = append(out, power.Structure{
		Name: "prediction tables", Kind: power.TaglessRAM,
		Entries: s.cfg.Tables * s.cfg.TableEntries, BitsPerEntry: 2, Banks: s.cfg.Tables,
	})
	if s.cfg.UseSampler {
		out = append(out, power.Structure{
			Name: "sampler", Kind: power.TagArray,
			Entries:      s.cfg.SamplerSets * s.cfg.SamplerAssoc,
			BitsPerEntry: sigBits + sigBits + 1 + 1 + 4,
		})
		out = append(out, power.Structure{
			Name: "dead bits", Kind: power.CacheMetadata,
			Entries: s.llcSets * s.ways, BitsPerEntry: 1,
		})
	} else {
		out = append(out, power.Structure{
			Name: "block signatures + dead bits", Kind: power.CacheMetadata,
			Entries: s.llcSets * s.ways, BitsPerEntry: sigBits + 1,
		})
	}
	return out
}
