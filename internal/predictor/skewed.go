package predictor

import (
	"fmt"

	"sdbp/internal/mem"
	"sdbp/internal/power"
)

// SkewedConfig parameterizes the skewed tagged-table predictor. The
// zero value is not valid; use DefaultSkewedConfig.
type SkewedConfig struct {
	// SamplerSets and SamplerAssoc size the decoupled sampler tag array
	// (the same structure the paper's sampling predictor uses).
	SamplerSets  int
	SamplerAssoc int
	// Tables is the number of skewed prediction tables.
	Tables int
	// TableEntries is the number of entries per table. Each entry holds
	// a 2-bit counter and a TagBits partial tag.
	TableEntries int
	// TagBits is the width of the partial tag stored per table entry.
	// Wider tags reject more aliases at the cost of storage.
	TagBits int
	// Threshold is the confidence sum at or above which a block is
	// predicted dead (only tag-matching tables contribute).
	Threshold int
}

// DefaultSkewedConfig mirrors the paper's sampler geometry over three
// skewed 4,096-entry tables, each entry carrying an 8-bit partial tag.
func DefaultSkewedConfig() SkewedConfig {
	return SkewedConfig{
		SamplerSets:  32,
		SamplerAssoc: 12,
		Tables:       3,
		TableEntries: 4096,
		TagBits:      8,
		Threshold:    8,
	}
}

// Skewed is a skewed multi-table dead block predictor: like the paper's
// sampling predictor it trains from a small decoupled sampler, but its
// prediction tables are tagged. Each table hashes the PC signature with
// its own hash function; an entry only contributes its counter to the
// confidence sum when its partial tag matches, and training reallocates
// mismatching entries. Tags trade capacity for alias rejection: two
// signatures that collide in one table's index no longer pool their
// counters unless they also collide in the tag.
type Skewed struct {
	cfg SkewedConfig

	// ctr and tag are the Tables banks flattened contiguously (bank t
	// occupies [t*TableEntries, (t+1)*TableEntries)).
	ctr     []uint8
	tag     []uint16
	salts   []uint64
	tagMask uint32

	entries []sEntry // SamplerSets*SamplerAssoc packed ways (see arena.go)

	llcSets    int
	llcSetBits uint
	ways       int

	intervalMask  uint32
	intervalShift uint

	accesses uint64
	updates  uint64
}

// NewSkewed builds a skewed tagged-table predictor. It panics on an
// invalid configuration (geometry errors are programming mistakes; the
// registry validates user expressions first).
func NewSkewed(cfg SkewedConfig) *Skewed {
	if cfg.Tables < 1 || cfg.TableEntries < 2 || !mem.IsPow2(cfg.TableEntries) {
		panic(fmt.Sprintf("predictor: invalid skewed tables %d x %d", cfg.Tables, cfg.TableEntries))
	}
	if cfg.TagBits < 1 || cfg.TagBits > 15 {
		panic(fmt.Sprintf("predictor: invalid skewed tag width %d", cfg.TagBits))
	}
	if cfg.SamplerSets < 1 || cfg.SamplerAssoc < 1 || !mem.IsPow2(cfg.SamplerSets) {
		panic(fmt.Sprintf("predictor: invalid skewed sampler geometry %d sets x %d ways", cfg.SamplerSets, cfg.SamplerAssoc))
	}
	s := &Skewed{cfg: cfg, tagMask: 1<<uint(cfg.TagBits) - 1}
	s.salts = make([]uint64, cfg.Tables)
	for i := range s.salts {
		s.salts[i] = 0x9e3779b97f4a7c15 * uint64(i+1)
	}
	return s
}

// Name implements Predictor.
func (s *Skewed) Name() string { return "Skewed" }

// Config returns the predictor's configuration.
func (s *Skewed) Config() SkewedConfig { return s.cfg }

// Reset implements Predictor.
func (s *Skewed) Reset(sets, ways int) {
	s.llcSets = sets
	s.llcSetBits = uint(mem.Log2(sets))
	s.ways = ways
	s.ctr = make([]uint8, s.cfg.Tables*s.cfg.TableEntries)
	s.tag = make([]uint16, s.cfg.Tables*s.cfg.TableEntries)
	interval := sets / s.cfg.SamplerSets
	if interval < 1 {
		interval = 1
	}
	s.intervalMask = uint32(interval - 1)
	s.intervalShift = uint(mem.Log2(interval))
	s.entries = newSamplerArena(s.cfg.SamplerSets, s.cfg.SamplerAssoc)
	s.accesses = 0
	s.updates = 0
}

// slot computes table t's (index, partial tag) pair for a signature.
// Index and tag come from disjoint halves of one per-table hash, so
// each table sees an independent placement (the skewed organization)
// and tags stay consistent per signature.
func (s *Skewed) slot(t int, sig uint32) (int, uint16) {
	h := mem.Mix64(uint64(sig) ^ s.salts[t])
	idx := int(h & uint64(s.cfg.TableEntries-1))
	// Tags are offset by one so a zeroed table (tag 0) matches nothing:
	// every live tag lies in [1, 1<<TagBits], which fits uint16 for the
	// permitted widths.
	tag := uint16((uint32(h>>32) & s.tagMask) + 1)
	return idx, tag
}

// confidence sums the counters of the tables whose partial tag matches
// the signature.
func (s *Skewed) confidence(sig uint32) int {
	c := 0
	for t := 0; t < s.cfg.Tables; t++ {
		idx, tag := s.slot(t, sig)
		i := t*s.cfg.TableEntries + idx
		if s.tag[i] == tag {
			c += int(s.ctr[i])
		}
	}
	return c
}

func (s *Skewed) predict(sig uint32) bool {
	return s.confidence(sig) >= s.cfg.Threshold
}

// train adjusts each table's entry for the signature: matching entries
// count up (dead) or down (live) with 2-bit saturation; a mismatching
// entry is reallocated to the signature with its counter restarted.
func (s *Skewed) train(sig uint32, dead bool) {
	for t := 0; t < s.cfg.Tables; t++ {
		idx, tag := s.slot(t, sig)
		i := t*s.cfg.TableEntries + idx
		if s.tag[i] != tag {
			s.tag[i] = tag
			if dead {
				s.ctr[i] = 1
			} else {
				s.ctr[i] = 0
			}
			continue
		}
		if dead {
			if s.ctr[i] < 3 {
				s.ctr[i]++
			}
		} else if s.ctr[i] > 0 {
			s.ctr[i]--
		}
	}
}

// sampled reports whether an LLC set is tracked, and by which sampler
// set.
func (s *Skewed) sampled(set uint32) (int, bool) {
	if set&s.intervalMask != 0 {
		return 0, false
	}
	ss := int(set >> s.intervalShift)
	if ss >= s.cfg.SamplerSets {
		return 0, false
	}
	return ss, true
}

// OnAccess implements Predictor: the sampler flow is the paper's — a
// sampler hit trains the entry's previous signature live and adopts the
// current one; a sampler miss victimizes an invalid or LRU entry,
// training the victim's signature dead.
func (s *Skewed) OnAccess(set uint32, a mem.Access) {
	s.accesses++
	ss, ok := s.sampled(set)
	if !ok {
		return
	}
	s.updates++
	tag := partialTagShifted(a.Addr, s.llcSetBits)
	sig := pcSignature(a.PC)
	base := ss * s.cfg.SamplerAssoc
	ents := s.entries[base : base+s.cfg.SamplerAssoc : base+s.cfg.SamplerAssoc]

	invalid := -1
	for w := range ents {
		e := ents[w]
		if !e.valid() {
			if invalid < 0 {
				invalid = w
			}
			continue
		}
		if e.tag() == tag {
			s.train(e.sig(), false)
			ents[w].update(sig, false)
			promoteEntry(ents, w)
			return
		}
	}

	victim := invalid
	if victim < 0 {
		lru := uint8(s.cfg.SamplerAssoc - 1)
		for w := range ents {
			if ents[w].lru() == lru {
				victim = w
				break
			}
		}
	}
	if ents[victim].valid() {
		s.train(ents[victim].sig(), true)
	}
	ents[victim].fill(tag, sig, false)
	promoteEntry(ents, victim)
}

// PredictArriving implements Predictor.
func (s *Skewed) PredictArriving(_ uint32, a mem.Access) bool {
	return s.predict(pcSignature(a.PC))
}

// OnHit implements Predictor: the block's dead bit refreshes from the
// hitting PC; training happens only in the sampler.
func (s *Skewed) OnHit(_ uint32, _ int, a mem.Access) bool {
	return s.predict(pcSignature(a.PC))
}

// OnFill implements Predictor.
func (s *Skewed) OnFill(_ uint32, _ int, a mem.Access) bool {
	return s.predict(pcSignature(a.PC))
}

// OnEvict implements Predictor: the decoupled sampler learns only from
// its own evictions.
func (s *Skewed) OnEvict(uint32, int) {}

// ConfidenceOf returns the confidence sum for a PC's signature (tests
// and diagnostics).
func (s *Skewed) ConfidenceOf(pc uint64) int {
	return s.confidence(pcSignature(pc))
}

// UpdateFraction returns the fraction of LLC accesses that updated the
// predictor.
func (s *Skewed) UpdateFraction() float64 {
	if s.accesses == 0 {
		return 0
	}
	return float64(s.updates) / float64(s.accesses)
}

// Storage implements Predictor: tagged tables (2-bit counter + partial
// tag per entry), the sampler array, and one dead bit per LLC block.
func (s *Skewed) Storage() []power.Structure {
	return []power.Structure{
		{
			Name: "tagged prediction tables", Kind: power.TagArray,
			Entries: s.cfg.Tables * s.cfg.TableEntries, BitsPerEntry: 2 + s.cfg.TagBits, Banks: s.cfg.Tables,
		},
		{
			Name: "sampler", Kind: power.TagArray,
			Entries:      s.cfg.SamplerSets * s.cfg.SamplerAssoc,
			BitsPerEntry: sigBits + sigBits + 1 + 1 + 4,
		},
		{
			Name: "dead bits", Kind: power.CacheMetadata,
			Entries: s.llcSets * s.ways, BitsPerEntry: 1,
		},
	}
}
