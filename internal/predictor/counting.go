package predictor

import (
	"sdbp/internal/mem"
	"sdbp/internal/power"
)

// countBits is the width of LvP's access counters (4 bits).
const countBits = 4

const countMax = 1<<countBits - 1

// lvpRows and lvpCols size the LvP prediction table: rows indexed by an
// 8-bit hash of the PC that brought the block into the cache, columns by
// an 8-bit hash of the block address. 256x256 entries of 5 bits each is
// the paper's 40KB table.
const (
	lvpRows = 256
	lvpCols = 256
)

// lvpEntry is one prediction-table cell: the access count observed for
// the (PC, block) pair's previous generation, and a one-bit confidence
// set when the last two generations agreed.
type lvpEntry struct {
	count uint8 // 4-bit live-time (number of accesses per generation)
	conf  bool
}

// lvpBlock is the per-LLC-block metadata (17 bits in the paper): the
// hashed PC that filled the block, the current generation's access
// count, the previous generation's count copied from the table at fill,
// and the confidence bit copied alongside it. We additionally remember
// the hashed block address so the table cell can be updated at eviction.
type lvpBlock struct {
	pcHash    uint8
	addrHash  uint8
	count     uint8
	prevCount uint8
	conf      bool
}

// Counting is the Live-time Predictor (LvP) of Kharbutli and Solihin
// (IEEE TC 2008), the paper's CDBP baseline: a block is predicted dead
// once it has been accessed as many times as in its previous generation,
// provided the previous two generations agreed on that count.
type Counting struct {
	table      []lvpEntry // lvpRows*lvpCols
	blocks     []lvpBlock
	sets, ways int
}

// NewCounting returns an LvP predictor with the paper's 40KB table.
func NewCounting() *Counting { return &Counting{} }

// Name implements Predictor.
func (c *Counting) Name() string { return "Counting" }

// Reset implements Predictor.
func (c *Counting) Reset(sets, ways int) {
	c.sets, c.ways = sets, ways
	c.table = make([]lvpEntry, lvpRows*lvpCols)
	c.blocks = make([]lvpBlock, sets*ways)
}

func lvpPCHash(pc uint64) uint8 { return uint8(mem.Mix64(pc)) }

func lvpAddrHash(addr uint64) uint8 {
	return uint8(mem.Mix64(mem.BlockNumber(addr)) >> 8)
}

func (c *Counting) entry(pcHash, addrHash uint8) *lvpEntry {
	return &c.table[int(pcHash)*lvpCols+int(addrHash)]
}

// OnAccess implements Predictor; LvP has no access-time hook beyond
// OnHit/OnFill.
func (c *Counting) OnAccess(uint32, mem.Access) {}

// PredictArriving implements Predictor: a block is dead on arrival when
// its previous generations confidently saw a single access.
func (c *Counting) PredictArriving(_ uint32, a mem.Access) bool {
	e := c.entry(lvpPCHash(a.PC), lvpAddrHash(a.Addr))
	return e.conf && e.count <= 1
}

// dead reports a block's current prediction.
func (b *lvpBlock) dead() bool {
	return b.conf && b.prevCount > 0 && b.count >= b.prevCount
}

// OnHit implements Predictor: the block's generation count advances and
// the prediction re-evaluates against the previous generation's count.
func (c *Counting) OnHit(set uint32, way int, _ mem.Access) bool {
	b := &c.blocks[int(set)*c.ways+way]
	if b.count < countMax {
		b.count++
	}
	return b.dead()
}

// OnFill implements Predictor: the filling PC selects the table row; the
// previous generation's count and confidence are copied into the block's
// metadata and a new generation begins with this access.
func (c *Counting) OnFill(set uint32, way int, a mem.Access) bool {
	b := &c.blocks[int(set)*c.ways+way]
	b.pcHash = lvpPCHash(a.PC)
	b.addrHash = lvpAddrHash(a.Addr)
	e := c.entry(b.pcHash, b.addrHash)
	b.prevCount = e.count
	b.conf = e.conf
	b.count = 1
	return b.dead()
}

// OnEvict implements Predictor: the table cell learns this generation's
// access count, gaining confidence when it matches the previous one.
func (c *Counting) OnEvict(set uint32, way int) {
	b := &c.blocks[int(set)*c.ways+way]
	e := c.entry(b.pcHash, b.addrHash)
	e.conf = e.count == b.count && b.count > 0
	e.count = b.count
}

// Storage implements Predictor, reproducing the counting row of Table I:
// a 40KB table of 5-bit entries plus 17 bits of metadata per LLC block.
func (c *Counting) Storage() []power.Structure {
	return []power.Structure{
		{Name: "prediction table", Kind: power.TaglessRAM,
			Entries: lvpRows * lvpCols, BitsPerEntry: countBits + 1},
		{Name: "block counters + PC hashes", Kind: power.CacheMetadata,
			Entries: c.sets * c.ways, BitsPerEntry: 8 + 4 + 4 + 1},
	}
}
