package predictor

import (
	"testing"

	"sdbp/internal/mem"
)

func newTBUnderTest() *TimeBased {
	p := NewTimeBased()
	p.Reset(llcSets, llcWays)
	return p
}

// tbGeneration runs a block through fill, hits spread over span
// set-accesses, then idle and eviction.
func tbGeneration(p *TimeBased, a mem.Access, hits, gap, idle int) {
	p.OnAccess(0, a)
	p.OnFill(0, 0, a)
	for h := 0; h < hits; h++ {
		for g := 0; g < gap; g++ {
			p.OnAccess(0, mem.Access{})
		}
		p.OnAccess(0, a)
		p.OnHit(0, 0, a)
	}
	for g := 0; g < idle; g++ {
		p.OnAccess(0, mem.Access{})
	}
	p.OnEvict(0, 0)
}

func TestTimeBasedLearnsLiveTime(t *testing.T) {
	p := newTBUnderTest()
	a := mem.Access{PC: 0x10, Addr: 0x4000}
	tbGeneration(p, a, 3, 50, 500)
	tbGeneration(p, a, 3, 50, 500)
	e := p.entry(lvpPCHash(a.PC), lvpAddrHash(a.Addr))
	if !e.conf || e.count == 0 {
		t.Fatalf("live time not learned confidently: %+v", e)
	}
}

func TestTimeBasedTwiceLiveTimeRule(t *testing.T) {
	p := newTBUnderTest()
	a := mem.Access{PC: 0x20, Addr: 0x8000}
	tbGeneration(p, a, 3, 50, 500) // live time ~150 accesses
	tbGeneration(p, a, 3, 50, 500)
	// Third generation: fill, one hit, then idle.
	p.OnAccess(0, a)
	p.OnFill(0, 0, a)
	// Idle less than 2x the learned live time: still live.
	for i := 0; i < 150; i++ {
		p.OnAccess(0, mem.Access{})
	}
	if p.DeadNow(0, 0) {
		t.Error("dead before twice the learned live time")
	}
	// Far beyond 2x live time: dead.
	for i := 0; i < 5000; i++ {
		p.OnAccess(0, mem.Access{})
	}
	if !p.DeadNow(0, 0) {
		t.Error("not dead long after twice the learned live time")
	}
}

func TestTimeBasedUnstableLiveTimesStayQuiet(t *testing.T) {
	p := newTBUnderTest()
	a := mem.Access{PC: 0x30, Addr: 0xC000}
	tbGeneration(p, a, 1, 20, 100)
	tbGeneration(p, a, 10, 300, 100) // very different live time
	p.OnAccess(0, a)
	p.OnFill(0, 0, a)
	for i := 0; i < 10000; i++ {
		p.OnAccess(0, mem.Access{})
	}
	if p.DeadNow(0, 0) {
		t.Error("unconfident time-based predictor made a dead prediction")
	}
}

func TestTimeBasedBypassOnlyForZeroLiveTime(t *testing.T) {
	p := newTBUnderTest()
	a := mem.Access{PC: 0x40, Addr: 0x2000}
	// Single-touch generations: live time 0 -> dead on arrival.
	tbGeneration(p, a, 0, 0, 300)
	tbGeneration(p, a, 0, 0, 300)
	if !p.PredictArriving(0, a) {
		t.Error("confident zero-live-time block not dead on arrival")
	}
	b := mem.Access{PC: 0x50, Addr: 0x2040}
	tbGeneration(p, b, 3, 50, 300)
	tbGeneration(p, b, 3, 50, 300)
	if p.PredictArriving(0, b) {
		t.Error("nonzero-live-time block predicted dead on arrival")
	}
}

func TestTimeBasedTouchesNeverPredictDead(t *testing.T) {
	p := newTBUnderTest()
	if p.OnHit(0, 0, mem.Access{}) || p.OnFill(0, 0, mem.Access{PC: 1, Addr: 64}) {
		t.Error("touch-time prediction should always be live")
	}
}
