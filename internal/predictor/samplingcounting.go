package predictor

import (
	"sdbp/internal/mem"
	"sdbp/internal/power"
)

// SamplingCounting explores the paper's stated future work (Section
// VIII): "we plan to investigate sampling techniques for counting
// predictors". It trains an LvP-style live-time table exclusively
// through a decoupled 32-set, 12-way LRU sampler — the LLC itself never
// updates the predictor — while predictions compare a block's running
// access count against the live-time learned for the PC that filled it.
//
// The experiment it enables: sampling removes the counting predictor's
// per-eviction table update traffic (the power win), but the sampler's
// short retention truncates the observed generations of long-lived
// blocks, so learned live-times skew low. The harness's extension
// benchmarks quantify that trade-off.
type SamplingCounting struct {
	table []lvpEntry // live-time per fill-signature hash

	samplerSets, samplerAssoc int
	entries                   []scEntry
	interval                  int
	llcSets, ways             int

	fillSig []uint32 // per LLC block: signature of the filling PC
	count   []uint8  // per LLC block: accesses this generation

	accesses, updates uint64
}

// scEntry is one sampling-counting sampler entry.
type scEntry struct {
	tag     uint32
	fillSig uint32
	count   uint8
	valid   bool
	lru     uint8
}

// scTableEntries sizes the live-time table (4,096 entries of 5 bits).
const scTableEntries = 4096

// NewSamplingCounting returns a sampler-trained counting predictor.
func NewSamplingCounting() *SamplingCounting {
	return &SamplingCounting{samplerSets: 32, samplerAssoc: 12}
}

// Name implements Predictor.
func (s *SamplingCounting) Name() string { return "SamplingCounting" }

// Reset implements Predictor.
func (s *SamplingCounting) Reset(sets, ways int) {
	s.llcSets, s.ways = sets, ways
	s.table = make([]lvpEntry, scTableEntries)
	s.entries = make([]scEntry, s.samplerSets*s.samplerAssoc)
	for i := range s.entries {
		s.entries[i].lru = uint8(i % s.samplerAssoc)
	}
	s.interval = sets / s.samplerSets
	if s.interval < 1 {
		s.interval = 1
	}
	s.fillSig = make([]uint32, sets*ways)
	s.count = make([]uint8, sets*ways)
	s.accesses, s.updates = 0, 0
}

func (s *SamplingCounting) tableIdx(fillSig uint32) int {
	return int(mem.Mix64(uint64(fillSig)) & (scTableEntries - 1))
}

func (s *SamplingCounting) idx(set uint32, way int) int { return int(set)*s.ways + way }

// OnAccess implements Predictor: sampled sets maintain the sampler and,
// on sampler evictions, train the live-time table.
func (s *SamplingCounting) OnAccess(set uint32, a mem.Access) {
	s.accesses++
	if int(set)%s.interval != 0 {
		return
	}
	ss := int(set) / s.interval
	if ss >= s.samplerSets {
		return
	}
	s.updates++
	tag := partialTag(a.Addr, s.llcSets)
	base := ss * s.samplerAssoc

	for w := 0; w < s.samplerAssoc; w++ {
		e := &s.entries[base+w]
		if e.valid && e.tag == tag {
			if e.count < countMax {
				e.count++
			}
			s.promote(base, w)
			return
		}
	}

	victim := -1
	for w := 0; w < s.samplerAssoc; w++ {
		if !s.entries[base+w].valid {
			victim = w
			break
		}
	}
	if victim < 0 {
		for w := 0; w < s.samplerAssoc; w++ {
			if s.entries[base+w].lru == uint8(s.samplerAssoc-1) {
				victim = w
				break
			}
		}
	}
	e := &s.entries[base+victim]
	if e.valid {
		t := &s.table[s.tableIdx(e.fillSig)]
		t.conf = t.count == e.count && e.count > 0
		t.count = e.count
	}
	e.tag = tag
	e.fillSig = pcSignature(a.PC)
	e.count = 1
	e.valid = true
	s.promote(base, victim)
}

func (s *SamplingCounting) promote(base, way int) {
	old := s.entries[base+way].lru
	for w := 0; w < s.samplerAssoc; w++ {
		if s.entries[base+w].lru < old {
			s.entries[base+w].lru++
		}
	}
	s.entries[base+way].lru = 0
}

// PredictArriving implements Predictor: bypass blocks whose fill site
// confidently shows single-touch generations.
func (s *SamplingCounting) PredictArriving(_ uint32, a mem.Access) bool {
	t := s.table[s.tableIdx(pcSignature(a.PC))]
	return t.conf && t.count <= 1
}

// OnHit implements Predictor: the block's count advances and compares
// against the live-time learned for its fill site.
func (s *SamplingCounting) OnHit(set uint32, way int, _ mem.Access) bool {
	i := s.idx(set, way)
	if s.count[i] < countMax {
		s.count[i]++
	}
	t := s.table[s.tableIdx(s.fillSig[i])]
	return t.conf && t.count > 0 && s.count[i] >= t.count
}

// OnFill implements Predictor.
func (s *SamplingCounting) OnFill(set uint32, way int, a mem.Access) bool {
	i := s.idx(set, way)
	s.fillSig[i] = pcSignature(a.PC)
	s.count[i] = 1
	t := s.table[s.tableIdx(s.fillSig[i])]
	return t.conf && t.count > 0 && s.count[i] >= t.count
}

// OnEvict implements Predictor: nothing — the LLC never updates the
// predictor; that is the sampling experiment.
func (s *SamplingCounting) OnEvict(uint32, int) {}

// UpdateFraction returns the fraction of LLC accesses that touched the
// sampler.
func (s *SamplingCounting) UpdateFraction() float64 {
	if s.accesses == 0 {
		return 0
	}
	return float64(s.updates) / float64(s.accesses)
}

// Storage implements Predictor.
func (s *SamplingCounting) Storage() []power.Structure {
	return []power.Structure{
		{Name: "live-time table", Kind: power.TaglessRAM,
			Entries: scTableEntries, BitsPerEntry: countBits + 1},
		{Name: "sampler", Kind: power.TagArray,
			Entries:      s.samplerSets * s.samplerAssoc,
			BitsPerEntry: sigBits + sigBits + countBits + 1 + 4},
		{Name: "block fill signatures + counts", Kind: power.CacheMetadata,
			Entries: s.llcSets * s.ways, BitsPerEntry: sigBits + countBits + 1},
	}
}
