package predictor

import (
	"testing"
	"testing/quick"

	"sdbp/internal/mem"
	"sdbp/internal/power"
)

const (
	llcSets = 2048
	llcWays = 16
)

func newDefaultSampler() *Sampler {
	s := NewSampler(DefaultSamplerConfig())
	s.Reset(llcSets, llcWays)
	return s
}

// access builds an access whose block maps to the given LLC set with a
// distinguishing tag.
func accessTo(set uint32, tag uint64, pc uint64) mem.Access {
	return mem.Access{
		PC:   pc,
		Addr: (tag<<uint(mem.Log2(llcSets)) | uint64(set)) << mem.BlockBits,
	}
}

func TestSamplerLearnsStreamPCDead(t *testing.T) {
	s := newDefaultSampler()
	const streamPC = 0x1234560
	// A stream of single-touch blocks through sampled set 0: each tag
	// is inserted once and eventually evicted, training the stream PC
	// toward dead.
	for i := uint64(0); i < 100; i++ {
		s.OnAccess(0, accessTo(0, i, streamPC))
	}
	if !s.PredictArriving(0, mem.Access{PC: streamPC}) {
		t.Errorf("stream PC not predicted dead (confidence %d of %d)",
			s.ConfidenceOf(streamPC), s.Threshold())
	}
}

func TestSamplerKeepsRetouchedPCLive(t *testing.T) {
	s := newDefaultSampler()
	const hotPC = 0x5550
	// A small set of tags re-touched continuously at one site: every
	// sampler hit trains the stored signature live.
	for round := 0; round < 200; round++ {
		for tag := uint64(0); tag < 4; tag++ {
			s.OnAccess(0, accessTo(0, tag, hotPC))
		}
	}
	if s.PredictArriving(0, mem.Access{PC: hotPC}) {
		t.Errorf("re-touched PC predicted dead (confidence %d)", s.ConfidenceOf(hotPC))
	}
}

func TestSamplerLastTouchSiteLearnsDead(t *testing.T) {
	s := newDefaultSampler()
	const fillPC, usePC, finalPC = 0x100, 0x200, 0x300
	// Generational lives: fill, use, final — then enough churn to evict
	// the tag from the sampler so the final signature trains dead.
	churnTag := uint64(1000)
	for gen := 0; gen < 60; gen++ {
		tag := uint64(gen)
		s.OnAccess(0, accessTo(0, tag, fillPC))
		s.OnAccess(0, accessTo(0, tag, usePC))
		s.OnAccess(0, accessTo(0, tag, finalPC))
		for i := 0; i < 13; i++ { // exceed the 12-way sampler set
			s.OnAccess(0, accessTo(0, churnTag, 0x999))
			churnTag++
		}
	}
	if !s.PredictArriving(0, mem.Access{PC: finalPC}) {
		t.Errorf("final-touch PC not dead (confidence %d)", s.ConfidenceOf(finalPC))
	}
	if s.PredictArriving(0, mem.Access{PC: fillPC}) {
		t.Errorf("fill PC predicted dead (confidence %d)", s.ConfidenceOf(fillPC))
	}
	if s.PredictArriving(0, mem.Access{PC: usePC}) {
		t.Errorf("use PC predicted dead (confidence %d)", s.ConfidenceOf(usePC))
	}
}

func TestSamplerIgnoresUnsampledSets(t *testing.T) {
	s := newDefaultSampler()
	const pc = 0x777
	// Set 1 is not sampled (interval 64): no training happens there.
	for i := uint64(0); i < 1000; i++ {
		s.OnAccess(1, accessTo(1, i, pc))
	}
	if got := s.UpdateFraction(); got != 0 {
		t.Errorf("unsampled set updated the predictor (fraction %f)", got)
	}
	if s.ConfidenceOf(pc) != 0 {
		t.Errorf("unsampled traffic trained the tables")
	}
}

func TestSamplerUpdateFraction(t *testing.T) {
	s := newDefaultSampler()
	// Uniform traffic over all sets: the update fraction approaches
	// 32/2048 = 1/64 (the paper's 1.6%).
	for i := 0; i < 1<<16; i++ {
		set := uint32(i) % llcSets
		s.OnAccess(set, accessTo(set, uint64(i), 0x10))
	}
	got := s.UpdateFraction()
	if got < 0.014 || got > 0.018 {
		t.Errorf("update fraction = %.4f, want ~1/64", got)
	}
}

func TestSamplerCountersSaturate(t *testing.T) {
	s := newDefaultSampler()
	const pc = 0xABC
	sig := pcSignature(pc)
	for i := 0; i < 100; i++ {
		s.train(sig, true)
	}
	if c := s.confidence(sig); c != 9 {
		t.Errorf("saturated confidence = %d, want 9", c)
	}
	for i := 0; i < 100; i++ {
		s.train(sig, false)
	}
	if c := s.confidence(sig); c != 0 {
		t.Errorf("decayed confidence = %d, want 0", c)
	}
}

func TestSamplerSkewedTablesUseDistinctIndices(t *testing.T) {
	s := newDefaultSampler()
	distinct := 0
	for sig := uint32(0); sig < 1000; sig++ {
		i0 := s.tableIndex(0, sig)
		i1 := s.tableIndex(1, sig)
		i2 := s.tableIndex(2, sig)
		if i0 != i1 || i1 != i2 {
			distinct++
		}
	}
	if distinct < 990 {
		t.Errorf("only %d of 1000 signatures got distinct skewed indices", distinct)
	}
}

func TestSamplerNoSamplerVariantTrainsFromLLC(t *testing.T) {
	cfg := SamplerConfig{UseSampler: false, Tables: 1, TableEntries: 16384, Threshold: 3}
	s := NewSampler(cfg)
	s.Reset(llcSets, llcWays)
	const pc = 0x42
	// Fill and evict blocks at one site repeatedly: dead training.
	for i := 0; i < 50; i++ {
		s.OnFill(3, 0, mem.Access{PC: pc})
		s.OnEvict(3, 0)
	}
	if !s.PredictArriving(3, mem.Access{PC: pc}) {
		t.Error("no-sampler variant did not learn from LLC evictions")
	}
	// Hits train live again.
	for i := 0; i < 50; i++ {
		s.OnFill(3, 0, mem.Access{PC: pc})
		s.OnHit(3, 0, mem.Access{PC: pc})
	}
	if s.PredictArriving(3, mem.Access{PC: pc}) {
		t.Error("no-sampler variant did not unlearn on hits")
	}
}

func TestSamplerLRUWithinSamplerSet(t *testing.T) {
	s := newDefaultSampler()
	assoc := s.cfg.SamplerAssoc
	// Fill the sampler set with assoc tags, re-touch the first, then
	// insert one more: the evicted tag must not be the re-touched one.
	for i := 0; i < assoc; i++ {
		s.OnAccess(0, accessTo(0, uint64(i), 0x10))
	}
	s.OnAccess(0, accessTo(0, 0, 0x20)) // tag 0 to sampler MRU
	s.OnAccess(0, accessTo(0, uint64(assoc), 0x10))
	// Tag 0 must still be present: a re-touch now is a sampler hit,
	// which trains its stored signature (0x20) live — observable via
	// the train hook.
	trained := false
	s.TrainHook = func(sig uint32, dead bool) {
		if sig == pcSignature(0x20) && !dead {
			trained = true
		}
	}
	s.OnAccess(0, accessTo(0, 0, 0x30))
	if !trained {
		t.Error("re-touched tag was evicted from the sampler despite LRU")
	}
}

func TestSamplerConfigValidation(t *testing.T) {
	bad := []SamplerConfig{
		{UseSampler: true, SamplerSets: 0, SamplerAssoc: 12, Tables: 3, TableEntries: 4096, Threshold: 8},
		{UseSampler: true, SamplerSets: 31, SamplerAssoc: 12, Tables: 3, TableEntries: 4096, Threshold: 8},
		{UseSampler: false, Tables: 0, TableEntries: 4096, Threshold: 8},
		{UseSampler: false, Tables: 1, TableEntries: 1000, Threshold: 3},
	}
	for _, cfg := range bad {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("NewSampler(%+v) accepted invalid config", cfg)
				}
			}()
			NewSampler(cfg)
		}()
	}
}

func TestAblationConfigsComplete(t *testing.T) {
	cfgs := AblationConfigs()
	if len(cfgs) != 6 {
		t.Fatalf("ablation configs = %d, want 6", len(cfgs))
	}
	full := cfgs["DBRB+sampler+3 tables+12-way"]
	if full != DefaultSamplerConfig() {
		t.Error("full ablation variant differs from the default config")
	}
	alone := cfgs["DBRB alone"]
	if alone.UseSampler || alone.Tables != 1 || alone.TableEntries != 16384 {
		t.Errorf("DBRB alone = %+v", alone)
	}
	// The skewed tables are each one quarter of the single table.
	if cfgs["DBRB+3 tables"].TableEntries*4 != alone.TableEntries {
		t.Error("skewed tables are not quarter-sized")
	}
}

func TestSamplerStorageMatchesPaper(t *testing.T) {
	s := newDefaultSampler()
	st := s.Storage()
	total := power.TotalKB(st)
	// Paper Table I quotes 13.75KB, but its sampler line (6.75KB) does
	// not follow from its own stated fields: 32 sets x 12 entries x
	// (15+15+1+1+4) bits = 1.6875KB. We report the stated-field
	// arithmetic: 3KB tables + 1.6875KB sampler + 4KB dead bits.
	if total != 8.6875 {
		t.Errorf("sampler storage = %.4fKB, want 8.6875KB", total)
	}
	// Either way the paper's headline holds: under 1% of a 2MB LLC.
	if total >= 0.01*2048 {
		t.Errorf("sampler storage %.2fKB is not under 1%% of the LLC", total)
	}
}

func TestSamplerPredictionIsPureFunctionOfPC(t *testing.T) {
	s := newDefaultSampler()
	f := func(pc uint64, set uint16) bool {
		a := mem.Access{PC: pc}
		return s.PredictArriving(uint32(set)%llcSets, a) == s.predict(pcSignature(pc))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestSamplerResetClearsState(t *testing.T) {
	s := newDefaultSampler()
	for i := uint64(0); i < 100; i++ {
		s.OnAccess(0, accessTo(0, i, 0x66))
	}
	if s.ConfidenceOf(0x66) == 0 {
		t.Fatal("training did not happen")
	}
	s.Reset(llcSets, llcWays)
	if s.ConfidenceOf(0x66) != 0 {
		t.Error("Reset did not clear tables")
	}
	if s.UpdateFraction() != 0 {
		t.Error("Reset did not clear counters")
	}
}
