package predictor

// The sampler tag array is the predictors' hottest state: every access
// to a sampled LLC set scans one sampler set of it. As a struct of
// small fields one way cost 12 bytes and the scan loop touched three of
// them per way; packed into a single word per way, a sampler set is one
// dense cache-line-sized run the scan walks with one load per way. The
// packing is pure representation — the policytest conformance matrix
// pins every composed policy's output across it.

// sEntry packs one sampler way:
//
//	bits  0..14  partial tag (sigBits wide)
//	bits 15..29  partial-PC signature of the last access to the tag
//	bit  30      valid
//	bit  31      dead prediction made at the last access (Sampler only)
//	bits 32..39  LRU stack position
type sEntry uint64

const (
	seSigShift = sigBits
	seValid    = 1 << 30
	seDead     = 1 << 31
	seLRUShift = 32
)

func (e sEntry) tag() uint32 { return uint32(e) & sigMask }
func (e sEntry) sig() uint32 { return uint32(e>>seSigShift) & sigMask }
func (e sEntry) valid() bool { return e&seValid != 0 }
func (e sEntry) dead() bool  { return e&seDead != 0 }
func (e sEntry) lru() uint8  { return uint8(e >> seLRUShift) }

// update replaces the entry's signature and dead prediction after a
// sampler hit, keeping tag, valid bit, and LRU position.
func (e *sEntry) update(sig uint32, dead bool) {
	v := *e &^ (sEntry(sigMask)<<seSigShift | seDead)
	v |= sEntry(sig) << seSigShift
	if dead {
		v |= seDead
	}
	*e = v
}

// fill installs a new tag after a sampler miss, keeping only the LRU
// position.
func (e *sEntry) fill(tag, sig uint32, dead bool) {
	v := *e & (sEntry(0xff) << seLRUShift)
	v |= sEntry(tag) | sEntry(sig)<<seSigShift | seValid
	if dead {
		v |= seDead
	}
	*e = v
}

func (e *sEntry) setLRU(p uint8) {
	*e = *e&^(sEntry(0xff)<<seLRUShift) | sEntry(p)<<seLRUShift
}

// newSamplerArena allocates sets*assoc packed entries, row-major by
// set, each set holding a valid LRU permutation.
func newSamplerArena(sets, assoc int) []sEntry {
	ents := make([]sEntry, sets*assoc)
	for i := range ents {
		ents[i] = sEntry(uint64(i%assoc)) << seLRUShift
	}
	return ents
}

// promoteEntry moves one set's way to MRU (position 0).
func promoteEntry(ents []sEntry, way int) {
	old := ents[way].lru()
	if old == 0 {
		return // already MRU; the shift walk would be a no-op
	}
	for w := range ents {
		if l := ents[w].lru(); l < old {
			ents[w].setLRU(l + 1)
		}
	}
	ents[way].setLRU(0)
}
