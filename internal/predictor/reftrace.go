package predictor

import (
	"sdbp/internal/mem"
	"sdbp/internal/power"
)

// RefTrace is the reference-trace dead block predictor of Lai, Fide and
// Falsafi (ISCA 2001), as configured by the paper for the TDBP baseline:
// each cache block carries a 15-bit signature that accumulates the
// truncated sum of the PCs accessing it, and a single 2^15-entry table
// of 2-bit counters maps signatures to dead/live confidence.
//
// The predictor trains on every LLC access (the signature so far proved
// non-final, so its counter decrements) and on every eviction (the final
// signature's counter increments). This per-access read/modify/write of
// per-block metadata is exactly the overhead the sampling predictor
// eliminates.
type RefTrace struct {
	table []uint8 // 2^15 two-bit counters

	sets, ways int
	blockSig   []uint32

	threshold uint8
}

// NewRefTrace returns a reftrace predictor with the paper's 8KB table.
func NewRefTrace() *RefTrace {
	return &RefTrace{threshold: 2}
}

// Name implements Predictor.
func (r *RefTrace) Name() string { return "RefTrace" }

// Reset implements Predictor.
func (r *RefTrace) Reset(sets, ways int) {
	r.sets, r.ways = sets, ways
	r.table = make([]uint8, 1<<sigBits)
	r.blockSig = make([]uint32, sets*ways)
}

// predict reports the prediction for a signature.
func (r *RefTrace) predict(sig uint32) bool { return r.table[sig] >= r.threshold }

func (r *RefTrace) train(sig uint32, dead bool) {
	if dead {
		if r.table[sig] < 3 {
			r.table[sig]++
		}
	} else if r.table[sig] > 0 {
		r.table[sig]--
	}
}

// traceSignature extends a block's signature with one more accessing PC
// (truncated sum, as in the original predictor).
func traceSignature(sig uint32, pc uint64) uint32 {
	return (sig + uint32(pc)) & sigMask
}

// OnAccess implements Predictor; reftrace has no access-time hook beyond
// OnHit/OnFill.
func (r *RefTrace) OnAccess(uint32, mem.Access) {}

// PredictArriving implements Predictor: a block arriving with access a
// would start its trace with a's PC.
func (r *RefTrace) PredictArriving(_ uint32, a mem.Access) bool {
	return r.predict(traceSignature(0, a.PC))
}

// OnHit implements Predictor: the stored signature proved non-final, so
// it trains live; the signature then extends with the new PC and the
// block's dead bit refreshes.
func (r *RefTrace) OnHit(set uint32, way int, a mem.Access) bool {
	i := int(set)*r.ways + way
	r.train(r.blockSig[i], false)
	r.blockSig[i] = traceSignature(r.blockSig[i], a.PC)
	return r.predict(r.blockSig[i])
}

// OnFill implements Predictor: a new trace begins with the filling PC.
func (r *RefTrace) OnFill(set uint32, way int, a mem.Access) bool {
	i := int(set)*r.ways + way
	r.blockSig[i] = traceSignature(0, a.PC)
	return r.predict(r.blockSig[i])
}

// OnEvict implements Predictor: the stored signature was the block's
// last, so it trains dead.
func (r *RefTrace) OnEvict(set uint32, way int) {
	r.train(r.blockSig[int(set)*r.ways+way], true)
}

// Storage implements Predictor, reproducing the reftrace row of Table I:
// an 8KB table plus 16 bits (signature + dead bit) per LLC block.
func (r *RefTrace) Storage() []power.Structure {
	return []power.Structure{
		{Name: "prediction table", Kind: power.TaglessRAM, Entries: 1 << sigBits, BitsPerEntry: 2},
		{Name: "block signatures + dead bits", Kind: power.CacheMetadata,
			Entries: r.sets * r.ways, BitsPerEntry: sigBits + 1},
	}
}
