// Package predictor implements the paper's dead block predictors behind
// a single interface: the sampling predictor (the contribution), the
// reference-trace predictor of Lai et al. (reftrace), and the
// counting-based live-time predictor of Kharbutli and Solihin (LvP).
//
// A predictor is driven by the dead-block replacement and bypass policy
// (package dbrb) at the LLC's access points: every access (OnAccess,
// where the sampler trains), hits (OnHit, refreshing the block's dead
// bit), fills (OnFill), evictions (OnEvict, where per-block predictors
// train), and miss arrivals (PredictArriving, the bypass decision).
package predictor

import (
	"sdbp/internal/mem"
	"sdbp/internal/power"
)

// Predictor is a dead block predictor as consumed by the dead-block
// replacement and bypass policy. All Predict/OnHit/OnFill results are
// "true means predicted dead".
type Predictor interface {
	// Name identifies the predictor in reports.
	Name() string

	// Reset sizes per-block state for an LLC of sets×ways lines and
	// clears all learned state.
	Reset(sets, ways int)

	// OnAccess observes every LLC access before hit/miss resolution.
	// The sampling predictor maintains its sampler tag array here.
	OnAccess(set uint32, a mem.Access)

	// PredictArriving reports whether the block about to be filled by
	// access a is predicted dead on arrival (the bypass decision).
	PredictArriving(set uint32, a mem.Access) bool

	// OnHit updates per-block state for a hit and returns the block's
	// new dead prediction.
	OnHit(set uint32, way int, a mem.Access) bool

	// OnFill initializes per-block state for a fill and returns the
	// block's dead prediction.
	OnFill(set uint32, way int, a mem.Access) bool

	// OnEvict trains from the eviction of the block at (set, way).
	OnEvict(set uint32, way int)

	// Storage describes the predictor's hardware structures (prediction
	// tables, sampler, per-block cache metadata) for Table I and the
	// power model.
	Storage() []power.Structure
}

// sigBits is the signature width shared by the sampling and reftrace
// predictors (15 bits in the paper).
const sigBits = 15

const sigMask = 1<<sigBits - 1

// pcSignature maps a program counter to a 15-bit signature. The paper
// truncates the PC; we hash first so synthetic PCs with few distinct
// low-order bits still spread across the tables.
func pcSignature(pc uint64) uint32 {
	return uint32(mem.Mix64(pc)) & sigMask
}
