package predictor

import (
	"sdbp/internal/mem"
	"sdbp/internal/power"
)

// Never is the degenerate always-live predictor: it never predicts a
// block dead, so dbrb(base=X,pred=never) performs no bypasses and no
// dead-block victimizations and must behave exactly like X. The
// cross-policy differential harness (internal/policy/policytest) pins
// that identity for every base policy; it is also a useful null
// hypothesis when sweeping predictor configurations.
type Never struct{}

// NewNever returns the always-live predictor.
func NewNever() *Never { return &Never{} }

// Name implements Predictor.
func (*Never) Name() string { return "Never" }

// Reset implements Predictor.
func (*Never) Reset(int, int) {}

// OnAccess implements Predictor.
func (*Never) OnAccess(uint32, mem.Access) {}

// PredictArriving implements Predictor: nothing is dead on arrival.
func (*Never) PredictArriving(uint32, mem.Access) bool { return false }

// OnHit implements Predictor: nothing is ever dead.
func (*Never) OnHit(uint32, int, mem.Access) bool { return false }

// OnFill implements Predictor.
func (*Never) OnFill(uint32, int, mem.Access) bool { return false }

// OnEvict implements Predictor.
func (*Never) OnEvict(uint32, int) {}

// Storage implements Predictor: the null predictor has no hardware.
func (*Never) Storage() []power.Structure { return nil }
