package obs

import (
	"math/rand"
	"runtime"
	"sync"
	"testing"
	"time"
)

// TestTraceHierarchy: a trace reconstructs into a tree — children
// share the trace ID, point at their parent, and carry attributes.
func TestTraceHierarchy(t *testing.T) {
	tr, root := NewTrace("job")
	if tr.ID() == "" {
		t.Fatal("trace has no ID")
	}
	root.SetAttr("addr", "abc")
	c1 := root.StartChild("stage:decode")
	c1.End()
	c2 := root.StartChild("stage:execute")
	g := c2.StartChild("run")
	g.SetAttr("attempt", "1")
	g.End()
	c2.End()
	root.End()

	spans := tr.Spans()
	if len(spans) != 4 {
		t.Fatalf("got %d spans, want 4: %+v", len(spans), spans)
	}
	byName := map[string]SpanRecord{}
	for _, sp := range spans {
		if sp.TraceID != tr.ID() {
			t.Errorf("span %s trace = %q, want %q", sp.Name, sp.TraceID, tr.ID())
		}
		if sp.ID == "" {
			t.Errorf("span %s has no ID", sp.Name)
		}
		byName[sp.Name] = sp
	}
	rootRec := byName["job"]
	if rootRec.Parent != "" {
		t.Errorf("root has parent %q", rootRec.Parent)
	}
	if rootRec.Attrs["addr"] != "abc" {
		t.Errorf("root attrs = %v", rootRec.Attrs)
	}
	if byName["stage:decode"].Parent != rootRec.ID || byName["stage:execute"].Parent != rootRec.ID {
		t.Error("stage spans do not point at the root")
	}
	if byName["run"].Parent != byName["stage:execute"].ID {
		t.Error("grandchild does not point at its parent")
	}
	if byName["run"].Attrs["attempt"] != "1" {
		t.Errorf("grandchild attrs = %v", byName["run"].Attrs)
	}
}

// TestTraceNilSafety: the whole trace API is a no-op on nils, so
// disabled tracing needs no guards.
func TestTraceNilSafety(t *testing.T) {
	var tr *Trace
	if tr.ID() != "" || tr.Spans() != nil {
		t.Error("nil trace not inert")
	}
	var s *Span
	s.SetAttr("k", "v")
	if s.StartChild("c") != nil {
		t.Error("nil span produced a child")
	}
	if s.End() != 0 {
		t.Error("nil span End returned nonzero")
	}
	// A registry span is not a trace span: children are nil.
	reg := NewRegistry()
	if reg.StartSpan("s").StartChild("c") != nil {
		t.Error("registry span produced a trace child")
	}
}

// TestSpanOrderDeterministicUnderConcurrentEnd is the satellite
// contract: spans started in a known order but ended concurrently in
// arbitrary order must snapshot in start order, independent of
// GOMAXPROCS — so manifests built from snapshots are stable.
func TestSpanOrderDeterministicUnderConcurrentEnd(t *testing.T) {
	defer runtime.GOMAXPROCS(runtime.GOMAXPROCS(0))
	for _, procs := range []int{1, runtime.NumCPU()} {
		runtime.GOMAXPROCS(procs)
		r := NewRegistry()
		const n = 32
		spans := make([]*Span, n)
		names := make([]string, n)
		for i := 0; i < n; i++ {
			names[i] = string(rune('a'+i%26)) + string(rune('0'+i/26))
			spans[i] = r.StartSpan(names[i])
			time.Sleep(100 * time.Microsecond) // distinct start times
		}
		perm := rand.Perm(n)
		var wg sync.WaitGroup
		for _, i := range perm {
			wg.Add(1)
			go func(sp *Span) {
				defer wg.Done()
				sp.End()
			}(spans[i])
		}
		wg.Wait()
		got := r.Spans()
		for i, sp := range got {
			if sp.Name != names[i] {
				t.Fatalf("GOMAXPROCS=%d: span %d = %q, want %q (start order)", procs, i, sp.Name, names[i])
			}
		}
		snap := r.Snapshot()
		for i, sp := range snap.Spans {
			if sp.Name != names[i] {
				t.Fatalf("GOMAXPROCS=%d: snapshot span %d = %q, want %q", procs, i, sp.Name, names[i])
			}
		}
	}
}

// TestTraceSpansSortedByStart: trace snapshots sort by start time too,
// with concurrent End racing.
func TestTraceSpansSortedByStart(t *testing.T) {
	tr, root := NewTrace("root")
	const n = 16
	children := make([]*Span, n)
	for i := 0; i < n; i++ {
		children[i] = root.StartChild("c")
		time.Sleep(100 * time.Microsecond)
	}
	var wg sync.WaitGroup
	for _, i := range rand.Perm(n) {
		wg.Add(1)
		go func(sp *Span) {
			defer wg.Done()
			sp.End()
		}(children[i])
	}
	wg.Wait()
	root.End()
	spans := tr.Spans()
	if spans[0].Name != "root" {
		t.Fatalf("first span = %q, want the root (earliest start)", spans[0].Name)
	}
	for i := 2; i < len(spans); i++ {
		if spans[i].Start.Before(spans[i-1].Start) {
			t.Fatalf("spans not sorted by start at %d", i)
		}
	}
}
